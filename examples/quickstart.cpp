// Quickstart: train a small Traj2Hash model on synthetic taxi trips and run
// a top-k similar trajectory search in both Euclidean and Hamming space.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/trainer.h"
#include "distance/distance.h"
#include "eval/approximation.h"
#include "eval/metrics.h"
#include "search/knn.h"
#include "traj/synthetic.h"

namespace t2h = traj2hash;

int main() {
  // 1. Data: synthetic Porto-like taxi trips (swap in traj::io::LoadCsv for
  //    real data).
  t2h::Rng rng(42);
  t2h::traj::CityConfig city = t2h::traj::CityConfig::PortoLike();
  city.max_points = 20;
  const std::vector<t2h::traj::Trajectory> corpus =
      GenerateTrips(city, 1200, rng);
  std::printf("generated %zu trajectories in a %.0fx%.0f km area\n",
              corpus.size(), city.width_m / 1000.0, city.height_m / 1000.0);

  // 2. Supervision: exact Frechet distances for a small seed set. This is
  //    the only place the expensive O(n^2) distance is needed.
  const std::vector<t2h::traj::Trajectory> seeds(corpus.begin(),
                                                 corpus.begin() + 60);
  const t2h::dist::DistanceFn frechet =
      t2h::dist::GetDistance(t2h::dist::Measure::kFrechet);
  const std::vector<double> seed_distances =
      t2h::dist::PairwiseMatrix(seeds, frechet);

  // 3. Model: create (fits normalizer + grids on the corpus), pre-train the
  //    decomposed grid embeddings, then train end-to-end.
  t2h::core::Traj2HashConfig config;
  config.dim = 16;       // paper default is 64; small keeps this demo quick
  config.num_heads = 2;
  config.epochs = 10;
  config.samples_per_anchor = 8;
  config.batch_size = 16;
  auto created = t2h::core::Traj2Hash::Create(config, corpus, rng);
  if (!created.ok()) {
    std::fprintf(stderr, "model creation failed: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  auto model = std::move(created).value();

  t2h::embedding::GridPretrainOptions pretrain;
  pretrain.samples_per_epoch = 4000;
  model->PretrainGrids(pretrain, rng);

  t2h::core::TrainingData data;
  data.seeds = seeds;
  data.seed_distances = seed_distances;
  data.triplet_corpus = corpus;  // cheap supervision, no DP distances needed
  t2h::core::Trainer trainer(model.get());
  const auto report = trainer.Fit(data, rng);
  if (!report.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("trained %zu epochs (final WMSE %.5f)\n",
              report.value().epochs.size(),
              report.value().epochs.back().wmse);

  // 4. Search: embed a database once, then answer queries in O(d) per
  //    candidate instead of O(n^2) dynamic programming.
  const std::vector<t2h::traj::Trajectory> database(corpus.begin() + 100,
                                                    corpus.end());
  const t2h::traj::Trajectory& query = corpus[80];
  const auto db_embeddings = t2h::core::EmbedAll(*model, database);
  const auto result = t2h::search::TopKEuclidean(
      db_embeddings, model->Embed(query), 5);

  std::printf("\ntop-5 by Traj2Hash (Euclidean space) vs exact Frechet:\n");
  for (const t2h::search::Neighbor& n : result) {
    std::printf("  traj %4lld  latent=%.3f  exact=%.1f m\n",
                static_cast<long long>(database[n.index].id), n.distance,
                frechet(query, database[n.index]));
  }

  // 5. How faithful is the approximation overall? Rank-correlate latent
  //    Euclidean distances with exact Frechet over held-out trajectories.
  {
    const std::vector<t2h::traj::Trajectory> sample(corpus.begin() + 60,
                                                    corpus.begin() + 100);
    const auto exact = t2h::eval::UpperTriangle(
        t2h::dist::PairwiseMatrix(sample, frechet),
        static_cast<int>(sample.size()));
    const auto latent = t2h::eval::PairwiseEuclidean(
        t2h::core::EmbedAll(*model, sample));
    const auto stats = t2h::eval::CompareDistances(exact, latent).value();
    std::printf("\napproximation quality on 40 held-out trajectories: "
                "Spearman %.3f (1.0 = perfect ranking)\n",
                stats.spearman);
  }

  // 6. Hamming space: binary codes for the same database.
  const auto db_codes = t2h::core::HashAll(*model, database);
  const auto hamming = t2h::search::TopKHamming(
      db_codes, model->HashCode(query), 5);
  std::printf("\ntop-5 by Traj2Hash (Hamming space, %d-bit codes):\n",
              db_codes[0].num_bits);
  for (const t2h::search::Neighbor& n : hamming) {
    std::printf("  traj %4lld  hamming=%.0f  exact=%.1f m\n",
                static_cast<long long>(database[n.index].id), n.distance,
                frechet(query, database[n.index]));
  }
  return 0;
}
