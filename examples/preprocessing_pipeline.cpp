// Preprocessing + indexing pipeline: simplify long raw GPS traces with
// Douglas-Peucker, train Traj2Hash on the simplified corpus, and serve
// Euclidean-space queries through the VP-tree (exact k-NN with metric
// pruning) instead of a linear scan.
//
//   ./build/examples/preprocessing_pipeline

#include <cstdio>

#include "common/stopwatch.h"
#include "core/trainer.h"
#include "distance/distance.h"
#include "search/knn.h"
#include "search/vptree.h"
#include "traj/simplify.h"
#include "traj/synthetic.h"

namespace t2h = traj2hash;

int main() {
  // Raw traces: oversampled trips (small step => many near-collinear
  // points), the shape of unfiltered GPS logs.
  t2h::Rng rng(23);
  t2h::traj::CityConfig city = t2h::traj::CityConfig::PortoLike();
  city.max_points = 120;
  city.step_m = 35.0;
  const auto raw = GenerateTrips(city, 1500, rng);

  double raw_points = 0.0, kept_points = 0.0, worst_error = 0.0;
  std::vector<t2h::traj::Trajectory> corpus;
  corpus.reserve(raw.size());
  for (const t2h::traj::Trajectory& t : raw) {
    t2h::traj::Trajectory s = t2h::traj::DouglasPeucker(t, 25.0);
    raw_points += t.size();
    kept_points += s.size();
    worst_error =
        std::max(worst_error, t2h::traj::SimplificationError(t, s));
    corpus.push_back(std::move(s));
  }
  std::printf("Douglas-Peucker(25 m): %.0f -> %.0f points per trajectory "
              "(%.0f%% kept), worst deviation %.1f m\n",
              raw_points / raw.size(), kept_points / raw.size(),
              100.0 * kept_points / raw_points, worst_error);

  // Train on the simplified corpus (DTW supervision).
  const std::vector<t2h::traj::Trajectory> seeds(corpus.begin(),
                                                 corpus.begin() + 50);
  t2h::core::Traj2HashConfig config;
  config.dim = 16;
  config.num_heads = 2;
  config.epochs = 6;
  config.samples_per_anchor = 8;
  config.batch_size = 16;
  auto model =
      std::move(t2h::core::Traj2Hash::Create(config, corpus, rng).value());
  model->PretrainGrids({}, rng);
  t2h::core::TrainingData data;
  data.seeds = seeds;
  data.seed_distances = t2h::dist::PairwiseMatrix(
      seeds, t2h::dist::GetDistance(t2h::dist::Measure::kDtw));
  data.triplet_corpus = corpus;
  t2h::core::Trainer trainer(model.get());
  if (const auto r = trainer.Fit(data, rng); !r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }

  // Index embeddings in a VP-tree and compare against the linear scan.
  const std::vector<t2h::traj::Trajectory> database(corpus.begin() + 100,
                                                    corpus.end());
  const auto db_embeddings = t2h::core::EmbedAll(*model, database);
  t2h::Rng tree_rng(24);
  const t2h::search::VpTree tree(db_embeddings, tree_rng);

  double t_brute = 0.0, t_tree = 0.0;
  int agree = 0, evals = 0;
  const int num_queries = 40;
  for (int q = 0; q < num_queries; ++q) {
    const auto emb = model->Embed(corpus[q]);
    t2h::Stopwatch sw;
    const auto brute = t2h::search::TopKEuclidean(db_embeddings, emb, 10);
    t_brute += sw.ElapsedMicros();
    sw.Restart();
    const auto fast = tree.TopK(emb, 10);
    t_tree += sw.ElapsedMicros();
    evals += tree.last_distance_evals();
    bool same = fast.size() == brute.size();
    for (size_t i = 0; same && i < fast.size(); ++i) {
      same = fast[i].index == brute[i].index;
    }
    agree += same;
  }
  std::printf("\nVP-tree vs linear scan over %zu embeddings (top-10, %d"
              " queries):\n", database.size(), num_queries);
  std::printf("  linear scan : %7.1f us/query (%zu distances)\n",
              t_brute / num_queries, database.size());
  std::printf("  VP-tree     : %7.1f us/query (%d distances on average)\n",
              t_tree / num_queries, evals / num_queries);
  std::printf("  identical results: %d/%d\n", agree, num_queries);
  return agree == num_queries ? 0 : 1;
}
