// Similar-trajectory search service: trains a model once, persists it, then
// serves top-k queries through the Hamming-Hybrid index (§V-E), comparing
// the three search strategies' answers and latency on the same queries.
//
//   ./build/examples/similarity_search

#include <cstdio>
#include <filesystem>

#include "common/stopwatch.h"
#include "core/trainer.h"
#include "distance/distance.h"
#include "search/hamming_index.h"
#include "search/knn.h"
#include "traj/io.h"
#include "traj/synthetic.h"

namespace t2h = traj2hash;

namespace {

constexpr int kTopK = 10;

}  // namespace

int main() {
  t2h::Rng rng(7);
  t2h::traj::CityConfig city = t2h::traj::CityConfig::ChengduLike();
  city.max_points = 20;
  const auto corpus = GenerateTrips(city, 2500, rng);

  // Persist the corpus like a real deployment would (CSV interchange).
  const std::string csv_path =
      (std::filesystem::temp_directory_path() / "t2h_example_db.csv").string();
  if (t2h::Status s = t2h::traj::SaveCsv(corpus, csv_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("saved %zu trajectories to %s\n", corpus.size(),
              csv_path.c_str());

  // Train on DTW supervision.
  const std::vector<t2h::traj::Trajectory> seeds(corpus.begin(),
                                                 corpus.begin() + 60);
  const auto dtw = t2h::dist::GetDistance(t2h::dist::Measure::kDtw);

  t2h::core::Traj2HashConfig config;
  config.dim = 16;
  config.num_heads = 2;
  config.epochs = 8;
  config.samples_per_anchor = 8;
  config.batch_size = 16;
  auto model =
      std::move(t2h::core::Traj2Hash::Create(config, corpus, rng).value());
  model->PretrainGrids({}, rng);
  t2h::core::TrainingData data;
  data.seeds = seeds;
  data.seed_distances = t2h::dist::PairwiseMatrix(seeds, dtw);
  data.triplet_corpus = corpus;
  t2h::core::Trainer trainer(model.get());
  if (const auto r = trainer.Fit(data, rng); !r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }

  // Persist and reload the model (what a query server would do on boot).
  const std::string model_path =
      (std::filesystem::temp_directory_path() / "t2h_example_model.bin")
          .string();
  if (t2h::Status s = model->Save(model_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto served =
      std::move(t2h::core::Traj2Hash::Create(config, corpus, rng).value());
  if (t2h::Status s = served->Load(model_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("model persisted to %s and reloaded\n", model_path.c_str());

  // Index the database once.
  const std::vector<t2h::traj::Trajectory> database(corpus.begin() + 100,
                                                    corpus.end());
  const auto db_embeddings = t2h::core::EmbedAll(*served, database);
  const auto db_codes = t2h::core::HashAll(*served, database);
  const t2h::search::HammingIndex index(db_codes);
  std::printf("indexed %d codes into %d buckets\n", index.size(),
              index.num_buckets());

  // Serve a few queries under all three strategies.
  double t_euclid = 0.0, t_hamming = 0.0, t_hybrid = 0.0;
  int hybrid_agreement = 0;
  const int num_queries = 20;
  for (int q = 0; q < num_queries; ++q) {
    const t2h::traj::Trajectory& query = corpus[q];
    const auto emb = served->Embed(query);
    const auto code = served->HashCode(query);

    t2h::Stopwatch sw;
    const auto euclid = t2h::search::TopKEuclidean(db_embeddings, emb, kTopK);
    t_euclid += sw.ElapsedMicros();

    sw.Restart();
    const auto hamming = t2h::search::TopKHamming(db_codes, code, kTopK);
    t_hamming += sw.ElapsedMicros();

    sw.Restart();
    const auto hybrid = index.HybridTopK(code, kTopK);
    t_hybrid += sw.ElapsedMicros();

    if (!hybrid.empty() && !hamming.empty() &&
        hybrid[0].distance == hamming[0].distance) {
      ++hybrid_agreement;
    }
  }
  std::printf("\nmean per-query latency over %d queries (database %zu):\n",
              num_queries, database.size());
  std::printf("  Euclidean-BF   : %8.1f us\n", t_euclid / num_queries);
  std::printf("  Hamming-BF     : %8.1f us\n", t_hamming / num_queries);
  std::printf("  Hamming-Hybrid : %8.1f us\n", t_hybrid / num_queries);
  std::printf("hybrid/bf top-1 agreement: %d/%d\n", hybrid_agreement,
              num_queries);

  std::remove(csv_path.c_str());
  std::remove(model_path.c_str());
  return 0;
}
