// Distance-function playground: the exact trajectory measures this library
// implements (DTW, constrained DTW, discrete Frechet, Hausdorff, ERP), the
// paper's Lemma 1 endpoint lower bound, and the reverse symmetric property
// (Lemma 2) — all on a pair of synthetic trips you can tweak.
//
//   ./build/examples/distance_playground

#include <cstdio>

#include "common/rng.h"
#include "distance/distance.h"
#include "traj/synthetic.h"

namespace t2h = traj2hash;

int main() {
  t2h::Rng rng(3);
  t2h::traj::CityConfig city = t2h::traj::CityConfig::PortoLike();
  city.max_points = 24;
  const auto trips = GenerateTrips(city, 2, rng);
  const t2h::traj::Trajectory& a = trips[0];
  const t2h::traj::Trajectory& b = trips[1];
  std::printf("trajectory A: %d points, %.0f m long\n", a.size(),
              t2h::traj::PathLength(a));
  std::printf("trajectory B: %d points, %.0f m long\n", b.size(),
              t2h::traj::PathLength(b));

  std::printf("\nexact measures (metres):\n");
  std::printf("  DTW              : %10.1f\n", t2h::dist::Dtw(a, b));
  for (const int w : {1, 2, 4, 8}) {
    std::printf("  cDTW (window %2d) : %10.1f\n", w,
                t2h::dist::ConstrainedDtw(a, b, w));
  }
  std::printf("  discrete Frechet : %10.1f\n", t2h::dist::Frechet(a, b));
  std::printf("  Hausdorff        : %10.1f\n", t2h::dist::Hausdorff(a, b));
  std::printf("  ERP (origin gap) : %10.1f\n", t2h::dist::Erp(a, b));

  std::printf("\nLemma 1 — endpoint lower bound:\n");
  const double lb = t2h::dist::EndpointLowerBound(a, b);
  std::printf("  max(first, last) point distance = %.1f\n", lb);
  std::printf("  <= Frechet (%.1f)? %s;  <= DTW (%.1f)? %s\n",
              t2h::dist::Frechet(a, b),
              lb <= t2h::dist::Frechet(a, b) ? "yes" : "NO",
              t2h::dist::Dtw(a, b), lb <= t2h::dist::Dtw(a, b) ? "yes" : "NO");

  std::printf("\nLemma 2 — reverse symmetric property:\n");
  const t2h::traj::Trajectory ar = t2h::traj::Reversed(a);
  const t2h::traj::Trajectory br = t2h::traj::Reversed(b);
  std::printf("  DTW(A,B)=%.3f vs DTW(Ar,Br)=%.3f\n", t2h::dist::Dtw(a, b),
              t2h::dist::Dtw(ar, br));
  std::printf("  Frechet(A,B)=%.3f vs Frechet(Ar,Br)=%.3f\n",
              t2h::dist::Frechet(a, b), t2h::dist::Frechet(ar, br));
  std::printf("  Hausdorff(A,B)=%.3f vs Hausdorff(Ar,Br)=%.3f\n",
              t2h::dist::Hausdorff(a, b), t2h::dist::Hausdorff(ar, br));
  return 0;
}
