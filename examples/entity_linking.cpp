// Trajectory-based entity linking (the paper's motivating application from
// Jin et al., TKDE'20): the same objects are observed in two datasets with
// different sampling and noise; linking the observations by trajectory
// similarity reveals the identity relation.
//
// This example trains Traj2Hash once, hashes both datasets, and links each
// record in dataset A to its nearest Hamming neighbour in dataset B. Because
// both observations of an object trace the same trip, a good hash links them
// despite never computing a DP distance at query time.
//
//   ./build/examples/entity_linking

#include <cstdio>

#include "core/trainer.h"
#include "distance/distance.h"
#include "search/hamming_index.h"
#include "traj/augment.h"
#include "traj/synthetic.h"

namespace t2h = traj2hash;

int main() {
  t2h::Rng rng(17);
  t2h::traj::CityConfig city = t2h::traj::CityConfig::PortoLike();
  city.max_points = 20;

  // Ground-truth trips; each appears in both datasets as an independent
  // noisy observation (different GPS noise, different dropped points).
  const auto trips = GenerateTrips(city, 900, rng);
  std::vector<t2h::traj::Trajectory> dataset_a, dataset_b;
  for (const t2h::traj::Trajectory& t : trips) {
    dataset_a.push_back(
        t2h::traj::Distort(t2h::traj::DropPoints(t, 0.2, rng), 12.0, rng));
    dataset_b.push_back(
        t2h::traj::Distort(t2h::traj::DropPoints(t, 0.2, rng), 12.0, rng));
  }

  // Train on a seed subset of dataset A with Frechet supervision.
  const std::vector<t2h::traj::Trajectory> seeds(dataset_a.begin(),
                                                 dataset_a.begin() + 60);
  t2h::core::Traj2HashConfig config;
  config.dim = 16;
  config.num_heads = 2;
  config.epochs = 8;
  config.samples_per_anchor = 8;
  config.batch_size = 16;
  auto model =
      std::move(t2h::core::Traj2Hash::Create(config, dataset_a, rng).value());
  model->PretrainGrids({}, rng);
  t2h::core::TrainingData data;
  data.seeds = seeds;
  data.seed_distances = t2h::dist::PairwiseMatrix(
      seeds, t2h::dist::GetDistance(t2h::dist::Measure::kFrechet));
  data.triplet_corpus = dataset_a;
  t2h::core::Trainer trainer(model.get());
  if (const auto r = trainer.Fit(data, rng); !r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }

  // Hash dataset B once; link each A-record through the Hamming index.
  const auto codes_b = t2h::core::HashAll(*model, dataset_b);
  const t2h::search::HammingIndex index(codes_b);
  int top1 = 0, top5 = 0;
  const int num_probes = 300;  // link the first 300 objects
  for (int i = 0; i < num_probes; ++i) {
    const auto neighbors =
        index.HybridTopK(model->HashCode(dataset_a[i]), 5);
    if (!neighbors.empty() && neighbors[0].index == i) ++top1;
    for (const auto& n : neighbors) {
      if (n.index == i) {
        ++top5;
        break;
      }
    }
  }
  std::printf("linked %d objects across datasets:\n", num_probes);
  std::printf("  exact link in top-1: %5.1f%%\n", 100.0 * top1 / num_probes);
  std::printf("  exact link in top-5: %5.1f%%\n", 100.0 * top5 / num_probes);
  std::printf("(chance level: %.2f%%)\n", 100.0 / dataset_b.size());
  return top5 > num_probes / 4 ? 0 : 1;
}
