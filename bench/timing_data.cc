#include "bench/timing_data.h"

#include "common/check.h"

namespace traj2hash::bench {
namespace {

search::Code RandomCode(int bits, Rng& rng) {
  std::vector<float> v(bits);
  for (float& x : v) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
  return search::PackSigns(v);
}

search::Code NearCode(const search::Code& center, int max_flips, Rng& rng) {
  search::Code c = center;
  const int flips = rng.UniformInt(0, max_flips);
  for (int i = 0; i < flips; ++i) {
    const int b = rng.UniformInt(0, c.num_bits - 1);
    c.words[b / 64] ^= (uint64_t{1} << (b % 64));
  }
  return c;
}

std::vector<float> RandomEmbedding(int dim, Rng& rng) {
  std::vector<float> e(dim);
  for (float& v : e) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return e;
}

}  // namespace

TimingWorkload MakeTimingWorkload(int db_size, int num_queries, int dim,
                                  int cluster_size, uint64_t seed) {
  T2H_CHECK(db_size > 0 && num_queries > 0 && cluster_size > 0);
  Rng rng(seed);
  TimingWorkload w;
  w.db_embeddings.reserve(db_size);
  w.db_codes.reserve(db_size);
  const int num_clusters = (db_size + cluster_size - 1) / cluster_size;
  std::vector<search::Code> centers;
  centers.reserve(num_clusters);
  for (int c = 0; c < num_clusters; ++c) centers.push_back(RandomCode(dim, rng));
  for (int i = 0; i < db_size; ++i) {
    w.db_embeddings.push_back(RandomEmbedding(dim, rng));
    // Codes cluster within Hamming radius 2 of their centre, mimicking
    // trained codes (and giving Hamming-Hybrid its probe hits).
    w.db_codes.push_back(NearCode(centers[i / cluster_size], 2, rng));
  }
  for (int q = 0; q < num_queries; ++q) {
    w.query_embeddings.push_back(RandomEmbedding(dim, rng));
    // Half of the queries sit inside a cluster (table-lookup path), half are
    // isolated (fallback path), mirroring the mixed behaviour in §V-E.
    if (q % 2 == 0) {
      w.query_codes.push_back(
          NearCode(centers[rng.UniformInt(0, num_clusters - 1)], 1, rng));
    } else {
      w.query_codes.push_back(RandomCode(dim, rng));
    }
  }
  return w;
}

}  // namespace traj2hash::bench
