// Reproduces Fig. 7: the effect of the grid representation — the decomposed
// NCE-pre-trained representation vs node2vec per-cell embeddings vs no grid
// channel (-Grids) — on Porto under the Frechet distance, plus the
// pre-training cost comparison discussed alongside the figure (decomposed
// ~80 s vs node2vec >2 h at paper scale).
//
// Expected shape: Decomposed best on HR@10/R10@50, node2vec second, -Grids
// worst; decomposed pre-training orders of magnitude cheaper.

#include <cstdio>

#include "bench/harness.h"
#include "common/stopwatch.h"
#include "embedding/node2vec.h"

namespace t2h = traj2hash;
using t2h::bench::MeasureData;
using t2h::bench::Scale;
using t2h::bench::Traj2HashTweaks;

int main() {
  const Scale scale = t2h::bench::GetScale();
  std::printf("Fig. 7 reproduction (grid representation study), scale='%s'\n",
              scale.name.c_str());

  // Both grid representations use the same (coarsened) lattice so that
  // node2vec's full per-cell table stays trainable on one core; the paper
  // runs both at 50 m over 1100x1100 cells.
  const double cell_m = scale.name == "large" ? 150.0 : 250.0;

  const t2h::bench::Dataset data = t2h::bench::MakeDataset(
      t2h::traj::CityConfig::PortoLike(), scale, 700);
  const MeasureData md =
      t2h::bench::ComputeMeasureData(data, t2h::dist::Measure::kFrechet);

  // --- Pre-training cost comparison on the shared lattice. ---
  const t2h::traj::BoundingBox box = t2h::traj::ComputeBoundingBox(data.all);
  const t2h::traj::Grid grid =
      t2h::traj::Grid::Create(box, cell_m).value();
  {
    t2h::Rng rng(11);
    t2h::embedding::DecomposedGridEmbedding dec(grid.num_x(), grid.num_y(),
                                                scale.dim, rng);
    t2h::embedding::GridPretrainOptions opt;
    opt.samples_per_epoch = scale.grid_pretrain_samples;
    opt.epochs = 2;
    t2h::Stopwatch sw;
    dec.Pretrain(opt, rng);
    std::printf("\nPre-training cost on %dx%d cells (d=%d):\n", grid.num_x(),
                grid.num_y(), scale.dim);
    std::printf("  Decomposed+NCE : %8.2f s  (%d coordinate embeddings)\n",
                sw.ElapsedSeconds(), grid.num_x() + grid.num_y());
  }
  {
    t2h::Rng rng(12);
    t2h::embedding::Node2vecGridEmbedding n2v(grid.num_x(), grid.num_y(),
                                              scale.dim, rng);
    t2h::embedding::Node2vecOptions opt;
    opt.dim = scale.dim;
    opt.walk_length = 20;
    opt.num_walks = 2;
    opt.window = 5;
    t2h::Stopwatch sw;
    const int64_t pairs = n2v.Train(opt, rng);
    std::printf("  Node2vec       : %8.2f s  (%d cell embeddings, %lld"
                " skip-gram pairs)\n",
                sw.ElapsedSeconds(), grid.num_x() * grid.num_y(),
                static_cast<long long>(pairs));
  }

  // --- Retrieval quality comparison (HR@10 / R10@50, Euclidean space),
  // averaged over independent training seeds (single-seed HR@10 noise at
  // this scale is ~ +-0.05, comparable to the margins under study). ---
  const std::vector<uint64_t> seeds = {710, 720, 730};
  std::printf("\n%-12s %-8s %-8s   (mean of %zu seeds)\n", "Variant",
              "HR@10", "R10@50", seeds.size());
  auto run_variant = [&](const char* name, const Traj2HashTweaks& tweaks) {
    double hr10 = 0.0, r10_50 = 0.0;
    for (const uint64_t seed : seeds) {
      const auto r = t2h::bench::RunTraj2Hash(data, md, scale, tweaks, seed);
      const auto m = r.EuclideanMetrics(md);
      hr10 += m.hr10 / seeds.size();
      r10_50 += m.r10_50 / seeds.size();
    }
    std::printf("%-12s %-8.4f %-8.4f\n", name, hr10, r10_50);
    std::fflush(stdout);
  };
  {
    Traj2HashTweaks tweaks;
    tweaks.fine_cell_m = cell_m;
    run_variant("Decomposed", tweaks);
  }
  {
    Traj2HashTweaks tweaks;
    tweaks.node2vec_cell_m = cell_m;
    run_variant("Node2vec", tweaks);
  }
  {
    Traj2HashTweaks tweaks;
    tweaks.use_grid_channel = false;
    run_variant("-Grids", tweaks);
  }
  return 0;
}
