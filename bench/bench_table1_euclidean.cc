// Reproduces Table I: top-k similar trajectory search quality in EUCLIDEAN
// space for seven methods x {Frechet, Hausdorff, DTW} x {Porto, ChengDu}.
//
// The paper's absolute numbers come from the real taxi datasets and GPU-scale
// training; this harness reproduces the protocol and the shape of the result
// (Traj2Hash best on every measure; NeuTraj variants strong on Frechet/DTW;
// Transformer/TrajGAT strongest among baselines on Hausdorff; t2vec/CL-TSim,
// being distance-agnostic, worst) at T2H_BENCH_SCALE.

#include <cstdio>

#include "bench/harness.h"

namespace t2h = traj2hash;
using t2h::bench::Dataset;
using t2h::bench::MeasureData;
using t2h::bench::MethodResult;
using t2h::bench::Scale;

int main() {
  const Scale scale = t2h::bench::GetScale();
  std::printf("Table I reproduction (Euclidean space), scale='%s'\n",
              scale.name.c_str());
  const std::vector<t2h::dist::Measure> measures = {
      t2h::dist::Measure::kFrechet, t2h::dist::Measure::kHausdorff,
      t2h::dist::Measure::kDtw};
  const std::vector<std::string> baselines = {
      "t2vec", "CL-TSim", "NT-No-SAM", "NeuTraj", "Transformer", "TrajGAT"};

  t2h::bench::PrintTableHeader("Table I: Euclidean-space retrieval",
                               {"Frechet", "Hausdorff", "DTW"});
  uint64_t seed = 100;
  for (const t2h::traj::CityConfig& city :
       {t2h::traj::CityConfig::PortoLike(),
        t2h::traj::CityConfig::ChengduLike()}) {
    const Dataset data = t2h::bench::MakeDataset(city, scale, seed++);
    std::vector<MeasureData> md;
    md.reserve(measures.size());
    for (const auto m : measures) {
      md.push_back(t2h::bench::ComputeMeasureData(data, m));
    }
    for (const std::string& name : baselines) {
      std::vector<t2h::eval::RetrievalMetrics> row;
      for (const MeasureData& m : md) {
        const MethodResult r = t2h::bench::RunBaseline(
            name, data, m, scale, seed++, /*with_hash_head=*/false);
        row.push_back(r.EuclideanMetrics(m));
      }
      t2h::bench::PrintRow(data.name, name, row);
    }
    std::vector<t2h::eval::RetrievalMetrics> row;
    for (const MeasureData& m : md) {
      const MethodResult r = t2h::bench::RunTraj2Hash(
          data, m, scale, t2h::bench::Traj2HashTweaks{}, seed++);
      row.push_back(r.EuclideanMetrics(m));
    }
    t2h::bench::PrintRow(data.name, "Traj2Hash", row);
  }
  return 0;
}
