// Serve front-end bench (repo extension, not a paper figure): measures what
// DESIGN.md §15's batched-encode coalescing + epoch-keyed result cache buy
// under concurrent clients, sweeping the coalescer's bounded wait across a
// uniform (all-unique queries: worst case for the cache, pure coalescing
// win) and a zipf:1.1 (hot-key skew: the cache's case) workload, against the
// frontend-off baseline.
//
// Expected shape: on zipf:1.1 the cache absorbs the hot keys (hit rate near
// 1 on a quiescent index), multiplying QPS well past the baseline at equal
// or better p99; on uniform the cache never hits and QPS stays within noise
// of the baseline — the bounded wait must not buy batching with latency.
// Batch occupancy rises with the wait setting while clients overlap.
//
// Each (dist, wait) cell runs under two arrival pacings: closed-loop (a
// client re-issues the moment its previous query returns — arrivals
// anti-correlate, so coalescable overlap is scarce and batches stay small)
// and open-loop at 1.5x the measured closed-loop baseline capacity (requests
// arrive on a schedule regardless of completions, the replayed-log shape
// real serving sees). Open-loop overload is the coalescer's regime: the
// pending queue stays deep, flushes run at max_batch, and throughput holds
// at capacity instead of collapsing under context-switch thrash.
//
// Gates (exit non-zero, run by bench_smoke / ctest): every front-end
// configuration must answer a query sample bit-identically to the baseline
// engine, the zipf:1.1 hit rate must clear a floor that only an
// epoch-correct cache reaches, and overloaded uniform at the widest wait
// must coalesce (median occupancy > 1).
//
// Scale: T2H_BENCH_SCALE=tiny shrinks everything ~4x; `large` grows ~4x.
// T2H_BENCH_JSON=<path> additionally writes the sweep as a JSON array
// (tools/record_bench.sh-style artifact, see BENCH_frontend.json).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/zipf.h"
#include "core/model.h"
#include "serve/engine.h"
#include "traj/synthetic.h"

namespace t2h = traj2hash;

namespace {

struct FrontendScale {
  int db_size = 1200;
  int clients = 12;  ///< well past max_batch, so full flushes can happen
  int ops_per_client = 100;
  int zipf_distinct = 64;  ///< hot-key pool size for the zipf workload
};

FrontendScale GetScale() {
  const char* env = std::getenv("T2H_BENCH_SCALE");
  const std::string scale = env != nullptr ? env : "small";
  FrontendScale s;
  if (scale == "tiny") {
    s.db_size = 300;
    s.clients = 6;
    s.ops_per_client = 40;
    s.zipf_distinct = 16;
  } else if (scale == "large") {
    s.db_size = 5000;
    s.clients = 16;
    s.ops_per_client = 250;
    s.zipf_distinct = 256;
  }
  return s;
}

struct RunResult {
  double qps = 0.0;
  double p99_us = 0.0;
  double occupancy_p50 = 0.0;
  double occupancy_mean = 0.0;
  double hit_rate = 0.0;
  bool ok = true;  ///< every query completed
};

/// Drives `clients` threads through engine.Query over a shared precomputed
/// query stream, after one warm-up pass over the distinct queries. Stats
/// are reset between warm-up and measurement so the histograms describe the
/// measured window only.
///
/// `interarrival_us == 0` is closed-loop: client c owns ops c, c+clients,
/// ... and re-issues the moment its previous query returns. A positive
/// value switches to open-loop: op i is due at `i * interarrival_us` past
/// the run start, and the next free client issues it then (or immediately,
/// if the whole fleet is still busy when it comes due — offered load past
/// what `clients` can carry degrades gracefully instead of lying about the
/// schedule).
RunResult Drive(t2h::serve::QueryEngine& engine,
                const std::vector<const t2h::traj::Trajectory*>& stream,
                const std::vector<t2h::traj::Trajectory>& distinct,
                int clients, int k, double interarrival_us) {
  for (const t2h::traj::Trajectory& q : distinct) {
    if (!engine.Query(q, k).status.ok()) return {.ok = false};
  }
  engine.ResetStats();
  const t2h::serve::FrontendSnapshot before = engine.frontend_stats();

  std::atomic<int> incomplete{0};
  std::atomic<size_t> next_op{0};
  t2h::Stopwatch wall;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      if (interarrival_us <= 0.0) {
        for (size_t i = c; i < stream.size(); i += clients) {
          if (!engine.Query(*stream[i], k).status.ok()) {
            incomplete.fetch_add(1);
          }
        }
        return;
      }
      for (;;) {
        const size_t i = next_op.fetch_add(1);
        if (i >= stream.size()) return;
        std::this_thread::sleep_until(
            start + std::chrono::microseconds(static_cast<int64_t>(
                        static_cast<double>(i) * interarrival_us)));
        if (!engine.Query(*stream[i], k).status.ok()) incomplete.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = wall.ElapsedSeconds();

  RunResult r;
  r.ok = incomplete.load() == 0;
  r.qps = static_cast<double>(stream.size()) / seconds;
  r.p99_us = engine.stats().Of(t2h::serve::Stage::kTotal).p99_us;
  const t2h::serve::FrontendSnapshot after = engine.frontend_stats();
  r.occupancy_p50 = after.occupancy.p50;
  r.occupancy_mean = after.occupancy.mean;
  const uint64_t lookups = after.cache_lookups - before.cache_lookups;
  const uint64_t hits = after.cache_hits - before.cache_hits;
  r.hit_rate = lookups > 0
                   ? static_cast<double>(hits) / static_cast<double>(lookups)
                   : 0.0;
  return r;
}

/// Bit-identity gate: the front-end engine must answer exactly like the
/// baseline for every sampled query (cold or cached).
bool Identical(t2h::serve::QueryEngine& frontend,
               t2h::serve::QueryEngine& baseline,
               const std::vector<t2h::traj::Trajectory>& sample, int k) {
  for (const t2h::traj::Trajectory& q : sample) {
    const auto want = baseline.Query(q, k);
    const auto got = frontend.Query(q, k);
    if (!want.status.ok() || !got.status.ok()) return false;
    if (got.neighbors.size() != want.neighbors.size()) return false;
    for (size_t i = 0; i < want.neighbors.size(); ++i) {
      if (got.neighbors[i].index != want.neighbors[i].index ||
          got.neighbors[i].distance != want.neighbors[i].distance) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  const FrontendScale scale = GetScale();
  const int total_ops = scale.clients * scale.ops_per_client;
  constexpr int kTopK = 10;
  std::printf("frontend bench: db=%d clients=%d ops=%d zipf_distinct=%d\n",
              scale.db_size, scale.clients, total_ops, scale.zipf_distinct);

  t2h::Rng rng(4242);
  t2h::traj::CityConfig city = t2h::traj::CityConfig::PortoLike();
  // Longer trajectories + a serving-sized model (below) make the encode
  // stage dominate per-query cost, as it does at paper scale — that is the
  // regime coalescing exists for. With a toy encoder the forward pass is
  // shorter than a thread wake-up and batches can never form.
  city.max_points = 48;
  // db + the uniform workload's all-unique queries + the zipf hot pool.
  const auto corpus =
      GenerateTrips(city, scale.db_size + total_ops + scale.zipf_distinct, rng);
  const std::vector<t2h::traj::Trajectory> db(corpus.begin(),
                                              corpus.begin() + scale.db_size);

  // Uniform = every op its own query: zero reuse, the cache's worst case.
  std::vector<const t2h::traj::Trajectory*> uniform_stream;
  std::vector<t2h::traj::Trajectory> uniform_distinct;  // warm-up sample only
  for (int i = 0; i < total_ops; ++i) {
    uniform_stream.push_back(&corpus[scale.db_size + i]);
  }
  for (int i = 0; i < std::min(total_ops, 16); ++i) {
    uniform_distinct.push_back(corpus[scale.db_size + total_ops - 1 - i]);
  }

  // Zipf:1.1 over a small hot pool — the skew real query logs show.
  std::vector<t2h::traj::Trajectory> zipf_pool(
      corpus.begin() + scale.db_size + total_ops, corpus.end());
  std::vector<const t2h::traj::Trajectory*> zipf_stream;
  {
    t2h::ZipfSampler zipf(scale.zipf_distinct, 1.1);
    t2h::Rng zipf_rng(4243);
    for (int i = 0; i < total_ops; ++i) {
      zipf_stream.push_back(&zipf_pool[zipf.Sample(zipf_rng)]);
    }
  }

  t2h::core::Traj2HashConfig cfg;
  cfg.dim = 128;
  cfg.num_blocks = 2;
  cfg.num_heads = 4;
  auto model = std::move(t2h::core::Traj2Hash::Create(cfg, db, rng).value());

  t2h::serve::QueryEngine baseline(model.get(),
                                   {.num_threads = 4, .num_shards = 4});
  if (!baseline.InsertAll(db).ok()) return 1;

  struct Config {
    const char* name;
    int64_t batch_wait_us;  ///< -1 = front-end off (baseline)
  };
  // The wait sweep brackets the single-query encode cost (~ms at this model
  // size): 0 = flush asap, 2ms ~ one encode, 8ms ~ several.
  const Config configs[] = {
      {"off", -1}, {"wait0", 0}, {"wait2000", 2000}, {"wait8000", 8000}};
  struct Row {
    const char* dist;
    const char* pacing;
    const Config* config;
    RunResult r;
  };
  std::vector<Row> rows;
  bool gates_ok = true;
  // Closed-loop capacity of the frontend-off baseline, per distribution;
  // the open-loop pacings offer 1.5x this. Filled by the first ("off")
  // config's closed rows before any open row runs.
  double base_qps[2] = {0.0, 0.0};

  std::printf("%8s %9s %9s %12s %12s %8s %8s %9s\n", "dist", "pacing",
              "wait_us", "QPS", "p99_us", "occ_p50", "occ_mu", "hit_rate");
  for (const Config& config : configs) {
    for (const bool zipf : {false, true}) {
      for (const bool open : {false, true}) {
        t2h::serve::QueryEngineOptions options{.num_threads = 4,
                                               .num_shards = 4};
        if (config.batch_wait_us >= 0) {
          options.enable_coalescing = true;
          options.max_batch = 4;
          options.max_wait_us = config.batch_wait_us;
          options.cache_entries = 4 * scale.zipf_distinct;
        }
        t2h::serve::QueryEngine engine(model.get(), options);
        if (!engine.InsertAll(db).ok()) return 1;

        const double interarrival_us =
            open ? 1e6 / (1.5 * base_qps[zipf ? 1 : 0]) : 0.0;
        const RunResult r =
            Drive(engine, zipf ? zipf_stream : uniform_stream,
                  zipf ? zipf_pool : uniform_distinct, scale.clients, kTopK,
                  interarrival_us);
        const char* dist = zipf ? "zipf:1.1" : "uniform";
        const char* pacing = open ? "open1.5x" : "closed";
        if (!open && config.batch_wait_us < 0) {
          base_qps[zipf ? 1 : 0] = r.qps;
        }
        rows.push_back({dist, pacing, &config, r});
        std::printf("%8s %9s %9lld %12.1f %12.1f %8.0f %8.2f %9.3f\n", dist,
                    pacing, static_cast<long long>(config.batch_wait_us),
                    r.qps, r.p99_us, r.occupancy_p50, r.occupancy_mean,
                    r.hit_rate);
        if (!r.ok) {
          std::printf("FAILED: incomplete queries under %s/%s/%s\n",
                      config.name, dist, pacing);
          gates_ok = false;
        }

        // Gate 1 — bit-identity: cold, cached and coalesced answers must
        // all equal the baseline engine's.
        std::vector<t2h::traj::Trajectory> sample(
            zipf_pool.begin(),
            zipf_pool.begin() + std::min<size_t>(zipf_pool.size(), 12));
        sample.insert(sample.end(), uniform_distinct.begin(),
                      uniform_distinct.end());
        if (!Identical(engine, baseline, sample, kTopK)) {
          std::printf("FAILED: %s/%s answers differ from the baseline\n",
                      dist, pacing);
          gates_ok = false;
        }

        // Gate 2 — the zipf hit-rate floor: on a quiescent index a correct
        // epoch-keyed cache must absorb the warmed hot pool.
        if (config.batch_wait_us >= 0 && zipf && r.hit_rate < 0.5) {
          std::printf("FAILED: zipf:1.1 hit rate %.3f below the 0.5 floor\n",
                      r.hit_rate);
          gates_ok = false;
        }

        // Gate 3 — overload must actually coalesce: at 1.5x capacity with
        // all-miss queries and a generous bounded wait, the pending queue
        // stays deep and median batch occupancy above 1 is a structural
        // property of the coalescer, not a timing accident.
        if (config.batch_wait_us >= 8000 && !zipf && open &&
            r.occupancy_p50 <= 1.0) {
          std::printf(
              "FAILED: open1.5x/uniform occupancy p50 %.0f at wait %lld us "
              "— concurrent admissions did not coalesce\n",
              r.occupancy_p50,
              static_cast<long long>(config.batch_wait_us));
          gates_ok = false;
        }
      }
    }
  }

  if (const char* json_path = std::getenv("T2H_BENCH_JSON");
      json_path != nullptr) {
    if (std::FILE* f = std::fopen(json_path, "w"); f != nullptr) {
      std::fprintf(f,
                   "{\n  \"bench\": \"frontend\", \"db\": %d, \"clients\": "
                   "%d, \"ops\": %d,\n  \"zipf_distinct\": %d, \"k\": %d, "
                   "\"runs\": [\n",
                   scale.db_size, scale.clients, total_ops,
                   scale.zipf_distinct, kTopK);
      for (size_t i = 0; i < rows.size(); ++i) {
        const Row& row = rows[i];
        std::fprintf(
            f,
            "    {\"dist\": \"%s\", \"pacing\": \"%s\", "
            "\"batch_wait_us\": %lld, "
            "\"frontend\": %s, \"qps\": %.1f, \"p99_us\": %.1f, "
            "\"occupancy_p50\": %.0f, \"occupancy_mean\": %.2f, "
            "\"hit_rate\": %.3f}%s\n",
            row.dist, row.pacing,
            static_cast<long long>(row.config->batch_wait_us),
            row.config->batch_wait_us >= 0 ? "true" : "false", row.r.qps,
            row.r.p99_us, row.r.occupancy_p50, row.r.occupancy_mean,
            row.r.hit_rate, i + 1 < rows.size() ? "," : "");
      }
      std::fprintf(f, "  ]\n}\n");
      std::fclose(f);
      std::printf("json written to %s\n", json_path);
    }
  }

  std::printf("frontend bench %s\n", gates_ok ? "PASSED" : "FAILED");
  return gates_ok ? 0 : 1;
}
