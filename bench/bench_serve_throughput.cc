// Serving-layer throughput bench (repo extension, not a paper figure): sweeps
// worker-thread count x shard count for the `serve::QueryEngine` and reports
// QPS plus per-stage (encode / probe / rank / total) p50/p95/p99 latency.
//
// Expected shape: QPS scales with threads until the core count saturates
// (this container may have few cores — the sweep still demonstrates the
// scaling surface); encode dominates per-query latency at model dims, so
// shard count mostly moves the probe tail, not the mean.
//
// A second phase measures serving throughput while a mutator thread churns
// the index (insert/remove/update through the live-mutation path, see
// src/ingest/), and verifies afterwards that the quiescent index answers
// bit-identically to brute force — mutation never costs correctness.
//
// Scale: T2H_BENCH_SCALE=tiny shrinks the database/queries by ~4x; `large`
// grows them ~4x.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/model.h"
#include "search/code.h"
#include "serve/engine.h"
#include "traj/synthetic.h"

namespace t2h = traj2hash;

namespace {

struct ServeScale {
  int db_size = 1200;
  int num_queries = 96;
  int rounds = 3;  ///< query set is replayed this many times
};

ServeScale GetServeScale() {
  const char* env = std::getenv("T2H_BENCH_SCALE");
  const std::string scale = env != nullptr ? env : "small";
  ServeScale s;
  if (scale == "tiny") {
    s.db_size = 300;
    s.num_queries = 32;
    s.rounds = 2;
  } else if (scale == "large") {
    s.db_size = 5000;
    s.num_queries = 256;
    s.rounds = 4;
  }
  return s;
}

void PrintStageRow(const char* stage,
                   const t2h::serve::LatencyHistogram::Summary& s) {
  std::printf("    %-7s p50 %9.1f us   p95 %9.1f us   p99 %9.1f us\n", stage,
              s.p50_us, s.p95_us, s.p99_us);
}

}  // namespace

int main() {
  const ServeScale scale = GetServeScale();
  std::printf("serve throughput bench: db=%d queries=%d rounds=%d\n",
              scale.db_size, scale.num_queries, scale.rounds);

  t2h::Rng rng(4242);
  t2h::traj::CityConfig city = t2h::traj::CityConfig::PortoLike();
  city.max_points = 16;
  const auto corpus =
      GenerateTrips(city, scale.db_size + scale.num_queries, rng);
  const std::vector<t2h::traj::Trajectory> db(corpus.begin(),
                                              corpus.begin() + scale.db_size);
  const std::vector<t2h::traj::Trajectory> queries(
      corpus.begin() + scale.db_size, corpus.end());

  // An untrained model prices the encode stage identically to a trained one;
  // retrieval quality is irrelevant to a throughput bench.
  t2h::core::Traj2HashConfig cfg;
  cfg.dim = 16;
  cfg.num_blocks = 1;
  cfg.num_heads = 4;
  auto model = std::move(t2h::core::Traj2Hash::Create(cfg, db, rng).value());

  std::printf("%8s %8s %12s %12s\n", "threads", "shards", "QPS", "mean_us");
  for (const int threads : {1, 2, 4, 8}) {
    for (const int shards : {1, 4}) {
      t2h::serve::QueryEngine engine(
          model.get(), {.num_threads = threads, .num_shards = shards});
      if (!engine.InsertAll(db).ok()) return 1;
      // Warm-up round, then measure fresh stats.
      engine.QueryBatch(queries, 10);
      engine.ResetStats();

      t2h::Stopwatch wall;
      for (int r = 0; r < scale.rounds; ++r) {
        engine.QueryBatch(queries, 10);
      }
      const double seconds = wall.ElapsedSeconds();
      const int total_queries = scale.rounds * scale.num_queries;
      const auto snapshot = engine.stats();
      std::printf("%8d %8d %12.1f %12.1f\n", threads, shards,
                  total_queries / seconds,
                  snapshot.Of(t2h::serve::Stage::kTotal).mean_us);
      PrintStageRow("encode", snapshot.Of(t2h::serve::Stage::kEncode));
      PrintStageRow("probe", snapshot.Of(t2h::serve::Stage::kProbe));
      PrintStageRow("rank", snapshot.Of(t2h::serve::Stage::kRank));
      PrintStageRow("total", snapshot.Of(t2h::serve::Stage::kTotal));
    }
  }

  // Phase 2: query throughput while the index is being mutated.
  {
    const int churn_ops = scale.db_size / 2;
    t2h::serve::QueryEngine engine(
        model.get(), {.num_threads = 4, .num_shards = 4});
    if (!engine.InsertAll(db).ok()) return 1;
    engine.QueryBatch(queries, 10);
    engine.ResetStats();

    std::atomic<int64_t> mutations{0};
    t2h::Stopwatch churn_wall;
    std::thread mutator([&engine, &db, &mutations, churn_ops] {
      t2h::Rng mut_rng(4243);
      for (int i = 0; i < churn_ops; ++i) {
        const double dice = mut_rng.Uniform(0.0, 1.0);
        t2h::Status s;
        if (dice < 0.5) {
          s = engine.Insert(db[i % db.size()]).status();
        } else {
          const int id = static_cast<int>(
              mut_rng.Uniform(0.0, static_cast<double>(engine.size())));
          // kNotFound = the picked id was already removed; not a failure.
          s = dice < 0.75 ? engine.Remove(id)
                          : engine.Update(id, db[i % db.size()]);
        }
        if (s.ok()) mutations.fetch_add(1, std::memory_order_relaxed);
      }
    });
    t2h::Stopwatch wall;
    for (int r = 0; r < scale.rounds; ++r) {
      engine.QueryBatch(queries, 10);
    }
    const double query_seconds = wall.ElapsedSeconds();
    mutator.join();
    const double churn_seconds = churn_wall.ElapsedSeconds();
    const int total_queries = scale.rounds * scale.num_queries;

    // Quiescent correctness: top-k must match brute force over the shards'
    // own snapshots (same check the churn tests make, here as a bench gate).
    std::vector<int> ids;
    std::vector<t2h::search::Code> codes;
    for (int s = 0; s < engine.index().num_shards(); ++s) {
      for (const auto& entry : engine.index().shard(s).SnapshotEntries()) {
        ids.push_back(entry.id);
        codes.push_back(entry.code);
      }
    }
    bool exact = true;
    for (int q = 0; q < std::min(scale.num_queries, 16) && exact; ++q) {
      const t2h::search::Code code = model->HashCode(queries[q]);
      std::vector<t2h::search::Neighbor> want;
      for (size_t i = 0; i < codes.size(); ++i) {
        want.push_back({ids[i], static_cast<double>(t2h::search::
                                    HammingDistance(codes[i], code))});
      }
      std::sort(want.begin(), want.end(), t2h::search::NeighborLess);
      if (want.size() > 10) want.resize(10);
      const auto got = engine.index().QueryTopK(code, 10);
      exact = got.size() == want.size();
      for (size_t i = 0; exact && i < want.size(); ++i) {
        exact = got[i].index == want[i].index &&
                got[i].distance == want[i].distance;
      }
    }
    std::printf(
        "under churn (4 threads, 4 shards): %.1f QPS, %.1f mutations/s "
        "(%lld applied), %d compactions, post-churn queries %s\n",
        total_queries / query_seconds, mutations.load() / churn_seconds,
        static_cast<long long>(mutations.load()),
        engine.index().compactions_run(), exact ? "exact" : "NOT EXACT");
    if (!exact) return 1;
  }
  return 0;
}
