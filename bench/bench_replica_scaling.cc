// Replication read-scaling bench (repo extension, not a paper figure):
// measures router read-QPS against a WAL-shipped replica group as the
// replica count grows R=1 -> 3, with a fixed reader-thread pool. The encode
// stage is skipped on purpose — queries are pre-hashed random codes — so
// the number isolates the replicated read path (router pick + replica
// epoch-load + sharded top-k), not the model.
//
// Expected shape: on a multi-core box QPS grows with R until the reader
// pool or core count saturates; on this (likely single-core) container the
// sweep mostly demonstrates that adding replicas costs nothing — the
// routed-read path has no cross-replica locks.
//
// Like the other benches this doubles as a correctness gate: after the
// sweep every replica must be caught up and bit-identical to the primary
// (exit non-zero otherwise).
//
// Scale: T2H_BENCH_SCALE=tiny shrinks the database/queries by ~4x; `large`
// grows them ~4x.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "replica/replica.h"
#include "replica/router.h"
#include "replica/transport.h"
#include "search/code.h"
#include "serve/sharded_index.h"

namespace t2h = traj2hash;

namespace {

struct ReplicaScale {
  int db_size = 2000;
  int num_queries = 128;
  int rounds = 4;
  int reader_threads = 4;
};

ReplicaScale GetReplicaScale() {
  const char* env = std::getenv("T2H_BENCH_SCALE");
  const std::string scale = env != nullptr ? env : "small";
  ReplicaScale s;
  if (scale == "tiny") {
    s.db_size = 500;
    s.num_queries = 32;
    s.rounds = 2;
    s.reader_threads = 2;
  } else if (scale == "large") {
    s.db_size = 8000;
    s.num_queries = 512;
    s.rounds = 8;
  }
  return s;
}

t2h::search::Code RandomCode(int bits, t2h::Rng& rng) {
  std::vector<float> signs(bits);
  for (float& x : signs) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
  return t2h::search::PackSigns(signs);
}

}  // namespace

int main() {
  const ReplicaScale scale = GetReplicaScale();
  constexpr int kBits = 64;
  std::printf(
      "replica read-scaling bench: db=%d queries=%d rounds=%d readers=%d\n",
      scale.db_size, scale.num_queries, scale.rounds, scale.reader_threads);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "t2h_bench_replica";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string wal_path = (dir / "primary.wal").string();

  // Primary: a WAL-attached sharded index filled with random codes. No
  // model — the bench prices the replicated read path only.
  t2h::Rng rng(4242);
  t2h::serve::ShardedIndex index(4, kBits);
  if (!index.AttachWal(wal_path).ok()) return 1;
  for (int i = 0; i < scale.db_size; ++i) {
    if (!index.Insert(RandomCode(kBits, rng), {}).ok()) return 1;
  }
  t2h::replica::Primary primary(&index, wal_path);

  std::vector<t2h::search::Code> queries;
  for (int q = 0; q < scale.num_queries; ++q) {
    queries.push_back(RandomCode(kBits, rng));
  }

  std::printf("%9s %12s %14s\n", "replicas", "QPS", "queries_ok");
  bool all_ok = true;
  for (const int replicas : {1, 2, 3}) {
    std::vector<std::unique_ptr<t2h::replica::Replica>> group;
    std::vector<t2h::replica::Replica*> members;
    for (int r = 0; r < replicas; ++r) {
      group.push_back(std::make_unique<t2h::replica::Replica>(
          &primary, t2h::replica::ReplicaOptions{},
          "replica-" + std::to_string(r)));
      const std::string boot =
          (dir / ("boot_r" + std::to_string(r) + ".snap")).string();
      if (!group.back()->Bootstrap(boot).ok()) return 1;
      members.push_back(group.back().get());
    }
    t2h::replica::ReadRouter router(
        members, {.max_attempts = replicas + 1});

    // Warm-up round, then the measured rounds from a fixed reader pool.
    for (const auto& code : queries) router.Query(code, 10);
    std::atomic<int64_t> ok{0};
    t2h::Stopwatch wall;
    std::vector<std::thread> readers;
    for (int t = 0; t < scale.reader_threads; ++t) {
      readers.emplace_back([&router, &queries, &ok, &scale] {
        for (int r = 0; r < scale.rounds; ++r) {
          for (const auto& code : queries) {
            if (router.Query(code, 10).status.ok()) {
              ok.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    for (auto& th : readers) th.join();
    const double seconds = wall.ElapsedSeconds();
    const int64_t total =
        static_cast<int64_t>(scale.reader_threads) * scale.rounds *
        scale.num_queries;
    std::printf("%9d %12.1f %10lld/%lld\n", replicas, total / seconds,
                static_cast<long long>(ok.load()),
                static_cast<long long>(total));
    all_ok = all_ok && ok.load() == total;

    // Correctness gate: every replica caught up and bit-identical to the
    // primary on the query set's head.
    for (const auto& rep : group) {
      if (!rep->CatchUp().ok() ||
          rep->applied_seq() != primary.committed_seq()) {
        std::printf("replica %s NOT caught up\n", rep->name().c_str());
        all_ok = false;
        continue;
      }
      for (int q = 0; q < std::min(scale.num_queries, 16); ++q) {
        const auto want = index.QueryTopK(queries[q], 10);
        const auto got = rep->Query(queries[q], 10);
        bool same = got.ok() && got.value().size() == want.size();
        for (size_t i = 0; same && i < want.size(); ++i) {
          same = got.value()[i].index == want[i].index &&
                 got.value()[i].distance == want[i].distance;
        }
        if (!same) {
          std::printf("replica %s DIVERGED on query %d\n",
                      rep->name().c_str(), q);
          all_ok = false;
          break;
        }
      }
    }
  }

  // Socket-transport phase (DESIGN.md §16): the same replicated read path,
  // but shipped over a real loopback socket instead of in-process WAL
  // polling. Two numbers matter operationally: how long a cold replica
  // takes to bootstrap + catch up over the wire, and how far behind a
  // tailing replica runs while the primary keeps committing.
  {
    t2h::replica::ShipServer server(&primary, {});
    if (!server.Start().ok()) return 1;
    t2h::replica::Replica replica(
        &primary,
        std::make_unique<t2h::replica::SocketTransport>("127.0.0.1",
                                                        server.port()),
        t2h::replica::ReplicaOptions{}, "socket-replica");

    t2h::Stopwatch catchup_wall;
    if (!replica.Bootstrap((dir / "boot_socket.snap").string()).ok()) {
      std::printf("socket bootstrap FAILED\n");
      return 1;
    }
    const double catchup_ms = catchup_wall.ElapsedSeconds() * 1e3;

    // Steady state: one mutator commits on the primary while a ship thread
    // drains the socket; sample the apply lag after every commit.
    const int churn = scale.db_size / 4;
    std::atomic<bool> stop{false};
    std::thread shipper([&replica, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        (void)replica.PollApplyOnce();
      }
    });
    int64_t max_lag = 0;
    double sum_lag = 0.0;
    t2h::Stopwatch churn_wall;
    for (int i = 0; i < churn; ++i) {
      if (!index.Insert(RandomCode(kBits, rng), {}).ok()) return 1;
      const int64_t lag = replica.lag_records();
      max_lag = std::max(max_lag, lag);
      sum_lag += static_cast<double>(lag);
    }
    const double churn_seconds = churn_wall.ElapsedSeconds();
    stop.store(true, std::memory_order_release);
    shipper.join();

    bool socket_ok = replica.CatchUp().ok() &&
                     replica.applied_seq() == primary.committed_seq();
    for (int q = 0; socket_ok && q < std::min(scale.num_queries, 16); ++q) {
      const auto want = index.QueryTopK(queries[q], 10);
      const auto got = replica.Query(queries[q], 10);
      socket_ok = got.ok() && got.value().size() == want.size();
      for (size_t i = 0; socket_ok && i < want.size(); ++i) {
        socket_ok = got.value()[i].index == want[i].index &&
                    got.value()[i].distance == want[i].distance;
      }
    }
    const auto& counters = replica.transport().counters();
    std::printf(
        "socket transport: catch-up %.1f ms (db=%d), steady-state lag "
        "mean=%.1f max=%lld records over %d commits (%.0f commits/s), "
        "heartbeats=%lld, reconnects=%lld, %s\n",
        catchup_ms, scale.db_size, sum_lag / churn,
        static_cast<long long>(max_lag), churn, churn / churn_seconds,
        static_cast<long long>(counters.heartbeats.load()),
        static_cast<long long>(counters.reconnects.load()),
        socket_ok ? "bit-identical" : "DIVERGED");
    all_ok = all_ok && socket_ok;
    server.Stop();
  }

  std::filesystem::remove_all(dir);
  if (!all_ok) {
    std::printf("replica scaling bench FAILED correctness gate\n");
    return 1;
  }
  return 0;
}
