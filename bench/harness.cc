#include "bench/harness.h"

#include <cstdio>
#include <cstdlib>

#include "baselines/cltsim.h"
#include "baselines/fresh.h"
#include "baselines/hash_head.h"
#include "baselines/metric_trainer.h"
#include "baselines/neutraj.h"
#include "baselines/t2vec.h"
#include "baselines/trajgat.h"
#include "baselines/transformer.h"
#include "common/check.h"
#include "embedding/node2vec.h"

namespace traj2hash::bench {

Scale GetScale() {
  Scale s;  // 'small' defaults come from the struct definition
  const char* env = std::getenv("T2H_BENCH_SCALE");
  const std::string name = env != nullptr ? env : "small";
  if (name == "tiny") {
    s.name = "tiny";
    s.num_seeds = 32;
    s.num_val_queries = 12;
    s.num_val_db = 32;
    s.num_queries = 24;
    s.num_db = 250;
    s.triplet_corpus = 600;
    s.max_points = 14;
    s.dim = 8;
    s.num_blocks = 1;
    s.num_heads = 2;
    s.epochs = 5;
    s.selfsup_epochs = 2;
    s.samples_per_anchor = 6;
    s.batch_size = 8;
    s.triplets_per_step = 4;
    s.hash_head_epochs = 10;
    s.grid_pretrain_samples = 1500;
  } else if (name == "large") {
    s.name = "large";
    s.num_seeds = 160;
    s.num_val_queries = 50;
    s.num_val_db = 160;
    s.num_queries = 150;
    s.num_db = 4000;
    s.triplet_corpus = 8000;
    s.max_points = 32;
    s.dim = 32;
    s.num_blocks = 2;
    s.num_heads = 4;
    s.epochs = 20;
    s.selfsup_epochs = 5;
    s.samples_per_anchor = 10;
    s.batch_size = 20;
    s.triplets_per_step = 16;
    s.hash_head_epochs = 25;
    s.grid_pretrain_samples = 20000;
  } else if (name != "small") {
    std::fprintf(stderr, "unknown T2H_BENCH_SCALE '%s', using 'small'\n",
                 name.c_str());
  }
  return s;
}

Dataset MakeDataset(const traj::CityConfig& city, const Scale& scale,
                    uint64_t seed) {
  Dataset d;
  d.name = city.name;
  traj::CityConfig cfg = city;
  cfg.max_points = scale.max_points;
  const int total = scale.num_seeds + scale.num_val_queries +
                    scale.num_val_db + scale.num_queries + scale.num_db;
  Rng rng(seed);
  d.all = GenerateTrips(cfg, std::max(total, scale.triplet_corpus), rng);
  d.normalizer.Fit(d.all);
  auto take = [&d](int& cursor, int count) {
    std::vector<traj::Trajectory> out(d.all.begin() + cursor,
                                      d.all.begin() + cursor + count);
    cursor += count;
    return out;
  };
  int cursor = 0;
  d.seeds = take(cursor, scale.num_seeds);
  d.val_queries = take(cursor, scale.num_val_queries);
  d.val_db = take(cursor, scale.num_val_db);
  d.queries = take(cursor, scale.num_queries);
  d.database = take(cursor, scale.num_db);
  return d;
}

MeasureData ComputeMeasureData(const Dataset& data, dist::Measure measure) {
  MeasureData md;
  md.measure = measure;
  const dist::DistanceFn fn = dist::GetDistance(measure);
  md.seed_distances = dist::PairwiseMatrix(data.seeds, fn);
  md.val_truth = eval::ExactTopK(data.val_queries, data.val_db, fn, 50);
  md.test_truth = eval::ExactTopK(data.queries, data.database, fn, 50);
  return md;
}

namespace {

core::Traj2HashConfig ConfigFor(const Scale& scale,
                                const Traj2HashTweaks& tweaks) {
  core::Traj2HashConfig cfg;
  cfg.dim = scale.dim;
  cfg.num_blocks = scale.num_blocks;
  cfg.num_heads = scale.num_heads;
  cfg.epochs = scale.epochs;
  cfg.samples_per_anchor = scale.samples_per_anchor;
  cfg.batch_size = scale.batch_size;
  cfg.read_out = tweaks.read_out;
  cfg.use_grid_channel = tweaks.use_grid_channel;
  cfg.use_rev_aug = tweaks.use_rev_aug;
  cfg.use_triplets = tweaks.use_triplets;
  cfg.alpha = tweaks.alpha;
  cfg.gamma = tweaks.gamma;
  if (tweaks.fine_cell_m > 0.0) cfg.fine_cell_m = tweaks.fine_cell_m;
  if (tweaks.node2vec_cell_m > 0.0) cfg.fine_cell_m = tweaks.node2vec_cell_m;
  T2H_CHECK(cfg.Validate().ok());
  return cfg;
}

}  // namespace

MethodResult RunTraj2Hash(const Dataset& data, const MeasureData& md,
                          const Scale& scale, const Traj2HashTweaks& tweaks,
                          uint64_t seed) {
  Rng rng(seed);
  const core::Traj2HashConfig cfg = ConfigFor(scale, tweaks);
  auto model =
      std::move(core::Traj2Hash::Create(cfg, data.all, rng).value());

  if (cfg.use_grid_channel) {
    if (tweaks.node2vec_cell_m > 0.0) {
      // Fig. 7 variant: swap the decomposed representation for node2vec on
      // the same lattice.
      const traj::Grid& grid = model->fine_grid();
      auto n2v = std::make_unique<embedding::Node2vecGridEmbedding>(
          grid.num_x(), grid.num_y(), cfg.dim, rng);
      embedding::Node2vecOptions opt;
      opt.dim = cfg.dim;
      opt.walk_length = 20;
      opt.num_walks = 2;
      opt.window = 5;
      n2v->Train(opt, rng);
      model->UseGridRepresentation(std::move(n2v), rng);
    } else {
      embedding::GridPretrainOptions pre;
      pre.samples_per_epoch = scale.grid_pretrain_samples;
      pre.epochs = 2;
      model->PretrainGrids(pre, rng);
    }
  }

  core::TrainingData train;
  train.seeds = data.seeds;
  train.seed_distances = md.seed_distances;
  if (cfg.use_triplets) {
    train.triplet_corpus = data.all;
  }
  train.val_queries = data.val_queries;
  train.val_db = data.val_db;
  train.val_truth = md.val_truth;

  core::Trainer trainer(
      model.get(),
      core::TrainerOptions{.triplets_per_step = scale.triplets_per_step});
  const auto report = trainer.Fit(train, rng);
  T2H_CHECK_MSG(report.ok(), report.status().ToString().c_str());

  MethodResult result;
  result.name = "Traj2Hash";
  result.query_embeddings = core::EmbedAll(*model, data.queries);
  result.db_embeddings = core::EmbedAll(*model, data.database);
  result.query_codes = core::HashAll(*model, data.queries);
  result.db_codes = core::HashAll(*model, data.database);
  return result;
}

MethodResult RunBaseline(const std::string& name, const Dataset& data,
                         const MeasureData& md, const Scale& scale,
                         uint64_t seed, bool with_hash_head) {
  Rng rng(seed);
  std::unique_ptr<baselines::NeuralEncoder> encoder;
  // Pieces some encoders need; kept alive for the encoder's lifetime.
  auto grid = std::make_unique<traj::Grid>(
      traj::Grid::Create(traj::ComputeBoundingBox(data.all), 50.0).value());
  std::unique_ptr<baselines::PrQuadtree> tree;
  const traj::BoundingBox box = traj::ComputeBoundingBox(data.all);

  baselines::NeuTrajEncoder* neutraj = nullptr;
  bool self_supervised = false;
  if (name == "t2vec") {
    auto enc =
        std::make_unique<baselines::T2VecEncoder>(scale.dim, &data.normalizer,
                                                  rng);
    baselines::T2VecOptions opt;
    opt.epochs = scale.selfsup_epochs;
    enc->Fit(data.seeds, opt, rng);
    encoder = std::move(enc);
    self_supervised = true;
  } else if (name == "CL-TSim") {
    auto enc = std::make_unique<baselines::ClTsimEncoder>(
        scale.dim, &data.normalizer, rng);
    baselines::ClTsimOptions opt;
    opt.epochs = scale.selfsup_epochs;
    enc->Fit(data.seeds, opt, rng);
    encoder = std::move(enc);
    self_supervised = true;
  } else if (name == "NT-No-SAM") {
    encoder = std::make_unique<baselines::GruTrajEncoder>(
        scale.dim, &data.normalizer, rng);
  } else if (name == "NeuTraj") {
    auto enc = std::make_unique<baselines::NeuTrajEncoder>(
        scale.dim, &data.normalizer, grid.get(), rng);
    neutraj = enc.get();
    encoder = std::move(enc);
  } else if (name == "Transformer") {
    encoder = std::make_unique<baselines::TransformerEncoder>(
        scale.dim, scale.num_blocks, scale.num_heads, core::ReadOut::kCls,
        &data.normalizer, rng);
  } else if (name == "TrajGAT") {
    tree = std::make_unique<baselines::PrQuadtree>(box, 12, 4);
    std::vector<traj::Point> pts;
    for (const traj::Trajectory& t : data.all) {
      pts.insert(pts.end(), t.points.begin(), t.points.end());
    }
    tree->Build(pts);
    encoder = std::make_unique<baselines::TrajGatEncoder>(
        scale.dim, scale.num_blocks, scale.num_heads, tree.get(), box, rng);
  } else {
    T2H_CHECK_MSG(false, "unknown baseline");
  }

  if (!self_supervised) {
    baselines::MetricTrainOptions opt;
    opt.epochs = scale.epochs;
    opt.samples_per_anchor = scale.samples_per_anchor;
    opt.batch_size = scale.batch_size;
    const auto report = baselines::TrainMetric(
        encoder.get(), data.seeds, md.seed_distances, data.val_queries,
        data.val_db, md.val_truth, opt, rng);
    T2H_CHECK_MSG(report.ok(), report.status().ToString().c_str());
  }

  // Freeze SAM memory for evaluation so embeddings are order-independent.
  if (neutraj != nullptr) neutraj->set_memory_writes(false);

  MethodResult result;
  result.name = name;
  result.query_embeddings = baselines::EmbedAll(*encoder, data.queries);
  result.db_embeddings = baselines::EmbedAll(*encoder, data.database);

  if (with_hash_head) {
    // Table II: frozen base + trained linear ranking head.
    baselines::HashHead head(scale.dim, scale.dim, rng);
    baselines::HashHeadOptions opt;
    opt.epochs = scale.hash_head_epochs;
    const auto seed_embeddings = baselines::EmbedAll(*encoder, data.seeds);
    const auto fit = head.Fit(seed_embeddings, md.seed_distances, opt, rng);
    T2H_CHECK_MSG(fit.ok(), fit.status().ToString().c_str());
    result.query_codes = head.CodeAll(result.query_embeddings);
    result.db_codes = head.CodeAll(result.db_embeddings);
  }
  return result;
}

MethodResult RunFresh(const Dataset& data, uint64_t seed) {
  Rng rng(seed);
  baselines::FreshLsh lsh(baselines::FreshOptions{}, rng);
  MethodResult result;
  result.name = "Fresh";
  result.query_codes = lsh.CodeAll(data.queries);
  result.db_codes = lsh.CodeAll(data.database);
  return result;
}

void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& measures) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-10s %-22s", "Dataset", "Method");
  for (const std::string& m : measures) {
    std::printf(" | %-8s %-8s %-8s", (m + "").c_str(), "", "");
  }
  std::printf("\n%-10s %-22s", "", "");
  for (size_t i = 0; i < measures.size(); ++i) {
    std::printf(" | %-8s %-8s %-8s", "HR@10", "HR@50", "R10@50");
  }
  std::printf("\n");
}

void PrintRow(const std::string& dataset, const std::string& method,
              const std::vector<eval::RetrievalMetrics>& per_measure) {
  std::printf("%-10s %-22s", dataset.c_str(), method.c_str());
  for (const eval::RetrievalMetrics& m : per_measure) {
    std::printf(" | %-8.4f %-8.4f %-8.4f", m.hr10, m.hr50, m.r10_50);
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace traj2hash::bench
