// Ablations for this repository's own design decisions (DESIGN.md §6) that
// go beyond the paper's Table III:
//
//  1. Eq. 18 pairing — cross pairing (j-th most similar vs j-th least
//     similar; this repo's default) vs the literal adjacent-rank pairing.
//     Expected: cross pairing clearly better in Hamming space (adjacent
//     pairs are near-ties and give the hinge no signal).
//  2. Pre-LN attention blocks (extension; Eq. 12 has bare residuals).
//     Expected: no large effect at shallow depth — the paper's bare
//     residuals are adequate for m = 2 blocks.
//
// Single binary so the dataset/ground truth is shared.

#include <cstdio>

#include "bench/harness.h"
#include "core/model.h"
#include "core/trainer.h"

namespace t2h = traj2hash;
using t2h::bench::MeasureData;
using t2h::bench::Scale;

namespace {

struct Variant {
  const char* name;
  bool cross_pairing;
  bool layer_norm;
};

void RunVariant(const Variant& v, const t2h::bench::Dataset& data,
                const MeasureData& md, const Scale& scale, uint64_t seed) {
  t2h::Rng rng(seed);
  t2h::core::Traj2HashConfig cfg;
  cfg.dim = scale.dim;
  cfg.num_blocks = scale.num_blocks;
  cfg.num_heads = scale.num_heads;
  cfg.epochs = scale.epochs;
  cfg.samples_per_anchor = scale.samples_per_anchor;
  cfg.batch_size = scale.batch_size;
  cfg.cross_pairing = v.cross_pairing;
  cfg.use_layer_norm = v.layer_norm;
  auto model =
      std::move(t2h::core::Traj2Hash::Create(cfg, data.all, rng).value());
  t2h::embedding::GridPretrainOptions pre;
  pre.samples_per_epoch = scale.grid_pretrain_samples;
  pre.epochs = 2;
  model->PretrainGrids(pre, rng);
  t2h::core::TrainingData train;
  train.seeds = data.seeds;
  train.seed_distances = md.seed_distances;
  train.triplet_corpus = data.all;
  train.val_queries = data.val_queries;
  train.val_db = data.val_db;
  train.val_truth = md.val_truth;
  t2h::core::Trainer trainer(
      model.get(),
      t2h::core::TrainerOptions{.triplets_per_step = scale.triplets_per_step});
  const auto report = trainer.Fit(train, rng);
  if (!report.ok()) {
    std::printf("%-24s training failed: %s\n", v.name,
                report.status().ToString().c_str());
    return;
  }
  const auto e = t2h::eval::EvaluateEuclidean(
      t2h::core::EmbedAll(*model, data.queries),
      t2h::core::EmbedAll(*model, data.database), md.test_truth);
  const auto h = t2h::eval::EvaluateHamming(
      t2h::core::HashAll(*model, data.queries),
      t2h::core::HashAll(*model, data.database), md.test_truth);
  std::printf("%-24s euclid HR@10=%.4f R10@50=%.4f | hamming HR@10=%.4f"
              " HR@50=%.4f\n",
              v.name, e.hr10, e.r10_50, h.hr10, h.hr50);
  std::fflush(stdout);
}

}  // namespace

int main() {
  const Scale scale = t2h::bench::GetScale();
  std::printf("Repo design-decision ablations, scale='%s' "
              "(Porto-like, Frechet)\n\n",
              scale.name.c_str());
  const t2h::bench::Dataset data = t2h::bench::MakeDataset(
      t2h::traj::CityConfig::PortoLike(), scale, 950);
  const MeasureData md =
      t2h::bench::ComputeMeasureData(data, t2h::dist::Measure::kFrechet);

  const Variant variants[] = {
      {"cross-pairing (default)", true, false},
      {"adjacent-pairing", false, false},
      {"pre-LN blocks", true, true},
  };
  uint64_t seed = 951;
  for (const Variant& v : variants) RunVariant(v, data, md, scale, seed++);
  return 0;
}
