// Million-entry bench for the quantized embedding store (DESIGN.md §17):
// proves the two acceptance gates of the int8 subsystem at the paper's
// d=128 working width —
//
//   1. memory: resident embedding bytes (QuantizedMatrix rows + the three
//      param vectors) must be ≥ 3.5× below what the float store
//      (FlatMatrix at its 32 B-padded stride) would keep resident for the
//      same corpus;
//   2. recall: quant::RerankTopK over the int8 store must return the SAME
//      top-k (recall@k == 1.0) as an exact float scan over the original
//      embeddings, on planted-neighbor queries whose shell spacing (0.2)
//      dwarfs the lattice error (≈ √dim · s/2 ≈ 0.045 at this data range);
//
// plus the kernel gate: the AVX2 QuantizedL2Scan backend must be ≥ 2× the
// scalar backend (gated at non-tiny scale only — tiny runs in the
// oversubscribed bench_smoke lane where wall-clock ratios are noise).
//
// The corpus never exists as a resident float matrix: every row is
// regenerated deterministically from its id for calibration, quantization
// and the exact-scan ground truth, so the bench itself runs in the memory
// the quantized store claims (plus one row buffer).
//
// Output: one JSON object on stdout (collected into BENCH_quantize.json);
// human-oriented progress goes to stderr. Any violated gate exits non-zero.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/cpu_features.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "quant/quantized_matrix.h"
#include "quant/rerank.h"
#include "search/kernels.h"
#include "search/knn.h"

namespace t2h = traj2hash;
namespace quant = traj2hash::quant;

namespace {

struct BenchScale {
  std::string name = "small";
  int n = 1'000'000;  ///< corpus rows ("million-entry shard")
  int dim = 128;      ///< paper's embedding width
  int queries = 8;    ///< planted-neighbor query points
  int k = 10;         ///< top-k depth (also the planted shell count)
  int scan_reps = 5;  ///< timed QuantizedL2Scan repetitions per ISA
};

BenchScale GetBenchScale() {
  const char* env = std::getenv("T2H_BENCH_SCALE");
  const std::string scale = env != nullptr ? env : "small";
  BenchScale s;
  s.name = scale;
  if (scale == "tiny") {
    s.n = 20'000;
    s.dim = 32;
    s.queries = 4;
    s.k = 5;
    s.scan_reps = 3;
  } else if (scale == "large") {
    s.n = 4'000'000;
    s.scan_reps = 10;
  }
  return s;
}

/// Deterministic corpus: row i regenerates from Rng(kRowSeed + i), queries
/// from Rng(kQuerySeed + q), planted directions from Rng(kPlantSeed + ...).
/// The seed ranges must stay disjoint for every supported n — a shared seed
/// would make a corpus row an exact copy of a query point and silently
/// displace its planted shells.
constexpr uint64_t kRowSeed = 1000;
constexpr uint64_t kQuerySeed = 2'000'000'000;
constexpr uint64_t kPlantSeed = 3'000'000'000;

/// Query q's center point, uniform in the corpus cube [−1, 1]^dim.
std::vector<float> QueryPoint(int q, int dim) {
  t2h::Rng rng(kQuerySeed + static_cast<uint64_t>(q));
  std::vector<float> v(dim);
  for (float& x : v) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return v;
}

/// The corpus with planted neighbors: shell i of query q sits at radius
/// 0.5 + 0.2·i from the query center in a random unit direction. Random
/// rows in [−1, 1]^dim are ≈ √(2·dim/3) apart (≈ 9.2 at dim 128), so the
/// planted shells are the unambiguous top-k by a wide margin.
class Corpus {
 public:
  Corpus(const BenchScale& s) : scale_(s) {
    const int spacing = s.n / (s.queries * s.k + 2);
    for (int q = 0; q < s.queries; ++q) {
      for (int i = 0; i < s.k; ++i) {
        planted_[(q * s.k + i + 1) * spacing] = {q, i};
      }
    }
  }

  /// Regenerates row `id` into `out` (scale_.dim floats).
  void Row(int id, float* out) const {
    const auto planted = planted_.find(id);
    if (planted == planted_.end()) {
      t2h::Rng rng(kRowSeed + static_cast<uint64_t>(id));
      for (int j = 0; j < scale_.dim; ++j)
        out[j] = static_cast<float>(rng.Uniform(-1.0, 1.0));
      return;
    }
    const auto [q, shell] = planted->second;
    const std::vector<float> center = QueryPoint(q, scale_.dim);
    t2h::Rng rng(kPlantSeed + static_cast<uint64_t>(q) * 100 + shell);
    std::vector<double> dir(scale_.dim);
    double norm_sq = 0.0;
    for (double& d : dir) {
      d = rng.Gaussian();
      norm_sq += d * d;
    }
    const double radius = 0.5 + 0.2 * shell;
    const double scale = radius / std::sqrt(norm_sq);
    for (int j = 0; j < scale_.dim; ++j)
      out[j] = center[j] + static_cast<float>(dir[j] * scale);
  }

  /// Ground-truth top-k ids for query q: its shells, nearest first.
  std::vector<int> PlantedIds(int q) const {
    std::vector<int> ids(scale_.k);
    for (const auto& [id, where] : planted_) {
      if (where.first == q) ids[where.second] = id;
    }
    return ids;
  }

 private:
  BenchScale scale_;
  std::map<int, std::pair<int, int>> planted_;  ///< id -> {query, shell}
};

struct IsaScan {
  std::string isa;
  double ms = 0.0;
  double rows_per_sec = 0.0;
  double speedup_vs_scalar = 0.0;
  bool contract_ok = false;  ///< within 1e-9 relative of the scalar chain
};

volatile double sink = 0.0;

}  // namespace

int main() {
  const BenchScale scale = GetBenchScale();
  const t2h::KernelIsaSelection isa_sel = t2h::CurrentKernelIsa();
  std::fprintf(stderr,
               "quantize bench: scale=%s n=%d dim=%d queries=%d k=%d "
               "isa=%s (detected %s, %s)\n",
               scale.name.c_str(), scale.n, scale.dim, scale.queries, scale.k,
               t2h::KernelIsaName(isa_sel.selected),
               t2h::KernelIsaName(isa_sel.detected), isa_sel.source.c_str());

  const Corpus corpus(scale);
  std::vector<float> row(scale.dim);

  // ---- Pass 1: streaming calibration (no resident float copy).
  t2h::Stopwatch sw;
  quant::ParamsBuilder builder(scale.dim);
  for (int i = 0; i < scale.n; ++i) {
    corpus.Row(i, row.data());
    if (!builder.Add(row.data()).ok()) {
      std::fprintf(stderr, "FAILED: calibration rejected row %d\n", i);
      return 1;
    }
  }
  auto built = builder.Build();
  if (!built.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", built.status().message().c_str());
    return 1;
  }
  const quant::QuantizationParams params = std::move(built.value());
  const double calibrate_s = sw.ElapsedSeconds();

  // ---- Pass 2: quantize into the resident store, and in the same sweep
  // compute the exact float top-k of every query over the ORIGINAL values —
  // the ground truth the re-ranker's recall is gated against.
  std::vector<std::vector<float>> query_points;
  for (int q = 0; q < scale.queries; ++q)
    query_points.push_back(QueryPoint(q, scale.dim));

  sw.Restart();
  quant::QuantizedMatrix qm(scale.dim);
  std::vector<int8_t> qrow(scale.dim);
  using HeapEntry = std::pair<double, int>;  // (squared distance, id)
  std::vector<std::vector<HeapEntry>> exact_heaps(scale.queries);
  for (int i = 0; i < scale.n; ++i) {
    corpus.Row(i, row.data());
    if (!params.QuantizeRow(row.data(), qrow.data()).ok()) {
      std::fprintf(stderr, "FAILED: quantize rejected row %d\n", i);
      return 1;
    }
    qm.Append(qrow.data());
    for (int q = 0; q < scale.queries; ++q) {
      double d2 = 0.0;
      const std::vector<float>& query = query_points[q];
      for (int j = 0; j < scale.dim; ++j) {
        const double diff =
            static_cast<double>(row[j]) - static_cast<double>(query[j]);
        d2 += diff * diff;
      }
      std::vector<HeapEntry>& heap = exact_heaps[q];
      if (static_cast<int>(heap.size()) < scale.k) {
        heap.emplace_back(d2, i);
        std::push_heap(heap.begin(), heap.end());
      } else if (d2 < heap.front().first) {
        std::pop_heap(heap.begin(), heap.end());
        heap.back() = {d2, i};
        std::push_heap(heap.begin(), heap.end());
      }
    }
  }
  const double build_s = sw.ElapsedSeconds();

  // ---- Gate 1: resident bytes. The float side is what FlatMatrix would
  // keep for the same corpus (stride padded to 8 floats / 32 B), computed
  // arithmetically — materializing it would defeat the point at n=1M.
  const uint64_t float_bytes =
      static_cast<uint64_t>(scale.n) *
      static_cast<uint64_t>((scale.dim + 7) & ~7) * sizeof(float);
  const uint64_t quant_bytes =
      qm.resident_bytes() + 3ull * scale.dim * sizeof(float);
  const double memory_ratio =
      static_cast<double>(float_bytes) / static_cast<double>(quant_bytes);
  const bool memory_ok = memory_ratio >= 3.5;
  std::fprintf(stderr,
               "  resident: float %llu B  quant %llu B  ratio %.2fx %s\n",
               static_cast<unsigned long long>(float_bytes),
               static_cast<unsigned long long>(quant_bytes), memory_ratio,
               memory_ok ? "" : " ** GATE FAILED (< 3.5x) **");

  // ---- Gate 2: recall@k of the two-stage re-ranker against the exact
  // float scan (and, as a sanity anchor, against the planted shells).
  quant::RerankCounters counters;
  int recall_hits = 0;
  bool planted_ok = true;
  for (int q = 0; q < scale.queries; ++q) {
    std::vector<HeapEntry> exact = exact_heaps[q];
    std::sort(exact.begin(), exact.end());
    const std::vector<int> planted = corpus.PlantedIds(q);
    for (int i = 0; i < scale.k; ++i)
      planted_ok = planted_ok && exact[i].second == planted[i];

    const std::vector<t2h::search::Neighbor> got = quant::RerankTopK(
        qm, params, query_points[q], scale.k, nullptr, 0, &counters);
    for (const t2h::search::Neighbor& nb : got) {
      for (const HeapEntry& e : exact) {
        if (e.second == nb.index) {
          ++recall_hits;
          break;
        }
      }
    }
  }
  const double recall =
      static_cast<double>(recall_hits) /
      static_cast<double>(scale.queries * scale.k);
  const quant::RerankSnapshot rerank = quant::SnapshotCounters(counters);
  const bool recall_ok = recall == 1.0 && rerank.band_violations == 0;
  std::fprintf(stderr,
               "  recall@%d: %.4f  planted_order=%s  rechecked %llu/%llu  "
               "band_violations %llu %s\n",
               scale.k, recall, planted_ok ? "ok" : "MISMATCH",
               static_cast<unsigned long long>(rerank.rechecked),
               static_cast<unsigned long long>(rerank.candidates),
               static_cast<unsigned long long>(rerank.band_violations),
               recall_ok ? "" : " ** GATE FAILED **");

  // ---- Gate 3: QuantizedL2Scan per ISA; AVX2 must be ≥ 2× scalar.
  //
  // Two sweeps. `stream` scans the whole million-row matrix — the serving
  // shape — where every backend converges toward the DRAM bandwidth wall,
  // so its ratios are reported but not gated. `hot` scans a cache-resident
  // subset of the same rows, which measures the kernel itself; that is
  // where the ≥ 2× contract is enforced.
  std::vector<int8_t> qquery(scale.dim);
  (void)params.QuantizeRow(query_points[0].data(), qquery.data());
  const int hot_rows = std::min(scale.n, (2 << 20) / qm.stride());
  const int hot_reps =
      std::max(scale.scan_reps, 4'000'000 / std::max(hot_rows, 1));
  std::vector<double> dists(scale.n);

  auto sweep_isas = [&](int rows, int reps) {
    std::vector<IsaScan> sweep;
    std::vector<double> scalar_ref;
    double scalar_ms = 0.0;
    for (const t2h::KernelIsa isa :
         {t2h::KernelIsa::kScalar, t2h::KernelIsa::kSse2,
          t2h::KernelIsa::kAvx2}) {
      if (!t2h::KernelIsaAvailable(isa)) continue;
      t2h::ScopedKernelIsa pin(isa);
      sw.Restart();
      for (int r = 0; r < reps; ++r) {
        t2h::search::kernels::QuantizedL2Scan(
            qm.data(), qquery.data(), params.scale_sq.data(), rows, scale.dim,
            qm.stride(), dists.data());
        sink = sink + dists[0];
      }
      IsaScan s;
      s.isa = t2h::KernelIsaName(isa);
      s.ms = sw.ElapsedSeconds() * 1e3 / reps;
      s.rows_per_sec = s.ms > 0.0 ? rows / (s.ms * 1e-3) : 0.0;
      if (isa == t2h::KernelIsa::kScalar) {
        scalar_ref.assign(dists.begin(), dists.begin() + rows);
        scalar_ms = s.ms;
        s.speedup_vs_scalar = 1.0;
        s.contract_ok = true;
      } else {
        s.speedup_vs_scalar = s.ms > 0.0 ? scalar_ms / s.ms : 0.0;
        s.contract_ok = true;
        for (int i = 0; i < rows; ++i) {
          if (std::fabs(dists[i] - scalar_ref[i]) >
              1e-9 * (1.0 + std::fabs(scalar_ref[i]))) {
            s.contract_ok = false;
            break;
          }
        }
      }
      std::fprintf(stderr,
                   "  [isa] quantized_l2 n=%-8d %-6s %9.3f ms  %6.1f Mrows/s"
                   "  %5.2fx %s\n",
                   rows, s.isa.c_str(), s.ms, s.rows_per_sec * 1e-6,
                   s.speedup_vs_scalar,
                   s.contract_ok ? "" : "  ** CONTRACT VIOLATION **");
      sweep.push_back(std::move(s));
    }
    return sweep;
  };
  const std::vector<IsaScan> stream_sweep =
      sweep_isas(scale.n, scale.scan_reps);
  const std::vector<IsaScan> hot_sweep = sweep_isas(hot_rows, hot_reps);

  bool contract_ok = true;
  for (const IsaScan& s : stream_sweep) contract_ok = contract_ok && s.contract_ok;
  double avx2_speedup = 0.0;
  bool avx2_present = false;
  for (const IsaScan& s : hot_sweep) {
    contract_ok = contract_ok && s.contract_ok;
    if (s.isa == "avx2") {
      avx2_present = true;
      avx2_speedup = s.speedup_vs_scalar;
    }
  }
  // Wall-clock ratios at tiny scale run inside the parallel bench_smoke
  // lane and are pure scheduling noise — report them, gate only the real
  // run.
  const bool avx2_ok =
      !avx2_present || scale.name == "tiny" || avx2_speedup >= 2.0;
  if (!avx2_ok) {
    std::fprintf(stderr,
                 "  ** GATE FAILED: avx2 %.2fx vs scalar (< 2.0x, "
                 "cache-resident sweep) **\n",
                 avx2_speedup);
  }

  std::printf("{\n  \"bench\": \"quantize\",\n  \"scale\": \"%s\",\n",
              scale.name.c_str());
  std::printf("  \"n\": %d, \"dim\": %d, \"queries\": %d, \"k\": %d,\n",
              scale.n, scale.dim, scale.queries, scale.k);
  std::printf("  \"calibrate_s\": %.3f, \"build_s\": %.3f,\n", calibrate_s,
              build_s);
  std::printf("  \"float_resident_bytes\": %llu,\n",
              static_cast<unsigned long long>(float_bytes));
  std::printf("  \"quant_resident_bytes\": %llu,\n",
              static_cast<unsigned long long>(quant_bytes));
  std::printf("  \"memory_ratio\": %.3f,\n", memory_ratio);
  std::printf("  \"recall_at_k\": %.4f,\n", recall);
  std::printf("  \"rerank\": {\"candidates\": %llu, \"rechecked\": %llu, "
              "\"recheck_rate\": %.6f, \"band_violations\": %llu},\n",
              static_cast<unsigned long long>(rerank.candidates),
              static_cast<unsigned long long>(rerank.rechecked),
              rerank.recheck_rate(),
              static_cast<unsigned long long>(rerank.band_violations));
  auto print_sweep = [](const char* name, const std::vector<IsaScan>& sweep,
                        int rows) {
    std::printf("  \"%s\": {\"rows\": %d, \"isas\": [\n", name, rows);
    for (size_t i = 0; i < sweep.size(); ++i) {
      const IsaScan& s = sweep[i];
      std::printf(
          "    {\"isa\": \"%s\", \"ms\": %.3f, \"mrows_per_sec\": %.1f, "
          "\"speedup_vs_scalar\": %.2f, \"contract_ok\": %s}%s\n",
          s.isa.c_str(), s.ms, s.rows_per_sec * 1e-6, s.speedup_vs_scalar,
          s.contract_ok ? "true" : "false", i + 1 < sweep.size() ? "," : "");
    }
    std::printf("  ]},\n");
  };
  print_sweep("isa_sweep_stream", stream_sweep, scale.n);
  print_sweep("isa_sweep_hot", hot_sweep, hot_rows);
  std::printf("  \"gates\": {\"memory_ratio_ok\": %s, \"recall_ok\": %s, "
              "\"isa_contract_ok\": %s, \"avx2_speedup_ok\": %s}\n}\n",
              memory_ok ? "true" : "false", recall_ok ? "true" : "false",
              contract_ok ? "true" : "false", avx2_ok ? "true" : "false");

  if (!memory_ok || !recall_ok || !planted_ok || !contract_ok || !avx2_ok) {
    std::fprintf(stderr, "quantize bench FAILED\n");
    return 1;
  }
  return 0;
}
