#ifndef TRAJ2HASH_BENCH_TIMING_DATA_H_
#define TRAJ2HASH_BENCH_TIMING_DATA_H_

#include <vector>

#include "common/rng.h"
#include "search/code.h"

namespace traj2hash::bench {

/// Synthetic retrieval workload for the efficiency experiments (Figs. 5-6).
///
/// Search cost is independent of how embeddings were trained, so the timing
/// benches skip training and synthesise the *distributional* properties that
/// matter: 64-dim dense embeddings, and 64-bit codes clustered the way
/// trained codes cluster (members within small Hamming radius of a cluster
/// centre), which is what gives Hamming-Hybrid its table-lookup hits.
struct TimingWorkload {
  std::vector<std::vector<float>> db_embeddings;
  std::vector<search::Code> db_codes;
  std::vector<std::vector<float>> query_embeddings;
  std::vector<search::Code> query_codes;
};

/// Builds a workload of `db_size` database entries and `num_queries` queries
/// with `dim`-bit codes grouped into clusters of mean size `cluster_size`.
TimingWorkload MakeTimingWorkload(int db_size, int num_queries, int dim,
                                  int cluster_size, uint64_t seed);

}  // namespace traj2hash::bench

#endif  // TRAJ2HASH_BENCH_TIMING_DATA_H_
