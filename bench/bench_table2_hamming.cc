// Reproduces Table II: top-k search quality in HAMMING space. Neural
// baselines are converted to hash codes with the extra trainable linear
// layer + ranking objective (the paper's adapter); Fresh is the
// locality-sensitive-hashing baseline; Traj2Hash uses its native codes.
//
// Expected shape: every neural method drops sharply versus its Euclidean
// quality; Traj2Hash degrades the least and wins every cell.

#include <cstdio>

#include "bench/harness.h"

namespace t2h = traj2hash;
using t2h::bench::Dataset;
using t2h::bench::MeasureData;
using t2h::bench::MethodResult;
using t2h::bench::Scale;

int main() {
  const Scale scale = t2h::bench::GetScale();
  std::printf("Table II reproduction (Hamming space), scale='%s'\n",
              scale.name.c_str());
  const std::vector<t2h::dist::Measure> measures = {
      t2h::dist::Measure::kFrechet, t2h::dist::Measure::kHausdorff,
      t2h::dist::Measure::kDtw};
  const std::vector<std::string> baselines = {
      "t2vec", "CL-TSim", "NT-No-SAM", "NeuTraj", "Transformer", "TrajGAT"};

  t2h::bench::PrintTableHeader("Table II: Hamming-space retrieval",
                               {"Frechet", "Hausdorff", "DTW"});
  uint64_t seed = 200;
  for (const t2h::traj::CityConfig& city :
       {t2h::traj::CityConfig::PortoLike(),
        t2h::traj::CityConfig::ChengduLike()}) {
    const Dataset data = t2h::bench::MakeDataset(city, scale, seed++);
    std::vector<MeasureData> md;
    for (const auto m : measures) {
      md.push_back(t2h::bench::ComputeMeasureData(data, m));
    }
    for (const std::string& name : baselines) {
      std::vector<t2h::eval::RetrievalMetrics> row;
      for (const MeasureData& m : md) {
        const MethodResult r = t2h::bench::RunBaseline(
            name, data, m, scale, seed++, /*with_hash_head=*/true);
        row.push_back(r.HammingMetrics(m));
      }
      t2h::bench::PrintRow(data.name, name, row);
    }
    {
      // Fresh is measure-agnostic: one hash family serves all three columns
      // (matching the paper, which evaluates the same LSH codes per measure).
      const MethodResult fresh = t2h::bench::RunFresh(data, seed++);
      std::vector<t2h::eval::RetrievalMetrics> row;
      for (const MeasureData& m : md) row.push_back(fresh.HammingMetrics(m));
      t2h::bench::PrintRow(data.name, "Fresh", row);
    }
    {
      std::vector<t2h::eval::RetrievalMetrics> row;
      for (const MeasureData& m : md) {
        const MethodResult r = t2h::bench::RunTraj2Hash(
            data, m, scale, t2h::bench::Traj2HashTweaks{}, seed++);
        row.push_back(r.HammingMetrics(m));
      }
      t2h::bench::PrintRow(data.name, "Traj2Hash", row);
    }
  }
  return 0;
}
