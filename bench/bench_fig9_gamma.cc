// Reproduces Fig. 9: HR@10 as the balance weight gamma sweeps [0, 12], under
// DTW and Frechet, in Euclidean and Hamming space, on both datasets.
//
// Expected shape: Euclidean-space quality roughly flat (slightly rising for
// DTW); Hamming-space quality extremely poor at gamma = 0 (no hash
// objectives at all — the seed set cannot regularize Hamming space), then
// rising steeply and peaking at moderate gamma.

#include <cstdio>

#include "bench/harness.h"

namespace t2h = traj2hash;
using t2h::bench::MeasureData;
using t2h::bench::Scale;
using t2h::bench::Traj2HashTweaks;

int main() {
  const Scale scale = t2h::bench::GetScale();
  std::printf("Fig. 9 reproduction (balance gamma sweep), scale='%s'\n",
              scale.name.c_str());
  const std::vector<float> gammas = {0.0f, 1.0f, 3.0f, 6.0f, 12.0f};

  uint64_t seed = 900;
  for (const t2h::traj::CityConfig& city :
       {t2h::traj::CityConfig::PortoLike(),
        t2h::traj::CityConfig::ChengduLike()}) {
    const t2h::bench::Dataset data =
        t2h::bench::MakeDataset(city, scale, seed++);
    for (const auto measure :
         {t2h::dist::Measure::kDtw, t2h::dist::Measure::kFrechet}) {
      const MeasureData md = t2h::bench::ComputeMeasureData(data, measure);
      std::printf("\n--- %s / %s: HR@10 vs gamma ---\n", data.name.c_str(),
                  t2h::dist::MeasureName(measure).c_str());
      std::printf("%-8s %-12s %-12s\n", "gamma", "Euclidean", "Hamming");
      for (const float gamma : gammas) {
        Traj2HashTweaks tweaks;
        tweaks.gamma = gamma;
        const auto r =
            t2h::bench::RunTraj2Hash(data, md, scale, tweaks, seed++);
        std::printf("%-8.0f %-12.4f %-12.4f\n", gamma,
                    r.EuclideanMetrics(md).hr10, r.HammingMetrics(md).hr10);
        std::fflush(stdout);
      }
    }
  }
  return 0;
}
