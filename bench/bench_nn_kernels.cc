// Micro-bench of the nn kernel rewrite (src/nn/kernels.cc) against the seed
// implementation it replaced: MatMul forward plus both gradient paths and
// row softmax, at the paper's d=128 working sizes. The "naive" side below is
// a faithful transcription of the pre-kernel ops.cc loops (strided at(r,c)
// element access, no tiling, built at the default opt level of this TU), so
// the reported speedup is kernel + -O3 + layout, i.e. exactly what the
// rewrite bought end users.
//
// Before timing, every kernel output is compared bit-for-bit against the
// naive reference (both start from zeroed accumulators, where the kernels'
// fixed accumulation order coincides with the seed's). A mismatch exits
// non-zero: this bench doubles as the determinism smoke check that CI runs
// via the `bench_smoke` target at T2H_BENCH_SCALE=tiny.
//
// Output: one JSON object on stdout (collected into BENCH_nn.json);
// human-oriented progress goes to stderr.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/cpu_features.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "nn/kernels.h"

namespace t2h = traj2hash;
namespace kernels = traj2hash::nn::kernels;

namespace {

struct BenchScale {
  std::string name = "small";
  int d = 128;     ///< square MatMul side (paper's hidden/readout dim)
  int rows = 16;   ///< batch rows for the rectangular case
  int reps = 40;   ///< timed repetitions per kernel
};

BenchScale GetBenchScale() {
  const char* env = std::getenv("T2H_BENCH_SCALE");
  const std::string scale = env != nullptr ? env : "small";
  BenchScale s;
  s.name = scale;
  if (scale == "tiny") {
    s.d = 32;
    s.rows = 4;
    s.reps = 3;
  } else if (scale == "large") {
    s.reps = 200;
  }
  return s;
}

std::vector<float> RandomMatrix(int rows, int cols, t2h::Rng& rng) {
  std::vector<float> m(static_cast<size_t>(rows) * cols);
  // Strictly positive values: no exact-zero products or signed-zero sums, so
  // bitwise comparison tests ordering and nothing else.
  for (float& v : m) v = static_cast<float>(rng.Uniform(0.5, 1.5));
  return m;
}

// ---- Seed (pre-kernel) reference loops, transcribed from ops.cc at b4f2109.

void NaiveMatMul(const std::vector<float>& a, const std::vector<float>& b,
                 std::vector<float>& c, int n, int k, int m) {
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      float acc = 0.0f;
      for (int q = 0; q < k; ++q)
        acc += a[static_cast<size_t>(i) * k + q] *
               b[static_cast<size_t>(q) * m + j];
      c[static_cast<size_t>(i) * m + j] += acc;
    }
  }
}

void NaiveGradA(const std::vector<float>& dc, const std::vector<float>& b,
                std::vector<float>& da, int n, int k, int m) {
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) {
      float acc = 0.0f;
      for (int c = 0; c < m; ++c)
        acc += dc[static_cast<size_t>(i) * m + c] *
               b[static_cast<size_t>(j) * m + c];
      da[static_cast<size_t>(i) * k + j] += acc;
    }
  }
}

void NaiveGradB(const std::vector<float>& a, const std::vector<float>& dc,
                std::vector<float>& db, int n, int k, int m) {
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < m; ++j) {
      float acc = 0.0f;
      for (int r = 0; r < n; ++r)
        acc += a[static_cast<size_t>(r) * k + i] *
               dc[static_cast<size_t>(r) * m + j];
      db[static_cast<size_t>(i) * m + j] += acc;
    }
  }
}

void NaiveSoftmaxRows(const std::vector<float>& x, std::vector<float>& out,
                      int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    float max_v = x[static_cast<size_t>(r) * cols];
    for (int c = 1; c < cols; ++c)
      max_v = std::max(max_v, x[static_cast<size_t>(r) * cols + c]);
    float sum = 0.0f;
    for (int c = 0; c < cols; ++c) {
      const float e = std::exp(x[static_cast<size_t>(r) * cols + c] - max_v);
      out[static_cast<size_t>(r) * cols + c] = e;
      sum += e;
    }
    for (int c = 0; c < cols; ++c)
      out[static_cast<size_t>(r) * cols + c] /= sum;
  }
}

// ---- Measurement.

struct KernelResult {
  std::string name;
  int n, k, m;
  double naive_ms = 0.0;
  double kernel_ms = 0.0;
  bool bit_identical = false;
};

// `sink` defeats dead-code elimination of the timed loops.
volatile float sink = 0.0f;

template <typename NaiveFn, typename KernelFn>
KernelResult RunCase(const std::string& name, int n, int k, int m, int reps,
                     size_t out_size, NaiveFn naive, KernelFn kernel) {
  KernelResult res;
  res.name = name;
  res.n = n;
  res.k = k;
  res.m = m;

  std::vector<float> ref(out_size, 0.0f), got(out_size, 0.0f);
  naive(ref);
  kernel(got.data());
  res.bit_identical =
      std::memcmp(ref.data(), got.data(), out_size * sizeof(float)) == 0;

  std::vector<float> scratch(out_size);
  t2h::Stopwatch sw;
  for (int r = 0; r < reps; ++r) {
    std::fill(scratch.begin(), scratch.end(), 0.0f);
    naive(scratch);
    sink = sink + scratch[0];
  }
  res.naive_ms = sw.ElapsedSeconds() * 1e3 / reps;

  sw.Restart();
  for (int r = 0; r < reps; ++r) {
    std::fill(scratch.begin(), scratch.end(), 0.0f);
    kernel(scratch.data());
    sink = sink + scratch[0];
  }
  res.kernel_ms = sw.ElapsedSeconds() * 1e3 / reps;
  return res;
}

// ---- Per-ISA sweep (DESIGN.md §14).

struct IsaSweepResult {
  std::string kernel;
  std::string isa;
  double ms = 0.0;
  double speedup_vs_scalar = 0.0;
  bool contract_ok = false;  ///< bitwise (elementwise) or 1e-4 rel (matmul)
};

std::vector<t2h::KernelIsa> AvailableIsas() {
  std::vector<t2h::KernelIsa> isas;
  for (const t2h::KernelIsa isa :
       {t2h::KernelIsa::kScalar, t2h::KernelIsa::kSse2,
        t2h::KernelIsa::kAvx2}) {
    if (t2h::KernelIsaAvailable(isa)) isas.push_back(isa);
  }
  return isas;
}

double MaxRelDiff(const std::vector<float>& a, const std::vector<float>& b) {
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double denom = std::max(1.0, std::fabs(static_cast<double>(a[i])));
    worst = std::max(worst, std::fabs(static_cast<double>(a[i]) - b[i]) / denom);
  }
  return worst;
}

/// Times `kernel` under each available ISA and gates the cross-path
/// contract against the scalar output: `bitwise` kernels must match
/// exactly, reductions within 1e-4 relative.
template <typename KernelFn>
void SweepKernel(const std::string& name, size_t out_size, int reps,
                 bool bitwise, KernelFn kernel,
                 std::vector<IsaSweepResult>& out) {
  std::vector<float> scalar_ref(out_size, 0.0f);
  double scalar_ms = 0.0;
  for (const t2h::KernelIsa isa : AvailableIsas()) {
    t2h::ScopedKernelIsa pin(isa);
    std::vector<float> got(out_size, 0.0f);
    kernel(got.data());

    std::vector<float> scratch(out_size);
    t2h::Stopwatch sw;
    for (int r = 0; r < reps; ++r) {
      std::fill(scratch.begin(), scratch.end(), 0.0f);
      kernel(scratch.data());
      sink = sink + scratch[0];
    }
    const double ms = sw.ElapsedSeconds() * 1e3 / reps;

    IsaSweepResult res;
    res.kernel = name;
    res.isa = t2h::KernelIsaName(isa);
    res.ms = ms;
    if (isa == t2h::KernelIsa::kScalar) {
      scalar_ref = got;
      scalar_ms = ms;
      res.speedup_vs_scalar = 1.0;
      res.contract_ok = true;
    } else {
      res.speedup_vs_scalar = ms > 0.0 ? scalar_ms / ms : 0.0;
      res.contract_ok =
          bitwise ? std::memcmp(scalar_ref.data(), got.data(),
                                out_size * sizeof(float)) == 0
                  : MaxRelDiff(scalar_ref, got) <= 1e-4;
    }
    std::fprintf(stderr, "  [isa] %-18s %-6s %8.4f ms  %5.2fx %s\n",
                 name.c_str(), res.isa.c_str(), ms, res.speedup_vs_scalar,
                 res.contract_ok ? "" : "  ** CONTRACT VIOLATION **");
    out.push_back(std::move(res));
  }
}

}  // namespace

int main() {
  const BenchScale scale = GetBenchScale();
  const t2h::KernelIsaSelection isa_sel = t2h::CurrentKernelIsa();
  std::fprintf(stderr,
               "nn kernel bench: scale=%s d=%d rows=%d reps=%d "
               "isa=%s (detected %s, %s)\n",
               scale.name.c_str(), scale.d, scale.rows, scale.reps,
               t2h::KernelIsaName(isa_sel.selected),
               t2h::KernelIsaName(isa_sel.detected), isa_sel.source.c_str());

  // The naive-vs-kernel section below gates bit-identity against the seed
  // loops — the SCALAR backend's contract — so pin scalar for all of it;
  // the per-ISA sweep afterwards re-pins each backend explicitly.
  t2h::ScopedKernelIsa pin_scalar(t2h::KernelIsa::kScalar);

  t2h::Rng rng(1234);
  const int d = scale.d;
  const int rows = scale.rows;

  std::vector<KernelResult> results;

  // Square d x d x d — the readout / projection shape.
  {
    const auto a = RandomMatrix(d, d, rng);
    const auto b = RandomMatrix(d, d, rng);
    results.push_back(RunCase(
        "matmul_fwd_square", d, d, d, scale.reps,
        static_cast<size_t>(d) * d,
        [&](std::vector<float>& out) { NaiveMatMul(a, b, out, d, d, d); },
        [&](float* out) { kernels::MatMulAccum(a.data(), b.data(), out, d, d, d); }));
    results.push_back(RunCase(
        "matmul_grad_a_square", d, d, d, scale.reps,
        static_cast<size_t>(d) * d,
        [&](std::vector<float>& out) { NaiveGradA(a, b, out, d, d, d); },
        [&](float* out) { kernels::MatMulGradA(a.data(), b.data(), out, d, d, d); }));
    results.push_back(RunCase(
        "matmul_grad_b_square", d, d, d, scale.reps,
        static_cast<size_t>(d) * d,
        [&](std::vector<float>& out) { NaiveGradB(a, b, out, d, d, d); },
        [&](float* out) { kernels::MatMulGradB(a.data(), b.data(), out, d, d, d); }));
  }

  // Rectangular rows x d x d — the per-trajectory activation shape.
  {
    const auto a = RandomMatrix(rows, d, rng);
    const auto b = RandomMatrix(d, d, rng);
    results.push_back(RunCase(
        "matmul_fwd_batch", rows, d, d, scale.reps * 4,
        static_cast<size_t>(rows) * d,
        [&](std::vector<float>& out) { NaiveMatMul(a, b, out, rows, d, d); },
        [&](float* out) {
          kernels::MatMulAccum(a.data(), b.data(), out, rows, d, d);
        }));
  }

  // Row softmax at attention-score shape.
  {
    const auto x = RandomMatrix(rows, d, rng);
    results.push_back(RunCase(
        "softmax_rows", rows, d, d, scale.reps * 4,
        static_cast<size_t>(rows) * d,
        [&](std::vector<float>& out) { NaiveSoftmaxRows(x, out, rows, d); },
        [&](float* out) { kernels::SoftmaxRowsFwd(x.data(), out, rows, d); }));
  }

  // --- Per-ISA backend sweep (collected into BENCH_simd.json): the square
  // MatMul shapes under every compiled+supported backend, scalar as the
  // baseline, cross-path contract gated (bitwise for elementwise kernels,
  // 1e-4 relative for FMA'd reductions).
  std::vector<IsaSweepResult> sweep;
  bool contract_ok = true;
  {
    const auto a = RandomMatrix(d, d, rng);
    const auto b = RandomMatrix(d, d, rng);
    SweepKernel(
        "matmul_accum", static_cast<size_t>(d) * d, scale.reps, false,
        [&](float* out) { kernels::MatMulAccum(a.data(), b.data(), out, d, d, d); },
        sweep);
    SweepKernel(
        "matmul_grad_a", static_cast<size_t>(d) * d, scale.reps, false,
        [&](float* out) { kernels::MatMulGradA(a.data(), b.data(), out, d, d, d); },
        sweep);
    SweepKernel(
        "matmul_grad_b", static_cast<size_t>(d) * d, scale.reps, false,
        [&](float* out) { kernels::MatMulGradB(a.data(), b.data(), out, d, d, d); },
        sweep);
    const size_t vec_n = static_cast<size_t>(d) * d;
    SweepKernel(
        "axpy_into", vec_n, scale.reps * 4, true,
        [&](float* out) {
          kernels::AxpyInto(out, a.data(), 0.37f, static_cast<int>(vec_n));
        },
        sweep);
    SweepKernel(
        "mul_into", vec_n, scale.reps * 4, true,
        [&](float* out) {
          kernels::MulInto(out, a.data(), b.data(), static_cast<int>(vec_n));
        },
        sweep);
    for (const IsaSweepResult& r : sweep) contract_ok = contract_ok && r.contract_ok;
  }

  bool all_identical = true;
  std::printf("{\n  \"bench\": \"nn_kernels\",\n  \"scale\": \"%s\",\n",
              scale.name.c_str());
  std::printf("  \"kernel_isa\": {\"detected\": \"%s\", \"selected\": \"%s\", "
              "\"source\": \"%s\"},\n",
              t2h::KernelIsaName(isa_sel.detected),
              t2h::KernelIsaName(isa_sel.selected), isa_sel.source.c_str());
  std::printf("  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    all_identical = all_identical && r.bit_identical;
    const double speedup = r.kernel_ms > 0.0 ? r.naive_ms / r.kernel_ms : 0.0;
    std::printf("    {\"kernel\": \"%s\", \"n\": %d, \"k\": %d, \"m\": %d, "
                "\"naive_ms\": %.5f, \"kernel_ms\": %.5f, "
                "\"speedup\": %.2f, \"bit_identical\": %s}%s\n",
                r.name.c_str(), r.n, r.k, r.m, r.naive_ms, r.kernel_ms,
                speedup, r.bit_identical ? "true" : "false",
                i + 1 < results.size() ? "," : "");
    std::fprintf(stderr, "  %-22s naive %8.4f ms  kernel %8.4f ms  %5.2fx %s\n",
                 r.name.c_str(), r.naive_ms, r.kernel_ms, speedup,
                 r.bit_identical ? "" : "  ** MISMATCH **");
  }
  std::printf("  ],\n");
  std::printf("  \"isa_sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const IsaSweepResult& r = sweep[i];
    std::printf("    {\"kernel\": \"%s\", \"isa\": \"%s\", \"ms\": %.5f, "
                "\"speedup_vs_scalar\": %.2f, \"contract_ok\": %s}%s\n",
                r.kernel.c_str(), r.isa.c_str(), r.ms, r.speedup_vs_scalar,
                r.contract_ok ? "true" : "false",
                i + 1 < sweep.size() ? "," : "");
  }
  std::printf("  ],\n  \"all_bit_identical\": %s,\n  \"isa_contract_ok\": %s\n}\n",
              all_identical ? "true" : "false", contract_ok ? "true" : "false");

  if (!all_identical) {
    std::fprintf(stderr, "FAILED: kernel output differs from seed loops\n");
    return 1;
  }
  if (!contract_ok) {
    std::fprintf(stderr, "FAILED: an ISA backend violates the cross-path contract\n");
    return 1;
  }
  return 0;
}
