// Reproduces Table III: cumulative ablation of Traj2Hash on Frechet and DTW
// in both spaces. Variants (cumulative, as in the paper):
//   Traj2Hash  : full model
//   -Grids     : no light-weight grid representation encoder
//   -RevAug    : additionally no reverse augmentation
//   -Triplets  : additionally no fast triplet generation (plain Transformer
//                with lower-bound read-out + WMSE + seed ranking loss)
//
// Expected shape: monotone degradation in Euclidean space; a cliff from
// -RevAug to -Triplets in Hamming space.

#include <cstdio>

#include "bench/harness.h"

namespace t2h = traj2hash;
using t2h::bench::MeasureData;
using t2h::bench::MethodResult;
using t2h::bench::Scale;
using t2h::bench::Traj2HashTweaks;

int main() {
  const Scale scale = t2h::bench::GetScale();
  std::printf("Table III reproduction (ablation study), scale='%s'\n",
              scale.name.c_str());

  struct Variant {
    const char* name;
    Traj2HashTweaks tweaks;
  };
  Traj2HashTweaks full;
  Traj2HashTweaks no_grids = full;
  no_grids.use_grid_channel = false;
  Traj2HashTweaks no_rev = no_grids;
  no_rev.use_rev_aug = false;
  Traj2HashTweaks no_triplets = no_rev;
  no_triplets.use_triplets = false;
  const std::vector<Variant> variants = {{"Traj2Hash", full},
                                         {"-Grids", no_grids},
                                         {"-RevAug", no_rev},
                                         {"-Triplets", no_triplets}};

  uint64_t seed = 300;
  for (const t2h::traj::CityConfig& city :
       {t2h::traj::CityConfig::PortoLike(),
        t2h::traj::CityConfig::ChengduLike()}) {
    const t2h::bench::Dataset data =
        t2h::bench::MakeDataset(city, scale, seed++);
    for (const auto measure :
         {t2h::dist::Measure::kFrechet, t2h::dist::Measure::kDtw}) {
      const MeasureData md = t2h::bench::ComputeMeasureData(data, measure);
      std::printf("\n--- %s / %s ---\n", data.name.c_str(),
                  t2h::dist::MeasureName(measure).c_str());
      std::printf("%-12s | %-9s %-28s | %-9s %-28s\n", "Variant", "Euclidean",
                  "(HR@10  HR@50  R10@50)", "Hamming",
                  "(HR@10  HR@50  R10@50)");
      for (const Variant& v : variants) {
        const MethodResult r =
            t2h::bench::RunTraj2Hash(data, md, scale, v.tweaks, seed++);
        const auto e = r.EuclideanMetrics(md);
        const auto h = r.HammingMetrics(md);
        std::printf("%-12s |           %6.4f %6.4f %6.4f        |"
                    "           %6.4f %6.4f %6.4f\n",
                    v.name, e.hr10, e.hr50, e.r10_50, h.hr10, h.hr50,
                    h.r10_50);
        std::fflush(stdout);
      }
    }
  }
  return 0;
}
