// Reproduces Fig. 8: HR@10 as the ranking margin alpha sweeps [0, 25], under
// DTW and Frechet, in Euclidean and Hamming space, on both datasets.
//
// Expected shape: Euclidean-space quality insensitive to alpha; Hamming-space
// quality poor at alpha = 0 (codes collapse without a margin), rising to a
// plateau around alpha ~ 5.

#include <cstdio>

#include "bench/harness.h"

namespace t2h = traj2hash;
using t2h::bench::MeasureData;
using t2h::bench::Scale;
using t2h::bench::Traj2HashTweaks;

int main() {
  const Scale scale = t2h::bench::GetScale();
  std::printf("Fig. 8 reproduction (margin alpha sweep), scale='%s'\n",
              scale.name.c_str());
  const std::vector<float> alphas = {0.0f, 1.0f, 5.0f, 10.0f, 25.0f};

  uint64_t seed = 800;
  for (const t2h::traj::CityConfig& city :
       {t2h::traj::CityConfig::PortoLike(),
        t2h::traj::CityConfig::ChengduLike()}) {
    const t2h::bench::Dataset data =
        t2h::bench::MakeDataset(city, scale, seed++);
    for (const auto measure :
         {t2h::dist::Measure::kDtw, t2h::dist::Measure::kFrechet}) {
      const MeasureData md = t2h::bench::ComputeMeasureData(data, measure);
      std::printf("\n--- %s / %s: HR@10 vs alpha ---\n", data.name.c_str(),
                  t2h::dist::MeasureName(measure).c_str());
      std::printf("%-8s %-12s %-12s\n", "alpha", "Euclidean", "Hamming");
      for (const float alpha : alphas) {
        Traj2HashTweaks tweaks;
        tweaks.alpha = alpha;
        const auto r =
            t2h::bench::RunTraj2Hash(data, md, scale, tweaks, seed++);
        std::printf("%-8.0f %-12.4f %-12.4f\n", alpha,
                    r.EuclideanMetrics(md).hr10, r.HammingMetrics(md).hr10);
        std::fflush(stdout);
      }
    }
  }
  return 0;
}
