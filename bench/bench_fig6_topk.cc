// Reproduces Fig. 6: mean per-query time of the three search strategies as
// the number of returned results k grows, at a fixed database size (100K in
// the paper; 10K under T2H_BENCH_SCALE=tiny).
//
// Expected shape: brute-force strategies flat in k; Hamming-Hybrid fastest
// at small k (most queries resolved by table-lookup) and converging toward
// Hamming-BF as k grows (radius-2 probes stop yielding k candidates).

#include <cstdlib>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/timing_data.h"
#include "search/hamming_index.h"
#include "search/knn.h"

namespace t2h = traj2hash;

namespace {

constexpr int kDim = 64;
constexpr int kNumQueries = 64;
constexpr int kClusterSize = 40;

int DbSize() {
  const char* env = std::getenv("T2H_BENCH_SCALE");
  return env != nullptr && std::string(env) == "tiny" ? 10000 : 100000;
}

const t2h::bench::TimingWorkload& Workload() {
  static const t2h::bench::TimingWorkload* w =
      new t2h::bench::TimingWorkload(t2h::bench::MakeTimingWorkload(
          DbSize(), kNumQueries, kDim, kClusterSize, 6));
  return *w;
}

const t2h::search::HammingIndex& Index() {
  static const t2h::search::HammingIndex* index =
      new t2h::search::HammingIndex(Workload().db_codes);
  return *index;
}

void BM_EuclideanBF(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto& w = Workload();
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t2h::search::TopKEuclidean(
        w.db_embeddings, w.query_embeddings[q++ % kNumQueries], k));
  }
}

void BM_HammingBF(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto& w = Workload();
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t2h::search::TopKHamming(
        w.db_codes, w.query_codes[q++ % kNumQueries], k));
  }
}

void BM_HammingHybrid(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto& w = Workload();
  const auto& index = Index();
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.HybridTopK(w.query_codes[q++ % kNumQueries], k));
  }
}

void TopKs(benchmark::internal::Benchmark* b) {
  for (int k = 10; k <= 50; k += 10) b->Arg(k);
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_EuclideanBF)->Apply(TopKs);
BENCHMARK(BM_HammingBF)->Apply(TopKs);
BENCHMARK(BM_HammingHybrid)->Apply(TopKs);

}  // namespace

BENCHMARK_MAIN();
