// Single-thread sweep of the three exact Hamming search strategies
// (DESIGN.md §9) over db size x code width x k: brute flat scan
// (kernels::HammingScan), radius-2 probe + fallback (HammingIndex::HybridTopK)
// and multi-index hashing (MihIndex::TopK). The database is clustered — a few
// thousand centers with small perturbations — matching what a trained hash
// model produces: near-duplicate codes for similar trajectories, so top-k
// distances are small and sublinear probing has something to prune.
//
// Before timing, every strategy's top-k is compared element-for-element
// (ids and distances) against BruteForceTopK on every query. A mismatch
// exits non-zero: this bench doubles as the cross-strategy exactness smoke
// check that CI runs via the `bench_smoke` target at T2H_BENCH_SCALE=tiny.
//
// Output: one JSON object on stdout (collected into BENCH_search.json);
// human-oriented progress goes to stderr.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "search/code.h"
#include "search/hamming_index.h"
#include "search/mih.h"
#include "search/strategy.h"

namespace t2h = traj2hash;
using t2h::search::Code;
using t2h::search::HammingIndex;
using t2h::search::MihIndex;
using t2h::search::Neighbor;

namespace {

struct BenchScale {
  std::string name = "small";
  std::vector<int> db_sizes = {10000, 100000};
  std::vector<int> bit_widths = {64, 128};
  std::vector<int> ks = {10, 50};
  int num_queries = 50;
};

BenchScale GetBenchScale() {
  const char* env = std::getenv("T2H_BENCH_SCALE");
  const std::string scale = env != nullptr ? env : "small";
  BenchScale s;
  s.name = scale;
  if (scale == "tiny") {
    s.db_sizes = {2000};
    s.bit_widths = {32, 128};
    s.ks = {10};
    s.num_queries = 10;
  } else if (scale == "large") {
    s.db_sizes = {10000, 100000, 400000};
    s.bit_widths = {64, 128, 192};
    s.ks = {1, 10, 50};
    s.num_queries = 100;
  }
  return s;
}

Code RandomCode(int bits, t2h::Rng& rng) {
  std::vector<float> v(bits);
  for (float& x : v) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
  return t2h::search::PackSigns(v);
}

Code Perturbed(const Code& base, int max_flips, t2h::Rng& rng) {
  Code c = base;
  const int flips = rng.UniformInt(0, max_flips);
  for (int f = 0; f < flips; ++f) {
    const int bit = rng.UniformInt(0, c.num_bits - 1);
    c.words[bit / 64] ^= (uint64_t{1} << (bit % 64));
  }
  return c;
}

/// Clustered database: n/100 random centers, exactly ~100 members each
/// (round-robin assignment), members within 3 flips. This is the regime
/// learned hash codes live in (similar trajectories hash close), and the
/// fixed cluster size keeps the k-th neighbour in-cluster for every k swept
/// here; uniform random codes would put it at ~B/2 where every sublinear
/// scheme rightly degenerates to the flat scan.
std::vector<Code> ClusteredDb(int n, int bits, t2h::Rng& rng) {
  const int num_centers = std::max(1, n / 100);
  std::vector<Code> centers;
  centers.reserve(num_centers);
  for (int i = 0; i < num_centers; ++i) centers.push_back(RandomCode(bits, rng));
  std::vector<Code> db;
  db.reserve(n);
  for (int i = 0; i < n; ++i) {
    db.push_back(Perturbed(centers[i % num_centers], 3, rng));
  }
  return db;
}

bool SameTopK(const std::vector<Neighbor>& a, const std::vector<Neighbor>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].index != b[i].index || a[i].distance != b[i].distance) {
      return false;
    }
  }
  return true;
}

struct CaseResult {
  int n, bits, k;
  const char* strategy;
  double mean_us;
  bool bit_identical;
};

// `sink` defeats dead-code elimination of the timed query loops.
volatile int sink = 0;

}  // namespace

int main() {
  const BenchScale scale = GetBenchScale();
  std::fprintf(stderr, "search engine bench: scale=%s queries=%d\n",
               scale.name.c_str(), scale.num_queries);

  t2h::Rng rng(777);
  std::vector<CaseResult> results;
  bool all_identical = true;

  for (const int bits : scale.bit_widths) {
    for (const int n : scale.db_sizes) {
      const std::vector<Code> db = ClusteredDb(n, bits, rng);
      // Queries are perturbations of random db rows: realistic near queries
      // with non-trivial top-k (not all distance 0).
      std::vector<Code> queries;
      for (int q = 0; q < scale.num_queries; ++q) {
        queries.push_back(Perturbed(db[rng.UniformInt(0, n - 1)], 2, rng));
      }

      t2h::Stopwatch build;
      const HammingIndex index(db);  // serves both brute and radius2
      const MihIndex mih(db);
      std::fprintf(stderr, "  n=%-7d B=%-3d built in %.2f s\n", n, bits,
                   build.ElapsedSeconds());

      for (const int k : scale.ks) {
        // Exactness gate: every strategy must equal brute on every query.
        std::vector<std::vector<Neighbor>> expected;
        bool identical = true;
        for (const Code& q : queries) {
          expected.push_back(index.BruteForceTopK(q, k));
          identical = identical &&
                      SameTopK(index.HybridTopK(q, k), expected.back()) &&
                      SameTopK(mih.TopK(q, k), expected.back());
        }
        all_identical = all_identical && identical;

        const auto time_us = [&](auto&& run) {
          t2h::Stopwatch sw;
          for (const Code& q : queries) sink = sink + static_cast<int>(run(q).size());
          return sw.ElapsedSeconds() * 1e6 / queries.size();
        };
        const double brute_us =
            time_us([&](const Code& q) { return index.BruteForceTopK(q, k); });
        const double radius2_us =
            time_us([&](const Code& q) { return index.HybridTopK(q, k); });
        const double mih_us =
            time_us([&](const Code& q) { return mih.TopK(q, k); });
        results.push_back({n, bits, k, "brute", brute_us, identical});
        results.push_back({n, bits, k, "radius2", radius2_us, identical});
        results.push_back({n, bits, k, "mih", mih_us, identical});
        std::fprintf(stderr,
                     "  n=%-7d B=%-3d k=%-3d brute %9.1f us  radius2 %9.1f us"
                     "  mih %9.1f us  (mih %.1fx vs radius2)%s\n",
                     n, bits, k, brute_us, radius2_us, mih_us,
                     mih_us > 0.0 ? radius2_us / mih_us : 0.0,
                     identical ? "" : "  ** MISMATCH **");
      }
    }
  }

  std::printf("{\n  \"bench\": \"search_engines\",\n  \"scale\": \"%s\",\n",
              scale.name.c_str());
  std::printf("  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    std::printf("    {\"n\": %d, \"bits\": %d, \"k\": %d, "
                "\"strategy\": \"%s\", \"mean_us\": %.2f, \"qps\": %.0f, "
                "\"bit_identical\": %s}%s\n",
                r.n, r.bits, r.k, r.strategy, r.mean_us,
                r.mean_us > 0.0 ? 1e6 / r.mean_us : 0.0,
                r.bit_identical ? "true" : "false",
                i + 1 < results.size() ? "," : "");
  }
  std::printf("  ],\n  \"all_bit_identical\": %s\n}\n",
              all_identical ? "true" : "false");

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAILED: a strategy differs from BruteForceTopK\n");
    return 1;
  }
  return 0;
}
