// Single-thread sweep of the three exact Hamming search strategies
// (DESIGN.md §9) over db size x code width x k: brute flat scan
// (kernels::HammingScan), radius-2 probe + fallback (HammingIndex::HybridTopK)
// and multi-index hashing (MihIndex::TopK). The database is clustered — a few
// thousand centers with small perturbations — matching what a trained hash
// model produces: near-duplicate codes for similar trajectories, so top-k
// distances are small and sublinear probing has something to prune.
//
// Before timing, every strategy's top-k is compared element-for-element
// (ids and distances) against BruteForceTopK on every query. A mismatch
// exits non-zero: this bench doubles as the cross-strategy exactness smoke
// check that CI runs via the `bench_smoke` target at T2H_BENCH_SCALE=tiny.
//
// Output: one JSON object on stdout (collected into BENCH_search.json);
// human-oriented progress goes to stderr.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/cpu_features.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "search/code.h"
#include "search/flat_storage.h"
#include "search/hamming_index.h"
#include "search/kernels.h"
#include "search/mih.h"
#include "search/strategy.h"

namespace t2h = traj2hash;
using t2h::search::Code;
using t2h::search::HammingIndex;
using t2h::search::MihIndex;
using t2h::search::Neighbor;

namespace {

struct BenchScale {
  std::string name = "small";
  std::vector<int> db_sizes = {10000, 100000};
  std::vector<int> bit_widths = {64, 128};
  std::vector<int> ks = {10, 50};
  int num_queries = 50;
};

BenchScale GetBenchScale() {
  const char* env = std::getenv("T2H_BENCH_SCALE");
  const std::string scale = env != nullptr ? env : "small";
  BenchScale s;
  s.name = scale;
  if (scale == "tiny") {
    s.db_sizes = {2000};
    s.bit_widths = {32, 128};
    s.ks = {10};
    s.num_queries = 10;
  } else if (scale == "large") {
    s.db_sizes = {10000, 100000, 400000};
    s.bit_widths = {64, 128, 192};
    s.ks = {1, 10, 50};
    s.num_queries = 100;
  }
  return s;
}

Code RandomCode(int bits, t2h::Rng& rng) {
  std::vector<float> v(bits);
  for (float& x : v) x = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
  return t2h::search::PackSigns(v);
}

Code Perturbed(const Code& base, int max_flips, t2h::Rng& rng) {
  Code c = base;
  const int flips = rng.UniformInt(0, max_flips);
  for (int f = 0; f < flips; ++f) {
    const int bit = rng.UniformInt(0, c.num_bits - 1);
    c.words[bit / 64] ^= (uint64_t{1} << (bit % 64));
  }
  return c;
}

/// Clustered database: n/100 random centers, exactly ~100 members each
/// (round-robin assignment), members within 3 flips. This is the regime
/// learned hash codes live in (similar trajectories hash close), and the
/// fixed cluster size keeps the k-th neighbour in-cluster for every k swept
/// here; uniform random codes would put it at ~B/2 where every sublinear
/// scheme rightly degenerates to the flat scan.
std::vector<Code> ClusteredDb(int n, int bits, t2h::Rng& rng) {
  const int num_centers = std::max(1, n / 100);
  std::vector<Code> centers;
  centers.reserve(num_centers);
  for (int i = 0; i < num_centers; ++i) centers.push_back(RandomCode(bits, rng));
  std::vector<Code> db;
  db.reserve(n);
  for (int i = 0; i < n; ++i) {
    db.push_back(Perturbed(centers[i % num_centers], 3, rng));
  }
  return db;
}

bool SameTopK(const std::vector<Neighbor>& a, const std::vector<Neighbor>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].index != b[i].index || a[i].distance != b[i].distance) {
      return false;
    }
  }
  return true;
}

struct CaseResult {
  int n, bits, k;
  const char* strategy;
  double mean_us;
  bool bit_identical;
};

// `sink` defeats dead-code elimination of the timed query loops.
volatile int sink = 0;

// ---- Per-ISA raw-kernel sweep (DESIGN.md §14, collected into
// BENCH_simd.json): HammingScan and SquaredL2Scan timed under every
// compiled+supported backend, exactness-gated against the scalar path.

struct IsaSweepResult {
  std::string kernel;
  std::string isa;
  int n = 0;
  double ms_per_scan = 0.0;
  double speedup_vs_scalar = 0.0;
  bool exact = false;  ///< Hamming: bitwise; L2: 1e-7 relative
};

std::vector<t2h::KernelIsa> AvailableIsas() {
  std::vector<t2h::KernelIsa> isas;
  for (const t2h::KernelIsa isa :
       {t2h::KernelIsa::kScalar, t2h::KernelIsa::kSse2,
        t2h::KernelIsa::kAvx2}) {
    if (t2h::KernelIsaAvailable(isa)) isas.push_back(isa);
  }
  return isas;
}

void SweepHammingScan(const t2h::search::PackedCodes& packed,
                      const Code& query, int reps,
                      std::vector<IsaSweepResult>& out) {
  const int n = packed.size();
  std::vector<int32_t> scalar_dist(n);
  double scalar_ms = 0.0;
  for (const t2h::KernelIsa isa : AvailableIsas()) {
    t2h::ScopedKernelIsa pin(isa);
    std::vector<int32_t> dist(n);
    t2h::search::kernels::HammingScan(packed.data(), query.words.data(), n,
                                      packed.words_per_code(),
                                      packed.stride_words(), dist.data());
    t2h::Stopwatch sw;
    for (int r = 0; r < reps; ++r) {
      t2h::search::kernels::HammingScan(packed.data(), query.words.data(), n,
                                        packed.words_per_code(),
                                        packed.stride_words(), dist.data());
      sink = sink + dist[static_cast<size_t>(r) % n];
    }
    const double ms = sw.ElapsedSeconds() * 1e3 / reps;

    IsaSweepResult res;
    res.kernel = "hamming_scan";
    res.isa = t2h::KernelIsaName(isa);
    res.n = n;
    res.ms_per_scan = ms;
    if (isa == t2h::KernelIsa::kScalar) {
      scalar_dist = dist;
      scalar_ms = ms;
      res.speedup_vs_scalar = 1.0;
      res.exact = true;
    } else {
      res.speedup_vs_scalar = ms > 0.0 ? scalar_ms / ms : 0.0;
      res.exact = std::memcmp(scalar_dist.data(), dist.data(),
                              static_cast<size_t>(n) * sizeof(int32_t)) == 0;
    }
    std::fprintf(stderr, "  [isa] hamming_scan    %-6s n=%-7d %8.4f ms  %5.2fx %s\n",
                 res.isa.c_str(), n, ms, res.speedup_vs_scalar,
                 res.exact ? "" : "  ** MISMATCH **");
    out.push_back(std::move(res));
  }
}

void SweepSquaredL2Scan(const t2h::search::FlatMatrix& db,
                        const std::vector<float>& query, int reps,
                        std::vector<IsaSweepResult>& out) {
  const int n = db.rows();
  std::vector<double> scalar_sq(n);
  double scalar_ms = 0.0;
  for (const t2h::KernelIsa isa : AvailableIsas()) {
    t2h::ScopedKernelIsa pin(isa);
    std::vector<double> sq(n);
    t2h::search::kernels::SquaredL2Scan(db.data(), query.data(), n, db.cols(),
                                        db.stride(), sq.data());
    t2h::Stopwatch sw;
    for (int r = 0; r < reps; ++r) {
      t2h::search::kernels::SquaredL2Scan(db.data(), query.data(), n,
                                          db.cols(), db.stride(), sq.data());
      sink = sink + static_cast<int>(sq[static_cast<size_t>(r) % n]);
    }
    const double ms = sw.ElapsedSeconds() * 1e3 / reps;

    IsaSweepResult res;
    res.kernel = "squared_l2_scan";
    res.isa = t2h::KernelIsaName(isa);
    res.n = n;
    res.ms_per_scan = ms;
    if (isa == t2h::KernelIsa::kScalar) {
      scalar_sq = sq;
      scalar_ms = ms;
      res.speedup_vs_scalar = 1.0;
      res.exact = true;
    } else {
      res.speedup_vs_scalar = ms > 0.0 ? scalar_ms / ms : 0.0;
      bool ok = true;
      for (int i = 0; i < n; ++i) {
        const double denom = std::max(1.0, std::fabs(scalar_sq[i]));
        ok = ok && std::fabs(scalar_sq[i] - sq[i]) / denom <= 1e-7;
      }
      res.exact = ok;
    }
    std::fprintf(stderr, "  [isa] squared_l2_scan %-6s n=%-7d %8.4f ms  %5.2fx %s\n",
                 res.isa.c_str(), n, ms, res.speedup_vs_scalar,
                 res.exact ? "" : "  ** CONTRACT VIOLATION **");
    out.push_back(std::move(res));
  }
}

}  // namespace

int main() {
  const BenchScale scale = GetBenchScale();
  const t2h::KernelIsaSelection isa_sel = t2h::CurrentKernelIsa();
  std::fprintf(stderr,
               "search engine bench: scale=%s queries=%d isa=%s "
               "(detected %s, %s)\n",
               scale.name.c_str(), scale.num_queries,
               t2h::KernelIsaName(isa_sel.selected),
               t2h::KernelIsaName(isa_sel.detected), isa_sel.source.c_str());

  t2h::Rng rng(777);
  std::vector<CaseResult> results;
  bool all_identical = true;

  for (const int bits : scale.bit_widths) {
    for (const int n : scale.db_sizes) {
      const std::vector<Code> db = ClusteredDb(n, bits, rng);
      // Queries are perturbations of random db rows: realistic near queries
      // with non-trivial top-k (not all distance 0).
      std::vector<Code> queries;
      for (int q = 0; q < scale.num_queries; ++q) {
        queries.push_back(Perturbed(db[rng.UniformInt(0, n - 1)], 2, rng));
      }

      t2h::Stopwatch build;
      const HammingIndex index(db);  // serves both brute and radius2
      const MihIndex mih(db);
      std::fprintf(stderr, "  n=%-7d B=%-3d built in %.2f s\n", n, bits,
                   build.ElapsedSeconds());

      for (const int k : scale.ks) {
        // Exactness gate: every strategy must equal brute on every query.
        std::vector<std::vector<Neighbor>> expected;
        bool identical = true;
        for (const Code& q : queries) {
          expected.push_back(index.BruteForceTopK(q, k));
          identical = identical &&
                      SameTopK(index.HybridTopK(q, k), expected.back()) &&
                      SameTopK(mih.TopK(q, k), expected.back());
        }
        all_identical = all_identical && identical;

        const auto time_us = [&](auto&& run) {
          t2h::Stopwatch sw;
          for (const Code& q : queries) sink = sink + static_cast<int>(run(q).size());
          return sw.ElapsedSeconds() * 1e6 / queries.size();
        };
        const double brute_us =
            time_us([&](const Code& q) { return index.BruteForceTopK(q, k); });
        const double radius2_us =
            time_us([&](const Code& q) { return index.HybridTopK(q, k); });
        const double mih_us =
            time_us([&](const Code& q) { return mih.TopK(q, k); });
        results.push_back({n, bits, k, "brute", brute_us, identical});
        results.push_back({n, bits, k, "radius2", radius2_us, identical});
        results.push_back({n, bits, k, "mih", mih_us, identical});
        std::fprintf(stderr,
                     "  n=%-7d B=%-3d k=%-3d brute %9.1f us  radius2 %9.1f us"
                     "  mih %9.1f us  (mih %.1fx vs radius2)%s\n",
                     n, bits, k, brute_us, radius2_us, mih_us,
                     mih_us > 0.0 ? radius2_us / mih_us : 0.0,
                     identical ? "" : "  ** MISMATCH **");
      }
    }
  }

  // --- Per-ISA raw-kernel sweep + strategy exactness on every backend.
  std::vector<IsaSweepResult> sweep;
  std::vector<std::pair<std::string, bool>> strategy_exact_per_isa;
  {
    // HammingScan at the acceptance shape: 128-bit codes, the largest db
    // size this scale sweeps (100k at "small"/"large").
    const int hn = scale.db_sizes.back();
    const std::vector<Code> hdb = ClusteredDb(hn, 128, rng);
    const auto packed = t2h::search::PackedCodes::FromCodes(hdb);
    const Code hquery = Perturbed(hdb[rng.UniformInt(0, hn - 1)], 2, rng);
    const int scan_reps = scale.name == "tiny" ? 3 : 30;
    SweepHammingScan(packed, hquery, scan_reps, sweep);

    // SquaredL2Scan at the embedding re-rank shape (dim 128).
    const int ln = std::min(hn, 20000);
    t2h::search::FlatMatrix fdb(128);
    std::vector<float> lquery(128);
    {
      t2h::Rng frng(778);
      std::vector<float> row(128);
      for (int i = 0; i < ln; ++i) {
        for (float& v : row) v = static_cast<float>(frng.Uniform(-1.0, 1.0));
        fdb.Append(row);
      }
      for (float& v : lquery) v = static_cast<float>(frng.Uniform(-1.0, 1.0));
    }
    SweepSquaredL2Scan(fdb, lquery, scan_reps, sweep);

    // Every strategy must stay bit-identical to brute force on EVERY
    // backend, not just the default one.
    const int sn = std::min(hn, 10000);
    const std::vector<Code> sdb(hdb.begin(), hdb.begin() + sn);
    const HammingIndex sindex(sdb);
    const MihIndex smih(sdb);
    std::vector<Code> squeries;
    for (int q = 0; q < std::min(scale.num_queries, 10); ++q) {
      squeries.push_back(Perturbed(sdb[rng.UniformInt(0, sn - 1)], 2, rng));
    }
    for (const t2h::KernelIsa isa : AvailableIsas()) {
      t2h::ScopedKernelIsa pin(isa);
      bool exact = true;
      for (const Code& q : squeries) {
        const auto expected = sindex.BruteForceTopK(q, 10);
        exact = exact && SameTopK(sindex.HybridTopK(q, 10), expected) &&
                SameTopK(smih.TopK(q, 10), expected);
      }
      strategy_exact_per_isa.emplace_back(t2h::KernelIsaName(isa), exact);
      std::fprintf(stderr, "  [isa] strategies      %-6s n=%-7d %s\n",
                   t2h::KernelIsaName(isa), sn,
                   exact ? "exact" : "** MISMATCH **");
    }
  }
  bool isa_exact = true;
  for (const IsaSweepResult& r : sweep) isa_exact = isa_exact && r.exact;
  for (const auto& [isa, exact] : strategy_exact_per_isa) {
    isa_exact = isa_exact && exact;
  }

  std::printf("{\n  \"bench\": \"search_engines\",\n  \"scale\": \"%s\",\n",
              scale.name.c_str());
  std::printf("  \"kernel_isa\": {\"detected\": \"%s\", \"selected\": \"%s\", "
              "\"source\": \"%s\"},\n",
              t2h::KernelIsaName(isa_sel.detected),
              t2h::KernelIsaName(isa_sel.selected), isa_sel.source.c_str());
  std::printf("  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    std::printf("    {\"n\": %d, \"bits\": %d, \"k\": %d, "
                "\"strategy\": \"%s\", \"mean_us\": %.2f, \"qps\": %.0f, "
                "\"bit_identical\": %s}%s\n",
                r.n, r.bits, r.k, r.strategy, r.mean_us,
                r.mean_us > 0.0 ? 1e6 / r.mean_us : 0.0,
                r.bit_identical ? "true" : "false",
                i + 1 < results.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"isa_sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const IsaSweepResult& r = sweep[i];
    std::printf("    {\"kernel\": \"%s\", \"isa\": \"%s\", \"n\": %d, "
                "\"ms_per_scan\": %.5f, \"speedup_vs_scalar\": %.2f, "
                "\"exact\": %s}%s\n",
                r.kernel.c_str(), r.isa.c_str(), r.n, r.ms_per_scan,
                r.speedup_vs_scalar, r.exact ? "true" : "false",
                i + 1 < sweep.size() ? "," : "");
  }
  std::printf("  ],\n  \"strategy_exact_per_isa\": [\n");
  for (size_t i = 0; i < strategy_exact_per_isa.size(); ++i) {
    std::printf("    {\"isa\": \"%s\", \"exact\": %s}%s\n",
                strategy_exact_per_isa[i].first.c_str(),
                strategy_exact_per_isa[i].second ? "true" : "false",
                i + 1 < strategy_exact_per_isa.size() ? "," : "");
  }
  std::printf("  ],\n  \"all_bit_identical\": %s,\n  \"isa_exact\": %s\n}\n",
              all_identical ? "true" : "false", isa_exact ? "true" : "false");

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAILED: a strategy differs from BruteForceTopK\n");
    return 1;
  }
  if (!isa_exact) {
    std::fprintf(stderr,
                 "FAILED: an ISA backend is inexact vs the scalar path\n");
    return 1;
  }
  return 0;
}
