// Reproduces Fig. 4: the effect of the read-out layer (Mean / CLS /
// LowerBound) on a plain Transformer backbone trained with WMSE only —
// grid channel, reverse augmentation and fast triplets are all disabled,
// exactly as in the paper's study.
//
// Expected shape: LowerBound best under DTW and Frechet; Mean best under
// Hausdorff; CLS dominated by LowerBound.

#include <cstdio>

#include "bench/harness.h"

namespace t2h = traj2hash;
using t2h::bench::MeasureData;
using t2h::bench::Scale;
using t2h::bench::Traj2HashTweaks;

int main() {
  const Scale scale = t2h::bench::GetScale();
  std::printf("Fig. 4 reproduction (read-out layer study), scale='%s'\n",
              scale.name.c_str());
  std::printf("HR@10 in Euclidean space, transformer backbone + WMSE only\n");

  struct Variant {
    const char* name;
    t2h::core::ReadOut read_out;
  };
  const std::vector<Variant> variants = {
      {"Mean", t2h::core::ReadOut::kMean},
      {"CLS", t2h::core::ReadOut::kCls},
      {"LowerBound", t2h::core::ReadOut::kLowerBound}};

  uint64_t seed = 400;
  for (const t2h::traj::CityConfig& city :
       {t2h::traj::CityConfig::PortoLike(),
        t2h::traj::CityConfig::ChengduLike()}) {
    const t2h::bench::Dataset data =
        t2h::bench::MakeDataset(city, scale, seed++);
    std::printf("\n%-10s %-12s %-12s %-12s\n", data.name.c_str(), "Frechet",
                "Hausdorff", "DTW");
    for (const Variant& v : variants) {
      std::printf("%-10s ", v.name);
      for (const auto measure :
           {t2h::dist::Measure::kFrechet, t2h::dist::Measure::kHausdorff,
            t2h::dist::Measure::kDtw}) {
        const MeasureData md = t2h::bench::ComputeMeasureData(data, measure);
        Traj2HashTweaks tweaks;
        tweaks.read_out = v.read_out;
        tweaks.use_grid_channel = false;
        tweaks.use_rev_aug = false;
        tweaks.use_triplets = false;
        const auto r =
            t2h::bench::RunTraj2Hash(data, md, scale, tweaks, seed++);
        std::printf("%-12.4f ", r.EuclideanMetrics(md).hr10);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
