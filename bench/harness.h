#ifndef TRAJ2HASH_BENCH_HARNESS_H_
#define TRAJ2HASH_BENCH_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/encoder.h"
#include "common/rng.h"
#include "core/model.h"
#include "core/trainer.h"
#include "distance/distance.h"
#include "eval/metrics.h"
#include "search/code.h"
#include "traj/synthetic.h"

namespace traj2hash::bench {

/// Experiment scale. The paper trains on a GPU server with 10K labelled +
/// 200K corpus trajectories; these presets shrink every axis so each bench
/// finishes on a single CPU core while preserving the protocol. Select with
/// T2H_BENCH_SCALE=tiny|small|large (default: small).
struct Scale {
  std::string name = "small";
  int num_seeds = 80;        ///< labelled seed set (paper: 2000)
  int num_val_queries = 24;  ///< validation queries
  int num_val_db = 64;       ///< validation database
  int num_queries = 50;      ///< test queries (paper: 10K)
  int num_db = 600;          ///< test database (paper: 100K)
  int triplet_corpus = 1500; ///< unlabelled corpus (paper: 200K)
  int max_points = 20;       ///< per-trajectory point cap
  int dim = 24;              ///< latent dim (paper: 64)
  int num_blocks = 2;
  int num_heads = 4;
  int epochs = 8;            ///< supervised epochs (paper: 100)
  int selfsup_epochs = 3;    ///< t2vec / CL-TSim pre-training epochs
  int samples_per_anchor = 8;
  int batch_size = 16;
  int triplets_per_step = 12;
  int hash_head_epochs = 15;
  int grid_pretrain_samples = 4000;
};

/// Reads T2H_BENCH_SCALE and returns the preset.
Scale GetScale();

/// A city's experimental split, following §V-A2's protocol.
struct Dataset {
  std::string name;
  traj::Normalizer normalizer;  ///< fitted on `all`
  std::vector<traj::Trajectory> all;  ///< everything (stats + triplet corpus)
  std::vector<traj::Trajectory> seeds;
  std::vector<traj::Trajectory> val_queries;
  std::vector<traj::Trajectory> val_db;
  std::vector<traj::Trajectory> queries;
  std::vector<traj::Trajectory> database;
};

/// Generates and splits a synthetic city.
Dataset MakeDataset(const traj::CityConfig& city, const Scale& scale,
                    uint64_t seed);

/// Ground-truth artefacts for one (dataset, measure) pair.
struct MeasureData {
  dist::Measure measure;
  std::vector<double> seed_distances;          ///< |seeds|^2
  std::vector<std::vector<int>> val_truth;     ///< top-50 per val query
  std::vector<std::vector<int>> test_truth;    ///< top-50 per test query
};

/// Computes exact distances/ground truth (the expensive supervision).
MeasureData ComputeMeasureData(const Dataset& data, dist::Measure measure);

/// One trained method's retrieval artefacts for the test split.
struct MethodResult {
  std::string name;
  std::vector<std::vector<float>> query_embeddings;
  std::vector<std::vector<float>> db_embeddings;
  std::vector<search::Code> query_codes;  ///< empty until hashing is attached
  std::vector<search::Code> db_codes;

  eval::RetrievalMetrics EuclideanMetrics(const MeasureData& md) const {
    return eval::EvaluateEuclidean(query_embeddings, db_embeddings,
                                   md.test_truth);
  }
  eval::RetrievalMetrics HammingMetrics(const MeasureData& md) const {
    return eval::EvaluateHamming(query_codes, db_codes, md.test_truth);
  }
};

/// Trains Traj2Hash (with optional config tweaks applied after the scale
/// preset) and returns embeddings + native hash codes.
struct Traj2HashTweaks {
  core::ReadOut read_out = core::ReadOut::kLowerBound;
  bool use_grid_channel = true;
  bool use_rev_aug = true;
  bool use_triplets = true;
  float alpha = 5.0f;
  float gamma = 6.0f;
  /// When set, swaps the grid representation for node2vec (Fig. 7) with a
  /// coarser lattice of this cell size.
  double node2vec_cell_m = 0.0;
  /// Overrides the fine grid cell size (0 = keep 50 m default).
  double fine_cell_m = 0.0;
};

MethodResult RunTraj2Hash(const Dataset& data, const MeasureData& md,
                          const Scale& scale, const Traj2HashTweaks& tweaks,
                          uint64_t seed);

/// Neural baselines of §V-A3 by name: "t2vec", "CL-TSim", "NT-No-SAM",
/// "NeuTraj", "Transformer", "TrajGAT". Embeddings are produced by the
/// published training recipe (self-supervised or WMSE); hash codes by a
/// trained HashHead (Table II's adapter).
MethodResult RunBaseline(const std::string& name, const Dataset& data,
                         const MeasureData& md, const Scale& scale,
                         uint64_t seed, bool with_hash_head);

/// Fresh LSH (codes only; Euclidean metrics are meaningless for it).
MethodResult RunFresh(const Dataset& data, uint64_t seed);

/// Paper-style table printing helpers.
void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& measures);
void PrintRow(const std::string& dataset, const std::string& method,
              const std::vector<eval::RetrievalMetrics>& per_measure);

}  // namespace traj2hash::bench

#endif  // TRAJ2HASH_BENCH_HARNESS_H_
