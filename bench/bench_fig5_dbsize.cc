// Reproduces Fig. 5: mean per-query time of the three search strategies
// (Euclidean-BF, Hamming-BF, Hamming-Hybrid) as the database grows.
//
// Expected shape: Hamming-BF < Euclidean-BF at every size; Hamming-Hybrid
// fastest, and its advantage grows with the database (more queries resolved
// by radius-2 table-lookup).
//
// Database sizes follow the paper (20K..100K); the `tiny` scale divides them
// by 10 so the bench stays quick everywhere.

#include <cstdlib>
#include <map>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/timing_data.h"
#include "search/hamming_index.h"
#include "search/knn.h"

namespace t2h = traj2hash;

namespace {

constexpr int kDim = 64;       // d_h = 64, the paper's default
constexpr int kTopK = 50;      // Fig. 5 fixes top-50
constexpr int kNumQueries = 64;
constexpr int kClusterSize = 40;

int SizeScale() {
  const char* env = std::getenv("T2H_BENCH_SCALE");
  return env != nullptr && std::string(env) == "tiny" ? 10 : 1;
}

const t2h::bench::TimingWorkload& WorkloadFor(int db_size) {
  static std::map<int, t2h::bench::TimingWorkload>* cache =
      new std::map<int, t2h::bench::TimingWorkload>();
  auto it = cache->find(db_size);
  if (it == cache->end()) {
    it = cache
             ->emplace(db_size,
                       t2h::bench::MakeTimingWorkload(
                           db_size, kNumQueries, kDim, kClusterSize, 5))
             .first;
  }
  return it->second;
}

const t2h::search::HammingIndex& IndexFor(int db_size) {
  static std::map<int, t2h::search::HammingIndex>* cache =
      new std::map<int, t2h::search::HammingIndex>();
  auto it = cache->find(db_size);
  if (it == cache->end()) {
    it = cache->emplace(db_size, t2h::search::HammingIndex(
                                     WorkloadFor(db_size).db_codes))
             .first;
  }
  return it->second;
}

void BM_EuclideanBF(benchmark::State& state) {
  const int db_size = static_cast<int>(state.range(0)) / SizeScale();
  const auto& w = WorkloadFor(db_size);
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t2h::search::TopKEuclidean(
        w.db_embeddings, w.query_embeddings[q++ % kNumQueries], kTopK));
  }
}

void BM_HammingBF(benchmark::State& state) {
  const int db_size = static_cast<int>(state.range(0)) / SizeScale();
  const auto& w = WorkloadFor(db_size);
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t2h::search::TopKHamming(
        w.db_codes, w.query_codes[q++ % kNumQueries], kTopK));
  }
}

void BM_HammingHybrid(benchmark::State& state) {
  const int db_size = static_cast<int>(state.range(0)) / SizeScale();
  const auto& w = WorkloadFor(db_size);
  const auto& index = IndexFor(db_size);
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.HybridTopK(w.query_codes[q++ % kNumQueries], kTopK));
  }
}

void DbSizes(benchmark::internal::Benchmark* b) {
  for (int size = 20000; size <= 100000; size += 20000) b->Arg(size);
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_EuclideanBF)->Apply(DbSizes);
BENCHMARK(BM_HammingBF)->Apply(DbSizes);
BENCHMARK(BM_HammingHybrid)->Apply(DbSizes);

}  // namespace

BENCHMARK_MAIN();
