// Quantifies §III's remark that the Lemma 1 endpoint lower bound "seems
// loose for pruning": exact top-k search over raw trajectories with
// lower-bound pruning vs the exhaustive scan, under DTW and Fréchet.
//
// Expected shape: pruning is real but partial — a meaningful fraction of
// dynamic programs is skipped for Fréchet (whose value is close to the
// bound), much less for DTW (whose sum-aggregation dwarfs a single point
// pair) — which is exactly why the paper uses the bound to shape the
// read-out instead of as a search index.

#include <cstdio>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "distance/exact_search.h"
#include "traj/synthetic.h"

namespace t2h = traj2hash;

int main() {
  t2h::Rng rng(77);
  t2h::traj::CityConfig city = t2h::traj::CityConfig::PortoLike();
  city.max_points = 24;
  const auto all = GenerateTrips(city, 2050, rng);
  const std::vector<t2h::traj::Trajectory> queries(all.begin(),
                                                   all.begin() + 50);
  const std::vector<t2h::traj::Trajectory> database(all.begin() + 50,
                                                    all.end());
  std::printf("Lemma 1 pruning for EXACT top-10 search, database=%zu\n\n",
              database.size());
  std::printf("%-10s %-14s %-14s %-14s %-12s\n", "measure", "DP evals/query",
              "pruned/query", "prune rate", "us/query");
  for (const auto measure :
       {t2h::dist::Measure::kFrechet, t2h::dist::Measure::kDtw}) {
    int64_t evals = 0, pruned = 0;
    t2h::Stopwatch sw;
    for (const t2h::traj::Trajectory& q : queries) {
      const auto r =
          t2h::dist::ExactTopKWithLowerBound(q, database, measure, 10);
      evals += r.dp_evaluations;
      pruned += r.pruned;
    }
    const double per_query_us = sw.ElapsedMicros() / queries.size();
    const double rate =
        static_cast<double>(pruned) / (evals + pruned);
    std::printf("%-10s %-14.1f %-14.1f %-14.3f %-12.0f\n",
                t2h::dist::MeasureName(measure).c_str(),
                static_cast<double>(evals) / queries.size(),
                static_cast<double>(pruned) / queries.size(), rate,
                per_query_us);
  }
  std::printf("\n(for reference: the exhaustive scan always runs %zu DPs"
              " per query)\n", database.size());
  return 0;
}
