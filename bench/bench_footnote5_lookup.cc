// Quantifies §V-E footnote 5: why the paper does NOT use pure table-lookup
// (neighbour expansion) search in Hamming space. With d_h = 64 there are
// 2^64 buckets and at most |DB| non-empty ones, so a query far from every
// code expands through astronomically many empty buckets; Hamming-Hybrid
// instead gives up after radius 2 and falls back to the linear scan.
//
// The bench reports mean per-query time of LookupOnly (radius capped at 3 —
// uncapped would probe C(64, r) buckets per radius), Hamming-Hybrid and
// Hamming-BF on the same workload, split by query type (clustered queries
// that have near neighbours vs isolated queries that do not).

#include <cstdio>
#include <functional>

#include "bench/timing_data.h"
#include "common/stopwatch.h"
#include "search/hamming_index.h"

namespace t2h = traj2hash;

namespace {

constexpr int kDim = 64;
constexpr int kDbSize = 20000;
constexpr int kNumQueries = 64;
constexpr int kTopK = 10;

double MeanMicros(const std::function<void(const t2h::search::Code&)>& fn,
                  const std::vector<t2h::search::Code>& queries,
                  bool clustered) {
  t2h::Stopwatch sw;
  int count = 0;
  // MakeTimingWorkload alternates clustered (even) / isolated (odd) queries.
  for (size_t q = clustered ? 0 : 1; q < queries.size(); q += 2) {
    fn(queries[q]);
    ++count;
  }
  return sw.ElapsedMicros() / count;
}

}  // namespace

int main() {
  const auto w =
      t2h::bench::MakeTimingWorkload(kDbSize, kNumQueries, kDim, 40, 9);
  const t2h::search::HammingIndex index(w.db_codes);
  std::printf("Footnote 5 reproduction: pure table-lookup vs Hamming-Hybrid\n");
  std::printf("database=%d codes (%d bits), %d buckets, top-%d\n\n", kDbSize,
              kDim, index.num_buckets(), kTopK);
  std::printf("%-28s %-18s %-18s\n", "strategy", "clustered queries",
              "isolated queries");

  auto report = [&](const char* name, auto&& fn) {
    const double near = MeanMicros(fn, w.query_codes, true);
    const double far = MeanMicros(fn, w.query_codes, false);
    std::printf("%-28s %12.1f us   %12.1f us\n", name, near, far);
  };
  report("LookupOnly (radius <= 3)", [&](const t2h::search::Code& q) {
    index.LookupOnlyTopK(q, kTopK, /*max_radius=*/3);
  });
  report("Hamming-Hybrid", [&](const t2h::search::Code& q) {
    index.HybridTopK(q, kTopK);
  });
  report("Hamming-BF", [&](const t2h::search::Code& q) {
    index.BruteForceTopK(q, kTopK);
  });
  std::printf(
      "\nLookupOnly pays ~C(64,3)=41664 probes for every isolated query and\n"
      "still returns fewer than k results; Hamming-Hybrid caps probing at\n"
      "radius 2 and scans linearly instead — the paper's design choice.\n");
  return 0;
}
