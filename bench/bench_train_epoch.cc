// Data-parallel training bench: wall-clock of one full Trainer::Fit (joint +
// refinement epochs) at thread counts {1, 2, 4, 8}, plus pooled corpus
// encoding throughput. Every multi-threaded run is checked for the
// determinism contract — per-epoch wmse / rank / triplet losses must equal
// the single-thread run bit-for-bit — and the bench exits non-zero if they
// drift, so it doubles as a smoke check under `bench_smoke`.
//
// Numbers are honest for the machine they ran on: speedup saturates at the
// physical core count (`hardware_concurrency` is recorded in the JSON; on a
// 1-core container every thread count times roughly the same and the
// interesting signal is that losses stay identical anyway).
//
// Output: one JSON object on stdout (collected into BENCH_nn.json);
// human-oriented progress goes to stderr.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/trainer.h"
#include "distance/distance.h"
#include "traj/synthetic.h"

namespace t2h = traj2hash;
using t2h::core::EpochStats;

namespace {

struct TrainScale {
  std::string name = "small";
  int num_seeds = 32;
  int corpus = 300;
  int max_points = 16;
  int dim = 16;
  int epochs = 3;
  int refine_epochs = 3;
  int encode_rounds = 2;  ///< pooled-encode reps over the corpus
};

TrainScale GetTrainScale() {
  const char* env = std::getenv("T2H_BENCH_SCALE");
  const std::string scale = env != nullptr ? env : "small";
  TrainScale s;
  s.name = scale;
  if (scale == "tiny") {
    s.num_seeds = 16;
    s.corpus = 60;
    s.max_points = 10;
    s.dim = 8;
    s.epochs = 1;
    s.refine_epochs = 1;
    s.encode_rounds = 1;
  } else if (scale == "large") {
    s.num_seeds = 64;
    s.corpus = 1000;
    s.epochs = 6;
    s.refine_epochs = 6;
    s.encode_rounds = 4;
  }
  return s;
}

struct FitRun {
  double seconds = 0.0;
  std::vector<EpochStats> epochs;
};

bool SameLosses(const std::vector<EpochStats>& a,
                const std::vector<EpochStats>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].wmse != b[i].wmse || a[i].rank_loss != b[i].rank_loss ||
        a[i].triplet_loss != b[i].triplet_loss) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const TrainScale scale = GetTrainScale();
  const unsigned hw = std::thread::hardware_concurrency();
  std::fprintf(stderr,
               "train epoch bench: scale=%s seeds=%d corpus=%d dim=%d "
               "epochs=%d+%d (hardware_concurrency=%u)\n",
               scale.name.c_str(), scale.num_seeds, scale.corpus, scale.dim,
               scale.epochs, scale.refine_epochs, hw);

  // Fixture: one synthetic city, regenerated identically for every thread
  // count so the only varying input is TrainerOptions::num_threads.
  t2h::Rng data_rng(7);
  t2h::traj::CityConfig city = t2h::traj::CityConfig::PortoLike();
  city.max_points = scale.max_points;
  const auto corpus = GenerateTrips(city, scale.corpus, data_rng);

  t2h::core::TrainingData data;
  data.seeds.assign(corpus.begin(), corpus.begin() + scale.num_seeds);
  data.seed_distances = t2h::dist::PairwiseMatrix(
      data.seeds, t2h::dist::GetDistance(t2h::dist::Measure::kFrechet));
  data.triplet_corpus = corpus;

  t2h::core::Traj2HashConfig cfg;
  cfg.dim = scale.dim;
  cfg.num_blocks = 1;
  cfg.num_heads = 2;
  cfg.epochs = scale.epochs;
  cfg.samples_per_anchor = 6;
  cfg.batch_size = 8;

  const std::vector<int> thread_counts = {1, 2, 4, 8};
  std::vector<FitRun> runs;
  for (const int threads : thread_counts) {
    t2h::Rng rng(99);
    auto model =
        std::move(t2h::core::Traj2Hash::Create(cfg, corpus, rng).value());
    t2h::core::TrainerOptions options;
    options.triplets_per_step = 4;
    options.refine_epochs = scale.refine_epochs;
    options.num_threads = threads;
    t2h::core::Trainer trainer(model.get(), options);
    t2h::Stopwatch sw;
    auto report = trainer.Fit(data, rng);
    FitRun run;
    run.seconds = sw.ElapsedSeconds();
    if (!report.ok()) {
      std::fprintf(stderr, "FAILED: Fit(%d threads): %s\n", threads,
                   report.status().ToString().c_str());
      return 1;
    }
    run.epochs = report.value().epochs;
    std::fprintf(stderr, "  threads=%d  fit %.3f s\n", threads, run.seconds);
    runs.push_back(std::move(run));
  }

  bool invariant = true;
  for (size_t i = 1; i < runs.size(); ++i)
    invariant = invariant && SameLosses(runs[0].epochs, runs[i].epochs);

  // Pooled corpus encoding: the serving-side half of the thread-pool work.
  t2h::Rng enc_rng(5);
  auto enc_model =
      std::move(t2h::core::Traj2Hash::Create(cfg, corpus, enc_rng).value());
  std::vector<double> encode_seconds;
  for (const int threads : thread_counts) {
    t2h::ThreadPool pool(threads);
    t2h::Stopwatch sw;
    for (int r = 0; r < scale.encode_rounds; ++r) {
      const auto embs =
          enc_model->EmbedBatch(corpus, threads > 1 ? &pool : nullptr);
      if (embs.size() != corpus.size()) return 1;
    }
    encode_seconds.push_back(sw.ElapsedSeconds() / scale.encode_rounds);
    std::fprintf(stderr, "  encode threads=%d  %.3f s/round\n", threads,
                 encode_seconds.back());
  }

  std::printf("{\n  \"bench\": \"train_epoch\",\n  \"scale\": \"%s\",\n",
              scale.name.c_str());
  std::printf("  \"hardware_concurrency\": %u,\n", hw);
  std::printf("  \"epochs\": %d,\n", scale.epochs + scale.refine_epochs);
  std::printf("  \"fit\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    std::printf("    {\"threads\": %d, \"seconds\": %.4f, "
                "\"speedup_vs_1\": %.2f}%s\n",
                thread_counts[i], runs[i].seconds,
                runs[i].seconds > 0.0 ? runs[0].seconds / runs[i].seconds
                                      : 0.0,
                i + 1 < runs.size() ? "," : "");
  }
  std::printf("  ],\n  \"encode\": [\n");
  for (size_t i = 0; i < encode_seconds.size(); ++i) {
    std::printf("    {\"threads\": %d, \"seconds_per_round\": %.4f, "
                "\"speedup_vs_1\": %.2f}%s\n",
                thread_counts[i], encode_seconds[i],
                encode_seconds[i] > 0.0 ? encode_seconds[0] / encode_seconds[i]
                                        : 0.0,
                i + 1 < encode_seconds.size() ? "," : "");
  }
  std::printf("  ],\n  \"loss_trajectory_thread_invariant\": %s\n}\n",
              invariant ? "true" : "false");

  if (!invariant) {
    std::fprintf(stderr,
                 "FAILED: per-epoch losses differ across thread counts\n");
    return 1;
  }
  return 0;
}
