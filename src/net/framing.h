#ifndef TRAJ2HASH_NET_FRAMING_H_
#define TRAJ2HASH_NET_FRAMING_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/socket.h"

namespace traj2hash::net {

/// Typed message frames for the WAL-shipping protocol (DESIGN.md §16).
/// On the wire every frame is
///   u8 type | u32 payload_len | u32 crc32(payload) | payload
/// — the same CRC framing the on-disk log uses (common/serialize.h), plus a
/// type tag, so a receiver can verify each message independently of TCP's
/// own checksum and tell a torn tail (disconnect mid-frame) apart from
/// corruption (a complete frame whose checksum fails).
enum class FrameType : uint8_t {
  /// Client -> server greeting: u64 resume_after_seq | u8 mode
  /// (mode 0 = tail the log, 1 = fetch a bootstrap snapshot).
  kHello = 1,
  /// Server -> client: the log covers resume_after_seq + 1; records follow.
  kResume = 2,
  /// Server -> client: the log was reset past the client's resume point;
  /// the client must re-bootstrap from a snapshot. Empty payload.
  kNeedBootstrap = 3,
  /// Server -> client: u64 total snapshot bytes; chunks follow.
  kSnapshotBegin = 4,
  /// Server -> client: raw snapshot bytes (<= kSnapshotChunkBytes each).
  kSnapshotChunk = 5,
  /// Server -> client: u32 crc32 of the whole snapshot file.
  kSnapshotEnd = 6,
  /// Server -> client: one serialized ingest::WalRecord.
  kRecord = 7,
  /// Server -> client keepalive on an idle stream: u64 committed_seq.
  kHeartbeat = 8,
  /// Server -> client: the stream lost continuity server-side (the primary
  /// reset its log mid-stream); re-handshake to resync. Empty payload.
  kLogReset = 9,
  /// Server -> client: terminal server-side failure: u8 status code |
  /// message bytes.
  kError = 10,
};

/// Canonical lower-case frame name for logs and errors.
const char* FrameTypeName(FrameType type);

/// Upper bound on a single frame payload; a declared length above this is
/// reported as corruption instead of a multi-gigabyte allocation.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

/// Snapshot streaming chunk size.
inline constexpr size_t kSnapshotChunkBytes = 64u << 10;

/// Serialises and sends one frame. Status comes straight from
/// Socket::SendAll (kIoError on a broken / torn connection,
/// kDeadlineExceeded on a stalled peer).
Status WriteFrame(Socket& socket, FrameType type, const std::string& payload,
                  double timeout_ms);

/// Incremental frame reader over one socket. Buffers partial reads so a
/// frame split across TCP segments (or poll timeouts) is reassembled
/// transparently; bytes already buffered survive a kDeadlineExceeded and
/// the next ReadFrame resumes where this one stopped.
class FrameReader {
 public:
  explicit FrameReader(Socket* socket) : socket_(socket) {}

  /// Reads exactly one frame within `timeout_ms`.
  ///   - kDeadlineExceeded: no complete frame arrived (partial data kept).
  ///   - kUnavailable: the peer closed; a *partial* buffered frame at EOF is
  ///     still kUnavailable (a torn send, not corruption — the sender died
  ///     mid-frame and nothing it sent was acknowledged).
  ///   - kDataLoss: a complete frame whose CRC does not match, an unknown
  ///     frame type, or an implausible declared length.
  Status ReadFrame(FrameType* type, std::string* payload, double timeout_ms);

  /// Bytes buffered but not yet consumed (tests).
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  Socket* socket_;
  std::string buffer_;
};

}  // namespace traj2hash::net

#endif  // TRAJ2HASH_NET_FRAMING_H_
