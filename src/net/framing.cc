#include "net/framing.h"

#include <chrono>
#include <cstring>

#include "common/crc32.h"
#include "common/serialize.h"

namespace traj2hash::net {
namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kHeaderBytes = 1 + 2 * sizeof(uint32_t);

double RemainingMillis(Clock::time_point deadline) {
  const auto now = Clock::now();
  if (now >= deadline) return 0.0;
  return std::chrono::duration_cast<std::chrono::microseconds>(deadline - now)
             .count() /
         1000.0;
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "hello";
    case FrameType::kResume:
      return "resume";
    case FrameType::kNeedBootstrap:
      return "need-bootstrap";
    case FrameType::kSnapshotBegin:
      return "snapshot-begin";
    case FrameType::kSnapshotChunk:
      return "snapshot-chunk";
    case FrameType::kSnapshotEnd:
      return "snapshot-end";
    case FrameType::kRecord:
      return "record";
    case FrameType::kHeartbeat:
      return "heartbeat";
    case FrameType::kLogReset:
      return "log-reset";
    case FrameType::kError:
      return "error";
  }
  return "unknown";
}

Status WriteFrame(Socket& socket, FrameType type, const std::string& payload,
                  double timeout_ms) {
  std::string wire;
  wire.reserve(kHeaderBytes + payload.size());
  AppendPod(wire, static_cast<uint8_t>(type));
  AppendPod(wire, static_cast<uint32_t>(payload.size()));
  AppendPod(wire, Crc32(payload));
  wire.append(payload);
  return socket.SendAll(wire.data(), wire.size(), timeout_ms);
}

Status FrameReader::ReadFrame(FrameType* type, std::string* payload,
                              double timeout_ms) {
  const auto deadline =
      Clock::now() + std::chrono::microseconds(
                         static_cast<int64_t>(timeout_ms * 1000.0));
  while (true) {
    if (buffer_.size() >= kHeaderBytes) {
      uint8_t raw_type = 0;
      uint32_t len = 0;
      uint32_t crc = 0;
      std::memcpy(&raw_type, buffer_.data(), sizeof(raw_type));
      std::memcpy(&len, buffer_.data() + 1, sizeof(len));
      std::memcpy(&crc, buffer_.data() + 1 + sizeof(len), sizeof(crc));
      if (raw_type < static_cast<uint8_t>(FrameType::kHello) ||
          raw_type > static_cast<uint8_t>(FrameType::kError)) {
        return Status::DataLoss("unknown frame type " +
                                std::to_string(raw_type) + " on the wire");
      }
      if (len > kMaxFramePayload) {
        return Status::DataLoss("frame declares an implausible payload of " +
                                std::to_string(len) + " bytes");
      }
      if (buffer_.size() >= kHeaderBytes + len) {
        const char* data = buffer_.data() + kHeaderBytes;
        if (Crc32(data, len) != crc) {
          return Status::DataLoss("frame checksum mismatch on the wire (" +
                                  std::string(FrameTypeName(
                                      static_cast<FrameType>(raw_type))) +
                                  ")");
        }
        *type = static_cast<FrameType>(raw_type);
        payload->assign(data, len);
        buffer_.erase(0, kHeaderBytes + len);
        return Status::Ok();
      }
    }
    const double remaining = RemainingMillis(deadline);
    if (remaining <= 0.0 && Clock::now() >= deadline) {
      return Status::DeadlineExceeded("no complete frame within the deadline");
    }
    char chunk[16 << 10];
    Result<size_t> received =
        socket_->RecvSome(chunk, sizeof(chunk), remaining);
    if (!received.ok()) return received.status();
    buffer_.append(chunk, received.value());
  }
}

}  // namespace traj2hash::net
