#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/fault_injection.h"

namespace traj2hash::net {
namespace {

using Clock = std::chrono::steady_clock;

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError(Errno("fcntl(O_NONBLOCK)"));
  }
  return Status::Ok();
}

/// Waits until `fd` is ready for `events` or the absolute deadline passes.
/// OK = ready; kDeadlineExceeded = timed out; kIoError = poll error.
Status PollUntil(int fd, short events, Clock::time_point deadline) {
  while (true) {
    const auto now = Clock::now();
    const int wait_ms =
        now >= deadline
            ? 0
            : static_cast<int>(
                  std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - now)
                      .count()) +
                  1;
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc > 0) return Status::Ok();  // ready (possibly POLLERR/POLLHUP —
                                      // let the actual IO call report it)
    if (rc == 0) {
      if (Clock::now() >= deadline) {
        return Status::DeadlineExceeded("socket IO deadline expired");
      }
      continue;
    }
    if (errno == EINTR) continue;
    return Status::IoError(Errno("poll"));
  }
}

Clock::time_point DeadlineAfter(double timeout_ms) {
  if (timeout_ms < 0) timeout_ms = 0;
  return Clock::now() + std::chrono::microseconds(
                            static_cast<int64_t>(timeout_ms * 1000.0));
}

}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> Socket::Connect(const std::string& host, int port,
                               double timeout_ms) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError(Errno("socket"));
  Socket socket(fd);
  Status status = SetNonBlocking(fd);
  if (!status.ok()) return status;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  const auto deadline = DeadlineAfter(timeout_ms);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (errno != EINPROGRESS) {
      return Status::Unavailable(Errno("connect to " + host + ":" +
                                       std::to_string(port)));
    }
    status = PollUntil(fd, POLLOUT, deadline);
    if (!status.ok()) {
      return Status::Unavailable("connect to " + host + ":" +
                                 std::to_string(port) + " timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      errno = err;
      return Status::Unavailable(Errno("connect to " + host + ":" +
                                       std::to_string(port)));
    }
  }
  return socket;
}

Status Socket::SendAll(const void* data, size_t n, double timeout_ms) {
  if (fd_ < 0) return Status::IoError("send on a closed socket");
  const char* bytes = static_cast<const char*>(data);
  size_t sent = 0;
  size_t budget = n;
  bool torn = false;
  if (FaultInjector::Fire(faults::kNetSend)) {
    // Torn send: half the buffer escapes, then the connection dies — the
    // peer finds a partial frame followed by EOF, exactly like a sender
    // crash mid-write.
    budget = n / 2;
    torn = true;
  }
  const auto deadline = DeadlineAfter(timeout_ms);
  while (sent < budget) {
    const ssize_t rc =
        ::send(fd_, bytes + sent, budget - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      Status ready = PollUntil(fd_, POLLOUT, deadline);
      if (!ready.ok()) return ready;
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    return Status::IoError(Errno("send"));
  }
  if (torn) {
    Shutdown();
    return Status::IoError("injected torn send after " +
                           std::to_string(budget) + "/" + std::to_string(n) +
                           " bytes");
  }
  return Status::Ok();
}

Result<size_t> Socket::RecvSome(void* out, size_t n, double timeout_ms) {
  if (fd_ < 0) return Status::IoError("recv on a closed socket");
  if (FaultInjector::Fire(faults::kNetRecv)) {
    Shutdown();
    return Status::IoError("injected recv failure");
  }
  const auto deadline = DeadlineAfter(timeout_ms);
  while (true) {
    const ssize_t rc = ::recv(fd_, out, n, 0);
    if (rc > 0) return static_cast<size_t>(rc);
    if (rc == 0) return Status::Unavailable("peer closed the connection");
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      Status ready = PollUntil(fd_, POLLIN, deadline);
      if (!ready.ok()) return ready;
      continue;
    }
    if (errno == EINTR) continue;
    return Status::IoError(Errno("recv"));
  }
}

Listener::~Listener() { Close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

void Listener::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Listener> Listener::Listen(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError(Errno("socket"));
  Listener listener;
  listener.fd_ = fd;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  Status status = SetNonBlocking(fd);
  if (!status.ok()) return status;

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IoError(Errno("bind 127.0.0.1:" + std::to_string(port)));
  }
  if (::listen(fd, 64) < 0) return Status::IoError(Errno("listen"));
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) <
      0) {
    return Status::IoError(Errno("getsockname"));
  }
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<Socket> Listener::Accept(double timeout_ms) {
  if (fd_ < 0) return Status::Unavailable("listener is closed");
  const auto deadline = DeadlineAfter(timeout_ms);
  while (true) {
    Status ready = PollUntil(fd_, POLLIN, deadline);
    if (!ready.ok()) return ready;
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      if (errno == EINVAL) {
        // shutdown() on the listening socket (Listener::Shutdown) lands
        // here: the accept loop is being told to exit.
        return Status::Unavailable("listener was shut down");
      }
      return Status::IoError(Errno("accept"));
    }
    Socket socket(fd);
    if (FaultInjector::Fire(faults::kNetAccept)) {
      // Accept-then-slam: the peer's connect succeeded, but the very next
      // read on its side reports EOF.
      return Status::Unavailable("injected accept failure");
    }
    Status status = SetNonBlocking(fd);
    if (!status.ok()) return status;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return socket;
  }
}

}  // namespace traj2hash::net
