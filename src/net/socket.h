#ifndef TRAJ2HASH_NET_SOCKET_H_
#define TRAJ2HASH_NET_SOCKET_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace traj2hash::net {

/// A connected TCP stream socket with poll()-based deadlines on every
/// operation (DESIGN.md §16). All sockets are non-blocking under the hood;
/// Send/Recv loop on poll() until the byte budget or the deadline is spent,
/// so a stalled peer can never wedge a caller for longer than its timeout.
///
/// Ownership: move-only; the destructor closes the descriptor. `Shutdown`
/// is the one cross-thread-safe operation — it calls ::shutdown (never
/// ::close), which wakes any thread blocked in poll() on this socket and
/// makes further IO fail, without freeing the descriptor out from under
/// them. That is how ShipServer::Sever kills in-flight connections that
/// per-connection threads own.
///
/// Fault points (common/fault_injection.h): faults::kNetSend injects a
/// torn send — half the buffer is transmitted, then the connection is shut
/// down; faults::kNetRecv injects a failed read + shutdown.
class Socket {
 public:
  Socket() = default;  ///< invalid socket (valid() == false)
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to host:port (numeric IPv4, normally 127.0.0.1) within
  /// `timeout_ms`. kUnavailable on refusal/timeout, kInvalidArgument on a
  /// bad address.
  static Result<Socket> Connect(const std::string& host, int port,
                                double timeout_ms);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends all `n` bytes or fails. kIoError on a broken connection (or the
  /// injected torn send), kDeadlineExceeded when the peer's window stays
  /// full past the deadline.
  Status SendAll(const void* data, size_t n, double timeout_ms);

  /// Receives up to `n` bytes into `out`. Returns the count received (>= 1),
  /// kUnavailable when the peer closed cleanly (EOF), kDeadlineExceeded when
  /// no byte arrives within the deadline, kIoError on a reset connection.
  Result<size_t> RecvSome(void* out, size_t n, double timeout_ms);

  /// Cross-thread-safe: wakes blocked IO and poisons the connection.
  void Shutdown();
  /// Owner-thread only: closes the descriptor.
  void Close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to 127.0.0.1. Port 0 picks an ephemeral
/// port (read it back with port()), so tests and local replica groups never
/// collide. Honours faults::kNetAccept: the injected hit accepts the
/// pending connection and instantly closes it, so the peer observes
/// connect-then-EOF.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  static Result<Listener> Listen(int port = 0);

  bool valid() const { return fd_ >= 0; }
  int port() const { return port_; }

  /// Accepts one connection within `timeout_ms`. kDeadlineExceeded when
  /// nothing arrives, kUnavailable on the injected accept fault or a closed
  /// listener.
  Result<Socket> Accept(double timeout_ms);

  /// Cross-thread-safe: wakes a blocked Accept and makes it fail, without
  /// closing the descriptor out from under the accept loop.
  void Shutdown();
  void Close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace traj2hash::net

#endif  // TRAJ2HASH_NET_SOCKET_H_
