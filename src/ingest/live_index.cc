#include "ingest/live_index.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"
#include "search/kernels.h"

namespace traj2hash::ingest {

LiveIndex::Base::Base(const LiveIndexOptions& options)
    : brute_codes(options.num_bits) {
  if (options.quantize) {
    qrows = std::make_unique<quant::QuantizedMatrix>(options.embedding_dim);
  }
  switch (options.strategy) {
    case search::SearchStrategy::kMih:
      mih = std::make_unique<search::MihIndex>(options.num_bits,
                                               options.mih_substrings);
      break;
    case search::SearchStrategy::kRadius2:
      hybrid = std::make_unique<search::HammingIndex>(options.num_bits);
      break;
    case search::SearchStrategy::kBrute:
      break;  // brute scans need only the packed rows
  }
}

const search::PackedCodes& LiveIndex::Base::codes() const {
  if (mih != nullptr) return mih->codes();
  if (hybrid != nullptr) return hybrid->codes();
  return brute_codes;
}

LiveIndex::LiveIndex(const LiveIndexOptions& options)
    : options_(options),
      base_(std::make_shared<const Base>(options)),
      delta_codes_(options.num_bits) {
  T2H_CHECK_GT(options.num_bits, 0);
  T2H_CHECK_GE(options.compact_min_ops, 1);
  T2H_CHECK_GT(options.compact_ratio, 0.0);
  if (options.quantize) {
    T2H_CHECK_MSG(options.embedding_dim > 0,
                  "quantize requires embedding_dim");
    delta_qrows_ =
        std::make_unique<quant::QuantizedMatrix>(options.embedding_dim);
  }
}

Status LiveIndex::QuantizeForAppendLocked(const std::vector<float>& embedding,
                                          std::vector<int8_t>* qrow) {
  qrow->clear();
  if (!options_.quantize || embedding.empty()) return Status::Ok();
  T2H_CHECK_EQ(static_cast<int>(embedding.size()), options_.embedding_dim);
  if (qparams_.empty()) {
    // Cold start: calibrate from the very first embedding-bearing row
    // (zero-range widening keeps every step positive).
    quant::ParamsBuilder builder(options_.embedding_dim);
    if (const Status s = builder.Add(embedding.data()); !s.ok()) return s;
    auto built = builder.Build();
    if (!built.ok()) return built.status();
    qparams_ = std::move(built.value());
  } else if (base_->emb_rows == 0 && RowExpandsRangeLocked(embedding.data())) {
    // While the whole lattice still lives in the delta (no compacted base
    // holds an embedding row), an out-of-range insert widens the params and
    // requantizes the delta in place instead of saturating — a bulk load
    // must not let its first row dictate the corpus range. Once a base with
    // embedding rows is installed, out-of-range rows saturate until the
    // next compaction rebuild: base epochs are read outside the lock by
    // compaction and can never be rewritten in place.
    if (const Status s = ExpandParamsLocked(embedding.data()); !s.ok()) {
      return s;
    }
  }
  qrow->resize(embedding.size());
  return qparams_.QuantizeRow(embedding.data(), qrow->data());
}

bool LiveIndex::RowExpandsRangeLocked(const float* row) const {
  for (int j = 0; j < options_.embedding_dim; ++j) {
    // Range edges recovered from the params: q = ∓128/127 dequantize to
    // s·(zp − 128) and s·(zp + 127) = lo + 255·s.
    const float lo = qparams_.scale[j] * (qparams_.zero_point[j] - 128.0f);
    const float hi = lo + 255.0f * qparams_.scale[j];
    if (row[j] < lo || row[j] > hi) return true;
  }
  return false;
}

Status LiveIndex::ExpandParamsLocked(const float* row) {
  const int dim = options_.embedding_dim;
  // New range = old range ∪ row, rebuilt through the normal builder so the
  // zero-range widening and scale_sq derivation stay in one place.
  std::vector<float> corner_lo(dim);
  std::vector<float> corner_hi(dim);
  for (int j = 0; j < dim; ++j) {
    corner_lo[j] = qparams_.scale[j] * (qparams_.zero_point[j] - 128.0f);
    corner_hi[j] = corner_lo[j] + 255.0f * qparams_.scale[j];
  }
  quant::ParamsBuilder builder(dim);
  T2H_CHECK(builder.Add(corner_lo.data()).ok());  // finite by construction
  T2H_CHECK(builder.Add(corner_hi.data()).ok());
  if (const Status s = builder.Add(row); !s.ok()) return s;  // ±inf rejected
  auto built = builder.Build();
  if (!built.ok()) return built.status();
  quant::QuantizationParams next = std::move(built.value());

  // Requantize every delta row onto the widened lattice. The exclusive lock
  // makes the in-place overwrite safe: readers are excluded, and an
  // in-flight compaction rebuild works on its own phase-1 copy of the delta
  // (its install then requantizes the live suffix under whatever qparams_
  // holds at install time — which this keeps consistent for every row).
  std::vector<float> deq(dim);
  std::vector<int8_t> req(dim);
  for (int r = 0; r < delta_qrows_->rows(); ++r) {
    if (delta_has_emb_[r] == 0) continue;
    qparams_.DequantizeRow(delta_qrows_->row(r), deq.data());
    T2H_CHECK(next.QuantizeRow(deq.data(), req.data()).ok());
    delta_qrows_->OverwriteRow(r, req.data());
  }
  qparams_ = std::move(next);
  return Status::Ok();
}

void LiveIndex::AppendDeltaLocked(int id, search::Code code,
                                  std::vector<float> embedding,
                                  std::vector<int8_t> qrow) {
  const int row = delta_codes_.Append(code);
  delta_ids_.push_back(id);
  delta_dead_.push_back(0);
  if (options_.quantize) {
    if (qrow.empty()) {
      const std::vector<int8_t> zeros(options_.embedding_dim, 0);
      delta_qrows_->Append(zeros.data());
      delta_has_emb_.push_back(0);
    } else {
      delta_qrows_->Append(qrow.data());
      delta_has_emb_.push_back(1);
    }
  } else {
    delta_embeddings_.push_back(std::move(embedding));
  }
  loc_[id] = Loc{/*in_delta=*/true, row};
}

Status LiveIndex::Insert(int id, search::Code code,
                         std::vector<float> embedding) {
  T2H_CHECK_GE(id, 0);
  T2H_CHECK_EQ(code.num_bits, options_.num_bits);
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (loc_.find(id) != loc_.end()) {
    return Status::InvalidArgument("id " + std::to_string(id) +
                                   " is already live");
  }
  std::vector<int8_t> qrow;
  if (const Status s = QuantizeForAppendLocked(embedding, &qrow); !s.ok()) {
    return s;  // NaN rejection happens before any state changes
  }
  AppendDeltaLocked(id, std::move(code), std::move(embedding),
                    std::move(qrow));
  mutation_epoch_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status LiveIndex::Remove(int id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto it = loc_.find(id);
  if (it == loc_.end()) {
    return Status::NotFound("id " + std::to_string(id) + " is not live");
  }
  const Loc loc = it->second;
  if (loc.in_delta) {
    delta_dead_[loc.row] = 1;
    ++delta_dead_count_;
  } else {
    base_dead_[loc.row] = 1;
    ++base_dead_count_;
  }
  loc_.erase(it);
  mutation_epoch_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status LiveIndex::Update(int id, search::Code code,
                         std::vector<float> embedding) {
  T2H_CHECK_EQ(code.num_bits, options_.num_bits);
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto it = loc_.find(id);
  if (it == loc_.end()) {
    return Status::NotFound("id " + std::to_string(id) + " is not live");
  }
  std::vector<int8_t> qrow;
  if (const Status s = QuantizeForAppendLocked(embedding, &qrow); !s.ok()) {
    return s;  // reject before tombstoning — the old entry stays intact
  }
  // Tombstone the old row, re-point the id at a fresh delta row.
  const Loc loc = it->second;
  if (loc.in_delta) {
    delta_dead_[loc.row] = 1;
    ++delta_dead_count_;
  } else {
    base_dead_[loc.row] = 1;
    ++base_dead_count_;
  }
  loc_.erase(it);
  AppendDeltaLocked(id, std::move(code), std::move(embedding),
                    std::move(qrow));
  mutation_epoch_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

void LiveIndex::Upsert(int id, search::Code code,
                       std::vector<float> embedding) {
  T2H_CHECK_GE(id, 0);
  T2H_CHECK_EQ(code.num_bits, options_.num_bits);
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::vector<int8_t> qrow;
  // WAL replay / replica apply ships float embeddings and re-quantizes
  // here, under THIS shard's params. A non-finite embedding would already
  // have been rejected at original ingest, so it is a hard fault on replay.
  T2H_CHECK_MSG(QuantizeForAppendLocked(embedding, &qrow).ok(),
                "non-finite embedding in upsert");
  const auto it = loc_.find(id);
  if (it != loc_.end()) {
    const Loc loc = it->second;
    if (loc.in_delta) {
      delta_dead_[loc.row] = 1;
      ++delta_dead_count_;
    } else {
      base_dead_[loc.row] = 1;
      ++base_dead_count_;
    }
    loc_.erase(it);
  }
  AppendDeltaLocked(id, std::move(code), std::move(embedding),
                    std::move(qrow));
  mutation_epoch_.fetch_add(1, std::memory_order_relaxed);
}

bool LiveIndex::RemoveIfPresent(int id) { return Remove(id).ok(); }

std::vector<search::Neighbor> LiveIndex::BaseTopKLocked(
    const search::Code& query, int k, const Deadline& deadline,
    bool* complete) const {
  const Base& base = *base_;
  if (base.size() == 0) return {};
  const uint8_t* skip = base_dead_count_ > 0 ? base_dead_.data() : nullptr;
  std::vector<search::Neighbor> out;
  switch (options_.strategy) {
    case search::SearchStrategy::kBrute:
      out = search::TopKHamming(base.codes(), query, k, skip);
      break;
    case search::SearchStrategy::kRadius2:
      out = base.hybrid->HybridTopK(query, k, skip);
      break;
    case search::SearchStrategy::kMih:
      out = base.mih->TopK(query, k, deadline, complete, skip,
                           base_dead_count_);
      break;
  }
  // Base rows are ascending by id (compaction sorts), so the engines'
  // (distance, row) selection already equals (distance, id); the map below
  // is monotone and order-preserving.
  for (search::Neighbor& n : out) n.index = base.ids[n.index];
  return out;
}

std::vector<search::Neighbor> LiveIndex::DeltaTopKLocked(
    const search::Code& query, int k) const {
  const int n = delta_codes_.size();
  if (n == 0) return {};
  std::vector<int32_t> dist(n);
  search::kernels::HammingScan(delta_codes_.data(), query.words.data(), n,
                               delta_codes_.words_per_code(),
                               delta_codes_.stride_words(), dist.data());
  std::vector<int> rows;
  rows.reserve(n - delta_dead_count_);
  for (int i = 0; i < n; ++i) {
    if (delta_dead_[i] == 0) rows.push_back(i);
  }
  const int live = static_cast<int>(rows.size());
  k = std::min(k, live);
  if (k <= 0) return {};
  // Delta rows can arrive out of id order under concurrent ingest, so the
  // tie-break selects on the mapped id, not the row.
  const auto less = [&](int a, int b) {
    if (dist[a] != dist[b]) return dist[a] < dist[b];
    return delta_ids_[a] < delta_ids_[b];
  };
  if (k < live) {
    std::nth_element(rows.begin(), rows.begin() + (k - 1), rows.end(), less);
    rows.resize(k);
  }
  std::sort(rows.begin(), rows.end(), less);
  std::vector<search::Neighbor> out;
  out.reserve(k);
  for (const int row : rows) {
    out.push_back({delta_ids_[row], static_cast<double>(dist[row])});
  }
  return out;
}

std::vector<search::Neighbor> LiveIndex::TopK(const search::Code& query,
                                              int k) const {
  bool complete = true;
  return TopK(query, k, Deadline::Infinite(), &complete);
}

std::vector<search::Neighbor> LiveIndex::TopK(const search::Code& query,
                                              int k, const Deadline& deadline,
                                              bool* complete) const {
  T2H_CHECK_GE(k, 1);
  T2H_CHECK_EQ(query.num_bits, options_.num_bits);
  *complete = true;
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<search::Neighbor> merged =
      BaseTopKLocked(query, k, deadline, complete);
  const std::vector<search::Neighbor> delta_part = DeltaTopKLocked(query, k);
  // Both parts are the exact top-k of their half under (distance, id); the
  // k best of their union is the logical corpus' top-k.
  merged.insert(merged.end(), delta_part.begin(), delta_part.end());
  std::sort(merged.begin(), merged.end(), search::NeighborLess);
  if (static_cast<int>(merged.size()) > k) merged.resize(k);
  return merged;
}

bool LiveIndex::Contains(int id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return loc_.find(id) != loc_.end();
}

std::vector<float> LiveIndex::EmbeddingOf(int id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = loc_.find(id);
  if (it == loc_.end()) return {};
  const Loc loc = it->second;
  if (options_.quantize) {
    const bool has = loc.in_delta ? delta_has_emb_[loc.row] != 0
                                  : base_->has_emb[loc.row] != 0;
    if (!has) return {};
    std::vector<float> out(options_.embedding_dim);
    const int8_t* row = loc.in_delta ? delta_qrows_->row(loc.row)
                                     : base_->qrows->row(loc.row);
    qparams_.DequantizeRow(row, out.data());
    return out;
  }
  return loc.in_delta ? delta_embeddings_[loc.row]
                      : base_->embeddings[loc.row];
}

std::vector<search::Neighbor> LiveIndex::RerankTopK(
    const search::Code& query, const std::vector<float>& query_embedding,
    int k, int num_candidates) const {
  T2H_CHECK_GE(k, 1);
  T2H_CHECK_EQ(query.num_bits, options_.num_bits);
  num_candidates = std::max(num_candidates, k);
  std::shared_lock<std::shared_mutex> lock(mu_);
  // Stage 0 — Hamming candidate generation over the live entries (the same
  // merge TopK performs, under our lock).
  bool complete = true;
  std::vector<search::Neighbor> cand =
      BaseTopKLocked(query, num_candidates, Deadline::Infinite(), &complete);
  const std::vector<search::Neighbor> delta_part =
      DeltaTopKLocked(query, num_candidates);
  cand.insert(cand.end(), delta_part.begin(), delta_part.end());
  std::sort(cand.begin(), cand.end(), search::NeighborLess);
  if (static_cast<int>(cand.size()) > num_candidates) {
    cand.resize(num_candidates);
  }
  // Ascending ids make the gathered scratch rows id-ordered, so the
  // re-ranker's row-index tie-break equals the repo-wide id tie-break.
  std::vector<int> ids;
  ids.reserve(cand.size());
  for (const search::Neighbor& n : cand) ids.push_back(n.index);
  std::sort(ids.begin(), ids.end());

  if (options_.quantize) {
    if (qparams_.empty()) return {};
    quant::QuantizedMatrix scratch(options_.embedding_dim);
    std::vector<int> scratch_ids;
    scratch_ids.reserve(ids.size());
    for (const int id : ids) {
      const Loc loc = loc_.at(id);
      const bool has = loc.in_delta ? delta_has_emb_[loc.row] != 0
                                    : base_->has_emb[loc.row] != 0;
      if (!has) continue;
      scratch.Append(loc.in_delta ? delta_qrows_->row(loc.row)
                                  : base_->qrows->row(loc.row));
      scratch_ids.push_back(id);
    }
    if (scratch.rows() == 0) return {};
    std::vector<search::Neighbor> out = quant::RerankTopK(
        scratch, qparams_, query_embedding, k, /*candidates=*/nullptr,
        /*num_candidates=*/0, &rerank_counters_);
    for (search::Neighbor& n : out) n.index = scratch_ids[n.index];
    return out;
  }
  const int dim = static_cast<int>(query_embedding.size());
  search::FlatMatrix scratch(dim);
  std::vector<int> scratch_ids;
  scratch_ids.reserve(ids.size());
  for (const int id : ids) {
    const Loc loc = loc_.at(id);
    const std::vector<float>& emb = loc.in_delta
                                        ? delta_embeddings_[loc.row]
                                        : base_->embeddings[loc.row];
    if (static_cast<int>(emb.size()) != dim) continue;
    scratch.Append(emb);
    scratch_ids.push_back(id);
  }
  if (scratch.rows() == 0) return {};
  std::vector<search::Neighbor> out =
      search::TopKEuclidean(scratch, query_embedding, k);
  for (search::Neighbor& n : out) n.index = scratch_ids[n.index];
  return out;
}

size_t LiveIndex::embedding_resident_bytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (options_.quantize) {
    return base_->qrows->resident_bytes() + delta_qrows_->resident_bytes() +
           3 * static_cast<size_t>(qparams_.dim()) * sizeof(float);
  }
  size_t bytes = 0;
  for (const std::vector<float>& e : base_->embeddings) {
    bytes += e.size() * sizeof(float);
  }
  for (const std::vector<float>& e : delta_embeddings_) {
    bytes += e.size() * sizeof(float);
  }
  return bytes;
}

quant::QuantizationParams LiveIndex::ParamsSnapshot() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return qparams_;
}

std::vector<LiveIndex::Entry> LiveIndex::SnapshotEntries() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<Entry> out;
  out.reserve(loc_.size());
  for (const auto& [id, loc] : loc_) {
    Entry e;
    e.id = id;
    e.code = loc.in_delta ? delta_codes_.CodeAt(loc.row)
                          : base_->codes().CodeAt(loc.row);
    if (options_.quantize) {
      // Snapshots carry float embeddings (the dequantized lattice values);
      // the writer / a replica requantizes under its own params.
      const bool has = loc.in_delta ? delta_has_emb_[loc.row] != 0
                                    : base_->has_emb[loc.row] != 0;
      if (has) {
        e.embedding.resize(options_.embedding_dim);
        qparams_.DequantizeRow(loc.in_delta ? delta_qrows_->row(loc.row)
                                            : base_->qrows->row(loc.row),
                               e.embedding.data());
      }
    } else {
      e.embedding = loc.in_delta ? delta_embeddings_[loc.row]
                                 : base_->embeddings[loc.row];
    }
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.id < b.id; });
  return out;
}

int LiveIndex::live_size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<int>(loc_.size());
}

int LiveIndex::tombstone_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return base_dead_count_ + delta_dead_count_;
}

int LiveIndex::delta_size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return delta_codes_.size();
}

bool LiveIndex::NeedsCompactionLocked() const {
  // Rows a compaction would reclaim (tombstones) or index properly (delta
  // rows — each counted once even when both apply).
  const int pending = base_dead_count_ + delta_codes_.size();
  const int total = base_->size() + delta_codes_.size();
  return pending >= options_.compact_min_ops &&
         pending > options_.compact_ratio * total;
}

bool LiveIndex::NeedsCompaction() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return NeedsCompactionLocked();
}

bool LiveIndex::ClaimCompaction() {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (!NeedsCompactionLocked()) return false;
  }
  return !compaction_in_flight_.exchange(true, std::memory_order_acq_rel);
}

void LiveIndex::Compact() {
  // No-op when a background compaction is already in flight — it will fold
  // in everything this call would have.
  if (compaction_in_flight_.exchange(true, std::memory_order_acq_rel)) return;
  RunClaimedCompaction();
}

void LiveIndex::RunClaimedCompaction() {
  // Phase 1 — capture an epoch snapshot under the shared lock: the base
  // pointer (immutable; the shared_ptr pins it against a racing install,
  // though claims are single-flight anyway), copies of the tombstone flags
  // and the current delta prefix. Mutations keep flowing while we build.
  std::shared_ptr<const Base> base;
  std::vector<uint8_t> base_dead;
  int captured_delta = 0;
  search::PackedCodes delta_codes(options_.num_bits);
  std::vector<int> delta_ids;
  std::vector<uint8_t> delta_dead;
  // Quantize mode: the captured delta's int8 rows + flags and the params
  // they were quantized under (1 byte/dim per row — cheap to copy).
  quant::QuantizationParams old_params;
  std::unique_ptr<quant::QuantizedMatrix> delta_qrows;
  std::vector<uint8_t> delta_has_emb;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    base = base_;
    base_dead = base_dead_;
    captured_delta = delta_codes_.size();
    delta_ids.assign(delta_ids_.begin(), delta_ids_.begin() + captured_delta);
    delta_dead.assign(delta_dead_.begin(),
                      delta_dead_.begin() + captured_delta);
    for (int row = 0; row < captured_delta; ++row) {
      delta_codes.Append(delta_codes_.CodeAt(row));
    }
    if (options_.quantize) {
      old_params = qparams_;
      delta_qrows =
          std::make_unique<quant::QuantizedMatrix>(options_.embedding_dim);
      for (int row = 0; row < captured_delta; ++row) {
        delta_qrows->Append(delta_qrows_->row(row));
      }
      delta_has_emb.assign(delta_has_emb_.begin(),
                           delta_has_emb_.begin() + captured_delta);
    }
  }

  // Phase 2 — build the new base outside any lock: captured live entries,
  // sorted by id so the new base rows are ascending by id (the invariant
  // BaseTopKLocked relies on). Embeddings are fetched at install time from
  // the live arrays via loc_, so none are copied twice here.
  struct Pending {
    int id;
    bool from_delta;
    int row;
  };
  std::vector<Pending> live;
  live.reserve(base->size() + captured_delta);
  for (int row = 0; row < base->size(); ++row) {
    if (base_dead[row] == 0) live.push_back({base->ids[row], false, row});
  }
  for (int row = 0; row < captured_delta; ++row) {
    if (delta_dead[row] == 0) live.push_back({delta_ids[row], true, row});
  }
  std::sort(live.begin(), live.end(),
            [](const Pending& a, const Pending& b) { return a.id < b.id; });
  auto fresh = std::make_shared<Base>(options_);
  fresh->ids.reserve(live.size());
  if (!options_.quantize) fresh->embeddings.resize(live.size());

  // Quantize mode: rebuild the scales from the captured rows (ISSUE: the
  // delta only ever saturates against stale params; compaction is where the
  // calibration range catches up). One streaming pass dequantizes each
  // captured live row under the old params into the builder, then a second
  // requantizes it under the new — per-row temporaries only, never a float
  // copy of the corpus.
  quant::QuantizationParams new_params;
  std::vector<float> deq;
  const auto captured_qrow = [&](const Pending& p) {
    return p.from_delta ? delta_qrows->row(p.row) : base->qrows->row(p.row);
  };
  const auto captured_has_emb = [&](const Pending& p) {
    return p.from_delta ? delta_has_emb[p.row] != 0
                        : base->has_emb[p.row] != 0;
  };
  if (options_.quantize) {
    deq.resize(options_.embedding_dim);
    quant::ParamsBuilder builder(options_.embedding_dim);
    for (const Pending& p : live) {
      if (!captured_has_emb(p)) continue;
      old_params.DequantizeRow(captured_qrow(p), deq.data());
      T2H_CHECK(builder.Add(deq.data()).ok());  // lattice values are finite
    }
    if (builder.rows_seen() > 0) {
      auto built = builder.Build();
      T2H_CHECK(built.ok());
      new_params = std::move(built.value());
    }
    // No embedding-bearing captured row: keep the params as they are at
    // install time (a cold start may have happened during the rebuild).
  }

  std::vector<int8_t> req(options_.quantize ? options_.embedding_dim : 0);
  const std::vector<int8_t> zeros(req.size(), 0);
  for (const Pending& p : live) {
    const search::Code code = p.from_delta ? delta_codes.CodeAt(p.row)
                                           : base->codes().CodeAt(p.row);
    switch (options_.strategy) {
      case search::SearchStrategy::kMih:
        fresh->mih->Insert(code);
        break;
      case search::SearchStrategy::kRadius2:
        fresh->hybrid->Insert(code);
        break;
      case search::SearchStrategy::kBrute:
        fresh->brute_codes.Append(code);
        break;
    }
    fresh->ids.push_back(p.id);
    if (options_.quantize) {
      if (captured_has_emb(p)) {
        old_params.DequantizeRow(captured_qrow(p), deq.data());
        T2H_CHECK(new_params.QuantizeRow(deq.data(), req.data()).ok());
        fresh->qrows->Append(req.data());
        fresh->has_emb.push_back(1);
        ++fresh->emb_rows;
      } else {
        fresh->qrows->Append(zeros.data());
        fresh->has_emb.push_back(0);
      }
    }
  }

  // Simulated crash of the compacting thread: abandon the rebuilt base.
  // Nothing was installed, so the index keeps serving base+delta unchanged
  // and a later compaction (or recovery) redoes the work.
  if (FaultInjector::Fire(faults::kCompactionInstall)) {
    compaction_in_flight_.store(false, std::memory_order_release);
    return;
  }

  // Phase 3 — install under one short exclusive section, reconciling
  // mutations that raced the rebuild through loc_: an id is live in the new
  // base iff it is still live *and* not superseded by a delta row appended
  // after the capture (an update/re-insert during the rebuild).
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    const int new_n = fresh->size();
    std::vector<uint8_t> new_base_dead(new_n, 0);
    int new_base_dead_count = 0;
    for (int row = 0; row < new_n; ++row) {
      const int id = fresh->ids[row];
      const auto it = loc_.find(id);
      const bool alive =
          it != loc_.end() &&
          !(it->second.in_delta && it->second.row >= captured_delta);
      if (alive) {
        const Loc old = it->second;
        if (!options_.quantize) {
          fresh->embeddings[row] = old.in_delta
                                       ? std::move(delta_embeddings_[old.row])
                                       : base_->embeddings[old.row];
        }
        // (quantize mode: the row is already in fresh->qrows — delta rows
        // are immutable once written, so the captured copy is current.)
        it->second = Loc{/*in_delta=*/false, row};
      } else {
        new_base_dead[row] = 1;
        ++new_base_dead_count;
      }
    }
    // The new delta is the suffix appended while we were building. In
    // quantize mode its rows were quantized under the pre-compaction params,
    // so they are requantized onto the new lattice here (the whole shard
    // must share one param set for zero-points to cancel).
    const bool install_params = options_.quantize && !new_params.empty();
    const int cur = delta_codes_.size();
    search::PackedCodes new_delta_codes(options_.num_bits);
    std::vector<int> new_delta_ids;
    std::vector<uint8_t> new_delta_dead;
    std::vector<std::vector<float>> new_delta_embeddings;
    std::unique_ptr<quant::QuantizedMatrix> new_delta_qrows;
    std::vector<uint8_t> new_delta_has_emb;
    if (options_.quantize) {
      new_delta_qrows =
          std::make_unique<quant::QuantizedMatrix>(options_.embedding_dim);
    }
    new_delta_ids.reserve(cur - captured_delta);
    int new_delta_dead_count = 0;
    for (int old_row = captured_delta; old_row < cur; ++old_row) {
      const int new_row = new_delta_codes.Append(delta_codes_.CodeAt(old_row));
      const int id = delta_ids_[old_row];
      new_delta_ids.push_back(id);
      new_delta_dead.push_back(delta_dead_[old_row]);
      if (delta_dead_[old_row] != 0) ++new_delta_dead_count;
      if (options_.quantize) {
        const bool has = delta_has_emb_[old_row] != 0;
        if (has && install_params) {
          qparams_.DequantizeRow(delta_qrows_->row(old_row), deq.data());
          T2H_CHECK(new_params.QuantizeRow(deq.data(), req.data()).ok());
          new_delta_qrows->Append(req.data());
        } else {
          new_delta_qrows->Append(delta_qrows_->row(old_row));
        }
        new_delta_has_emb.push_back(has ? 1 : 0);
      } else {
        new_delta_embeddings.push_back(std::move(delta_embeddings_[old_row]));
      }
      const auto it = loc_.find(id);
      if (it != loc_.end() && it->second.in_delta &&
          it->second.row == old_row) {
        it->second.row = new_row;
      }
    }
    base_ = std::move(fresh);
    base_dead_ = std::move(new_base_dead);
    base_dead_count_ = new_base_dead_count;
    delta_codes_ = std::move(new_delta_codes);
    delta_ids_ = std::move(new_delta_ids);
    delta_dead_ = std::move(new_delta_dead);
    delta_dead_count_ = new_delta_dead_count;
    delta_embeddings_ = std::move(new_delta_embeddings);
    if (options_.quantize) {
      delta_qrows_ = std::move(new_delta_qrows);
      delta_has_emb_ = std::move(new_delta_has_emb);
      if (install_params) qparams_ = std::move(new_params);
    }
    // The install changes physical layout (what a racing cached probe could
    // have been computed against), so it advances the mutation epoch too —
    // conservatively invalidating result-cache entries even though the
    // logical corpus is unchanged.
    mutation_epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  compactions_run_.fetch_add(1, std::memory_order_acq_rel);
  compaction_in_flight_.store(false, std::memory_order_release);
}

}  // namespace traj2hash::ingest
