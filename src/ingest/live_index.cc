#include "ingest/live_index.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"
#include "search/kernels.h"

namespace traj2hash::ingest {

LiveIndex::Base::Base(const LiveIndexOptions& options)
    : brute_codes(options.num_bits) {
  switch (options.strategy) {
    case search::SearchStrategy::kMih:
      mih = std::make_unique<search::MihIndex>(options.num_bits,
                                               options.mih_substrings);
      break;
    case search::SearchStrategy::kRadius2:
      hybrid = std::make_unique<search::HammingIndex>(options.num_bits);
      break;
    case search::SearchStrategy::kBrute:
      break;  // brute scans need only the packed rows
  }
}

const search::PackedCodes& LiveIndex::Base::codes() const {
  if (mih != nullptr) return mih->codes();
  if (hybrid != nullptr) return hybrid->codes();
  return brute_codes;
}

LiveIndex::LiveIndex(const LiveIndexOptions& options)
    : options_(options),
      base_(std::make_shared<const Base>(options)),
      delta_codes_(options.num_bits) {
  T2H_CHECK_GT(options.num_bits, 0);
  T2H_CHECK_GE(options.compact_min_ops, 1);
  T2H_CHECK_GT(options.compact_ratio, 0.0);
}

void LiveIndex::AppendDeltaLocked(int id, search::Code code,
                                  std::vector<float> embedding) {
  const int row = delta_codes_.Append(code);
  delta_ids_.push_back(id);
  delta_dead_.push_back(0);
  delta_embeddings_.push_back(std::move(embedding));
  loc_[id] = Loc{/*in_delta=*/true, row};
}

Status LiveIndex::Insert(int id, search::Code code,
                         std::vector<float> embedding) {
  T2H_CHECK_GE(id, 0);
  T2H_CHECK_EQ(code.num_bits, options_.num_bits);
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (loc_.find(id) != loc_.end()) {
    return Status::InvalidArgument("id " + std::to_string(id) +
                                   " is already live");
  }
  AppendDeltaLocked(id, std::move(code), std::move(embedding));
  mutation_epoch_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status LiveIndex::Remove(int id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto it = loc_.find(id);
  if (it == loc_.end()) {
    return Status::NotFound("id " + std::to_string(id) + " is not live");
  }
  const Loc loc = it->second;
  if (loc.in_delta) {
    delta_dead_[loc.row] = 1;
    ++delta_dead_count_;
  } else {
    base_dead_[loc.row] = 1;
    ++base_dead_count_;
  }
  loc_.erase(it);
  mutation_epoch_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status LiveIndex::Update(int id, search::Code code,
                         std::vector<float> embedding) {
  T2H_CHECK_EQ(code.num_bits, options_.num_bits);
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto it = loc_.find(id);
  if (it == loc_.end()) {
    return Status::NotFound("id " + std::to_string(id) + " is not live");
  }
  // Tombstone the old row, re-point the id at a fresh delta row.
  const Loc loc = it->second;
  if (loc.in_delta) {
    delta_dead_[loc.row] = 1;
    ++delta_dead_count_;
  } else {
    base_dead_[loc.row] = 1;
    ++base_dead_count_;
  }
  loc_.erase(it);
  AppendDeltaLocked(id, std::move(code), std::move(embedding));
  mutation_epoch_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

void LiveIndex::Upsert(int id, search::Code code,
                       std::vector<float> embedding) {
  T2H_CHECK_GE(id, 0);
  T2H_CHECK_EQ(code.num_bits, options_.num_bits);
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto it = loc_.find(id);
  if (it != loc_.end()) {
    const Loc loc = it->second;
    if (loc.in_delta) {
      delta_dead_[loc.row] = 1;
      ++delta_dead_count_;
    } else {
      base_dead_[loc.row] = 1;
      ++base_dead_count_;
    }
    loc_.erase(it);
  }
  AppendDeltaLocked(id, std::move(code), std::move(embedding));
  mutation_epoch_.fetch_add(1, std::memory_order_relaxed);
}

bool LiveIndex::RemoveIfPresent(int id) { return Remove(id).ok(); }

std::vector<search::Neighbor> LiveIndex::BaseTopKLocked(
    const search::Code& query, int k, const Deadline& deadline,
    bool* complete) const {
  const Base& base = *base_;
  if (base.size() == 0) return {};
  const uint8_t* skip = base_dead_count_ > 0 ? base_dead_.data() : nullptr;
  std::vector<search::Neighbor> out;
  switch (options_.strategy) {
    case search::SearchStrategy::kBrute:
      out = search::TopKHamming(base.codes(), query, k, skip);
      break;
    case search::SearchStrategy::kRadius2:
      out = base.hybrid->HybridTopK(query, k, skip);
      break;
    case search::SearchStrategy::kMih:
      out = base.mih->TopK(query, k, deadline, complete, skip,
                           base_dead_count_);
      break;
  }
  // Base rows are ascending by id (compaction sorts), so the engines'
  // (distance, row) selection already equals (distance, id); the map below
  // is monotone and order-preserving.
  for (search::Neighbor& n : out) n.index = base.ids[n.index];
  return out;
}

std::vector<search::Neighbor> LiveIndex::DeltaTopKLocked(
    const search::Code& query, int k) const {
  const int n = delta_codes_.size();
  if (n == 0) return {};
  std::vector<int32_t> dist(n);
  search::kernels::HammingScan(delta_codes_.data(), query.words.data(), n,
                               delta_codes_.words_per_code(),
                               delta_codes_.stride_words(), dist.data());
  std::vector<int> rows;
  rows.reserve(n - delta_dead_count_);
  for (int i = 0; i < n; ++i) {
    if (delta_dead_[i] == 0) rows.push_back(i);
  }
  const int live = static_cast<int>(rows.size());
  k = std::min(k, live);
  if (k <= 0) return {};
  // Delta rows can arrive out of id order under concurrent ingest, so the
  // tie-break selects on the mapped id, not the row.
  const auto less = [&](int a, int b) {
    if (dist[a] != dist[b]) return dist[a] < dist[b];
    return delta_ids_[a] < delta_ids_[b];
  };
  if (k < live) {
    std::nth_element(rows.begin(), rows.begin() + (k - 1), rows.end(), less);
    rows.resize(k);
  }
  std::sort(rows.begin(), rows.end(), less);
  std::vector<search::Neighbor> out;
  out.reserve(k);
  for (const int row : rows) {
    out.push_back({delta_ids_[row], static_cast<double>(dist[row])});
  }
  return out;
}

std::vector<search::Neighbor> LiveIndex::TopK(const search::Code& query,
                                              int k) const {
  bool complete = true;
  return TopK(query, k, Deadline::Infinite(), &complete);
}

std::vector<search::Neighbor> LiveIndex::TopK(const search::Code& query,
                                              int k, const Deadline& deadline,
                                              bool* complete) const {
  T2H_CHECK_GE(k, 1);
  T2H_CHECK_EQ(query.num_bits, options_.num_bits);
  *complete = true;
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<search::Neighbor> merged =
      BaseTopKLocked(query, k, deadline, complete);
  const std::vector<search::Neighbor> delta_part = DeltaTopKLocked(query, k);
  // Both parts are the exact top-k of their half under (distance, id); the
  // k best of their union is the logical corpus' top-k.
  merged.insert(merged.end(), delta_part.begin(), delta_part.end());
  std::sort(merged.begin(), merged.end(), search::NeighborLess);
  if (static_cast<int>(merged.size()) > k) merged.resize(k);
  return merged;
}

bool LiveIndex::Contains(int id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return loc_.find(id) != loc_.end();
}

std::vector<float> LiveIndex::EmbeddingOf(int id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = loc_.find(id);
  if (it == loc_.end()) return {};
  const Loc loc = it->second;
  return loc.in_delta ? delta_embeddings_[loc.row]
                      : base_->embeddings[loc.row];
}

std::vector<LiveIndex::Entry> LiveIndex::SnapshotEntries() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<Entry> out;
  out.reserve(loc_.size());
  for (const auto& [id, loc] : loc_) {
    Entry e;
    e.id = id;
    if (loc.in_delta) {
      e.code = delta_codes_.CodeAt(loc.row);
      e.embedding = delta_embeddings_[loc.row];
    } else {
      e.code = base_->codes().CodeAt(loc.row);
      e.embedding = base_->embeddings[loc.row];
    }
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.id < b.id; });
  return out;
}

int LiveIndex::live_size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<int>(loc_.size());
}

int LiveIndex::tombstone_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return base_dead_count_ + delta_dead_count_;
}

int LiveIndex::delta_size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return delta_codes_.size();
}

bool LiveIndex::NeedsCompactionLocked() const {
  // Rows a compaction would reclaim (tombstones) or index properly (delta
  // rows — each counted once even when both apply).
  const int pending = base_dead_count_ + delta_codes_.size();
  const int total = base_->size() + delta_codes_.size();
  return pending >= options_.compact_min_ops &&
         pending > options_.compact_ratio * total;
}

bool LiveIndex::NeedsCompaction() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return NeedsCompactionLocked();
}

bool LiveIndex::ClaimCompaction() {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (!NeedsCompactionLocked()) return false;
  }
  return !compaction_in_flight_.exchange(true, std::memory_order_acq_rel);
}

void LiveIndex::Compact() {
  // No-op when a background compaction is already in flight — it will fold
  // in everything this call would have.
  if (compaction_in_flight_.exchange(true, std::memory_order_acq_rel)) return;
  RunClaimedCompaction();
}

void LiveIndex::RunClaimedCompaction() {
  // Phase 1 — capture an epoch snapshot under the shared lock: the base
  // pointer (immutable; the shared_ptr pins it against a racing install,
  // though claims are single-flight anyway), copies of the tombstone flags
  // and the current delta prefix. Mutations keep flowing while we build.
  std::shared_ptr<const Base> base;
  std::vector<uint8_t> base_dead;
  int captured_delta = 0;
  search::PackedCodes delta_codes(options_.num_bits);
  std::vector<int> delta_ids;
  std::vector<uint8_t> delta_dead;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    base = base_;
    base_dead = base_dead_;
    captured_delta = delta_codes_.size();
    delta_ids.assign(delta_ids_.begin(), delta_ids_.begin() + captured_delta);
    delta_dead.assign(delta_dead_.begin(),
                      delta_dead_.begin() + captured_delta);
    for (int row = 0; row < captured_delta; ++row) {
      delta_codes.Append(delta_codes_.CodeAt(row));
    }
  }

  // Phase 2 — build the new base outside any lock: captured live entries,
  // sorted by id so the new base rows are ascending by id (the invariant
  // BaseTopKLocked relies on). Embeddings are fetched at install time from
  // the live arrays via loc_, so none are copied twice here.
  struct Pending {
    int id;
    bool from_delta;
    int row;
  };
  std::vector<Pending> live;
  live.reserve(base->size() + captured_delta);
  for (int row = 0; row < base->size(); ++row) {
    if (base_dead[row] == 0) live.push_back({base->ids[row], false, row});
  }
  for (int row = 0; row < captured_delta; ++row) {
    if (delta_dead[row] == 0) live.push_back({delta_ids[row], true, row});
  }
  std::sort(live.begin(), live.end(),
            [](const Pending& a, const Pending& b) { return a.id < b.id; });
  auto fresh = std::make_shared<Base>(options_);
  fresh->ids.reserve(live.size());
  fresh->embeddings.resize(live.size());
  for (const Pending& p : live) {
    const search::Code code = p.from_delta ? delta_codes.CodeAt(p.row)
                                           : base->codes().CodeAt(p.row);
    switch (options_.strategy) {
      case search::SearchStrategy::kMih:
        fresh->mih->Insert(code);
        break;
      case search::SearchStrategy::kRadius2:
        fresh->hybrid->Insert(code);
        break;
      case search::SearchStrategy::kBrute:
        fresh->brute_codes.Append(code);
        break;
    }
    fresh->ids.push_back(p.id);
  }

  // Simulated crash of the compacting thread: abandon the rebuilt base.
  // Nothing was installed, so the index keeps serving base+delta unchanged
  // and a later compaction (or recovery) redoes the work.
  if (FaultInjector::Fire(faults::kCompactionInstall)) {
    compaction_in_flight_.store(false, std::memory_order_release);
    return;
  }

  // Phase 3 — install under one short exclusive section, reconciling
  // mutations that raced the rebuild through loc_: an id is live in the new
  // base iff it is still live *and* not superseded by a delta row appended
  // after the capture (an update/re-insert during the rebuild).
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    const int new_n = fresh->size();
    std::vector<uint8_t> new_base_dead(new_n, 0);
    int new_base_dead_count = 0;
    for (int row = 0; row < new_n; ++row) {
      const int id = fresh->ids[row];
      const auto it = loc_.find(id);
      const bool alive =
          it != loc_.end() &&
          !(it->second.in_delta && it->second.row >= captured_delta);
      if (alive) {
        const Loc old = it->second;
        fresh->embeddings[row] = old.in_delta
                                     ? std::move(delta_embeddings_[old.row])
                                     : base_->embeddings[old.row];
        it->second = Loc{/*in_delta=*/false, row};
      } else {
        new_base_dead[row] = 1;
        ++new_base_dead_count;
      }
    }
    // The new delta is the suffix appended while we were building.
    const int cur = delta_codes_.size();
    search::PackedCodes new_delta_codes(options_.num_bits);
    std::vector<int> new_delta_ids;
    std::vector<uint8_t> new_delta_dead;
    std::vector<std::vector<float>> new_delta_embeddings;
    new_delta_ids.reserve(cur - captured_delta);
    int new_delta_dead_count = 0;
    for (int old_row = captured_delta; old_row < cur; ++old_row) {
      const int new_row = new_delta_codes.Append(delta_codes_.CodeAt(old_row));
      const int id = delta_ids_[old_row];
      new_delta_ids.push_back(id);
      new_delta_dead.push_back(delta_dead_[old_row]);
      if (delta_dead_[old_row] != 0) ++new_delta_dead_count;
      new_delta_embeddings.push_back(std::move(delta_embeddings_[old_row]));
      const auto it = loc_.find(id);
      if (it != loc_.end() && it->second.in_delta &&
          it->second.row == old_row) {
        it->second.row = new_row;
      }
    }
    base_ = std::move(fresh);
    base_dead_ = std::move(new_base_dead);
    base_dead_count_ = new_base_dead_count;
    delta_codes_ = std::move(new_delta_codes);
    delta_ids_ = std::move(new_delta_ids);
    delta_dead_ = std::move(new_delta_dead);
    delta_dead_count_ = new_delta_dead_count;
    delta_embeddings_ = std::move(new_delta_embeddings);
    // The install changes physical layout (what a racing cached probe could
    // have been computed against), so it advances the mutation epoch too —
    // conservatively invalidating result-cache entries even though the
    // logical corpus is unchanged.
    mutation_epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  compactions_run_.fetch_add(1, std::memory_order_acq_rel);
  compaction_in_flight_.store(false, std::memory_order_release);
}

}  // namespace traj2hash::ingest
