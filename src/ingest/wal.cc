#include "ingest/wal.h"

#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/serialize.h"

namespace traj2hash::ingest {

// Record payload layout (inside one CRC frame, all little-endian):
//   u64 seq | u8 type | i32 id |
//   [insert/update only: i32 num_bits, words_per_code u64 words,
//    u32 embedding_len, embedding floats]
std::string EncodeWalRecord(const WalRecord& record) {
  std::string payload;
  AppendPod(payload, record.seq);
  AppendPod(payload, static_cast<uint8_t>(record.type));
  AppendPod(payload, record.id);
  if (record.type != WalRecordType::kRemove) {
    AppendPod(payload, static_cast<int32_t>(record.code.num_bits));
    payload.append(reinterpret_cast<const char*>(record.code.words.data()),
                   record.code.words.size() * sizeof(uint64_t));
    AppendPod(payload, static_cast<uint32_t>(record.embedding.size()));
    payload.append(reinterpret_cast<const char*>(record.embedding.data()),
                   record.embedding.size() * sizeof(float));
  }
  return payload;
}

Status DecodeWalRecord(const std::string& payload, WalRecord* record) {
  PayloadReader reader(payload, 0);
  record->seq = reader.Read<uint64_t>();
  const auto type = reader.Read<uint8_t>();
  record->id = reader.Read<int32_t>();
  if (type != static_cast<uint8_t>(WalRecordType::kInsert) &&
      type != static_cast<uint8_t>(WalRecordType::kRemove) &&
      type != static_cast<uint8_t>(WalRecordType::kUpdate)) {
    return Status::DataLoss("WAL record has unknown type " +
                            std::to_string(type));
  }
  record->type = static_cast<WalRecordType>(type);
  record->code = search::Code{};
  record->embedding.clear();
  if (record->type != WalRecordType::kRemove) {
    const auto num_bits = reader.Read<int32_t>();
    if (reader.ok() && (num_bits <= 0 || num_bits > 1 << 20)) {
      return Status::DataLoss("WAL record has implausible code width " +
                              std::to_string(num_bits));
    }
    record->code.num_bits = num_bits;
    record->code.words.resize((num_bits + 63) / 64);
    reader.ReadBytes(record->code.words.data(),
                     record->code.words.size() * sizeof(uint64_t));
    const auto embedding_len = reader.Read<uint32_t>();
    if (reader.ok() &&
        embedding_len * sizeof(float) > payload.size()) {
      return Status::DataLoss("WAL record declares an embedding larger than "
                              "its frame");
    }
    record->embedding.resize(embedding_len);
    reader.ReadBytes(record->embedding.data(), embedding_len * sizeof(float));
  }
  // The frame CRC already matched, so a structural overrun or leftover bytes
  // mean writer/reader disagreement — data loss, not a torn tail.
  if (!reader.at_end()) {
    return Status::DataLoss("WAL record payload is malformed");
  }
  return Status::Ok();
}

namespace {

Result<WalReplay> ReplayBuffer(const std::string& buffer,
                               const std::string& path) {
  WalReplay replay;
  size_t pos = 0;
  std::string payload;
  while (true) {
    const FrameParse parse = ReadCrcFrame(buffer, &pos, &payload);
    if (parse == FrameParse::kEnd) break;
    if (parse == FrameParse::kTornTail) {
      // A crash mid-append: the frame before this offset was the last one
      // acknowledged, everything after is an un-acked partial write.
      replay.tail_truncated = true;
      break;
    }
    if (parse == FrameParse::kCorrupt) {
      return Status::DataLoss(
          "WAL frame checksum mismatch (bit-flip corruption of an "
          "acknowledged record): " + path);
    }
    WalRecord record;
    const Status decoded = DecodeWalRecord(payload, &record);
    if (!decoded.ok()) {
      return Status(decoded.code(), decoded.message() + ": " + path);
    }
    if (record.seq != replay.last_seq + 1 && !replay.records.empty()) {
      return Status::DataLoss("WAL sequence numbers are not contiguous (" +
                              std::to_string(replay.last_seq) + " -> " +
                              std::to_string(record.seq) + "): " + path);
    }
    replay.last_seq = record.seq;
    replay.records.push_back(std::move(record));
    replay.valid_bytes = pos;
  }
  return replay;
}

}  // namespace

const char* WalRecordTypeName(WalRecordType type) {
  switch (type) {
    case WalRecordType::kInsert:
      return "insert";
    case WalRecordType::kRemove:
      return "remove";
    case WalRecordType::kUpdate:
      return "update";
  }
  return "unknown";
}

Wal::Wal(std::unique_ptr<AppendableFile> file, std::string path,
         uint64_t last_seq)
    : file_(std::move(file)), path_(std::move(path)), last_seq_(last_seq) {}

Result<WalReplay> Wal::Replay(const std::string& path) {
  if (!FileExists(path)) return WalReplay{};  // a missing log is an empty log
  Result<std::string> read = ReadFileToString(path);
  if (!read.ok()) return read.status();
  return ReplayBuffer(read.value(), path);
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       WalReplay* replay_out) {
  Result<WalReplay> replayed = Replay(path);
  if (!replayed.ok()) return replayed.status();
  WalReplay& replay = replayed.value();
  // Opening truncates to the durable prefix, dropping any torn tail so the
  // next append starts on a clean frame boundary.
  Result<std::unique_ptr<AppendableFile>> file =
      AppendableFile::Open(path, replay.valid_bytes);
  if (!file.ok()) return file.status();
  std::unique_ptr<Wal> wal(
      new Wal(std::move(file).value(), path, replay.last_seq));
  if (replay_out != nullptr) *replay_out = std::move(replay);
  return wal;
}

Status Wal::Append(WalRecord record) {
  if (broken_) {
    return Status::FailedPrecondition(
        "WAL is poisoned after a failed sync; reopen to recover: " + path_);
  }
  record.seq = last_seq_ + 1;
  if (record.type != WalRecordType::kRemove) {
    T2H_CHECK_GT(record.code.num_bits, 0);
    T2H_CHECK_EQ(static_cast<int>(record.code.words.size()),
                 (record.code.num_bits + 63) / 64);
  }
  AppendCrcFrame(pending_, EncodeWalRecord(record));
  ++last_seq_;
  return Status::Ok();
}

Status Wal::Sync() {
  if (broken_) {
    return Status::FailedPrecondition(
        "WAL is poisoned after a failed sync; reopen to recover: " + path_);
  }
  if (pending_.empty()) return Status::Ok();
  Status status = file_->Append(pending_);
  if (status.ok()) status = file_->Sync();
  if (!status.ok()) {
    // The file may now end in a torn frame; nothing past the last durable
    // Sync was acknowledged, so the reopen-time truncation loses no acked
    // record. Refuse further writes until then.
    broken_ = true;
    return status;
  }
  pending_.clear();
  return Status::Ok();
}

Status Wal::Reset() {
  if (broken_) {
    return Status::FailedPrecondition(
        "WAL is poisoned after a failed sync; reopen to recover: " + path_);
  }
  pending_.clear();
  return file_->TruncateTo(0);
}

Status WalCursor::Poll(std::vector<WalRecord>* out) {
  T2H_CHECK(out != nullptr);
  if (FaultInjector::Fire(faults::kReplicaShip)) {
    return Status::IoError("injected ship failure polling " + path_);
  }
  if (!FileExists(path_)) return Status::Ok();  // nothing committed yet
  Result<std::string> read = ReadFileToString(path_);
  if (!read.ok()) return read.status();
  const std::string& buffer = read.value();
  if (buffer.size() < offset_) {
    return Status::FailedPrecondition(
        "WAL shrank below the cursor offset (" + std::to_string(offset_) +
        " -> " + std::to_string(buffer.size()) +
        " bytes): the primary reset its log after a checkpoint; Rewind if "
        "caught up, re-bootstrap otherwise: " + path_);
  }
  size_t pos = offset_;
  std::string payload;
  while (true) {
    const FrameParse parse = ReadCrcFrame(buffer, &pos, &payload);
    // A torn tail on a live log is an append still in flight (or a crashed
    // primary's un-acked tail): not durable, not an error — retry later.
    if (parse == FrameParse::kEnd || parse == FrameParse::kTornTail) break;
    if (parse == FrameParse::kCorrupt) {
      return Status::DataLoss(
          "WAL frame checksum mismatch while tailing (bit-flip corruption of "
          "an acknowledged record): " + path_);
    }
    WalRecord record;
    const Status decoded = DecodeWalRecord(payload, &record);
    if (!decoded.ok()) {
      return Status(decoded.code(), decoded.message() + ": " + path_);
    }
    if (record.seq <= last_seq_) {
      // Re-read after a Rewind; the consumer already applied it.
      offset_ = pos;
      continue;
    }
    if (last_seq_ != 0 && record.seq != last_seq_ + 1) {
      return Status::DataLoss(
          "WAL sequence gap while tailing (" + std::to_string(last_seq_) +
          " -> " + std::to_string(record.seq) + "): " + path_);
    }
    last_seq_ = record.seq;
    offset_ = pos;
    out->push_back(std::move(record));
  }
  return Status::Ok();
}

}  // namespace traj2hash::ingest
