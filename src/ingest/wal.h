#ifndef TRAJ2HASH_INGEST_WAL_H_
#define TRAJ2HASH_INGEST_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "common/status.h"
#include "search/code.h"

namespace traj2hash::ingest {

/// One logged mutation. Insert and Update carry the new code + embedding;
/// Remove carries only the id.
enum class WalRecordType : uint8_t {
  kInsert = 1,
  kRemove = 2,
  kUpdate = 3,
};

/// Canonical lower-case name ("insert" / "remove" / "update").
const char* WalRecordTypeName(WalRecordType type);

struct WalRecord {
  /// Monotone sequence number, assigned by Wal::Append. Replay order ==
  /// sequence order == the order mutations were acknowledged.
  uint64_t seq = 0;
  WalRecordType type = WalRecordType::kInsert;
  int32_t id = -1;
  search::Code code;             ///< insert/update only
  std::vector<float> embedding;  ///< insert/update only (may be empty)
};

/// Serialises one record into the payload layout the on-disk log frames
/// (u64 seq | u8 type | i32 id | insert/update: code + embedding). Shared
/// with the socket shipping protocol (DESIGN.md §16), whose kRecord frames
/// carry exactly this payload — one encoding, two transports.
std::string EncodeWalRecord(const WalRecord& record);

/// Inverse of EncodeWalRecord. kDataLoss on a structurally malformed
/// payload (the caller has already verified the enclosing frame's CRC, so
/// malformed here means writer/reader disagreement, not a torn tail).
Status DecodeWalRecord(const std::string& payload, WalRecord* record);

/// Result of walking a log file: the durable record prefix plus what the
/// walk learned about the tail.
struct WalReplay {
  std::vector<WalRecord> records;  ///< in append (= sequence) order
  uint64_t last_seq = 0;           ///< 0 when the log is empty
  /// Bytes of the durable prefix; anything past this was a torn tail.
  uint64_t valid_bytes = 0;
  /// True when a torn tail (crash mid-append) was found and dropped. Never
  /// set for mid-file corruption — that is kDataLoss, not a clean replay.
  bool tail_truncated = false;
};

/// CRC32-framed write-ahead log for live index mutations (DESIGN.md §12).
///
/// On disk the log is a sequence of frames (common/serialize.h):
///   u32 payload_len | u32 crc32(payload) | payload
/// where the payload serialises one WalRecord. A crash mid-append leaves a
/// torn final frame, which Open detects, reports and truncates away — the
/// records before it are intact by construction (each one was fully written
/// and fsynced before its mutation was acknowledged). A checksum failure on
/// a *complete* frame in the middle of the file means the storage itself
/// corrupted acknowledged data, and surfaces as kDataLoss.
///
/// Durability protocol: `Append` only buffers (group commit); `Sync` writes
/// the buffer and fsyncs. A mutation must not be acknowledged before Sync
/// returns OK. After a failed Sync the file may hold a torn frame, so the
/// log poisons itself (kFailedPrecondition on further use) until reopened —
/// exactly the "crash and recover" path a real IO error forces anyway.
///
/// Not thread-safe; the owning index serialises access (wal_mu_ in
/// serve::ShardedIndex).
class Wal {
 public:
  /// Opens `path` for appending, creating it if absent. Replays existing
  /// contents (optionally returned via `replay`) to find the durable
  /// prefix, truncates a torn tail, and positions writes after the last
  /// valid frame. kDataLoss on mid-file corruption; kIoError on IO errors.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           WalReplay* replay = nullptr);

  /// Read-only walk of a log file (recovery inspection, `t2h_cli
  /// wal-replay`). Does not modify the file. Same error contract as Open.
  static Result<WalReplay> Replay(const std::string& path);

  /// Serialises `record` into the pending buffer and assigns it the next
  /// sequence number (returned through `record.seq` being ignored on input).
  /// Nothing is durable until Sync. kFailedPrecondition once poisoned.
  Status Append(WalRecord record);

  /// Writes and fsyncs everything buffered since the last Sync. On failure
  /// (including the injected torn append, faults::kWalAppend) the log is
  /// poisoned and must be reopened; the unacknowledged tail will be
  /// truncated by that reopen.
  Status Sync();

  /// Empties the log after a checkpoint made its records redundant. The
  /// sequence counter keeps counting up, so records never reuse a seq.
  Status Reset();

  uint64_t last_seq() const { return last_seq_; }
  const std::string& path() const { return path_; }
  /// Durable bytes on disk (excludes the pending buffer).
  uint64_t size_bytes() const { return file_->size(); }

 private:
  Wal(std::unique_ptr<AppendableFile> file, std::string path,
      uint64_t last_seq);

  std::unique_ptr<AppendableFile> file_;
  std::string path_;
  uint64_t last_seq_;
  std::string pending_;
  bool broken_ = false;
};

/// Incremental tail reader over a (possibly live) WAL file — the shipping
/// side of replication (DESIGN.md §13). A cursor remembers the byte offset
/// of the durable prefix it has consumed plus the last sequence number it
/// returned, and each `Poll` parses only the frames appended since.
///
/// The torn-tail / valid_bytes contract carries over from Wal::Open:
///   - An incomplete frame at the tail stops the walk *without error*. On a
///     live log those bytes are simply a not-yet-synced append in progress;
///     on a crashed log they are the un-acked tail the primary's own reopen
///     will truncate. Either way nothing past them was acknowledged, so the
///     cursor just retries from the same offset next poll.
///   - A checksum failure on a complete mid-file frame is kDataLoss: the
///     storage corrupted acknowledged data and the consumer must
///     re-bootstrap from a snapshot.
///   - The file shrinking below the cursor's offset means the primary reset
///     its log (Wal::Reset after a checkpoint): kFailedPrecondition. A
///     consumer that had already applied everything may simply `Rewind` and
///     keep tailing (sequence numbers keep counting across resets); one that
///     was lagging lost records and must re-bootstrap.
///
/// Not thread-safe; the owning replica serialises polls.
class WalCursor {
 public:
  explicit WalCursor(std::string path) : path_(std::move(path)) {}

  /// Appends every newly durable record (in sequence order) to `out` and
  /// advances the cursor past them. A missing file is an empty log (OK, no
  /// records). Records at-or-below the seq watermark — re-read after a
  /// Rewind — are skipped; a sequence gap above it is kDataLoss. Honours
  /// faults::kReplicaShip (kIoError before anything is read).
  Status Poll(std::vector<WalRecord>* out);

  /// Repositions at the start of the file, keeping the seq watermark so
  /// already-returned records are not returned again. The recovery move
  /// after Poll reports kFailedPrecondition.
  void Rewind() { offset_ = 0; }

  /// Last sequence number returned by Poll (0 before any).
  uint64_t last_seq() const { return last_seq_; }
  /// Byte offset of the consumed durable prefix.
  uint64_t offset() const { return offset_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  uint64_t offset_ = 0;
  uint64_t last_seq_ = 0;
};

}  // namespace traj2hash::ingest

#endif  // TRAJ2HASH_INGEST_WAL_H_
