#ifndef TRAJ2HASH_INGEST_LIVE_INDEX_H_
#define TRAJ2HASH_INGEST_LIVE_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "search/code.h"
#include "search/flat_storage.h"
#include "search/hamming_index.h"
#include "search/knn.h"
#include "search/mih.h"
#include "search/strategy.h"

namespace traj2hash::ingest {

struct LiveIndexOptions {
  int num_bits = 0;
  search::SearchStrategy strategy = search::SearchStrategy::kMih;
  int mih_substrings = 0;  ///< MIH substring count (0 = ceil(B/16))
  /// Compaction trigger (DESIGN.md §12): rebuild the base once at least
  /// `compact_min_ops` rows are reclaimable (tombstones) or bypassed (delta
  /// rows) AND they exceed `compact_ratio` of all physical rows. Both gates
  /// keep tiny indexes from compacting on every mutation.
  int compact_min_ops = 64;
  double compact_ratio = 0.25;
};

/// One shard of a mutable Hamming database: an immutable base (indexed by
/// the configured search strategy) plus a small append-only delta (flat
/// scan) and tombstone flags over both. Ids are arbitrary non-negative
/// integers assigned by the caller (serve::ShardedIndex passes global ids),
/// never reused, and unique among live entries.
///
/// Exactness: `TopK` merges the strategy engine's probe of base∖tombstones
/// with a flat scan of delta∖tombstones under the repo-wide (distance, id)
/// order — bit-identical to a brute-force scan of the logical corpus (the
/// live entries), for every strategy. Two invariants make the per-part
/// selections composable: base rows are ordered by ascending id (compaction
/// sorts), so the engines' (distance, row) tie-break equals (distance, id);
/// and the delta scan tie-breaks on the mapped id directly, because
/// concurrent ingest can append delta rows out of id order.
///
/// Concurrency: all methods are thread-safe behind an internal
/// `shared_mutex` — queries share, mutations are exclusive and O(delta
/// append). Compaction (RunClaimedCompaction) rebuilds the base *outside*
/// the lock from an epoch snapshot (`shared_ptr` base + copied delta), then
/// installs under one short exclusive section that reconciles mutations
/// that raced the rebuild; readers are never blocked by the rebuild itself.
class LiveIndex {
 public:
  explicit LiveIndex(const LiveIndexOptions& options);

  /// Adds a new entry. kInvalidArgument if `id` is already live (ids of
  /// removed entries may be re-inserted; the serving layer never does).
  Status Insert(int id, search::Code code, std::vector<float> embedding);

  /// Tombstones a live entry. kNotFound if `id` is not live.
  Status Remove(int id);

  /// Replaces a live entry's code + embedding, keeping its id. kNotFound if
  /// `id` is not live.
  Status Update(int id, search::Code code, std::vector<float> embedding);

  /// Replay-idempotent mutation pair: Upsert inserts or replaces, and
  /// RemoveIfPresent returns whether anything was removed. Re-applying a
  /// whole WAL through these converges to the final state (last op per id
  /// wins) regardless of which prefix a snapshot already contains.
  void Upsert(int id, search::Code code, std::vector<float> embedding);
  bool RemoveIfPresent(int id);

  /// Exact top-k over the live entries; `Neighbor::index` is the entry id.
  std::vector<search::Neighbor> TopK(const search::Code& query, int k) const;

  /// Deadline-aware variant: the MIH base probe checks `deadline` between
  /// radius rounds (see search::MihIndex::TopK); the delta scan always runs
  /// to completion. `*complete` is false when the base probe was cut short.
  std::vector<search::Neighbor> TopK(const search::Code& query, int k,
                                     const Deadline& deadline,
                                     bool* complete) const;

  bool Contains(int id) const;

  /// Copy of the stored embedding of a live `id` (empty if none was
  /// supplied, or if `id` is not live).
  std::vector<float> EmbeddingOf(int id) const;

  /// One live entry as stored.
  struct Entry {
    int id = -1;
    search::Code code;
    std::vector<float> embedding;
  };

  /// All live entries, ascending id — the shard's contribution to a
  /// snapshot, internally consistent under the shard lock.
  std::vector<Entry> SnapshotEntries() const;

  int live_size() const;
  /// Physical dead rows (base + delta) pending compaction; drops to zero
  /// after a completed compaction.
  int tombstone_count() const;
  int delta_size() const;
  int compactions_run() const {
    return compactions_run_.load(std::memory_order_acquire);
  }

  /// Monotonic mutation epoch: advances on every successful Insert / Remove
  /// / Update / Upsert (RemoveIfPresent counts via Remove) and on every
  /// compaction install. A cheap relaxed read — consumers (the serve-side
  /// result cache, DESIGN.md §15) need only monotonicity; visibility rides
  /// the shard lock, because the increment happens inside the exclusive
  /// section of the mutation it stamps.
  uint64_t mutation_epoch() const {
    return mutation_epoch_.load(std::memory_order_relaxed);
  }

  /// True when the compaction trigger (see LiveIndexOptions) is met.
  bool NeedsCompaction() const;

  /// Single-flight claim: true when the trigger is met and no compaction is
  /// in flight — the caller then owns the obligation to call
  /// RunClaimedCompaction (typically as a background pool task).
  bool ClaimCompaction();

  /// Rebuilds the base from base+delta−tombstones and installs it. Must be
  /// paired with a successful ClaimCompaction. Honours
  /// faults::kCompactionInstall (the rebuilt base is abandoned before the
  /// install, as a crash there would; the index keeps serving unchanged).
  void RunClaimedCompaction();

  /// Synchronous convenience for tests/tools: claim-if-idle + run,
  /// regardless of the trigger.
  void Compact();

  int num_bits() const { return options_.num_bits; }

 private:
  /// The immutable base epoch: codes indexed by the strategy engine, plus
  /// id/embedding sidecars by row. Ids are ascending by row (see class
  /// comment). Never mutated after construction — compaction installs a
  /// fresh one and readers/compactors pin the old epoch via shared_ptr.
  struct Base {
    explicit Base(const LiveIndexOptions& options);
    const search::PackedCodes& codes() const;
    int size() const { return static_cast<int>(ids.size()); }

    std::unique_ptr<search::MihIndex> mih;        // kMih
    std::unique_ptr<search::HammingIndex> hybrid; // kRadius2
    search::PackedCodes brute_codes;              // kBrute
    std::vector<int> ids;                         // row -> id
    std::vector<std::vector<float>> embeddings;   // row -> embedding
  };

  /// Where a live id is stored.
  struct Loc {
    bool in_delta = false;
    int row = -1;
  };

  void AppendDeltaLocked(int id, search::Code code,
                         std::vector<float> embedding);
  bool NeedsCompactionLocked() const;
  std::vector<search::Neighbor> BaseTopKLocked(const search::Code& query,
                                               int k, const Deadline& deadline,
                                               bool* complete) const;
  std::vector<search::Neighbor> DeltaTopKLocked(const search::Code& query,
                                                int k) const;

  const LiveIndexOptions options_;

  mutable std::shared_mutex mu_;
  std::shared_ptr<const Base> base_;     // guarded by mu_ (swap on install)
  std::vector<uint8_t> base_dead_;       // by base row
  int base_dead_count_ = 0;
  search::PackedCodes delta_codes_;
  std::vector<int> delta_ids_;           // delta row -> id
  std::vector<uint8_t> delta_dead_;      // by delta row
  int delta_dead_count_ = 0;
  std::vector<std::vector<float>> delta_embeddings_;
  std::unordered_map<int, Loc> loc_;     // live ids only

  std::atomic<bool> compaction_in_flight_{false};
  std::atomic<int> compactions_run_{0};
  std::atomic<uint64_t> mutation_epoch_{0};
};

}  // namespace traj2hash::ingest

#endif  // TRAJ2HASH_INGEST_LIVE_INDEX_H_
