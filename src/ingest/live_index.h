#ifndef TRAJ2HASH_INGEST_LIVE_INDEX_H_
#define TRAJ2HASH_INGEST_LIVE_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "quant/quantized_matrix.h"
#include "quant/rerank.h"
#include "search/code.h"
#include "search/flat_storage.h"
#include "search/hamming_index.h"
#include "search/knn.h"
#include "search/mih.h"
#include "search/strategy.h"

namespace traj2hash::ingest {

struct LiveIndexOptions {
  int num_bits = 0;
  search::SearchStrategy strategy = search::SearchStrategy::kMih;
  int mih_substrings = 0;  ///< MIH substring count (0 = ceil(B/16))
  /// Compaction trigger (DESIGN.md §12): rebuild the base once at least
  /// `compact_min_ops` rows are reclaimable (tombstones) or bypassed (delta
  /// rows) AND they exceed `compact_ratio` of all physical rows. Both gates
  /// keep tiny indexes from compacting on every mutation.
  int compact_min_ops = 64;
  double compact_ratio = 0.25;
  /// Store embeddings as per-dimension int8 rows (quant::QuantizedMatrix,
  /// DESIGN.md §17) instead of float vectors — ~4× fewer resident bytes.
  /// Delta rows are quantized on insert under the shard's current params;
  /// while the store is all-delta (before the first compacted base holds an
  /// embedding row) an out-of-range insert widens the params in place, and
  /// afterwards it saturates until a compaction rebuilds the scales.
  /// Requires `embedding_dim`.
  bool quantize = false;
  /// Embedding width; required (> 0) when `quantize` is on, so the int8
  /// stores can be sized before the first row arrives.
  int embedding_dim = 0;
};

/// One shard of a mutable Hamming database: an immutable base (indexed by
/// the configured search strategy) plus a small append-only delta (flat
/// scan) and tombstone flags over both. Ids are arbitrary non-negative
/// integers assigned by the caller (serve::ShardedIndex passes global ids),
/// never reused, and unique among live entries.
///
/// Exactness: `TopK` merges the strategy engine's probe of base∖tombstones
/// with a flat scan of delta∖tombstones under the repo-wide (distance, id)
/// order — bit-identical to a brute-force scan of the logical corpus (the
/// live entries), for every strategy. Two invariants make the per-part
/// selections composable: base rows are ordered by ascending id (compaction
/// sorts), so the engines' (distance, row) tie-break equals (distance, id);
/// and the delta scan tie-breaks on the mapped id directly, because
/// concurrent ingest can append delta rows out of id order.
///
/// Concurrency: all methods are thread-safe behind an internal
/// `shared_mutex` — queries share, mutations are exclusive and O(delta
/// append). Compaction (RunClaimedCompaction) rebuilds the base *outside*
/// the lock from an epoch snapshot (`shared_ptr` base + copied delta), then
/// installs under one short exclusive section that reconciles mutations
/// that raced the rebuild; readers are never blocked by the rebuild itself.
class LiveIndex {
 public:
  explicit LiveIndex(const LiveIndexOptions& options);

  /// Adds a new entry. kInvalidArgument if `id` is already live (ids of
  /// removed entries may be re-inserted; the serving layer never does).
  Status Insert(int id, search::Code code, std::vector<float> embedding);

  /// Tombstones a live entry. kNotFound if `id` is not live.
  Status Remove(int id);

  /// Replaces a live entry's code + embedding, keeping its id. kNotFound if
  /// `id` is not live.
  Status Update(int id, search::Code code, std::vector<float> embedding);

  /// Replay-idempotent mutation pair: Upsert inserts or replaces, and
  /// RemoveIfPresent returns whether anything was removed. Re-applying a
  /// whole WAL through these converges to the final state (last op per id
  /// wins) regardless of which prefix a snapshot already contains.
  void Upsert(int id, search::Code code, std::vector<float> embedding);
  bool RemoveIfPresent(int id);

  /// Exact top-k over the live entries; `Neighbor::index` is the entry id.
  std::vector<search::Neighbor> TopK(const search::Code& query, int k) const;

  /// Deadline-aware variant: the MIH base probe checks `deadline` between
  /// radius rounds (see search::MihIndex::TopK); the delta scan always runs
  /// to completion. `*complete` is false when the base probe was cut short.
  std::vector<search::Neighbor> TopK(const search::Code& query, int k,
                                     const Deadline& deadline,
                                     bool* complete) const;

  /// Euclidean top-k over the embeddings of the `num_candidates` (≥ k)
  /// Hamming-nearest live entries: the serving re-rank surface. In quantize
  /// mode this is the two-stage re-ranker (quantized-L2 scan over the
  /// gathered candidate rows, exact float re-check of the boundary band —
  /// quant::RerankTopK); in float mode it is the exact float scan. Either
  /// way the result is bit-identical to a float top-k over the candidates'
  /// stored (lattice) embeddings, ties by ascending id. Candidates without
  /// a stored embedding are skipped.
  std::vector<search::Neighbor> RerankTopK(
      const search::Code& query, const std::vector<float>& query_embedding,
      int k, int num_candidates) const;

  bool quantize() const { return options_.quantize; }

  /// Bytes resident for embedding storage (int8 rows + params in quantize
  /// mode; float row payloads otherwise) — the gauge behind the ~4× cut.
  size_t embedding_resident_bytes() const;

  /// Two-stage re-ranker counters (quantize mode; zeros otherwise).
  quant::RerankSnapshot rerank_stats() const {
    return quant::SnapshotCounters(rerank_counters_);
  }

  /// Copy of the shard's current quantization params (empty until the first
  /// embedding-bearing insert). Snapshot/replica writers requantize under
  /// their own global params, so this is a diagnostics surface.
  quant::QuantizationParams ParamsSnapshot() const;

  bool Contains(int id) const;

  /// Copy of the stored embedding of a live `id` (empty if none was
  /// supplied, or if `id` is not live).
  std::vector<float> EmbeddingOf(int id) const;

  /// One live entry as stored.
  struct Entry {
    int id = -1;
    search::Code code;
    std::vector<float> embedding;
  };

  /// All live entries, ascending id — the shard's contribution to a
  /// snapshot, internally consistent under the shard lock.
  std::vector<Entry> SnapshotEntries() const;

  int live_size() const;
  /// Physical dead rows (base + delta) pending compaction; drops to zero
  /// after a completed compaction.
  int tombstone_count() const;
  int delta_size() const;
  int compactions_run() const {
    return compactions_run_.load(std::memory_order_acquire);
  }

  /// Monotonic mutation epoch: advances on every successful Insert / Remove
  /// / Update / Upsert (RemoveIfPresent counts via Remove) and on every
  /// compaction install. A cheap relaxed read — consumers (the serve-side
  /// result cache, DESIGN.md §15) need only monotonicity; visibility rides
  /// the shard lock, because the increment happens inside the exclusive
  /// section of the mutation it stamps.
  uint64_t mutation_epoch() const {
    return mutation_epoch_.load(std::memory_order_relaxed);
  }

  /// True when the compaction trigger (see LiveIndexOptions) is met.
  bool NeedsCompaction() const;

  /// Single-flight claim: true when the trigger is met and no compaction is
  /// in flight — the caller then owns the obligation to call
  /// RunClaimedCompaction (typically as a background pool task).
  bool ClaimCompaction();

  /// Rebuilds the base from base+delta−tombstones and installs it. Must be
  /// paired with a successful ClaimCompaction. Honours
  /// faults::kCompactionInstall (the rebuilt base is abandoned before the
  /// install, as a crash there would; the index keeps serving unchanged).
  void RunClaimedCompaction();

  /// Synchronous convenience for tests/tools: claim-if-idle + run,
  /// regardless of the trigger.
  void Compact();

  int num_bits() const { return options_.num_bits; }

 private:
  /// The immutable base epoch: codes indexed by the strategy engine, plus
  /// id/embedding sidecars by row. Ids are ascending by row (see class
  /// comment). Never mutated after construction — compaction installs a
  /// fresh one and readers/compactors pin the old epoch via shared_ptr.
  struct Base {
    explicit Base(const LiveIndexOptions& options);
    const search::PackedCodes& codes() const;
    int size() const { return static_cast<int>(ids.size()); }

    std::unique_ptr<search::MihIndex> mih;        // kMih
    std::unique_ptr<search::HammingIndex> hybrid; // kRadius2
    search::PackedCodes brute_codes;              // kBrute
    std::vector<int> ids;                         // row -> id
    std::vector<std::vector<float>> embeddings;   // row -> embedding (float)
    /// Quantize mode: int8 rows (one per base row, zero-filled when the
    /// entry carries no embedding) + per-row has-embedding flags, and the
    /// count of rows with the flag set — while it is zero the whole lattice
    /// still lives in the delta and the params may widen in place (see
    /// QuantizeForAppendLocked).
    std::unique_ptr<quant::QuantizedMatrix> qrows;
    std::vector<uint8_t> has_emb;
    int emb_rows = 0;
  };

  /// Where a live id is stored.
  struct Loc {
    bool in_delta = false;
    int row = -1;
  };

  void AppendDeltaLocked(int id, search::Code code,
                         std::vector<float> embedding,
                         std::vector<int8_t> qrow);
  /// Quantizes `embedding` under the shard params for a delta append,
  /// calibrating the params from this very row when none exist yet (cold
  /// start). kInvalidArgument on non-finite values, kind of failure the
  /// caller must surface BEFORE mutating anything. `*qrow` stays empty for
  /// an empty embedding (entry without one).
  Status QuantizeForAppendLocked(const std::vector<float>& embedding,
                                 std::vector<int8_t>* qrow);
  /// True when any value of `row` falls outside the current calibration
  /// range (NaN compares false on purpose: QuantizeRow rejects it later
  /// without touching the params).
  bool RowExpandsRangeLocked(const float* row) const;
  /// Widens the params to (old range ∪ `row`) and requantizes every delta
  /// row in place onto the new lattice (each stored value moves by at most
  /// half a new step). Only legal while the base holds no embedding rows —
  /// base epochs are read outside the lock by compaction and can never be
  /// rewritten. kInvalidArgument (state untouched) on a non-finite row.
  Status ExpandParamsLocked(const float* row);
  bool NeedsCompactionLocked() const;
  std::vector<search::Neighbor> BaseTopKLocked(const search::Code& query,
                                               int k, const Deadline& deadline,
                                               bool* complete) const;
  std::vector<search::Neighbor> DeltaTopKLocked(const search::Code& query,
                                                int k) const;

  const LiveIndexOptions options_;

  mutable std::shared_mutex mu_;
  std::shared_ptr<const Base> base_;     // guarded by mu_ (swap on install)
  std::vector<uint8_t> base_dead_;       // by base row
  int base_dead_count_ = 0;
  search::PackedCodes delta_codes_;
  std::vector<int> delta_ids_;           // delta row -> id
  std::vector<uint8_t> delta_dead_;      // by delta row
  int delta_dead_count_ = 0;
  std::vector<std::vector<float>> delta_embeddings_;
  // Quantize mode: the delta's int8 rows + has-embedding flags (row-aligned
  // with delta_ids_; delta_embeddings_ stays empty), and the ONE param set
  // every row of the shard (base + delta) is quantized under — zero-points
  // must cancel in quantized distances, which only holds within one param
  // set. Compaction installs rebuilt params together with the new base.
  quant::QuantizationParams qparams_;
  std::unique_ptr<quant::QuantizedMatrix> delta_qrows_;
  std::vector<uint8_t> delta_has_emb_;
  mutable quant::RerankCounters rerank_counters_;
  std::unordered_map<int, Loc> loc_;     // live ids only

  std::atomic<bool> compaction_in_flight_{false};
  std::atomic<int> compactions_run_{0};
  std::atomic<uint64_t> mutation_epoch_{0};
};

}  // namespace traj2hash::ingest

#endif  // TRAJ2HASH_INGEST_LIVE_INDEX_H_
