#include "eval/metrics.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "search/knn.h"

namespace traj2hash::eval {

std::vector<std::vector<int>> ExactTopK(
    const std::vector<traj::Trajectory>& queries,
    const std::vector<traj::Trajectory>& database, const dist::DistanceFn& fn,
    int k) {
  std::vector<std::vector<int>> out;
  out.reserve(queries.size());
  std::vector<std::pair<double, int>> scored(database.size());
  for (const traj::Trajectory& q : queries) {
    for (size_t i = 0; i < database.size(); ++i) {
      scored[i] = {fn(q, database[i]), static_cast<int>(i)};
    }
    const int kk = std::min<int>(k, static_cast<int>(database.size()));
    std::partial_sort(scored.begin(), scored.begin() + kk, scored.end());
    std::vector<int> ids(kk);
    for (int i = 0; i < kk; ++i) ids[i] = scored[i].second;
    out.push_back(std::move(ids));
  }
  return out;
}

double HitRatio(const std::vector<int>& retrieved,
                const std::vector<int>& truth, int k) {
  T2H_CHECK_GE(k, 1);
  const int kr = std::min<int>(k, static_cast<int>(retrieved.size()));
  const int kt = std::min<int>(k, static_cast<int>(truth.size()));
  std::unordered_set<int> truth_set(truth.begin(), truth.begin() + kt);
  int hits = 0;
  for (int i = 0; i < kr; ++i) hits += truth_set.count(retrieved[i]);
  return static_cast<double>(hits) / k;
}

double RecallTopK(const std::vector<int>& retrieved,
                  const std::vector<int>& truth, int k_truth, int k_ret) {
  T2H_CHECK_GE(k_truth, 1);
  const int kr = std::min<int>(k_ret, static_cast<int>(retrieved.size()));
  const int kt = std::min<int>(k_truth, static_cast<int>(truth.size()));
  std::unordered_set<int> truth_set(truth.begin(), truth.begin() + kt);
  int hits = 0;
  for (int i = 0; i < kr; ++i) hits += truth_set.count(retrieved[i]);
  return static_cast<double>(hits) / k_truth;
}

namespace {

template <typename RetrieveTop50>
RetrievalMetrics Evaluate(size_t num_queries,
                          const std::vector<std::vector<int>>& truth,
                          RetrieveTop50 retrieve) {
  T2H_CHECK_EQ(num_queries, truth.size());
  RetrievalMetrics m;
  if (num_queries == 0) return m;
  for (size_t q = 0; q < num_queries; ++q) {
    const std::vector<int> retrieved = retrieve(q);
    m.hr10 += HitRatio(retrieved, truth[q], 10);
    m.hr50 += HitRatio(retrieved, truth[q], 50);
    m.r10_50 += RecallTopK(retrieved, truth[q], 10, 50);
  }
  const double n = static_cast<double>(num_queries);
  m.hr10 /= n;
  m.hr50 /= n;
  m.r10_50 /= n;
  return m;
}

std::vector<int> Indices(const std::vector<search::Neighbor>& ns) {
  std::vector<int> ids;
  ids.reserve(ns.size());
  for (const search::Neighbor& n : ns) ids.push_back(n.index);
  return ids;
}

}  // namespace

RetrievalMetrics EvaluateEuclidean(
    const std::vector<std::vector<float>>& query_embeddings,
    const std::vector<std::vector<float>>& db_embeddings,
    const std::vector<std::vector<int>>& truth) {
  return Evaluate(query_embeddings.size(), truth, [&](size_t q) {
    return Indices(search::TopKEuclidean(db_embeddings, query_embeddings[q],
                                         50));
  });
}

RetrievalMetrics EvaluateHamming(const std::vector<search::Code>& query_codes,
                                 const std::vector<search::Code>& db_codes,
                                 const std::vector<std::vector<int>>& truth) {
  return Evaluate(query_codes.size(), truth, [&](size_t q) {
    return Indices(search::TopKHamming(db_codes, query_codes[q], 50));
  });
}

}  // namespace traj2hash::eval
