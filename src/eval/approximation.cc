#include "eval/approximation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace traj2hash::eval {
namespace {

/// Average ranks with ties sharing the mean of their rank range.
std::vector<double> Ranks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return values[a] < values[b]; });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double mean_rank = 0.5 * (i + j) + 1.0;  // 1-based average rank
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = mean_rank;
    i = j + 1;
  }
  return ranks;
}

double PearsonOf(const std::vector<double>& x, const std::vector<double>& y) {
  const size_t n = x.size();
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace

Result<ApproximationStats> CompareDistances(
    const std::vector<double>& exact, const std::vector<double>& approx) {
  if (exact.size() != approx.size()) {
    return Status::InvalidArgument("sample lengths differ");
  }
  if (exact.size() < 2) {
    return Status::InvalidArgument("need at least 2 samples");
  }
  ApproximationStats stats;
  stats.spearman = PearsonOf(Ranks(exact), Ranks(approx));

  // Discordance over a deterministic stride sample of pair-of-pairs (full
  // enumeration is quadratic in the number of pairs).
  const size_t n = exact.size();
  int64_t total = 0, discordant = 0;
  const size_t stride = std::max<size_t>(1, n / 512);
  for (size_t i = 0; i < n; i += stride) {
    for (size_t j = i + 1; j < n; j += stride) {
      const double de = exact[i] - exact[j];
      const double da = approx[i] - approx[j];
      if (de == 0.0 || da == 0.0) continue;
      ++total;
      if ((de > 0) != (da > 0)) ++discordant;
    }
  }
  stats.discordance =
      total > 0 ? static_cast<double>(discordant) / total : 0.0;
  return stats;
}

std::vector<double> UpperTriangle(const std::vector<double>& matrix, int n) {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n) * (n - 1) / 2);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      out.push_back(matrix[static_cast<size_t>(i) * n + j]);
    }
  }
  return out;
}

std::vector<double> PairwiseEuclidean(
    const std::vector<std::vector<float>>& embeddings) {
  const int n = static_cast<int>(embeddings.size());
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n) * (n - 1) / 2);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double acc = 0.0;
      for (size_t d = 0; d < embeddings[i].size(); ++d) {
        const double diff =
            static_cast<double>(embeddings[i][d]) - embeddings[j][d];
        acc += diff * diff;
      }
      out.push_back(std::sqrt(acc));
    }
  }
  return out;
}

}  // namespace traj2hash::eval
