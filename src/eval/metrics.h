#ifndef TRAJ2HASH_EVAL_METRICS_H_
#define TRAJ2HASH_EVAL_METRICS_H_

#include <vector>

#include "distance/distance.h"
#include "search/code.h"
#include "traj/trajectory.h"

namespace traj2hash::eval {

/// The paper's retrieval quality metrics (§V-A4).
struct RetrievalMetrics {
  double hr10 = 0.0;    ///< HR@10: |top-10 retrieved ∩ top-10 truth| / 10
  double hr50 = 0.0;    ///< HR@50: |top-50 retrieved ∩ top-50 truth| / 50
  double r10_50 = 0.0;  ///< R10@50: |top-50 retrieved ∩ top-10 truth| / 10
};

/// Exact ground-truth top-k ids for every query against the database under
/// `fn`. Quadratic in DP distance evaluations — sized by the caller.
std::vector<std::vector<int>> ExactTopK(
    const std::vector<traj::Trajectory>& queries,
    const std::vector<traj::Trajectory>& database, const dist::DistanceFn& fn,
    int k);

/// Overlap |retrieved[0..k) ∩ truth[0..k)| / k. `retrieved`/`truth` may be
/// longer than k.
double HitRatio(const std::vector<int>& retrieved,
                const std::vector<int>& truth, int k);

/// |retrieved[0..k_ret) ∩ truth[0..k_truth)| / k_truth (R10@50 uses
/// k_truth=10, k_ret=50).
double RecallTopK(const std::vector<int>& retrieved,
                  const std::vector<int>& truth, int k_truth, int k_ret);

/// Evaluates Euclidean-space retrieval: for every query embedding, the
/// top-50 database entries by Euclidean distance are compared against
/// `truth` (exact top->=50 ids per query). Metrics are averaged over queries.
RetrievalMetrics EvaluateEuclidean(
    const std::vector<std::vector<float>>& query_embeddings,
    const std::vector<std::vector<float>>& db_embeddings,
    const std::vector<std::vector<int>>& truth);

/// Evaluates Hamming-space retrieval over binary codes, same protocol.
RetrievalMetrics EvaluateHamming(
    const std::vector<search::Code>& query_codes,
    const std::vector<search::Code>& db_codes,
    const std::vector<std::vector<int>>& truth);

}  // namespace traj2hash::eval

#endif  // TRAJ2HASH_EVAL_METRICS_H_
