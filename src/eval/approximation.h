#ifndef TRAJ2HASH_EVAL_APPROXIMATION_H_
#define TRAJ2HASH_EVAL_APPROXIMATION_H_

#include <vector>

#include "common/status.h"

namespace traj2hash::eval {

/// How faithfully an approximate distance reproduces an exact one
/// (the problem statement's goal (1): minimise |f(.,.) - g(.,.)|).
struct ApproximationStats {
  /// Spearman rank correlation in [-1, 1]; 1 = identical ordering. Rank
  /// based, so it is invariant to any monotone calibration of the
  /// approximation (e.g. exp(-d) vs d).
  double spearman = 0.0;
  /// Fraction of discordant pairs among sampled pair-of-pairs (0 = ordering
  /// always agrees; 0.5 = random).
  double discordance = 0.0;
};

/// Compares two aligned distance samples (same pair order). Requires at
/// least 2 entries; returns InvalidArgument otherwise or on length mismatch.
Result<ApproximationStats> CompareDistances(const std::vector<double>& exact,
                                            const std::vector<double>& approx);

/// Flattens the strict upper triangle of a row-major n*n matrix (the natural
/// input to CompareDistances for pairwise matrices).
std::vector<double> UpperTriangle(const std::vector<double>& matrix, int n);

/// Pairwise Euclidean distances between embedding rows, upper triangle,
/// aligned with UpperTriangle of an exact PairwiseMatrix over the same
/// trajectories.
std::vector<double> PairwiseEuclidean(
    const std::vector<std::vector<float>>& embeddings);

}  // namespace traj2hash::eval

#endif  // TRAJ2HASH_EVAL_APPROXIMATION_H_
