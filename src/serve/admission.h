#ifndef TRAJ2HASH_SERVE_ADMISSION_H_
#define TRAJ2HASH_SERVE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace traj2hash::serve {

/// What to do with a query that arrives while the engine already has
/// `queue_depth` queries admitted (running or queued).
enum class OverloadPolicy {
  /// Shed it: the caller immediately gets kUnavailable and can retry with
  /// backoff (common/retry.h). Keeps tail latency bounded under overload.
  kReject,
  /// Block the submitting thread until a slot frees. Keeps every query but
  /// pushes the queueing upstream into the caller.
  kBlock,
};

/// "reject" / "block" (CLI flag spelling).
const char* OverloadPolicyName(OverloadPolicy policy);
Result<OverloadPolicy> ParseOverloadPolicy(const std::string& name);

/// Bounded admission for the serving engine: at most `queue_depth` queries
/// may be in flight (admitted and not yet released) at once; extra arrivals
/// are shed or blocked per the policy. Thread-safe; `queue_depth <= 0`
/// means unbounded (every Admit succeeds immediately — the pre-admission
/// engine behaviour).
class AdmissionController {
 public:
  AdmissionController(int queue_depth, OverloadPolicy policy)
      : queue_depth_(queue_depth), policy_(policy) {}

  /// Claims one slot. Returns OK (slot claimed — the caller must Release),
  /// or kUnavailable when the queue is full under kReject. Under kBlock
  /// this waits for a slot instead of failing.
  Status Admit();

  /// Returns a slot claimed by a successful Admit.
  void Release();

  int in_flight() const;
  /// Queries shed with kUnavailable since construction.
  int64_t shed_count() const;

  int queue_depth() const { return queue_depth_; }
  OverloadPolicy policy() const { return policy_; }

 private:
  const int queue_depth_;
  const OverloadPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable slot_freed_;
  int in_flight_ = 0;
  int64_t shed_ = 0;
};

}  // namespace traj2hash::serve

#endif  // TRAJ2HASH_SERVE_ADMISSION_H_
