#ifndef TRAJ2HASH_SERVE_RESULT_CACHE_H_
#define TRAJ2HASH_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "search/knn.h"
#include "serve/stats.h"
#include "traj/trajectory.h"

namespace traj2hash::serve {

/// Epoch-keyed LRU cache of top-k results (DESIGN.md §15).
///
/// Keys are the *exact bytes* of a canonicalized query (see
/// AppendCanonicalKey) — never a digest, so a hash collision can never
/// violate the engine's bit-identical-results contract. Every entry carries
/// the index mutation epoch it was computed at; a lookup succeeds only when
/// that epoch equals the caller's current epoch, so churn can never serve
/// stale neighbours. Because the epoch is monotone, a mismatched entry can
/// never become valid again and is dropped on sight (counted as `stale`, a
/// subset of misses: hits + misses == lookups always).
///
/// Insertion follows the stable-epoch rule: the caller passes the epoch it
/// read *before* computing and the epoch it read *after*; the entry is
/// stored only when the two agree (and the result is complete), proving no
/// mutation raced the probe. Epoch increments happen inside the shard locks
/// the probe itself takes, so a racing mutation is never invisible to this
/// check.
///
/// Single-flight (Acquire/Publish): concurrent misses on one key elect a
/// leader (Outcome::kLead) that owns the probe; followers block on the
/// flight (bounded by their deadline) and are served the leader's result if
/// it was computed at an epoch >= their own admission epoch. Otherwise they
/// fall back to Outcome::kMiss and compute for themselves — correctness
/// first, dedup second.
///
/// Memory is bounded two ways: by entry count (`capacity`) and by an
/// approximate byte budget (`max_bytes`, 0 = unbounded). Each entry is
/// charged EntryBytes — both stored copies of the key bytes (which embed
/// the query geometry) + k stored neighbours + fixed node overhead — and
/// the LRU tail is evicted
/// until both bounds hold, so a workload of long-geometry queries cannot
/// blow past the budget by staying under the entry count.
///
/// Thread-safe. A capacity <= 0 disables the cache: every call is a cheap
/// no-op that reports a miss, so callers need no branching.
class ResultCache {
 public:
  explicit ResultCache(int capacity, size_t max_bytes = 0);

  bool enabled() const { return capacity_ > 0; }

  /// Plain lookup (batch + router paths; no single-flight). True on a hit
  /// at exactly `epoch`, filling `*out`.
  bool Lookup(const std::string& key, uint64_t epoch,
              std::vector<search::Neighbor>* out);

  /// Plain insert under the stable-epoch rule: stored only when
  /// `epoch_before == epoch_after`. Evicts the LRU entry beyond capacity.
  void Insert(const std::string& key, uint64_t epoch_before,
              uint64_t epoch_after, const std::vector<search::Neighbor>& result);

  enum class Outcome {
    kHit,   ///< `*out` filled with a result valid at/after the given epoch
    kLead,  ///< caller owns the probe; MUST call Publish or Abandon
    kMiss,  ///< caller computes for itself, with no publish duty
  };

  /// Opaque handle tying a kLead Acquire to its Publish/Abandon.
  class Ticket {
   public:
    Ticket() = default;

   private:
    friend class ResultCache;
    struct Flight;
    std::shared_ptr<Flight> flight_;
    std::string key_;
  };

  /// Single-flight lookup (engine Query path). kHit serves either a cached
  /// entry at exactly `epoch` or a just-published flight result computed at
  /// an epoch >= `epoch`. The follower wait is bounded by `deadline`
  /// (expiry degrades to kMiss, never a stall).
  Outcome Acquire(const std::string& key, uint64_t epoch,
                  const Deadline& deadline, std::vector<search::Neighbor>* out,
                  Ticket* ticket);

  /// Completes a kLead ticket: wakes followers with the result (valid at
  /// `epoch_before` iff `complete` and the epochs agree) and caches it
  /// under the stable-epoch rule.
  void Publish(Ticket* ticket, uint64_t epoch_before, uint64_t epoch_after,
               bool complete, const std::vector<search::Neighbor>& result);

  /// Releases a kLead ticket without a result (e.g. the leader's deadline
  /// expired before the probe); followers fall back to kMiss.
  void Abandon(Ticket* ticket);

  /// Monotonic counters; hits + misses == lookups, stale <= misses.
  struct Stats {
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stale = 0;
    uint64_t flight_waits = 0;
    uint64_t flight_served = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };
  Stats stats() const;

  int size() const;
  int capacity() const { return capacity_; }
  /// Approximate bytes currently held (sum of EntryBytes over live
  /// entries); the gauge FrontendSnapshot reports as cache_bytes.
  size_t bytes() const;
  size_t max_bytes() const { return max_bytes_; }

  /// The byte charge of one entry, matching what an entry actually holds:
  /// the key bytes TWICE (one copy lives in the list Entry, one is the
  /// unordered_map key), the stored neighbours at their real row width
  /// (sizeof(search::Neighbor), not a float-per-row guess — a Neighbor
  /// carries an index plus a double distance), and a fixed list/map node
  /// overhead. InsertLocked keeps the stored vector's capacity equal to its
  /// size so the charge never drifts from the live allocation. Static so
  /// tests can predict eviction points.
  static size_t EntryBytes(const std::string& key,
                           const std::vector<search::Neighbor>& result) {
    return 2 * key.size() + result.size() * sizeof(search::Neighbor) +
           kEntryOverheadBytes;
  }
  static constexpr size_t kEntryOverheadBytes = 96;

  /// Appends the canonical byte form of one cache-key component. The
  /// trajectory form covers the geometry only (point count + raw coordinate
  /// bytes) — the id is routing metadata, not query content.
  static void AppendCanonicalKey(const traj::Trajectory& t, std::string* key);
  static void AppendCanonicalKey(int32_t v, std::string* key);
  static void AppendCanonicalKey(uint8_t v, std::string* key);

 private:
  struct Entry {
    std::string key;
    uint64_t epoch = 0;
    std::vector<search::Neighbor> result;
  };

  bool LookupLocked(const std::string& key, uint64_t epoch,
                    std::vector<search::Neighbor>* out);
  void InsertLocked(const std::string& key, uint64_t epoch,
                    const std::vector<search::Neighbor>& result);
  void EraseLocked(std::list<Entry>::iterator it);

  const int capacity_;
  const size_t max_bytes_;

  mutable std::mutex mu_;
  size_t bytes_ = 0;  ///< guarded by mu_; sum of EntryBytes over lru_
  std::condition_variable flight_done_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::unordered_map<std::string, std::shared_ptr<Ticket::Flight>> flights_;

  // Monotonic counters (relaxed: monitoring only).
  std::atomic<uint64_t> lookups_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> stale_{0};
  std::atomic<uint64_t> flight_waits_{0};
  std::atomic<uint64_t> flight_served_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace traj2hash::serve

#endif  // TRAJ2HASH_SERVE_RESULT_CACHE_H_
