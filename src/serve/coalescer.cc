#include "serve/coalescer.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"

namespace traj2hash::serve {

BatchCoalescer::BatchCoalescer(const core::Traj2Hash* model, ThreadPool* pool,
                               const BatchCoalescerOptions& options)
    : model_(model), pool_(pool), options_(options) {
  T2H_CHECK(model != nullptr);
  T2H_CHECK_GE(options.max_batch, 1);
}

void BatchCoalescer::BeginApproach() {
  std::lock_guard<std::mutex> lock(mu_);
  ++en_route_;
}

void BatchCoalescer::EndApproach() {
  std::lock_guard<std::mutex> lock(mu_);
  --en_route_;
  // The withdrawal may have made the forming batch complete ("nobody else
  // is coming"); wake the leader to re-evaluate.
  cv_.notify_all();
}

search::Code BatchCoalescer::Encode(const traj::Trajectory& query,
                                    const Deadline& deadline) {
  Slot slot;
  slot.query = &query;
  slot.deadline = deadline;

  std::unique_lock<std::mutex> lock(mu_);
  pending_.push_back(&slot);
  --en_route_;  // consumed the BeginApproach announcement
  cv_.notify_all();
  while (!slot.done) {
    if (!slot.taken && !leader_active_) {
      LeadLocked(lock);
    } else {
      cv_.wait(lock);
    }
  }
  return std::move(slot.code);
}

void BatchCoalescer::LeadLocked(std::unique_lock<std::mutex>& lock) {
  leader_active_ = true;
  using Clock = Deadline::Clock;
  const Clock::time_point gen_start = Clock::now();
  const auto max_wait = std::chrono::microseconds(options_.max_wait_us);
  const auto margin = std::chrono::microseconds(options_.deadline_margin_us);

  std::atomic<uint64_t>* cause = nullptr;
  while (cause == nullptr) {
    if (static_cast<int>(pending_.size()) >= options_.max_batch) {
      cause = &flushes_full_;
      break;
    }
    if (en_route_ <= 0 && encoding_ == 0 &&
        (!options_.engine_load ||
         options_.engine_load() <= static_cast<int>(pending_.size()))) {
      // Truly idle: nobody announced, no batch encoding, and every admitted
      // query is already in this batch — waiting cannot buy a companion.
      cause = &flushes_idle_;
      break;
    }
    // Bounded wait: never past the generation's max_wait, and never past
    // any pending deadline minus the margin (the margin buys encode time).
    Clock::time_point flush_by = gen_start + max_wait;
    for (const Slot* s : pending_) {
      if (!s->deadline.infinite()) {
        flush_by = std::min(flush_by, s->deadline.when_or(flush_by) - margin);
      }
    }
    if (Clock::now() >= flush_by) {
      cause = &flushes_deadline_;
      break;
    }
    cv_.wait_until(lock, flush_by);
  }

  std::vector<Slot*> batch = std::move(pending_);
  pending_.clear();
  for (Slot* s : batch) s->taken = true;
  ++encoding_;
  // Release leadership before encoding so the next generation can form
  // (and flush) while this one runs — arrivals never stall behind us.
  leader_active_ = false;
  cv_.notify_all();
  lock.unlock();

  cause->fetch_add(1, std::memory_order_relaxed);
  occupancy_.Record(static_cast<int>(batch.size()));
  if (batch.size() == 1) {
    // HashCode is PackSigns(Embed(t)) — identical to the batch path below,
    // minus the copy into a batch vector.
    batch[0]->code = model_->HashCode(*batch[0]->query);
  } else {
    std::vector<traj::Trajectory> queries;
    queries.reserve(batch.size());
    for (const Slot* s : batch) queries.push_back(*s->query);
    const std::vector<std::vector<float>> embeddings =
        model_->EmbedBatch(queries, pool_);
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i]->code = search::PackSigns(embeddings[i]);
    }
  }

  lock.lock();
  --encoding_;  // may re-arm the next generation's idle flush
  for (Slot* s : batch) s->done = true;
  cv_.notify_all();
}

}  // namespace traj2hash::serve
