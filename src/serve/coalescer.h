#ifndef TRAJ2HASH_SERVE_COALESCER_H_
#define TRAJ2HASH_SERVE_COALESCER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/deadline.h"
#include "core/model.h"
#include "search/code.h"
#include "serve/stats.h"
#include "serve/thread_pool.h"
#include "traj/trajectory.h"

namespace traj2hash::serve {

struct BatchCoalescerOptions {
  /// Flush as soon as this many queries are pending.
  int max_batch = 8;
  /// Bounded wait: a batch never forms for longer than this past its first
  /// query's arrival, even when more arrivals keep trickling in.
  int64_t max_wait_us = 200;
  /// Deadline guard: the batch also never waits past any pending query's
  /// deadline minus this margin (the margin buys the encode itself time).
  int64_t deadline_margin_us = 100;
  /// Optional: number of queries currently admitted anywhere in the serving
  /// pipeline (the engine wires AdmissionController::in_flight here). With
  /// it, the idle flush — which skips the bounded wait — only fires when
  /// every admitted query is already in the forming batch: a truly idle
  /// engine keeps the lone-query latency of an uncoalesced encode, while
  /// under load queries mid-probe/rank count as "more arrivals are coming"
  /// and the leader lingers for them (still bounded by max_wait and the
  /// deadline guard). Unset (the default), only BeginApproach announcements
  /// and in-flight encodes suppress the idle flush.
  std::function<int()> engine_load = nullptr;
};

/// Groups concurrently arriving single-query encodes into one
/// `Traj2Hash::EmbedBatch` call (DESIGN.md §15). The first query of a
/// generation becomes the *leader*: it waits — bounded as above — for
/// companions, then encodes the whole batch on the caller's thread (fanning
/// over the worker pool via EmbedBatch) and hands each follower its code.
/// Leadership is released before the encode runs, so the next generation
/// forms while the previous one is still encoding.
///
/// The wait ends immediately when waiting buys nothing — when the encode
/// resource is idle AND no further arrival is en route. Callers announce an
/// admitted query with `BeginApproach` before calling `Encode` (which
/// consumes the announcement), so "pending == everyone en route" is
/// detectable; a caller that bails between the two (cache hit, expired
/// deadline) must call `EndApproach` instead. While a previous generation
/// is still encoding, the leader keeps lingering (bounded by max_wait and
/// the deadline guard) even with nobody en route: the encode resource is
/// busy anyway, so the wait is free and every arrival it absorbs is one
/// forward pass saved — this is what makes batches form under concurrent
/// load, where closed-loop arrivals rarely overlap inside the microseconds
/// between admission and Encode.
///
/// Bit-identity: EmbedBatch runs the same per-trajectory forward pass as
/// `Embed`, and `HashCode` is `PackSigns(Embed(t))` — so a coalesced code
/// equals the uncoalesced one bit for bit, and the probe/rank stages behave
/// identically downstream.
///
/// Threading: `Encode` must only be called from external threads (never
/// from inside the worker pool — it both blocks on the leader and calls
/// ThreadPool::RunAll, see that class's deadlock note). Any number of
/// external threads may call it concurrently.
class BatchCoalescer {
 public:
  /// `model` and `pool` must outlive the coalescer.
  BatchCoalescer(const core::Traj2Hash* model, ThreadPool* pool,
                 const BatchCoalescerOptions& options);

  /// Announces one admitted query headed for Encode (see class comment).
  void BeginApproach();
  /// Withdraws an announcement whose query will not reach Encode.
  void EndApproach();

  /// Blocks until this query's hash code is ready — possibly encoding a
  /// whole batch on this thread as the leader. Requires a prior
  /// BeginApproach (consumed here).
  search::Code Encode(const traj::Trajectory& query, const Deadline& deadline);

  /// Queries per flushed batch (exact integer percentiles).
  OccupancyHistogram::Summary occupancy() const {
    return occupancy_.Summarize();
  }
  /// Flush-cause counters: batch full / bounded wait elapsed / no further
  /// arrival en route.
  uint64_t flushes_full() const {
    return flushes_full_.load(std::memory_order_relaxed);
  }
  uint64_t flushes_deadline() const {
    return flushes_deadline_.load(std::memory_order_relaxed);
  }
  uint64_t flushes_idle() const {
    return flushes_idle_.load(std::memory_order_relaxed);
  }

  const BatchCoalescerOptions& options() const { return options_; }

 private:
  struct Slot {
    const traj::Trajectory* query = nullptr;
    Deadline deadline;
    search::Code code;
    bool taken = false;  ///< absorbed into a flushed batch
    bool done = false;   ///< code is ready
  };

  /// Runs one generation as its leader: bounded wait, flush, encode,
  /// deliver. Entered and left with `lock` held.
  void LeadLocked(std::unique_lock<std::mutex>& lock);

  const core::Traj2Hash* model_;
  ThreadPool* pool_;
  const BatchCoalescerOptions options_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Slot*> pending_;  // the forming generation
  bool leader_active_ = false;
  /// Queries announced via BeginApproach that have not yet joined
  /// `pending_` (or withdrawn). The idle-flush rule: when this is zero AND
  /// no flushed batch is still encoding, nobody else is coming, the encode
  /// resource is free, and waiting buys nothing.
  int en_route_ = 0;
  /// Flushed batches currently inside their encode (HashCode/EmbedBatch).
  /// While positive, a forming generation's leader lingers instead of
  /// idle-flushing — see the class comment.
  int encoding_ = 0;

  OccupancyHistogram occupancy_;
  std::atomic<uint64_t> flushes_full_{0};
  std::atomic<uint64_t> flushes_deadline_{0};
  std::atomic<uint64_t> flushes_idle_{0};
};

}  // namespace traj2hash::serve

#endif  // TRAJ2HASH_SERVE_COALESCER_H_
