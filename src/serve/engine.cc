#include "serve/engine.h"

#include <algorithm>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"

namespace traj2hash::serve {

QueryEngine::QueryEngine(const core::Traj2Hash* model,
                         const QueryEngineOptions& options)
    : model_(model),
      options_(options),
      index_(options.num_shards, model != nullptr ? model->config().dim : 1,
             options.strategy, options.mih_substrings,
             options.compact_min_ops, options.compact_ratio, options.quantize,
             model != nullptr ? model->config().dim : 1),
      pool_(options.num_threads),
      admission_(options.queue_depth, options.overload_policy) {
  T2H_CHECK(model != nullptr);
  if (options.enable_coalescing) {
    BatchCoalescerOptions copts;
    copts.max_batch = options.max_batch;
    copts.max_wait_us = options.max_wait_us;
    // Pipeline-aware idle flush: queries mid-probe/rank (or served from the
    // cache) count as load, so a leader lingers for them instead of
    // flushing a singleton the moment the encode resource looks free.
    copts.engine_load = [this] { return admission_.in_flight(); };
    coalescer_ = std::make_unique<BatchCoalescer>(model, &pool_, copts);
  }
  if (options.cache_entries > 0) {
    cache_ = std::make_unique<ResultCache>(options.cache_entries,
                                           options.cache_max_bytes);
  }
}

Result<int> QueryEngine::Insert(const traj::Trajectory& t) {
  std::vector<float> embedding = model_->Embed(t);
  search::Code code = search::PackSigns(embedding);
  Result<int> id = index_.Insert(std::move(code), std::move(embedding));
  if (id.ok()) MaybeScheduleCompaction();
  return id;
}

Status QueryEngine::InsertAll(const std::vector<traj::Trajectory>& ts) {
  if (ts.empty()) return Status::Ok();
  // Encode in parallel (the dominant cost), insert sequentially so global
  // ids deterministically follow input order. Under a WAL the whole batch
  // commits with one fsync (ShardedIndex::InsertBatch).
  std::vector<std::vector<float>> embeddings(ts.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(ts.size());
  for (size_t i = 0; i < ts.size(); ++i) {
    tasks.push_back(
        [this, &ts, &embeddings, i] { embeddings[i] = model_->Embed(ts[i]); });
  }
  pool_.RunAll(std::move(tasks));
  std::vector<search::Code> codes;
  codes.reserve(embeddings.size());
  for (const std::vector<float>& embedding : embeddings) {
    codes.push_back(search::PackSigns(embedding));
  }
  const Status inserted =
      index_.InsertBatch(std::move(codes), std::move(embeddings));
  if (inserted.ok()) MaybeScheduleCompaction();
  return inserted;
}

Status QueryEngine::Remove(int id) {
  const Status removed = index_.Remove(id);
  if (removed.ok()) MaybeScheduleCompaction();
  return removed;
}

Status QueryEngine::Update(int id, const traj::Trajectory& t) {
  std::vector<float> embedding = model_->Embed(t);
  search::Code code = search::PackSigns(embedding);
  const Status updated =
      index_.Update(id, std::move(code), std::move(embedding));
  if (updated.ok()) MaybeScheduleCompaction();
  return updated;
}

void QueryEngine::MaybeScheduleCompaction() {
  for (int s = 0; s < index_.num_shards(); ++s) {
    // ClaimCompaction is single-flight per shard, so at most one rebuild of
    // a shard is ever queued; the claim obliges the task to run.
    if (index_.ClaimCompaction(s)) {
      pool_.Submit([this, s] { index_.RunClaimedCompaction(s); });
    }
  }
}

QueryResult QueryEngine::RunQuery(const traj::Trajectory& query, int k,
                                  bool parallel_fanout,
                                  const QueryOptions& options) {
  T2H_CHECK_GE(k, 1);
  Stopwatch total;
  Stopwatch stage;
  QueryResult result;
  // Fail fast: a deadline that is already gone buys nothing from encoding.
  if (options.deadline.Expired()) {
    result.complete = false;
    result.status =
        Status::DeadlineExceeded("deadline expired before the encode stage");
    return result;
  }
  const search::Code code = model_->HashCode(query);
  stats_.Record(Stage::kEncode, stage.ElapsedMicros());
  result = ProbeAndRank(code, k, parallel_fanout, options);
  stats_.Record(Stage::kTotal, total.ElapsedMicros());
  return result;
}

QueryResult QueryEngine::ProbeAndRank(const search::Code& code, int k,
                                      bool parallel_fanout,
                                      const QueryOptions& options) {
  T2H_CHECK_GE(k, 1);
  Stopwatch stage;
  QueryResult result;
  const int s = index_.num_shards();
  std::vector<std::vector<search::Neighbor>> per_shard(s);
  // Per-shard completion flags (uint8_t: pool tasks write them
  // concurrently, which vector<bool> cannot take). A shard is incomplete if
  // the deadline expired before its probe started (the probe loop check,
  // fault point faults::kShardProbe) or mid-probe inside MIH.
  std::vector<uint8_t> shard_complete(s, 1);
  stage.Restart();
  if (parallel_fanout && s > 1) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(s);
    for (int i = 0; i < s; ++i) {
      tasks.push_back([this, i, &code, k, &per_shard, &shard_complete,
                       &options] {
        if (options.deadline.Expired(faults::kShardProbe)) {
          shard_complete[i] = 0;
          return;
        }
        bool complete = true;
        per_shard[i] =
            index_.ShardTopK(i, code, k, options.deadline, &complete);
        shard_complete[i] = complete ? 1 : 0;
      });
    }
    pool_.RunAll(std::move(tasks));
  } else {
    for (int i = 0; i < s; ++i) {
      if (options.deadline.Expired(faults::kShardProbe)) {
        // Expired between shards: the remaining shards are skipped, so the
        // merge below degrades to "completed shards only".
        for (int j = i; j < s; ++j) shard_complete[j] = 0;
        break;
      }
      bool complete = true;
      per_shard[i] = index_.ShardTopK(i, code, k, options.deadline, &complete);
      shard_complete[i] = complete ? 1 : 0;
    }
  }
  stats_.Record(Stage::kProbe, stage.ElapsedMicros());

  stage.Restart();
  bool all_complete = true;
  for (int i = 0; i < s; ++i) all_complete &= shard_complete[i] != 0;
  if (all_complete) {
    result.neighbors = ShardedIndex::MergeTopK(per_shard, k);
  } else {
    result.complete = false;
    result.status = Status::DeadlineExceeded(
        "deadline expired mid-probe; " +
        std::string(options.allow_partial
                        ? "returning best-effort partial result"
                        : "partial results disallowed"));
    if (options.allow_partial) {
      // Still the k best of everything that was collected, in the same
      // (distance, id) order a complete query would use.
      result.neighbors = ShardedIndex::MergeTopK(per_shard, k);
    }
  }
  stats_.Record(Stage::kRank, stage.ElapsedMicros());
  return result;
}

std::string QueryEngine::CacheKey(const traj::Trajectory& query, int k) const {
  std::string key;
  key.reserve(query.points.size() * 2 * sizeof(double) + 16);
  ResultCache::AppendCanonicalKey(static_cast<int32_t>(k), &key);
  ResultCache::AppendCanonicalKey(static_cast<uint8_t>(index_.strategy()),
                                  &key);
  ResultCache::AppendCanonicalKey(query, &key);
  return key;
}

QueryResult QueryEngine::RunFrontend(const traj::Trajectory& query, int k,
                                     const QueryOptions& options) {
  T2H_CHECK_GE(k, 1);
  if (coalescer_ != nullptr) coalescer_->BeginApproach();
  Stopwatch total;
  QueryResult result;
  if (options.deadline.Expired()) {
    if (coalescer_ != nullptr) coalescer_->EndApproach();
    result.complete = false;
    result.status =
        Status::DeadlineExceeded("deadline expired before the encode stage");
    return result;
  }

  // Cache acquire: a hit answers without encoding or probing; a leader owns
  // the probe (and the Publish duty); a follower that could not reuse the
  // flight's result falls through and computes for itself.
  ResultCache::Ticket ticket;
  ResultCache::Outcome outcome = ResultCache::Outcome::kMiss;
  uint64_t admission_epoch = 0;
  std::string key;
  if (cache_ != nullptr) {
    admission_epoch = index_.mutation_epoch();
    key = CacheKey(query, k);
    outcome = cache_->Acquire(key, admission_epoch, options.deadline,
                              &result.neighbors, &ticket);
    if (outcome == ResultCache::Outcome::kHit) {
      if (coalescer_ != nullptr) coalescer_->EndApproach();
      stats_.Record(Stage::kTotal, total.ElapsedMicros());
      return result;  // complete, OK — exactly what the probe would return
    }
  }

  Stopwatch stage;
  const search::Code code =
      coalescer_ != nullptr
          ? coalescer_->Encode(query, options.deadline)  // consumes approach
          : model_->HashCode(query);
  stats_.Record(Stage::kEncode, stage.ElapsedMicros());
  result = ProbeAndRank(code, k, /*parallel_fanout=*/true, options);
  if (cache_ != nullptr) {
    const uint64_t epoch_after = index_.mutation_epoch();
    const bool usable = result.complete && result.status.ok();
    if (outcome == ResultCache::Outcome::kLead) {
      cache_->Publish(&ticket, admission_epoch, epoch_after, usable,
                      result.neighbors);
    } else if (usable) {
      // Fallen-back follower: no flight to publish, but the result is still
      // cacheable under the same stable-epoch rule.
      cache_->Insert(key, admission_epoch, epoch_after, result.neighbors);
    }
  }
  stats_.Record(Stage::kTotal, total.ElapsedMicros());
  return result;
}

QueryResult QueryEngine::Query(const traj::Trajectory& query, int k,
                               const QueryOptions& options) {
  const Status admitted = admission_.Admit();
  if (!admitted.ok()) {
    QueryResult shed;
    shed.complete = false;
    shed.status = admitted;
    return shed;
  }
  QueryResult result =
      coalescer_ != nullptr || cache_ != nullptr
          ? RunFrontend(query, k, options)
          : RunQuery(query, k, /*parallel_fanout=*/true, options);
  admission_.Release();
  return result;
}

QueryResult QueryEngine::QueryRerank(const traj::Trajectory& query, int k) {
  T2H_CHECK_GE(k, 1);
  const Status admitted = admission_.Admit();
  if (!admitted.ok()) {
    QueryResult shed;
    shed.complete = false;
    shed.status = admitted;
    return shed;
  }
  Stopwatch total;
  Stopwatch stage;
  const std::vector<float> embedding = model_->Embed(query);
  const search::Code code = search::PackSigns(embedding);
  stats_.Record(Stage::kEncode, stage.ElapsedMicros());
  const int candidates = options_.rerank_candidates > 0
                             ? options_.rerank_candidates
                             : std::max(8 * k, 64);
  stage.Restart();
  QueryResult result;
  result.neighbors =
      index_.QueryRerankTopK(code, embedding, k, candidates,
                             index_.num_shards() > 1 ? &pool_ : nullptr);
  stats_.Record(Stage::kProbe, stage.ElapsedMicros());
  stats_.Record(Stage::kTotal, total.ElapsedMicros());
  admission_.Release();
  return result;
}

std::vector<QueryResult> QueryEngine::QueryBatch(
    const std::vector<traj::Trajectory>& queries, int k,
    const QueryOptions& options) {
  T2H_CHECK_GE(k, 1);
  const size_t n = queries.size();
  std::vector<QueryResult> results(n);
  if (n == 0) return results;

  // Admission first. Under a bounded kReject queue the whole batch is
  // admitted up front on this thread (Admit never blocks under kReject),
  // which makes the shed pattern deterministic — the first `queue_depth`
  // queries are admitted, every later one is shed — and guarantees no shed
  // query wastes a forward pass below. Unbounded and kBlock engines never
  // shed batch queries, so they skip this pass and admit at submission
  // time, the historical behaviour (kBlock must: admitting the whole batch
  // up front would deadlock against its own not-yet-submitted tasks).
  const bool reject_bounded =
      options_.queue_depth > 0 &&
      options_.overload_policy == OverloadPolicy::kReject;
  std::vector<uint8_t> admitted(n, 1);
  if (reject_bounded) {
    for (size_t i = 0; i < n; ++i) {
      const Status status = admission_.Admit();
      if (!status.ok()) {
        admitted[i] = 0;
        results[i].complete = false;
        results[i].status = status;
      }
    }
  }

  // Cache pass: hits are answered inline at the batch's admission epoch,
  // without a forward pass or a worker task.
  const uint64_t batch_epoch = cache_ != nullptr ? index_.mutation_epoch() : 0;
  std::vector<std::string> keys(cache_ != nullptr ? n : 0);
  std::vector<uint8_t> hit(n, 0);
  if (cache_ != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      if (admitted[i] == 0) continue;
      Stopwatch lookup;
      keys[i] = CacheKey(queries[i], k);
      if (cache_->Lookup(keys[i], batch_epoch, &results[i].neighbors)) {
        hit[i] = 1;
        stats_.Record(Stage::kTotal, lookup.ElapsedMicros());
        if (reject_bounded) admission_.Release();
      }
    }
  }

  // One EmbedBatch forward pass over everything that still needs a probe —
  // bit-identical to per-query HashCode (same per-trajectory Embed, same
  // PackSigns), but amortized across the pool. The encode stage records
  // each query's amortized share.
  std::vector<size_t> to_run;
  to_run.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (admitted[i] != 0 && hit[i] == 0) to_run.push_back(i);
  }
  std::vector<search::Code> codes(n);
  double encode_share_us = 0.0;
  if (!to_run.empty() && options.deadline.Expired()) {
    // Fail fast, like the per-query path: nothing gets encoded or probed.
    for (const size_t i : to_run) {
      results[i].complete = false;
      results[i].status =
          Status::DeadlineExceeded("deadline expired before the encode stage");
      if (reject_bounded) admission_.Release();
    }
    to_run.clear();
  }
  if (!to_run.empty()) {
    Stopwatch encode;
    std::vector<std::vector<float>> embeddings;
    if (to_run.size() == n) {
      embeddings = model_->EmbedBatch(queries, &pool_);
    } else {
      std::vector<traj::Trajectory> subset;
      subset.reserve(to_run.size());
      for (size_t i : to_run) subset.push_back(queries[i]);
      embeddings = model_->EmbedBatch(subset, &pool_);
    }
    for (size_t j = 0; j < to_run.size(); ++j) {
      codes[to_run[j]] = search::PackSigns(embeddings[j]);
    }
    encode_share_us =
        encode.ElapsedMicros() / static_cast<double>(to_run.size());
    for (size_t j = 0; j < to_run.size(); ++j) {
      stats_.Record(Stage::kEncode, encode_share_us);
    }
  }

  // Probe tasks are submitted one by one (not through the RunAll barrier)
  // so kBlock admission cannot deadlock: admitted tasks are already
  // running and release their slots as workers finish them. Serial
  // fan-out inside each task — a worker probing its own shards cannot wait
  // on the pool.
  std::mutex mu;
  std::condition_variable all_done;
  int outstanding = 0;
  for (const size_t i : to_run) {
    if (!reject_bounded) {
      const Status status = admission_.Admit();
      if (!status.ok()) {
        results[i].complete = false;
        results[i].status = status;
        continue;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      ++outstanding;
    }
    pool_.Submit([this, &results, &codes, &keys, i, k, &options, batch_epoch,
                  encode_share_us, &mu, &all_done, &outstanding] {
      Stopwatch task;
      if (options.deadline.Expired()) {
        results[i].complete = false;
        results[i].status = Status::DeadlineExceeded(
            "deadline expired before the probe stage");
      } else {
        results[i] = ProbeAndRank(codes[i], k, /*parallel_fanout=*/false,
                                  options);
        stats_.Record(Stage::kTotal, task.ElapsedMicros() + encode_share_us);
        if (cache_ != nullptr && results[i].complete &&
            results[i].status.ok()) {
          cache_->Insert(keys[i], batch_epoch, index_.mutation_epoch(),
                         results[i].neighbors);
        }
      }
      admission_.Release();
      std::lock_guard<std::mutex> lock(mu);
      if (--outstanding == 0) all_done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  all_done.wait(lock, [&outstanding] { return outstanding == 0; });
  return results;
}

FrontendSnapshot QueryEngine::frontend_stats() const {
  FrontendSnapshot s;
  s.coalescing = coalescer_ != nullptr;
  s.caching = cache_ != nullptr;
  if (coalescer_ != nullptr) {
    s.occupancy = coalescer_->occupancy();
    s.flushes_full = coalescer_->flushes_full();
    s.flushes_deadline = coalescer_->flushes_deadline();
    s.flushes_idle = coalescer_->flushes_idle();
  }
  if (cache_ != nullptr) {
    const ResultCache::Stats cs = cache_->stats();
    s.cache_lookups = cs.lookups;
    s.cache_hits = cs.hits;
    s.cache_misses = cs.misses;
    s.cache_stale = cs.stale;
    s.flight_waits = cs.flight_waits;
    s.flight_served = cs.flight_served;
    s.cache_insertions = cs.insertions;
    s.cache_evictions = cs.evictions;
    s.cache_bytes = cache_->bytes();
  }
  s.epoch = index_.mutation_epoch();
  return s;
}

QuantSnapshot QueryEngine::quant_stats() const {
  QuantSnapshot s;
  s.quantize = index_.quantize();
  s.resident_bytes = index_.embedding_resident_bytes();
  const quant::RerankSnapshot r = index_.rerank_stats();
  s.rerank_queries = r.queries;
  s.rerank_candidates = r.candidates;
  s.rechecked = r.rechecked;
  s.band_violations = r.band_violations;
  s.requant_recheck_rate = r.recheck_rate();
  s.band_width = r.mean_band_width();
  return s;
}

}  // namespace traj2hash::serve
