#include "serve/engine.h"

#include <condition_variable>
#include <functional>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"

namespace traj2hash::serve {

QueryEngine::QueryEngine(const core::Traj2Hash* model,
                         const QueryEngineOptions& options)
    : model_(model),
      index_(options.num_shards, model != nullptr ? model->config().dim : 1,
             options.strategy, options.mih_substrings,
             options.compact_min_ops, options.compact_ratio),
      pool_(options.num_threads),
      admission_(options.queue_depth, options.overload_policy) {
  T2H_CHECK(model != nullptr);
}

Result<int> QueryEngine::Insert(const traj::Trajectory& t) {
  std::vector<float> embedding = model_->Embed(t);
  search::Code code = search::PackSigns(embedding);
  Result<int> id = index_.Insert(std::move(code), std::move(embedding));
  if (id.ok()) MaybeScheduleCompaction();
  return id;
}

Status QueryEngine::InsertAll(const std::vector<traj::Trajectory>& ts) {
  if (ts.empty()) return Status::Ok();
  // Encode in parallel (the dominant cost), insert sequentially so global
  // ids deterministically follow input order. Under a WAL the whole batch
  // commits with one fsync (ShardedIndex::InsertBatch).
  std::vector<std::vector<float>> embeddings(ts.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(ts.size());
  for (size_t i = 0; i < ts.size(); ++i) {
    tasks.push_back(
        [this, &ts, &embeddings, i] { embeddings[i] = model_->Embed(ts[i]); });
  }
  pool_.RunAll(std::move(tasks));
  std::vector<search::Code> codes;
  codes.reserve(embeddings.size());
  for (const std::vector<float>& embedding : embeddings) {
    codes.push_back(search::PackSigns(embedding));
  }
  const Status inserted =
      index_.InsertBatch(std::move(codes), std::move(embeddings));
  if (inserted.ok()) MaybeScheduleCompaction();
  return inserted;
}

Status QueryEngine::Remove(int id) {
  const Status removed = index_.Remove(id);
  if (removed.ok()) MaybeScheduleCompaction();
  return removed;
}

Status QueryEngine::Update(int id, const traj::Trajectory& t) {
  std::vector<float> embedding = model_->Embed(t);
  search::Code code = search::PackSigns(embedding);
  const Status updated =
      index_.Update(id, std::move(code), std::move(embedding));
  if (updated.ok()) MaybeScheduleCompaction();
  return updated;
}

void QueryEngine::MaybeScheduleCompaction() {
  for (int s = 0; s < index_.num_shards(); ++s) {
    // ClaimCompaction is single-flight per shard, so at most one rebuild of
    // a shard is ever queued; the claim obliges the task to run.
    if (index_.ClaimCompaction(s)) {
      pool_.Submit([this, s] { index_.RunClaimedCompaction(s); });
    }
  }
}

QueryResult QueryEngine::RunQuery(const traj::Trajectory& query, int k,
                                  bool parallel_fanout,
                                  const QueryOptions& options) {
  T2H_CHECK_GE(k, 1);
  Stopwatch total;
  Stopwatch stage;
  QueryResult result;
  // Fail fast: a deadline that is already gone buys nothing from encoding.
  if (options.deadline.Expired()) {
    result.complete = false;
    result.status =
        Status::DeadlineExceeded("deadline expired before the encode stage");
    return result;
  }
  const search::Code code = model_->HashCode(query);
  stats_.Record(Stage::kEncode, stage.ElapsedMicros());

  const int s = index_.num_shards();
  std::vector<std::vector<search::Neighbor>> per_shard(s);
  // Per-shard completion flags (uint8_t: pool tasks write them
  // concurrently, which vector<bool> cannot take). A shard is incomplete if
  // the deadline expired before its probe started (the probe loop check,
  // fault point faults::kShardProbe) or mid-probe inside MIH.
  std::vector<uint8_t> shard_complete(s, 1);
  stage.Restart();
  if (parallel_fanout && s > 1) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(s);
    for (int i = 0; i < s; ++i) {
      tasks.push_back([this, i, &code, k, &per_shard, &shard_complete,
                       &options] {
        if (options.deadline.Expired(faults::kShardProbe)) {
          shard_complete[i] = 0;
          return;
        }
        bool complete = true;
        per_shard[i] =
            index_.ShardTopK(i, code, k, options.deadline, &complete);
        shard_complete[i] = complete ? 1 : 0;
      });
    }
    pool_.RunAll(std::move(tasks));
  } else {
    for (int i = 0; i < s; ++i) {
      if (options.deadline.Expired(faults::kShardProbe)) {
        // Expired between shards: the remaining shards are skipped, so the
        // merge below degrades to "completed shards only".
        for (int j = i; j < s; ++j) shard_complete[j] = 0;
        break;
      }
      bool complete = true;
      per_shard[i] = index_.ShardTopK(i, code, k, options.deadline, &complete);
      shard_complete[i] = complete ? 1 : 0;
    }
  }
  stats_.Record(Stage::kProbe, stage.ElapsedMicros());

  stage.Restart();
  bool all_complete = true;
  for (int i = 0; i < s; ++i) all_complete &= shard_complete[i] != 0;
  if (all_complete) {
    result.neighbors = ShardedIndex::MergeTopK(per_shard, k);
  } else {
    result.complete = false;
    result.status = Status::DeadlineExceeded(
        "deadline expired mid-probe; " +
        std::string(options.allow_partial
                        ? "returning best-effort partial result"
                        : "partial results disallowed"));
    if (options.allow_partial) {
      // Still the k best of everything that was collected, in the same
      // (distance, id) order a complete query would use.
      result.neighbors = ShardedIndex::MergeTopK(per_shard, k);
    }
  }
  stats_.Record(Stage::kRank, stage.ElapsedMicros());
  stats_.Record(Stage::kTotal, total.ElapsedMicros());
  return result;
}

QueryResult QueryEngine::Query(const traj::Trajectory& query, int k,
                               const QueryOptions& options) {
  const Status admitted = admission_.Admit();
  if (!admitted.ok()) {
    QueryResult shed;
    shed.complete = false;
    shed.status = admitted;
    return shed;
  }
  QueryResult result = RunQuery(query, k, /*parallel_fanout=*/true, options);
  admission_.Release();
  return result;
}

std::vector<QueryResult> QueryEngine::QueryBatch(
    const std::vector<traj::Trajectory>& queries, int k,
    const QueryOptions& options) {
  std::vector<QueryResult> results(queries.size());
  // Admission runs at submission time on this thread, so under a full
  // queue the shed pattern is deterministic: the first `queue_depth`
  // arrivals are admitted, later ones shed (kReject) or wait here (kBlock,
  // which cannot deadlock — admitted tasks are already submitted and
  // release their slots as workers finish them). Tasks are therefore
  // submitted one by one instead of through the RunAll barrier.
  std::mutex mu;
  std::condition_variable all_done;
  int outstanding = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const Status admitted = admission_.Admit();
    if (!admitted.ok()) {
      results[i].complete = false;
      results[i].status = admitted;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      ++outstanding;
    }
    // Serial fan-out inside each task: a worker probing its own shards
    // cannot wait on the pool, so batches cannot deadlock and throughput
    // comes from query-level parallelism.
    pool_.Submit([this, &queries, &results, k, i, &options, &mu, &all_done,
                  &outstanding] {
      results[i] = RunQuery(queries[i], k, /*parallel_fanout=*/false, options);
      admission_.Release();
      std::lock_guard<std::mutex> lock(mu);
      if (--outstanding == 0) all_done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  all_done.wait(lock, [&outstanding] { return outstanding == 0; });
  return results;
}

}  // namespace traj2hash::serve
