#include "serve/engine.h"

#include <functional>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"

namespace traj2hash::serve {

QueryEngine::QueryEngine(const core::Traj2Hash* model,
                         const QueryEngineOptions& options)
    : model_(model),
      index_(options.num_shards, model != nullptr ? model->config().dim : 1,
             options.strategy, options.mih_substrings),
      pool_(options.num_threads) {
  T2H_CHECK(model != nullptr);
}

int QueryEngine::Insert(const traj::Trajectory& t) {
  std::vector<float> embedding = model_->Embed(t);
  search::Code code = search::PackSigns(embedding);
  return index_.Insert(std::move(code), std::move(embedding));
}

void QueryEngine::InsertAll(const std::vector<traj::Trajectory>& ts) {
  if (ts.empty()) return;
  // Encode in parallel (the dominant cost), insert sequentially so global
  // ids deterministically follow input order.
  std::vector<std::vector<float>> embeddings(ts.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(ts.size());
  for (size_t i = 0; i < ts.size(); ++i) {
    tasks.push_back(
        [this, &ts, &embeddings, i] { embeddings[i] = model_->Embed(ts[i]); });
  }
  pool_.RunAll(std::move(tasks));
  for (std::vector<float>& embedding : embeddings) {
    search::Code code = search::PackSigns(embedding);
    index_.Insert(std::move(code), std::move(embedding));
  }
}

QueryResult QueryEngine::RunQuery(const traj::Trajectory& query, int k,
                                  bool parallel_fanout) {
  T2H_CHECK_GE(k, 1);
  Stopwatch total;
  Stopwatch stage;
  const search::Code code = model_->HashCode(query);
  stats_.Record(Stage::kEncode, stage.ElapsedMicros());

  const int s = index_.num_shards();
  std::vector<std::vector<search::Neighbor>> per_shard(s);
  stage.Restart();
  if (parallel_fanout && s > 1) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(s);
    for (int i = 0; i < s; ++i) {
      tasks.push_back([this, i, &code, k, &per_shard] {
        per_shard[i] = index_.ShardTopK(i, code, k);
      });
    }
    pool_.RunAll(std::move(tasks));
  } else {
    for (int i = 0; i < s; ++i) per_shard[i] = index_.ShardTopK(i, code, k);
  }
  stats_.Record(Stage::kProbe, stage.ElapsedMicros());

  stage.Restart();
  QueryResult result;
  result.neighbors = ShardedIndex::MergeTopK(per_shard, k);
  stats_.Record(Stage::kRank, stage.ElapsedMicros());
  stats_.Record(Stage::kTotal, total.ElapsedMicros());
  return result;
}

QueryResult QueryEngine::Query(const traj::Trajectory& query, int k) {
  return RunQuery(query, k, /*parallel_fanout=*/true);
}

std::vector<QueryResult> QueryEngine::QueryBatch(
    const std::vector<traj::Trajectory>& queries, int k) {
  std::vector<QueryResult> results(queries.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    // Serial fan-out inside each task: a worker probing its own shards
    // cannot wait on the pool, so batches cannot deadlock and throughput
    // comes from query-level parallelism.
    tasks.push_back([this, &queries, &results, k, i] {
      results[i] = RunQuery(queries[i], k, /*parallel_fanout=*/false);
    });
  }
  pool_.RunAll(std::move(tasks));
  return results;
}

}  // namespace traj2hash::serve
