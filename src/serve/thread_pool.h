#ifndef TRAJ2HASH_SERVE_THREAD_POOL_H_
#define TRAJ2HASH_SERVE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace traj2hash::serve {

/// Fixed-size worker pool with a FIFO task queue, built on std::thread +
/// std::condition_variable only (no third-party dependencies). The pool is
/// the concurrency substrate of the serving subsystem: `QueryEngine` uses it
/// both to fan a single query out across shards and to run batched queries
/// side by side.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains every already-submitted task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task for execution on some worker. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Submits all `tasks` and blocks until every one of them has finished.
  /// Must not be called from inside a pool task: the caller would occupy a
  /// worker slot while waiting on workers, which deadlocks when the pool is
  /// fully occupied by such callers.
  void RunAll(std::vector<std::function<void()>> tasks);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Tasks submitted but not yet started (for observability; racy by nature).
  int queue_depth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace traj2hash::serve

#endif  // TRAJ2HASH_SERVE_THREAD_POOL_H_
