#ifndef TRAJ2HASH_SERVE_THREAD_POOL_H_
#define TRAJ2HASH_SERVE_THREAD_POOL_H_

#include "common/thread_pool.h"

namespace traj2hash::serve {

/// The pool now lives in common/ so the trainer and bulk encoders share the
/// implementation; this alias keeps the original serve-side spelling (and
/// every existing include) working unchanged.
using ThreadPool = ::traj2hash::ThreadPool;

}  // namespace traj2hash::serve

#endif  // TRAJ2HASH_SERVE_THREAD_POOL_H_
