#include "serve/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace traj2hash::serve {

LatencyHistogram::LatencyHistogram() : count_(0), sum_nanos_(0), max_nanos_(0) {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

int LatencyHistogram::BucketIndex(double micros) {
  if (!(micros > kMinMicros)) return 0;
  const int i =
      static_cast<int>(std::log(micros / kMinMicros) / std::log(kGrowth));
  return std::clamp(i, 0, kNumBuckets - 1);
}

double LatencyHistogram::BucketValue(int i) {
  // Geometric midpoint of [kMin*g^i, kMin*g^(i+1)).
  return kMinMicros * std::pow(kGrowth, i + 0.5);
}

void LatencyHistogram::Record(double micros) {
  if (micros < 0.0) micros = 0.0;
  buckets_[BucketIndex(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const auto nanos = static_cast<uint64_t>(micros * 1e3);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  uint64_t seen = max_nanos_.load(std::memory_order_relaxed);
  while (nanos > seen &&
         !max_nanos_.compare_exchange_weak(seen, nanos,
                                           std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Summary LatencyHistogram::Summarize() const {
  std::array<uint64_t, kNumBuckets> counts;
  uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  Summary out;
  out.count = total;
  if (total == 0) return out;
  // Mean/max come from the exact running sums, not the bucketed values.
  out.mean_us =
      static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) / 1e3 /
      static_cast<double>(total);
  out.max_us =
      static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) / 1e3;
  const auto percentile = [&](double q) {
    const auto target = static_cast<uint64_t>(std::ceil(q * total));
    uint64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      seen += counts[i];
      if (seen >= target) return BucketValue(i);
    }
    return BucketValue(kNumBuckets - 1);
  };
  out.p50_us = percentile(0.50);
  out.p95_us = percentile(0.95);
  out.p99_us = percentile(0.99);
  return out;
}

void LatencyHistogram::Reset() {
  // Exchange-based drain: each counter is atomically read-and-zeroed, so an
  // increment that raced in is either drained here or survives into the new
  // epoch — never lost and never double-counted. A single Record racing the
  // reset may land split across the epoch boundary (its bucket drained but
  // its sum retained, say), which transiently skews the post-reset mean by
  // at most that one sample — fine for monitoring.
  for (auto& b : buckets_) b.exchange(0, std::memory_order_relaxed);
  count_.exchange(0, std::memory_order_relaxed);
  sum_nanos_.exchange(0, std::memory_order_relaxed);
  max_nanos_.exchange(0, std::memory_order_relaxed);
}

OccupancyHistogram::OccupancyHistogram() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

void OccupancyHistogram::Record(int size) {
  size = std::clamp(size, 1, kMaxSize);
  counts_[size].fetch_add(1, std::memory_order_relaxed);
}

OccupancyHistogram::Summary OccupancyHistogram::Summarize() const {
  std::array<uint64_t, kMaxSize + 1> counts{};
  Summary out;
  for (int s = 1; s <= kMaxSize; ++s) {
    counts[s] = counts_[s].load(std::memory_order_relaxed);
    out.batches += counts[s];
    out.queries += counts[s] * static_cast<uint64_t>(s);
    if (counts[s] > 0) out.max = s;
  }
  if (out.batches == 0) return out;
  out.mean = static_cast<double>(out.queries) / static_cast<double>(out.batches);
  const auto percentile = [&](double q) {
    const auto target = static_cast<uint64_t>(std::ceil(q * out.batches));
    uint64_t seen = 0;
    for (int s = 1; s <= kMaxSize; ++s) {
      seen += counts[s];
      if (seen >= target) return s;
    }
    return kMaxSize;
  };
  out.p50 = percentile(0.50);
  out.p95 = percentile(0.95);
  return out;
}

void OccupancyHistogram::Reset() {
  for (auto& c : counts_) c.exchange(0, std::memory_order_relaxed);
}

std::string FrontendJson(const FrontendSnapshot& s) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"coalescing\": %s, \"caching\": %s, \"batches\": %llu, "
      "\"coalesced_queries\": %llu, \"batch_occupancy_mean\": %.3f, "
      "\"batch_occupancy_p50\": %d, \"batch_occupancy_p95\": %d, "
      "\"batch_occupancy_max\": %d, \"flushes_full\": %llu, "
      "\"flushes_deadline\": %llu, \"flushes_idle\": %llu, "
      "\"cache_lookups\": %llu, \"cache_hits\": %llu, "
      "\"cache_misses\": %llu, \"cache_stale\": %llu, "
      "\"flight_waits\": %llu, \"flight_served\": %llu, "
      "\"cache_insertions\": %llu, \"cache_evictions\": %llu, "
      "\"cache_bytes\": %llu, \"epoch\": %llu}",
      s.coalescing ? "true" : "false", s.caching ? "true" : "false",
      static_cast<unsigned long long>(s.occupancy.batches),
      static_cast<unsigned long long>(s.occupancy.queries), s.occupancy.mean,
      s.occupancy.p50, s.occupancy.p95, s.occupancy.max,
      static_cast<unsigned long long>(s.flushes_full),
      static_cast<unsigned long long>(s.flushes_deadline),
      static_cast<unsigned long long>(s.flushes_idle),
      static_cast<unsigned long long>(s.cache_lookups),
      static_cast<unsigned long long>(s.cache_hits),
      static_cast<unsigned long long>(s.cache_misses),
      static_cast<unsigned long long>(s.cache_stale),
      static_cast<unsigned long long>(s.flight_waits),
      static_cast<unsigned long long>(s.flight_served),
      static_cast<unsigned long long>(s.cache_insertions),
      static_cast<unsigned long long>(s.cache_evictions),
      static_cast<unsigned long long>(s.cache_bytes),
      static_cast<unsigned long long>(s.epoch));
  return buf;
}

std::string QuantJson(const QuantSnapshot& s) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"quantize\": %s, \"resident_bytes\": %llu, "
      "\"rerank_queries\": %llu, \"rerank_candidates\": %llu, "
      "\"rechecked\": %llu, \"band_violations\": %llu, "
      "\"requant_recheck_rate\": %.6f, \"band_width\": %.6f}",
      s.quantize ? "true" : "false",
      static_cast<unsigned long long>(s.resident_bytes),
      static_cast<unsigned long long>(s.rerank_queries),
      static_cast<unsigned long long>(s.rerank_candidates),
      static_cast<unsigned long long>(s.rechecked),
      static_cast<unsigned long long>(s.band_violations),
      s.requant_recheck_rate, s.band_width);
  return buf;
}

std::string StageName(Stage stage) {
  switch (stage) {
    case Stage::kEncode:
      return "encode";
    case Stage::kProbe:
      return "probe";
    case Stage::kRank:
      return "rank";
    case Stage::kTotal:
      return "total";
  }
  return "unknown";
}

ServeStats::Snapshot ServeStats::Summarize() const {
  Snapshot out;
  for (int i = 0; i < kNumStages; ++i) {
    out.stages[i] = histograms_[i].Summarize();
  }
  return out;
}

void ServeStats::Reset() {
  for (auto& h : histograms_) h.Reset();
}

std::string ServeStats::Snapshot::ToString() const {
  std::string out =
      "  stage      count     mean_us      p50_us      p95_us      p99_us\n";
  char line[160];
  for (int i = 0; i < kNumStages; ++i) {
    const LatencyHistogram::Summary& s = stages[i];
    std::snprintf(line, sizeof(line),
                  "  %-8s %8llu %11.1f %11.1f %11.1f %11.1f\n",
                  StageName(static_cast<Stage>(i)).c_str(),
                  static_cast<unsigned long long>(s.count), s.mean_us, s.p50_us,
                  s.p95_us, s.p99_us);
    out += line;
  }
  return out;
}

}  // namespace traj2hash::serve
