#include "serve/result_cache.h"

#include <chrono>
#include <cstring>
#include <utility>

namespace traj2hash::serve {

/// Shared state of one in-flight probe. Guarded by the cache mutex; the
/// shared_ptr keeps it alive for followers after the leader erased it from
/// the flight map.
struct ResultCache::Ticket::Flight {
  bool done = false;
  bool has_result = false;
  uint64_t epoch = 0;  ///< the (stable) epoch the result was computed at
  std::vector<search::Neighbor> result;
};

ResultCache::ResultCache(int capacity, size_t max_bytes)
    : capacity_(capacity), max_bytes_(max_bytes) {}

void ResultCache::EraseLocked(std::list<Entry>::iterator it) {
  bytes_ -= EntryBytes(it->key, it->result);
  index_.erase(it->key);
  lru_.erase(it);
}

bool ResultCache::LookupLocked(const std::string& key, uint64_t epoch,
                               std::vector<search::Neighbor>* out) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  if (it->second->epoch != epoch) {
    // The epoch is monotone, so a mismatched entry can never serve again:
    // drop it now rather than wait for LRU pressure. The caller decides
    // whether the drop is reported as `stale` (only when the lookup ends as
    // a miss, keeping stale a subset of misses).
    EraseLocked(it->second);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // touch
  *out = it->second->result;
  return true;
}

void ResultCache::InsertLocked(const std::string& key, uint64_t epoch,
                               const std::vector<search::Neighbor>& result) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= EntryBytes(it->second->key, it->second->result);
    it->second->epoch = epoch;
    // Exact-capacity copy: plain assignment would keep a larger old
    // allocation alive when the new result is smaller, silently drifting
    // the gauge from the true footprint.
    std::vector<search::Neighbor>(result).swap(it->second->result);
    bytes_ += EntryBytes(key, result);
    lru_.splice(lru_.begin(), lru_, it->second);
    insertions_.fetch_add(1, std::memory_order_relaxed);
  } else {
    lru_.push_front(Entry{key, epoch, result});
    index_[key] = lru_.begin();
    bytes_ += EntryBytes(key, result);
    insertions_.fetch_add(1, std::memory_order_relaxed);
  }
  // Evict the LRU tail until both bounds hold. The byte bound may evict the
  // entry just inserted (a single oversized entry): memory stays bounded
  // even when one geometry outweighs the whole budget.
  while (!lru_.empty() &&
         (static_cast<int>(lru_.size()) > capacity_ ||
          (max_bytes_ > 0 && bytes_ > max_bytes_))) {
    EraseLocked(std::prev(lru_.end()));
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool ResultCache::Lookup(const std::string& key, uint64_t epoch,
                         std::vector<search::Neighbor>* out) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const size_t before = lru_.size();
  if (LookupLocked(key, epoch, out)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (lru_.size() < before) stale_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void ResultCache::Insert(const std::string& key, uint64_t epoch_before,
                         uint64_t epoch_after,
                         const std::vector<search::Neighbor>& result) {
  if (!enabled()) return;
  if (epoch_before != epoch_after) return;  // a mutation raced the probe
  std::lock_guard<std::mutex> lock(mu_);
  InsertLocked(key, epoch_before, result);
}

ResultCache::Outcome ResultCache::Acquire(const std::string& key,
                                          uint64_t epoch,
                                          const Deadline& deadline,
                                          std::vector<search::Neighbor>* out,
                                          Ticket* ticket) {
  if (!enabled()) return Outcome::kMiss;
  std::unique_lock<std::mutex> lock(mu_);
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const size_t before = lru_.size();
  if (LookupLocked(key, epoch, out)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return Outcome::kHit;
  }
  const bool dropped_stale = lru_.size() < before;
  const auto miss = [&]() -> Outcome {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (dropped_stale) stale_.fetch_add(1, std::memory_order_relaxed);
    return Outcome::kMiss;
  };

  const auto it = flights_.find(key);
  if (it == flights_.end()) {
    // Leader: a miss that owns the probe and the duty to Publish/Abandon.
    auto flight = std::make_shared<Ticket::Flight>();
    flights_[key] = flight;
    ticket->flight_ = std::move(flight);
    ticket->key_ = key;
    miss();
    return Outcome::kLead;
  }

  // Follower: wait for the leader, but never past this query's deadline —
  // a stuck flight degrades to an ordinary miss, not a stall.
  flight_waits_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<Ticket::Flight> flight = it->second;
  while (!flight->done) {
    const auto cap =
        Deadline::Clock::now() + std::chrono::seconds(1);  // re-check period
    if (flight_done_.wait_until(lock, deadline.when_or(cap)) ==
            std::cv_status::timeout &&
        deadline.Expired()) {
      return miss();
    }
  }
  // The flight's result stands in for this query only when it is at least
  // as fresh as the follower's own admission epoch (the epoch is monotone,
  // so >= means "includes everything this query was admitted against").
  if (flight->has_result && flight->epoch >= epoch) {
    *out = flight->result;
    hits_.fetch_add(1, std::memory_order_relaxed);
    flight_served_.fetch_add(1, std::memory_order_relaxed);
    return Outcome::kHit;
  }
  return miss();
}

void ResultCache::Publish(Ticket* ticket, uint64_t epoch_before,
                          uint64_t epoch_after, bool complete,
                          const std::vector<search::Neighbor>& result) {
  if (ticket->flight_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  Ticket::Flight& flight = *ticket->flight_;
  flight.done = true;
  // The stable-epoch rule, shared with Insert: only a complete result whose
  // probe no mutation raced is a fact about one epoch.
  if (complete && epoch_before == epoch_after) {
    flight.has_result = true;
    flight.epoch = epoch_before;
    flight.result = result;
    InsertLocked(ticket->key_, epoch_before, result);
  }
  flights_.erase(ticket->key_);
  ticket->flight_.reset();
  flight_done_.notify_all();
}

void ResultCache::Abandon(Ticket* ticket) {
  if (ticket->flight_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  ticket->flight_->done = true;
  flights_.erase(ticket->key_);
  ticket->flight_.reset();
  flight_done_.notify_all();
}

ResultCache::Stats ResultCache::stats() const {
  Stats out;
  out.lookups = lookups_.load(std::memory_order_relaxed);
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.stale = stale_.load(std::memory_order_relaxed);
  out.flight_waits = flight_waits_.load(std::memory_order_relaxed);
  out.flight_served = flight_served_.load(std::memory_order_relaxed);
  out.insertions = insertions_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  return out;
}

int ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(lru_.size());
}

size_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

void ResultCache::AppendCanonicalKey(const traj::Trajectory& t,
                                     std::string* key) {
  AppendCanonicalKey(static_cast<int32_t>(t.points.size()), key);
  for (const traj::Point& p : t.points) {
    char buf[2 * sizeof(double)];
    std::memcpy(buf, &p.x, sizeof(double));
    std::memcpy(buf + sizeof(double), &p.y, sizeof(double));
    key->append(buf, sizeof(buf));
  }
}

void ResultCache::AppendCanonicalKey(int32_t v, std::string* key) {
  char buf[sizeof(int32_t)];
  std::memcpy(buf, &v, sizeof(v));
  key->append(buf, sizeof(buf));
}

void ResultCache::AppendCanonicalKey(uint8_t v, std::string* key) {
  key->push_back(static_cast<char>(v));
}

}  // namespace traj2hash::serve
