#ifndef TRAJ2HASH_SERVE_ENGINE_H_
#define TRAJ2HASH_SERVE_ENGINE_H_

#include <memory>
#include <vector>

#include "core/model.h"
#include "search/knn.h"
#include "search/strategy.h"
#include "serve/sharded_index.h"
#include "serve/stats.h"
#include "serve/thread_pool.h"
#include "traj/trajectory.h"

namespace traj2hash::serve {

struct QueryEngineOptions {
  int num_threads = 4;  ///< worker pool size
  int num_shards = 4;   ///< database partitions (fixed for the engine's life)
  /// Per-shard Hamming engine (DESIGN.md §9). All strategies return
  /// bit-identical results; kMih is the fast default, kRadius2 / kBrute are
  /// the reference oracles.
  search::SearchStrategy strategy = search::SearchStrategy::kMih;
  int mih_substrings = 0;  ///< MIH substring count (0 = ceil(B/16))
};

/// Result of one top-k query.
struct QueryResult {
  std::vector<search::Neighbor> neighbors;  ///< sorted by (distance, id)
};

/// Concurrent query-serving engine over a trained Traj2Hash model and a
/// sharded Hamming index. Each query runs as an instrumented three-stage
/// pipeline — encode (model hash), probe (per-shard Hamming-Hybrid top-k),
/// rank (deterministic merge) — with per-stage latency recorded into a
/// `ServeStats` that can be snapshot while serving.
///
/// Concurrency model: `Insert`, `Query` and `QueryBatch` are all safe to
/// call from any number of external threads at once. A single `Query` fans
/// its shard probes out across the worker pool; `QueryBatch` instead runs
/// one pool task per query (each probing its shards serially), which is the
/// throughput-optimal shape when queries outnumber workers. Model encoding
/// is read-only over the trained parameters, so it parallelises freely.
class QueryEngine {
 public:
  /// `model` must be trained (or at least constructed) and outlive the
  /// engine. The code width is taken from the model config (d_h = dim).
  QueryEngine(const core::Traj2Hash* model, const QueryEngineOptions& options);

  /// Encodes, hashes and stores one trajectory; returns its global id.
  /// Thread-safe against concurrent queries and inserts.
  int Insert(const traj::Trajectory& t);

  /// Bulk load: trajectories are encoded in parallel on the worker pool but
  /// inserted in order, so ids always equal the input positions (offset by
  /// the current size). Must not be called from inside a pool task.
  void InsertAll(const std::vector<traj::Trajectory>& ts);

  /// Single top-k query with parallel shard fan-out. Must not be called
  /// from inside a pool task (see ThreadPool::RunAll); external callers may
  /// overlap freely.
  QueryResult Query(const traj::Trajectory& query, int k);

  /// Batched top-k: one worker task per query, serial fan-out inside each.
  /// Results are positionally aligned with `queries`.
  std::vector<QueryResult> QueryBatch(
      const std::vector<traj::Trajectory>& queries, int k);

  /// Per-stage latency snapshot (thread-safe while serving).
  ServeStats::Snapshot stats() const { return stats_.Summarize(); }

  /// Clears stage statistics. Quiescent use only (no in-flight queries).
  void ResetStats() { stats_.Reset(); }

  const ShardedIndex& index() const { return index_; }
  int size() const { return index_.size(); }
  int num_threads() const { return pool_.num_threads(); }

 private:
  /// encode -> probe -> rank with per-stage timing. `parallel_fanout`
  /// selects pool fan-out (single queries) vs serial probes (batch tasks).
  QueryResult RunQuery(const traj::Trajectory& query, int k,
                       bool parallel_fanout);

  const core::Traj2Hash* model_;
  ShardedIndex index_;
  ThreadPool pool_;
  ServeStats stats_;
};

}  // namespace traj2hash::serve

#endif  // TRAJ2HASH_SERVE_ENGINE_H_
