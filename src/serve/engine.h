#ifndef TRAJ2HASH_SERVE_ENGINE_H_
#define TRAJ2HASH_SERVE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/model.h"
#include "search/knn.h"
#include "search/strategy.h"
#include "serve/admission.h"
#include "serve/coalescer.h"
#include "serve/result_cache.h"
#include "serve/sharded_index.h"
#include "serve/stats.h"
#include "serve/thread_pool.h"
#include "traj/trajectory.h"

namespace traj2hash::serve {

struct QueryEngineOptions {
  int num_threads = 4;  ///< worker pool size
  int num_shards = 4;   ///< database partitions (fixed for the engine's life)
  /// Per-shard Hamming engine (DESIGN.md §9). All strategies return
  /// bit-identical results; kMih is the fast default, kRadius2 / kBrute are
  /// the reference oracles.
  search::SearchStrategy strategy = search::SearchStrategy::kMih;
  int mih_substrings = 0;  ///< MIH substring count (0 = ceil(B/16))
  /// Admission control (DESIGN.md §11): at most this many queries in flight
  /// at once; extra arrivals are shed (kReject -> kUnavailable) or block
  /// the submitter (kBlock). 0 = unbounded, the historical behaviour.
  int queue_depth = 0;
  OverloadPolicy overload_policy = OverloadPolicy::kReject;
  /// Per-shard background-compaction trigger (ingest::LiveIndexOptions):
  /// rebuild a shard's base once this many rows are tombstoned or sitting in
  /// the delta AND they exceed `compact_ratio` of the shard's physical rows.
  int compact_min_ops = 64;
  double compact_ratio = 0.25;
  /// Query front-end (DESIGN.md §15). Coalescing groups concurrently
  /// admitted Query() calls into one EmbedBatch forward pass under a
  /// deadline-aware bounded wait; results stay bit-identical to the
  /// uncoalesced path. Off by default (the historical behaviour).
  bool enable_coalescing = false;
  int max_batch = 8;          ///< coalescer flush size
  int64_t max_wait_us = 200;  ///< coalescer bounded wait per batch
  /// Epoch-keyed result cache capacity (entries); 0 disables caching.
  /// Cached results are invalidated by the index mutation epoch, so churn
  /// can never serve stale neighbours.
  int cache_entries = 0;
  /// Result-cache byte budget (approximate, per-entry size accounted: key
  /// geometry + k neighbours + node overhead); 0 = unbounded. Applies on
  /// top of cache_entries, so long-geometry workloads cannot blow past the
  /// budget while staying under the entry count.
  size_t cache_max_bytes = 0;
  /// Quantized embedding store (DESIGN.md §17): embeddings live as per-dim
  /// int8 rows (~4× fewer resident bytes) and QueryRerank runs the
  /// two-stage quantized re-ranker, bit-identical to a float scan over the
  /// stored lattice. Hamming serving (Query/QueryBatch) is unaffected —
  /// codes are never quantized.
  bool quantize = false;
  /// Hamming candidates each shard re-ranks per QueryRerank;
  /// 0 = max(8·k, 64).
  int rerank_candidates = 0;
};

/// Per-query degradation knobs, threaded through Query/QueryBatch down to
/// the per-shard probe loop. Defaults (infinite deadline, partials allowed)
/// reproduce the historical behaviour bit-for-bit.
struct QueryOptions {
  /// Stop probing once this expires; MIH additionally checks it between
  /// radius rounds inside a shard. Infinite by default.
  Deadline deadline;
  /// On expiry: true returns the best-effort merge of the completed shard
  /// probes (sorted, possibly missing true neighbours); false returns an
  /// empty result. Either way `QueryResult::complete` is false and `status`
  /// is kDeadlineExceeded.
  bool allow_partial = true;
};

/// Result of one top-k query.
struct QueryResult {
  std::vector<search::Neighbor> neighbors;  ///< sorted by (distance, id)
  /// False when the result may be missing neighbours: the deadline expired
  /// mid-query (status kDeadlineExceeded) or admission shed the query
  /// before it ran (status kUnavailable, neighbors empty).
  bool complete = true;
  Status status;  ///< OK exactly when `complete`
};

/// Concurrent query-serving engine over a trained Traj2Hash model and a
/// sharded Hamming index. Each query runs as an instrumented three-stage
/// pipeline — encode (model hash), probe (per-shard Hamming-Hybrid top-k),
/// rank (deterministic merge) — with per-stage latency recorded into a
/// `ServeStats` that can be snapshot while serving.
///
/// Concurrency model: `Insert`, `Remove`, `Update`, `Query` and
/// `QueryBatch` are all safe to call from any number of external threads at
/// once; shard compactions triggered by mutations run as background pool
/// tasks without blocking readers. A single `Query` fans
/// its shard probes out across the worker pool; `QueryBatch` instead runs
/// one pool task per query (each probing its shards serially), which is the
/// throughput-optimal shape when queries outnumber workers. Model encoding
/// is read-only over the trained parameters, so it parallelises freely.
///
/// Robustness (DESIGN.md §11): queries carry an optional deadline and
/// degrade to explicit partial results instead of blocking; admission
/// control bounds in-flight queries; the encoded corpus can be checkpointed
/// to a crash-safe snapshot and restored on boot.
class QueryEngine {
 public:
  /// `model` must be trained (or at least constructed) and outlive the
  /// engine. The code width is taken from the model config (d_h = dim).
  QueryEngine(const core::Traj2Hash* model, const QueryEngineOptions& options);

  /// Encodes, hashes and stores one trajectory; returns its global id.
  /// Thread-safe against concurrent queries and mutations. Only fails when
  /// a WAL is attached (Recover) and the record cannot be made durable.
  Result<int> Insert(const traj::Trajectory& t);

  /// Bulk load: trajectories are encoded in parallel on the worker pool but
  /// inserted in order (one group commit under a WAL), so ids always equal
  /// the input positions (offset by the current size). Must not be called
  /// from inside a pool task.
  Status InsertAll(const std::vector<traj::Trajectory>& ts);

  /// Tombstones entry `id`; it stops appearing in query results
  /// immediately. kNotFound if `id` was never assigned or already removed.
  /// May schedule a background compaction of the affected shard.
  Status Remove(int id);

  /// Re-encodes `t` and replaces entry `id` in place (same global id).
  /// kNotFound if `id` is not live.
  Status Update(int id, const traj::Trajectory& t);

  /// Single top-k query with parallel shard fan-out. Must not be called
  /// from inside a pool task (see ThreadPool::RunAll); external callers may
  /// overlap freely. Subject to admission control; an admitted query with
  /// the default options always returns complete.
  QueryResult Query(const traj::Trajectory& query, int k,
                    const QueryOptions& options = QueryOptions());

  /// Batched top-k: the whole batch is encoded in one EmbedBatch forward
  /// pass (bit-identical to per-query encoding), then one worker task per
  /// query probes its shards serially. Results are positionally aligned
  /// with `queries`. Under a bounded kReject queue the shed pattern is
  /// deterministic — the first `queue_depth` queries are admitted, later
  /// ones shed with kUnavailable — and shed queries are never encoded.
  /// With a result cache, hits are answered inline without occupying a
  /// worker. Must not be called from inside a pool task (EmbedBatch uses
  /// ThreadPool::RunAll).
  std::vector<QueryResult> QueryBatch(
      const std::vector<traj::Trajectory>& queries, int k,
      const QueryOptions& options = QueryOptions());

  /// Euclidean re-rank query: embeds `query`, takes each shard's
  /// `rerank_candidates` Hamming-nearest entries and re-ranks them by
  /// embedding distance (ShardedIndex::QueryRerankTopK — the two-stage
  /// quantized re-ranker under `quantize`, the exact float scan otherwise).
  /// Runs to completion once admitted (no deadline degradation — the
  /// re-rank stage is bounded by rerank_candidates per shard); subject to
  /// admission control like Query.
  QueryResult QueryRerank(const traj::Trajectory& query, int k);

  /// Checkpoints the encoded corpus (codes + embeddings, crash-safely) /
  /// restores it without re-encoding. Load requires an empty engine; see
  /// ShardedIndex::{Save,Load}Snapshot for the format and failure modes.
  Status SaveSnapshot(const std::string& path) const {
    return index_.SaveSnapshot(path);
  }
  Status LoadSnapshot(const std::string& path) {
    return index_.LoadSnapshot(path);
  }

  /// Boot-time recovery (DESIGN.md §12): loads `snapshot_path` if that file
  /// exists, replays `wal_path`, and keeps the WAL attached — every later
  /// mutation is then logged + fsynced before it is acknowledged. Requires
  /// an empty engine.
  Status Recover(const std::string& snapshot_path, const std::string& wal_path) {
    return index_.Recover(snapshot_path, wal_path);
  }

  /// Durable checkpoint: snapshot + WAL reset as one cut (see
  /// ShardedIndex::Checkpoint). Without a WAL this is just SaveSnapshot.
  Status Checkpoint(const std::string& path) { return index_.Checkpoint(path); }

  /// Synchronously rebuilds every shard's strategy base from its delta +
  /// tombstones. Mutations normally compact in the background once the
  /// per-shard trigger fires; this forces the rebuild now — e.g. right
  /// after a bulk load, so queries hit the strategy engine instead of the
  /// delta's flat scan.
  void CompactAll() { index_.CompactAll(); }

  /// Per-stage latency snapshot (thread-safe while serving).
  ServeStats::Snapshot stats() const { return stats_.Summarize(); }

  /// Front-end (coalescer + result cache) counters, plus the current
  /// mutation epoch. Zeros where the corresponding feature is disabled.
  FrontendSnapshot frontend_stats() const;

  /// Quantized-store gauge + two-stage re-ranker counters (DESIGN.md §17).
  /// `resident_bytes` is meaningful in float mode too — it is the
  /// comparison baseline for the ~4× cut.
  QuantSnapshot quant_stats() const;

  /// Index mutation epoch (see ShardedIndex::mutation_epoch).
  uint64_t mutation_epoch() const { return index_.mutation_epoch(); }

  /// Clears stage statistics. Safe while serving (see
  /// LatencyHistogram::Reset); in-flight queries may contribute a few
  /// samples to the new epoch.
  void ResetStats() { stats_.Reset(); }

  const ShardedIndex& index() const { return index_; }
  /// Mutable index access for the replication layer: replica::Primary wraps
  /// this index so its WAL doubles as the shipping stream (DESIGN.md §13).
  /// Ordinary mutation must still go through Insert/Remove/Update above.
  ShardedIndex* mutable_index() { return &index_; }
  int size() const { return index_.size(); }
  /// Entries currently live (size() minus removals).
  int live_size() const { return index_.live_size(); }
  /// Physical tombstoned rows awaiting compaction.
  int tombstone_count() const { return index_.tombstone_count(); }
  int num_threads() const { return pool_.num_threads(); }
  /// Queries shed by admission control since construction.
  int64_t shed_count() const { return admission_.shed_count(); }

 private:
  /// encode -> probe -> rank with per-stage timing. `parallel_fanout`
  /// selects pool fan-out (single queries) vs serial probes (batch tasks).
  QueryResult RunQuery(const traj::Trajectory& query, int k,
                       bool parallel_fanout, const QueryOptions& options);

  /// probe -> rank over an already-encoded query, recording those two
  /// stages (the caller owns encode + total accounting).
  QueryResult ProbeAndRank(const search::Code& code, int k,
                           bool parallel_fanout, const QueryOptions& options);

  /// Query() body behind the front-end: cache acquire (single-flight) ->
  /// coalesced encode -> probe/rank -> publish. Only used when the
  /// coalescer or the cache is enabled.
  QueryResult RunFrontend(const traj::Trajectory& query, int k,
                          const QueryOptions& options);

  /// Canonical cache key: k + strategy + the query's geometry bytes.
  std::string CacheKey(const traj::Trajectory& query, int k) const;

  /// After a mutation: claims any shard whose compaction trigger fired and
  /// rebuilds it on the worker pool, off the mutator's thread. Queries keep
  /// serving the old base until the new one is installed.
  void MaybeScheduleCompaction();

  const core::Traj2Hash* model_;
  const QueryEngineOptions options_;
  ShardedIndex index_;
  ThreadPool pool_;
  AdmissionController admission_;
  ServeStats stats_;
  std::unique_ptr<BatchCoalescer> coalescer_;  // null = coalescing off
  std::unique_ptr<ResultCache> cache_;         // null = caching off
};

}  // namespace traj2hash::serve

#endif  // TRAJ2HASH_SERVE_ENGINE_H_
