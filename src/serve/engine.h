#ifndef TRAJ2HASH_SERVE_ENGINE_H_
#define TRAJ2HASH_SERVE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/model.h"
#include "search/knn.h"
#include "search/strategy.h"
#include "serve/admission.h"
#include "serve/sharded_index.h"
#include "serve/stats.h"
#include "serve/thread_pool.h"
#include "traj/trajectory.h"

namespace traj2hash::serve {

struct QueryEngineOptions {
  int num_threads = 4;  ///< worker pool size
  int num_shards = 4;   ///< database partitions (fixed for the engine's life)
  /// Per-shard Hamming engine (DESIGN.md §9). All strategies return
  /// bit-identical results; kMih is the fast default, kRadius2 / kBrute are
  /// the reference oracles.
  search::SearchStrategy strategy = search::SearchStrategy::kMih;
  int mih_substrings = 0;  ///< MIH substring count (0 = ceil(B/16))
  /// Admission control (DESIGN.md §11): at most this many queries in flight
  /// at once; extra arrivals are shed (kReject -> kUnavailable) or block
  /// the submitter (kBlock). 0 = unbounded, the historical behaviour.
  int queue_depth = 0;
  OverloadPolicy overload_policy = OverloadPolicy::kReject;
};

/// Per-query degradation knobs, threaded through Query/QueryBatch down to
/// the per-shard probe loop. Defaults (infinite deadline, partials allowed)
/// reproduce the historical behaviour bit-for-bit.
struct QueryOptions {
  /// Stop probing once this expires; MIH additionally checks it between
  /// radius rounds inside a shard. Infinite by default.
  Deadline deadline;
  /// On expiry: true returns the best-effort merge of the completed shard
  /// probes (sorted, possibly missing true neighbours); false returns an
  /// empty result. Either way `QueryResult::complete` is false and `status`
  /// is kDeadlineExceeded.
  bool allow_partial = true;
};

/// Result of one top-k query.
struct QueryResult {
  std::vector<search::Neighbor> neighbors;  ///< sorted by (distance, id)
  /// False when the result may be missing neighbours: the deadline expired
  /// mid-query (status kDeadlineExceeded) or admission shed the query
  /// before it ran (status kUnavailable, neighbors empty).
  bool complete = true;
  Status status;  ///< OK exactly when `complete`
};

/// Concurrent query-serving engine over a trained Traj2Hash model and a
/// sharded Hamming index. Each query runs as an instrumented three-stage
/// pipeline — encode (model hash), probe (per-shard Hamming-Hybrid top-k),
/// rank (deterministic merge) — with per-stage latency recorded into a
/// `ServeStats` that can be snapshot while serving.
///
/// Concurrency model: `Insert`, `Query` and `QueryBatch` are all safe to
/// call from any number of external threads at once. A single `Query` fans
/// its shard probes out across the worker pool; `QueryBatch` instead runs
/// one pool task per query (each probing its shards serially), which is the
/// throughput-optimal shape when queries outnumber workers. Model encoding
/// is read-only over the trained parameters, so it parallelises freely.
///
/// Robustness (DESIGN.md §11): queries carry an optional deadline and
/// degrade to explicit partial results instead of blocking; admission
/// control bounds in-flight queries; the encoded corpus can be checkpointed
/// to a crash-safe snapshot and restored on boot.
class QueryEngine {
 public:
  /// `model` must be trained (or at least constructed) and outlive the
  /// engine. The code width is taken from the model config (d_h = dim).
  QueryEngine(const core::Traj2Hash* model, const QueryEngineOptions& options);

  /// Encodes, hashes and stores one trajectory; returns its global id.
  /// Thread-safe against concurrent queries and inserts.
  int Insert(const traj::Trajectory& t);

  /// Bulk load: trajectories are encoded in parallel on the worker pool but
  /// inserted in order, so ids always equal the input positions (offset by
  /// the current size). Must not be called from inside a pool task.
  void InsertAll(const std::vector<traj::Trajectory>& ts);

  /// Single top-k query with parallel shard fan-out. Must not be called
  /// from inside a pool task (see ThreadPool::RunAll); external callers may
  /// overlap freely. Subject to admission control; an admitted query with
  /// the default options always returns complete.
  QueryResult Query(const traj::Trajectory& query, int k,
                    const QueryOptions& options = QueryOptions());

  /// Batched top-k: one worker task per query, serial fan-out inside each.
  /// Results are positionally aligned with `queries`. Admission is checked
  /// per query at submission time; shed queries get kUnavailable results
  /// without occupying a worker.
  std::vector<QueryResult> QueryBatch(
      const std::vector<traj::Trajectory>& queries, int k,
      const QueryOptions& options = QueryOptions());

  /// Checkpoints the encoded corpus (codes + embeddings, crash-safely) /
  /// restores it without re-encoding. Load requires an empty engine; see
  /// ShardedIndex::{Save,Load}Snapshot for the format and failure modes.
  Status SaveSnapshot(const std::string& path) const {
    return index_.SaveSnapshot(path);
  }
  Status LoadSnapshot(const std::string& path) {
    return index_.LoadSnapshot(path);
  }

  /// Per-stage latency snapshot (thread-safe while serving).
  ServeStats::Snapshot stats() const { return stats_.Summarize(); }

  /// Clears stage statistics. Quiescent use only (no in-flight queries).
  void ResetStats() { stats_.Reset(); }

  const ShardedIndex& index() const { return index_; }
  int size() const { return index_.size(); }
  int num_threads() const { return pool_.num_threads(); }
  /// Queries shed by admission control since construction.
  int64_t shed_count() const { return admission_.shed_count(); }

 private:
  /// encode -> probe -> rank with per-stage timing. `parallel_fanout`
  /// selects pool fan-out (single queries) vs serial probes (batch tasks).
  QueryResult RunQuery(const traj::Trajectory& query, int k,
                       bool parallel_fanout, const QueryOptions& options);

  const core::Traj2Hash* model_;
  ShardedIndex index_;
  ThreadPool pool_;
  AdmissionController admission_;
  ServeStats stats_;
};

}  // namespace traj2hash::serve

#endif  // TRAJ2HASH_SERVE_ENGINE_H_
