#ifndef TRAJ2HASH_SERVE_SHARDED_INDEX_H_
#define TRAJ2HASH_SERVE_SHARDED_INDEX_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "search/code.h"
#include "search/hamming_index.h"
#include "search/knn.h"
#include "search/mih.h"
#include "search/strategy.h"
#include "serve/thread_pool.h"

namespace traj2hash::serve {

/// Partitions a live code + embedding database across S shards, each owning
/// its own Hamming engine and embedding store behind a `std::shared_mutex`.
/// Queries take per-shard shared locks, so concurrent reads never block each
/// other; `Insert` takes one shard's exclusive lock only. Global ids are
/// assigned round-robin (`shard = id % S`), which makes a sequentially-filled
/// ShardedIndex return results bit-identical to a single index over the same
/// data, for any shard count — the merge ranks by the repo-wide
/// (distance, id) order (`search::NeighborLess`).
///
/// The per-shard engine is selected by `search::SearchStrategy`
/// (kMih by default; kRadius2 / kBrute kept as reference oracles). Every
/// strategy's per-shard top-k equals the shard's brute-force top-k — MIH is
/// exact by the floor(r/m) pruning bound, and Hamming-Hybrid either ranks a
/// candidate superset of the true top-k or itself degrades to brute force —
/// so the fan-out + merge result is strategy-independent and bit-identical
/// to a single index for any shard count.
class ShardedIndex {
 public:
  /// An empty index of `num_shards` shards for `num_bits`-bit codes.
  /// `mih_substrings` tunes the MIH substring count (0 = ceil(B/16)) and is
  /// ignored by the other strategies.
  ShardedIndex(int num_shards, int num_bits,
               search::SearchStrategy strategy = search::SearchStrategy::kMih,
               int mih_substrings = 0);

  /// Inserts one entry; returns its global id (dense, insertion-ordered).
  /// Thread-safe; concurrent inserts to different shards do not contend.
  /// `embedding` may be empty if only Hamming serving is needed.
  int Insert(search::Code code, std::vector<float> embedding);

  /// Fan-out top-k over all shards, merged deterministically by
  /// (distance, global id). With a `pool`, shard probes run as pool tasks
  /// (must not itself be called from inside that pool — see
  /// ThreadPool::RunAll); without one they run serially on the caller.
  std::vector<search::Neighbor> QueryTopK(const search::Code& query, int k,
                                          ThreadPool* pool = nullptr) const;

  /// Top-k of one shard with ids translated to global ids. Exposed so the
  /// engine can instrument the probe stage per shard.
  std::vector<search::Neighbor> ShardTopK(int shard,
                                          const search::Code& query,
                                          int k) const;

  /// Deadline-aware variant: the MIH strategy checks `deadline` between its
  /// radius rounds and degrades to a best-effort (still sorted) partial
  /// result, reported through `*complete`; the single-shot strategies
  /// (brute, radius2) run to completion once started. An infinite deadline
  /// makes this identical to the plain overload.
  std::vector<search::Neighbor> ShardTopK(int shard,
                                          const search::Code& query, int k,
                                          const Deadline& deadline,
                                          bool* complete) const;

  /// Serialises every entry (global id order, codes + embeddings) into a
  /// versioned, CRC32-checksummed snapshot written crash-safely (temp file +
  /// fsync + atomic rename): a crash or failure at any point leaves an
  /// existing snapshot at `path` untouched. Safe to call while serving; the
  /// snapshot captures the longest contiguous id prefix visible at entry.
  Status SaveSnapshot(const std::string& path) const;

  /// Rebuilds the index from a snapshot written by SaveSnapshot. The index
  /// must be empty (kFailedPrecondition otherwise); the shard count and
  /// strategy may differ from the writer's, because round-robin placement
  /// and the strategy-independent probe make results bit-identical either
  /// way. Truncated or bit-flipped files fail with kDataLoss, files of a
  /// different format version with kFailedPrecondition, and a num_bits
  /// mismatch with kInvalidArgument — in every case the index stays empty.
  Status LoadSnapshot(const std::string& path);

  /// Deterministic merge used by QueryTopK: the k smallest candidates of the
  /// union under (distance, id); duplicate-free inputs assumed (shards are
  /// disjoint).
  static std::vector<search::Neighbor> MergeTopK(
      const std::vector<std::vector<search::Neighbor>>& per_shard, int k);

  /// Copy of the stored embedding of `id` (empty if none was supplied).
  std::vector<float> EmbeddingOf(int id) const;

  /// Entries inserted so far (monotone; safe to read while serving).
  int size() const { return next_id_.load(std::memory_order_acquire); }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int num_bits() const { return num_bits_; }
  search::SearchStrategy strategy() const { return strategy_; }

 private:
  // Heap-allocated so shards never share a cache line through the vector and
  // the ShardedIndex stays movable in spirit (mutexes pin the Shard itself).
  // Exactly one engine pointer is live, matching the index's strategy:
  // `hybrid` serves kRadius2 and kBrute (it stores the packed codes the
  // brute scan needs), `mih` serves kMih.
  struct Shard {
    Shard(int num_bits, search::SearchStrategy strategy, int mih_substrings);
    mutable std::shared_mutex mu;
    std::unique_ptr<search::HammingIndex> hybrid;
    std::unique_ptr<search::MihIndex> mih;
    std::vector<int> global_ids;         // local id -> global id
    std::vector<std::vector<float>> embeddings;  // by local id
  };

  int ShardOf(int global_id) const {
    return global_id % static_cast<int>(shards_.size());
  }

  const int num_bits_;
  const search::SearchStrategy strategy_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int> next_id_{0};
};

}  // namespace traj2hash::serve

#endif  // TRAJ2HASH_SERVE_SHARDED_INDEX_H_
