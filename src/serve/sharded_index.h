#ifndef TRAJ2HASH_SERVE_SHARDED_INDEX_H_
#define TRAJ2HASH_SERVE_SHARDED_INDEX_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "ingest/live_index.h"
#include "ingest/wal.h"
#include "search/code.h"
#include "search/knn.h"
#include "search/strategy.h"
#include "serve/thread_pool.h"

namespace traj2hash::serve {

/// Partitions a live code + embedding database across S shards, each an
/// `ingest::LiveIndex` (immutable base + mutable delta + tombstones, its own
/// reader/writer lock). Queries fan out with per-shard shared locks, so
/// concurrent reads never block each other; mutations lock one shard
/// exclusively. Global ids are assigned round-robin (`shard = id % S`) and
/// never reused, which makes a sequentially-filled ShardedIndex return
/// results bit-identical to a single index over the same data, for any
/// shard count — the merge ranks by the repo-wide (distance, id) order
/// (`search::NeighborLess`).
///
/// The per-shard engine is selected by `search::SearchStrategy`
/// (kMih by default; kRadius2 / kBrute kept as reference oracles). Every
/// strategy's per-shard top-k equals the shard's brute-force top-k over its
/// live entries, so the fan-out + merge result is strategy-independent.
///
/// Durability (DESIGN.md §12): with a WAL attached (AttachWal / Recover),
/// every mutation is appended + fsynced to the log *before* it is applied
/// and acknowledged, under one commit mutex — so the log order equals the
/// apply order and a crash at any point loses no acknowledged mutation.
/// `Recover` = load snapshot (if present) + idempotently replay the whole
/// WAL; `Checkpoint` = snapshot + WAL reset under the commit mutex. Without
/// a WAL, mutations keep the historical lock-free-per-shard fast path.
class ShardedIndex {
 public:
  /// An empty index of `num_shards` shards for `num_bits`-bit codes.
  /// `mih_substrings` tunes the MIH substring count (0 = ceil(B/16)) and is
  /// ignored by the other strategies. `compact_min_ops`/`compact_ratio`
  /// set the per-shard compaction trigger (ingest::LiveIndexOptions).
  /// `quantize` stores embeddings as per-dim int8 rows (requires
  /// `embedding_dim` > 0; DESIGN.md §17) — queries through
  /// QueryRerankTopK stay bit-identical to a float scan over the stored
  /// lattice, and snapshots switch to the quantized v3 format.
  ShardedIndex(int num_shards, int num_bits,
               search::SearchStrategy strategy = search::SearchStrategy::kMih,
               int mih_substrings = 0, int compact_min_ops = 64,
               double compact_ratio = 0.25, bool quantize = false,
               int embedding_dim = 0);

  /// Inserts one entry; returns its global id (monotone, insertion-ordered).
  /// Thread-safe; without a WAL, concurrent inserts to different shards do
  /// not contend. With a WAL, fails (kIoError) when the record cannot be
  /// made durable — the entry is then not applied and no id is consumed,
  /// but the WAL is poisoned and needs a Recover before further mutations.
  /// `embedding` may be empty if only Hamming serving is needed.
  Result<int> Insert(search::Code code, std::vector<float> embedding);

  /// Group-commit bulk insert: ids are assigned sequentially from `size()`,
  /// all WAL records are appended under one fsync, then all entries are
  /// applied. Without a WAL this is a plain insert loop.
  Status InsertBatch(std::vector<search::Code> codes,
                     std::vector<std::vector<float>> embeddings);

  /// Tombstones a live entry, routed by global id. kNotFound if `id` was
  /// never assigned or is already removed.
  Status Remove(int id);

  /// Replaces a live entry's code + embedding in place (same global id).
  /// kNotFound if `id` is not live.
  Status Update(int id, search::Code code, std::vector<float> embedding);

  /// Fan-out top-k over all shards, merged deterministically by
  /// (distance, global id). With a `pool`, shard probes run as pool tasks
  /// (must not itself be called from inside that pool — see
  /// ThreadPool::RunAll); without one they run serially on the caller.
  std::vector<search::Neighbor> QueryTopK(const search::Code& query, int k,
                                          ThreadPool* pool = nullptr) const;

  /// Euclidean re-rank fan-out: each shard re-ranks its `num_candidates`
  /// (≥ k) Hamming-nearest live entries by embedding distance
  /// (ingest::LiveIndex::RerankTopK — the two-stage quantized re-ranker in
  /// quantize mode, the exact float scan otherwise), and the per-shard
  /// top-ks merge under (distance, global id). Entries without embeddings
  /// are skipped.
  std::vector<search::Neighbor> QueryRerankTopK(
      const search::Code& query, const std::vector<float>& query_embedding,
      int k, int num_candidates, ThreadPool* pool = nullptr) const;

  bool quantize() const { return quantize_; }
  int embedding_dim() const { return embedding_dim_; }

  /// Bytes resident for embedding storage, summed over shards (the gauge
  /// behind the quantized store's ~4× cut).
  size_t embedding_resident_bytes() const;

  /// Two-stage re-ranker counters, summed over shards.
  quant::RerankSnapshot rerank_stats() const;

  /// Top-k of one shard (global ids). Exposed so the engine can instrument
  /// the probe stage per shard.
  std::vector<search::Neighbor> ShardTopK(int shard,
                                          const search::Code& query,
                                          int k) const;

  /// Deadline-aware variant: the MIH strategy checks `deadline` between its
  /// radius rounds and degrades to a best-effort (still sorted) partial
  /// result, reported through `*complete`; the single-shot strategies
  /// (brute, radius2) run to completion once started. An infinite deadline
  /// makes this identical to the plain overload.
  std::vector<search::Neighbor> ShardTopK(int shard,
                                          const search::Code& query, int k,
                                          const Deadline& deadline,
                                          bool* complete) const;

  /// Serialises every live entry (global id order, explicit ids, codes +
  /// embeddings) into a versioned, CRC32-checksummed snapshot written
  /// crash-safely (temp file + fsync + atomic rename): a crash or failure
  /// at any point leaves an existing snapshot at `path` untouched. Removed
  /// ids appear as gaps below the stored next-id watermark. Safe to call
  /// while serving (each shard's contribution is internally consistent);
  /// for an exact point-in-time cut under concurrent durable mutations use
  /// Checkpoint.
  Status SaveSnapshot(const std::string& path) const;

  /// Rebuilds the index from a snapshot written by SaveSnapshot — this
  /// format (v2, explicit ids + tombstone gaps) or the legacy v1 (dense
  /// ids). The index must be empty (kFailedPrecondition otherwise); the
  /// shard count and strategy may differ from the writer's, because
  /// id-routed placement and the strategy-independent probe make results
  /// bit-identical either way. Truncated or bit-flipped files fail with
  /// kDataLoss, files of an unknown format version with
  /// kFailedPrecondition, and a num_bits mismatch with kInvalidArgument —
  /// in every case the index stays empty.
  Status LoadSnapshot(const std::string& path);

  /// Boot-time recovery: loads `snapshot_path` if the file exists (a
  /// missing snapshot is a cold start, any other load failure aborts the
  /// recovery), then opens `wal_path` (creating it, truncating a torn
  /// tail) and replays every record idempotently — upsert semantics make
  /// the result independent of which prefix the snapshot already contained.
  /// On success the WAL stays attached: all further mutations are durable.
  /// Requires an empty index with no WAL attached.
  Status Recover(const std::string& snapshot_path,
                 const std::string& wal_path);

  /// Attaches a WAL without a snapshot (fresh database). Equivalent to
  /// `Recover("", wal_path)`.
  Status AttachWal(const std::string& wal_path);

  /// Replication apply path (DESIGN.md §13): applies one WAL record shipped
  /// from a primary, with the same idempotent upsert / tolerant-remove
  /// semantics as boot-time replay. Refused (kFailedPrecondition) when this
  /// index has its own WAL attached — a replica must never re-log the
  /// primary's records, or a checkpoint race could fork the two histories.
  /// Thread-safe against concurrent queries; the caller (one ship loop per
  /// replica) serialises apply order.
  Status ApplyShipped(const ingest::WalRecord& record);

  /// Highest WAL sequence number committed (appended + fsynced + applied)
  /// so far; 0 without a WAL. Taken under the commit mutex, so it never
  /// reports a record that is still mid-commit — a replica caught up to
  /// this seq has applied every acknowledged mutation.
  uint64_t wal_last_seq() const;

  /// Durable checkpoint: under the commit mutex (no mutation can be mid-
  /// commit), saves a snapshot and then resets the WAL. A crash between the
  /// two steps is safe — recovery replays the whole WAL over the new
  /// snapshot, and replay is idempotent. Without a WAL this is just
  /// SaveSnapshot.
  Status Checkpoint(const std::string& path);

  /// Deterministic merge used by QueryTopK: the k smallest candidates of the
  /// union under (distance, id); duplicate-free inputs assumed (shards are
  /// disjoint).
  static std::vector<search::Neighbor> MergeTopK(
      const std::vector<std::vector<search::Neighbor>>& per_shard, int k);

  /// Copy of the stored embedding of `id` (empty if none was supplied or
  /// the entry is no longer live). `id` must have been assigned.
  std::vector<float> EmbeddingOf(int id) const;

  /// Ids assigned so far (monotone watermark; includes removed entries).
  int size() const { return next_id_.load(std::memory_order_acquire); }
  /// Entries currently live (size() minus removals and burned ids).
  int live_size() const;
  /// Physical tombstoned rows awaiting compaction, summed over shards.
  int tombstone_count() const;
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int num_bits() const { return num_bits_; }
  search::SearchStrategy strategy() const { return strategy_; }
  bool wal_attached() const { return wal_ != nullptr; }
  /// Completed compactions, summed over shards.
  int compactions_run() const;

  /// Monotonic mutation epoch, summed over shards. Each shard's counter
  /// only grows, so the sum is monotone and two equal reads bracketing a
  /// probe prove every shard was untouched in between — the invariant the
  /// result cache's stable-epoch insertion rule relies on (DESIGN.md §15).
  /// Relaxed per-shard reads; see ingest::LiveIndex::mutation_epoch.
  uint64_t mutation_epoch() const {
    uint64_t sum = 0;
    for (const auto& shard : shards_) sum += shard->mutation_epoch();
    return sum;
  }

  /// Background-compaction hooks (see ingest::LiveIndex): a mutator's owner
  /// claims a shard whose trigger fired, then runs the rebuild off-thread.
  bool ClaimCompaction(int shard) {
    return shards_[shard]->ClaimCompaction();
  }
  void RunClaimedCompaction(int shard) {
    shards_[shard]->RunClaimedCompaction();
  }
  /// Synchronously compacts every shard (tests/tools).
  void CompactAll();

  /// Direct access to one shard (tests).
  const ingest::LiveIndex& shard(int i) const { return *shards_[i]; }

 private:
  int ShardOf(int global_id) const {
    return global_id % static_cast<int>(shards_.size());
  }

  /// Applies one replayed WAL record (idempotent: upsert / tolerant
  /// remove), advancing the id watermark past every mentioned id.
  /// kDataLoss on structurally impossible records (negative id, wrong code
  /// width).
  Status ApplyReplayed(const ingest::WalRecord& record);

  /// Appends `records` to the WAL and fsyncs once. Caller holds wal_mu_.
  Status CommitLocked(std::vector<ingest::WalRecord> records);

  const int num_bits_;
  const search::SearchStrategy strategy_;
  const bool quantize_;
  const int embedding_dim_;
  // Heap-allocated so the LiveIndex's internal mutex never moves.
  std::vector<std::unique_ptr<ingest::LiveIndex>> shards_;
  std::atomic<int> next_id_{0};

  /// Commit mutex: held across WAL append + fsync + in-memory apply of
  /// every durable mutation, and across Checkpoint's snapshot + reset — so
  /// the WAL order equals the apply order and a checkpoint can never drop a
  /// racing acknowledged write. Queries never take it.
  mutable std::mutex wal_mu_;
  std::unique_ptr<ingest::Wal> wal_;
};

}  // namespace traj2hash::serve

#endif  // TRAJ2HASH_SERVE_SHARDED_INDEX_H_
