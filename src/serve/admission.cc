#include "serve/admission.h"

namespace traj2hash::serve {

const char* OverloadPolicyName(OverloadPolicy policy) {
  return policy == OverloadPolicy::kReject ? "reject" : "block";
}

Result<OverloadPolicy> ParseOverloadPolicy(const std::string& name) {
  if (name == "reject") return OverloadPolicy::kReject;
  if (name == "block") return OverloadPolicy::kBlock;
  return Status::InvalidArgument("unknown overload policy '" + name +
                                 "' (expected reject|block)");
}

Status AdmissionController::Admit() {
  std::unique_lock<std::mutex> lock(mu_);
  if (queue_depth_ <= 0) {
    ++in_flight_;
    return Status::Ok();
  }
  if (in_flight_ < queue_depth_) {
    ++in_flight_;
    return Status::Ok();
  }
  if (policy_ == OverloadPolicy::kReject) {
    ++shed_;
    return Status::Unavailable(
        "query shed: " + std::to_string(in_flight_) +
        " queries in flight at queue depth " + std::to_string(queue_depth_));
  }
  slot_freed_.wait(lock, [this] { return in_flight_ < queue_depth_; });
  ++in_flight_;
  return Status::Ok();
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
  }
  slot_freed_.notify_one();
}

int AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

int64_t AdmissionController::shed_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

}  // namespace traj2hash::serve
