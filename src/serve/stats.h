#ifndef TRAJ2HASH_SERVE_STATS_H_
#define TRAJ2HASH_SERVE_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace traj2hash::serve {

/// Lock-free fixed-bucket latency histogram. `Record` is wait-free (one
/// atomic increment per call plus two atomic adds for the running sum/max),
/// so it can sit on the serving hot path; `Summarize` reads a consistent
/// enough snapshot while other threads keep recording (each bucket is read
/// atomically; cross-bucket skew of a few in-flight samples is acceptable
/// for monitoring).
///
/// Buckets are geometric: bucket i covers
/// [kMinMicros * kGrowth^i, kMinMicros * kGrowth^(i+1)), spanning 0.1 us to
/// ~4 minutes at ~8% relative resolution — the shape of every quantile is
/// preserved without per-sample allocation or locking.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 288;
  static constexpr double kMinMicros = 0.1;
  static constexpr double kGrowth = 1.08;

  LatencyHistogram();

  /// Adds one latency observation (in microseconds). Thread-safe.
  void Record(double micros);

  struct Summary {
    uint64_t count = 0;
    double mean_us = 0.0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;
  };

  /// Snapshot of the distribution so far. Thread-safe against Record.
  Summary Summarize() const;

  /// Zeroes every counter with an atomic exchange-based drain. Safe against
  /// concurrent Record: no increment is lost or double-counted, though a
  /// single racing sample may land split across the reset (one counter
  /// drained, another retained) — a one-sample skew, acceptable for
  /// monitoring.
  void Reset();

 private:
  static int BucketIndex(double micros);
  /// Representative latency of bucket `i` (geometric midpoint of its bounds).
  static double BucketValue(int i);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
  std::atomic<uint64_t> count_;
  std::atomic<uint64_t> sum_nanos_;
  std::atomic<uint64_t> max_nanos_;
};

/// Exact small-integer histogram for coalescer batch occupancy (how many
/// queries shared one EmbedBatch call). Latency buckets are the wrong tool
/// here: their geometric midpoints would report a size-1 batch as ~0.99,
/// which matters when the bench gates on "occupancy p50 > 1". Sizes are
/// clamped to kMaxSize; Record is wait-free like LatencyHistogram.
class OccupancyHistogram {
 public:
  static constexpr int kMaxSize = 64;

  OccupancyHistogram();

  /// Adds one batch of `size` queries. Thread-safe; clamped to [1, kMaxSize].
  void Record(int size);

  struct Summary {
    uint64_t batches = 0;  ///< EmbedBatch flushes observed
    uint64_t queries = 0;  ///< queries served through those flushes
    double mean = 0.0;     ///< queries / batches
    int p50 = 0;           ///< exact percentile over batch sizes
    int p95 = 0;
    int max = 0;
  };

  /// Thread-safe against Record (same consistency caveats as
  /// LatencyHistogram::Summarize).
  Summary Summarize() const;

  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kMaxSize + 1> counts_;  // [1..kMaxSize]
};

/// One consistent-enough view of the query front-end (DESIGN.md §15):
/// coalescer flush behaviour plus result-cache effectiveness, as surfaced
/// by QueryEngine::frontend_stats() and serve-bench --stats-json.
struct FrontendSnapshot {
  bool coalescing = false;  ///< coalescer enabled on the engine
  bool caching = false;     ///< result cache enabled on the engine

  OccupancyHistogram::Summary occupancy;  ///< queries per EmbedBatch flush
  uint64_t flushes_full = 0;      ///< batches flushed at max_batch
  uint64_t flushes_deadline = 0;  ///< flushed by the bounded-wait timer
  uint64_t flushes_idle = 0;      ///< flushed because no more arrivals exist

  uint64_t cache_lookups = 0;  ///< hits + misses (stale counts as a miss)
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_stale = 0;  ///< misses whose entry died of epoch advance
  uint64_t flight_waits = 0;   ///< followers that waited on a single-flight
  uint64_t flight_served = 0;  ///< followers served by the flight's result
  uint64_t cache_insertions = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_bytes = 0;  ///< approximate bytes of live entries (gauge)

  uint64_t epoch = 0;  ///< index mutation epoch at snapshot time
};

/// The `frontend` object of serve-bench --stats-json, as one JSON string
/// (no trailing newline). Kept next to the snapshot so the schema test and
/// the CLI can never drift apart.
std::string FrontendJson(const FrontendSnapshot& s);

/// One view of the quantized embedding store and its two-stage re-ranker
/// (DESIGN.md §17), surfaced by QueryEngine::quant_stats() and the
/// serve-bench `quant` stats-json block. `resident_bytes` is meaningful in
/// either mode (it is what proves the ~4× cut); the re-rank counters stay
/// zero until QueryRerank traffic arrives.
struct QuantSnapshot {
  bool quantize = false;        ///< int8 store enabled on the engine
  uint64_t resident_bytes = 0;  ///< embedding-store resident bytes (gauge)
  uint64_t rerank_queries = 0;  ///< re-rank queries served
  uint64_t rerank_candidates = 0;  ///< stage-1 rows scanned quantized
  uint64_t rechecked = 0;          ///< rows float re-checked (stage 2)
  uint64_t band_violations = 0;    ///< band-honored check failures (fallback)
  /// Fraction of stage-1 candidates that needed the exact float re-check
  /// after requantization onto the query lattice.
  double requant_recheck_rate = 0.0;
  double band_width = 0.0;  ///< mean re-check band width (distance units)
};

/// The `quant` object of serve-bench --stats-json, one JSON string (no
/// trailing newline) — kept beside the snapshot like FrontendJson.
std::string QuantJson(const QuantSnapshot& s);

/// The instrumented stages of one query through the engine
/// (encode -> probe -> rank), plus the end-to-end total.
enum class Stage { kEncode = 0, kProbe = 1, kRank = 2, kTotal = 3 };

constexpr int kNumStages = 4;

/// Human-readable stage name ("encode", "probe", "rank", "total").
std::string StageName(Stage stage);

/// Per-stage latency statistics of a running engine. All methods are
/// thread-safe, including Reset (see LatencyHistogram::Reset for the
/// one-racing-sample caveat).
class ServeStats {
 public:
  void Record(Stage stage, double micros) {
    histograms_[static_cast<int>(stage)].Record(micros);
  }

  struct Snapshot {
    std::array<LatencyHistogram::Summary, kNumStages> stages;

    const LatencyHistogram::Summary& Of(Stage stage) const {
      return stages[static_cast<int>(stage)];
    }
    /// Multi-line "stage count mean p50 p95 p99" table for logs/benches.
    std::string ToString() const;
  };

  Snapshot Summarize() const;
  void Reset();

 private:
  std::array<LatencyHistogram, kNumStages> histograms_;
};

}  // namespace traj2hash::serve

#endif  // TRAJ2HASH_SERVE_STATS_H_
