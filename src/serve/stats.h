#ifndef TRAJ2HASH_SERVE_STATS_H_
#define TRAJ2HASH_SERVE_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace traj2hash::serve {

/// Lock-free fixed-bucket latency histogram. `Record` is wait-free (one
/// atomic increment per call plus two atomic adds for the running sum/max),
/// so it can sit on the serving hot path; `Summarize` reads a consistent
/// enough snapshot while other threads keep recording (each bucket is read
/// atomically; cross-bucket skew of a few in-flight samples is acceptable
/// for monitoring).
///
/// Buckets are geometric: bucket i covers
/// [kMinMicros * kGrowth^i, kMinMicros * kGrowth^(i+1)), spanning 0.1 us to
/// ~4 minutes at ~8% relative resolution — the shape of every quantile is
/// preserved without per-sample allocation or locking.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 288;
  static constexpr double kMinMicros = 0.1;
  static constexpr double kGrowth = 1.08;

  LatencyHistogram();

  /// Adds one latency observation (in microseconds). Thread-safe.
  void Record(double micros);

  struct Summary {
    uint64_t count = 0;
    double mean_us = 0.0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;
  };

  /// Snapshot of the distribution so far. Thread-safe against Record.
  Summary Summarize() const;

  /// Zeroes every counter with an atomic exchange-based drain. Safe against
  /// concurrent Record: no increment is lost or double-counted, though a
  /// single racing sample may land split across the reset (one counter
  /// drained, another retained) — a one-sample skew, acceptable for
  /// monitoring.
  void Reset();

 private:
  static int BucketIndex(double micros);
  /// Representative latency of bucket `i` (geometric midpoint of its bounds).
  static double BucketValue(int i);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
  std::atomic<uint64_t> count_;
  std::atomic<uint64_t> sum_nanos_;
  std::atomic<uint64_t> max_nanos_;
};

/// The instrumented stages of one query through the engine
/// (encode -> probe -> rank), plus the end-to-end total.
enum class Stage { kEncode = 0, kProbe = 1, kRank = 2, kTotal = 3 };

constexpr int kNumStages = 4;

/// Human-readable stage name ("encode", "probe", "rank", "total").
std::string StageName(Stage stage);

/// Per-stage latency statistics of a running engine. All methods are
/// thread-safe, including Reset (see LatencyHistogram::Reset for the
/// one-racing-sample caveat).
class ServeStats {
 public:
  void Record(Stage stage, double micros) {
    histograms_[static_cast<int>(stage)].Record(micros);
  }

  struct Snapshot {
    std::array<LatencyHistogram::Summary, kNumStages> stages;

    const LatencyHistogram::Summary& Of(Stage stage) const {
      return stages[static_cast<int>(stage)];
    }
    /// Multi-line "stage count mean p50 p95 p99" table for logs/benches.
    std::string ToString() const;
  };

  Snapshot Summarize() const;
  void Reset();

 private:
  std::array<LatencyHistogram, kNumStages> histograms_;
};

}  // namespace traj2hash::serve

#endif  // TRAJ2HASH_SERVE_STATS_H_
