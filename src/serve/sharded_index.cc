#include "serve/sharded_index.h"

#include <algorithm>
#include <functional>
#include <mutex>

#include "common/check.h"

namespace traj2hash::serve {

ShardedIndex::Shard::Shard(int num_bits, search::SearchStrategy strategy,
                           int mih_substrings) {
  if (strategy == search::SearchStrategy::kMih) {
    mih = std::make_unique<search::MihIndex>(num_bits, mih_substrings);
  } else {
    hybrid = std::make_unique<search::HammingIndex>(num_bits);
  }
}

ShardedIndex::ShardedIndex(int num_shards, int num_bits,
                           search::SearchStrategy strategy,
                           int mih_substrings)
    : num_bits_(num_bits), strategy_(strategy) {
  T2H_CHECK_GE(num_shards, 1);
  T2H_CHECK_GT(num_bits, 0);
  shards_.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(
        std::make_unique<Shard>(num_bits, strategy, mih_substrings));
  }
}

int ShardedIndex::Insert(search::Code code, std::vector<float> embedding) {
  T2H_CHECK_EQ(code.num_bits, num_bits_);
  const int id = next_id_.fetch_add(1, std::memory_order_acq_rel);
  Shard& shard = *shards_[ShardOf(id)];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  // Concurrent inserts can reach the same shard out of global-id order, so
  // the local->global mapping is stored, not derived from the local id.
  if (shard.mih != nullptr) {
    shard.mih->Insert(code);
  } else {
    shard.hybrid->Insert(std::move(code));
  }
  shard.global_ids.push_back(id);
  shard.embeddings.push_back(std::move(embedding));
  return id;
}

std::vector<search::Neighbor> ShardedIndex::ShardTopK(
    int shard_id, const search::Code& query, int k) const {
  T2H_CHECK(shard_id >= 0 && shard_id < num_shards());
  const Shard& shard = *shards_[shard_id];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  std::vector<search::Neighbor> local;
  switch (strategy_) {
    case search::SearchStrategy::kBrute:
      local = shard.hybrid->BruteForceTopK(query, k);
      break;
    case search::SearchStrategy::kRadius2:
      local = shard.hybrid->HybridTopK(query, k);
      break;
    case search::SearchStrategy::kMih:
      local = shard.mih->TopK(query, k);
      break;
  }
  for (search::Neighbor& n : local) n.index = shard.global_ids[n.index];
  return local;
}

std::vector<search::Neighbor> ShardedIndex::MergeTopK(
    const std::vector<std::vector<search::Neighbor>>& per_shard, int k) {
  std::vector<search::Neighbor> all;
  size_t total = 0;
  for (const auto& list : per_shard) total += list.size();
  all.reserve(total);
  for (const auto& list : per_shard) {
    all.insert(all.end(), list.begin(), list.end());
  }
  std::sort(all.begin(), all.end(), search::NeighborLess);
  if (static_cast<int>(all.size()) > k) all.resize(k);
  return all;
}

std::vector<search::Neighbor> ShardedIndex::QueryTopK(
    const search::Code& query, int k, ThreadPool* pool) const {
  T2H_CHECK_GE(k, 1);
  const int s = num_shards();
  std::vector<std::vector<search::Neighbor>> per_shard(s);
  if (pool == nullptr || s == 1) {
    for (int i = 0; i < s; ++i) per_shard[i] = ShardTopK(i, query, k);
  } else {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(s);
    for (int i = 0; i < s; ++i) {
      tasks.push_back(
          [this, i, &query, k, &per_shard] {
            per_shard[i] = ShardTopK(i, query, k);
          });
    }
    pool->RunAll(std::move(tasks));
  }
  return MergeTopK(per_shard, k);
}

std::vector<float> ShardedIndex::EmbeddingOf(int id) const {
  T2H_CHECK(id >= 0 && id < size());
  const Shard& shard = *shards_[ShardOf(id)];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  // Linear scan of the local id map: shards stay small relative to the
  // database, and this accessor is off the serving hot path.
  for (size_t local = 0; local < shard.global_ids.size(); ++local) {
    if (shard.global_ids[local] == id) return shard.embeddings[local];
  }
  T2H_CHECK_MSG(false, "id assigned but not yet visible in its shard");
  return {};
}

}  // namespace traj2hash::serve
