#include "serve/sharded_index.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <mutex>

#include "common/check.h"
#include "common/crc32.h"
#include "common/file_util.h"
#include "common/serialize.h"

namespace traj2hash::serve {

ShardedIndex::Shard::Shard(int num_bits, search::SearchStrategy strategy,
                           int mih_substrings) {
  if (strategy == search::SearchStrategy::kMih) {
    mih = std::make_unique<search::MihIndex>(num_bits, mih_substrings);
  } else {
    hybrid = std::make_unique<search::HammingIndex>(num_bits);
  }
}

ShardedIndex::ShardedIndex(int num_shards, int num_bits,
                           search::SearchStrategy strategy,
                           int mih_substrings)
    : num_bits_(num_bits), strategy_(strategy) {
  T2H_CHECK_GE(num_shards, 1);
  T2H_CHECK_GT(num_bits, 0);
  shards_.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(
        std::make_unique<Shard>(num_bits, strategy, mih_substrings));
  }
}

int ShardedIndex::Insert(search::Code code, std::vector<float> embedding) {
  T2H_CHECK_EQ(code.num_bits, num_bits_);
  const int id = next_id_.fetch_add(1, std::memory_order_acq_rel);
  Shard& shard = *shards_[ShardOf(id)];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  // Concurrent inserts can reach the same shard out of global-id order, so
  // the local->global mapping is stored, not derived from the local id.
  if (shard.mih != nullptr) {
    shard.mih->Insert(code);
  } else {
    shard.hybrid->Insert(std::move(code));
  }
  shard.global_ids.push_back(id);
  shard.embeddings.push_back(std::move(embedding));
  return id;
}

std::vector<search::Neighbor> ShardedIndex::ShardTopK(
    int shard_id, const search::Code& query, int k) const {
  bool complete = true;
  return ShardTopK(shard_id, query, k, Deadline::Infinite(), &complete);
}

std::vector<search::Neighbor> ShardedIndex::ShardTopK(
    int shard_id, const search::Code& query, int k, const Deadline& deadline,
    bool* complete) const {
  T2H_CHECK(shard_id >= 0 && shard_id < num_shards());
  *complete = true;
  const Shard& shard = *shards_[shard_id];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  std::vector<search::Neighbor> local;
  switch (strategy_) {
    case search::SearchStrategy::kBrute:
      local = shard.hybrid->BruteForceTopK(query, k);
      break;
    case search::SearchStrategy::kRadius2:
      local = shard.hybrid->HybridTopK(query, k);
      break;
    case search::SearchStrategy::kMih:
      local = shard.mih->TopK(query, k, deadline, complete);
      break;
  }
  for (search::Neighbor& n : local) n.index = shard.global_ids[n.index];
  return local;
}

std::vector<search::Neighbor> ShardedIndex::MergeTopK(
    const std::vector<std::vector<search::Neighbor>>& per_shard, int k) {
  std::vector<search::Neighbor> all;
  size_t total = 0;
  for (const auto& list : per_shard) total += list.size();
  all.reserve(total);
  for (const auto& list : per_shard) {
    all.insert(all.end(), list.begin(), list.end());
  }
  std::sort(all.begin(), all.end(), search::NeighborLess);
  if (static_cast<int>(all.size()) > k) all.resize(k);
  return all;
}

std::vector<search::Neighbor> ShardedIndex::QueryTopK(
    const search::Code& query, int k, ThreadPool* pool) const {
  T2H_CHECK_GE(k, 1);
  const int s = num_shards();
  std::vector<std::vector<search::Neighbor>> per_shard(s);
  if (pool == nullptr || s == 1) {
    for (int i = 0; i < s; ++i) per_shard[i] = ShardTopK(i, query, k);
  } else {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(s);
    for (int i = 0; i < s; ++i) {
      tasks.push_back(
          [this, i, &query, k, &per_shard] {
            per_shard[i] = ShardTopK(i, query, k);
          });
    }
    pool->RunAll(std::move(tasks));
  }
  return MergeTopK(per_shard, k);
}

namespace {

// Snapshot file layout (all integers little-endian, the only platform this
// project targets):
//   u64 magic "T2HSNAP1" | u32 version | u32 crc32 of everything after it |
//   u32 num_bits | u64 count | count entries of
//   { u32 embedding_len, words_per_code u64 code words, embedding floats }.
// Entries appear in global-id order, so reloading through Insert reproduces
// the exact id assignment for any shard count.
constexpr uint64_t kSnapshotMagic = 0x31'50'41'4E'53'48'32'54ull;  // T2HSNAP1
constexpr uint32_t kSnapshotVersion = 1;

}  // namespace

Status ShardedIndex::SaveSnapshot(const std::string& path) const {
  // Capture the size first, then copy entries out under per-shard shared
  // locks. Inserts racing this snapshot may leave the newest ids not yet
  // visible in their shard, so the snapshot keeps the longest contiguous id
  // prefix — a consistent database some moment ago.
  const int snap_size = size();
  struct Entry {
    std::vector<uint64_t> words;
    std::vector<float> embedding;
    bool present = false;
  };
  std::vector<Entry> entries(snap_size);
  const int words_per_code = (num_bits_ + 63) / 64;
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    const search::PackedCodes& codes =
        shard.mih != nullptr ? shard.mih->codes() : shard.hybrid->codes();
    for (size_t local = 0; local < shard.global_ids.size(); ++local) {
      const int gid = shard.global_ids[local];
      if (gid >= snap_size) continue;
      Entry& e = entries[gid];
      const uint64_t* row = codes.row(static_cast<int>(local));
      e.words.assign(row, row + words_per_code);
      e.embedding = shard.embeddings[local];
      e.present = true;
    }
  }
  uint64_t count = 0;
  while (count < entries.size() && entries[count].present) ++count;

  std::string buffer;
  AppendPod(buffer, kSnapshotMagic);
  AppendPod(buffer, kSnapshotVersion);
  const size_t crc_pos = buffer.size();
  AppendPod(buffer, uint32_t{0});  // CRC placeholder, patched below
  AppendPod(buffer, static_cast<uint32_t>(num_bits_));
  AppendPod(buffer, count);
  for (uint64_t gid = 0; gid < count; ++gid) {
    const Entry& e = entries[gid];
    AppendPod(buffer, static_cast<uint32_t>(e.embedding.size()));
    buffer.append(reinterpret_cast<const char*>(e.words.data()),
                  e.words.size() * sizeof(uint64_t));
    buffer.append(reinterpret_cast<const char*>(e.embedding.data()),
                  e.embedding.size() * sizeof(float));
  }
  const uint32_t crc = Crc32(buffer.data() + crc_pos + sizeof(uint32_t),
                             buffer.size() - crc_pos - sizeof(uint32_t));
  std::memcpy(buffer.data() + crc_pos, &crc, sizeof(crc));
  return AtomicWriteFile(path, buffer);
}

Status ShardedIndex::LoadSnapshot(const std::string& path) {
  if (size() != 0) {
    return Status::FailedPrecondition(
        "LoadSnapshot requires an empty index (current size " +
        std::to_string(size()) + ")");
  }
  Result<std::string> read = ReadFileToString(path);
  if (!read.ok()) return read.status();
  const std::string& buffer = read.value();

  constexpr size_t kHeaderEnd =
      sizeof(kSnapshotMagic) + sizeof(kSnapshotVersion) + sizeof(uint32_t);
  PayloadReader header(buffer, 0);
  const auto magic = header.Read<uint64_t>();
  const auto version = header.Read<uint32_t>();
  const auto stored_crc = header.Read<uint32_t>();
  if (!header.ok() || magic != kSnapshotMagic) {
    return Status::InvalidArgument("not a traj2hash snapshot file: " + path);
  }
  if (version != kSnapshotVersion) {
    return Status::FailedPrecondition(
        "snapshot " + path + " has format version " +
        std::to_string(version) + ", this build reads version " +
        std::to_string(kSnapshotVersion));
  }
  const uint32_t actual_crc =
      Crc32(buffer.data() + kHeaderEnd, buffer.size() - kHeaderEnd);
  if (actual_crc != stored_crc) {
    return Status::DataLoss("snapshot checksum mismatch (torn write or "
                            "bit-flip corruption): " + path);
  }

  PayloadReader reader(buffer, kHeaderEnd);
  const auto num_bits = reader.Read<uint32_t>();
  const auto count = reader.Read<uint64_t>();
  if (reader.ok() && static_cast<int>(num_bits) != num_bits_) {
    return Status::InvalidArgument(
        "snapshot " + path + " stores " + std::to_string(num_bits) +
        "-bit codes, index expects " + std::to_string(num_bits_));
  }
  const int words_per_code = (num_bits_ + 63) / 64;
  std::vector<std::pair<search::Code, std::vector<float>>> loaded;
  if (reader.ok()) loaded.reserve(count);
  for (uint64_t gid = 0; reader.ok() && gid < count; ++gid) {
    const auto embedding_len = reader.Read<uint32_t>();
    search::Code code;
    code.num_bits = num_bits_;
    code.words.resize(words_per_code);
    reader.ReadBytes(code.words.data(), words_per_code * sizeof(uint64_t));
    std::vector<float> embedding(embedding_len);
    reader.ReadBytes(embedding.data(), embedding_len * sizeof(float));
    if (reader.ok()) loaded.emplace_back(std::move(code), std::move(embedding));
  }
  // The CRC already vouches for the bytes, so any parse overrun means the
  // writer and reader disagree structurally — surface it as data loss too
  // rather than loading a prefix. The index is only mutated after this
  // point, so every failure path leaves it empty.
  if (!reader.at_end()) {
    return Status::DataLoss("snapshot payload is malformed: " + path);
  }
  for (auto& [code, embedding] : loaded) {
    Insert(std::move(code), std::move(embedding));
  }
  return Status::Ok();
}

std::vector<float> ShardedIndex::EmbeddingOf(int id) const {
  T2H_CHECK(id >= 0 && id < size());
  const Shard& shard = *shards_[ShardOf(id)];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  // Linear scan of the local id map: shards stay small relative to the
  // database, and this accessor is off the serving hot path.
  for (size_t local = 0; local < shard.global_ids.size(); ++local) {
    if (shard.global_ids[local] == id) return shard.embeddings[local];
  }
  T2H_CHECK_MSG(false, "id assigned but not yet visible in its shard");
  return {};
}

}  // namespace traj2hash::serve
