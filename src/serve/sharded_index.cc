#include "serve/sharded_index.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <utility>

#include "common/check.h"
#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/serialize.h"

namespace traj2hash::serve {

ShardedIndex::ShardedIndex(int num_shards, int num_bits,
                           search::SearchStrategy strategy, int mih_substrings,
                           int compact_min_ops, double compact_ratio,
                           bool quantize, int embedding_dim)
    : num_bits_(num_bits),
      strategy_(strategy),
      quantize_(quantize),
      embedding_dim_(embedding_dim) {
  T2H_CHECK_GE(num_shards, 1);
  T2H_CHECK_GT(num_bits, 0);
  ingest::LiveIndexOptions options;
  options.num_bits = num_bits;
  options.strategy = strategy;
  options.mih_substrings = mih_substrings;
  options.compact_min_ops = compact_min_ops;
  options.compact_ratio = compact_ratio;
  options.quantize = quantize;
  options.embedding_dim = embedding_dim;
  shards_.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<ingest::LiveIndex>(options));
  }
}

Status ShardedIndex::CommitLocked(std::vector<ingest::WalRecord> records) {
  for (ingest::WalRecord& record : records) {
    const Status appended = wal_->Append(std::move(record));
    if (!appended.ok()) return appended;
  }
  // Group commit: one durability barrier for the whole batch.
  return wal_->Sync();
}

Result<int> ShardedIndex::Insert(search::Code code,
                                 std::vector<float> embedding) {
  T2H_CHECK_EQ(code.num_bits, num_bits_);
  if (wal_ == nullptr) {
    // Historical fast path: inserts to different shards never contend.
    const int id = next_id_.fetch_add(1, std::memory_order_acq_rel);
    const Status applied =
        shards_[ShardOf(id)]->Insert(id, std::move(code),
                                     std::move(embedding));
    T2H_CHECK_MSG(applied.ok(), "fresh global ids cannot collide");
    return id;
  }
  std::lock_guard<std::mutex> lock(wal_mu_);
  const int id = next_id_.load(std::memory_order_acquire);
  ingest::WalRecord record;
  record.type = ingest::WalRecordType::kInsert;
  record.id = id;
  record.code = code;
  record.embedding = embedding;
  std::vector<ingest::WalRecord> batch;
  batch.push_back(std::move(record));
  const Status committed = CommitLocked(std::move(batch));
  // Not durable => not applied and the id was not consumed: the index is
  // exactly as if the call never happened (though the WAL needs a reopen).
  if (!committed.ok()) return committed;
  next_id_.store(id + 1, std::memory_order_release);
  if (FaultInjector::Fire(faults::kWalApply)) {
    return Status::Internal(
        "injected crash between WAL append and index apply");
  }
  const Status applied =
      shards_[ShardOf(id)]->Insert(id, std::move(code), std::move(embedding));
  T2H_CHECK_MSG(applied.ok(), "fresh global ids cannot collide");
  return id;
}

Status ShardedIndex::InsertBatch(std::vector<search::Code> codes,
                                 std::vector<std::vector<float>> embeddings) {
  T2H_CHECK_EQ(codes.size(), embeddings.size());
  if (codes.empty()) return Status::Ok();
  for (const search::Code& code : codes) {
    T2H_CHECK_EQ(code.num_bits, num_bits_);
  }
  if (wal_ == nullptr) {
    for (size_t i = 0; i < codes.size(); ++i) {
      const Result<int> inserted =
          Insert(std::move(codes[i]), std::move(embeddings[i]));
      T2H_CHECK(inserted.ok());
    }
    return Status::Ok();
  }
  std::lock_guard<std::mutex> lock(wal_mu_);
  const int first = next_id_.load(std::memory_order_acquire);
  std::vector<ingest::WalRecord> batch;
  batch.reserve(codes.size());
  for (size_t i = 0; i < codes.size(); ++i) {
    ingest::WalRecord record;
    record.type = ingest::WalRecordType::kInsert;
    record.id = first + static_cast<int>(i);
    record.code = codes[i];
    record.embedding = embeddings[i];
    batch.push_back(std::move(record));
  }
  const Status committed = CommitLocked(std::move(batch));
  if (!committed.ok()) return committed;
  next_id_.store(first + static_cast<int>(codes.size()),
                 std::memory_order_release);
  if (FaultInjector::Fire(faults::kWalApply)) {
    return Status::Internal(
        "injected crash between WAL append and index apply");
  }
  for (size_t i = 0; i < codes.size(); ++i) {
    const int id = first + static_cast<int>(i);
    const Status applied = shards_[ShardOf(id)]->Insert(
        id, std::move(codes[i]), std::move(embeddings[i]));
    T2H_CHECK_MSG(applied.ok(), "fresh global ids cannot collide");
  }
  return Status::Ok();
}

Status ShardedIndex::Remove(int id) {
  if (id < 0 || id >= size()) {
    return Status::NotFound("id " + std::to_string(id) +
                            " was never assigned");
  }
  if (wal_ == nullptr) return shards_[ShardOf(id)]->Remove(id);
  std::lock_guard<std::mutex> lock(wal_mu_);
  // Liveness is checked before logging so a no-op remove never reaches the
  // log (replay would otherwise tombstone an id a racing recovery inserted).
  if (!shards_[ShardOf(id)]->Contains(id)) {
    return Status::NotFound("id " + std::to_string(id) + " is not live");
  }
  ingest::WalRecord record;
  record.type = ingest::WalRecordType::kRemove;
  record.id = id;
  std::vector<ingest::WalRecord> batch;
  batch.push_back(std::move(record));
  const Status committed = CommitLocked(std::move(batch));
  if (!committed.ok()) return committed;
  if (FaultInjector::Fire(faults::kWalApply)) {
    return Status::Internal(
        "injected crash between WAL append and index apply");
  }
  const Status applied = shards_[ShardOf(id)]->Remove(id);
  T2H_CHECK_MSG(applied.ok(), "liveness was checked under the commit mutex");
  return Status::Ok();
}

Status ShardedIndex::Update(int id, search::Code code,
                            std::vector<float> embedding) {
  T2H_CHECK_EQ(code.num_bits, num_bits_);
  if (id < 0 || id >= size()) {
    return Status::NotFound("id " + std::to_string(id) +
                            " was never assigned");
  }
  if (wal_ == nullptr) {
    return shards_[ShardOf(id)]->Update(id, std::move(code),
                                        std::move(embedding));
  }
  std::lock_guard<std::mutex> lock(wal_mu_);
  if (!shards_[ShardOf(id)]->Contains(id)) {
    return Status::NotFound("id " + std::to_string(id) + " is not live");
  }
  ingest::WalRecord record;
  record.type = ingest::WalRecordType::kUpdate;
  record.id = id;
  record.code = code;
  record.embedding = embedding;
  std::vector<ingest::WalRecord> batch;
  batch.push_back(std::move(record));
  const Status committed = CommitLocked(std::move(batch));
  if (!committed.ok()) return committed;
  if (FaultInjector::Fire(faults::kWalApply)) {
    return Status::Internal(
        "injected crash between WAL append and index apply");
  }
  const Status applied = shards_[ShardOf(id)]->Update(id, std::move(code),
                                                      std::move(embedding));
  T2H_CHECK_MSG(applied.ok(), "liveness was checked under the commit mutex");
  return Status::Ok();
}

std::vector<search::Neighbor> ShardedIndex::ShardTopK(
    int shard_id, const search::Code& query, int k) const {
  bool complete = true;
  return ShardTopK(shard_id, query, k, Deadline::Infinite(), &complete);
}

std::vector<search::Neighbor> ShardedIndex::ShardTopK(
    int shard_id, const search::Code& query, int k, const Deadline& deadline,
    bool* complete) const {
  T2H_CHECK(shard_id >= 0 && shard_id < num_shards());
  *complete = true;
  return shards_[shard_id]->TopK(query, k, deadline, complete);
}

std::vector<search::Neighbor> ShardedIndex::MergeTopK(
    const std::vector<std::vector<search::Neighbor>>& per_shard, int k) {
  std::vector<search::Neighbor> all;
  size_t total = 0;
  for (const auto& list : per_shard) total += list.size();
  all.reserve(total);
  for (const auto& list : per_shard) {
    all.insert(all.end(), list.begin(), list.end());
  }
  std::sort(all.begin(), all.end(), search::NeighborLess);
  if (static_cast<int>(all.size()) > k) all.resize(k);
  return all;
}

std::vector<search::Neighbor> ShardedIndex::QueryTopK(
    const search::Code& query, int k, ThreadPool* pool) const {
  T2H_CHECK_GE(k, 1);
  const int s = num_shards();
  std::vector<std::vector<search::Neighbor>> per_shard(s);
  if (pool == nullptr || s == 1) {
    for (int i = 0; i < s; ++i) per_shard[i] = ShardTopK(i, query, k);
  } else {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(s);
    for (int i = 0; i < s; ++i) {
      tasks.push_back(
          [this, i, &query, k, &per_shard] {
            per_shard[i] = ShardTopK(i, query, k);
          });
    }
    pool->RunAll(std::move(tasks));
  }
  return MergeTopK(per_shard, k);
}

std::vector<search::Neighbor> ShardedIndex::QueryRerankTopK(
    const search::Code& query, const std::vector<float>& query_embedding,
    int k, int num_candidates, ThreadPool* pool) const {
  T2H_CHECK_GE(k, 1);
  const int s = num_shards();
  std::vector<std::vector<search::Neighbor>> per_shard(s);
  const auto probe = [&](int i) {
    per_shard[i] =
        shards_[i]->RerankTopK(query, query_embedding, k, num_candidates);
  };
  if (pool == nullptr || s == 1) {
    for (int i = 0; i < s; ++i) probe(i);
  } else {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(s);
    for (int i = 0; i < s; ++i) {
      tasks.push_back([&probe, i] { probe(i); });
    }
    pool->RunAll(std::move(tasks));
  }
  return MergeTopK(per_shard, k);
}

size_t ShardedIndex::embedding_resident_bytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->embedding_resident_bytes();
  }
  return total;
}

quant::RerankSnapshot ShardedIndex::rerank_stats() const {
  quant::RerankSnapshot sum;
  for (const auto& shard : shards_) {
    const quant::RerankSnapshot s = shard->rerank_stats();
    sum.queries += s.queries;
    sum.candidates += s.candidates;
    sum.rechecked += s.rechecked;
    sum.band_violations += s.band_violations;
    sum.banded_queries += s.banded_queries;
    sum.band_width_sum += s.band_width_sum;
  }
  return sum;
}

namespace {

// Snapshot file layout (all integers little-endian, the only platform this
// project targets):
//   u64 magic "T2HSNAP1" | u32 version | u32 crc32 of everything after it |
//   version 3 (quantized payload, written by quantize-mode indexes;
//     DESIGN.md §17): u32 num_bits | u64 next_id | u32 dim |
//     dim f32 scales | dim f32 zero-points | u64 count |
//     count entries of { u64 global_id, u8 has_embedding,
//                        words_per_code u64 code words,
//                        dim int8 values when has_embedding } in ascending
//     global-id order. The writer requantizes every embedding under the ONE
//     global param set stored in the header (per-shard params differ); the
//     loader dequantizes back to floats and feeds the normal insert path,
//     so either mode can read it. dim = 0 when no entry carries an
//     embedding (then no params and no per-entry values are stored).
//   version 2 (current float format): u32 num_bits | u64 next_id |
//     u64 count | count entries of { u64 global_id, u32 embedding_len,
//                        words_per_code u64 code words, embedding floats }
//     in ascending global-id order. Ids in [0, next_id) that are absent are
//     tombstones — removed (or never-applied) entries stay removed across a
//     reload, and next_id keeps new inserts from reusing their ids.
//   version 1 (legacy, read-only): u32 num_bits | u64 count | count entries
//     without the id field; ids are dense 0..count-1.
constexpr uint64_t kSnapshotMagic = 0x31'50'41'4E'53'48'32'54ull;  // T2HSNAP1
constexpr uint32_t kSnapshotVersionQuantized = 3;
constexpr uint32_t kSnapshotVersion = 2;
constexpr uint32_t kSnapshotVersionLegacy = 1;

}  // namespace

Status ShardedIndex::SaveSnapshot(const std::string& path) const {
  // Each shard's contribution is captured under its own lock, so every
  // entry is internally consistent; Checkpoint holds the commit mutex for a
  // point-in-time cut across shards.
  const uint64_t watermark = static_cast<uint64_t>(size());
  std::vector<ingest::LiveIndex::Entry> entries;
  for (const std::unique_ptr<ingest::LiveIndex>& shard : shards_) {
    std::vector<ingest::LiveIndex::Entry> part = shard->SnapshotEntries();
    entries.insert(entries.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
  }
  std::sort(entries.begin(), entries.end(),
            [](const ingest::LiveIndex::Entry& a,
               const ingest::LiveIndex::Entry& b) { return a.id < b.id; });
  uint64_t next_id = watermark;
  if (!entries.empty()) {
    next_id = std::max(next_id,
                       static_cast<uint64_t>(entries.back().id) + 1);
  }

  std::string buffer;
  AppendPod(buffer, kSnapshotMagic);
  AppendPod(buffer,
            quantize_ ? kSnapshotVersionQuantized : kSnapshotVersion);
  const size_t crc_pos = buffer.size();
  AppendPod(buffer, uint32_t{0});  // CRC placeholder, patched below
  AppendPod(buffer, static_cast<uint32_t>(num_bits_));
  AppendPod(buffer, next_id);
  if (quantize_) {
    // One GLOBAL param set over every embedding-bearing entry: the shards'
    // own params differ (each calibrated from its own rows), so the writer
    // requantizes the dequantized lattice values onto a shared lattice.
    quant::ParamsBuilder builder(embedding_dim_);
    for (const ingest::LiveIndex::Entry& e : entries) {
      if (static_cast<int>(e.embedding.size()) != embedding_dim_) continue;
      T2H_CHECK(builder.Add(e.embedding.data()).ok());
    }
    quant::QuantizationParams params;
    uint32_t dim = 0;
    if (builder.rows_seen() > 0) {
      auto built = builder.Build();
      T2H_CHECK(built.ok());
      params = std::move(built.value());
      dim = static_cast<uint32_t>(embedding_dim_);
    }
    AppendPod(buffer, dim);
    buffer.append(reinterpret_cast<const char*>(params.scale.data()),
                  params.scale.size() * sizeof(float));
    buffer.append(reinterpret_cast<const char*>(params.zero_point.data()),
                  params.zero_point.size() * sizeof(float));
    AppendPod(buffer, static_cast<uint64_t>(entries.size()));
    std::vector<int8_t> qrow(embedding_dim_);
    for (const ingest::LiveIndex::Entry& e : entries) {
      AppendPod(buffer, static_cast<uint64_t>(e.id));
      const bool has =
          dim > 0 && static_cast<int>(e.embedding.size()) == embedding_dim_;
      AppendPod(buffer, static_cast<uint8_t>(has ? 1 : 0));
      buffer.append(reinterpret_cast<const char*>(e.code.words.data()),
                    e.code.words.size() * sizeof(uint64_t));
      if (has) {
        T2H_CHECK(params.QuantizeRow(e.embedding.data(), qrow.data()).ok());
        buffer.append(reinterpret_cast<const char*>(qrow.data()),
                      qrow.size() * sizeof(int8_t));
      }
    }
  } else {
    AppendPod(buffer, static_cast<uint64_t>(entries.size()));
    for (const ingest::LiveIndex::Entry& e : entries) {
      AppendPod(buffer, static_cast<uint64_t>(e.id));
      AppendPod(buffer, static_cast<uint32_t>(e.embedding.size()));
      buffer.append(reinterpret_cast<const char*>(e.code.words.data()),
                    e.code.words.size() * sizeof(uint64_t));
      buffer.append(reinterpret_cast<const char*>(e.embedding.data()),
                    e.embedding.size() * sizeof(float));
    }
  }
  const uint32_t crc = Crc32(buffer.data() + crc_pos + sizeof(uint32_t),
                             buffer.size() - crc_pos - sizeof(uint32_t));
  std::memcpy(buffer.data() + crc_pos, &crc, sizeof(crc));
  return AtomicWriteFile(path, buffer);
}

Status ShardedIndex::LoadSnapshot(const std::string& path) {
  if (size() != 0) {
    return Status::FailedPrecondition(
        "LoadSnapshot requires an empty index (current size " +
        std::to_string(size()) + ")");
  }
  Result<std::string> read = ReadFileToString(path);
  if (!read.ok()) return read.status();
  const std::string& buffer = read.value();

  constexpr size_t kHeaderEnd =
      sizeof(kSnapshotMagic) + sizeof(uint32_t) + sizeof(uint32_t);
  PayloadReader header(buffer, 0);
  const auto magic = header.Read<uint64_t>();
  const auto version = header.Read<uint32_t>();
  const auto stored_crc = header.Read<uint32_t>();
  if (!header.ok() || magic != kSnapshotMagic) {
    return Status::InvalidArgument("not a traj2hash snapshot file: " + path);
  }
  if (version != kSnapshotVersion && version != kSnapshotVersionLegacy &&
      version != kSnapshotVersionQuantized) {
    return Status::FailedPrecondition(
        "snapshot " + path + " has format version " +
        std::to_string(version) + ", this build reads versions " +
        std::to_string(kSnapshotVersionLegacy) + " through " +
        std::to_string(kSnapshotVersionQuantized));
  }
  const uint32_t actual_crc =
      Crc32(buffer.data() + kHeaderEnd, buffer.size() - kHeaderEnd);
  if (actual_crc != stored_crc) {
    return Status::DataLoss("snapshot checksum mismatch (torn write or "
                            "bit-flip corruption): " + path);
  }

  PayloadReader reader(buffer, kHeaderEnd);
  const auto num_bits = reader.Read<uint32_t>();
  const uint64_t next_id =
      version != kSnapshotVersionLegacy ? reader.Read<uint64_t>() : 0;
  // Version 3: the global quantization params the payload rows were written
  // under; the entries are dequantized right here and flow through the
  // normal float insert path (which re-quantizes per shard when this index
  // runs in quantize mode).
  quant::QuantizationParams v3_params;
  uint32_t v3_dim = 0;
  if (version == kSnapshotVersionQuantized) {
    v3_dim = reader.Read<uint32_t>();
    v3_params.scale.resize(v3_dim);
    v3_params.zero_point.resize(v3_dim);
    reader.ReadBytes(v3_params.scale.data(), v3_dim * sizeof(float));
    reader.ReadBytes(v3_params.zero_point.data(), v3_dim * sizeof(float));
  }
  const auto count = reader.Read<uint64_t>();
  if (reader.ok() && static_cast<int>(num_bits) != num_bits_) {
    return Status::InvalidArgument(
        "snapshot " + path + " stores " + std::to_string(num_bits) +
        "-bit codes, index expects " + std::to_string(num_bits_));
  }
  const int words_per_code = (num_bits_ + 63) / 64;
  struct Loaded {
    int id;
    search::Code code;
    std::vector<float> embedding;
  };
  std::vector<Loaded> loaded;
  if (reader.ok()) loaded.reserve(count);
  int64_t previous_id = -1;
  std::vector<int8_t> qrow(v3_dim);
  for (uint64_t i = 0; reader.ok() && i < count; ++i) {
    Loaded entry;
    entry.id = version != kSnapshotVersionLegacy
                   ? static_cast<int>(reader.Read<uint64_t>())
                   : static_cast<int>(i);
    if (version == kSnapshotVersionQuantized) {
      const auto has = reader.Read<uint8_t>();
      entry.code.num_bits = num_bits_;
      entry.code.words.resize(words_per_code);
      reader.ReadBytes(entry.code.words.data(),
                       words_per_code * sizeof(uint64_t));
      if (has != 0) {
        reader.ReadBytes(qrow.data(), v3_dim * sizeof(int8_t));
        entry.embedding.resize(v3_dim);
        if (reader.ok()) {
          v3_params.DequantizeRow(qrow.data(), entry.embedding.data());
        }
      }
    } else {
      const auto embedding_len = reader.Read<uint32_t>();
      entry.code.num_bits = num_bits_;
      entry.code.words.resize(words_per_code);
      reader.ReadBytes(entry.code.words.data(),
                       words_per_code * sizeof(uint64_t));
      entry.embedding.resize(embedding_len);
      reader.ReadBytes(entry.embedding.data(), embedding_len * sizeof(float));
    }
    if (!reader.ok()) break;
    // The CRC vouches for the bytes, so structurally impossible ids mean
    // writer/reader disagreement: surface as data loss, load nothing.
    if (entry.id <= previous_id ||
        (version != kSnapshotVersionLegacy &&
         static_cast<uint64_t>(entry.id) >= next_id)) {
      return Status::DataLoss("snapshot ids are not ascending below the "
                              "next-id watermark: " + path);
    }
    previous_id = entry.id;
    loaded.push_back(std::move(entry));
  }
  if (!reader.at_end()) {
    return Status::DataLoss("snapshot payload is malformed: " + path);
  }
  // The index is only mutated after the full parse, so every failure path
  // above leaves it empty.
  for (Loaded& entry : loaded) {
    const Status applied = shards_[ShardOf(entry.id)]->Insert(
        entry.id, std::move(entry.code), std::move(entry.embedding));
    T2H_CHECK_MSG(applied.ok(), "snapshot ids are unique by construction");
  }
  next_id_.store(version != kSnapshotVersionLegacy
                     ? static_cast<int>(next_id)
                     : static_cast<int>(count),
                 std::memory_order_release);
  return Status::Ok();
}

Status ShardedIndex::ApplyReplayed(const ingest::WalRecord& record) {
  const int id = record.id;
  if (id < 0) {
    return Status::DataLoss("WAL record has negative id " +
                            std::to_string(id));
  }
  if (record.type == ingest::WalRecordType::kRemove) {
    // Tolerant: the snapshot may already reflect this remove.
    shards_[ShardOf(id)]->RemoveIfPresent(id);
  } else {
    if (record.code.num_bits != num_bits_) {
      return Status::DataLoss(
          "WAL record stores " + std::to_string(record.code.num_bits) +
          "-bit codes, index expects " + std::to_string(num_bits_));
    }
    // Upsert: the snapshot may already contain this record's effect (or an
    // older code for the same id) — last record per id wins either way.
    shards_[ShardOf(id)]->Upsert(id, record.code, record.embedding);
  }
  if (id >= next_id_.load(std::memory_order_acquire)) {
    next_id_.store(id + 1, std::memory_order_release);
  }
  return Status::Ok();
}

Status ShardedIndex::Recover(const std::string& snapshot_path,
                             const std::string& wal_path) {
  T2H_CHECK_MSG(!wal_path.empty(), "Recover needs a WAL path");
  if (wal_ != nullptr) {
    return Status::FailedPrecondition("a WAL is already attached");
  }
  if (size() != 0) {
    return Status::FailedPrecondition(
        "Recover requires an empty index (current size " +
        std::to_string(size()) + ")");
  }
  if (!snapshot_path.empty() && FileExists(snapshot_path)) {
    const Status loaded = LoadSnapshot(snapshot_path);
    if (!loaded.ok()) return loaded;
  }
  ingest::WalReplay replay;
  Result<std::unique_ptr<ingest::Wal>> opened =
      ingest::Wal::Open(wal_path, &replay);
  if (!opened.ok()) return opened.status();
  for (const ingest::WalRecord& record : replay.records) {
    const Status applied = ApplyReplayed(record);
    if (!applied.ok()) return applied;
  }
  wal_ = std::move(opened).value();
  return Status::Ok();
}

Status ShardedIndex::AttachWal(const std::string& wal_path) {
  return Recover("", wal_path);
}

Status ShardedIndex::ApplyShipped(const ingest::WalRecord& record) {
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    if (wal_ != nullptr) {
      return Status::FailedPrecondition(
          "ApplyShipped on an index with its own WAL: a replica must not "
          "re-log the primary's records");
    }
  }
  return ApplyReplayed(record);
}

uint64_t ShardedIndex::wal_last_seq() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return wal_ != nullptr ? wal_->last_seq() : 0;
}

Status ShardedIndex::Checkpoint(const std::string& path) {
  if (wal_ == nullptr) return SaveSnapshot(path);
  // Under the commit mutex no mutation can be between its WAL append and
  // its apply, so the snapshot is an exact cut; resetting the log after a
  // successful save cannot drop an acknowledged write. A crash between the
  // two steps merely replays the whole (idempotent) log over the snapshot.
  std::lock_guard<std::mutex> lock(wal_mu_);
  const Status saved = SaveSnapshot(path);
  if (!saved.ok()) return saved;
  return wal_->Reset();
}

std::vector<float> ShardedIndex::EmbeddingOf(int id) const {
  T2H_CHECK(id >= 0 && id < size());
  return shards_[ShardOf(id)]->EmbeddingOf(id);
}

int ShardedIndex::live_size() const {
  int total = 0;
  for (const auto& shard : shards_) total += shard->live_size();
  return total;
}

int ShardedIndex::tombstone_count() const {
  int total = 0;
  for (const auto& shard : shards_) total += shard->tombstone_count();
  return total;
}

int ShardedIndex::compactions_run() const {
  int total = 0;
  for (const auto& shard : shards_) total += shard->compactions_run();
  return total;
}

void ShardedIndex::CompactAll() {
  for (const auto& shard : shards_) shard->Compact();
}

}  // namespace traj2hash::serve
