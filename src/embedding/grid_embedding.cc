#include "embedding/grid_embedding.h"

#include <algorithm>
#include <cmath>

#include "nn/adam.h"
#include "nn/ops.h"

namespace traj2hash::embedding {
namespace {

using nn::Tensor;

/// -log(sigmoid(x)) = log(1 + exp(-x)), built from primitives. Inputs are
/// small dot products during pre-training, so the naive form is stable.
Tensor NegLogSigmoid(const Tensor& x) {
  return nn::Log(nn::AddScalar(nn::Exp(nn::Scale(x, -1.0f)), 1.0f));
}

}  // namespace

DecomposedGridEmbedding::DecomposedGridEmbedding(int num_x, int num_y, int dim,
                                                 Rng& rng)
    : num_x_(num_x), num_y_(num_y), dim_(dim) {
  T2H_CHECK(num_x > 0 && num_y > 0 && dim > 0);
  x_table_ = std::make_unique<nn::Embedding>(num_x, dim, rng);
  y_table_ = std::make_unique<nn::Embedding>(num_y, dim, rng);
  RegisterChild(*x_table_);
  RegisterChild(*y_table_);
}

Tensor DecomposedGridEmbedding::CellEmbedding(const traj::Cell& c) const {
  return nn::Add(x_table_->Forward({c.x}), y_table_->Forward({c.y}));
}

Tensor DecomposedGridEmbedding::SequenceEmbedding(
    const std::vector<traj::Cell>& cells) const {
  T2H_CHECK(!cells.empty());
  std::vector<int> xs, ys;
  xs.reserve(cells.size());
  ys.reserve(cells.size());
  for (const traj::Cell& c : cells) {
    T2H_CHECK(c.x >= 0 && c.x < num_x_ && c.y >= 0 && c.y < num_y_);
    xs.push_back(c.x);
    ys.push_back(c.y);
  }
  // Eq. 5: e_g = com(e_x, e_y) with com = sum.
  Tensor e = nn::Add(x_table_->Forward(xs), y_table_->Forward(ys));
  return frozen_ ? nn::Detach(e) : e;
}

double DecomposedGridEmbedding::Pretrain(const GridPretrainOptions& options,
                                         Rng& rng) {
  T2H_CHECK(!frozen_);
  T2H_CHECK(options.radius >= 1);
  T2H_CHECK_MSG(num_x_ > 1 || num_y_ > 1,
                "grid must have at least two cells to sample neighbours");
  nn::Adam optimizer(Parameters(), nn::AdamOptions{.lr = options.lr});
  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    double epoch_loss = 0.0;
    for (int s = 0; s < options.samples_per_epoch; ++s) {
      const traj::Cell anchor{rng.UniformInt(0, num_x_ - 1),
                              rng.UniformInt(0, num_y_ - 1)};
      Tensor anchor_e = CellEmbedding(anchor);
      Tensor loss;
      for (int k = 0; k < options.num_neighbors; ++k) {
        // Eq. 7: a neighbour is the anchor shifted by a uniform offset
        // inside the radius; the decomposition makes sampling O(1).
        traj::Cell pos = anchor;
        do {
          pos.x = anchor.x + rng.UniformInt(-options.radius, options.radius);
          pos.y = anchor.y + rng.UniformInt(-options.radius, options.radius);
        } while ((pos.x == anchor.x && pos.y == anchor.y) || pos.x < 0 ||
                 pos.x >= num_x_ || pos.y < 0 || pos.y >= num_y_);
        const Tensor pos_dot = nn::Dot(anchor_e, CellEmbedding(pos));
        const Tensor term = options.logistic ? NegLogSigmoid(pos_dot)
                                             : nn::Scale(pos_dot, -1.0f);
        loss = loss ? nn::Add(loss, term) : term;
      }
      for (int k = 0; k < options.num_noise; ++k) {
        // Noise cells are sampled uniformly outside the neighbourhood. On a
        // grid no larger than the neighbourhood, fall back to any non-anchor
        // cell after a bounded number of rejections.
        traj::Cell neg = anchor;
        for (int attempt = 0; attempt < 32; ++attempt) {
          neg.x = rng.UniformInt(0, num_x_ - 1);
          neg.y = rng.UniformInt(0, num_y_ - 1);
          if (std::abs(neg.x - anchor.x) > options.radius ||
              std::abs(neg.y - anchor.y) > options.radius) {
            break;
          }
        }
        if (neg.x == anchor.x && neg.y == anchor.y) continue;
        const Tensor neg_dot = nn::Dot(anchor_e, CellEmbedding(neg));
        const Tensor term = options.logistic
                                ? NegLogSigmoid(nn::Scale(neg_dot, -1.0f))
                                : neg_dot;
        loss = loss ? nn::Add(loss, term) : term;
      }
      epoch_loss += loss->value()[0];
      nn::Backward(loss);
      optimizer.Step();
    }
    last_epoch_loss = epoch_loss / options.samples_per_epoch;
  }
  Freeze();
  return last_epoch_loss;
}

}  // namespace traj2hash::embedding
