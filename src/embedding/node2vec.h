#ifndef TRAJ2HASH_EMBEDDING_NODE2VEC_H_
#define TRAJ2HASH_EMBEDDING_NODE2VEC_H_

#include <vector>

#include "common/rng.h"
#include "embedding/grid_embedding.h"
#include "traj/grid.h"

namespace traj2hash::embedding {

/// Node2vec hyper-parameters. Defaults follow §V-D's Fig. 7 study: walk
/// length 80, 10 walks per node, window 10, return parameter p = 1,
/// in-out parameter q = 1.
struct Node2vecOptions {
  int dim = 64;
  int walk_length = 80;
  int num_walks = 10;
  int window = 10;
  double p = 1.0;  ///< return parameter
  double q = 1.0;  ///< in-out parameter
  int num_negatives = 2;
  float lr = 0.025f;
};

/// Node2vec over the grid lattice, the baseline grid representation of
/// Fig. 7. Every cell has its own embedding (a full O(d * Nx * Ny) table),
/// which is exactly the memory/training-time cost the decomposed
/// representation avoids. Cells are nodes; edges connect 8-neighbouring
/// cells. Training is skip-gram with negative sampling over biased random
/// walks, with hand-rolled SGD for throughput.
class Node2vecGridEmbedding : public GridRepresentation {
 public:
  Node2vecGridEmbedding(int num_x, int num_y, int dim, Rng& rng);

  /// Runs walks + skip-gram training. Returns the number of center/context
  /// pairs processed (a proxy for training cost, reported in Fig. 7's
  /// efficiency comparison).
  int64_t Train(const Node2vecOptions& options, Rng& rng);

  /// [n, dim] constant embedding of a cell sequence (node2vec tables are
  /// not fine-tuned downstream, matching the frozen decomposed tables).
  nn::Tensor SequenceEmbedding(
      const std::vector<traj::Cell>& cells) const override;

  int dim() const override { return dim_; }

  /// Raw embedding row of a cell (length dim()).
  const float* EmbeddingOf(const traj::Cell& c) const;

 private:
  int NodeId(const traj::Cell& c) const { return c.y * num_x_ + c.x; }
  traj::Cell CellOfNode(int id) const { return {id % num_x_, id / num_x_}; }

  /// Neighbouring node ids under 8-connectivity.
  void NeighborsOf(int node, std::vector<int>& out) const;

  /// One biased (p, q) random walk starting at `start`.
  std::vector<int> Walk(int start, const Node2vecOptions& options,
                        Rng& rng) const;

  int num_x_;
  int num_y_;
  int dim_;
  std::vector<float> center_;   // [num_nodes * dim] center vectors
  std::vector<float> context_;  // [num_nodes * dim] context vectors
};

}  // namespace traj2hash::embedding

#endif  // TRAJ2HASH_EMBEDDING_NODE2VEC_H_
