#include "embedding/node2vec.h"

#include <algorithm>
#include <cmath>

#include "nn/ops.h"

namespace traj2hash::embedding {
namespace {

float Sigmoidf(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

Node2vecGridEmbedding::Node2vecGridEmbedding(int num_x, int num_y, int dim,
                                             Rng& rng)
    : num_x_(num_x), num_y_(num_y), dim_(dim) {
  T2H_CHECK(num_x > 0 && num_y > 0 && dim > 0);
  const size_t n = static_cast<size_t>(num_x) * num_y * dim;
  center_.resize(n);
  context_.resize(n);
  const float scale = 0.5f / dim;
  for (float& v : center_) v = static_cast<float>(rng.Uniform(-scale, scale));
  for (float& v : context_) v = static_cast<float>(rng.Uniform(-scale, scale));
}

void Node2vecGridEmbedding::NeighborsOf(int node, std::vector<int>& out) const {
  out.clear();
  const traj::Cell c = CellOfNode(node);
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const int nx = c.x + dx;
      const int ny = c.y + dy;
      if (nx < 0 || nx >= num_x_ || ny < 0 || ny >= num_y_) continue;
      out.push_back(NodeId({nx, ny}));
    }
  }
}

std::vector<int> Node2vecGridEmbedding::Walk(int start,
                                             const Node2vecOptions& options,
                                             Rng& rng) const {
  std::vector<int> walk = {start};
  std::vector<int> nbrs, prev_nbrs;
  std::vector<double> weights;
  int prev = -1;
  int curr = start;
  for (int step = 1; step < options.walk_length; ++step) {
    NeighborsOf(curr, nbrs);
    if (nbrs.empty()) break;
    int next;
    if (prev < 0) {
      next = nbrs[rng.UniformInt(0, static_cast<int>(nbrs.size()) - 1)];
    } else {
      // Node2vec bias: weight 1/p to return to `prev`, 1 for common
      // neighbours of prev and curr, 1/q otherwise.
      NeighborsOf(prev, prev_nbrs);
      weights.clear();
      double total = 0.0;
      for (const int candidate : nbrs) {
        double w;
        if (candidate == prev) {
          w = 1.0 / options.p;
        } else if (std::find(prev_nbrs.begin(), prev_nbrs.end(), candidate) !=
                   prev_nbrs.end()) {
          w = 1.0;
        } else {
          w = 1.0 / options.q;
        }
        weights.push_back(w);
        total += w;
      }
      double pick = rng.Uniform(0.0, total);
      size_t idx = 0;
      for (; idx + 1 < weights.size(); ++idx) {
        pick -= weights[idx];
        if (pick <= 0.0) break;
      }
      next = nbrs[idx];
    }
    walk.push_back(next);
    prev = curr;
    curr = next;
  }
  return walk;
}

int64_t Node2vecGridEmbedding::Train(const Node2vecOptions& options,
                                     Rng& rng) {
  T2H_CHECK_EQ(options.dim, dim_);
  const int num_nodes = num_x_ * num_y_;
  int64_t pairs = 0;
  std::vector<int> order(num_nodes);
  for (int i = 0; i < num_nodes; ++i) order[i] = i;
  std::vector<float> grad_center(dim_);
  for (int round = 0; round < options.num_walks; ++round) {
    rng.Shuffle(order);
    for (const int start : order) {
      const std::vector<int> walk = Walk(start, options, rng);
      for (size_t i = 0; i < walk.size(); ++i) {
        const int center = walk[i];
        float* wc = &center_[static_cast<size_t>(center) * dim_];
        const size_t lo = i > static_cast<size_t>(options.window)
                              ? i - options.window
                              : 0;
        const size_t hi = std::min(walk.size() - 1, i + options.window);
        for (size_t j = lo; j <= hi; ++j) {
          if (j == i) continue;
          ++pairs;
          std::fill(grad_center.begin(), grad_center.end(), 0.0f);
          // Positive context update: gradient of -log s(wc . ctx).
          {
            float* ctx = &context_[static_cast<size_t>(walk[j]) * dim_];
            float dot = 0.0f;
            for (int d = 0; d < dim_; ++d) dot += wc[d] * ctx[d];
            const float coeff = Sigmoidf(dot) - 1.0f;
            for (int d = 0; d < dim_; ++d) {
              grad_center[d] += coeff * ctx[d];
              ctx[d] -= options.lr * coeff * wc[d];
            }
          }
          // Negative samples: gradient of -log s(-wc . ctx).
          for (int neg = 0; neg < options.num_negatives; ++neg) {
            const int neg_node = rng.UniformInt(0, num_nodes - 1);
            if (neg_node == walk[j]) continue;
            float* ctx = &context_[static_cast<size_t>(neg_node) * dim_];
            float dot = 0.0f;
            for (int d = 0; d < dim_; ++d) dot += wc[d] * ctx[d];
            const float coeff = Sigmoidf(dot);
            for (int d = 0; d < dim_; ++d) {
              grad_center[d] += coeff * ctx[d];
              ctx[d] -= options.lr * coeff * wc[d];
            }
          }
          for (int d = 0; d < dim_; ++d) {
            wc[d] -= options.lr * grad_center[d];
          }
        }
      }
    }
  }
  return pairs;
}

nn::Tensor Node2vecGridEmbedding::SequenceEmbedding(
    const std::vector<traj::Cell>& cells) const {
  T2H_CHECK(!cells.empty());
  nn::Tensor out = nn::MakeTensor(static_cast<int>(cells.size()), dim_, false);
  for (size_t r = 0; r < cells.size(); ++r) {
    const float* e = EmbeddingOf(cells[r]);
    for (int d = 0; d < dim_; ++d) {
      out->at(static_cast<int>(r), d) = e[d];
    }
  }
  return out;
}

const float* Node2vecGridEmbedding::EmbeddingOf(const traj::Cell& c) const {
  T2H_CHECK(c.x >= 0 && c.x < num_x_ && c.y >= 0 && c.y < num_y_);
  return &center_[static_cast<size_t>(NodeId(c)) * dim_];
}

}  // namespace traj2hash::embedding
