#ifndef TRAJ2HASH_EMBEDDING_GRID_EMBEDDING_H_
#define TRAJ2HASH_EMBEDDING_GRID_EMBEDDING_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/tensor.h"
#include "traj/grid.h"

namespace traj2hash::embedding {

/// Interface for grid-cell representation providers, so Traj2Hash's grid
/// channel can swap the decomposed representation for node2vec (Fig. 7) or
/// anything else.
class GridRepresentation {
 public:
  virtual ~GridRepresentation() = default;

  /// Embedding of a cell sequence: [cells.size(), dim()].
  virtual nn::Tensor SequenceEmbedding(
      const std::vector<traj::Cell>& cells) const = 0;

  virtual int dim() const = 0;
};

/// Options for the NCE grid pre-training (§IV-C, Eq. 6-7).
struct GridPretrainOptions {
  int radius = 5;          ///< neighbourhood radius r
  int num_neighbors = 1;   ///< N_p sampled neighbours per anchor
  int num_noise = 1;       ///< N_n sampled noise cells per anchor
  int samples_per_epoch = 20000;
  int epochs = 3;
  float lr = 1e-3f;
  /// The paper's Eq. 6 is the linear NCE form -e·e_p + e·e_n, which is
  /// unbounded below; we default to the standard bounded logistic NCE
  /// (-log s(e·e_p) - log s(-e·e_n)) whose gradient equals Eq. 6's at the
  /// origin. Set false to train with the literal Eq. 6.
  bool logistic = true;
};

/// The light-weight decomposed grid representation (§IV-C): a cell (x, y)
/// is embedded as e_x + e_y from two coordinate tables, reducing parameters
/// from O(d * Nx * Ny) to O(d * (Nx + Ny)). Pre-trained with NCE against
/// spatial neighbours, then frozen ("the spatial information may be poisoned
/// after updating").
class DecomposedGridEmbedding : public nn::Module, public GridRepresentation {
 public:
  DecomposedGridEmbedding(int num_x, int num_y, int dim, Rng& rng);

  /// NCE pre-training (Eq. 6-7) and freeze. Returns the final mean loss.
  double Pretrain(const GridPretrainOptions& options, Rng& rng);

  /// [n, dim] embedding of a cell sequence. Returns a detached constant
  /// after Freeze() so no gradient flows into the tables.
  nn::Tensor SequenceEmbedding(
      const std::vector<traj::Cell>& cells) const override;

  int dim() const override { return dim_; }

  /// Freezes the tables (SequenceEmbedding detaches from the graph).
  void Freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  int num_x() const { return num_x_; }
  int num_y() const { return num_y_; }

 private:
  /// e_g for one cell as a graph node (used during pre-training).
  nn::Tensor CellEmbedding(const traj::Cell& c) const;

  int num_x_;
  int num_y_;
  int dim_;
  bool frozen_ = false;
  std::unique_ptr<nn::Embedding> x_table_;
  std::unique_ptr<nn::Embedding> y_table_;
};

}  // namespace traj2hash::embedding

#endif  // TRAJ2HASH_EMBEDDING_GRID_EMBEDDING_H_
