#ifndef TRAJ2HASH_NN_MODULE_H_
#define TRAJ2HASH_NN_MODULE_H_

#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

namespace traj2hash::nn {

/// Base class for parameterised layers. A module owns its parameter tensors
/// and can enrol a child module's parameters, so `Parameters()` on the root
/// returns the full trainable set for the optimizer.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its registered children.
  const std::vector<Tensor>& Parameters() const { return params_; }

  /// Zeroes gradients of all parameters.
  void ZeroGrad() {
    for (const Tensor& p : params_) p->ZeroGrad();
  }

 protected:
  /// Registers a parameter tensor created by this module.
  Tensor RegisterParameter(Tensor t) {
    params_.push_back(t);
    return t;
  }

  /// Registers all parameters of a child module.
  void RegisterChild(const Module& child) {
    for (const Tensor& p : child.Parameters()) params_.push_back(p);
  }

 private:
  std::vector<Tensor> params_;
};

/// Xavier/Glorot-uniform initialisation of a [fan_in, fan_out] matrix.
void XavierInit(const Tensor& t, Rng& rng);

/// Gaussian initialisation with the given standard deviation.
void GaussianInit(const Tensor& t, float stddev, Rng& rng);

}  // namespace traj2hash::nn

#endif  // TRAJ2HASH_NN_MODULE_H_
