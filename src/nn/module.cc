#include "nn/module.h"

#include <cmath>

namespace traj2hash::nn {

void XavierInit(const Tensor& t, Rng& rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(t->rows() + t->cols()));
  for (float& v : t->value()) {
    v = static_cast<float>(rng.Uniform(-limit, limit));
  }
}

void GaussianInit(const Tensor& t, float stddev, Rng& rng) {
  for (float& v : t->value()) {
    v = static_cast<float>(rng.Gaussian(stddev));
  }
}

}  // namespace traj2hash::nn
