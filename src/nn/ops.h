#ifndef TRAJ2HASH_NN_OPS_H_
#define TRAJ2HASH_NN_OPS_H_

#include <vector>

#include "nn/tensor.h"

namespace traj2hash::nn {

/// Differentiable operations over 2-D tensors. Every function returns a new
/// tensor wired into the autograd graph; gradients flow to any input with
/// `requires_grad()`. Shape preconditions are enforced with CHECKs (shape
/// mismatch is a programming error, not a runtime condition).

/// Matrix product: [n,k] x [k,m] -> [n,m].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Element-wise sum of same-shape tensors.
Tensor Add(const Tensor& a, const Tensor& b);

/// Adds row vector `row` [1,c] to every row of `a` [n,c] (bias broadcast).
Tensor AddRowBroadcast(const Tensor& a, const Tensor& row);

/// Element-wise difference of same-shape tensors.
Tensor Sub(const Tensor& a, const Tensor& b);

/// Element-wise (Hadamard) product of same-shape tensors.
Tensor Mul(const Tensor& a, const Tensor& b);

/// Element-wise quotient of same-shape tensors. Divisor elements must be
/// nonzero.
Tensor Div(const Tensor& a, const Tensor& b);

/// Multiplies every element by scalar `s`.
Tensor Scale(const Tensor& a, float s);

/// Multiplies every element of `a` by the (differentiable) scalar tensor
/// `s` ([1,1]) — e.g. dividing a vector by its own norm.
Tensor ScaleByScalar(const Tensor& a, const Tensor& s);

/// Adds scalar `s` to every element.
Tensor AddScalar(const Tensor& a, float s);

/// Element-wise max(x, 0).
Tensor Relu(const Tensor& a);

/// Element-wise hyperbolic tangent.
Tensor Tanh(const Tensor& a);

/// Element-wise logistic sigmoid.
Tensor Sigmoid(const Tensor& a);

/// Element-wise exponential.
Tensor Exp(const Tensor& a);

/// Element-wise natural logarithm. Requires all elements > 0.
Tensor Log(const Tensor& a);

/// Element-wise square root. Requires all elements >= 0; the derivative is
/// clamped near zero for numerical stability.
Tensor Sqrt(const Tensor& a);

/// Row-wise softmax (used by attention scores).
Tensor SoftmaxRows(const Tensor& a);

/// Normalises every row to zero mean and unit variance (the statistics part
/// of layer normalisation); `epsilon` stabilises near-constant rows.
Tensor NormalizeRows(const Tensor& a, float epsilon = 1e-5f);

/// Matrix transpose.
Tensor Transpose(const Tensor& a);

/// Horizontal concatenation [n,c1],[n,c2] -> [n,c1+c2].
Tensor ConcatCols(const Tensor& a, const Tensor& b);

/// Vertical concatenation [n1,c],[n2,c] -> [n1+n2,c].
Tensor ConcatRows(const Tensor& a, const Tensor& b);

/// Rows [r0, r1) of `a`.
Tensor SliceRows(const Tensor& a, int r0, int r1);

/// Columns [c0, c1) of `a`.
Tensor SliceCols(const Tensor& a, int c0, int c1);

/// Column-wise mean over rows: [n,c] -> [1,c] (mean pooling read-out).
Tensor MeanRows(const Tensor& a);

/// Sum of all elements: [n,c] -> [1,1].
Tensor SumAll(const Tensor& a);

/// Selects rows of `table` by index (embedding lookup); gradients scatter-
/// accumulate back into the selected rows.
Tensor GatherRows(const Tensor& table, const std::vector<int>& indices);

/// Constant tensor filled with `v` (never requires grad).
Tensor Constant(int rows, int cols, float v);

/// Value copy of `a` cut off from the autograd graph.
Tensor Detach(const Tensor& a);

/// Inner product of two [1,d] vectors -> [1,1].
Tensor Dot(const Tensor& a, const Tensor& b);

/// Euclidean distance between two [1,d] vectors -> [1,1]; stabilised with a
/// small epsilon inside the square root.
Tensor EuclideanDistance(const Tensor& a, const Tensor& b);

}  // namespace traj2hash::nn

#endif  // TRAJ2HASH_NN_OPS_H_
