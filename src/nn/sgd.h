#ifndef TRAJ2HASH_NN_SGD_H_
#define TRAJ2HASH_NN_SGD_H_

#include <vector>

#include "nn/tensor.h"

namespace traj2hash::nn {

struct SgdOptions {
  float lr = 1e-2f;
  float momentum = 0.0f;      ///< classical momentum (0 = plain SGD)
  float weight_decay = 0.0f;  ///< L2 coefficient added to gradients
  /// Global gradient-norm clipping threshold; <= 0 disables clipping.
  float clip_norm = 0.0f;
};

/// Stochastic gradient descent with optional momentum, weight decay and
/// global-norm gradient clipping. Adam (adam.h) is the paper's optimizer;
/// SGD is provided for the pre-training loops and ablation experiments
/// where a stateless optimizer is preferable.
class Sgd {
 public:
  explicit Sgd(std::vector<Tensor> params, SgdOptions options = SgdOptions());

  /// Applies one update from the accumulated gradients, then zeroes them.
  void Step();

  /// Zeroes gradients without updating.
  void ZeroGrad();

  /// L2 norm of the full gradient vector at the last Step() (before
  /// clipping); useful for training diagnostics.
  double last_grad_norm() const { return last_grad_norm_; }

  void set_lr(float lr) { options_.lr = lr; }
  float lr() const { return options_.lr; }

 private:
  std::vector<Tensor> params_;
  SgdOptions options_;
  std::vector<std::vector<float>> velocity_;  // momentum buffers
  double last_grad_norm_ = 0.0;
};

}  // namespace traj2hash::nn

#endif  // TRAJ2HASH_NN_SGD_H_
