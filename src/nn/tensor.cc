#include "nn/tensor.h"

#include <unordered_set>

namespace traj2hash::nn {

thread_local GradSink* GradSink::current_ = nullptr;

GradSink::GradSink(const std::vector<Tensor>& params) {
  entries_.reserve(params.size());
  index_.reserve(params.size());
  for (const Tensor& p : params) {
    if (index_.count(p.get())) continue;
    index_.emplace(p.get(), entries_.size());
    entries_.push_back(Entry{p.get(), {}});
  }
}

std::vector<float>* GradSink::Redirect(TensorImpl* t) {
  auto it = index_.find(t);
  if (it == index_.end()) return nullptr;
  Entry& e = entries_[it->second];
  if (e.buffer.empty()) e.buffer.assign(t->value().size(), 0.0f);
  return &e.buffer;
}

void GradSink::AccumulateInto() {
  T2H_CHECK_MSG(current_ == nullptr,
                "AccumulateInto must run outside any sink Scope");
  for (Entry& e : entries_) {
    if (e.buffer.empty()) continue;
    std::vector<float>& g = e.tensor->grad();
    for (size_t i = 0; i < g.size(); ++i) g[i] += e.buffer[i];
  }
}

namespace {
thread_local int no_grad_depth = 0;
}  // namespace

bool GradEnabled() { return no_grad_depth == 0; }

NoGradGuard::NoGradGuard() { ++no_grad_depth; }

NoGradGuard::~NoGradGuard() { --no_grad_depth; }

Tensor MakeTensor(int rows, int cols, bool requires_grad) {
  return std::make_shared<TensorImpl>(rows, cols, requires_grad);
}

Tensor FromValues(int rows, int cols, std::vector<float> values,
                  bool requires_grad) {
  T2H_CHECK_EQ(static_cast<size_t>(rows) * cols, values.size());
  Tensor t = MakeTensor(rows, cols, requires_grad);
  t->value() = std::move(values);
  return t;
}

namespace {

void TopoSort(TensorImpl* node, std::unordered_set<TensorImpl*>& visited,
              std::vector<TensorImpl*>& order) {
  // Iterative DFS: training tapes (e.g. GRU over a long trajectory) can be
  // deep enough to overflow the stack with a recursive walk.
  struct Frame {
    TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (!visited.insert(node).second) return;
  stack.push_back({node, 0});
  while (!stack.empty()) {
    Frame& top = stack.back();
    const auto& parents = top.node->parents();
    if (top.next_parent < parents.size()) {
      TensorImpl* parent = parents[top.next_parent++].get();
      if (visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const Tensor& loss) {
  T2H_CHECK_MSG(loss->rows() == 1 && loss->cols() == 1,
                "Backward requires a scalar loss");
  T2H_CHECK_MSG(loss->requires_grad(),
                "loss does not depend on any differentiable tensor");
  std::unordered_set<TensorImpl*> visited;
  std::vector<TensorImpl*> order;  // parents before children
  TopoSort(loss.get(), visited, order);

  loss->grad()[0] += 1.0f;
  // Children first (reverse topological order).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn()) node->backward_fn()(*node);
  }
}

}  // namespace traj2hash::nn
