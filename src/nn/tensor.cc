#include "nn/tensor.h"

#include <unordered_set>

namespace traj2hash::nn {

Tensor MakeTensor(int rows, int cols, bool requires_grad) {
  return std::make_shared<TensorImpl>(rows, cols, requires_grad);
}

Tensor FromValues(int rows, int cols, std::vector<float> values,
                  bool requires_grad) {
  T2H_CHECK_EQ(static_cast<size_t>(rows) * cols, values.size());
  Tensor t = MakeTensor(rows, cols, requires_grad);
  t->value() = std::move(values);
  return t;
}

namespace {

void TopoSort(TensorImpl* node, std::unordered_set<TensorImpl*>& visited,
              std::vector<TensorImpl*>& order) {
  // Iterative DFS: training tapes (e.g. GRU over a long trajectory) can be
  // deep enough to overflow the stack with a recursive walk.
  struct Frame {
    TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (!visited.insert(node).second) return;
  stack.push_back({node, 0});
  while (!stack.empty()) {
    Frame& top = stack.back();
    const auto& parents = top.node->parents();
    if (top.next_parent < parents.size()) {
      TensorImpl* parent = parents[top.next_parent++].get();
      if (visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const Tensor& loss) {
  T2H_CHECK_MSG(loss->rows() == 1 && loss->cols() == 1,
                "Backward requires a scalar loss");
  T2H_CHECK_MSG(loss->requires_grad(),
                "loss does not depend on any differentiable tensor");
  std::unordered_set<TensorImpl*> visited;
  std::vector<TensorImpl*> order;  // parents before children
  TopoSort(loss.get(), visited, order);

  loss->grad()[0] += 1.0f;
  // Children first (reverse topological order).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn()) node->backward_fn()(*node);
  }
}

}  // namespace traj2hash::nn
