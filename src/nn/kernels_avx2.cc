// AVX2 backend for nn::kernels — 256-bit (8-float) vectors with FMA.
//
// Determinism (DESIGN.md §14): elementwise ops (AddInto/SubInto/AxpyInto/
// MulInto) use separate mul + add intrinsics — never FMA — so each element
// sees exactly one multiply rounding and one add rounding and the results
// are bit-identical to the scalar backend. The matrix/reduction kernels DO
// use FMA and lane-parallel accumulators for throughput; each is
// deterministic for this path (fixed accumulation order, fixed-order
// horizontal folds, blocking chosen per-element by position only), but
// agrees with other backends only to a relative epsilon.
//
// Compiled with "-O3 -mavx2 -mfma -mpopcnt -ffp-contract=off" (see
// src/nn/CMakeLists.txt); contraction is off so the ONLY fused operations
// are the explicit _mm256_fmadd_ps calls below — scalar tails keep the
// mul+add rounding the contract promises.

#include <immintrin.h>

#include "nn/kernels_backend.h"

namespace traj2hash::nn::kernels {
namespace avx2 {
namespace {

/// Fixed-order fold of the 8 accumulator lanes:
/// (((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))) — the one documented order for
/// this backend.
inline float Hsum256(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  const __m128 s4 = _mm_add_ps(lo, hi);          // {l0+l4, l1+l5, l2+l6, l3+l7}
  const __m128 s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
  return _mm_cvtss_f32(_mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 0x1)));
}

/// 4-row × 16-column register-blocked micro-kernel: 8 ymm accumulators stay
/// resident while A is broadcast and B streamed. Each C element accumulates
/// ascending-k in a single fmadd chain seeded from C, so the result is
/// independent of how callers batch rows.
inline void Micro4x16(const float* a, const float* b, float* c, int k, int m,
                      long i0, int j0) {
  const float* a0 = a + (i0 + 0) * k;
  const float* a1 = a + (i0 + 1) * k;
  const float* a2 = a + (i0 + 2) * k;
  const float* a3 = a + (i0 + 3) * k;
  float* c0 = c + (i0 + 0) * m + j0;
  float* c1 = c + (i0 + 1) * m + j0;
  float* c2 = c + (i0 + 2) * m + j0;
  float* c3 = c + (i0 + 3) * m + j0;
  __m256 acc00 = _mm256_loadu_ps(c0), acc01 = _mm256_loadu_ps(c0 + 8);
  __m256 acc10 = _mm256_loadu_ps(c1), acc11 = _mm256_loadu_ps(c1 + 8);
  __m256 acc20 = _mm256_loadu_ps(c2), acc21 = _mm256_loadu_ps(c2 + 8);
  __m256 acc30 = _mm256_loadu_ps(c3), acc31 = _mm256_loadu_ps(c3 + 8);
  for (int kk = 0; kk < k; ++kk) {
    const float* brow = b + static_cast<long>(kk) * m + j0;
    const __m256 b0 = _mm256_loadu_ps(brow);
    const __m256 b1 = _mm256_loadu_ps(brow + 8);
    __m256 av = _mm256_set1_ps(a0[kk]);
    acc00 = _mm256_fmadd_ps(av, b0, acc00);
    acc01 = _mm256_fmadd_ps(av, b1, acc01);
    av = _mm256_set1_ps(a1[kk]);
    acc10 = _mm256_fmadd_ps(av, b0, acc10);
    acc11 = _mm256_fmadd_ps(av, b1, acc11);
    av = _mm256_set1_ps(a2[kk]);
    acc20 = _mm256_fmadd_ps(av, b0, acc20);
    acc21 = _mm256_fmadd_ps(av, b1, acc21);
    av = _mm256_set1_ps(a3[kk]);
    acc30 = _mm256_fmadd_ps(av, b0, acc30);
    acc31 = _mm256_fmadd_ps(av, b1, acc31);
  }
  _mm256_storeu_ps(c0, acc00);
  _mm256_storeu_ps(c0 + 8, acc01);
  _mm256_storeu_ps(c1, acc10);
  _mm256_storeu_ps(c1 + 8, acc11);
  _mm256_storeu_ps(c2, acc20);
  _mm256_storeu_ps(c2 + 8, acc21);
  _mm256_storeu_ps(c3, acc30);
  _mm256_storeu_ps(c3 + 8, acc31);
}

/// One-row fallback for row/column tails; same per-element chain shape.
inline void Row1(const float* arow, const float* b, float* crow, int k, int m,
                 int j0) {
  int j = j0;
  for (; j + 8 <= m; j += 8) {
    __m256 acc = _mm256_loadu_ps(crow + j);
    for (int kk = 0; kk < k; ++kk) {
      acc = _mm256_fmadd_ps(_mm256_set1_ps(arow[kk]),
                            _mm256_loadu_ps(b + static_cast<long>(kk) * m + j),
                            acc);
    }
    _mm256_storeu_ps(crow + j, acc);
  }
  for (; j < m; ++j) {
    float acc = crow[j];
    for (int kk = 0; kk < k; ++kk)
      acc += arow[kk] * b[static_cast<long>(kk) * m + j];
    crow[j] = acc;
  }
}

void MatMulAccum(const float* a, const float* b, float* c, int n, int k,
                 int m) {
  const int n4 = n & ~3;
  const int m16 = m & ~15;
  for (long i0 = 0; i0 < n4; i0 += 4) {
    for (int j0 = 0; j0 < m16; j0 += 16) Micro4x16(a, b, c, k, m, i0, j0);
    if (m16 < m) {
      for (long i = i0; i < i0 + 4; ++i)
        Row1(a + i * k, b, c + i * m, k, m, m16);
    }
  }
  for (long i = n4; i < n; ++i) Row1(a + i * k, b, c + i * m, k, m, 0);
}

void MatMulGradA(const float* dc, const float* b, float* da, int n, int k,
                 int m) {
  const int m8 = m & ~7;
  for (int i = 0; i < n; ++i) {
    const float* __restrict dcrow = dc + static_cast<long>(i) * m;
    float* __restrict darow = da + static_cast<long>(i) * k;
    for (int j = 0; j < k; ++j) {
      const float* __restrict brow = b + static_cast<long>(j) * m;
      __m256 vacc = _mm256_setzero_ps();
      for (int c = 0; c < m8; c += 8) {
        vacc = _mm256_fmadd_ps(_mm256_loadu_ps(dcrow + c),
                               _mm256_loadu_ps(brow + c), vacc);
      }
      float acc = Hsum256(vacc);
      for (int c = m8; c < m; ++c) acc += dcrow[c] * brow[c];
      darow[j] += acc;
    }
  }
}

void MatMulGradB(const float* a, const float* dc, float* db, int n, int k,
                 int m) {
  // Register-block 4 dB rows × 16 columns: 8 resident accumulators give 8
  // INDEPENDENT fmadd chains per r step (a single chain per output block
  // serializes on the ~4-cycle FMA latency and loses to the scalar rank-1
  // loop). Per element the r-chain is still seeded from dB and ascends
  // exactly like the scalar loop, so blocking cannot change any result.
  const int m8 = m & ~7;
  const int m16 = m & ~15;
  const int k4 = k & ~3;
  for (int i0 = 0; i0 < k4; i0 += 4) {
    float* __restrict db0 = db + static_cast<long>(i0 + 0) * m;
    float* __restrict db1 = db + static_cast<long>(i0 + 1) * m;
    float* __restrict db2 = db + static_cast<long>(i0 + 2) * m;
    float* __restrict db3 = db + static_cast<long>(i0 + 3) * m;
    for (int j0 = 0; j0 < m16; j0 += 16) {
      __m256 a00 = _mm256_loadu_ps(db0 + j0), a01 = _mm256_loadu_ps(db0 + j0 + 8);
      __m256 a10 = _mm256_loadu_ps(db1 + j0), a11 = _mm256_loadu_ps(db1 + j0 + 8);
      __m256 a20 = _mm256_loadu_ps(db2 + j0), a21 = _mm256_loadu_ps(db2 + j0 + 8);
      __m256 a30 = _mm256_loadu_ps(db3 + j0), a31 = _mm256_loadu_ps(db3 + j0 + 8);
      for (int r = 0; r < n; ++r) {
        const float* arow = a + static_cast<long>(r) * k + i0;
        const float* dcrow = dc + static_cast<long>(r) * m + j0;
        const __m256 d0 = _mm256_loadu_ps(dcrow);
        const __m256 d1 = _mm256_loadu_ps(dcrow + 8);
        __m256 av = _mm256_set1_ps(arow[0]);
        a00 = _mm256_fmadd_ps(av, d0, a00);
        a01 = _mm256_fmadd_ps(av, d1, a01);
        av = _mm256_set1_ps(arow[1]);
        a10 = _mm256_fmadd_ps(av, d0, a10);
        a11 = _mm256_fmadd_ps(av, d1, a11);
        av = _mm256_set1_ps(arow[2]);
        a20 = _mm256_fmadd_ps(av, d0, a20);
        a21 = _mm256_fmadd_ps(av, d1, a21);
        av = _mm256_set1_ps(arow[3]);
        a30 = _mm256_fmadd_ps(av, d0, a30);
        a31 = _mm256_fmadd_ps(av, d1, a31);
      }
      _mm256_storeu_ps(db0 + j0, a00); _mm256_storeu_ps(db0 + j0 + 8, a01);
      _mm256_storeu_ps(db1 + j0, a10); _mm256_storeu_ps(db1 + j0 + 8, a11);
      _mm256_storeu_ps(db2 + j0, a20); _mm256_storeu_ps(db2 + j0 + 8, a21);
      _mm256_storeu_ps(db3 + j0, a30); _mm256_storeu_ps(db3 + j0 + 8, a31);
    }
  }
  // Leftover dB rows (k % 4) over the 16-wide columns, plus the 8-wide and
  // scalar column tails for every row.
  for (int i = 0; i < k; ++i) {
    float* __restrict dbrow = db + static_cast<long>(i) * m;
    const int jstart = i < k4 ? m16 : 0;
    for (int j0 = jstart; j0 < m8; j0 += 8) {
      __m256 acc = _mm256_loadu_ps(dbrow + j0);
      for (int r = 0; r < n; ++r) {
        acc = _mm256_fmadd_ps(
            _mm256_set1_ps(a[static_cast<long>(r) * k + i]),
            _mm256_loadu_ps(dc + static_cast<long>(r) * m + j0), acc);
      }
      _mm256_storeu_ps(dbrow + j0, acc);
    }
    for (int j = m8; j < m; ++j) {
      float acc = dbrow[j];
      for (int r = 0; r < n; ++r)
        acc += a[static_cast<long>(r) * k + i] * dc[static_cast<long>(r) * m + j];
      dbrow[j] = acc;
    }
  }
}

void AddInto(float* dst, const float* src, int n) {
  const int n8 = n & ~7;
  for (int i = 0; i < n8; i += 8)
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i),
                                            _mm256_loadu_ps(src + i)));
  for (int i = n8; i < n; ++i) dst[i] += src[i];
}

void SubInto(float* dst, const float* src, int n) {
  const int n8 = n & ~7;
  for (int i = 0; i < n8; i += 8)
    _mm256_storeu_ps(dst + i, _mm256_sub_ps(_mm256_loadu_ps(dst + i),
                                            _mm256_loadu_ps(src + i)));
  for (int i = n8; i < n; ++i) dst[i] -= src[i];
}

void AxpyInto(float* dst, const float* src, float s, int n) {
  // mul + add, NOT fmadd: one rounding per step, bit-identical to scalar.
  const __m256 sv = _mm256_set1_ps(s);
  const int n8 = n & ~7;
  for (int i = 0; i < n8; i += 8)
    _mm256_storeu_ps(dst + i,
                     _mm256_add_ps(_mm256_loadu_ps(dst + i),
                                   _mm256_mul_ps(sv, _mm256_loadu_ps(src + i))));
  for (int i = n8; i < n; ++i) dst[i] += s * src[i];
}

void MulInto(float* dst, const float* a, const float* b, int n) {
  const int n8 = n & ~7;
  for (int i = 0; i < n8; i += 8)
    _mm256_storeu_ps(dst + i,
                     _mm256_add_ps(_mm256_loadu_ps(dst + i),
                                   _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                                 _mm256_loadu_ps(b + i))));
  for (int i = n8; i < n; ++i) dst[i] += a[i] * b[i];
}

float Dot(const float* a, const float* b, int n) {
  const int n8 = n & ~7;
  __m256 vacc = _mm256_setzero_ps();
  for (int i = 0; i < n8; i += 8)
    vacc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           vacc);
  float acc = Hsum256(vacc);
  for (int i = n8; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace
}  // namespace avx2

const Backend& Avx2Backend() {
  static const Backend backend = {
      avx2::MatMulAccum, avx2::MatMulGradA, avx2::MatMulGradB,
      avx2::AddInto,     avx2::SubInto,     avx2::AxpyInto,
      avx2::MulInto,     avx2::Dot,
  };
  return backend;
}

}  // namespace traj2hash::nn::kernels
