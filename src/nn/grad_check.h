#ifndef TRAJ2HASH_NN_GRAD_CHECK_H_
#define TRAJ2HASH_NN_GRAD_CHECK_H_

#include <functional>

#include "nn/tensor.h"

namespace traj2hash::nn {

/// Finite-difference gradient verification used by the op test suite.
///
/// `fn` must rebuild the scalar loss from scratch on every call (it is
/// invoked repeatedly with perturbed parameter values). Returns the maximum
/// absolute difference between the analytic gradient of `param` and central
/// finite differences with step `eps`.
double MaxGradError(const Tensor& param, const std::function<Tensor()>& fn,
                    float eps = 1e-3f);

}  // namespace traj2hash::nn

#endif  // TRAJ2HASH_NN_GRAD_CHECK_H_
