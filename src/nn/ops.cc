#include "nn/ops.h"

#include <cmath>

#include "nn/kernels.h"

namespace traj2hash::nn {
namespace {

/// Allocates the output node and wires parents/backward only when a parent
/// tracks gradients AND grad mode is enabled on this thread.
///
/// `make_backward` is a factory returning the backward closure; it is only
/// invoked on the taped path, so the inference path pays for neither the
/// parents vector nor the std::function allocation (nor the shared_ptr
/// refcount bumps of the closure captures).
template <typename BackwardFactory, typename... Parents>
Tensor MakeOp(int rows, int cols, BackwardFactory&& make_backward,
              const Parents&... parents) {
  const bool needs_grad = GradEnabled() && (parents->requires_grad() || ...);
  Tensor out = MakeTensor(rows, cols, needs_grad);
  if (needs_grad) {
    out->set_parents(std::vector<Tensor>{parents...});
    out->set_backward(make_backward());
  }
  return out;
}

/// Element-wise unary op helper: forward maps value, backward multiplies the
/// upstream gradient by `dfn(input_value, output_value)`.
template <typename FwdFn, typename GradFn>
Tensor Unary(const Tensor& a, FwdFn fwd, GradFn dfn) {
  Tensor out = MakeOp(
      a->rows(), a->cols(),
      [&] {
        return [a, dfn](TensorImpl& self) {
          const int n = self.size();
          const float* __restrict g = self.grad().data();
          const float* __restrict av = a->value().data();
          const float* __restrict ov = self.value().data();
          float* __restrict ga = a->grad().data();
          for (int i = 0; i < n; ++i) ga[i] += g[i] * dfn(av[i], ov[i]);
        };
      },
      a);
  const int n = a->size();
  const float* __restrict av = a->value().data();
  float* __restrict ov = out->value().data();
  for (int i = 0; i < n; ++i) ov[i] = fwd(av[i]);
  return out;
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  T2H_CHECK_EQ(a->cols(), b->rows());
  const int n = a->rows(), k = a->cols(), m = b->cols();
  Tensor out = MakeOp(
      n, m,
      [&] {
        return [a, b](TensorImpl& self) {
          const int n = a->rows(), k = a->cols(), m = b->cols();
          const float* dc = self.grad().data();
          if (a->requires_grad()) {
            kernels::MatMulGradA(dc, b->value().data(), a->grad().data(), n,
                                 k, m);
          }
          if (b->requires_grad()) {
            kernels::MatMulGradB(a->value().data(), dc, b->grad().data(), n,
                                 k, m);
          }
        };
      },
      a, b);
  kernels::MatMulAccum(a->value().data(), b->value().data(),
                       out->value().data(), n, k, m);
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  T2H_CHECK(a->rows() == b->rows() && a->cols() == b->cols());
  Tensor out = MakeOp(
      a->rows(), a->cols(),
      [&] {
        return [a, b](TensorImpl& self) {
          const int n = self.size();
          const float* g = self.grad().data();
          if (a->requires_grad()) kernels::AddInto(a->grad().data(), g, n);
          if (b->requires_grad()) kernels::AddInto(b->grad().data(), g, n);
        };
      },
      a, b);
  const int n = out->size();
  const float* __restrict av = a->value().data();
  const float* __restrict bv = b->value().data();
  float* __restrict ov = out->value().data();
  for (int i = 0; i < n; ++i) ov[i] = av[i] + bv[i];
  return out;
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& row) {
  T2H_CHECK_EQ(row->rows(), 1);
  T2H_CHECK_EQ(a->cols(), row->cols());
  const int rows = a->rows(), cols = a->cols();
  Tensor out = MakeOp(
      rows, cols,
      [&] {
        return [a, row](TensorImpl& self) {
          const int rows = self.rows(), cols = self.cols();
          const float* g = self.grad().data();
          if (a->requires_grad()) {
            kernels::AddInto(a->grad().data(), g, rows * cols);
          }
          if (row->requires_grad()) {
            float* grow = row->grad().data();
            for (int r = 0; r < rows; ++r) {
              kernels::AddInto(grow, g + static_cast<long>(r) * cols, cols);
            }
          }
        };
      },
      a, row);
  const float* __restrict av = a->value().data();
  const float* __restrict rv = row->value().data();
  float* __restrict ov = out->value().data();
  for (int r = 0; r < rows; ++r) {
    const float* __restrict arow = av + static_cast<long>(r) * cols;
    float* __restrict orow = ov + static_cast<long>(r) * cols;
    for (int c = 0; c < cols; ++c) orow[c] = arow[c] + rv[c];
  }
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  T2H_CHECK(a->rows() == b->rows() && a->cols() == b->cols());
  Tensor out = MakeOp(
      a->rows(), a->cols(),
      [&] {
        return [a, b](TensorImpl& self) {
          const int n = self.size();
          const float* g = self.grad().data();
          if (a->requires_grad()) kernels::AddInto(a->grad().data(), g, n);
          if (b->requires_grad()) kernels::SubInto(b->grad().data(), g, n);
        };
      },
      a, b);
  const int n = out->size();
  const float* __restrict av = a->value().data();
  const float* __restrict bv = b->value().data();
  float* __restrict ov = out->value().data();
  for (int i = 0; i < n; ++i) ov[i] = av[i] - bv[i];
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  T2H_CHECK(a->rows() == b->rows() && a->cols() == b->cols());
  Tensor out = MakeOp(
      a->rows(), a->cols(),
      [&] {
        return [a, b](TensorImpl& self) {
          const int n = self.size();
          const float* g = self.grad().data();
          if (a->requires_grad()) {
            kernels::MulInto(a->grad().data(), g, b->value().data(), n);
          }
          if (b->requires_grad()) {
            kernels::MulInto(b->grad().data(), g, a->value().data(), n);
          }
        };
      },
      a, b);
  const int n = out->size();
  const float* __restrict av = a->value().data();
  const float* __restrict bv = b->value().data();
  float* __restrict ov = out->value().data();
  for (int i = 0; i < n; ++i) ov[i] = av[i] * bv[i];
  return out;
}

Tensor Div(const Tensor& a, const Tensor& b) {
  T2H_CHECK(a->rows() == b->rows() && a->cols() == b->cols());
  Tensor out = MakeOp(
      a->rows(), a->cols(),
      [&] {
        return [a, b](TensorImpl& self) {
          const int n = self.size();
          const float* __restrict g = self.grad().data();
          const float* __restrict av = a->value().data();
          const float* __restrict bv = b->value().data();
          if (a->requires_grad()) {
            float* __restrict ga = a->grad().data();
            for (int i = 0; i < n; ++i) ga[i] += g[i] * (1.0f / bv[i]);
          }
          if (b->requires_grad()) {
            float* __restrict gb = b->grad().data();
            for (int i = 0; i < n; ++i) {
              const float inv = 1.0f / bv[i];
              gb[i] -= g[i] * av[i] * inv * inv;
            }
          }
        };
      },
      a, b);
  const int n = out->size();
  const float* __restrict av = a->value().data();
  const float* __restrict bv = b->value().data();
  float* __restrict ov = out->value().data();
  for (int i = 0; i < n; ++i) {
    T2H_CHECK_NE(bv[i], 0.0f);
    ov[i] = av[i] / bv[i];
  }
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = MakeOp(
      a->rows(), a->cols(),
      [&] {
        return [a, s](TensorImpl& self) {
          kernels::AxpyInto(a->grad().data(), self.grad().data(), s,
                            self.size());
        };
      },
      a);
  const int n = a->size();
  const float* __restrict av = a->value().data();
  float* __restrict ov = out->value().data();
  for (int i = 0; i < n; ++i) ov[i] = av[i] * s;
  return out;
}

Tensor ScaleByScalar(const Tensor& a, const Tensor& s) {
  T2H_CHECK(s->rows() == 1 && s->cols() == 1);
  Tensor out = MakeOp(
      a->rows(), a->cols(),
      [&] {
        return [a, s](TensorImpl& self) {
          const int n = self.size();
          const float* g = self.grad().data();
          const float sv = s->value()[0];
          if (a->requires_grad()) {
            kernels::AxpyInto(a->grad().data(), g, sv, n);
          }
          if (s->requires_grad()) {
            s->grad()[0] += kernels::Dot(g, a->value().data(), n);
          }
        };
      },
      a, s);
  const int n = a->size();
  const float sv = s->value()[0];
  const float* __restrict av = a->value().data();
  float* __restrict ov = out->value().data();
  for (int i = 0; i < n; ++i) ov[i] = av[i] * sv;
  return out;
}

Tensor AddScalar(const Tensor& a, float s) {
  Tensor out = MakeOp(
      a->rows(), a->cols(),
      [&] {
        return [a](TensorImpl& self) {
          kernels::AddInto(a->grad().data(), self.grad().data(), self.size());
        };
      },
      a);
  const int n = a->size();
  const float* __restrict av = a->value().data();
  float* __restrict ov = out->value().data();
  for (int i = 0; i < n; ++i) ov[i] = av[i] + s;
  return out;
}

Tensor Relu(const Tensor& a) {
  return Unary(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor Tanh(const Tensor& a) {
  return Unary(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Sigmoid(const Tensor& a) {
  return Unary(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Exp(const Tensor& a) {
  return Unary(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& a) {
  return Unary(
      a,
      [](float x) {
        // Negative/zero finite input is a caller bug; NaN is allowed through
        // so divergence surfaces as a non-finite loss, not a process abort.
        T2H_CHECK(!(x <= 0.0f));
        return std::log(x);
      },
      [](float x, float) { return 1.0f / x; });
}

Tensor Sqrt(const Tensor& a) {
  return Unary(
      a,
      [](float x) {
        // Same contract as Log: reject negative finite inputs, let NaN
        // propagate to the trainer's divergence guard.
        T2H_CHECK(!(x < 0.0f));
        return std::sqrt(x);
      },
      [](float, float y) { return 0.5f / std::max(y, 1e-6f); });
}

Tensor SoftmaxRows(const Tensor& a) {
  Tensor out = MakeOp(
      a->rows(), a->cols(),
      [&] {
        return [a](TensorImpl& self) {
          kernels::SoftmaxRowsBwd(self.value().data(), self.grad().data(),
                                  a->grad().data(), self.rows(), self.cols());
        };
      },
      a);
  kernels::SoftmaxRowsFwd(a->value().data(), out->value().data(), a->rows(),
                          a->cols());
  return out;
}

Tensor NormalizeRows(const Tensor& a, float epsilon) {
  const int rows = a->rows();
  const int cols = a->cols();
  // Forward statistics first: the backward closure captures inv_sigma by
  // value, so it must be complete before MakeOp runs.
  std::vector<float> values(static_cast<size_t>(rows) * cols);
  std::vector<float> inv_sigma(rows);
  const float* __restrict av = a->value().data();
  for (int r = 0; r < rows; ++r) {
    const float* __restrict arow = av + static_cast<long>(r) * cols;
    float* __restrict vrow = values.data() + static_cast<long>(r) * cols;
    float mean = 0.0f;
    for (int j = 0; j < cols; ++j) mean += arow[j];
    mean /= cols;
    float var = 0.0f;
    for (int j = 0; j < cols; ++j) {
      const float d = arow[j] - mean;
      var += d * d;
    }
    var /= cols;
    inv_sigma[r] = 1.0f / std::sqrt(var + epsilon);
    for (int j = 0; j < cols; ++j) vrow[j] = (arow[j] - mean) * inv_sigma[r];
  }
  Tensor out = MakeOp(
      rows, cols,
      [&] {
        return [a, inv_sigma](TensorImpl& self) {
          // dL/dx = (1/sigma) * (g - mean(g) - y * mean(g * y)) per row.
          const int rows = self.rows(), c = self.cols();
          const float* __restrict g = self.grad().data();
          const float* __restrict y = self.value().data();
          float* __restrict ga = a->grad().data();
          for (int r = 0; r < rows; ++r) {
            const float* __restrict grow = g + static_cast<long>(r) * c;
            const float* __restrict yrow = y + static_cast<long>(r) * c;
            float* __restrict garow = ga + static_cast<long>(r) * c;
            float mean_g = 0.0f, mean_gy = 0.0f;
            for (int j = 0; j < c; ++j) {
              mean_g += grow[j];
              mean_gy += grow[j] * yrow[j];
            }
            mean_g /= c;
            mean_gy /= c;
            const float is = inv_sigma[r];
            for (int j = 0; j < c; ++j) {
              garow[j] += is * (grow[j] - mean_g - yrow[j] * mean_gy);
            }
          }
        };
      },
      a);
  out->value() = std::move(values);
  return out;
}

Tensor Transpose(const Tensor& a) {
  const int rows = a->rows(), cols = a->cols();
  Tensor out = MakeOp(
      cols, rows,
      [&] {
        return [a](TensorImpl& self) {
          // self is [cols, rows]; write a's grad rows contiguously.
          const int rows = a->rows(), cols = a->cols();
          const float* g = self.grad().data();
          float* __restrict ga = a->grad().data();
          for (int r = 0; r < rows; ++r) {
            float* __restrict garow = ga + static_cast<long>(r) * cols;
            const float* __restrict gcol = g + r;
            for (int c = 0; c < cols; ++c) {
              garow[c] += gcol[static_cast<long>(c) * rows];
            }
          }
        };
      },
      a);
  const float* av = a->value().data();
  float* __restrict ov = out->value().data();
  for (int r = 0; r < rows; ++r) {
    const float* __restrict arow = av + static_cast<long>(r) * cols;
    for (int c = 0; c < cols; ++c) ov[static_cast<long>(c) * rows + r] = arow[c];
  }
  return out;
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  T2H_CHECK_EQ(a->rows(), b->rows());
  const int rows = a->rows(), c1 = a->cols(), c2 = b->cols();
  Tensor out = MakeOp(
      rows, c1 + c2,
      [&] {
        return [a, b, c1, c2](TensorImpl& self) {
          const int rows = self.rows(), oc = self.cols();
          const float* g = self.grad().data();
          if (a->requires_grad()) {
            float* ga = a->grad().data();
            for (int r = 0; r < rows; ++r) {
              kernels::AddInto(ga + static_cast<long>(r) * c1,
                               g + static_cast<long>(r) * oc, c1);
            }
          }
          if (b->requires_grad()) {
            float* gb = b->grad().data();
            for (int r = 0; r < rows; ++r) {
              kernels::AddInto(gb + static_cast<long>(r) * c2,
                               g + static_cast<long>(r) * oc + c1, c2);
            }
          }
        };
      },
      a, b);
  const float* av = a->value().data();
  const float* bv = b->value().data();
  float* ov = out->value().data();
  const int oc = c1 + c2;
  for (int r = 0; r < rows; ++r) {
    float* __restrict orow = ov + static_cast<long>(r) * oc;
    const float* __restrict arow = av + static_cast<long>(r) * c1;
    const float* __restrict brow = bv + static_cast<long>(r) * c2;
    for (int c = 0; c < c1; ++c) orow[c] = arow[c];
    for (int c = 0; c < c2; ++c) orow[c1 + c] = brow[c];
  }
  return out;
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  T2H_CHECK_EQ(a->cols(), b->cols());
  const int r1 = a->rows(), r2 = b->rows(), cols = a->cols();
  Tensor out = MakeOp(
      r1 + r2, cols,
      [&] {
        return [a, b, r1, r2, cols](TensorImpl& self) {
          const float* g = self.grad().data();
          if (a->requires_grad()) {
            kernels::AddInto(a->grad().data(), g,
                             r1 * cols);
          }
          if (b->requires_grad()) {
            kernels::AddInto(b->grad().data(),
                             g + static_cast<long>(r1) * cols, r2 * cols);
          }
        };
      },
      a, b);
  float* ov = out->value().data();
  kernels::AddInto(ov, a->value().data(), r1 * cols);
  kernels::AddInto(ov + static_cast<long>(r1) * cols, b->value().data(),
                   r2 * cols);
  return out;
}

Tensor SliceRows(const Tensor& a, int r0, int r1) {
  T2H_CHECK(0 <= r0 && r0 < r1 && r1 <= a->rows());
  const int cols = a->cols();
  Tensor out = MakeOp(
      r1 - r0, cols,
      [&] {
        return [a, r0, cols](TensorImpl& self) {
          kernels::AddInto(a->grad().data() + static_cast<long>(r0) * cols,
                           self.grad().data(), self.rows() * cols);
        };
      },
      a);
  const float* __restrict av =
      a->value().data() + static_cast<long>(r0) * cols;
  float* __restrict ov = out->value().data();
  const int n = (r1 - r0) * cols;
  for (int i = 0; i < n; ++i) ov[i] = av[i];
  return out;
}

Tensor SliceCols(const Tensor& a, int c0, int c1) {
  T2H_CHECK(0 <= c0 && c0 < c1 && c1 <= a->cols());
  const int rows = a->rows(), ac = a->cols(), oc = c1 - c0;
  Tensor out = MakeOp(
      rows, oc,
      [&] {
        return [a, c0, ac, oc](TensorImpl& self) {
          const int rows = self.rows();
          const float* g = self.grad().data();
          float* ga = a->grad().data();
          for (int r = 0; r < rows; ++r) {
            kernels::AddInto(ga + static_cast<long>(r) * ac + c0,
                             g + static_cast<long>(r) * oc, oc);
          }
        };
      },
      a);
  const float* av = a->value().data();
  float* ov = out->value().data();
  for (int r = 0; r < rows; ++r) {
    const float* __restrict arow = av + static_cast<long>(r) * ac + c0;
    float* __restrict orow = ov + static_cast<long>(r) * oc;
    for (int c = 0; c < oc; ++c) orow[c] = arow[c];
  }
  return out;
}

Tensor MeanRows(const Tensor& a) {
  const int rows = a->rows(), cols = a->cols();
  const float inv_n = 1.0f / static_cast<float>(rows);
  Tensor out = MakeOp(
      1, cols,
      [&] {
        return [a, inv_n](TensorImpl& self) {
          const int rows = a->rows(), cols = a->cols();
          const float* g = self.grad().data();
          float* ga = a->grad().data();
          for (int r = 0; r < rows; ++r) {
            kernels::AxpyInto(ga + static_cast<long>(r) * cols, g, inv_n,
                              cols);
          }
        };
      },
      a);
  const float* av = a->value().data();
  float* __restrict ov = out->value().data();
  for (int c = 0; c < cols; ++c) {
    // Column reduction with r ascending, matching the pre-kernel op.
    float acc = 0.0f;
    for (int r = 0; r < rows; ++r) acc += av[static_cast<long>(r) * cols + c];
    ov[c] = acc * inv_n;
  }
  return out;
}

Tensor SumAll(const Tensor& a) {
  Tensor out = MakeOp(
      1, 1,
      [&] {
        return [a](TensorImpl& self) {
          const float g = self.grad()[0];
          const int n = a->size();
          float* __restrict ga = a->grad().data();
          for (int i = 0; i < n; ++i) ga[i] += g;
        };
      },
      a);
  float acc = 0.0f;
  for (const float v : a->value()) acc += v;
  out->value()[0] = acc;
  return out;
}

Tensor GatherRows(const Tensor& table, const std::vector<int>& indices) {
  T2H_CHECK(!indices.empty());
  for (const int i : indices) T2H_CHECK(i >= 0 && i < table->rows());
  const int cols = table->cols();
  Tensor out = MakeOp(
      static_cast<int>(indices.size()), cols,
      [&] {
        return [table, indices](TensorImpl& self) {
          const int cols = self.cols();
          const float* g = self.grad().data();
          float* gt = table->grad().data();
          for (size_t r = 0; r < indices.size(); ++r) {
            kernels::AddInto(gt + static_cast<long>(indices[r]) * cols,
                             g + static_cast<long>(r) * cols, cols);
          }
        };
      },
      table);
  const float* tv = table->value().data();
  float* ov = out->value().data();
  for (size_t r = 0; r < indices.size(); ++r) {
    const float* __restrict trow = tv + static_cast<long>(indices[r]) * cols;
    float* __restrict orow = ov + static_cast<long>(r) * cols;
    for (int c = 0; c < cols; ++c) orow[c] = trow[c];
  }
  return out;
}

Tensor Constant(int rows, int cols, float v) {
  Tensor t = MakeTensor(rows, cols, false);
  std::fill(t->value().begin(), t->value().end(), v);
  return t;
}

Tensor Detach(const Tensor& a) {
  Tensor t = MakeTensor(a->rows(), a->cols(), false);
  t->value() = a->value();
  return t;
}

Tensor Dot(const Tensor& a, const Tensor& b) {
  T2H_CHECK(a->rows() == 1 && b->rows() == 1);
  return SumAll(Mul(a, b));
}

Tensor EuclideanDistance(const Tensor& a, const Tensor& b) {
  Tensor diff = Sub(a, b);
  return Sqrt(AddScalar(SumAll(Mul(diff, diff)), 1e-8f));
}

}  // namespace traj2hash::nn
