#include "nn/ops.h"

#include <cmath>

namespace traj2hash::nn {
namespace {

bool AnyRequiresGrad(std::initializer_list<const Tensor*> ts) {
  for (const Tensor* t : ts) {
    if ((*t)->requires_grad()) return true;
  }
  return false;
}

/// Allocates the output node and wires parents/backward only when a parent
/// tracks gradients, so inference builds no tape.
Tensor MakeOp(int rows, int cols, std::vector<Tensor> parents,
              std::function<void(TensorImpl&)> backward) {
  bool needs_grad = false;
  for (const Tensor& p : parents) needs_grad |= p->requires_grad();
  Tensor out = MakeTensor(rows, cols, needs_grad);
  if (needs_grad) {
    out->set_parents(std::move(parents));
    out->set_backward(std::move(backward));
  }
  return out;
}

/// Element-wise unary op helper: forward maps value, backward multiplies the
/// upstream gradient by `dfn(input_value, output_value)`.
template <typename FwdFn, typename GradFn>
Tensor Unary(const Tensor& a, FwdFn fwd, GradFn dfn) {
  Tensor out = MakeOp(
      a->rows(), a->cols(), {a}, [a, dfn](TensorImpl& self) {
        for (int i = 0; i < self.size(); ++i) {
          a->grad()[i] += self.grad()[i] *
                          dfn(a->value()[i], self.value()[i]);
        }
      });
  for (int i = 0; i < a->size(); ++i) out->value()[i] = fwd(a->value()[i]);
  return out;
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  T2H_CHECK_EQ(a->cols(), b->rows());
  const int n = a->rows(), k = a->cols(), m = b->cols();
  Tensor out = MakeOp(n, m, {a, b}, [a, b](TensorImpl& self) {
    const int n = a->rows(), k = a->cols(), m = b->cols();
    if (a->requires_grad()) {
      // dA = dC * B^T
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < k; ++j) {
          float acc = 0.0f;
          for (int c = 0; c < m; ++c) acc += self.grad_at(i, c) * b->at(j, c);
          a->grad_at(i, j) += acc;
        }
      }
    }
    if (b->requires_grad()) {
      // dB = A^T * dC
      for (int i = 0; i < k; ++i) {
        for (int j = 0; j < m; ++j) {
          float acc = 0.0f;
          for (int r = 0; r < n; ++r) acc += a->at(r, i) * self.grad_at(r, j);
          b->grad_at(i, j) += acc;
        }
      }
    }
  });
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      float acc = 0.0f;
      for (int c = 0; c < k; ++c) acc += a->at(i, c) * b->at(c, j);
      out->at(i, j) = acc;
    }
  }
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  T2H_CHECK(a->rows() == b->rows() && a->cols() == b->cols());
  Tensor out = MakeOp(a->rows(), a->cols(), {a, b}, [a, b](TensorImpl& self) {
    for (int i = 0; i < self.size(); ++i) {
      if (a->requires_grad()) a->grad()[i] += self.grad()[i];
      if (b->requires_grad()) b->grad()[i] += self.grad()[i];
    }
  });
  for (int i = 0; i < out->size(); ++i) {
    out->value()[i] = a->value()[i] + b->value()[i];
  }
  return out;
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& row) {
  T2H_CHECK_EQ(row->rows(), 1);
  T2H_CHECK_EQ(a->cols(), row->cols());
  Tensor out =
      MakeOp(a->rows(), a->cols(), {a, row}, [a, row](TensorImpl& self) {
        for (int r = 0; r < self.rows(); ++r) {
          for (int c = 0; c < self.cols(); ++c) {
            if (a->requires_grad()) a->grad_at(r, c) += self.grad_at(r, c);
            if (row->requires_grad()) row->grad_at(0, c) += self.grad_at(r, c);
          }
        }
      });
  for (int r = 0; r < a->rows(); ++r) {
    for (int c = 0; c < a->cols(); ++c) {
      out->at(r, c) = a->at(r, c) + row->at(0, c);
    }
  }
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  T2H_CHECK(a->rows() == b->rows() && a->cols() == b->cols());
  Tensor out = MakeOp(a->rows(), a->cols(), {a, b}, [a, b](TensorImpl& self) {
    for (int i = 0; i < self.size(); ++i) {
      if (a->requires_grad()) a->grad()[i] += self.grad()[i];
      if (b->requires_grad()) b->grad()[i] -= self.grad()[i];
    }
  });
  for (int i = 0; i < out->size(); ++i) {
    out->value()[i] = a->value()[i] - b->value()[i];
  }
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  T2H_CHECK(a->rows() == b->rows() && a->cols() == b->cols());
  Tensor out = MakeOp(a->rows(), a->cols(), {a, b}, [a, b](TensorImpl& self) {
    for (int i = 0; i < self.size(); ++i) {
      if (a->requires_grad()) a->grad()[i] += self.grad()[i] * b->value()[i];
      if (b->requires_grad()) b->grad()[i] += self.grad()[i] * a->value()[i];
    }
  });
  for (int i = 0; i < out->size(); ++i) {
    out->value()[i] = a->value()[i] * b->value()[i];
  }
  return out;
}

Tensor Div(const Tensor& a, const Tensor& b) {
  T2H_CHECK(a->rows() == b->rows() && a->cols() == b->cols());
  Tensor out = MakeOp(a->rows(), a->cols(), {a, b}, [a, b](TensorImpl& self) {
    for (int i = 0; i < self.size(); ++i) {
      const float inv = 1.0f / b->value()[i];
      if (a->requires_grad()) a->grad()[i] += self.grad()[i] * inv;
      if (b->requires_grad()) {
        b->grad()[i] -= self.grad()[i] * a->value()[i] * inv * inv;
      }
    }
  });
  for (int i = 0; i < out->size(); ++i) {
    T2H_CHECK_NE(b->value()[i], 0.0f);
    out->value()[i] = a->value()[i] / b->value()[i];
  }
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  return Unary(
      a, [s](float x) { return x * s; },
      [s](float, float) { return s; });
}

Tensor ScaleByScalar(const Tensor& a, const Tensor& s) {
  T2H_CHECK(s->rows() == 1 && s->cols() == 1);
  Tensor out = MakeOp(a->rows(), a->cols(), {a, s}, [a, s](TensorImpl& self) {
    const float sv = s->value()[0];
    float s_grad = 0.0f;
    for (int i = 0; i < self.size(); ++i) {
      if (a->requires_grad()) a->grad()[i] += self.grad()[i] * sv;
      s_grad += self.grad()[i] * a->value()[i];
    }
    if (s->requires_grad()) s->grad()[0] += s_grad;
  });
  const float sv = s->value()[0];
  for (int i = 0; i < out->size(); ++i) out->value()[i] = a->value()[i] * sv;
  return out;
}

Tensor AddScalar(const Tensor& a, float s) {
  return Unary(
      a, [s](float x) { return x + s; }, [](float, float) { return 1.0f; });
}

Tensor Relu(const Tensor& a) {
  return Unary(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor Tanh(const Tensor& a) {
  return Unary(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Sigmoid(const Tensor& a) {
  return Unary(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Exp(const Tensor& a) {
  return Unary(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& a) {
  return Unary(
      a,
      [](float x) {
        T2H_CHECK_GT(x, 0.0f);
        return std::log(x);
      },
      [](float x, float) { return 1.0f / x; });
}

Tensor Sqrt(const Tensor& a) {
  return Unary(
      a,
      [](float x) {
        T2H_CHECK_GE(x, 0.0f);
        return std::sqrt(x);
      },
      [](float, float y) { return 0.5f / std::max(y, 1e-6f); });
}

Tensor SoftmaxRows(const Tensor& a) {
  Tensor out = MakeOp(a->rows(), a->cols(), {a}, [a](TensorImpl& self) {
    // Per row: dx_i = s_i * (dy_i - sum_j dy_j * s_j).
    for (int r = 0; r < self.rows(); ++r) {
      float dot = 0.0f;
      for (int c = 0; c < self.cols(); ++c) {
        dot += self.grad_at(r, c) * self.at(r, c);
      }
      for (int c = 0; c < self.cols(); ++c) {
        a->grad_at(r, c) += self.at(r, c) * (self.grad_at(r, c) - dot);
      }
    }
  });
  for (int r = 0; r < a->rows(); ++r) {
    float max_v = a->at(r, 0);
    for (int c = 1; c < a->cols(); ++c) max_v = std::max(max_v, a->at(r, c));
    float sum = 0.0f;
    for (int c = 0; c < a->cols(); ++c) {
      const float e = std::exp(a->at(r, c) - max_v);
      out->at(r, c) = e;
      sum += e;
    }
    for (int c = 0; c < a->cols(); ++c) out->at(r, c) /= sum;
  }
  return out;
}

Tensor NormalizeRows(const Tensor& a, float epsilon) {
  const int rows = a->rows();
  const int cols = a->cols();
  // Forward statistics first: the backward closure captures inv_sigma by
  // value, so it must be complete before MakeOp runs.
  std::vector<float> values(static_cast<size_t>(rows) * cols);
  std::vector<float> inv_sigma(rows);
  for (int r = 0; r < rows; ++r) {
    float mean = 0.0f;
    for (int j = 0; j < cols; ++j) mean += a->at(r, j);
    mean /= cols;
    float var = 0.0f;
    for (int j = 0; j < cols; ++j) {
      const float d = a->at(r, j) - mean;
      var += d * d;
    }
    var /= cols;
    inv_sigma[r] = 1.0f / std::sqrt(var + epsilon);
    for (int j = 0; j < cols; ++j) {
      values[static_cast<size_t>(r) * cols + j] =
          (a->at(r, j) - mean) * inv_sigma[r];
    }
  }
  Tensor out =
      MakeOp(rows, cols, {a}, [a, inv_sigma](TensorImpl& self) {
        // dL/dx = (1/sigma) * (g - mean(g) - y * mean(g * y)) per row.
        const int c = self.cols();
        for (int r = 0; r < self.rows(); ++r) {
          float mean_g = 0.0f, mean_gy = 0.0f;
          for (int j = 0; j < c; ++j) {
            mean_g += self.grad_at(r, j);
            mean_gy += self.grad_at(r, j) * self.at(r, j);
          }
          mean_g /= c;
          mean_gy /= c;
          for (int j = 0; j < c; ++j) {
            a->grad_at(r, j) += inv_sigma[r] * (self.grad_at(r, j) - mean_g -
                                                self.at(r, j) * mean_gy);
          }
        }
      });
  out->value() = std::move(values);
  return out;
}

Tensor Transpose(const Tensor& a) {
  Tensor out = MakeOp(a->cols(), a->rows(), {a}, [a](TensorImpl& self) {
    for (int r = 0; r < self.rows(); ++r) {
      for (int c = 0; c < self.cols(); ++c) {
        a->grad_at(c, r) += self.grad_at(r, c);
      }
    }
  });
  for (int r = 0; r < a->rows(); ++r) {
    for (int c = 0; c < a->cols(); ++c) out->at(c, r) = a->at(r, c);
  }
  return out;
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  T2H_CHECK_EQ(a->rows(), b->rows());
  const int c1 = a->cols();
  Tensor out = MakeOp(a->rows(), c1 + b->cols(), {a, b},
                      [a, b, c1](TensorImpl& self) {
                        for (int r = 0; r < self.rows(); ++r) {
                          for (int c = 0; c < self.cols(); ++c) {
                            const float g = self.grad_at(r, c);
                            if (c < c1) {
                              if (a->requires_grad()) a->grad_at(r, c) += g;
                            } else if (b->requires_grad()) {
                              b->grad_at(r, c - c1) += g;
                            }
                          }
                        }
                      });
  for (int r = 0; r < a->rows(); ++r) {
    for (int c = 0; c < a->cols(); ++c) out->at(r, c) = a->at(r, c);
    for (int c = 0; c < b->cols(); ++c) out->at(r, c1 + c) = b->at(r, c);
  }
  return out;
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  T2H_CHECK_EQ(a->cols(), b->cols());
  const int r1 = a->rows();
  Tensor out = MakeOp(r1 + b->rows(), a->cols(), {a, b},
                      [a, b, r1](TensorImpl& self) {
                        for (int r = 0; r < self.rows(); ++r) {
                          for (int c = 0; c < self.cols(); ++c) {
                            const float g = self.grad_at(r, c);
                            if (r < r1) {
                              if (a->requires_grad()) a->grad_at(r, c) += g;
                            } else if (b->requires_grad()) {
                              b->grad_at(r - r1, c) += g;
                            }
                          }
                        }
                      });
  for (int r = 0; r < a->rows(); ++r) {
    for (int c = 0; c < a->cols(); ++c) out->at(r, c) = a->at(r, c);
  }
  for (int r = 0; r < b->rows(); ++r) {
    for (int c = 0; c < b->cols(); ++c) out->at(r1 + r, c) = b->at(r, c);
  }
  return out;
}

Tensor SliceRows(const Tensor& a, int r0, int r1) {
  T2H_CHECK(0 <= r0 && r0 < r1 && r1 <= a->rows());
  Tensor out = MakeOp(r1 - r0, a->cols(), {a}, [a, r0](TensorImpl& self) {
    for (int r = 0; r < self.rows(); ++r) {
      for (int c = 0; c < self.cols(); ++c) {
        a->grad_at(r0 + r, c) += self.grad_at(r, c);
      }
    }
  });
  for (int r = 0; r < out->rows(); ++r) {
    for (int c = 0; c < out->cols(); ++c) out->at(r, c) = a->at(r0 + r, c);
  }
  return out;
}

Tensor SliceCols(const Tensor& a, int c0, int c1) {
  T2H_CHECK(0 <= c0 && c0 < c1 && c1 <= a->cols());
  Tensor out = MakeOp(a->rows(), c1 - c0, {a}, [a, c0](TensorImpl& self) {
    for (int r = 0; r < self.rows(); ++r) {
      for (int c = 0; c < self.cols(); ++c) {
        a->grad_at(r, c0 + c) += self.grad_at(r, c);
      }
    }
  });
  for (int r = 0; r < out->rows(); ++r) {
    for (int c = 0; c < out->cols(); ++c) out->at(r, c) = a->at(r, c0 + c);
  }
  return out;
}

Tensor MeanRows(const Tensor& a) {
  const float inv_n = 1.0f / static_cast<float>(a->rows());
  Tensor out = MakeOp(1, a->cols(), {a}, [a, inv_n](TensorImpl& self) {
    for (int r = 0; r < a->rows(); ++r) {
      for (int c = 0; c < a->cols(); ++c) {
        a->grad_at(r, c) += self.grad_at(0, c) * inv_n;
      }
    }
  });
  for (int c = 0; c < a->cols(); ++c) {
    float acc = 0.0f;
    for (int r = 0; r < a->rows(); ++r) acc += a->at(r, c);
    out->at(0, c) = acc * inv_n;
  }
  return out;
}

Tensor SumAll(const Tensor& a) {
  Tensor out = MakeOp(1, 1, {a}, [a](TensorImpl& self) {
    const float g = self.grad()[0];
    for (int i = 0; i < a->size(); ++i) a->grad()[i] += g;
  });
  float acc = 0.0f;
  for (const float v : a->value()) acc += v;
  out->value()[0] = acc;
  return out;
}

Tensor GatherRows(const Tensor& table, const std::vector<int>& indices) {
  T2H_CHECK(!indices.empty());
  for (const int i : indices) T2H_CHECK(i >= 0 && i < table->rows());
  Tensor out = MakeOp(static_cast<int>(indices.size()), table->cols(),
                      {table}, [table, indices](TensorImpl& self) {
                        for (size_t r = 0; r < indices.size(); ++r) {
                          for (int c = 0; c < self.cols(); ++c) {
                            table->grad_at(indices[r], c) +=
                                self.grad_at(static_cast<int>(r), c);
                          }
                        }
                      });
  for (size_t r = 0; r < indices.size(); ++r) {
    for (int c = 0; c < table->cols(); ++c) {
      out->at(static_cast<int>(r), c) = table->at(indices[r], c);
    }
  }
  return out;
}

Tensor Constant(int rows, int cols, float v) {
  Tensor t = MakeTensor(rows, cols, false);
  std::fill(t->value().begin(), t->value().end(), v);
  return t;
}

Tensor Detach(const Tensor& a) {
  Tensor t = MakeTensor(a->rows(), a->cols(), false);
  t->value() = a->value();
  return t;
}

Tensor Dot(const Tensor& a, const Tensor& b) {
  T2H_CHECK(a->rows() == 1 && b->rows() == 1);
  return SumAll(Mul(a, b));
}

Tensor EuclideanDistance(const Tensor& a, const Tensor& b) {
  Tensor diff = Sub(a, b);
  return Sqrt(AddScalar(SumAll(Mul(diff, diff)), 1e-8f));
}

}  // namespace traj2hash::nn
