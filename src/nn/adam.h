#ifndef TRAJ2HASH_NN_ADAM_H_
#define TRAJ2HASH_NN_ADAM_H_

#include <vector>

#include "nn/tensor.h"

namespace traj2hash::nn {

/// Adam optimizer (the paper's optimizer for both the grid pre-training and
/// the end-to-end model, §IV-F / §V-A5).
struct AdamOptions {
  float lr = 1e-3f;  ///< paper default learning rate
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
};

class Adam {
 public:
  using Options = AdamOptions;

  explicit Adam(std::vector<Tensor> params, Options options = Options());

  /// Applies one update from the accumulated gradients, then zeroes them.
  void Step();

  /// Zeroes gradients without updating (e.g. to discard a bad batch).
  void ZeroGrad();

  void set_lr(float lr) { options_.lr = lr; }
  float lr() const { return options_.lr; }

 private:
  std::vector<Tensor> params_;
  Options options_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;  // first-moment state per parameter
  std::vector<std::vector<float>> v_;  // second-moment state per parameter
};

}  // namespace traj2hash::nn

#endif  // TRAJ2HASH_NN_ADAM_H_
