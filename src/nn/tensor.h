#ifndef TRAJ2HASH_NN_TENSOR_H_
#define TRAJ2HASH_NN_TENSOR_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace traj2hash::nn {

class TensorImpl;

/// Shared handle to a node of the autograd graph. Ops in ops.h take and
/// return `Tensor`s; keeping a `Tensor` alive keeps the backward tape of its
/// ancestors alive.
using Tensor = std::shared_ptr<TensorImpl>;

/// Redirects gradient writes for a fixed set of shared tensors (the model
/// parameters) into private per-sink buffers, so independent loss subgraphs
/// can run `Backward` concurrently without racing on parameter grads.
///
/// Protocol (trainer.cc): the main thread builds one GradSink per work unit
/// over the same parameter list, each worker activates its unit's sink with
/// a `Scope` for the duration of that unit's forward+backward, and the main
/// thread then calls `AccumulateInto()` on every sink in unit order. Because
/// the per-unit sums and the final reduction both happen in a fixed order,
/// the resulting parameter grads are bit-identical for any thread count.
///
/// Tensors not registered in the sink (the unit-local tape) keep using their
/// own grad storage, which is safe because no other unit can reach them.
class GradSink {
 public:
  /// Registers `params` (in order) as the tensors whose grads are captured.
  explicit GradSink(const std::vector<Tensor>& params);

  GradSink(const GradSink&) = delete;
  GradSink& operator=(const GradSink&) = delete;

  /// Buffer for `t` if registered (allocated lazily, zero-filled), else
  /// nullptr meaning "use the tensor's own grad".
  std::vector<float>* Redirect(TensorImpl* t);

  /// Adds every touched buffer into its tensor's real grad, in registration
  /// order. Main-thread only; call once per sink.
  void AccumulateInto();

  /// The sink active on the calling thread, or nullptr.
  static GradSink* Current() { return current_; }

  /// Activates a sink on this thread for the lifetime of the scope.
  class Scope {
   public:
    explicit Scope(GradSink* sink) : saved_(current_) { current_ = sink; }
    ~Scope() { current_ = saved_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    GradSink* saved_;
  };

 private:
  struct Entry {
    TensorImpl* tensor;
    std::vector<float> buffer;  // empty until first Redirect hit
  };
  std::vector<Entry> entries_;
  std::unordered_map<const TensorImpl*, size_t> index_;
  static thread_local GradSink* current_;
};

/// True unless a NoGradGuard is active on this thread. Ops skip tape
/// construction entirely (no parents vector, no backward closure, outputs
/// with requires_grad=false) while disabled.
bool GradEnabled();

/// RAII inference mode: disables autograd tape recording on this thread for
/// the guard's lifetime. Nestable.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;
};

/// A 2-D row-major float matrix participating in reverse-mode automatic
/// differentiation.
///
/// This is the training substrate replacing PyTorch (DESIGN.md §2). The
/// deliberate restriction to 2-D covers the whole paper: a trajectory is a
/// `[n, d]` sequence matrix, an embedding is `[1, d]`, and parameters are
/// weight matrices. Batching is by looping over trajectories, which is the
/// right trade-off at this project's (single-core CPU) scale.
class TensorImpl {
 public:
  TensorImpl(int rows, int cols, bool requires_grad)
      : rows_(rows),
        cols_(cols),
        requires_grad_(requires_grad),
        value_(static_cast<size_t>(rows) * cols, 0.0f) {
    T2H_CHECK(rows > 0 && cols > 0);
    if (requires_grad) grad_.assign(value_.size(), 0.0f);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int size() const { return rows_ * cols_; }

  float& at(int r, int c) { return value_[static_cast<size_t>(r) * cols_ + c]; }
  float at(int r, int c) const {
    return value_[static_cast<size_t>(r) * cols_ + c];
  }
  float& grad_at(int r, int c) {
    return grad()[static_cast<size_t>(r) * cols_ + c];
  }

  std::vector<float>& value() { return value_; }
  const std::vector<float>& value() const { return value_; }

  /// Mutable grad access honours the thread's active GradSink, so backward
  /// closures transparently write shared-parameter grads into per-unit
  /// buffers. Hot loops should hoist this call out of per-element code.
  std::vector<float>& grad() {
    if (GradSink* sink = GradSink::Current()) {
      if (std::vector<float>* buf = sink->Redirect(this)) return *buf;
    }
    return grad_;
  }
  const std::vector<float>& grad() const { return grad_; }

  bool requires_grad() const { return requires_grad_; }

  /// Zeroes the accumulated gradient (no-op if grad is not tracked).
  void ZeroGrad() { std::fill(grad_.begin(), grad_.end(), 0.0f); }

  /// Graph wiring — used by ops.cc only.
  const std::vector<Tensor>& parents() const { return parents_; }
  void set_parents(std::vector<Tensor> parents) {
    parents_ = std::move(parents);
  }
  void set_backward(std::function<void(TensorImpl&)> fn) {
    backward_fn_ = std::move(fn);
  }
  const std::function<void(TensorImpl&)>& backward_fn() const {
    return backward_fn_;
  }

 private:
  int rows_;
  int cols_;
  bool requires_grad_;
  std::vector<float> value_;
  std::vector<float> grad_;  // empty unless requires_grad_
  std::vector<Tensor> parents_;
  std::function<void(TensorImpl&)> backward_fn_;
};

/// Creates a zero-initialised tensor.
Tensor MakeTensor(int rows, int cols, bool requires_grad = false);

/// Creates a tensor from row-major values. `values.size()` must equal
/// rows * cols.
Tensor FromValues(int rows, int cols, std::vector<float> values,
                  bool requires_grad = false);

/// Runs reverse-mode differentiation from scalar `loss` (must be 1x1):
/// topologically sorts the reachable graph and accumulates gradients into
/// every tensor with `requires_grad()`. Gradients accumulate across calls
/// until ZeroGrad (mini-batch accumulation relies on this).
void Backward(const Tensor& loss);

}  // namespace traj2hash::nn

#endif  // TRAJ2HASH_NN_TENSOR_H_
