#ifndef TRAJ2HASH_NN_TENSOR_H_
#define TRAJ2HASH_NN_TENSOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/check.h"

namespace traj2hash::nn {

class TensorImpl;

/// Shared handle to a node of the autograd graph. Ops in ops.h take and
/// return `Tensor`s; keeping a `Tensor` alive keeps the backward tape of its
/// ancestors alive.
using Tensor = std::shared_ptr<TensorImpl>;

/// A 2-D row-major float matrix participating in reverse-mode automatic
/// differentiation.
///
/// This is the training substrate replacing PyTorch (DESIGN.md §2). The
/// deliberate restriction to 2-D covers the whole paper: a trajectory is a
/// `[n, d]` sequence matrix, an embedding is `[1, d]`, and parameters are
/// weight matrices. Batching is by looping over trajectories, which is the
/// right trade-off at this project's (single-core CPU) scale.
class TensorImpl {
 public:
  TensorImpl(int rows, int cols, bool requires_grad)
      : rows_(rows),
        cols_(cols),
        requires_grad_(requires_grad),
        value_(static_cast<size_t>(rows) * cols, 0.0f) {
    T2H_CHECK(rows > 0 && cols > 0);
    if (requires_grad) grad_.assign(value_.size(), 0.0f);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int size() const { return rows_ * cols_; }

  float& at(int r, int c) { return value_[static_cast<size_t>(r) * cols_ + c]; }
  float at(int r, int c) const {
    return value_[static_cast<size_t>(r) * cols_ + c];
  }
  float& grad_at(int r, int c) {
    return grad_[static_cast<size_t>(r) * cols_ + c];
  }

  std::vector<float>& value() { return value_; }
  const std::vector<float>& value() const { return value_; }
  std::vector<float>& grad() { return grad_; }
  const std::vector<float>& grad() const { return grad_; }

  bool requires_grad() const { return requires_grad_; }

  /// Zeroes the accumulated gradient (no-op if grad is not tracked).
  void ZeroGrad() { std::fill(grad_.begin(), grad_.end(), 0.0f); }

  /// Graph wiring — used by ops.cc only.
  const std::vector<Tensor>& parents() const { return parents_; }
  void set_parents(std::vector<Tensor> parents) {
    parents_ = std::move(parents);
  }
  void set_backward(std::function<void(TensorImpl&)> fn) {
    backward_fn_ = std::move(fn);
  }
  const std::function<void(TensorImpl&)>& backward_fn() const {
    return backward_fn_;
  }

 private:
  int rows_;
  int cols_;
  bool requires_grad_;
  std::vector<float> value_;
  std::vector<float> grad_;  // empty unless requires_grad_
  std::vector<Tensor> parents_;
  std::function<void(TensorImpl&)> backward_fn_;
};

/// Creates a zero-initialised tensor.
Tensor MakeTensor(int rows, int cols, bool requires_grad = false);

/// Creates a tensor from row-major values. `values.size()` must equal
/// rows * cols.
Tensor FromValues(int rows, int cols, std::vector<float> values,
                  bool requires_grad = false);

/// Runs reverse-mode differentiation from scalar `loss` (must be 1x1):
/// topologically sorts the reachable graph and accumulates gradients into
/// every tensor with `requires_grad()`. Gradients accumulate across calls
/// until ZeroGrad (mini-batch accumulation relies on this).
void Backward(const Tensor& loss);

}  // namespace traj2hash::nn

#endif  // TRAJ2HASH_NN_TENSOR_H_
