#ifndef TRAJ2HASH_NN_KERNELS_BACKEND_H_
#define TRAJ2HASH_NN_KERNELS_BACKEND_H_

/// Internal per-ISA backend table for nn::kernels (DESIGN.md §14). Each
/// backend lives in its own TU (`kernels_scalar.cc`, `kernels_sse2.cc`,
/// `kernels_avx2.cc`) compiled with exactly that ISA's flags; `kernels.cc`
/// resolves the active backend through common/cpu_features. Nothing outside
/// src/nn includes this header.
///
/// Contract (enforced by tests/nn/kernels_isa_test.cc):
///  - Every backend is deterministic: same inputs → bit-identical outputs,
///    independent of blocking, for any call site or thread count.
///  - AddInto/SubInto/AxpyInto/MulInto are bit-identical ACROSS backends
///    (one rounding per element; SIMD backends use separate mul + add, never
///    FMA, to preserve this).
///  - MatMul*/Dot are reductions: each backend fixes its own accumulation
///    order (scalar = ascending index; SIMD = per-lane chains + documented
///    fixed-order horizontal fold), so results agree across backends only to
///    a relative epsilon (~1e-4 at this repo's dims), not bitwise.

namespace traj2hash::nn::kernels {

struct Backend {
  void (*matmul_accum)(const float* a, const float* b, float* c, int n,
                       int k, int m);
  void (*matmul_grad_a)(const float* dc, const float* b, float* da, int n,
                        int k, int m);
  void (*matmul_grad_b)(const float* a, const float* dc, float* db, int n,
                        int k, int m);
  void (*add_into)(float* dst, const float* src, int n);
  void (*sub_into)(float* dst, const float* src, int n);
  void (*axpy_into)(float* dst, const float* src, float s, int n);
  void (*mul_into)(float* dst, const float* a, const float* b, int n);
  float (*dot)(const float* a, const float* b, int n);
};

/// Strict ascending-order loops — bit-identical to the pre-dispatch seed.
const Backend& ScalarBackend();

#if defined(T2H_HAVE_SSE2_BACKEND)
const Backend& Sse2Backend();
#endif
#if defined(T2H_HAVE_AVX2_BACKEND)
const Backend& Avx2Backend();
#endif

}  // namespace traj2hash::nn::kernels

#endif  // TRAJ2HASH_NN_KERNELS_BACKEND_H_
