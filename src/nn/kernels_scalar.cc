// Scalar backend for nn::kernels — the pre-dispatch seed implementations,
// moved here verbatim. This TU is compiled with plain "-O3" (no -m flags), so
// its code stays byte-for-byte what the repo shipped before the SIMD
// backends existed; the scalar path IS the historical baseline.

#include <algorithm>

#include "nn/kernels_backend.h"

namespace traj2hash::nn::kernels {
namespace scalar {
namespace {

/// Output-column tile width (floats). 128 floats = 512 B, so one C row tile
/// plus the streaming B rows stay resident in L1 across the k loop while
/// remaining wide enough to amortise loop overhead at this repo's dims
/// (d = 16 … 256). Blocking only tiles the j loop; per output element the
/// k-accumulation order is untouched (see kernels.h determinism contract).
constexpr int kColTile = 128;

void MatMulAccum(const float* a, const float* b, float* c, int n, int k,
                 int m) {
  for (int j0 = 0; j0 < m; j0 += kColTile) {
    const int jb = std::min(kColTile, m - j0);
    for (int i = 0; i < n; ++i) {
      const float* __restrict arow = a + static_cast<long>(i) * k;
      float* __restrict crow = c + static_cast<long>(i) * m + j0;
      for (int kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        const float* __restrict brow = b + static_cast<long>(kk) * m + j0;
        for (int j = 0; j < jb; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

void MatMulGradA(const float* dc, const float* b, float* da, int n, int k,
                 int m) {
  // dA[i,j] = <dC row i, B row j>: both rows contiguous, ascending c.
  for (int i = 0; i < n; ++i) {
    const float* __restrict dcrow = dc + static_cast<long>(i) * m;
    float* __restrict darow = da + static_cast<long>(i) * k;
    for (int j = 0; j < k; ++j) {
      const float* __restrict brow = b + static_cast<long>(j) * m;
      float acc = 0.0f;
      for (int c = 0; c < m; ++c) acc += dcrow[c] * brow[c];
      darow[j] += acc;
    }
  }
}

void MatMulGradB(const float* a, const float* dc, float* db, int n, int k,
                 int m) {
  // dB[i,:] += A[r,i] * dC[r,:] for each r: rank-1 updates with contiguous
  // rows, r ascending so each dB element accumulates in the naive order.
  for (int r = 0; r < n; ++r) {
    const float* __restrict arow = a + static_cast<long>(r) * k;
    const float* __restrict dcrow = dc + static_cast<long>(r) * m;
    for (int i = 0; i < k; ++i) {
      const float av = arow[i];
      float* __restrict dbrow = db + static_cast<long>(i) * m;
      for (int j = 0; j < m; ++j) dbrow[j] += av * dcrow[j];
    }
  }
}

void AddInto(float* dst, const float* src, int n) {
  for (int i = 0; i < n; ++i) dst[i] += src[i];
}

void SubInto(float* dst, const float* src, int n) {
  for (int i = 0; i < n; ++i) dst[i] -= src[i];
}

void AxpyInto(float* dst, const float* src, float s, int n) {
  for (int i = 0; i < n; ++i) dst[i] += s * src[i];
}

void MulInto(float* dst, const float* a, const float* b, int n) {
  for (int i = 0; i < n; ++i) dst[i] += a[i] * b[i];
}

float Dot(const float* a, const float* b, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace
}  // namespace scalar

const Backend& ScalarBackend() {
  static const Backend backend = {
      scalar::MatMulAccum, scalar::MatMulGradA, scalar::MatMulGradB,
      scalar::AddInto,     scalar::SubInto,     scalar::AxpyInto,
      scalar::MulInto,     scalar::Dot,
  };
  return backend;
}

}  // namespace traj2hash::nn::kernels
