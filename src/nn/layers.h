#ifndef TRAJ2HASH_NN_LAYERS_H_
#define TRAJ2HASH_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "nn/module.h"
#include "nn/ops.h"

namespace traj2hash::nn {

/// Fully connected layer `y = x W + b` with optional bias.
class Linear : public Module {
 public:
  Linear(int in_dim, int out_dim, Rng& rng, bool use_bias = true);

  /// x: [n, in_dim] -> [n, out_dim].
  Tensor Forward(const Tensor& x) const;

  int in_dim() const { return weight_->rows(); }
  int out_dim() const { return weight_->cols(); }

 private:
  Tensor weight_;
  Tensor bias_;  // null when use_bias == false
};

/// Multi-layer perceptron with ReLU on hidden layers (Eq. 9/11's MLP_g and
/// MLP^k are two-layer instances; Eq. 10's MLP_e is a one-layer instance).
class Mlp : public Module {
 public:
  /// `dims` lists layer widths, e.g. {64, 64, 64} builds two linear layers.
  Mlp(const std::vector<int>& dims, Rng& rng);

  Tensor Forward(const Tensor& x) const;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
};

/// Embedding table with row lookup (used by coordinate embeddings and
/// baseline token embeddings).
class Embedding : public Module {
 public:
  Embedding(int num_embeddings, int dim, Rng& rng);

  /// Returns [indices.size(), dim].
  Tensor Forward(const std::vector<int>& indices) const;

  const Tensor& table() const { return table_; }

 private:
  Tensor table_;
};

/// Standard multi-head scaled dot-product self-attention (Eq. 12 with the
/// multi-head strategy of Vaswani et al.). `dim` must be divisible by
/// `num_heads`.
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int dim, int num_heads, Rng& rng);

  /// x: [n, dim] -> [n, dim].
  Tensor Forward(const Tensor& x) const;

 private:
  int num_heads_;
  int head_dim_;
  std::unique_ptr<Linear> wq_, wk_, wv_, wo_;
};

/// Layer normalisation with learnable scale and shift:
///   y = gamma * (x - mean) / sigma + beta, per row.
/// Not part of the paper's Eq. 12 (which uses bare residuals); provided as
/// the library's standard stabiliser and an optional EncoderBlock extension.
class LayerNorm : public Module {
 public:
  LayerNorm(int dim, Rng& rng);

  Tensor Forward(const Tensor& x) const;

 private:
  Tensor gamma_;  // [1, dim], initialised to ones
  Tensor beta_;   // [1, dim], initialised to zeros
};

/// One pre-residual encoder block (Eq. 12):
///   x <- x + Attn(x);  x <- x + MLP(x).
/// With `use_layer_norm`, each sublayer input is pre-normalised (pre-LN
/// transformer) — an extension beyond the paper, off by default.
class EncoderBlock : public Module {
 public:
  EncoderBlock(int dim, int num_heads, int hidden_dim, Rng& rng,
               bool use_layer_norm = false);

  Tensor Forward(const Tensor& x) const;

 private:
  std::unique_ptr<MultiHeadAttention> attn_;
  std::unique_ptr<Mlp> mlp_;
  std::unique_ptr<LayerNorm> norm_attn_;  // null unless use_layer_norm
  std::unique_ptr<LayerNorm> norm_mlp_;
};

/// Gated recurrent unit cell, the backbone of the RNN baselines (NeuTraj,
/// NT-No-SAM, t2vec, CL-TSim).
class GruCell : public Module {
 public:
  GruCell(int in_dim, int hidden_dim, Rng& rng);

  /// One step: x [1, in_dim], h [1, hidden] -> new h [1, hidden].
  Tensor Forward(const Tensor& x, const Tensor& h) const;

  /// Zero initial hidden state (constant).
  Tensor InitialState() const { return Constant(1, hidden_dim_, 0.0f); }

  int hidden_dim() const { return hidden_dim_; }

 private:
  int hidden_dim_;
  std::unique_ptr<Linear> xz_, hz_, xr_, hr_, xh_, hh_;
};

/// Sinusoidal positional encoding (Eq. 8), returned as a constant [n, dim]
/// tensor to be added to a sequence representation.
Tensor PositionalEncoding(int n, int dim);

}  // namespace traj2hash::nn

#endif  // TRAJ2HASH_NN_LAYERS_H_
