#include "nn/layers.h"

#include <cmath>

namespace traj2hash::nn {

Linear::Linear(int in_dim, int out_dim, Rng& rng, bool use_bias) {
  weight_ = RegisterParameter(MakeTensor(in_dim, out_dim, true));
  XavierInit(weight_, rng);
  if (use_bias) {
    bias_ = RegisterParameter(MakeTensor(1, out_dim, true));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  Tensor y = MatMul(x, weight_);
  if (bias_) y = AddRowBroadcast(y, bias_);
  return y;
}

Mlp::Mlp(const std::vector<int>& dims, Rng& rng) {
  T2H_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    RegisterChild(*layers_.back());
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) h = Relu(h);
  }
  return h;
}

Embedding::Embedding(int num_embeddings, int dim, Rng& rng) {
  table_ = RegisterParameter(MakeTensor(num_embeddings, dim, true));
  GaussianInit(table_, 0.1f, rng);
}

Tensor Embedding::Forward(const std::vector<int>& indices) const {
  return GatherRows(table_, indices);
}

MultiHeadAttention::MultiHeadAttention(int dim, int num_heads, Rng& rng)
    : num_heads_(num_heads), head_dim_(dim / num_heads) {
  T2H_CHECK_EQ(head_dim_ * num_heads, dim);
  wq_ = std::make_unique<Linear>(dim, dim, rng, /*use_bias=*/false);
  wk_ = std::make_unique<Linear>(dim, dim, rng, /*use_bias=*/false);
  wv_ = std::make_unique<Linear>(dim, dim, rng, /*use_bias=*/false);
  wo_ = std::make_unique<Linear>(dim, dim, rng);
  RegisterChild(*wq_);
  RegisterChild(*wk_);
  RegisterChild(*wv_);
  RegisterChild(*wo_);
}

Tensor MultiHeadAttention::Forward(const Tensor& x) const {
  const Tensor q = wq_->Forward(x);
  const Tensor k = wk_->Forward(x);
  const Tensor v = wv_->Forward(x);
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  Tensor merged;
  for (int h = 0; h < num_heads_; ++h) {
    const int c0 = h * head_dim_;
    const int c1 = c0 + head_dim_;
    const Tensor qh = SliceCols(q, c0, c1);
    const Tensor kh = SliceCols(k, c0, c1);
    const Tensor vh = SliceCols(v, c0, c1);
    const Tensor scores = Scale(MatMul(qh, Transpose(kh)), scale);
    const Tensor out_h = MatMul(SoftmaxRows(scores), vh);
    merged = merged ? ConcatCols(merged, out_h) : out_h;
  }
  return wo_->Forward(merged);
}

LayerNorm::LayerNorm(int dim, Rng& rng) {
  (void)rng;  // deterministic init; kept for signature uniformity
  gamma_ = RegisterParameter(MakeTensor(1, dim, true));
  std::fill(gamma_->value().begin(), gamma_->value().end(), 1.0f);
  beta_ = RegisterParameter(MakeTensor(1, dim, true));
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  const Tensor normalized = NormalizeRows(x);
  // Broadcast gamma/beta over rows: scale via elementwise trick — expand by
  // matmul with ones is wasteful, so tile through AddRowBroadcast and Mul
  // with a gathered row repeated per row.
  Tensor gamma_rows = GatherRows(gamma_, std::vector<int>(x->rows(), 0));
  const Tensor scaled = Mul(normalized, gamma_rows);
  return AddRowBroadcast(scaled, beta_);
}

EncoderBlock::EncoderBlock(int dim, int num_heads, int hidden_dim, Rng& rng,
                           bool use_layer_norm) {
  attn_ = std::make_unique<MultiHeadAttention>(dim, num_heads, rng);
  mlp_ = std::make_unique<Mlp>(std::vector<int>{dim, hidden_dim, dim}, rng);
  RegisterChild(*attn_);
  RegisterChild(*mlp_);
  if (use_layer_norm) {
    norm_attn_ = std::make_unique<LayerNorm>(dim, rng);
    norm_mlp_ = std::make_unique<LayerNorm>(dim, rng);
    RegisterChild(*norm_attn_);
    RegisterChild(*norm_mlp_);
  }
}

Tensor EncoderBlock::Forward(const Tensor& x) const {
  const Tensor attn_in = norm_attn_ ? norm_attn_->Forward(x) : x;
  const Tensor attended = Add(x, attn_->Forward(attn_in));
  const Tensor mlp_in = norm_mlp_ ? norm_mlp_->Forward(attended) : attended;
  return Add(attended, mlp_->Forward(mlp_in));
}

GruCell::GruCell(int in_dim, int hidden_dim, Rng& rng)
    : hidden_dim_(hidden_dim) {
  xz_ = std::make_unique<Linear>(in_dim, hidden_dim, rng);
  hz_ = std::make_unique<Linear>(hidden_dim, hidden_dim, rng, false);
  xr_ = std::make_unique<Linear>(in_dim, hidden_dim, rng);
  hr_ = std::make_unique<Linear>(hidden_dim, hidden_dim, rng, false);
  xh_ = std::make_unique<Linear>(in_dim, hidden_dim, rng);
  hh_ = std::make_unique<Linear>(hidden_dim, hidden_dim, rng, false);
  RegisterChild(*xz_);
  RegisterChild(*hz_);
  RegisterChild(*xr_);
  RegisterChild(*hr_);
  RegisterChild(*xh_);
  RegisterChild(*hh_);
}

Tensor GruCell::Forward(const Tensor& x, const Tensor& h) const {
  const Tensor z = Sigmoid(Add(xz_->Forward(x), hz_->Forward(h)));
  const Tensor r = Sigmoid(Add(xr_->Forward(x), hr_->Forward(h)));
  const Tensor candidate = Tanh(Add(xh_->Forward(x), hh_->Forward(Mul(r, h))));
  // h' = (1 - z) * h + z * candidate
  const Tensor one_minus_z = AddScalar(Scale(z, -1.0f), 1.0f);
  return Add(Mul(one_minus_z, h), Mul(z, candidate));
}

Tensor PositionalEncoding(int n, int dim) {
  Tensor pe = MakeTensor(n, dim, false);
  for (int pos = 0; pos < n; ++pos) {
    for (int k = 0; 2 * k < dim; ++k) {
      const double rate =
          std::pow(10000.0, 2.0 * k / static_cast<double>(dim));
      pe->at(pos, 2 * k) = static_cast<float>(std::sin(pos / rate));
      if (2 * k + 1 < dim) {
        pe->at(pos, 2 * k + 1) = static_cast<float>(std::cos(pos / rate));
      }
    }
  }
  return pe;
}

}  // namespace traj2hash::nn
