#include "nn/grad_check.h"

#include <cmath>

namespace traj2hash::nn {

double MaxGradError(const Tensor& param, const std::function<Tensor()>& fn,
                    float eps) {
  T2H_CHECK(param->requires_grad());
  // Analytic gradient.
  param->ZeroGrad();
  Tensor loss = fn();
  Backward(loss);
  std::vector<float> analytic = param->grad();
  param->ZeroGrad();

  double max_err = 0.0;
  for (int i = 0; i < param->size(); ++i) {
    const float original = param->value()[i];
    param->value()[i] = original + eps;
    const double up = fn()->value()[0];
    param->value()[i] = original - eps;
    const double down = fn()->value()[0];
    param->value()[i] = original;
    const double numeric = (up - down) / (2.0 * eps);
    max_err = std::max(max_err, std::abs(numeric - analytic[i]));
  }
  return max_err;
}

}  // namespace traj2hash::nn
