// SSE2 backend for nn::kernels — 128-bit (4-float) vectors, no FMA.
//
// Determinism (DESIGN.md §14): elementwise ops vectorise across independent
// elements with separate mul + add, so they are bit-identical to the scalar
// backend. MatMulAccum / MatMulGradB DELEGATE to the scalar backend
// outright: SSE2 is the x86-64 baseline, so the scalar TU's autovectorised
// k-outer streaming form already IS optimal 128-bit code, and a hand-rolled
// j-blocked version that preserves the scalar per-element accumulation
// order serializes on a single add chain and measures ~0.5x (bench_nn_
// kernels isa_sweep). MatMulGradA / Dot reduce along the contiguous axis
// with a 4-lane accumulator and a fixed-order horizontal fold, so they are
// deterministic for this path but NOT bitwise equal to the scalar
// reduction order.
//
// Compiled with "-O3 -msse2 -ffp-contract=off" (see src/nn/CMakeLists.txt);
// contraction is disabled so no mul+add pair can silently fuse.

#include <emmintrin.h>

#include "nn/kernels_backend.h"

namespace traj2hash::nn::kernels {
namespace sse2 {
namespace {

/// Fixed-order fold of the 4 accumulator lanes:
/// ((l0 + l2) + (l1 + l3)) — the one documented order for this backend.
inline float Hsum128(__m128 v) {
  const __m128 hi = _mm_movehl_ps(v, v);         // {l2, l3, l2, l3}
  const __m128 s = _mm_add_ps(v, hi);            // {l0+l2, l1+l3, ..}
  const __m128 sh = _mm_shuffle_ps(s, s, 0x1);   // {l1+l3, ..}
  return _mm_cvtss_f32(_mm_add_ss(s, sh));
}

void MatMulGradA(const float* dc, const float* b, float* da, int n, int k,
                 int m) {
  const int m4 = m & ~3;
  for (int i = 0; i < n; ++i) {
    const float* __restrict dcrow = dc + static_cast<long>(i) * m;
    float* __restrict darow = da + static_cast<long>(i) * k;
    for (int j = 0; j < k; ++j) {
      const float* __restrict brow = b + static_cast<long>(j) * m;
      __m128 vacc = _mm_setzero_ps();
      for (int c = 0; c < m4; c += 4) {
        vacc = _mm_add_ps(
            vacc, _mm_mul_ps(_mm_loadu_ps(dcrow + c), _mm_loadu_ps(brow + c)));
      }
      float acc = Hsum128(vacc);
      for (int c = m4; c < m; ++c) acc += dcrow[c] * brow[c];
      darow[j] += acc;
    }
  }
}

void AddInto(float* dst, const float* src, int n) {
  const int n4 = n & ~3;
  for (int i = 0; i < n4; i += 4)
    _mm_storeu_ps(dst + i, _mm_add_ps(_mm_loadu_ps(dst + i),
                                      _mm_loadu_ps(src + i)));
  for (int i = n4; i < n; ++i) dst[i] += src[i];
}

void SubInto(float* dst, const float* src, int n) {
  const int n4 = n & ~3;
  for (int i = 0; i < n4; i += 4)
    _mm_storeu_ps(dst + i, _mm_sub_ps(_mm_loadu_ps(dst + i),
                                      _mm_loadu_ps(src + i)));
  for (int i = n4; i < n; ++i) dst[i] -= src[i];
}

void AxpyInto(float* dst, const float* src, float s, int n) {
  const __m128 sv = _mm_set1_ps(s);
  const int n4 = n & ~3;
  for (int i = 0; i < n4; i += 4)
    _mm_storeu_ps(dst + i,
                  _mm_add_ps(_mm_loadu_ps(dst + i),
                             _mm_mul_ps(sv, _mm_loadu_ps(src + i))));
  for (int i = n4; i < n; ++i) dst[i] += s * src[i];
}

void MulInto(float* dst, const float* a, const float* b, int n) {
  const int n4 = n & ~3;
  for (int i = 0; i < n4; i += 4)
    _mm_storeu_ps(dst + i,
                  _mm_add_ps(_mm_loadu_ps(dst + i),
                             _mm_mul_ps(_mm_loadu_ps(a + i),
                                        _mm_loadu_ps(b + i))));
  for (int i = n4; i < n; ++i) dst[i] += a[i] * b[i];
}

float Dot(const float* a, const float* b, int n) {
  const int n4 = n & ~3;
  __m128 vacc = _mm_setzero_ps();
  for (int i = 0; i < n4; i += 4)
    vacc = _mm_add_ps(vacc,
                      _mm_mul_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
  float acc = Hsum128(vacc);
  for (int i = n4; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace
}  // namespace sse2

const Backend& Sse2Backend() {
  static const Backend backend = {
      // Delegated: the scalar TU's autovectorised form is the optimal
      // SSE2 code for these two (see the header comment).
      ScalarBackend().matmul_accum,
      sse2::MatMulGradA,
      ScalarBackend().matmul_grad_b,
      sse2::AddInto,     sse2::SubInto,     sse2::AxpyInto,
      sse2::MulInto,     sse2::Dot,
  };
  return backend;
}

}  // namespace traj2hash::nn::kernels
