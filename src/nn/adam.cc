#include "nn/adam.h"

#include <cmath>

namespace traj2hash::nn {

Adam::Adam(std::vector<Tensor> params, Options options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Tensor& p : params_) {
    T2H_CHECK(p->requires_grad());
    m_.emplace_back(p->size(), 0.0f);
    v_.emplace_back(p->size(), 0.0f);
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(options_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(options_.beta2, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    TensorImpl& p = *params_[i];
    std::vector<float>& m = m_[i];
    std::vector<float>& v = v_[i];
    const float* grad = p.grad().data();
    for (int j = 0; j < p.size(); ++j) {
      const float g = grad[j];
      m[j] = options_.beta1 * m[j] + (1.0f - options_.beta1) * g;
      v[j] = options_.beta2 * v[j] + (1.0f - options_.beta2) * g * g;
      const float m_hat = m[j] / bc1;
      const float v_hat = v[j] / bc2;
      p.value()[j] -=
          options_.lr * m_hat / (std::sqrt(v_hat) + options_.epsilon);
    }
    p.ZeroGrad();
  }
}

void Adam::ZeroGrad() {
  for (const Tensor& p : params_) p->ZeroGrad();
}

}  // namespace traj2hash::nn
