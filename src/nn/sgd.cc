#include "nn/sgd.h"

#include <cmath>

namespace traj2hash::nn {

Sgd::Sgd(std::vector<Tensor> params, SgdOptions options)
    : params_(std::move(params)), options_(options) {
  velocity_.reserve(params_.size());
  for (const Tensor& p : params_) {
    T2H_CHECK(p->requires_grad());
    velocity_.emplace_back(options_.momentum > 0.0f ? p->size() : 0, 0.0f);
  }
}

void Sgd::Step() {
  // Weight decay folds into the gradient before the norm is measured, so
  // clipping sees the effective update direction.
  double norm_sq = 0.0;
  for (size_t i = 0; i < params_.size(); ++i) {
    TensorImpl& p = *params_[i];
    float* grad = p.grad().data();
    const float* value = p.value().data();
    for (int j = 0; j < p.size(); ++j) {
      grad[j] += options_.weight_decay * value[j];
      norm_sq += static_cast<double>(grad[j]) * grad[j];
    }
  }
  last_grad_norm_ = std::sqrt(norm_sq);
  float scale = 1.0f;
  if (options_.clip_norm > 0.0f &&
      last_grad_norm_ > options_.clip_norm) {
    scale = options_.clip_norm / static_cast<float>(last_grad_norm_);
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    TensorImpl& p = *params_[i];
    std::vector<float>& v = velocity_[i];
    const float* grad = p.grad().data();
    for (int j = 0; j < p.size(); ++j) {
      const float g = grad[j] * scale;
      if (options_.momentum > 0.0f) {
        v[j] = options_.momentum * v[j] + g;
        p.value()[j] -= options_.lr * v[j];
      } else {
        p.value()[j] -= options_.lr * g;
      }
    }
    p.ZeroGrad();
  }
}

void Sgd::ZeroGrad() {
  for (const Tensor& p : params_) p->ZeroGrad();
}

}  // namespace traj2hash::nn
