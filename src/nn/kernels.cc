#include "nn/kernels.h"

#include <algorithm>
#include <cmath>

#include "common/cpu_features.h"
#include "nn/kernels_backend.h"

namespace traj2hash::nn::kernels {
namespace {

/// One slot per KernelIsa value; unavailable backends alias the scalar
/// entry, but dispatch can only reach them if common/cpu_features reported
/// the ISA available — SetKernelIsa / the env override refuse otherwise, so
/// the alias is a safety net, never a silent fallback.
const Backend* const kBackends[kNumKernelIsas] = {
    &ScalarBackend(),
#if defined(T2H_HAVE_SSE2_BACKEND)
    &Sse2Backend(),
#else
    &ScalarBackend(),
#endif
#if defined(T2H_HAVE_AVX2_BACKEND)
    &Avx2Backend(),
#else
    &ScalarBackend(),
#endif
};

inline const Backend& Active() { return *kBackends[KernelIsaIndex()]; }

}  // namespace

void MatMulAccum(const float* a, const float* b, float* c, int n, int k,
                 int m) {
  Active().matmul_accum(a, b, c, n, k, m);
}

void MatMulGradA(const float* dc, const float* b, float* da, int n, int k,
                 int m) {
  Active().matmul_grad_a(dc, b, da, n, k, m);
}

void MatMulGradB(const float* a, const float* dc, float* db, int n, int k,
                 int m) {
  Active().matmul_grad_b(a, dc, db, n, k, m);
}

void AddInto(float* dst, const float* src, int n) {
  Active().add_into(dst, src, n);
}

void SubInto(float* dst, const float* src, int n) {
  Active().sub_into(dst, src, n);
}

void AxpyInto(float* dst, const float* src, float s, int n) {
  Active().axpy_into(dst, src, s, n);
}

void MulInto(float* dst, const float* a, const float* b, int n) {
  Active().mul_into(dst, a, b, n);
}

float Dot(const float* a, const float* b, int n) {
  return Active().dot(a, b, n);
}

// Softmax fwd/bwd are NOT dispatched: row reductions dominated by exp(), so
// SIMD buys little, and keeping one implementation makes them bit-identical
// across every ISA selection by construction.

void SoftmaxRowsFwd(const float* x, float* out, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    const float* __restrict xrow = x + static_cast<long>(r) * cols;
    float* __restrict orow = out + static_cast<long>(r) * cols;
    float max_v = xrow[0];
    for (int c = 1; c < cols; ++c) max_v = std::max(max_v, xrow[c]);
    float sum = 0.0f;
    for (int c = 0; c < cols; ++c) {
      const float e = std::exp(xrow[c] - max_v);
      orow[c] = e;
      sum += e;
    }
    // Per-element divide (not reciprocal-multiply): keeps the output
    // bit-identical to the pre-kernel implementation.
    for (int c = 0; c < cols; ++c) orow[c] /= sum;
  }
}

void SoftmaxRowsBwd(const float* y, const float* dy, float* dx, int rows,
                    int cols) {
  for (int r = 0; r < rows; ++r) {
    const float* __restrict yrow = y + static_cast<long>(r) * cols;
    const float* __restrict dyrow = dy + static_cast<long>(r) * cols;
    float* __restrict dxrow = dx + static_cast<long>(r) * cols;
    float dot = 0.0f;
    for (int c = 0; c < cols; ++c) dot += dyrow[c] * yrow[c];
    for (int c = 0; c < cols; ++c) dxrow[c] += yrow[c] * (dyrow[c] - dot);
  }
}

}  // namespace traj2hash::nn::kernels
