#ifndef TRAJ2HASH_NN_KERNELS_H_
#define TRAJ2HASH_NN_KERNELS_H_

namespace traj2hash::nn::kernels {

/// Raw-pointer micro-kernels backing the hot ops in ops.cc.
///
/// Each entry point dispatches to a per-ISA backend (scalar / SSE2 / AVX2)
/// selected once per process by common/cpu_features — see DESIGN.md §14 and
/// kernels_backend.h. Determinism contract (DESIGN.md §8 + §14):
///  - every backend is deterministic: same inputs → bit-identical outputs,
///    for any blocking, call-site batching, or thread count;
///  - AddInto/SubInto/AxpyInto/MulInto are bit-identical ACROSS backends
///    (one mul rounding + one add rounding per element; SIMD paths never
///    use FMA for these);
///  - MatMul*/Dot fix a per-backend accumulation order (scalar = the
///    ascending-index naive order, unchanged from the pre-dispatch seed;
///    SIMD = lane-parallel chains + a fixed-order horizontal fold), so
///    results agree across backends to a relative epsilon (~1e-4 at this
///    repo's dims) but not bitwise;
///  - SoftmaxRowsFwd/Bwd are not dispatched at all — one implementation,
///    identical under every ISA selection.
/// Do not add nondeterministic shortcuts (e.g. data-dependent blocking) to
/// any backend: per-path reproducibility is what training and serving rely
/// on.
///
/// All kernels ACCUMULATE into their destination (`+=`), matching autograd
/// semantics; forward paths pass a zero-initialised destination.

/// C[n,m] += A[n,k] * B[k,m].
void MatMulAccum(const float* a, const float* b, float* c, int n, int k,
                 int m);

/// dA[n,k] += dC[n,m] * B[k,m]^T (row-dot form: both operands row-contiguous).
void MatMulGradA(const float* dc, const float* b, float* da, int n, int k,
                 int m);

/// dB[k,m] += A[n,k]^T * dC[n,m] (outer-product form, r ascending).
void MatMulGradB(const float* a, const float* dc, float* db, int n, int k,
                 int m);

/// dst[i] += src[i].
void AddInto(float* dst, const float* src, int n);

/// dst[i] -= src[i].
void SubInto(float* dst, const float* src, int n);

/// dst[i] += s * src[i].
void AxpyInto(float* dst, const float* src, float s, int n);

/// dst[i] += a[i] * b[i].
void MulInto(float* dst, const float* a, const float* b, int n);

/// Ascending-index dot product of two contiguous vectors.
float Dot(const float* a, const float* b, int n);

/// out[r,:] = softmax(x[r,:]) per row, max-subtracted for stability.
void SoftmaxRowsFwd(const float* x, float* out, int rows, int cols);

/// dx[r,:] += y[r,:] * (dy[r,:] - <dy[r,:], y[r,:]>) per row (softmax VJP).
void SoftmaxRowsBwd(const float* y, const float* dy, float* dx, int rows,
                    int cols);

}  // namespace traj2hash::nn::kernels

#endif  // TRAJ2HASH_NN_KERNELS_H_
