#ifndef TRAJ2HASH_NN_KERNELS_H_
#define TRAJ2HASH_NN_KERNELS_H_

namespace traj2hash::nn::kernels {

/// Raw-pointer micro-kernels backing the hot ops in ops.cc.
///
/// Design rules (DESIGN.md §8):
///  - every inner loop walks contiguous memory with unit stride and no
///    `at(r, c)` gather, so `-O3` auto-vectorises it;
///  - matrix products are i-k-j ordered and cache-blocked over output
///    columns, broadcasting one A element across a contiguous B row;
///  - per output element, floating-point accumulation order is EXACTLY the
///    ascending-index order of the naive triple loop, so results are
///    bit-identical to the reference kernel (and therefore independent of
///    the blocking parameters). Do not "optimise" a reduction into multiple
///    accumulators here: that reorders the sum and breaks the repo-wide
///    determinism contract that training and serving rely on.
///
/// All kernels ACCUMULATE into their destination (`+=`), matching autograd
/// semantics; forward paths pass a zero-initialised destination.

/// C[n,m] += A[n,k] * B[k,m].
void MatMulAccum(const float* a, const float* b, float* c, int n, int k,
                 int m);

/// dA[n,k] += dC[n,m] * B[k,m]^T (row-dot form: both operands row-contiguous).
void MatMulGradA(const float* dc, const float* b, float* da, int n, int k,
                 int m);

/// dB[k,m] += A[n,k]^T * dC[n,m] (outer-product form, r ascending).
void MatMulGradB(const float* a, const float* dc, float* db, int n, int k,
                 int m);

/// dst[i] += src[i].
void AddInto(float* dst, const float* src, int n);

/// dst[i] -= src[i].
void SubInto(float* dst, const float* src, int n);

/// dst[i] += s * src[i].
void AxpyInto(float* dst, const float* src, float s, int n);

/// dst[i] += a[i] * b[i].
void MulInto(float* dst, const float* a, const float* b, int n);

/// Ascending-index dot product of two contiguous vectors.
float Dot(const float* a, const float* b, int n);

/// out[r,:] = softmax(x[r,:]) per row, max-subtracted for stability.
void SoftmaxRowsFwd(const float* x, float* out, int rows, int cols);

/// dx[r,:] += y[r,:] * (dy[r,:] - <dy[r,:], y[r,:]>) per row (softmax VJP).
void SoftmaxRowsBwd(const float* y, const float* dy, float* dx, int rows,
                    int cols);

}  // namespace traj2hash::nn::kernels

#endif  // TRAJ2HASH_NN_KERNELS_H_
