#include "distance/distance.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>

#include "common/check.h"

namespace traj2hash::dist {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using traj::Distance;
using traj::Point;
using traj::Trajectory;

}  // namespace

double Dtw(const Trajectory& a, const Trajectory& b) {
  return ConstrainedDtw(a, b, /*window=*/-1);
}

double ConstrainedDtw(const Trajectory& a, const Trajectory& b, int window) {
  T2H_CHECK(!a.empty() && !b.empty());
  const int n = a.size();
  const int m = b.size();
  // For unequal lengths the band must be at least as wide as the diagonal's
  // per-row advance, or no warping path can connect the corners.
  const int effective_window =
      window < 0 ? -1 : std::max(window, (m + n - 1) / n);
  // Two-row DP. Row index i walks over `a`, column j over `b`.
  std::vector<double> prev(m + 1, kInf);
  std::vector<double> curr(m + 1, kInf);
  prev[0] = 0.0;
  for (int i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    int lo = 1, hi = m;
    if (effective_window >= 0) {
      // Sakoe-Chiba band rescaled to rectangular inputs: constrain j around
      // the diagonal position i * m / n.
      const int diag = static_cast<int>(
          std::llround(static_cast<double>(i) * m / n));
      lo = std::max(1, diag - effective_window);
      hi = std::min(m, diag + effective_window);
    }
    for (int j = lo; j <= hi; ++j) {
      const double cost = Distance(a.points[i - 1], b.points[j - 1]);
      const double best =
          std::min({prev[j], curr[j - 1], prev[j - 1]});
      curr[j] = best + cost;
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double Frechet(const Trajectory& a, const Trajectory& b) {
  T2H_CHECK(!a.empty() && !b.empty());
  const int n = a.size();
  const int m = b.size();
  std::vector<double> prev(m, 0.0);
  std::vector<double> curr(m, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      const double cost = Distance(a.points[i], b.points[j]);
      double reach;
      if (i == 0 && j == 0) {
        reach = cost;
      } else if (i == 0) {
        reach = std::max(curr[j - 1], cost);
      } else if (j == 0) {
        reach = std::max(prev[j], cost);
      } else {
        reach = std::max(std::min({prev[j], curr[j - 1], prev[j - 1]}), cost);
      }
      curr[j] = reach;
    }
    std::swap(prev, curr);
  }
  return prev[m - 1];
}

double Hausdorff(const Trajectory& a, const Trajectory& b) {
  T2H_CHECK(!a.empty() && !b.empty());
  auto directed = [](const Trajectory& s, const Trajectory& t) {
    double worst = 0.0;
    for (const Point& p : s.points) {
      double best = kInf;
      for (const Point& q : t.points) {
        best = std::min(best, traj::SquaredDistance(p, q));
      }
      worst = std::max(worst, best);
    }
    return std::sqrt(worst);
  };
  return std::max(directed(a, b), directed(b, a));
}

double Erp(const Trajectory& a, const Trajectory& b, const Point& gap) {
  T2H_CHECK(!a.empty() && !b.empty());
  const int n = a.size();
  const int m = b.size();
  std::vector<double> prev(m + 1, 0.0);
  std::vector<double> curr(m + 1, 0.0);
  // First row: all of b matched against gaps.
  for (int j = 1; j <= m; ++j) {
    prev[j] = prev[j - 1] + Distance(b.points[j - 1], gap);
  }
  for (int i = 1; i <= n; ++i) {
    curr[0] = prev[0] + Distance(a.points[i - 1], gap);
    for (int j = 1; j <= m; ++j) {
      const double match =
          prev[j - 1] + Distance(a.points[i - 1], b.points[j - 1]);
      const double gap_a = prev[j] + Distance(a.points[i - 1], gap);
      const double gap_b = curr[j - 1] + Distance(b.points[j - 1], gap);
      curr[j] = std::min({match, gap_a, gap_b});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double LcssDistance(const Trajectory& a, const Trajectory& b,
                    double epsilon) {
  T2H_CHECK(!a.empty() && !b.empty());
  T2H_CHECK_GE(epsilon, 0.0);
  const int n = a.size();
  const int m = b.size();
  const double eps_sq = epsilon * epsilon;
  std::vector<int> prev(m + 1, 0);
  std::vector<int> curr(m + 1, 0);
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= m; ++j) {
      if (traj::SquaredDistance(a.points[i - 1], b.points[j - 1]) <= eps_sq) {
        curr[j] = prev[j - 1] + 1;
      } else {
        curr[j] = std::max(prev[j], curr[j - 1]);
      }
    }
    std::swap(prev, curr);
  }
  const int lcss = prev[m];
  return 1.0 - static_cast<double>(lcss) / std::min(n, m);
}

double Edr(const Trajectory& a, const Trajectory& b, double epsilon) {
  T2H_CHECK(!a.empty() && !b.empty());
  T2H_CHECK_GE(epsilon, 0.0);
  const int n = a.size();
  const int m = b.size();
  const double eps_sq = epsilon * epsilon;
  std::vector<double> prev(m + 1), curr(m + 1);
  for (int j = 0; j <= m; ++j) prev[j] = j;
  for (int i = 1; i <= n; ++i) {
    curr[0] = i;
    for (int j = 1; j <= m; ++j) {
      const double subcost =
          traj::SquaredDistance(a.points[i - 1], b.points[j - 1]) <= eps_sq
              ? 0.0
              : 1.0;
      curr[j] = std::min({prev[j - 1] + subcost, prev[j] + 1.0,
                          curr[j - 1] + 1.0});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double EndpointLowerBound(const Trajectory& a, const Trajectory& b) {
  T2H_CHECK(!a.empty() && !b.empty());
  const double first = Distance(a.points.front(), b.points.front());
  const double last = Distance(a.points.back(), b.points.back());
  return std::max(first, last);
}

DistanceFn GetDistance(Measure m) {
  switch (m) {
    case Measure::kFrechet:
      return [](const Trajectory& a, const Trajectory& b) {
        return Frechet(a, b);
      };
    case Measure::kHausdorff:
      return [](const Trajectory& a, const Trajectory& b) {
        return Hausdorff(a, b);
      };
    case Measure::kDtw:
      return [](const Trajectory& a, const Trajectory& b) {
        return Dtw(a, b);
      };
  }
  T2H_CHECK_MSG(false, "unknown measure");
  return {};
}

Result<Measure> ParseMeasure(const std::string& name) {
  if (name == "frechet") return Measure::kFrechet;
  if (name == "hausdorff") return Measure::kHausdorff;
  if (name == "dtw") return Measure::kDtw;
  return Status::InvalidArgument("unknown measure: " + name);
}

std::string MeasureName(Measure m) {
  switch (m) {
    case Measure::kFrechet:
      return "Frechet";
    case Measure::kHausdorff:
      return "Hausdorff";
    case Measure::kDtw:
      return "DTW";
  }
  return "?";
}

bool HasEndpointLowerBound(Measure m) { return m != Measure::kHausdorff; }

std::vector<double> PairwiseMatrix(const std::vector<Trajectory>& ts,
                                   const DistanceFn& fn) {
  const int n = static_cast<int>(ts.size());
  std::vector<double> d(static_cast<size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double v = fn(ts[i], ts[j]);
      d[static_cast<size_t>(i) * n + j] = v;
      d[static_cast<size_t>(j) * n + i] = v;
    }
  }
  return d;
}

std::vector<double> PairwiseMatrixParallel(const std::vector<Trajectory>& ts,
                                           const DistanceFn& fn,
                                           int num_threads) {
  if (num_threads <= 1) return PairwiseMatrix(ts, fn);
  const int n = static_cast<int>(ts.size());
  std::vector<double> d(static_cast<size_t>(n) * n, 0.0);
  // Workers write disjoint (i, j) entries, so no synchronisation is needed
  // beyond the joins. Row striping (i % workers) balances the triangular
  // workload better than contiguous blocks.
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (int w = 0; w < num_threads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = w; i < n; i += num_threads) {
        for (int j = i + 1; j < n; ++j) {
          const double v = fn(ts[i], ts[j]);
          d[static_cast<size_t>(i) * n + j] = v;
          d[static_cast<size_t>(j) * n + i] = v;
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  return d;
}

}  // namespace traj2hash::dist
