#ifndef TRAJ2HASH_DISTANCE_EXACT_SEARCH_H_
#define TRAJ2HASH_DISTANCE_EXACT_SEARCH_H_

#include <vector>

#include "distance/distance.h"
#include "search/knn.h"

namespace traj2hash::dist {

/// Result of a pruned exact search: the exact top-k plus how many dynamic
/// programs actually ran (the pruning power).
struct ExactSearchResult {
  std::vector<search::Neighbor> neighbors;
  int dp_evaluations = 0;  ///< full DP distance computations performed
  int pruned = 0;          ///< candidates skipped via the lower bound
};

/// Exact top-k search over raw trajectories under DTW or the Fréchet
/// distance, accelerated with Lemma 1: a candidate whose endpoint lower
/// bound already exceeds the current k-th best distance cannot enter the
/// result, so its O(n^2) dynamic program is skipped. Results are identical
/// (including tie order) to scoring every candidate.
///
/// The paper remarks the bound "seems loose for pruning" and uses it for
/// representation learning instead; this function quantifies exactly how
/// much pruning it does buy (see bench_ext_lb_pruning).
ExactSearchResult ExactTopKWithLowerBound(
    const traj::Trajectory& query,
    const std::vector<traj::Trajectory>& database, Measure measure, int k);

}  // namespace traj2hash::dist

#endif  // TRAJ2HASH_DISTANCE_EXACT_SEARCH_H_
