#include "distance/exact_search.h"

#include <algorithm>

#include "common/check.h"

namespace traj2hash::dist {

ExactSearchResult ExactTopKWithLowerBound(
    const traj::Trajectory& query,
    const std::vector<traj::Trajectory>& database, Measure measure, int k) {
  T2H_CHECK_GE(k, 1);
  T2H_CHECK_MSG(HasEndpointLowerBound(measure),
                "Lemma 1 does not apply to this measure");
  const DistanceFn fn = GetDistance(measure);
  ExactSearchResult result;
  // Order candidates by ascending lower bound so the k-th best distance
  // tightens early and prunes the tail.
  std::vector<std::pair<double, int>> by_bound;
  by_bound.reserve(database.size());
  for (size_t i = 0; i < database.size(); ++i) {
    by_bound.push_back(
        {EndpointLowerBound(query, database[i]), static_cast<int>(i)});
  }
  std::sort(by_bound.begin(), by_bound.end());

  k = std::min<int>(k, static_cast<int>(database.size()));
  // Max-heap of current best k, ordered by the shared deterministic
  // (distance, index) comparison.
  auto worse = [](const search::Neighbor& a, const search::Neighbor& b) {
    return search::NeighborLess(a, b);
  };
  std::vector<search::Neighbor> heap;
  heap.reserve(k);
  for (const auto& [bound, idx] : by_bound) {
    if (static_cast<int>(heap.size()) == k && bound > heap.front().distance) {
      // Every remaining candidate has an even larger bound.
      result.pruned +=
          static_cast<int>(database.size()) - result.dp_evaluations -
          result.pruned;
      break;
    }
    const double d = fn(query, database[idx]);
    ++result.dp_evaluations;
    const search::Neighbor candidate{idx, d};
    if (static_cast<int>(heap.size()) < k) {
      heap.push_back(candidate);
      std::push_heap(heap.begin(), heap.end(), worse);
    } else if (worse(candidate, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), worse);
      heap.back() = candidate;
      std::push_heap(heap.begin(), heap.end(), worse);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), worse);
  result.neighbors = std::move(heap);
  return result;
}

}  // namespace traj2hash::dist
