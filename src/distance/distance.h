#ifndef TRAJ2HASH_DISTANCE_DISTANCE_H_
#define TRAJ2HASH_DISTANCE_DISTANCE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "traj/trajectory.h"

namespace traj2hash::dist {

/// Dynamic Time Warping distance (Definition 3):
///   D[i][j] = min(D[i-1][j], D[i][j-1], D[i-1][j-1]) + d(T1[i], T2[j]).
/// O(n*m) time, O(min(n,m)) space. Requires both trajectories non-empty.
double Dtw(const traj::Trajectory& a, const traj::Trajectory& b);

/// Constrained DTW with a Sakoe-Chiba band of half-width `window` around the
/// (rescaled) diagonal — the classic "fast DTW" heuristic the paper cites as
/// the traditional approximation baseline (cDTW). `window < 0` means
/// unconstrained (identical to Dtw).
double ConstrainedDtw(const traj::Trajectory& a, const traj::Trajectory& b,
                      int window);

/// Discrete Fréchet distance (Definition 3):
///   F[i][j] = max(min(F[i-1][j], F[i][j-1], F[i-1][j-1]), d(T1[i], T2[j])).
double Frechet(const traj::Trajectory& a, const traj::Trajectory& b);

/// Symmetric Hausdorff distance: max over both directed Hausdorff distances.
double Hausdorff(const traj::Trajectory& a, const traj::Trajectory& b);

/// Edit distance with Real Penalty (ERP) with gap point `g` (the origin by
/// default). A metric, unlike DTW. Included as the paper's third classic
/// measure family (cited as motivation in §I).
double Erp(const traj::Trajectory& a, const traj::Trajectory& b,
           const traj::Point& gap = traj::Point{0.0, 0.0});

/// Longest Common SubSequence similarity turned into a distance:
///   1 - LCSS(a, b) / min(|a|, |b|),
/// where two points match when within `epsilon` metres. In [0, 1].
double LcssDistance(const traj::Trajectory& a, const traj::Trajectory& b,
                    double epsilon);

/// Edit Distance on Real sequences (EDR): edit distance where a
/// substitution is free when the points are within `epsilon` metres and
/// costs 1 otherwise; insertions/deletions cost 1.
double Edr(const traj::Trajectory& a, const traj::Trajectory& b,
           double epsilon);

/// Lemma 1 lower bound for DTW / Fréchet: the larger of the first-points and
/// last-points Euclidean distances. Always <= Dtw(a, b) and <= Frechet(a, b).
double EndpointLowerBound(const traj::Trajectory& a,
                          const traj::Trajectory& b);

/// A named trajectory distance function.
using DistanceFn = std::function<double(const traj::Trajectory&,
                                        const traj::Trajectory&)>;

/// The measures evaluated in the paper.
enum class Measure { kFrechet, kHausdorff, kDtw };

/// Resolves a measure to its exact distance function.
DistanceFn GetDistance(Measure m);

/// Resolves a measure by its lowercase name ("frechet", "hausdorff", "dtw").
Result<Measure> ParseMeasure(const std::string& name);

/// Human-readable name of a measure, matching the paper's table headers.
std::string MeasureName(Measure m);

/// Whether Lemma 1 (endpoint lower bound) applies to this measure. True for
/// DTW and Fréchet, false for Hausdorff (sets-based, order-free).
bool HasEndpointLowerBound(Measure m);

/// Computes the full symmetric pairwise distance matrix over `ts`, the
/// supervision used by the WMSE objective (Eq. 17). Result is row-major
/// n*n with zeros on the diagonal.
std::vector<double> PairwiseMatrix(const std::vector<traj::Trajectory>& ts,
                                   const DistanceFn& fn);

/// Multi-threaded PairwiseMatrix (the paper computes its ground truth "under
/// the parallel run with 20 multiprocessors"). Rows are striped across
/// `num_threads` workers; `num_threads <= 1` falls back to the serial path.
/// Results are bit-identical to PairwiseMatrix. `fn` must be safe to invoke
/// concurrently (all measures in this header are).
std::vector<double> PairwiseMatrixParallel(
    const std::vector<traj::Trajectory>& ts, const DistanceFn& fn,
    int num_threads);

}  // namespace traj2hash::dist

#endif  // TRAJ2HASH_DISTANCE_DISTANCE_H_
