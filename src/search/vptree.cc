#include "search/vptree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace traj2hash::search {
namespace {

/// Worse-first ordering for the candidate heap: larger distance first,
/// then larger index, so the heap's front is the entry to evict. Shares
/// NeighborLess with every other ranking path for deterministic ties.
bool WorseThan(const Neighbor& a, const Neighbor& b) {
  return NeighborLess(a, b);
}

}  // namespace

VpTree::VpTree(std::vector<std::vector<float>> embeddings, Rng& rng)
    : points_(std::move(embeddings)) {
  T2H_CHECK(!points_.empty());
  const size_t width = points_[0].size();
  for (const auto& p : points_) T2H_CHECK_EQ(p.size(), width);
  std::vector<int> ids(points_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int>(i);
  nodes_.reserve(points_.size());
  root_ = Build(ids, 0, static_cast<int>(ids.size()), rng);
}

double VpTree::DistanceTo(int point, const std::vector<float>& query) const {
  const std::vector<float>& p = points_[point];
  T2H_CHECK_EQ(p.size(), query.size());
  double acc = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    const double diff = static_cast<double>(p[i]) - query[i];
    acc += diff * diff;
  }
  ++last_distance_evals_;
  return std::sqrt(acc);
}

int VpTree::Build(std::vector<int>& ids, int lo, int hi, Rng& rng) {
  if (lo >= hi) return -1;
  const int node_idx = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  // Random vantage point, swapped to the front of the range.
  std::swap(ids[lo], ids[rng.UniformInt(lo, hi - 1)]);
  const int vp = ids[lo];
  nodes_[node_idx].point = vp;
  if (hi - lo == 1) return node_idx;

  // Median split of the remaining points by distance to the vantage point.
  const int mid = lo + 1 + (hi - lo - 1) / 2;
  std::nth_element(ids.begin() + lo + 1, ids.begin() + mid, ids.begin() + hi,
                   [&](int a, int b) {
                     return DistanceTo(a, points_[vp]) <
                            DistanceTo(b, points_[vp]);
                   });
  const double radius = DistanceTo(ids[mid], points_[vp]);
  // Children created after the split; node vector may reallocate, so write
  // through the index, not a reference.
  const int inside = Build(ids, lo + 1, mid + 1, rng);
  const int outside = Build(ids, mid + 1, hi, rng);
  nodes_[node_idx].radius = radius;
  nodes_[node_idx].inside = inside;
  nodes_[node_idx].outside = outside;
  return node_idx;
}

void VpTree::Search(int node, const std::vector<float>& query, int k,
                    std::vector<Neighbor>& heap, double& tau) const {
  if (node < 0) return;
  const Node& n = nodes_[node];
  const double d = DistanceTo(n.point, query);
  const Neighbor candidate{n.point, d};
  if (static_cast<int>(heap.size()) < k) {
    heap.push_back(candidate);
    std::push_heap(heap.begin(), heap.end(), WorseThan);
    if (static_cast<int>(heap.size()) == k) tau = heap.front().distance;
  } else if (WorseThan(candidate, heap.front())) {
    std::pop_heap(heap.begin(), heap.end(), WorseThan);
    heap.back() = candidate;
    std::push_heap(heap.begin(), heap.end(), WorseThan);
    tau = heap.front().distance;
  }
  if (n.inside < 0 && n.outside < 0) return;
  // Visit the more promising side first; prune the other when no point in
  // it can be within tau (<= keeps boundary ties visitable).
  if (d < n.radius) {
    Search(n.inside, query, k, heap, tau);
    if (n.radius - d <= tau) Search(n.outside, query, k, heap, tau);
  } else {
    Search(n.outside, query, k, heap, tau);
    if (d - n.radius <= tau) Search(n.inside, query, k, heap, tau);
  }
}

std::vector<Neighbor> VpTree::TopK(const std::vector<float>& query,
                                   int k) const {
  T2H_CHECK_GE(k, 1);
  last_distance_evals_ = 0;
  k = std::min(k, size());
  std::vector<Neighbor> heap;
  heap.reserve(k);
  double tau = std::numeric_limits<double>::infinity();
  Search(root_, query, k, heap, tau);
  std::sort_heap(heap.begin(), heap.end(), WorseThan);
  return heap;
}

}  // namespace traj2hash::search
