#include "search/strategy.h"

namespace traj2hash::search {

const char* StrategyName(SearchStrategy strategy) {
  switch (strategy) {
    case SearchStrategy::kBrute:
      return "brute";
    case SearchStrategy::kRadius2:
      return "radius2";
    case SearchStrategy::kMih:
      return "mih";
  }
  return "unknown";
}

Result<SearchStrategy> ParseStrategy(const std::string& name) {
  if (name == "brute") return SearchStrategy::kBrute;
  if (name == "radius2") return SearchStrategy::kRadius2;
  if (name == "mih") return SearchStrategy::kMih;
  return Status::InvalidArgument("unknown search strategy '" + name +
                                 "' (expected brute, radius2 or mih)");
}

}  // namespace traj2hash::search
