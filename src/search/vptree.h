#ifndef TRAJ2HASH_SEARCH_VPTREE_H_
#define TRAJ2HASH_SEARCH_VPTREE_H_

#include <vector>

#include "common/rng.h"
#include "search/knn.h"

namespace traj2hash::search {

/// Vantage-point tree over dense embeddings for exact Euclidean k-NN with
/// triangle-inequality pruning.
///
/// The paper motivates Traj2Hash partly by the observation that neural
/// similarity methods "calculate all the distances between the query ... and
/// the trajectories in the database", i.e. they lack "a data structure ...
/// to organize the latent space for pruning" (§I). Hamming codes are the
/// paper's answer; this VP-tree is the classical metric-space alternative
/// for the Euclidean side, provided so Euclidean-space retrieval does not
/// have to be a linear scan either.
class VpTree {
 public:
  /// Builds the tree over row-major embeddings (all the same width).
  /// `rng` drives vantage-point selection.
  VpTree(std::vector<std::vector<float>> embeddings, Rng& rng);

  /// Exact k nearest neighbours of `query` by Euclidean distance; identical
  /// results (including tie order) to TopKEuclidean.
  std::vector<Neighbor> TopK(const std::vector<float>& query, int k) const;

  int size() const { return static_cast<int>(points_.size()); }

  /// Number of distance evaluations during the last TopK call (single
  /// query); exposes the pruning power for tests and benches.
  int last_distance_evals() const { return last_distance_evals_; }

 private:
  struct Node {
    int point = -1;        ///< vantage point (index into points_)
    double radius = 0.0;   ///< median distance to the subtree's points
    int inside = -1;       ///< child covering distance <= radius
    int outside = -1;      ///< child covering distance > radius
  };

  int Build(std::vector<int>& ids, int lo, int hi, Rng& rng);
  void Search(int node, const std::vector<float>& query, int k,
              std::vector<Neighbor>& heap, double& tau) const;
  double DistanceTo(int point, const std::vector<float>& query) const;

  std::vector<std::vector<float>> points_;
  std::vector<Node> nodes_;
  int root_ = -1;
  mutable int last_distance_evals_ = 0;
};

}  // namespace traj2hash::search

#endif  // TRAJ2HASH_SEARCH_VPTREE_H_
