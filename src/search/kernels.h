#ifndef TRAJ2HASH_SEARCH_KERNELS_H_
#define TRAJ2HASH_SEARCH_KERNELS_H_

#include <cstdint>

namespace traj2hash::search::kernels {

/// Raw-pointer scan micro-kernels backing the flat search paths
/// (knn.cc, hamming_index.cc, mih.cc). Same design rules as nn::kernels
/// (DESIGN.md §8/§9): contiguous unit-stride inner loops over `__restrict`
/// pointers, compiled -O3 in this TU only, and a determinism contract —
/// Hamming distances are exact integer popcount sums (order-free), while the
/// squared-L2 scan keeps ONE double accumulator per row folded in ascending
/// column order, so `TopKEuclidean` stays bit-identical to the seed's
/// per-row scalar loop for any row blocking.

/// out[i] = popcount Hamming distance between `query` and db row i, for n
/// rows of `words_per_code` contiguous words each. Word-unrolled for the
/// common widths (1..3 words = 64/128/192 bits).
void HammingScan(const uint64_t* db, const uint64_t* query, int n,
                 int words_per_code, int32_t* out);

/// Popcount Hamming distance of one packed row pair.
int HammingDistanceRow(const uint64_t* a, const uint64_t* b,
                       int words_per_code);

/// out[i] = squared Euclidean distance (double) between `query` and db row
/// i, for n rows of `dim` contiguous floats. Rows are processed in blocks of
/// 4 with one independent accumulator each — vectorisable across rows while
/// each row's accumulation order stays the seed's ascending-j order.
void SquaredL2Scan(const float* db, const float* query, int n, int dim,
                   double* out);

}  // namespace traj2hash::search::kernels

#endif  // TRAJ2HASH_SEARCH_KERNELS_H_
