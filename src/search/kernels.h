#ifndef TRAJ2HASH_SEARCH_KERNELS_H_
#define TRAJ2HASH_SEARCH_KERNELS_H_

#include <cstdint>

namespace traj2hash::search::kernels {

/// Raw-pointer scan micro-kernels backing the flat search paths
/// (knn.cc, hamming_index.cc, mih.cc, live_index.cc).
///
/// Each entry point dispatches to a per-ISA backend (scalar / SSE2 / AVX2)
/// selected once per process by common/cpu_features — see DESIGN.md §14 and
/// kernels_backend.h. Determinism contract (DESIGN.md §8/§9 + §14):
///  - Hamming kernels are exact integer popcount sums, bit-identical across
///    EVERY backend — the exactness oracles in the search tests gate all of
///    brute/radius2/mih on all ISA paths;
///  - SquaredL2Scan fixes a per-backend accumulation order (scalar = the
///    seed's ascending-j single double chain; SIMD = lane-parallel chains +
///    a fixed-order fold), deterministic per path for any row blocking, and
///    equal across paths only to a relative epsilon.
///
/// Rows may be PADDED: `stride_words` / `stride` give the distance between
/// consecutive row starts, ≥ the logical width. When a row is padded, the
/// padding MUST be zero-filled (PackedCodes/FlatMatrix guarantee this) —
/// aligned SIMD fast paths fold whole blocks and rely on padding XOR/diff
/// contributing nothing.

/// out[i] = popcount Hamming distance between `query` (words_per_code
/// contiguous words) and db row i (rows start stride_words apart).
void HammingScan(const uint64_t* db, const uint64_t* query, int n,
                 int words_per_code, int stride_words, int32_t* out);

/// Popcount Hamming distance of one packed row pair.
int HammingDistanceRow(const uint64_t* a, const uint64_t* b,
                       int words_per_code);

/// out[i] = squared Euclidean distance (double) between `query` (dim
/// contiguous floats) and db row i (rows start `stride` floats apart).
void SquaredL2Scan(const float* db, const float* query, int n, int dim,
                   int stride, double* out);

/// out[i] = Σ_j scale_sq[j] · (db_ij − query_j)² as double — the squared
/// Euclidean distance between the DEQUANTIZED forms of db row i and `query`,
/// both int8 rows quantized under the same per-dimension affine params
/// (quant/quantized_matrix.h). The shared zero-points cancel in the
/// difference, so the scan needs only the squared per-dim steps
/// (`scale_sq[j] = s_j²`) — no dequantization on the hot path. Rows start
/// `stride` BYTES apart (QuantizedMatrix pads stride to 32 B).
///
/// Same determinism contract as SquaredL2Scan: the int8 difference and its
/// square are exact on every backend; each backend fixes its own
/// accumulation order (scalar = ascending-j double chain), deterministic
/// per path, equal across paths only to a relative epsilon.
void QuantizedL2Scan(const int8_t* db, const int8_t* query,
                     const float* scale_sq, int n, int dim, int stride,
                     double* out);

}  // namespace traj2hash::search::kernels

#endif  // TRAJ2HASH_SEARCH_KERNELS_H_
