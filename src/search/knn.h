#ifndef TRAJ2HASH_SEARCH_KNN_H_
#define TRAJ2HASH_SEARCH_KNN_H_

#include <vector>

#include "search/code.h"

namespace traj2hash::search {

/// One retrieved database entry.
struct Neighbor {
  int index = -1;
  double distance = 0.0;
};

/// The one deterministic ordering every ranking path in this repo uses:
/// ascending distance, ties broken by ascending index. Centralised so
/// sharded fan-out merges (serve/sharded_index.h) are bit-identical to the
/// single-index paths, and so reproducibility does not depend on N copies of
/// the same lambda staying in sync.
inline bool NeighborLess(const Neighbor& a, const Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.index < b.index;
}

/// Brute-force top-k by Euclidean distance over dense embeddings
/// (the paper's Euclidean-BF strategy). `db` holds row-major embeddings of
/// equal length; ties broken by lower index. k is clamped to db size.
std::vector<Neighbor> TopKEuclidean(const std::vector<std::vector<float>>& db,
                                    const std::vector<float>& query, int k);

/// Brute-force top-k by Hamming distance over binary codes (Hamming-BF).
std::vector<Neighbor> TopKHamming(const std::vector<Code>& db,
                                  const Code& query, int k);

}  // namespace traj2hash::search

#endif  // TRAJ2HASH_SEARCH_KNN_H_
