#ifndef TRAJ2HASH_SEARCH_KNN_H_
#define TRAJ2HASH_SEARCH_KNN_H_

#include <cstdint>
#include <vector>

#include "search/code.h"
#include "search/flat_storage.h"

namespace traj2hash::search {

/// One retrieved database entry.
struct Neighbor {
  int index = -1;
  double distance = 0.0;
};

/// The one deterministic ordering every ranking path in this repo uses:
/// ascending distance, ties broken by ascending index. Centralised so
/// sharded fan-out merges (serve/sharded_index.h) are bit-identical to the
/// single-index paths, and so reproducibility does not depend on N copies of
/// the same lambda staying in sync.
inline bool NeighborLess(const Neighbor& a, const Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.index < b.index;
}

/// Brute-force top-k by Euclidean distance over a flat embedding matrix
/// (the paper's Euclidean-BF strategy), routed through the blocked
/// search::kernels L2 scan. Ties broken by lower index; k is clamped to the
/// database size. Bit-identical to the historical nested-vector overload.
std::vector<Neighbor> TopKEuclidean(const FlatMatrix& db,
                                    const std::vector<float>& query, int k);

/// Nested-vector convenience overload: validates row widths once up front
/// (not per candidate inside the distance loop), then scans.
std::vector<Neighbor> TopKEuclidean(const std::vector<std::vector<float>>& db,
                                    const std::vector<float>& query, int k);

/// Brute-force top-k by Hamming distance over packed codes (Hamming-BF),
/// routed through the word-unrolled popcount scan kernel. Distances are
/// selected as integers and widened to the Neighbor's double only for the k
/// survivors.
///
/// `skip` is an optional tombstone filter for live indexes (ingest::
/// LiveIndex): when non-null it points at `db.size()` flags and rows with a
/// non-zero flag are excluded from selection (the scan kernel still computes
/// their distance — cheaper than a branch per row). nullptr (the default)
/// is bit-identical to the historical unfiltered scan.
std::vector<Neighbor> TopKHamming(const PackedCodes& db, const Code& query,
                                  int k, const uint8_t* skip = nullptr);

/// Unpacked convenience overload (packs, then scans).
std::vector<Neighbor> TopKHamming(const std::vector<Code>& db,
                                  const Code& query, int k);

}  // namespace traj2hash::search

#endif  // TRAJ2HASH_SEARCH_KNN_H_
