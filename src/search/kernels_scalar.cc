// Scalar backend for search::kernels — the pre-dispatch seed
// implementations, moved here verbatim apart from the row stride parameter
// (the seed assumed stride == words_per_code / dim; rows are now allowed to
// be padded). Compiled with plain "-O3", no -m flags: this path is the
// historical baseline and must stay bit-identical to it.

#include <bit>

#include "search/kernels_backend.h"

namespace traj2hash::search::kernels {
namespace scalar {
namespace {

/// Fixed-width scan: `W` words per row known at compile time, so the popcount
/// reduction fully unrolls and the row pointer advances by a constant.
template <int W>
void HammingScanFixed(const uint64_t* __restrict db,
                      const uint64_t* __restrict query, int n,
                      int stride_words, int32_t* __restrict out) {
  for (int i = 0; i < n; ++i) {
    const uint64_t* __restrict row = db + static_cast<long>(i) * stride_words;
    int32_t dist = 0;
    for (int w = 0; w < W; ++w) dist += std::popcount(row[w] ^ query[w]);
    out[i] = dist;
  }
}

void HammingScan(const uint64_t* db, const uint64_t* query, int n,
                 int words_per_code, int stride_words, int32_t* out) {
  switch (words_per_code) {
    case 1:
      HammingScanFixed<1>(db, query, n, stride_words, out);
      return;
    case 2:
      HammingScanFixed<2>(db, query, n, stride_words, out);
      return;
    case 3:
      HammingScanFixed<3>(db, query, n, stride_words, out);
      return;
    case 4:
      HammingScanFixed<4>(db, query, n, stride_words, out);
      return;
    default:
      break;
  }
  for (int i = 0; i < n; ++i) {
    const uint64_t* __restrict row = db + static_cast<long>(i) * stride_words;
    int32_t dist = 0;
    for (int w = 0; w < words_per_code; ++w) {
      dist += std::popcount(row[w] ^ query[w]);
    }
    out[i] = dist;
  }
}

int HammingDistanceRow(const uint64_t* a, const uint64_t* b,
                       int words_per_code) {
  int dist = 0;
  for (int w = 0; w < words_per_code; ++w) {
    dist += std::popcount(a[w] ^ b[w]);
  }
  return dist;
}

void SquaredL2Scan(const float* db, const float* query, int n, int dim,
                   int stride, double* out) {
  int i = 0;
  // 4-row blocks: four independent accumulator chains let the compiler keep
  // the query row register-resident and overlap the (strictly ordered)
  // per-row double adds across rows.
  for (; i + 4 <= n; i += 4) {
    const float* __restrict r0 = db + static_cast<long>(i) * stride;
    const float* __restrict r1 = r0 + stride;
    const float* __restrict r2 = r1 + stride;
    const float* __restrict r3 = r2 + stride;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (int j = 0; j < dim; ++j) {
      const double q = query[j];
      const double d0 = static_cast<double>(r0[j]) - q;
      const double d1 = static_cast<double>(r1[j]) - q;
      const double d2 = static_cast<double>(r2[j]) - q;
      const double d3 = static_cast<double>(r3[j]) - q;
      a0 += d0 * d0;
      a1 += d1 * d1;
      a2 += d2 * d2;
      a3 += d3 * d3;
    }
    out[i] = a0;
    out[i + 1] = a1;
    out[i + 2] = a2;
    out[i + 3] = a3;
  }
  for (; i < n; ++i) {
    const float* __restrict row = db + static_cast<long>(i) * stride;
    double acc = 0.0;
    for (int j = 0; j < dim; ++j) {
      const double diff = static_cast<double>(row[j]) - query[j];
      acc += diff * diff;
    }
    out[i] = acc;
  }
}

void QuantizedL2Scan(const int8_t* db, const int8_t* query,
                     const float* scale_sq, int n, int dim, int stride,
                     double* out) {
  int i = 0;
  // Same 4-row blocking as SquaredL2Scan: the int8 difference and square
  // are exact integers, weighted by the squared per-dim step in double.
  for (; i + 4 <= n; i += 4) {
    const int8_t* __restrict r0 = db + static_cast<long>(i) * stride;
    const int8_t* __restrict r1 = r0 + stride;
    const int8_t* __restrict r2 = r1 + stride;
    const int8_t* __restrict r3 = r2 + stride;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (int j = 0; j < dim; ++j) {
      const int q = query[j];
      const double s2 = scale_sq[j];
      const int d0 = r0[j] - q;
      const int d1 = r1[j] - q;
      const int d2 = r2[j] - q;
      const int d3 = r3[j] - q;
      a0 += s2 * (d0 * d0);
      a1 += s2 * (d1 * d1);
      a2 += s2 * (d2 * d2);
      a3 += s2 * (d3 * d3);
    }
    out[i] = a0;
    out[i + 1] = a1;
    out[i + 2] = a2;
    out[i + 3] = a3;
  }
  for (; i < n; ++i) {
    const int8_t* __restrict row = db + static_cast<long>(i) * stride;
    double acc = 0.0;
    for (int j = 0; j < dim; ++j) {
      const int d = row[j] - query[j];
      acc += static_cast<double>(scale_sq[j]) * (d * d);
    }
    out[i] = acc;
  }
}

}  // namespace
}  // namespace scalar

const Backend& ScalarBackend() {
  static const Backend backend = {
      scalar::HammingScan,
      scalar::HammingDistanceRow,
      scalar::SquaredL2Scan,
      scalar::QuantizedL2Scan,
  };
  return backend;
}

}  // namespace traj2hash::search::kernels
