#include "search/knn.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "search/kernels.h"

namespace traj2hash::search {
namespace {

/// Selection-based top-k shared by both spaces: materialise every distance,
/// nth_element to split off the k best, then sort only those. This replaces
/// a per-candidate heap (push/pop log k with branchy sift loops) with one
/// tight distance loop plus an O(n) selection, and — because NeighborLess is
/// a total order (index breaks distance ties) — returns exactly the
/// neighbours the heap did, in the same order.
template <typename DistanceAt>
std::vector<Neighbor> TopKGeneric(int n, int k, DistanceAt dist_at) {
  k = std::min(k, n);
  if (k <= 0) return {};
  std::vector<Neighbor> all;
  all.reserve(n);
  for (int i = 0; i < n; ++i) all.push_back({i, dist_at(i)});
  if (k < n) {
    std::nth_element(all.begin(), all.begin() + (k - 1), all.end(),
                     NeighborLess);
    all.resize(k);
  }
  std::sort(all.begin(), all.end(), NeighborLess);
  return all;
}

}  // namespace

std::vector<Neighbor> TopKEuclidean(const FlatMatrix& db,
                                    const std::vector<float>& query, int k) {
  T2H_CHECK_GE(k, 1);
  // One width check against the flat dims — the scan loops are check-free.
  T2H_CHECK_EQ(static_cast<int>(query.size()), db.cols());
  const int n = db.rows();
  std::vector<double> sq(n);
  kernels::SquaredL2Scan(db.data(), query.data(), n, db.cols(), db.stride(),
                         sq.data());
  return TopKGeneric(n, k, [&](int i) { return std::sqrt(sq[i]); });
}

std::vector<Neighbor> TopKEuclidean(const std::vector<std::vector<float>>& db,
                                    const std::vector<float>& query, int k) {
  T2H_CHECK_GE(k, 1);
  if (db.empty()) return {};
  // Hoisted validation: every row width is checked once here, not per
  // candidate inside the distance loop.
  for (const std::vector<float>& row : db) {
    T2H_CHECK_EQ(row.size(), query.size());
  }
  const int n = static_cast<int>(db.size());
  const int dim = static_cast<int>(query.size());
  std::vector<double> sq(n);
  for (int i = 0; i < n; ++i) {
    kernels::SquaredL2Scan(db[i].data(), query.data(), 1, dim, dim, &sq[i]);
  }
  return TopKGeneric(n, k, [&](int i) { return std::sqrt(sq[i]); });
}

std::vector<Neighbor> TopKHamming(const PackedCodes& db, const Code& query,
                                  int k, const uint8_t* skip) {
  T2H_CHECK_GE(k, 1);
  T2H_CHECK_EQ(query.num_bits, db.num_bits());
  const int n = db.size();
  if (n == 0) return {};
  std::vector<int32_t> dist(n);
  kernels::HammingScan(db.data(), query.words.data(), n, db.words_per_code(),
                       db.stride_words(), dist.data());
  // Select over (int distance, index) pairs — no per-candidate double
  // round-trip; only the k survivors are widened into Neighbors. Tombstoned
  // rows never enter the id pool, so selection order among the survivors is
  // unchanged.
  std::vector<int> ids;
  ids.reserve(n);
  for (int i = 0; i < n; ++i) {
    if (skip == nullptr || skip[i] == 0) ids.push_back(i);
  }
  const int live = static_cast<int>(ids.size());
  k = std::min(k, live);
  if (k <= 0) return {};
  const auto int_less = [&dist](int a, int b) {
    if (dist[a] != dist[b]) return dist[a] < dist[b];
    return a < b;
  };
  if (k < live) {
    std::nth_element(ids.begin(), ids.begin() + (k - 1), ids.end(), int_less);
    ids.resize(k);
  }
  std::sort(ids.begin(), ids.end(), int_less);
  std::vector<Neighbor> out;
  out.reserve(k);
  for (const int id : ids) {
    out.push_back({id, static_cast<double>(dist[id])});
  }
  return out;
}

std::vector<Neighbor> TopKHamming(const std::vector<Code>& db,
                                  const Code& query, int k) {
  T2H_CHECK_GE(k, 1);
  if (db.empty()) return {};
  return TopKHamming(PackedCodes::FromCodes(db), query, k);
}

}  // namespace traj2hash::search
