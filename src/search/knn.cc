#include "search/knn.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.h"

namespace traj2hash::search {
namespace {

/// Max-heap based top-k selection shared by both spaces, ordered by
/// NeighborLess so results are deterministic (larger index counts as worse
/// on distance ties).
struct HeapEntry {
  double distance;
  int index;
};

struct WorseFirst {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    return NeighborLess({a.index, a.distance}, {b.index, b.distance});
  }
};

template <typename DistanceAt>
std::vector<Neighbor> TopKGeneric(int n, int k, DistanceAt dist_at) {
  k = std::min(k, n);
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, WorseFirst> heap;
  for (int i = 0; i < n; ++i) {
    const double d = dist_at(i);
    if (static_cast<int>(heap.size()) < k) {
      heap.push({d, i});
    } else if (d < heap.top().distance ||
               (d == heap.top().distance && i < heap.top().index)) {
      heap.pop();
      heap.push({d, i});
    }
  }
  std::vector<Neighbor> out(heap.size());
  for (int pos = static_cast<int>(heap.size()) - 1; pos >= 0; --pos) {
    out[pos] = {heap.top().index, heap.top().distance};
    heap.pop();
  }
  return out;
}

}  // namespace

std::vector<Neighbor> TopKEuclidean(const std::vector<std::vector<float>>& db,
                                    const std::vector<float>& query, int k) {
  T2H_CHECK_GE(k, 1);
  return TopKGeneric(static_cast<int>(db.size()), k, [&](int i) {
    const std::vector<float>& row = db[i];
    T2H_CHECK_EQ(row.size(), query.size());
    double acc = 0.0;
    for (size_t j = 0; j < row.size(); ++j) {
      const double diff = static_cast<double>(row[j]) - query[j];
      acc += diff * diff;
    }
    return std::sqrt(acc);
  });
}

std::vector<Neighbor> TopKHamming(const std::vector<Code>& db,
                                  const Code& query, int k) {
  T2H_CHECK_GE(k, 1);
  return TopKGeneric(static_cast<int>(db.size()), k, [&](int i) {
    return static_cast<double>(HammingDistance(db[i], query));
  });
}

}  // namespace traj2hash::search
