#include "search/knn.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace traj2hash::search {
namespace {

/// Selection-based top-k shared by both spaces: materialise every distance,
/// nth_element to split off the k best, then sort only those. This replaces
/// a per-candidate heap (push/pop log k with branchy sift loops) with one
/// tight distance loop plus an O(n) selection, and — because NeighborLess is
/// a total order (index breaks distance ties) — returns exactly the
/// neighbours the heap did, in the same order.
template <typename DistanceAt>
std::vector<Neighbor> TopKGeneric(int n, int k, DistanceAt dist_at) {
  k = std::min(k, n);
  if (k <= 0) return {};
  std::vector<Neighbor> all;
  all.reserve(n);
  for (int i = 0; i < n; ++i) all.push_back({i, dist_at(i)});
  if (k < n) {
    std::nth_element(all.begin(), all.begin() + (k - 1), all.end(),
                     NeighborLess);
    all.resize(k);
  }
  std::sort(all.begin(), all.end(), NeighborLess);
  return all;
}

}  // namespace

std::vector<Neighbor> TopKEuclidean(const std::vector<std::vector<float>>& db,
                                    const std::vector<float>& query, int k) {
  T2H_CHECK_GE(k, 1);
  return TopKGeneric(static_cast<int>(db.size()), k, [&](int i) {
    const std::vector<float>& row = db[i];
    T2H_CHECK_EQ(row.size(), query.size());
    double acc = 0.0;
    for (size_t j = 0; j < row.size(); ++j) {
      const double diff = static_cast<double>(row[j]) - query[j];
      acc += diff * diff;
    }
    return std::sqrt(acc);
  });
}

std::vector<Neighbor> TopKHamming(const std::vector<Code>& db,
                                  const Code& query, int k) {
  T2H_CHECK_GE(k, 1);
  return TopKGeneric(static_cast<int>(db.size()), k, [&](int i) {
    return static_cast<double>(HammingDistance(db[i], query));
  });
}

}  // namespace traj2hash::search
