#ifndef TRAJ2HASH_SEARCH_HAMMING_INDEX_H_
#define TRAJ2HASH_SEARCH_HAMMING_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "search/code.h"
#include "search/flat_storage.h"
#include "search/knn.h"

namespace traj2hash::search {

/// Bucketed Hamming-space index implementing the paper's Hamming-Hybrid
/// search (§V-E): probe every bucket within Hamming radius 2 of the query by
/// table-lookup; if at least k candidates are found, rank just those,
/// otherwise fall back to a Hamming brute-force scan over the database.
///
/// Codes live in a flat `PackedCodes` store, so the fallback scan and
/// candidate re-ranking run on the search::kernels popcount scan; bucket
/// probes share one precomputed per-bit (word, mask) flip table between the
/// radius-2 and exact-radius enumerations.
class HammingIndex {
 public:
  /// Builds buckets over the database codes. All codes must share one width;
  /// `codes` must be non-empty (the width is inferred from it) — use the
  /// `(int num_bits)` constructor to start cold.
  explicit HammingIndex(std::vector<Code> codes);

  /// Creates an empty index for `num_bits`-bit codes, so a live service can
  /// boot with zero trajectories and grow through Insert.
  explicit HammingIndex(int num_bits);

  /// Appends one code to the index (e.g. a freshly hashed trajectory in a
  /// live database) and returns its id. Width must match the index.
  int Insert(Code code);

  /// Ids of database entries within Hamming radius 2 of `query`
  /// (1 + b + b(b-1)/2 bucket probes for b-bit codes).
  std::vector<int> ProbeWithinRadius2(const Code& query) const;

  /// Hamming-Hybrid top-k (see class comment). `skip` is an optional
  /// tombstone filter (ingest::LiveIndex): when non-null it points at
  /// `size()` flags; flagged rows are dropped from the radius-2 candidate
  /// set before the >= k test, and excluded from the brute-force fallback,
  /// so the result equals the hybrid search over the live rows alone.
  /// nullptr (the default) is bit-identical to the historical behaviour.
  std::vector<Neighbor> HybridTopK(const Code& query, int k,
                                   const uint8_t* skip = nullptr) const;

  /// Plain brute force over the stored codes (Hamming-BF), for comparison.
  /// `skip` filters tombstoned rows as in HybridTopK.
  std::vector<Neighbor> BruteForceTopK(const Code& query, int k,
                                       const uint8_t* skip = nullptr) const;

  /// Ids in buckets at exactly Hamming radius `radius` from `query`
  /// (C(num_bits, radius) probes — explodes quickly with the radius).
  std::vector<int> ProbeAtRadius(const Code& query, int radius) const;

  /// The pure neighbour-expansion strategy the paper rejects in §V-E
  /// footnote 5: grow the probe radius from 0 until at least k candidates
  /// are found, then rank them. Implemented so the footnote's argument (the
  /// probe count blows up through mostly-empty buckets) is measurable; see
  /// bench_footnote5_lookup. `max_radius` caps the expansion (< 0 = no cap);
  /// fewer than k results are returned if the cap is hit first.
  std::vector<Neighbor> LookupOnlyTopK(const Code& query, int k,
                                       int max_radius = -1) const;

  /// Flat read-only view of the stored codes (shared with rerank paths).
  const PackedCodes& codes() const { return codes_; }

  int size() const { return codes_.size(); }
  int num_buckets() const { return static_cast<int>(buckets_.size()); }

 private:
  /// Word index + mask of one flippable bit; precomputed for all bits so
  /// probe enumeration never recomputes `b / 64` / `1 << (b % 64)` per flip.
  struct BitFlip {
    int word;
    uint64_t mask;
  };

  void ProbeBucket(const Code& probe, std::vector<int>& out) const;

  /// Appends the ids in every bucket at exactly `radius` bit flips from
  /// `query` — the one combination enumeration shared by ProbeWithinRadius2
  /// and ProbeAtRadius (lexicographic flip order, so candidate order is
  /// stable across both callers).
  void ProbeAtRadiusInto(const Code& query, int radius,
                         std::vector<int>& out) const;

  PackedCodes codes_;
  int num_bits_ = 0;
  std::vector<BitFlip> flips_;  // flips_[b] toggles bit b of a probe
  // Bucket key is the 64-bit mixing hash of the code; membership is verified
  // against the stored code to rule out hash collisions.
  std::unordered_map<uint64_t, std::vector<int>> buckets_;
};

}  // namespace traj2hash::search

#endif  // TRAJ2HASH_SEARCH_HAMMING_INDEX_H_
