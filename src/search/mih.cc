#include "search/mih.h"

#include <algorithm>

#include "common/check.h"
#include "search/kernels.h"

namespace traj2hash::search {
namespace {

/// Substrings up to this width are direct-addressed (flat 2^bits table);
/// 16 bits = 65536 buckets, the default layout for every 16-bit substring.
constexpr int kDirectBits = 16;

int WidthOf(const std::vector<Code>& codes) {
  T2H_CHECK_MSG(!codes.empty(), "use MihIndex(int num_bits) to start empty");
  return codes[0].num_bits;
}

/// Calls `fn(key')` for every `bits`-wide key at Hamming distance exactly
/// `radius` from `key`, in lexicographic flip order (C(bits, radius) calls).
template <typename Fn>
void ForEachKeyAtRadius(uint32_t key, int bits, int radius, Fn&& fn) {
  if (radius == 0) {
    fn(key);
    return;
  }
  std::vector<int> flips(radius);
  for (int i = 0; i < radius; ++i) {
    flips[i] = i;
    key ^= (uint32_t{1} << i);
  }
  while (true) {
    fn(key);
    int i = radius - 1;
    while (i >= 0 && flips[i] == bits - radius + i) --i;
    if (i < 0) break;
    key ^= (uint32_t{1} << flips[i]);
    ++flips[i];
    key ^= (uint32_t{1} << flips[i]);
    for (int j = i + 1; j < radius; ++j) {
      key ^= (uint32_t{1} << flips[j]);
      flips[j] = flips[j - 1] + 1;
      key ^= (uint32_t{1} << flips[j]);
    }
  }
}

/// C(n, r) for n <= 32: the number of keys ForEachKeyAtRadius visits.
int64_t Combinations(int n, int r) {
  r = std::min(r, n - r);
  int64_t c = 1;
  for (int i = 1; i <= r; ++i) c = c * (n - r + i) / i;
  return c;
}

}  // namespace

int MihIndex::DefaultSubstrings(int num_bits) {
  return std::max(1, (num_bits + 15) / 16);
}

MihIndex::MihIndex(int num_bits, int num_substrings) : codes_(num_bits) {
  T2H_CHECK_GT(num_bits, 0);
  const int m =
      num_substrings == 0 ? DefaultSubstrings(num_bits) : num_substrings;
  T2H_CHECK_MSG(m >= 1 && m <= num_bits,
                "substring count must lie in [1, num_bits]");
  // Split B bits into m near-equal substrings: the first B % m substrings
  // get the extra bit. Every substring must fit a 32-bit probe key.
  const int base = num_bits / m;
  const int extra = num_bits % m;
  T2H_CHECK_MSG(base + (extra > 0 ? 1 : 0) <= 32,
                "substrings wider than 32 bits are not supported; "
                "use more substrings");
  tables_.resize(m);
  int start = 0;
  for (int j = 0; j < m; ++j) {
    Table& t = tables_[j];
    t.start_bit = start;
    t.bits = base + (j < extra ? 1 : 0);
    if (t.bits <= kDirectBits) {
      t.direct.resize(size_t{1} << t.bits);
    }
    start += t.bits;
    max_substring_bits_ = std::max(max_substring_bits_, t.bits);
  }
}

MihIndex::MihIndex(const std::vector<Code>& codes, int num_substrings)
    : MihIndex(WidthOf(codes), num_substrings) {
  for (const Code& code : codes) Insert(code);
}

uint32_t MihIndex::SubstringOf(const uint64_t* row, const Table& t) {
  const int word = t.start_bit / 64;
  const int offset = t.start_bit % 64;
  uint64_t v = row[word] >> offset;
  if (offset + t.bits > 64) {
    v |= row[word + 1] << (64 - offset);
  }
  const uint64_t mask =
      t.bits == 64 ? ~uint64_t{0} : (uint64_t{1} << t.bits) - 1;
  return static_cast<uint32_t>(v & mask);
}

const std::vector<int>* MihIndex::Bucket(const Table& t, uint32_t key) {
  if (!t.direct.empty()) {
    const std::vector<int>& bucket = t.direct[key];
    return bucket.empty() ? nullptr : &bucket;
  }
  const auto it = t.sparse.find(key);
  return it == t.sparse.end() ? nullptr : &it->second;
}

int MihIndex::Insert(const Code& code) {
  const int id = codes_.Append(code);  // width-checked by PackedCodes
  const uint64_t* row = codes_.row(id);
  for (Table& t : tables_) {
    const uint32_t key = SubstringOf(row, t);
    if (!t.direct.empty()) {
      t.direct[key].push_back(id);
    } else {
      t.sparse[key].push_back(id);
    }
  }
  return id;
}

std::vector<Neighbor> MihIndex::TopK(const Code& query, int k) const {
  bool complete = true;
  return TopK(query, k, Deadline::Infinite(), &complete);
}

std::vector<Neighbor> MihIndex::TopK(const Code& query, int k,
                                     const Deadline& deadline, bool* complete,
                                     const uint8_t* skip,
                                     int num_skipped) const {
  T2H_CHECK_GE(k, 1);
  T2H_CHECK_EQ(query.num_bits, codes_.num_bits());
  *complete = true;
  const int n = codes_.size();
  // Rows that can still become candidates: everything not tombstoned.
  const int live_total = n - num_skipped;
  if (live_total <= 0) return {};
  k = std::min(k, live_total);

  const int m = num_substrings();
  const int words = codes_.words_per_code();
  const uint64_t* qwords = query.words.data();
  std::vector<uint32_t> query_keys(m);
  for (int j = 0; j < m; ++j) {
    query_keys[j] = SubstringOf(qwords, tables_[j]);
  }

  // Candidate pool with a per-query visited bitmap (ids can surface from
  // several tables/radii); distances stay integers until the final widening.
  std::vector<uint8_t> seen(n, 0);
  std::vector<int> cand_ids;
  std::vector<int32_t> cand_dist;
  cand_ids.reserve(64);
  cand_dist.reserve(64);
  std::vector<int32_t> kth_scratch;

  for (int radius = 0; radius <= max_substring_bits_; ++radius) {
    // Graceful degradation: between radius rounds (never before radius 0,
    // so a timed-out probe still surfaces the exact-match bucket) an
    // expired deadline stops the search; the candidates collected so far
    // are ranked normally below and the caller is told the result is
    // partial.
    if (radius > 0 && deadline.Expired(faults::kMihRadiusRound)) {
      *complete = false;
      break;
    }
    // Cost guard: probing radius r costs sum_j C(bits_j, r) bucket lookups,
    // which grows combinatorially and for far queries (e.g. random codes at
    // distance ~B/2) would dwarf a flat scan long before the pruning bound
    // fires. Once enumeration costs more than scanning the unseen remainder,
    // scan it directly — identical (still exact: every row becomes a
    // candidate) and the worst case stays within ~2x of BruteForceTopK.
    const int64_t remaining = live_total - static_cast<int64_t>(cand_ids.size());
    int64_t probe_cost = 0;
    for (const Table& t : tables_) {
      if (radius <= t.bits) probe_cost += Combinations(t.bits, radius);
    }
    if (probe_cost > remaining) {
      for (int id = 0; id < n; ++id) {
        if (seen[id] || (skip != nullptr && skip[id] != 0)) continue;
        cand_ids.push_back(id);
        cand_dist.push_back(
            kernels::HammingDistanceRow(codes_.row(id), qwords, words));
      }
      break;
    }
    for (int j = 0; j < m; ++j) {
      const Table& t = tables_[j];
      if (radius > t.bits) continue;
      ForEachKeyAtRadius(query_keys[j], t.bits, radius, [&](uint32_t key) {
        const std::vector<int>* bucket = Bucket(t, key);
        if (bucket == nullptr) return;
        for (const int id : *bucket) {
          if (seen[id]) continue;
          seen[id] = 1;  // tombstoned rows are marked too: one check per id
          if (skip != nullptr && skip[id] != 0) continue;
          cand_ids.push_back(id);
          cand_dist.push_back(
              kernels::HammingDistanceRow(codes_.row(id), qwords, words));
        }
      });
    }
    // Pruning bound: after finishing per-substring radius r across all m
    // tables, every unseen code has some substring distance > r in every
    // table, so (pigeonhole) its full distance is >= m*(r+1). Stop once the
    // current k-th best distance is strictly below that — no unseen code can
    // then displace or tie into the top-k.
    const int count = static_cast<int>(cand_ids.size());
    if (count == live_total) break;
    if (count >= k) {
      kth_scratch = cand_dist;
      std::nth_element(kth_scratch.begin(), kth_scratch.begin() + (k - 1),
                       kth_scratch.end());
      if (kth_scratch[k - 1] < m * (radius + 1)) break;
    }
  }

  // Final selection under the repo-wide (distance, id) total order, on
  // integers; only the k survivors are widened into Neighbors.
  std::vector<int> order(cand_ids.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  const auto less = [&](int a, int b) {
    if (cand_dist[a] != cand_dist[b]) return cand_dist[a] < cand_dist[b];
    return cand_ids[a] < cand_ids[b];
  };
  if (k < static_cast<int>(order.size())) {
    std::nth_element(order.begin(), order.begin() + (k - 1), order.end(),
                     less);
    order.resize(k);
  }
  std::sort(order.begin(), order.end(), less);
  std::vector<Neighbor> out;
  out.reserve(order.size());
  for (const int i : order) {
    out.push_back({cand_ids[i], static_cast<double>(cand_dist[i])});
  }
  return out;
}

}  // namespace traj2hash::search
