#ifndef TRAJ2HASH_SEARCH_MIH_H_
#define TRAJ2HASH_SEARCH_MIH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "search/code.h"
#include "search/flat_storage.h"
#include "search/knn.h"

namespace traj2hash::search {

/// Exact multi-index hashing (MIH, Norouzi et al. style) over B-bit codes:
/// each code is split into `m` disjoint substrings and every substring is
/// indexed in its own flat bucket table. A top-k query probes the substring
/// tables at increasing per-substring radius r; by the pigeonhole bound, any
/// code at full Hamming distance d matches at least one substring within
/// floor(d/m) flips, so after finishing radius r every unseen code has full
/// distance >= m*(r+1) and the search stops as soon as the current k-th
/// candidate distance drops strictly below that bound. Results are therefore
/// bit-identical (ids and order under NeighborLess) to
/// `HammingIndex::BruteForceTopK`, while replacing the O(B^2) whole-code
/// bucket enumeration of the radius-2 path with a handful of short-substring
/// probes.
///
/// The default substring count ceil(B/16) yields 16-bit substrings, which
/// are direct-addressed into flat 2^16-entry tables (no hashing on the probe
/// path); wider substrings (m chosen small) fall back to a hashed table.
/// Queries are const and allocate only local scratch, so concurrent reads
/// are race-free (exercised under TSan via serve::ShardedIndex).
class MihIndex {
 public:
  /// Empty index for `num_bits`-bit codes. `num_substrings` = 0 selects the
  /// default ceil(num_bits/16); otherwise it must lie in [ceil(B/32), B] so
  /// every substring fits a 32-bit key.
  explicit MihIndex(int num_bits, int num_substrings = 0);

  /// Bulk build over a database (non-empty; width inferred).
  explicit MihIndex(const std::vector<Code>& codes, int num_substrings = 0);

  /// Appends one code; returns its id (dense, insertion-ordered).
  int Insert(const Code& code);

  /// Exact top-k by Hamming distance, bit-identical to BruteForceTopK.
  std::vector<Neighbor> TopK(const Code& query, int k) const;

  /// Deadline-aware top-k: the probe checks `deadline` between radius
  /// rounds (fault point faults::kMihRadiusRound) and on expiry returns the
  /// best-effort top-k of the candidates seen so far — still sorted under
  /// the repo-wide (distance, id) order, but possibly missing true
  /// neighbours — with `*complete` set to false. Radius 0 always runs, so
  /// an expiring probe degrades gracefully instead of returning nothing.
  /// With an infinite deadline this is exactly TopK (`*complete` = true).
  ///
  /// `skip` is an optional tombstone filter (ingest::LiveIndex): when
  /// non-null it points at `size()` flags and flagged rows never become
  /// candidates, so the result equals MIH over the live rows alone.
  /// `num_skipped` must then count the flagged rows — it keeps the
  /// cost-guard and termination accounting exact without an O(n) rescan
  /// per query. The pigeonhole pruning bound is untouched (it reasons about
  /// unseen rows, and dropping rows only shrinks the candidate pool).
  std::vector<Neighbor> TopK(const Code& query, int k,
                             const Deadline& deadline, bool* complete,
                             const uint8_t* skip = nullptr,
                             int num_skipped = 0) const;

  /// Default substring count for a code width: 16-bit substrings.
  static int DefaultSubstrings(int num_bits);

  /// Flat read-only view of the stored codes.
  const PackedCodes& codes() const { return codes_; }

  int size() const { return codes_.size(); }
  int num_bits() const { return codes_.num_bits(); }
  int num_substrings() const { return static_cast<int>(tables_.size()); }

 private:
  /// One substring's bucket table. `direct` is a flat 2^bits array when the
  /// substring is narrow enough to direct-address; `sparse` otherwise.
  struct Table {
    int start_bit = 0;
    int bits = 0;
    std::vector<std::vector<int>> direct;
    std::unordered_map<uint32_t, std::vector<int>> sparse;
  };

  /// Extracts table `t`'s substring from a packed code row.
  static uint32_t SubstringOf(const uint64_t* row, const Table& t);

  /// Bucket for `key` in `t`, or nullptr when empty/absent.
  static const std::vector<int>* Bucket(const Table& t, uint32_t key);

  PackedCodes codes_;
  std::vector<Table> tables_;
  int max_substring_bits_ = 0;
};

}  // namespace traj2hash::search

#endif  // TRAJ2HASH_SEARCH_MIH_H_
