#include "search/flat_storage.h"

#include "common/check.h"

namespace traj2hash::search {
namespace {

/// Round `v` up to a multiple of `m` (power-of-two row padding).
int RoundUp(int v, int m) { return (v + m - 1) / m * m; }

/// 32 B of padding granularity in each element type.
constexpr int kWordsPerRowBlock =
    static_cast<int>(kKernelRowAlignment / sizeof(uint64_t));  // 4
constexpr int kFloatsPerRowBlock =
    static_cast<int>(kKernelRowAlignment / sizeof(float));  // 8

}  // namespace

PackedCodes::PackedCodes(int num_bits)
    : num_bits_(num_bits),
      words_per_code_((num_bits + 63) / 64),
      stride_words_(RoundUp((num_bits + 63) / 64, kWordsPerRowBlock)) {
  T2H_CHECK_GT(num_bits, 0);
}

PackedCodes PackedCodes::FromCodes(const std::vector<Code>& codes) {
  T2H_CHECK_MSG(!codes.empty(),
                "use PackedCodes(int num_bits) to start empty");
  PackedCodes packed(codes[0].num_bits);
  packed.words_.reserve(codes.size() * packed.stride_words_);
  for (const Code& code : codes) packed.Append(code);
  return packed;
}

int PackedCodes::Append(const Code& code) {
  T2H_CHECK_EQ(code.num_bits, num_bits_);
  T2H_CHECK_EQ(static_cast<int>(code.words.size()), words_per_code_);
  words_.insert(words_.end(), code.words.begin(), code.words.end());
  // Zero-filled stride padding: the SIMD fast paths fold whole 32 B blocks
  // and rely on padding XORing/diffing to nothing (flat_storage.h contract).
  words_.resize(words_.size() + (stride_words_ - words_per_code_), 0);
  return num_codes_++;
}

Code PackedCodes::CodeAt(int i) const {
  T2H_CHECK(i >= 0 && i < num_codes_);
  Code code;
  code.num_bits = num_bits_;
  code.words.assign(row(i), row(i) + words_per_code_);
  return code;
}

FlatMatrix::FlatMatrix(int cols)
    : cols_(cols), stride_(RoundUp(cols, kFloatsPerRowBlock)) {
  T2H_CHECK_GT(cols, 0);
}

FlatMatrix FlatMatrix::FromRows(const std::vector<std::vector<float>>& rows,
                                int cols) {
  FlatMatrix m(cols);
  m.data_.reserve(rows.size() * static_cast<size_t>(m.stride_));
  for (const std::vector<float>& row : rows) m.Append(row);
  return m;
}

int FlatMatrix::Append(const std::vector<float>& row) {
  T2H_CHECK_EQ(static_cast<int>(row.size()), cols_);
  data_.insert(data_.end(), row.begin(), row.end());
  data_.resize(data_.size() + (stride_ - cols_), 0.0f);
  return num_rows_++;
}

std::vector<float> FlatMatrix::RowAt(int i) const {
  T2H_CHECK(i >= 0 && i < num_rows_);
  return std::vector<float>(row(i), row(i) + cols_);
}

}  // namespace traj2hash::search
