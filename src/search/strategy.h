#ifndef TRAJ2HASH_SEARCH_STRATEGY_H_
#define TRAJ2HASH_SEARCH_STRATEGY_H_

#include <string>

#include "common/status.h"

namespace traj2hash::search {

/// Hamming top-k engine selection for every serving layer (serve::, core::,
/// tools/). All three strategies return bit-identical results (ids and order
/// under NeighborLess) — they trade build cost for query cost only:
///  - kBrute:   flat popcount scan of the whole database (search::kernels);
///  - kRadius2: the paper's Hamming-Hybrid — radius-2 bucket probes with a
///              brute-force fallback (O(B^2) probes per query);
///  - kMih:     exact multi-index hashing (search/mih.h) — a handful of
///              short-substring probes with the floor(r/m) pruning bound.
enum class SearchStrategy {
  kBrute,
  kRadius2,
  kMih,
};

/// Canonical lower-case name ("brute" / "radius2" / "mih").
const char* StrategyName(SearchStrategy strategy);

/// Parses a strategy name; unknown values are an InvalidArgument error
/// listing the accepted spellings (strict-CLI contract).
Result<SearchStrategy> ParseStrategy(const std::string& name);

}  // namespace traj2hash::search

#endif  // TRAJ2HASH_SEARCH_STRATEGY_H_
