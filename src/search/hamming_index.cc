#include "search/hamming_index.h"

#include <algorithm>

#include "common/check.h"
#include "search/kernels.h"

namespace traj2hash::search {
namespace {

int WidthOf(const std::vector<Code>& codes) {
  T2H_CHECK_MSG(!codes.empty(),
                "use HammingIndex(int num_bits) to start empty");
  return codes[0].num_bits;
}

}  // namespace

HammingIndex::HammingIndex(std::vector<Code> codes)
    : HammingIndex(WidthOf(codes)) {
  for (Code& code : codes) Insert(std::move(code));
}

HammingIndex::HammingIndex(int num_bits)
    : codes_(num_bits), num_bits_(num_bits) {
  T2H_CHECK_GT(num_bits, 0);
  flips_.reserve(num_bits);
  for (int b = 0; b < num_bits; ++b) {
    flips_.push_back({b / 64, uint64_t{1} << (b % 64)});
  }
}

int HammingIndex::Insert(Code code) {
  T2H_CHECK_EQ(code.num_bits, num_bits_);
  buckets_[CodeHash(code)].push_back(codes_.size());
  return codes_.Append(code);
}

void HammingIndex::ProbeBucket(const Code& probe, std::vector<int>& out) const {
  const auto it = buckets_.find(CodeHash(probe));
  if (it == buckets_.end()) return;
  for (const int id : it->second) {
    if (std::equal(probe.words.begin(), probe.words.end(), codes_.row(id))) {
      out.push_back(id);
    }
  }
}

void HammingIndex::ProbeAtRadiusInto(const Code& query, int radius,
                                     std::vector<int>& out) const {
  Code probe = query;
  if (radius == 0) {
    ProbeBucket(probe, out);
    return;
  }
  // Iterative enumeration of bit combinations in lexicographic order, with
  // an explicit stack of chosen flip positions; each toggle is one table
  // lookup + XOR (no per-flip shift recomputation or query copies).
  auto flip = [&probe, this](int b) { probe.words[flips_[b].word] ^= flips_[b].mask; };
  std::vector<int> flip_stack;
  flip_stack.reserve(radius);
  for (int b = 0; b < radius; ++b) {
    flip_stack.push_back(b);
    flip(b);
  }
  while (true) {
    ProbeBucket(probe, out);
    // Advance to the next combination.
    int i = radius - 1;
    while (i >= 0 && flip_stack[i] == num_bits_ - radius + i) --i;
    if (i < 0) break;
    flip(flip_stack[i]);
    ++flip_stack[i];
    flip(flip_stack[i]);
    for (int j = i + 1; j < radius; ++j) {
      flip(flip_stack[j]);
      flip_stack[j] = flip_stack[j - 1] + 1;
      flip(flip_stack[j]);
    }
  }
}

std::vector<int> HammingIndex::ProbeWithinRadius2(const Code& query) const {
  T2H_CHECK_EQ(query.num_bits, num_bits_);
  std::vector<int> out;
  // Most probes miss; pre-size past the small-vector growth steps so the
  // common several-hit case does at most one allocation.
  out.reserve(32);
  for (int radius = 0; radius <= std::min(2, num_bits_); ++radius) {
    ProbeAtRadiusInto(query, radius, out);
  }
  return out;
}

std::vector<Neighbor> HammingIndex::HybridTopK(const Code& query, int k,
                                               const uint8_t* skip) const {
  T2H_CHECK_GE(k, 1);
  std::vector<int> candidates = ProbeWithinRadius2(query);
  if (skip != nullptr) {
    candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                    [skip](int id) { return skip[id] != 0; }),
                     candidates.end());
  }
  if (static_cast<int>(candidates.size()) < k) {
    // Not enough (live) neighbours within radius 2: degrade to brute force,
    // as the paper's Hamming-Hybrid does.
    return BruteForceTopK(query, k, skip);
  }
  // Rank candidates on integer distances against the packed rows; only the
  // k survivors are widened into Neighbors.
  const int w = codes_.words_per_code();
  std::vector<int32_t> dist(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    dist[i] = kernels::HammingDistanceRow(codes_.row(candidates[i]),
                                          query.words.data(), w);
  }
  std::vector<int> order(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  const auto less = [&](int a, int b) {
    if (dist[a] != dist[b]) return dist[a] < dist[b];
    return candidates[a] < candidates[b];
  };
  // NeighborLess is a total order (index breaks distance ties), so sorting
  // just the k-prefix returns exactly the neighbours a full sort would.
  std::partial_sort(order.begin(), order.begin() + k, order.end(), less);
  std::vector<Neighbor> ranked;
  ranked.reserve(k);
  for (int i = 0; i < k; ++i) {
    ranked.push_back(
        {candidates[order[i]], static_cast<double>(dist[order[i]])});
  }
  return ranked;
}

std::vector<Neighbor> HammingIndex::BruteForceTopK(const Code& query, int k,
                                                   const uint8_t* skip) const {
  T2H_CHECK_GE(k, 1);
  if (codes_.size() == 0) return {};
  return TopKHamming(codes_, query, k, skip);
}

std::vector<int> HammingIndex::ProbeAtRadius(const Code& query,
                                             int radius) const {
  T2H_CHECK_EQ(query.num_bits, num_bits_);
  T2H_CHECK(radius >= 0 && radius <= num_bits_);
  std::vector<int> out;
  ProbeAtRadiusInto(query, radius, out);
  return out;
}

std::vector<Neighbor> HammingIndex::LookupOnlyTopK(const Code& query, int k,
                                                   int max_radius) const {
  T2H_CHECK_GE(k, 1);
  const int cap = max_radius < 0 ? num_bits_ : std::min(max_radius, num_bits_);
  std::vector<Neighbor> found;
  for (int radius = 0; radius <= cap; ++radius) {
    std::vector<int> ids;
    ProbeAtRadiusInto(query, radius, ids);
    for (const int id : ids) {
      found.push_back({id, static_cast<double>(radius)});
    }
    if (static_cast<int>(found.size()) >= k) break;
  }
  // Candidates were appended in radius order; ties within one radius are in
  // probe order — normalise to the (distance, index) order of the other
  // strategies. Selecting before sorting keeps the k result identical (total
  // order) while only ordering the survivors.
  if (static_cast<int>(found.size()) > k) {
    std::nth_element(found.begin(), found.begin() + (k - 1), found.end(),
                     NeighborLess);
    found.resize(k);
  }
  std::sort(found.begin(), found.end(), NeighborLess);
  return found;
}

}  // namespace traj2hash::search
