#include "search/hamming_index.h"

#include <algorithm>

#include "common/check.h"

namespace traj2hash::search {

HammingIndex::HammingIndex(std::vector<Code> codes)
    : codes_(std::move(codes)) {
  T2H_CHECK_MSG(!codes_.empty(),
                "use HammingIndex(int num_bits) to start empty");
  num_bits_ = codes_[0].num_bits;
  for (size_t i = 0; i < codes_.size(); ++i) {
    T2H_CHECK_EQ(codes_[i].num_bits, num_bits_);
    buckets_[CodeHash(codes_[i])].push_back(static_cast<int>(i));
  }
}

HammingIndex::HammingIndex(int num_bits) : num_bits_(num_bits) {
  T2H_CHECK_GT(num_bits, 0);
}

int HammingIndex::Insert(Code code) {
  T2H_CHECK_EQ(code.num_bits, num_bits_);
  const int id = static_cast<int>(codes_.size());
  buckets_[CodeHash(code)].push_back(id);
  codes_.push_back(std::move(code));
  return id;
}

void HammingIndex::ProbeBucket(const Code& probe, std::vector<int>& out) const {
  const auto it = buckets_.find(CodeHash(probe));
  if (it == buckets_.end()) return;
  for (const int id : it->second) {
    if (codes_[id] == probe) out.push_back(id);
  }
}

std::vector<int> HammingIndex::ProbeWithinRadius2(const Code& query) const {
  T2H_CHECK_EQ(query.num_bits, num_bits_);
  std::vector<int> out;
  // Most probes miss; pre-size past the small-vector growth steps so the
  // common several-hit case does at most one allocation.
  out.reserve(32);
  Code probe = query;
  // Radius 0.
  ProbeBucket(probe, out);
  // Radius 1: flip each bit.
  for (int b = 0; b < num_bits_; ++b) {
    probe.words[b / 64] ^= (uint64_t{1} << (b % 64));
    ProbeBucket(probe, out);
    probe.words[b / 64] ^= (uint64_t{1} << (b % 64));
  }
  // Radius 2: flip each unordered pair of bits.
  for (int b1 = 0; b1 < num_bits_; ++b1) {
    probe.words[b1 / 64] ^= (uint64_t{1} << (b1 % 64));
    for (int b2 = b1 + 1; b2 < num_bits_; ++b2) {
      probe.words[b2 / 64] ^= (uint64_t{1} << (b2 % 64));
      ProbeBucket(probe, out);
      probe.words[b2 / 64] ^= (uint64_t{1} << (b2 % 64));
    }
    probe.words[b1 / 64] ^= (uint64_t{1} << (b1 % 64));
  }
  return out;
}

std::vector<Neighbor> HammingIndex::HybridTopK(const Code& query,
                                               int k) const {
  T2H_CHECK_GE(k, 1);
  const std::vector<int> candidates = ProbeWithinRadius2(query);
  if (static_cast<int>(candidates.size()) < k) {
    // Not enough neighbours within radius 2: degrade to brute force, as the
    // paper's Hamming-Hybrid does.
    return BruteForceTopK(query, k);
  }
  std::vector<Neighbor> ranked;
  ranked.reserve(candidates.size());
  for (const int id : candidates) {
    ranked.push_back(
        {id, static_cast<double>(HammingDistance(codes_[id], query))});
  }
  // NeighborLess is a total order (index breaks distance ties), so sorting
  // just the k-prefix returns exactly the neighbours a full sort would.
  std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end(),
                    NeighborLess);
  ranked.resize(k);
  return ranked;
}

std::vector<Neighbor> HammingIndex::BruteForceTopK(const Code& query,
                                                   int k) const {
  return TopKHamming(codes_, query, k);
}

std::vector<int> HammingIndex::ProbeAtRadius(const Code& query,
                                             int radius) const {
  T2H_CHECK_EQ(query.num_bits, num_bits_);
  T2H_CHECK(radius >= 0 && radius <= num_bits_);
  std::vector<int> out;
  Code probe = query;
  // Enumerate all bit subsets of the given size with an explicit stack of
  // chosen flip positions.
  std::vector<int> flips;
  flips.reserve(radius);
  auto flip = [&probe](int b) {
    probe.words[b / 64] ^= (uint64_t{1} << (b % 64));
  };
  // Iterative enumeration of combinations in lexicographic order.
  if (radius == 0) {
    ProbeBucket(probe, out);
    return out;
  }
  for (int b = 0; b < radius; ++b) {
    flips.push_back(b);
    flip(b);
  }
  while (true) {
    ProbeBucket(probe, out);
    // Advance to the next combination.
    int i = radius - 1;
    while (i >= 0 && flips[i] == num_bits_ - radius + i) --i;
    if (i < 0) break;
    flip(flips[i]);
    ++flips[i];
    flip(flips[i]);
    for (int j = i + 1; j < radius; ++j) {
      flip(flips[j]);
      flips[j] = flips[j - 1] + 1;
      flip(flips[j]);
    }
  }
  return out;
}

std::vector<Neighbor> HammingIndex::LookupOnlyTopK(const Code& query, int k,
                                                   int max_radius) const {
  T2H_CHECK_GE(k, 1);
  const int cap = max_radius < 0 ? num_bits_ : std::min(max_radius, num_bits_);
  std::vector<Neighbor> found;
  for (int radius = 0; radius <= cap; ++radius) {
    for (const int id : ProbeAtRadius(query, radius)) {
      found.push_back({id, static_cast<double>(radius)});
    }
    if (static_cast<int>(found.size()) >= k) break;
  }
  // Candidates were appended in radius order; ties within one radius are in
  // probe order — normalise to the (distance, index) order of the other
  // strategies. Selecting before sorting keeps the k result identical (total
  // order) while only ordering the survivors.
  if (static_cast<int>(found.size()) > k) {
    std::nth_element(found.begin(), found.begin() + (k - 1), found.end(),
                     NeighborLess);
    found.resize(k);
  }
  std::sort(found.begin(), found.end(), NeighborLess);
  return found;
}

}  // namespace traj2hash::search
