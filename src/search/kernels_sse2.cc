// SSE2 backend for search::kernels — 128-bit vectors, no POPCNT instruction.
//
// Hamming kernels use the classic SWAR byte-wise popcount on __m128i
// (Wilkes–Wheeler–Gill bit-slices + _mm_sad_epu8), two 64-bit words per
// step. Integer sums — bit-identical to every other backend by
// construction. SquaredL2Scan converts 4 floats → 2+2 doubles per step with
// two lane accumulators and the fixed fold (j%4∈{0,1} chain + j%4∈{2,3}
// chain, then lane0+lane1): deterministic for this path, epsilon vs others.
//
// Compiled with "-O3 -msse2 -ffp-contract=off".

#include <bit>
#include <cstdint>
#include <emmintrin.h>

#include "search/kernels_backend.h"

namespace traj2hash::search::kernels {
namespace sse2 {
namespace {

/// Byte-wise SWAR popcount of both 64-bit lanes: returns {popcount(lane0),
/// popcount(lane1)} as epi64.
inline __m128i Popcount128(__m128i v) {
  const __m128i m1 = _mm_set1_epi8(0x55);
  const __m128i m2 = _mm_set1_epi8(0x33);
  const __m128i m4 = _mm_set1_epi8(0x0f);
  v = _mm_sub_epi8(v, _mm_and_si128(_mm_srli_epi64(v, 1), m1));
  v = _mm_add_epi8(_mm_and_si128(v, m2),
                   _mm_and_si128(_mm_srli_epi64(v, 2), m2));
  v = _mm_and_si128(_mm_add_epi8(v, _mm_srli_epi64(v, 4)), m4);
  return _mm_sad_epu8(v, _mm_setzero_si128());
}

void HammingScan(const uint64_t* db, const uint64_t* query, int n,
                 int words_per_code, int stride_words, int32_t* out) {
  const int w2 = words_per_code & ~1;
  for (int i = 0; i < n; ++i) {
    const uint64_t* __restrict row = db + static_cast<long>(i) * stride_words;
    __m128i acc = _mm_setzero_si128();
    for (int w = 0; w < w2; w += 2) {
      const __m128i x = _mm_xor_si128(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + w)),
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(query + w)));
      acc = _mm_add_epi64(acc, Popcount128(x));
    }
    int32_t dist = static_cast<int32_t>(
        _mm_cvtsi128_si64(_mm_add_epi64(acc, _mm_unpackhi_epi64(acc, acc))));
    for (int w = w2; w < words_per_code; ++w)
      dist += std::popcount(row[w] ^ query[w]);
    out[i] = dist;
  }
}

int HammingDistanceRow(const uint64_t* a, const uint64_t* b,
                       int words_per_code) {
  int dist = 0;
  for (int w = 0; w < words_per_code; ++w) {
    dist += std::popcount(a[w] ^ b[w]);
  }
  return dist;
}

void SquaredL2Scan(const float* db, const float* query, int n, int dim,
                   int stride, double* out) {
  const int d4 = dim & ~3;
  for (int i = 0; i < n; ++i) {
    const float* __restrict row = db + static_cast<long>(i) * stride;
    __m128d acc_lo = _mm_setzero_pd();
    __m128d acc_hi = _mm_setzero_pd();
    for (int j = 0; j < d4; j += 4) {
      const __m128 rf = _mm_loadu_ps(row + j);
      const __m128 qf = _mm_loadu_ps(query + j);
      const __m128d dlo =
          _mm_sub_pd(_mm_cvtps_pd(rf), _mm_cvtps_pd(qf));
      const __m128d dhi = _mm_sub_pd(_mm_cvtps_pd(_mm_movehl_ps(rf, rf)),
                                     _mm_cvtps_pd(_mm_movehl_ps(qf, qf)));
      acc_lo = _mm_add_pd(acc_lo, _mm_mul_pd(dlo, dlo));
      acc_hi = _mm_add_pd(acc_hi, _mm_mul_pd(dhi, dhi));
    }
    const __m128d s = _mm_add_pd(acc_lo, acc_hi);
    double acc =
        _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
    for (int j = d4; j < dim; ++j) {
      const double diff = static_cast<double>(row[j]) - query[j];
      acc += diff * diff;
    }
    out[i] = acc;
  }
}

/// Sign-extends 8 int8s at `p` into two 4-lane float vectors (exact small
/// integers). SSE2 has no cvtepi8 — the unpack-with-self + arithmetic shift
/// idiom extends without SSE4.1.
inline void LoadInt8AsPs(const int8_t* p, __m128* lo, __m128* hi) {
  const __m128i v = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  const __m128i s16 = _mm_srai_epi16(_mm_unpacklo_epi8(v, v), 8);
  *lo = _mm_cvtepi32_ps(_mm_srai_epi32(_mm_unpacklo_epi16(s16, s16), 16));
  *hi = _mm_cvtepi32_ps(_mm_srai_epi32(_mm_unpackhi_epi16(s16, s16), 16));
}

void QuantizedL2Scan(const int8_t* db, const int8_t* query,
                     const float* scale_sq, int n, int dim, int stride,
                     double* out) {
  const int d8 = dim & ~7;
  for (int i = 0; i < n; ++i) {
    const int8_t* __restrict row = db + static_cast<long>(i) * stride;
    __m128d acc_a = _mm_setzero_pd();
    __m128d acc_b = _mm_setzero_pd();
    for (int j = 0; j < d8; j += 8) {
      __m128 rlo, rhi, qlo, qhi;
      LoadInt8AsPs(row + j, &rlo, &rhi);
      LoadInt8AsPs(query + j, &qlo, &qhi);
      // Exact integer difference and square in float (|d| ≤ 255, d² < 2²⁴).
      // The squared-step weight multiplies in DOUBLE (widening d² and
      // scale_sq is exact), so each term is bit-identical to the scalar
      // backend's double(scale_sq) * (d*d); only the fixed fold order
      // (lanes {0,1}+{4,5} chain, lanes {2,3}+{6,7} chain) differs.
      const __m128 dlo = _mm_sub_ps(rlo, qlo);
      const __m128 dhi = _mm_sub_ps(rhi, qhi);
      const __m128 d2lo = _mm_mul_ps(dlo, dlo);
      const __m128 d2hi = _mm_mul_ps(dhi, dhi);
      const __m128 slo = _mm_loadu_ps(scale_sq + j);
      const __m128 shi = _mm_loadu_ps(scale_sq + j + 4);
      acc_a = _mm_add_pd(
          acc_a,
          _mm_add_pd(_mm_mul_pd(_mm_cvtps_pd(d2lo), _mm_cvtps_pd(slo)),
                     _mm_mul_pd(_mm_cvtps_pd(d2hi), _mm_cvtps_pd(shi))));
      acc_b = _mm_add_pd(
          acc_b,
          _mm_add_pd(_mm_mul_pd(_mm_cvtps_pd(_mm_movehl_ps(d2lo, d2lo)),
                                _mm_cvtps_pd(_mm_movehl_ps(slo, slo))),
                     _mm_mul_pd(_mm_cvtps_pd(_mm_movehl_ps(d2hi, d2hi)),
                                _mm_cvtps_pd(_mm_movehl_ps(shi, shi)))));
    }
    const __m128d s = _mm_add_pd(acc_a, acc_b);
    double acc = _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
    for (int j = d8; j < dim; ++j) {
      const int d = row[j] - query[j];
      acc += static_cast<double>(scale_sq[j]) * (d * d);
    }
    out[i] = acc;
  }
}

}  // namespace
}  // namespace sse2

const Backend& Sse2Backend() {
  static const Backend backend = {
      sse2::HammingScan,
      sse2::HammingDistanceRow,
      sse2::SquaredL2Scan,
      sse2::QuantizedL2Scan,
  };
  return backend;
}

}  // namespace traj2hash::search::kernels
