#ifndef TRAJ2HASH_SEARCH_KERNELS_BACKEND_H_
#define TRAJ2HASH_SEARCH_KERNELS_BACKEND_H_

#include <cstdint>

/// Internal per-ISA backend table for search::kernels (DESIGN.md §14).
/// Mirrors nn/kernels_backend.h: one TU per ISA, dispatched by kernels.cc
/// through common/cpu_features. Nothing outside src/search includes this.
///
/// Contract (enforced by tests/search/kernels_isa_test.cc):
///  - Hamming kernels are exact integer popcount sums — bit-identical
///    across EVERY backend, no epsilon, ever.
///  - SquaredL2Scan is a float→double reduction: each backend fixes its own
///    accumulation order (scalar = ascending-j single chain; SIMD =
///    lane-parallel chains + fixed-order fold), deterministic per path,
///    equal across paths only to a relative epsilon.

namespace traj2hash::search::kernels {

struct Backend {
  void (*hamming_scan)(const uint64_t* db, const uint64_t* query, int n,
                       int words_per_code, int stride_words, int32_t* out);
  int (*hamming_distance_row)(const uint64_t* a, const uint64_t* b,
                              int words_per_code);
  void (*squared_l2_scan)(const float* db, const float* query, int n, int dim,
                          int stride, double* out);
  void (*quantized_l2_scan)(const int8_t* db, const int8_t* query,
                            const float* scale_sq, int n, int dim, int stride,
                            double* out);
};

/// Strict ascending-order loops — bit-identical to the pre-dispatch seed.
const Backend& ScalarBackend();

#if defined(T2H_HAVE_SSE2_BACKEND)
const Backend& Sse2Backend();
#endif
#if defined(T2H_HAVE_AVX2_BACKEND)
const Backend& Avx2Backend();
#endif

}  // namespace traj2hash::search::kernels

#endif  // TRAJ2HASH_SEARCH_KERNELS_BACKEND_H_
