#include "search/kernels.h"

#include "common/cpu_features.h"
#include "search/kernels_backend.h"

namespace traj2hash::search::kernels {
namespace {

/// One slot per KernelIsa value; unavailable backends alias the scalar
/// entry, but dispatch can only reach them if common/cpu_features reported
/// the ISA available — SetKernelIsa / the env override refuse otherwise, so
/// the alias is a safety net, never a silent fallback.
const Backend* const kBackends[kNumKernelIsas] = {
    &ScalarBackend(),
#if defined(T2H_HAVE_SSE2_BACKEND)
    &Sse2Backend(),
#else
    &ScalarBackend(),
#endif
#if defined(T2H_HAVE_AVX2_BACKEND)
    &Avx2Backend(),
#else
    &ScalarBackend(),
#endif
};

inline const Backend& Active() { return *kBackends[KernelIsaIndex()]; }

}  // namespace

void HammingScan(const uint64_t* db, const uint64_t* query, int n,
                 int words_per_code, int stride_words, int32_t* out) {
  Active().hamming_scan(db, query, n, words_per_code, stride_words, out);
}

int HammingDistanceRow(const uint64_t* a, const uint64_t* b,
                       int words_per_code) {
  return Active().hamming_distance_row(a, b, words_per_code);
}

void SquaredL2Scan(const float* db, const float* query, int n, int dim,
                   int stride, double* out) {
  Active().squared_l2_scan(db, query, n, dim, stride, out);
}

void QuantizedL2Scan(const int8_t* db, const int8_t* query,
                     const float* scale_sq, int n, int dim, int stride,
                     double* out) {
  Active().quantized_l2_scan(db, query, scale_sq, n, dim, stride, out);
}

}  // namespace traj2hash::search::kernels
