#include "search/code.h"

#include <bit>

#include "common/check.h"

namespace traj2hash::search {

Code PackSigns(const std::vector<float>& values) {
  Code code;
  code.num_bits = static_cast<int>(values.size());
  code.words.assign((values.size() + 63) / 64, 0);
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] > 0.0f) {
      code.words[i / 64] |= (uint64_t{1} << (i % 64));
    }
  }
  return code;
}

int HammingDistance(const Code& a, const Code& b) {
  T2H_CHECK_EQ(a.num_bits, b.num_bits);
  int dist = 0;
  for (size_t w = 0; w < a.words.size(); ++w) {
    dist += std::popcount(a.words[w] ^ b.words[w]);
  }
  return dist;
}

uint64_t CodeHash(const Code& c) {
  // FNV-1a over the words, then a final avalanche mix.
  uint64_t h = 1469598103934665603ull;
  for (const uint64_t w : c.words) {
    h ^= w;
    h *= 1099511628211ull;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

}  // namespace traj2hash::search
