// AVX2 backend for search::kernels.
//
// HammingScan fast path: when rows are 32-byte aligned with a
// multiple-of-4-word stride (the PackedCodes layout — see
// search/flat_storage.h and common/aligned.h), each row is scanned in whole
// 256-bit blocks: one aligned load, one XOR against a zero-padded aligned
// query copy, and a nibble-LUT popcount (_mm256_shuffle_epi8 +
// _mm256_sad_epu8). Relies on the API precondition that padding words
// beyond words_per_code are zero. Other layouts take a hardware-POPCNT
// word loop (this TU is compiled with -mpopcnt, so std::popcount is a
// single instruction — never the SWAR fallback). Both are exact integer
// sums, bit-identical to every backend.
//
// SquaredL2Scan: 8 floats/step → 2×4 doubles with FMA into two lane
// accumulators; fixed fold (lanes j%8∈{0..3} + j%8∈{4..7} pairwise, then
// (l0+l2)+(l1+l3)); deterministic per path, epsilon vs other backends.
//
// Compiled with "-O3 -mavx2 -mfma -mpopcnt -ffp-contract=off".

#include <bit>
#include <cstdint>
#include <immintrin.h>

#include "search/kernels_backend.h"

namespace traj2hash::search::kernels {
namespace avx2 {
namespace {

/// Longest query (in words, rounded up to the 4-word block stride) the
/// aligned fast path supports — 4096-bit codes, far above the repo's ≤256.
constexpr int kMaxFastStrideWords = 64;

/// Nibble-LUT popcount: per-byte counts via two shuffles, then
/// _mm256_sad_epu8 folds them into the 4 epi64 lanes.
inline __m256i Popcount256(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

/// Sum of the 4 epi64 lanes.
inline int64_t Sum4x64(__m256i v) {
  const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(v),
                                  _mm256_extracti128_si256(v, 1));
  return _mm_cvtsi128_si64(_mm_add_epi64(s, _mm_unpackhi_epi64(s, s)));
}

/// Narrow-code fast path (≤128-bit codes at the PackedCodes 4-word stride):
/// the data half of two consecutive rows is packed into one 256-bit vector
/// (vperm2i128 of their aligned loads), so no popcount work is spent on the
/// zero padding, and four row sums at a time are folded with cross-lane adds
/// instead of a per-row horizontal reduction.
void HammingScanPacked2(const uint64_t* __restrict db,
                        const uint64_t* qbuf, int n, int32_t* out) {
  const __m256i qq = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(qbuf)));
  const __m256i pack_idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  // Packs rows 2r and 2r+1 into one vector by OR-ing an aligned load of row
  // 2r ({a0,a1,0,0} — the padding is zero by contract) with a 2-word-shifted
  // unaligned load ({0,0,b0,b1}): cheaper than a cross-lane permute and the
  // bytes come straight from one 64-byte span. Unrolled 2x (8 rows) so two
  // independent reduction chains overlap the popcount latency.
  auto pack_pair = [&](const uint64_t* __restrict r) {
    return _mm256_or_si256(
        _mm256_load_si256(reinterpret_cast<const __m256i*>(r)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r + 2)));
  };
  auto reduce4 = [&](__m256i p1, __m256i p2) {
    // p1 = {A0,A1,B0,B1}, p2 = {C0,C1,D0,D1} -> 4 int32 row sums.
    __m256i t = _mm256_add_epi64(_mm256_unpacklo_epi64(p1, p2),
                                 _mm256_unpackhi_epi64(p1, p2));  // {A,C,B,D}
    t = _mm256_permute4x64_epi64(t, _MM_SHUFFLE(3, 1, 2, 0));     // {A,B,C,D}
    return _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(t, pack_idx));
  };
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint64_t* __restrict r = db + static_cast<long>(i) * 4;
    const __m256i p1 = Popcount256(_mm256_xor_si256(pack_pair(r), qq));
    const __m256i p2 = Popcount256(_mm256_xor_si256(pack_pair(r + 8), qq));
    const __m256i p3 = Popcount256(_mm256_xor_si256(pack_pair(r + 16), qq));
    const __m256i p4 = Popcount256(_mm256_xor_si256(pack_pair(r + 24), qq));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), reduce4(p1, p2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 4),
                     reduce4(p3, p4));
  }
  for (; i + 4 <= n; i += 4) {
    const uint64_t* __restrict r = db + static_cast<long>(i) * 4;
    const __m256i p1 = Popcount256(_mm256_xor_si256(pack_pair(r), qq));
    const __m256i p2 = Popcount256(_mm256_xor_si256(pack_pair(r + 8), qq));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), reduce4(p1, p2));
  }
  for (; i < n; ++i) {
    const uint64_t* __restrict row = db + static_cast<long>(i) * 4;
    out[i] = static_cast<int32_t>(std::popcount(row[0] ^ qbuf[0]) +
                                  std::popcount(row[1] ^ qbuf[1]));
  }
}

void HammingScan(const uint64_t* db, const uint64_t* query, int n,
                 int words_per_code, int stride_words, int32_t* out) {
  const bool aligned_rows =
      (stride_words & 3) == 0 && stride_words <= kMaxFastStrideWords &&
      (reinterpret_cast<uintptr_t>(db) & 31) == 0;
  if (aligned_rows) {
    // Zero-padded aligned query copy: XOR of the padding lanes against the
    // rows' zero padding contributes nothing to the popcount.
    alignas(32) uint64_t qbuf[kMaxFastStrideWords];
    for (int w = 0; w < words_per_code; ++w) qbuf[w] = query[w];
    for (int w = words_per_code; w < stride_words; ++w) qbuf[w] = 0;
    if (words_per_code <= 2 && stride_words == 4) {
      HammingScanPacked2(db, qbuf, n, out);
      return;
    }
    const int blocks = stride_words >> 2;
    int i = 0;
    // Four rows per iteration: their block accumulators are reduced
    // together with cross-lane adds (per 128-bit lane, then across lanes),
    // replacing four serial horizontal sums.
    for (; i + 4 <= n; i += 4) {
      __m256i acc[4];
      for (int r = 0; r < 4; ++r) {
        const uint64_t* __restrict row =
            db + static_cast<long>(i + r) * stride_words;
        __m256i a = _mm256_setzero_si256();
        for (int b = 0; b < blocks; ++b) {
          const __m256i x = _mm256_xor_si256(
              _mm256_load_si256(
                  reinterpret_cast<const __m256i*>(row + 4 * b)),
              _mm256_load_si256(
                  reinterpret_cast<const __m256i*>(qbuf + 4 * b)));
          a = _mm256_add_epi64(a, Popcount256(x));
        }
        acc[r] = a;
      }
      const __m256i s1 =
          _mm256_add_epi64(_mm256_unpacklo_epi64(acc[0], acc[1]),
                           _mm256_unpackhi_epi64(acc[0], acc[1]));
      const __m256i s2 =
          _mm256_add_epi64(_mm256_unpacklo_epi64(acc[2], acc[3]),
                           _mm256_unpackhi_epi64(acc[2], acc[3]));
      const __m256i t =
          _mm256_add_epi64(_mm256_permute2x128_si256(s1, s2, 0x20),
                           _mm256_permute2x128_si256(s1, s2, 0x31));
      const __m256i pack_idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                       _mm256_castsi256_si128(
                           _mm256_permutevar8x32_epi32(t, pack_idx)));
    }
    for (; i < n; ++i) {
      const uint64_t* __restrict row =
          db + static_cast<long>(i) * stride_words;
      __m256i acc = _mm256_setzero_si256();
      for (int b = 0; b < blocks; ++b) {
        const __m256i x = _mm256_xor_si256(
            _mm256_load_si256(
                reinterpret_cast<const __m256i*>(row + 4 * b)),
            _mm256_load_si256(
                reinterpret_cast<const __m256i*>(qbuf + 4 * b)));
        acc = _mm256_add_epi64(acc, Popcount256(x));
      }
      out[i] = static_cast<int32_t>(Sum4x64(acc));
    }
    return;
  }
  // Unaligned / oversize layouts: hardware-popcnt word loop.
  for (int i = 0; i < n; ++i) {
    const uint64_t* __restrict row = db + static_cast<long>(i) * stride_words;
    int32_t dist = 0;
    for (int w = 0; w < words_per_code; ++w)
      dist += std::popcount(row[w] ^ query[w]);
    out[i] = dist;
  }
}

int HammingDistanceRow(const uint64_t* a, const uint64_t* b,
                       int words_per_code) {
  // Codes are 1–4 words: a hardware-popcnt loop beats any vector popcount
  // at this length.
  int dist = 0;
  for (int w = 0; w < words_per_code; ++w) {
    dist += std::popcount(a[w] ^ b[w]);
  }
  return dist;
}

void SquaredL2Scan(const float* db, const float* query, int n, int dim,
                   int stride, double* out) {
  const int d8 = dim & ~7;
  for (int i = 0; i < n; ++i) {
    const float* __restrict row = db + static_cast<long>(i) * stride;
    __m256d acc_lo = _mm256_setzero_pd();
    __m256d acc_hi = _mm256_setzero_pd();
    for (int j = 0; j < d8; j += 8) {
      const __m256 rf = _mm256_loadu_ps(row + j);
      const __m256 qf = _mm256_loadu_ps(query + j);
      const __m256d dlo =
          _mm256_sub_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(rf)),
                        _mm256_cvtps_pd(_mm256_castps256_ps128(qf)));
      const __m256d dhi =
          _mm256_sub_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(rf, 1)),
                        _mm256_cvtps_pd(_mm256_extractf128_ps(qf, 1)));
      acc_lo = _mm256_fmadd_pd(dlo, dlo, acc_lo);
      acc_hi = _mm256_fmadd_pd(dhi, dhi, acc_hi);
    }
    const __m256d s4 = _mm256_add_pd(acc_lo, acc_hi);
    const __m128d s2 = _mm_add_pd(_mm256_castpd256_pd128(s4),
                                  _mm256_extractf128_pd(s4, 1));
    double acc = _mm_cvtsd_f64(_mm_add_sd(s2, _mm_unpackhi_pd(s2, s2)));
    for (int j = d8; j < dim; ++j) {
      const double diff = static_cast<double>(row[j]) - query[j];
      acc += diff * diff;
    }
    out[i] = acc;
  }
}

void QuantizedL2Scan(const int8_t* db, const int8_t* query,
                     const float* scale_sq, int n, int dim, int stride,
                     double* out) {
  const int d8 = dim & ~7;
  for (int i = 0; i < n; ++i) {
    const int8_t* __restrict row = db + static_cast<long>(i) * stride;
    __m256d acc_lo = _mm256_setzero_pd();
    __m256d acc_hi = _mm256_setzero_pd();
    for (int j = 0; j < d8; j += 8) {
      // 8 int8s → exact integers in float lanes; difference and square stay
      // exact (|d| ≤ 255, d² < 2²⁴). The squared-step multiply happens in
      // DOUBLE — widening d² and scale_sq first is exact, so the per-term
      // value is bit-identical to the scalar backend's
      // double(scale_sq) * (d*d), and cross-backend divergence can only
      // come from the fixed fold order.
      const __m256 rf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(row + j))));
      const __m256 qf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(query + j))));
      const __m256 d = _mm256_sub_ps(rf, qf);
      const __m256 d2 = _mm256_mul_ps(d, d);
      const __m256 s = _mm256_loadu_ps(scale_sq + j);
      acc_lo = _mm256_add_pd(
          acc_lo,
          _mm256_mul_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(d2)),
                        _mm256_cvtps_pd(_mm256_castps256_ps128(s))));
      acc_hi = _mm256_add_pd(
          acc_hi,
          _mm256_mul_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(d2, 1)),
                        _mm256_cvtps_pd(_mm256_extractf128_ps(s, 1))));
    }
    const __m256d s4 = _mm256_add_pd(acc_lo, acc_hi);
    const __m128d s2 = _mm_add_pd(_mm256_castpd256_pd128(s4),
                                  _mm256_extractf128_pd(s4, 1));
    double acc = _mm_cvtsd_f64(_mm_add_sd(s2, _mm_unpackhi_pd(s2, s2)));
    for (int j = d8; j < dim; ++j) {
      const int diff = row[j] - query[j];
      acc += static_cast<double>(scale_sq[j]) * (diff * diff);
    }
    out[i] = acc;
  }
}

}  // namespace
}  // namespace avx2

const Backend& Avx2Backend() {
  static const Backend backend = {
      avx2::HammingScan,
      avx2::HammingDistanceRow,
      avx2::SquaredL2Scan,
      avx2::QuantizedL2Scan,
  };
  return backend;
}

}  // namespace traj2hash::search::kernels
