#ifndef TRAJ2HASH_SEARCH_CODE_H_
#define TRAJ2HASH_SEARCH_CODE_H_

#include <cstdint>
#include <vector>

namespace traj2hash::search {

/// A binary hash code in Hamming space, packed into 64-bit words.
/// Bit b set means the b-th component of sign(h_f) is +1.
struct Code {
  std::vector<uint64_t> words;
  int num_bits = 0;

  friend bool operator==(const Code&, const Code&) = default;
};

/// Packs the signs of a real vector into a code (Eq. 16: sign(h_f); the
/// paper maps x > 0 to +1 and otherwise to -1).
Code PackSigns(const std::vector<float>& values);

/// Hamming distance between equal-length codes (popcount over words).
int HammingDistance(const Code& a, const Code& b);

/// 64-bit mixing hash of a code, for bucketing codes in hash tables.
uint64_t CodeHash(const Code& c);

}  // namespace traj2hash::search

#endif  // TRAJ2HASH_SEARCH_CODE_H_
