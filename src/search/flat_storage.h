#ifndef TRAJ2HASH_SEARCH_FLAT_STORAGE_H_
#define TRAJ2HASH_SEARCH_FLAT_STORAGE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "search/code.h"

namespace traj2hash::search {

/// Contiguous row-major storage for equal-width binary codes. Replaces
/// `vector<Code>` (one heap allocation + pointer chase per code) on every
/// scan path, so the blocked kernels in search/kernels.h stream the whole
/// database with unit stride.
///
/// SIMD layout contract (DESIGN.md §14): the buffer is 32-byte aligned and
/// each row starts stride_words() words apart, with stride padded to a
/// multiple of 4 words (32 B) and padding words zero-filled — so every row
/// is itself 32-byte aligned and the AVX2 Hamming fast path can fold whole
/// 256-bit blocks (padding XORs to zero).
class PackedCodes {
 public:
  /// Empty storage for `num_bits`-bit codes (cold start, grows via Append).
  explicit PackedCodes(int num_bits);

  /// Packs a whole database at once; all codes must share one width.
  static PackedCodes FromCodes(const std::vector<Code>& codes);

  /// Appends one code (width-checked); returns its row id.
  int Append(const Code& code);

  /// First word of row `i`; the row is `words_per_code()` meaningful words
  /// followed by zero padding up to `stride_words()`.
  const uint64_t* row(int i) const {
    const uint64_t* r = words_.data() + static_cast<size_t>(i) * stride_words_;
    assert((reinterpret_cast<uintptr_t>(r) & (kKernelRowAlignment - 1)) == 0);
    return r;
  }

  /// Materialises row `i` back into an owning Code (off the hot path).
  Code CodeAt(int i) const;

  /// All rows, contiguous at stride_words() (size() * stride_words() words).
  const uint64_t* data() const { return words_.data(); }

  int size() const { return num_codes_; }
  int num_bits() const { return num_bits_; }
  int words_per_code() const { return words_per_code_; }
  /// Words between consecutive row starts (words_per_code padded to 4).
  int stride_words() const { return stride_words_; }

 private:
  int num_bits_ = 0;
  int words_per_code_ = 0;
  int stride_words_ = 0;
  int num_codes_ = 0;
  AlignedVector<uint64_t> words_;
};

/// Contiguous row-major float matrix for embedding databases: the flat
/// counterpart of `vector<vector<float>>`, sized once per row append so the
/// squared-L2 scan kernel reads one dense block.
///
/// Same SIMD layout contract as PackedCodes: 32-byte-aligned buffer, row
/// stride padded to a multiple of 8 floats (32 B), padding zero-filled.
class FlatMatrix {
 public:
  /// Empty matrix with `cols` columns (grows via Append).
  explicit FlatMatrix(int cols);

  /// Flattens a nested row store; every row must have equal length.
  /// `rows` may be empty only if cols is recoverable — pass the width.
  static FlatMatrix FromRows(const std::vector<std::vector<float>>& rows,
                             int cols);

  /// Appends one row (length-checked); returns its row id.
  int Append(const std::vector<float>& row);

  const float* row(int i) const {
    const float* r = data_.data() + static_cast<size_t>(i) * stride_;
    assert((reinterpret_cast<uintptr_t>(r) & (kKernelRowAlignment - 1)) == 0);
    return r;
  }

  /// Copies row `i` back out (accessors / tests, not the scan path).
  std::vector<float> RowAt(int i) const;

  const float* data() const { return data_.data(); }
  int rows() const { return num_rows_; }
  int cols() const { return cols_; }
  /// Floats between consecutive row starts (cols padded to 8).
  int stride() const { return stride_; }

 private:
  int cols_ = 0;
  int stride_ = 0;
  int num_rows_ = 0;
  AlignedVector<float> data_;
};

}  // namespace traj2hash::search

#endif  // TRAJ2HASH_SEARCH_FLAT_STORAGE_H_
