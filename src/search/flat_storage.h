#ifndef TRAJ2HASH_SEARCH_FLAT_STORAGE_H_
#define TRAJ2HASH_SEARCH_FLAT_STORAGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "search/code.h"

namespace traj2hash::search {

/// Contiguous row-major storage for equal-width binary codes: row i occupies
/// words [i*words_per_code, (i+1)*words_per_code). Replaces `vector<Code>`
/// (one heap allocation + pointer chase per code) on every scan path, so the
/// blocked kernels in search/kernels.h stream the whole database with unit
/// stride.
class PackedCodes {
 public:
  /// Empty storage for `num_bits`-bit codes (cold start, grows via Append).
  explicit PackedCodes(int num_bits);

  /// Packs a whole database at once; all codes must share one width.
  static PackedCodes FromCodes(const std::vector<Code>& codes);

  /// Appends one code (width-checked); returns its row id.
  int Append(const Code& code);

  /// First word of row `i`; the row is `words_per_code()` contiguous words.
  const uint64_t* row(int i) const {
    return words_.data() + static_cast<size_t>(i) * words_per_code_;
  }

  /// Materialises row `i` back into an owning Code (off the hot path).
  Code CodeAt(int i) const;

  /// All rows, contiguous (size() * words_per_code() words).
  const uint64_t* data() const { return words_.data(); }

  int size() const { return num_codes_; }
  int num_bits() const { return num_bits_; }
  int words_per_code() const { return words_per_code_; }

 private:
  int num_bits_ = 0;
  int words_per_code_ = 0;
  int num_codes_ = 0;
  std::vector<uint64_t> words_;
};

/// Contiguous row-major float matrix for embedding databases: the flat
/// counterpart of `vector<vector<float>>`, sized once per row append so the
/// squared-L2 scan kernel reads one dense block.
class FlatMatrix {
 public:
  /// Empty matrix with `cols` columns (grows via Append).
  explicit FlatMatrix(int cols);

  /// Flattens a nested row store; every row must have equal length.
  /// `rows` may be empty only if cols is recoverable — pass the width.
  static FlatMatrix FromRows(const std::vector<std::vector<float>>& rows,
                             int cols);

  /// Appends one row (length-checked); returns its row id.
  int Append(const std::vector<float>& row);

  const float* row(int i) const {
    return data_.data() + static_cast<size_t>(i) * cols_;
  }

  /// Copies row `i` back out (accessors / tests, not the scan path).
  std::vector<float> RowAt(int i) const;

  const float* data() const { return data_.data(); }
  int rows() const { return num_rows_; }
  int cols() const { return cols_; }

 private:
  int cols_ = 0;
  int num_rows_ = 0;
  std::vector<float> data_;
};

}  // namespace traj2hash::search

#endif  // TRAJ2HASH_SEARCH_FLAT_STORAGE_H_
