#include "baselines/trajgat.h"

#include <algorithm>
#include <cmath>

#include "nn/ops.h"

namespace traj2hash::baselines {

PrQuadtree::PrQuadtree(const traj::BoundingBox& box, int max_depth,
                       int max_points_per_leaf)
    : max_depth_(max_depth),
      max_points_per_leaf_(max_points_per_leaf),
      box_(box) {
  T2H_CHECK_GE(max_depth, 0);
  T2H_CHECK_GE(max_points_per_leaf, 1);
  const double half =
      0.5 * std::max(std::max(box.Width(), box.Height()), 1.0);
  Node root;
  root.center = {box.min_x + 0.5 * box.Width(), box.min_y + 0.5 * box.Height()};
  root.half_size = half;
  root.depth = 0;
  nodes_.push_back(root);
  AssignLeafIds();
}

int PrQuadtree::QuadrantOf(const Node& n, const traj::Point& p) const {
  const int east = p.x >= n.center.x ? 1 : 0;
  const int north = p.y >= n.center.y ? 1 : 0;
  return north * 2 + east;
}

void PrQuadtree::Build(const std::vector<traj::Point>& points) {
  std::vector<int> ids(points.size());
  for (size_t i = 0; i < points.size(); ++i) ids[i] = static_cast<int>(i);
  nodes_.resize(1);
  nodes_[0].build_count = static_cast<int>(points.size());
  SplitIfNeeded(0, points, std::move(ids));
  AssignLeafIds();
}

void PrQuadtree::SplitIfNeeded(int node_idx,
                               const std::vector<traj::Point>& points,
                               std::vector<int> point_ids) {
  if (static_cast<int>(point_ids.size()) <= max_points_per_leaf_ ||
      nodes_[node_idx].depth >= max_depth_) {
    return;
  }
  std::vector<int> quadrant_ids[4];
  for (const int id : point_ids) {
    quadrant_ids[QuadrantOf(nodes_[node_idx], points[id])].push_back(id);
  }
  point_ids.clear();
  const double child_half = nodes_[node_idx].half_size * 0.5;
  const int child_depth = nodes_[node_idx].depth + 1;
  const traj::Point c = nodes_[node_idx].center;
  for (int q = 0; q < 4; ++q) {
    Node child;
    child.center = {c.x + (q % 2 == 1 ? child_half : -child_half),
                    c.y + (q / 2 == 1 ? child_half : -child_half)};
    child.half_size = child_half;
    child.depth = child_depth;
    child.build_count = static_cast<int>(quadrant_ids[q].size());
    const int child_idx = static_cast<int>(nodes_.size());
    nodes_.push_back(child);
    nodes_[node_idx].children[q] = child_idx;
    SplitIfNeeded(child_idx, points, std::move(quadrant_ids[q]));
  }
}

void PrQuadtree::AssignLeafIds() {
  leaves_.clear();
  for (Node& n : nodes_) {
    if (n.children[0] == -1) {
      n.leaf_id = static_cast<int>(leaves_.size());
      leaves_.push_back(LeafInfo{n.center, n.half_size, n.depth});
    } else {
      n.leaf_id = -1;
    }
  }
}

int PrQuadtree::LeafOf(const traj::Point& p) const {
  traj::Point q = p;
  q.x = std::clamp(q.x, box_.min_x, box_.max_x);
  q.y = std::clamp(q.y, box_.min_y, box_.max_y);
  int idx = 0;
  while (nodes_[idx].children[0] != -1) {
    idx = nodes_[idx].children[QuadrantOf(nodes_[idx], q)];
  }
  return nodes_[idx].leaf_id;
}

TrajGatEncoder::TrajGatEncoder(int dim, int num_blocks, int num_heads,
                               const PrQuadtree* tree,
                               const traj::BoundingBox& box, Rng& rng)
    : dim_(dim), tree_(tree), box_(box) {
  T2H_CHECK(tree != nullptr);
  token_proj_ = std::make_unique<nn::Linear>(4, dim, rng);
  for (int i = 0; i < num_blocks; ++i) {
    blocks_.push_back(
        std::make_unique<nn::EncoderBlock>(dim, num_heads, 2 * dim, rng));
  }
}

nn::Tensor TrajGatEncoder::Encode(const traj::Trajectory& t) const {
  T2H_CHECK(!t.empty());
  // Re-tokenise as deduplicated leaf visits.
  std::vector<int> leaf_seq;
  for (const traj::Point& p : t.points) {
    const int leaf = tree_->LeafOf(p);
    if (leaf_seq.empty() || leaf_seq.back() != leaf) leaf_seq.push_back(leaf);
  }
  const int n = static_cast<int>(leaf_seq.size());
  const double sx = std::max(box_.Width(), 1.0);
  const double sy = std::max(box_.Height(), 1.0);
  nn::Tensor feats = nn::MakeTensor(n, 4, false);
  for (int i = 0; i < n; ++i) {
    const PrQuadtree::LeafInfo& leaf = tree_->leaf(leaf_seq[i]);
    feats->at(i, 0) = static_cast<float>((leaf.center.x - box_.min_x) / sx);
    feats->at(i, 1) = static_cast<float>((leaf.center.y - box_.min_y) / sy);
    feats->at(i, 2) = static_cast<float>(leaf.half_size / sx);
    feats->at(i, 3) = static_cast<float>(leaf.depth) * 0.1f;
  }
  nn::Tensor x = token_proj_->Forward(feats);
  x = nn::Add(x, nn::PositionalEncoding(n, dim_));
  for (const auto& block : blocks_) x = block->Forward(x);
  // TrajGAT's global read-out is mean pooling.
  return nn::MeanRows(x);
}

std::vector<nn::Tensor> TrajGatEncoder::TrainableParameters() const {
  std::vector<nn::Tensor> params = token_proj_->Parameters();
  for (const auto& block : blocks_) {
    const std::vector<nn::Tensor> more = block->Parameters();
    params.insert(params.end(), more.begin(), more.end());
  }
  return params;
}

}  // namespace traj2hash::baselines
