#include "baselines/cltsim.h"

#include <algorithm>

#include "nn/adam.h"
#include "nn/ops.h"
#include "traj/augment.h"

namespace traj2hash::baselines {

using nn::Tensor;

namespace {

Tensor PointInput(const traj::Point& p) {
  Tensor x = nn::MakeTensor(1, 2, false);
  x->at(0, 0) = static_cast<float>(p.x);
  x->at(0, 1) = static_cast<float>(p.y);
  return x;
}

/// L2-normalises a [1, d] embedding (differentiable).
Tensor Normalize(const Tensor& z) {
  const Tensor norm = nn::Sqrt(nn::AddScalar(nn::SumAll(nn::Mul(z, z)), 1e-8f));
  const Tensor inv = nn::Div(nn::Constant(1, 1, 1.0f), norm);
  return nn::ScaleByScalar(z, inv);
}

}  // namespace

ClTsimEncoder::ClTsimEncoder(int dim, const traj::Normalizer* normalizer,
                             Rng& rng)
    : normalizer_(normalizer) {
  T2H_CHECK(normalizer != nullptr);
  cell_ = std::make_unique<nn::GruCell>(2, dim, rng);
}

Tensor ClTsimEncoder::Encode(const traj::Trajectory& t) const {
  T2H_CHECK(!t.empty());
  Tensor h = cell_->InitialState();
  for (const traj::Point& p : t.points) {
    h = cell_->Forward(PointInput(normalizer_->Apply(p)), h);
  }
  return h;
}

double ClTsimEncoder::Fit(const std::vector<traj::Trajectory>& corpus,
                          const ClTsimOptions& options, Rng& rng) {
  T2H_CHECK_GE(static_cast<int>(corpus.size()), 2);
  nn::Adam optimizer(TrainableParameters(), nn::AdamOptions{.lr = options.lr});
  std::vector<int> order(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);

  auto augment = [&](const traj::Trajectory& t) {
    const double rate = options.drop_rates[rng.UniformInt(
        0, static_cast<int>(options.drop_rates.size()) - 1)];
    return traj::Distort(traj::DropPoints(t, rate, rng), options.distort_m,
                         rng);
  };

  double last_epoch_loss = 0.0;
  const float inv_temp = 1.0f / options.temperature;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    int batches = 0;
    for (size_t start = 0; start + 1 < order.size();
         start += options.batch_size) {
      const size_t end =
          std::min(order.size(), start + options.batch_size);
      const int b = static_cast<int>(end - start);
      if (b < 2) break;
      // Two normalised views per trajectory.
      std::vector<Tensor> view_a(b), view_b(b);
      for (int i = 0; i < b; ++i) {
        const traj::Trajectory& t = corpus[order[start + i]];
        view_a[i] = Normalize(Encode(augment(t)));
        view_b[i] = Normalize(Encode(augment(t)));
      }
      // InfoNCE per anchor: positive is its own second view, negatives are
      // the other trajectories' second views.
      Tensor loss;
      for (int i = 0; i < b; ++i) {
        // [1, b] logits with the positive in column 0.
        Tensor logits = nn::Scale(nn::Dot(view_a[i], view_b[i]), inv_temp);
        for (int j = 0; j < b; ++j) {
          if (j == i) continue;
          logits = nn::ConcatCols(
              logits, nn::Scale(nn::Dot(view_a[i], view_b[j]), inv_temp));
        }
        const Tensor probs = nn::SoftmaxRows(logits);
        const Tensor nll =
            nn::Scale(nn::Log(nn::SliceCols(probs, 0, 1)), -1.0f);
        loss = loss ? nn::Add(loss, nll) : nll;
      }
      loss = nn::Scale(nn::SumAll(loss), 1.0f / static_cast<float>(b));
      epoch_loss += loss->value()[0];
      ++batches;
      nn::Backward(loss);
      optimizer.Step();
    }
    last_epoch_loss = batches > 0 ? epoch_loss / batches : 0.0;
  }
  return last_epoch_loss;
}

std::vector<Tensor> ClTsimEncoder::TrainableParameters() const {
  return cell_->Parameters();
}

}  // namespace traj2hash::baselines
