#include "baselines/metric_trainer.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "core/trainer.h"
#include "eval/metrics.h"
#include "nn/adam.h"
#include "nn/ops.h"

namespace traj2hash::baselines {

using nn::Tensor;

Result<MetricTrainReport> TrainMetric(
    NeuralEncoder* encoder, const std::vector<traj::Trajectory>& seeds,
    const std::vector<double>& seed_distances,
    const std::vector<traj::Trajectory>& val_queries,
    const std::vector<traj::Trajectory>& val_db,
    const std::vector<std::vector<int>>& val_truth,
    const MetricTrainOptions& options, Rng& rng) {
  T2H_CHECK(encoder != nullptr);
  const int n = static_cast<int>(seeds.size());
  if (n < 4) return Status::InvalidArgument("need at least 4 seeds");
  if (seed_distances.size() != static_cast<size_t>(n) * n) {
    return Status::InvalidArgument("seed_distances must be |seeds|^2");
  }
  if (val_truth.size() != val_queries.size()) {
    return Status::InvalidArgument("val_truth must match val_queries");
  }
  const int m = std::min(options.samples_per_anchor, ((n - 1) / 2) * 2);
  if (m < 2) return Status::InvalidArgument("too few seeds for sampling");

  const std::vector<double> sim =
      core::SimilarityFromDistances(seed_distances, n, options.theta);

  std::vector<std::vector<int>> ranked(n);
  for (int i = 0; i < n; ++i) {
    std::vector<int>& order = ranked[i];
    order.reserve(n - 1);
    for (int j = 0; j < n; ++j) {
      if (j != i) order.push_back(j);
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return seed_distances[static_cast<size_t>(i) * n + a] <
             seed_distances[static_cast<size_t>(i) * n + b];
    });
  }

  const std::vector<Tensor> params = encoder->TrainableParameters();
  nn::Adam optimizer(params, nn::AdamOptions{.lr = options.lr});
  MetricTrainReport report;
  std::vector<std::vector<float>> best_snapshot;

  std::vector<int> anchor_order(n);
  std::iota(anchor_order.begin(), anchor_order.end(), 0);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(anchor_order);
    double epoch_loss = 0.0;
    int epoch_terms = 0;
    for (int start = 0; start < n; start += options.batch_size) {
      const int end = std::min(n, start + options.batch_size);
      std::unordered_map<int, Tensor> cache;
      auto embed = [&](int idx) -> const Tensor& {
        auto it = cache.find(idx);
        if (it == cache.end()) {
          it = cache.emplace(idx, encoder->Encode(seeds[idx])).first;
        }
        return it->second;
      };
      Tensor loss;
      int terms = 0;
      for (int a = start; a < end; ++a) {
        const int anchor = anchor_order[a];
        std::vector<int> samples(ranked[anchor].begin(),
                                 ranked[anchor].begin() + m / 2);
        const int tail = n - 1 - m / 2;
        for (const int e : rng.SampleWithoutReplacement(tail, m / 2)) {
          samples.push_back(ranked[anchor][m / 2 + e]);
        }
        std::sort(samples.begin(), samples.end(), [&](int x, int y) {
          return sim[static_cast<size_t>(anchor) * n + x] >
                 sim[static_cast<size_t>(anchor) * n + y];
        });
        const Tensor h_a = embed(anchor);
        for (size_t j = 0; j < samples.size(); ++j) {
          const int s = samples[j];
          const float weight = 1.0f / static_cast<float>(j + 1);
          const float target =
              static_cast<float>(sim[static_cast<size_t>(anchor) * n + s]);
          const Tensor g = nn::Exp(
              nn::Scale(nn::EuclideanDistance(h_a, embed(s)), -1.0f));
          const Tensor err = nn::AddScalar(g, -target);
          const Tensor term = nn::Scale(nn::Mul(err, err), weight);
          loss = loss ? nn::Add(loss, term) : term;
          ++terms;
        }
      }
      if (!loss) continue;
      epoch_loss += loss->value()[0];
      epoch_terms += terms;
      loss = nn::Scale(loss, 1.0f / std::max(1, terms));
      nn::Backward(loss);
      optimizer.Step();
    }
    report.epoch_losses.push_back(
        epoch_terms > 0 ? epoch_loss / epoch_terms : 0.0);

    const bool validate =
        !val_queries.empty() && (epoch % options.val_interval == 0 ||
                                 epoch + 1 == options.epochs);
    if (validate) {
      const double hr10 = eval::EvaluateEuclidean(EmbedAll(*encoder, val_queries),
                                                  EmbedAll(*encoder, val_db),
                                                  val_truth)
                              .hr10;
      if (hr10 > report.best_val_hr10) {
        report.best_val_hr10 = hr10;
        report.best_epoch = epoch;
        best_snapshot.clear();
        for (const Tensor& p : params) best_snapshot.push_back(p->value());
      }
    }
  }
  if (!best_snapshot.empty()) {
    for (size_t i = 0; i < params.size(); ++i) {
      params[i]->value() = best_snapshot[i];
    }
  }
  return report;
}

std::vector<std::vector<float>> EmbedAll(
    const NeuralEncoder& encoder, const std::vector<traj::Trajectory>& ts) {
  std::vector<std::vector<float>> out;
  out.reserve(ts.size());
  for (const traj::Trajectory& t : ts) out.push_back(encoder.Embed(t));
  return out;
}

}  // namespace traj2hash::baselines
