#ifndef TRAJ2HASH_BASELINES_TRAJGAT_H_
#define TRAJ2HASH_BASELINES_TRAJGAT_H_

#include <memory>
#include <vector>

#include "baselines/encoder.h"
#include "nn/layers.h"
#include "traj/trajectory.h"

namespace traj2hash::baselines {

/// Point-region quadtree over the studied space. Leaves adapt to the data
/// density of a build corpus: dense regions split until `max_depth` or at
/// most `max_points_per_leaf` build points remain per leaf.
class PrQuadtree {
 public:
  PrQuadtree(const traj::BoundingBox& box, int max_depth,
             int max_points_per_leaf);

  /// Splits leaves according to the density of `points`.
  void Build(const std::vector<traj::Point>& points);

  /// Leaf containing `p` (points outside the box are clamped to it).
  int LeafOf(const traj::Point& p) const;

  struct LeafInfo {
    traj::Point center;
    double half_size = 0.0;
    int depth = 0;
  };
  const LeafInfo& leaf(int id) const { return leaves_[id]; }
  int num_leaves() const { return static_cast<int>(leaves_.size()); }

 private:
  struct Node {
    traj::Point center;
    double half_size;
    int depth;
    int children[4] = {-1, -1, -1, -1};  // -1 = leaf
    int leaf_id = -1;
    int build_count = 0;
  };

  int QuadrantOf(const Node& n, const traj::Point& p) const;
  void SplitIfNeeded(int node_idx, const std::vector<traj::Point>& points,
                     std::vector<int> point_ids);
  void AssignLeafIds();

  int max_depth_;
  int max_points_per_leaf_;
  traj::BoundingBox box_;
  std::vector<Node> nodes_;
  std::vector<LeafInfo> leaves_;
};

/// TrajGAT-lite (substitution, DESIGN.md §2): a trajectory is re-tokenised
/// as the deduplicated sequence of PR-quadtree leaves it traverses; each
/// leaf token is featurised by its (normalised) centre and scale, encoded by
/// attention blocks, and mean-pooled — TrajGAT's hierarchical-token +
/// global-read-out recipe for long trajectories.
class TrajGatEncoder : public NeuralEncoder {
 public:
  /// `tree` must outlive the encoder and be built already.
  TrajGatEncoder(int dim, int num_blocks, int num_heads,
                 const PrQuadtree* tree, const traj::BoundingBox& box,
                 Rng& rng);

  nn::Tensor Encode(const traj::Trajectory& t) const override;
  std::vector<nn::Tensor> TrainableParameters() const override;
  int dim() const override { return dim_; }
  std::string name() const override { return "TrajGAT"; }

 private:
  int dim_;
  const PrQuadtree* tree_;
  traj::BoundingBox box_;
  std::unique_ptr<nn::Linear> token_proj_;  // 4 features -> dim
  std::vector<std::unique_ptr<nn::EncoderBlock>> blocks_;
};

}  // namespace traj2hash::baselines

#endif  // TRAJ2HASH_BASELINES_TRAJGAT_H_
