#ifndef TRAJ2HASH_BASELINES_ENCODER_H_
#define TRAJ2HASH_BASELINES_ENCODER_H_

#include <string>
#include <vector>

#include "nn/tensor.h"
#include "traj/trajectory.h"

namespace traj2hash::baselines {

/// Common interface of the neural baseline encoders, so the metric trainer
/// (WMSE), the hash head (Table II) and the benches treat every method
/// uniformly.
class NeuralEncoder {
 public:
  virtual ~NeuralEncoder() = default;

  /// Trajectory embedding as a [1, dim] graph tensor (for training).
  virtual nn::Tensor Encode(const traj::Trajectory& t) const = 0;

  /// Parameters for the optimizer.
  virtual std::vector<nn::Tensor> TrainableParameters() const = 0;

  virtual int dim() const = 0;
  virtual std::string name() const = 0;

  /// Embedding values only (for retrieval).
  std::vector<float> Embed(const traj::Trajectory& t) const {
    return Encode(t)->value();
  }
};

}  // namespace traj2hash::baselines

#endif  // TRAJ2HASH_BASELINES_ENCODER_H_
