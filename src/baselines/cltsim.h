#ifndef TRAJ2HASH_BASELINES_CLTSIM_H_
#define TRAJ2HASH_BASELINES_CLTSIM_H_

#include <memory>
#include <vector>

#include "baselines/encoder.h"
#include "nn/layers.h"
#include "traj/normalizer.h"

namespace traj2hash::baselines {

/// CL-TSim training options (§V-A5: distorting/dropping rates
/// [0, 0.2, 0.4, 0.6]).
struct ClTsimOptions {
  int epochs = 5;
  float lr = 1e-3f;
  int batch_size = 16;
  float temperature = 0.1f;
  std::vector<double> drop_rates = {0.0, 0.2, 0.4, 0.6};
  double distort_m = 30.0;
};

/// CL-TSim (Deng et al., CIKM'22): a GRU encoder trained with contrastive
/// learning — two augmented views of a trajectory are positives, other
/// trajectories in the batch are negatives (InfoNCE over cosine
/// similarities). Like t2vec it is distance-agnostic.
class ClTsimEncoder : public NeuralEncoder {
 public:
  ClTsimEncoder(int dim, const traj::Normalizer* normalizer, Rng& rng);

  /// Contrastive pre-training. Returns the last epoch's mean InfoNCE loss.
  double Fit(const std::vector<traj::Trajectory>& corpus,
             const ClTsimOptions& options, Rng& rng);

  nn::Tensor Encode(const traj::Trajectory& t) const override;
  std::vector<nn::Tensor> TrainableParameters() const override;
  int dim() const override { return cell_->hidden_dim(); }
  std::string name() const override { return "CL-TSim"; }

 private:
  const traj::Normalizer* normalizer_;
  std::unique_ptr<nn::GruCell> cell_;
};

}  // namespace traj2hash::baselines

#endif  // TRAJ2HASH_BASELINES_CLTSIM_H_
