#include "baselines/fresh.h"

#include <cmath>

#include "common/check.h"

namespace traj2hash::baselines {

FreshLsh::FreshLsh(const FreshOptions& options, Rng& rng)
    : options_(options) {
  T2H_CHECK_GT(options.resolution_m, 0.0);
  T2H_CHECK(options.repetitions >= 1 && options.bits_per_hash >= 1);
  T2H_CHECK_LE(options.bits_per_hash, 63);
  reps_.resize(options.repetitions);
  for (Repetition& rep : reps_) {
    rep.shift_x = rng.Uniform(0.0, options.resolution_m);
    rep.shift_y = rng.Uniform(0.0, options.resolution_m);
    // Multiply-shift needs odd 64-bit multipliers.
    auto odd64 = [&rng] {
      return (static_cast<uint64_t>(rng.engine()()) << 1) | 1ull;
    };
    rep.mult_a = odd64();
    rep.mult_b = odd64();
    rep.mult_c = odd64();
  }
}

search::Code FreshLsh::CodeOf(const traj::Trajectory& t) const {
  T2H_CHECK(!t.empty());
  search::Code code;
  code.num_bits = num_bits();
  code.words.assign((code.num_bits + 63) / 64, 0);
  for (size_t r = 0; r < reps_.size(); ++r) {
    const Repetition& rep = reps_[r];
    // Snap to the shifted grid and drop consecutive duplicates.
    uint64_t h = 0x9e3779b97f4a7c15ull;
    int64_t prev_x = INT64_MIN, prev_y = INT64_MIN;
    for (const traj::Point& p : t.points) {
      const int64_t cx = static_cast<int64_t>(
          std::floor((p.x + rep.shift_x) / options_.resolution_m));
      const int64_t cy = static_cast<int64_t>(
          std::floor((p.y + rep.shift_y) / options_.resolution_m));
      if (cx == prev_x && cy == prev_y) continue;
      prev_x = cx;
      prev_y = cy;
      // Multiply-shift combination of the cell into the running hash.
      h = h * rep.mult_a + static_cast<uint64_t>(cx) * rep.mult_b +
          static_cast<uint64_t>(cy) * rep.mult_c;
    }
    // Top bits of a multiply-shift hash are the well-distributed ones.
    const uint64_t bucket = h >> (64 - options_.bits_per_hash);
    const int base = static_cast<int>(r) * options_.bits_per_hash;
    for (int b = 0; b < options_.bits_per_hash; ++b) {
      if ((bucket >> b) & 1ull) {
        const int bit = base + b;
        code.words[bit / 64] |= (uint64_t{1} << (bit % 64));
      }
    }
  }
  return code;
}

std::vector<search::Code> FreshLsh::CodeAll(
    const std::vector<traj::Trajectory>& ts) const {
  std::vector<search::Code> out;
  out.reserve(ts.size());
  for (const traj::Trajectory& t : ts) out.push_back(CodeOf(t));
  return out;
}

}  // namespace traj2hash::baselines
