#ifndef TRAJ2HASH_BASELINES_FRESH_H_
#define TRAJ2HASH_BASELINES_FRESH_H_

#include <vector>

#include "common/rng.h"
#include "search/code.h"
#include "traj/trajectory.h"

namespace traj2hash::baselines {

/// Fresh configuration, following §V-A5: resolution 1 km, 4 LSH repetitions,
/// 1 concatenation, each hash mapping to a 16-bit integer so the total code
/// length (64 bits) aligns with the neural methods' d_h.
struct FreshOptions {
  double resolution_m = 1000.0;
  int repetitions = 4;
  int bits_per_hash = 16;
};

/// Fresh (Ceccarello et al.): locality sensitive hashing for curves. Each
/// repetition snaps the trajectory onto a randomly shifted grid, collapses
/// consecutive duplicates, and hashes the resulting cell sequence with
/// multiply-shift hashing into a `bits_per_hash`-bit integer; the
/// repetitions' integers are concatenated into one code compared by Hamming
/// distance, as the paper's Table II aligns it.
class FreshLsh {
 public:
  /// Draws the random grid shifts and multiply-shift coefficients.
  FreshLsh(const FreshOptions& options, Rng& rng);

  /// Code of a trajectory (options.repetitions * bits_per_hash bits).
  search::Code CodeOf(const traj::Trajectory& t) const;

  /// Codes for a batch of trajectories.
  std::vector<search::Code> CodeAll(
      const std::vector<traj::Trajectory>& ts) const;

  int num_bits() const { return options_.repetitions * options_.bits_per_hash; }

 private:
  FreshOptions options_;
  struct Repetition {
    double shift_x = 0.0;
    double shift_y = 0.0;
    uint64_t mult_a = 0;  // odd multiply-shift coefficients
    uint64_t mult_b = 0;
    uint64_t mult_c = 0;
  };
  std::vector<Repetition> reps_;
};

}  // namespace traj2hash::baselines

#endif  // TRAJ2HASH_BASELINES_FRESH_H_
