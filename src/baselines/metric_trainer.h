#ifndef TRAJ2HASH_BASELINES_METRIC_TRAINER_H_
#define TRAJ2HASH_BASELINES_METRIC_TRAINER_H_

#include <vector>

#include "baselines/encoder.h"
#include "common/rng.h"
#include "common/status.h"

namespace traj2hash::baselines {

/// Options for NeuTraj-style deep metric learning (the WMSE objective the
/// paper trains every neural baseline with, §V-A3/A5).
struct MetricTrainOptions {
  int samples_per_anchor = 10;  ///< M
  int batch_size = 20;
  int epochs = 30;
  float lr = 1e-3f;
  float theta = 8.0f;
  int val_interval = 1;
};

struct MetricTrainReport {
  std::vector<double> epoch_losses;
  int best_epoch = -1;
  double best_val_hr10 = -1.0;
};

/// Trains `encoder` in place so Euclidean distances between embeddings
/// approximate the exact distances in `seed_distances` (row-major
/// |seeds|^2), using the same sampling/weighting as Traj2Hash's WMSE term.
/// When a validation split is given, the best-HR@10 parameters are restored
/// at the end. Validation arguments may all be empty.
Result<MetricTrainReport> TrainMetric(
    NeuralEncoder* encoder, const std::vector<traj::Trajectory>& seeds,
    const std::vector<double>& seed_distances,
    const std::vector<traj::Trajectory>& val_queries,
    const std::vector<traj::Trajectory>& val_db,
    const std::vector<std::vector<int>>& val_truth,
    const MetricTrainOptions& options, Rng& rng);

/// Embeds every trajectory with the encoder.
std::vector<std::vector<float>> EmbedAll(
    const NeuralEncoder& encoder, const std::vector<traj::Trajectory>& ts);

}  // namespace traj2hash::baselines

#endif  // TRAJ2HASH_BASELINES_METRIC_TRAINER_H_
