#include "baselines/neutraj.h"

#include "nn/ops.h"

namespace traj2hash::baselines {

using nn::Tensor;

namespace {

/// [1,2] constant tensor from a normalised point.
Tensor PointInput(const traj::Point& p) {
  Tensor x = nn::MakeTensor(1, 2, false);
  x->at(0, 0) = static_cast<float>(p.x);
  x->at(0, 1) = static_cast<float>(p.y);
  return x;
}

}  // namespace

GruTrajEncoder::GruTrajEncoder(int dim, const traj::Normalizer* normalizer,
                               Rng& rng, std::string name)
    : name_(std::move(name)), normalizer_(normalizer) {
  T2H_CHECK(normalizer != nullptr);
  cell_ = std::make_unique<nn::GruCell>(2, dim, rng);
}

Tensor GruTrajEncoder::Encode(const traj::Trajectory& t) const {
  T2H_CHECK(!t.empty());
  Tensor h = cell_->InitialState();
  for (const traj::Point& p : t.points) {
    h = cell_->Forward(PointInput(normalizer_->Apply(p)), h);
  }
  return h;
}

std::vector<Tensor> GruTrajEncoder::TrainableParameters() const {
  return cell_->Parameters();
}

NeuTrajEncoder::NeuTrajEncoder(int dim, const traj::Normalizer* normalizer,
                               const traj::Grid* grid, Rng& rng)
    : normalizer_(normalizer), grid_(grid) {
  T2H_CHECK(normalizer != nullptr && grid != nullptr);
  cell_ = std::make_unique<nn::GruCell>(2, dim, rng);
  gate_ = std::make_unique<nn::Linear>(2 * dim, dim, rng);
  // Bias the gate toward keeping the hidden state (sigmoid(3) ~ 0.95) so
  // the untrained memory read starts as a small perturbation; training can
  // open the gate where memory helps.
  const nn::Tensor bias = gate_->Parameters()[1];
  std::fill(bias->value().begin(), bias->value().end(), 3.0f);
}

Tensor NeuTrajEncoder::Encode(const traj::Trajectory& t) const {
  T2H_CHECK(!t.empty());
  const int d = cell_->hidden_dim();
  Tensor h = cell_->InitialState();
  for (const traj::Point& p : t.points) {
    h = cell_->Forward(PointInput(normalizer_->Apply(p)), h);
    // SAM read: average the memories of the 3x3 cell neighbourhood.
    const traj::Cell c = grid_->CellOf(p);
    Tensor m = nn::MakeTensor(1, d, false);
    int hits = 0;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const traj::Cell nc{c.x + dx, c.y + dy};
        if (nc.x < 0 || nc.x >= grid_->num_x() || nc.y < 0 ||
            nc.y >= grid_->num_y()) {
          continue;
        }
        const auto it = memory_.find(grid_->FlatId(nc));
        if (it == memory_.end()) continue;
        for (int j = 0; j < d; ++j) m->at(0, j) += it->second[j];
        ++hits;
      }
    }
    if (hits > 0) {
      for (int j = 0; j < d; ++j) m->at(0, j) /= static_cast<float>(hits);
      // Gated blend of memory into the hidden state.
      const Tensor g = nn::Sigmoid(gate_->Forward(nn::ConcatCols(h, m)));
      const Tensor one_minus_g = nn::AddScalar(nn::Scale(g, -1.0f), 1.0f);
      h = nn::Add(nn::Mul(g, h), nn::Mul(one_minus_g, m));
    }
    // SAM write: running average of the (detached) hidden state.
    if (memory_writes_) {
      std::vector<float>& slot = memory_[grid_->FlatId(c)];
      if (slot.empty()) {
        slot = h->value();
      } else {
        for (int j = 0; j < d; ++j) {
          slot[j] = 0.5f * slot[j] + 0.5f * h->value()[j];
        }
      }
    }
  }
  return h;
}

std::vector<Tensor> NeuTrajEncoder::TrainableParameters() const {
  std::vector<Tensor> params = cell_->Parameters();
  const std::vector<Tensor> gate = gate_->Parameters();
  params.insert(params.end(), gate.begin(), gate.end());
  return params;
}

}  // namespace traj2hash::baselines
