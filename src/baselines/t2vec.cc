#include "baselines/t2vec.h"

#include "nn/adam.h"
#include "nn/ops.h"
#include "traj/augment.h"

namespace traj2hash::baselines {

using nn::Tensor;

T2VecEncoder::T2VecEncoder(int dim, const traj::Normalizer* normalizer,
                           Rng& rng)
    : normalizer_(normalizer) {
  T2H_CHECK(normalizer != nullptr);
  encoder_ = std::make_unique<nn::GruCell>(2, dim, rng);
  decoder_ = std::make_unique<nn::GruCell>(2, dim, rng);
  output_ = std::make_unique<nn::Linear>(dim, 2, rng);
}

namespace {

Tensor PointInput(const traj::Point& p) {
  Tensor x = nn::MakeTensor(1, 2, false);
  x->at(0, 0) = static_cast<float>(p.x);
  x->at(0, 1) = static_cast<float>(p.y);
  return x;
}

}  // namespace

Tensor T2VecEncoder::Encode(const traj::Trajectory& t) const {
  T2H_CHECK(!t.empty());
  Tensor h = encoder_->InitialState();
  for (const traj::Point& p : t.points) {
    h = encoder_->Forward(PointInput(normalizer_->Apply(p)), h);
  }
  return h;
}

double T2VecEncoder::Fit(const std::vector<traj::Trajectory>& corpus,
                         const T2VecOptions& options, Rng& rng) {
  T2H_CHECK(!corpus.empty());
  std::vector<Tensor> params = TrainableParameters();
  nn::Adam optimizer(params, nn::AdamOptions{.lr = options.lr});
  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    double epoch_loss = 0.0;
    for (const traj::Trajectory& t : corpus) {
      // Augment: random dropping rate from the configured set + distortion.
      const double rate = options.drop_rates[rng.UniformInt(
          0, static_cast<int>(options.drop_rates.size()) - 1)];
      traj::Trajectory noisy = traj::Distort(
          traj::DropPoints(t, rate, rng), options.distort_m, rng);
      if (noisy.empty()) continue;
      const Tensor state = Encode(noisy);

      // Decode the clean sequence with teacher forcing: the decoder input at
      // step i is the clean normalised point i-1 (origin for the first).
      Tensor h = state;
      Tensor loss;
      traj::Point prev{0.0, 0.0};
      for (const traj::Point& p : t.points) {
        h = decoder_->Forward(PointInput(prev), h);
        const traj::Point target = normalizer_->Apply(p);
        const Tensor pred = output_->Forward(h);
        const Tensor diff = nn::Sub(pred, PointInput(target));
        const Tensor term = nn::SumAll(nn::Mul(diff, diff));
        loss = loss ? nn::Add(loss, term) : term;
        prev = target;
      }
      loss = nn::Scale(loss, 1.0f / static_cast<float>(t.size()));
      epoch_loss += loss->value()[0];
      nn::Backward(loss);
      optimizer.Step();
    }
    last_epoch_loss = epoch_loss / static_cast<double>(corpus.size());
  }
  return last_epoch_loss;
}

std::vector<Tensor> T2VecEncoder::TrainableParameters() const {
  std::vector<Tensor> params = encoder_->Parameters();
  auto append = [&params](const std::vector<Tensor>& more) {
    params.insert(params.end(), more.begin(), more.end());
  };
  append(decoder_->Parameters());
  append(output_->Parameters());
  return params;
}

}  // namespace traj2hash::baselines
