#include "baselines/hash_head.h"

#include <algorithm>
#include <numeric>

#include "core/trainer.h"
#include "nn/adam.h"
#include "nn/ops.h"

namespace traj2hash::baselines {

using nn::Tensor;

HashHead::HashHead(int in_dim, int num_bits, Rng& rng)
    : in_dim_(in_dim), num_bits_(num_bits) {
  T2H_CHECK(in_dim > 0 && num_bits > 0);
  projection_ =
      std::make_unique<nn::Linear>(in_dim, num_bits, rng, /*use_bias=*/false);
}

Result<double> HashHead::Fit(
    const std::vector<std::vector<float>>& seed_embeddings,
    const std::vector<double>& seed_distances, const HashHeadOptions& options,
    Rng& rng) {
  const int n = static_cast<int>(seed_embeddings.size());
  if (n < 4) return Status::InvalidArgument("need at least 4 seeds");
  if (seed_distances.size() != static_cast<size_t>(n) * n) {
    return Status::InvalidArgument("seed_distances must be |seeds|^2");
  }
  const int m = std::min(options.samples_per_anchor, ((n - 1) / 2) * 2);
  if (m < 2) return Status::InvalidArgument("too few seeds for sampling");

  const std::vector<double> sim =
      core::SimilarityFromDistances(seed_distances, n, options.theta);

  // Frozen base embeddings become constant graph inputs.
  std::vector<Tensor> inputs;
  inputs.reserve(n);
  for (const std::vector<float>& e : seed_embeddings) {
    if (static_cast<int>(e.size()) != in_dim_) {
      return Status::InvalidArgument("embedding width mismatch");
    }
    inputs.push_back(nn::FromValues(1, in_dim_, e));
  }

  std::vector<std::vector<int>> ranked(n);
  for (int i = 0; i < n; ++i) {
    std::vector<int>& order = ranked[i];
    for (int j = 0; j < n; ++j) {
      if (j != i) order.push_back(j);
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return seed_distances[static_cast<size_t>(i) * n + a] <
             seed_distances[static_cast<size_t>(i) * n + b];
    });
  }

  nn::Adam optimizer(projection_->Parameters(),
                     nn::AdamOptions{.lr = options.lr});
  std::vector<int> anchor_order(n);
  std::iota(anchor_order.begin(), anchor_order.end(), 0);
  double last_epoch_loss = 0.0;
  float beta = 1.0f;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(anchor_order);
    double epoch_loss = 0.0;
    int terms = 0;
    for (const int anchor : anchor_order) {
      std::vector<int> samples(ranked[anchor].begin(),
                               ranked[anchor].begin() + m / 2);
      const int tail = n - 1 - m / 2;
      for (const int e : rng.SampleWithoutReplacement(tail, m / 2)) {
        samples.push_back(ranked[anchor][m / 2 + e]);
      }
      std::sort(samples.begin(), samples.end(), [&](int x, int y) {
        return sim[static_cast<size_t>(anchor) * n + x] >
               sim[static_cast<size_t>(anchor) * n + y];
      });
      auto relaxed = [&](int idx) {
        return nn::Tanh(nn::Scale(projection_->Forward(inputs[idx]), beta));
      };
      const Tensor z_a = relaxed(anchor);
      Tensor loss;
      // Pair the j-th most similar with the j-th least similar (see
      // core/trainer.cc for the rationale).
      const int half = static_cast<int>(samples.size()) / 2;
      for (int p = 0; p < half; ++p) {
        int pos = samples[p], neg = samples[p + half];
        if (sim[static_cast<size_t>(anchor) * n + pos] <
            sim[static_cast<size_t>(anchor) * n + neg]) {
          std::swap(pos, neg);
        }
        const Tensor margin = nn::AddScalar(
            nn::Sub(nn::Dot(z_a, relaxed(neg)), nn::Dot(z_a, relaxed(pos))),
            options.alpha);
        const Tensor term = nn::Relu(margin);
        loss = loss ? nn::Add(loss, term) : term;
        ++terms;
      }
      if (!loss) continue;
      epoch_loss += loss->value()[0];
      nn::Backward(nn::Scale(loss, 2.0f / m));
      optimizer.Step();
    }
    last_epoch_loss = terms > 0 ? epoch_loss / terms : 0.0;
    beta += options.beta_growth;
  }
  return last_epoch_loss;
}

search::Code HashHead::CodeOf(const std::vector<float>& embedding) const {
  T2H_CHECK_EQ(static_cast<int>(embedding.size()), in_dim_);
  const Tensor out =
      projection_->Forward(nn::FromValues(1, in_dim_, embedding));
  return search::PackSigns(out->value());
}

std::vector<search::Code> HashHead::CodeAll(
    const std::vector<std::vector<float>>& embeddings) const {
  std::vector<search::Code> codes;
  codes.reserve(embeddings.size());
  for (const std::vector<float>& e : embeddings) codes.push_back(CodeOf(e));
  return codes;
}

}  // namespace traj2hash::baselines
