#include "baselines/transformer.h"

namespace traj2hash::baselines {

TransformerEncoder::TransformerEncoder(int dim, int num_blocks, int num_heads,
                                       core::ReadOut read_out,
                                       const traj::Normalizer* normalizer,
                                       Rng& rng)
    : dim_(dim), read_out_(read_out), normalizer_(normalizer) {
  T2H_CHECK(normalizer != nullptr);
  encoder_ = std::make_unique<core::GpsEncoder>(dim, num_blocks, num_heads,
                                                read_out, rng);
}

nn::Tensor TransformerEncoder::Encode(const traj::Trajectory& t) const {
  return encoder_->Forward(normalizer_->Apply(t));
}

std::vector<nn::Tensor> TransformerEncoder::TrainableParameters() const {
  return encoder_->Parameters();
}

std::string TransformerEncoder::name() const {
  switch (read_out_) {
    case core::ReadOut::kCls:
      return "Transformer";
    case core::ReadOut::kMean:
      return "Transformer-Mean";
    case core::ReadOut::kLowerBound:
      return "Transformer-LowerBound";
  }
  return "Transformer";
}

}  // namespace traj2hash::baselines
