#ifndef TRAJ2HASH_BASELINES_NEUTRAJ_H_
#define TRAJ2HASH_BASELINES_NEUTRAJ_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/encoder.h"
#include "nn/layers.h"
#include "traj/grid.h"
#include "traj/normalizer.h"

namespace traj2hash::baselines {

/// NT-No-SAM (Yao et al., ICDE'19, ablated): a GRU over Gaussian-normalised
/// GPS points whose last hidden state is the trajectory embedding — the
/// "last hidden state read-out implicitly achieves the lower-bound induced
/// read-out" the paper discusses in §V-B. Trained with the WMSE metric
/// objective (metric_trainer.h).
class GruTrajEncoder : public NeuralEncoder {
 public:
  /// `normalizer` must outlive the encoder.
  GruTrajEncoder(int dim, const traj::Normalizer* normalizer, Rng& rng,
                 std::string name = "NT-No-SAM");

  nn::Tensor Encode(const traj::Trajectory& t) const override;
  std::vector<nn::Tensor> TrainableParameters() const override;
  int dim() const override { return cell_->hidden_dim(); }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  const traj::Normalizer* normalizer_;
  std::unique_ptr<nn::GruCell> cell_;
};

/// NeuTraj: the GRU of NT-No-SAM augmented with a spatial attention memory
/// (SAM). Substitution (DESIGN.md §2): each fine-grid cell keeps a running
/// average of hidden states observed there; at every step the 3x3
/// neighbourhood's memories are averaged into a read vector m_t (treated as
/// a constant — no backprop through the store), and a learned gate blends
/// m_t into the hidden state. The memory persists across calls and is
/// updated during encoding.
class NeuTrajEncoder : public NeuralEncoder {
 public:
  /// `normalizer` and `grid` must outlive the encoder.
  NeuTrajEncoder(int dim, const traj::Normalizer* normalizer,
                 const traj::Grid* grid, Rng& rng);

  nn::Tensor Encode(const traj::Trajectory& t) const override;
  std::vector<nn::Tensor> TrainableParameters() const override;
  int dim() const override { return cell_->hidden_dim(); }
  std::string name() const override { return "NeuTraj"; }

  /// Drops all cell memories (e.g. between epochs).
  void ClearMemory() { memory_.clear(); }

  /// Enables/disables memory writes. Writes are on during training (the
  /// memory is part of the learning signal) and should be frozen for
  /// evaluation so embeddings do not depend on encode order.
  void set_memory_writes(bool enabled) { memory_writes_ = enabled; }

 private:
  const traj::Normalizer* normalizer_;
  const traj::Grid* grid_;
  std::unique_ptr<nn::GruCell> cell_;
  std::unique_ptr<nn::Linear> gate_;  // [h; m] -> gate logits
  bool memory_writes_ = true;
  // Running-average hidden state per visited cell (detached values).
  mutable std::unordered_map<int64_t, std::vector<float>> memory_;
};

}  // namespace traj2hash::baselines

#endif  // TRAJ2HASH_BASELINES_NEUTRAJ_H_
