#ifndef TRAJ2HASH_BASELINES_TRANSFORMER_H_
#define TRAJ2HASH_BASELINES_TRANSFORMER_H_

#include <memory>

#include "baselines/encoder.h"
#include "core/encoders.h"
#include "traj/normalizer.h"

namespace traj2hash::baselines {

/// The plain Transformer baseline (§V-A3): the same attention backbone as
/// Traj2Hash's GPS channel with a CLS read-out by default, trained with WMSE
/// only. The read-out is configurable because Fig. 4's study compares Mean /
/// CLS / LowerBound on this exact backbone.
class TransformerEncoder : public NeuralEncoder {
 public:
  TransformerEncoder(int dim, int num_blocks, int num_heads,
                     core::ReadOut read_out,
                     const traj::Normalizer* normalizer, Rng& rng);

  nn::Tensor Encode(const traj::Trajectory& t) const override;
  std::vector<nn::Tensor> TrainableParameters() const override;
  int dim() const override { return dim_; }
  std::string name() const override;

 private:
  int dim_;
  core::ReadOut read_out_;
  const traj::Normalizer* normalizer_;
  std::unique_ptr<core::GpsEncoder> encoder_;
};

}  // namespace traj2hash::baselines

#endif  // TRAJ2HASH_BASELINES_TRANSFORMER_H_
