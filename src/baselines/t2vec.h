#ifndef TRAJ2HASH_BASELINES_T2VEC_H_
#define TRAJ2HASH_BASELINES_T2VEC_H_

#include <memory>
#include <vector>

#include "baselines/encoder.h"
#include "nn/layers.h"
#include "traj/normalizer.h"

namespace traj2hash::baselines {

/// t2vec training options. Distorting/dropping rates follow §V-A5
/// ("we set the distorting and dropping rate are [0, 0.2, 0.4, 0.6]").
struct T2VecOptions {
  int epochs = 5;
  float lr = 1e-3f;
  std::vector<double> drop_rates = {0.0, 0.2, 0.4, 0.6};
  double distort_m = 30.0;
};

/// t2vec (Li et al., ICDE'18), substituted as documented in DESIGN.md §2: a
/// GRU denoising autoencoder — the encoder reads an augmented (dropped /
/// distorted) trajectory, the decoder reconstructs the clean normalised
/// coordinate sequence with teacher forcing (coordinate regression instead
/// of the original's cell-token softmax, same self-supervised objective).
/// Distance-agnostic by design, which is the property the paper's Table I
/// comparison exercises.
class T2VecEncoder : public NeuralEncoder {
 public:
  T2VecEncoder(int dim, const traj::Normalizer* normalizer, Rng& rng);

  /// Self-supervised pre-training on an unlabelled corpus. Returns the last
  /// epoch's mean reconstruction loss.
  double Fit(const std::vector<traj::Trajectory>& corpus,
             const T2VecOptions& options, Rng& rng);

  nn::Tensor Encode(const traj::Trajectory& t) const override;
  std::vector<nn::Tensor> TrainableParameters() const override;
  int dim() const override { return encoder_->hidden_dim(); }
  std::string name() const override { return "t2vec"; }

 private:
  const traj::Normalizer* normalizer_;
  std::unique_ptr<nn::GruCell> encoder_;
  std::unique_ptr<nn::GruCell> decoder_;
  std::unique_ptr<nn::Linear> output_;  // hidden -> 2 coordinates
};

}  // namespace traj2hash::baselines

#endif  // TRAJ2HASH_BASELINES_T2VEC_H_
