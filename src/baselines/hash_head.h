#ifndef TRAJ2HASH_BASELINES_HASH_HEAD_H_
#define TRAJ2HASH_BASELINES_HASH_HEAD_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "nn/layers.h"
#include "search/code.h"

namespace traj2hash::baselines {

/// Training options for the baseline hash head.
struct HashHeadOptions {
  int epochs = 20;
  float lr = 1e-3f;
  float alpha = 5.0f;  ///< ranking margin (Eq. 18)
  float theta = 8.0f;  ///< similarity smoothing for pair labelling
  int samples_per_anchor = 10;
  float beta_growth = 1.0f;  ///< tanh(beta*) continuation schedule
};

/// The paper's Table II adapter: "we leverage the proposed ranking-based
/// hashing objective with a extra trainable linear layer to convert the
/// dense vectors from baselines above into hash codes". The base encoder is
/// frozen; only the linear layer trains, with the Eq. 18 hinge on
/// tanh(beta*)-relaxed codes and the HashNet continuation.
class HashHead {
 public:
  HashHead(int in_dim, int num_bits, Rng& rng);

  /// Trains on the frozen `seed_embeddings` (one row per seed) labelled by
  /// the exact `seed_distances` (row-major |seeds|^2). Returns the last
  /// epoch's mean hinge loss.
  Result<double> Fit(const std::vector<std::vector<float>>& seed_embeddings,
                     const std::vector<double>& seed_distances,
                     const HashHeadOptions& options, Rng& rng);

  /// Binary code of a (frozen) base embedding.
  search::Code CodeOf(const std::vector<float>& embedding) const;

  /// Codes for a batch of embeddings.
  std::vector<search::Code> CodeAll(
      const std::vector<std::vector<float>>& embeddings) const;

  int num_bits() const { return num_bits_; }

 private:
  int in_dim_;
  int num_bits_;
  std::unique_ptr<nn::Linear> projection_;
};

}  // namespace traj2hash::baselines

#endif  // TRAJ2HASH_BASELINES_HASH_HEAD_H_
