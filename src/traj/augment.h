#ifndef TRAJ2HASH_TRAJ_AUGMENT_H_
#define TRAJ2HASH_TRAJ_AUGMENT_H_

#include "common/rng.h"
#include "traj/trajectory.h"

namespace traj2hash::traj {

/// Randomly removes interior points with probability `rate`, always keeping
/// the first and last point (t2vec/CL-TSim's "dropping" augmentation).
Trajectory DropPoints(const Trajectory& t, double rate, Rng& rng);

/// Adds Gaussian jitter of `stddev_m` metres to every point (the
/// "distorting" augmentation).
Trajectory Distort(const Trajectory& t, double stddev_m, Rng& rng);

}  // namespace traj2hash::traj

#endif  // TRAJ2HASH_TRAJ_AUGMENT_H_
