#include "traj/simplify.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace traj2hash::traj {

double SegmentDistance(const Point& p, const Point& a, const Point& b) {
  const double abx = b.x - a.x;
  const double aby = b.y - a.y;
  const double len_sq = abx * abx + aby * aby;
  if (len_sq == 0.0) return Distance(p, a);
  // Projection parameter clamped to the segment.
  double t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / len_sq;
  t = std::clamp(t, 0.0, 1.0);
  const Point closest{a.x + t * abx, a.y + t * aby};
  return Distance(p, closest);
}

namespace {

/// Marks kept points for the range [lo, hi] (inclusive endpoints already
/// marked). Explicit stack — raw GPS traces can be long.
void MarkKeepers(const std::vector<Point>& pts, double epsilon,
                 std::vector<bool>& keep) {
  std::vector<std::pair<int, int>> stack = {
      {0, static_cast<int>(pts.size()) - 1}};
  while (!stack.empty()) {
    const auto [lo, hi] = stack.back();
    stack.pop_back();
    if (hi - lo < 2) continue;
    double worst = -1.0;
    int split = -1;
    for (int i = lo + 1; i < hi; ++i) {
      const double d = SegmentDistance(pts[i], pts[lo], pts[hi]);
      if (d > worst) {
        worst = d;
        split = i;
      }
    }
    if (worst > epsilon) {
      keep[split] = true;
      stack.push_back({lo, split});
      stack.push_back({split, hi});
    }
  }
}

}  // namespace

Trajectory DouglasPeucker(const Trajectory& t, double epsilon_m) {
  T2H_CHECK_GE(epsilon_m, 0.0);
  Trajectory out;
  out.id = t.id;
  if (t.size() <= 2) {
    out.points = t.points;
    return out;
  }
  std::vector<bool> keep(t.points.size(), false);
  keep.front() = keep.back() = true;
  MarkKeepers(t.points, epsilon_m, keep);
  for (size_t i = 0; i < t.points.size(); ++i) {
    if (keep[i]) out.points.push_back(t.points[i]);
  }
  return out;
}

double SimplificationError(const Trajectory& original,
                           const Trajectory& simplified) {
  T2H_CHECK(!original.empty() && !simplified.empty());
  double worst = 0.0;
  for (const Point& p : original.points) {
    double best = Distance(p, simplified.points[0]);
    for (size_t i = 1; i < simplified.points.size(); ++i) {
      best = std::min(best, SegmentDistance(p, simplified.points[i - 1],
                                            simplified.points[i]));
    }
    worst = std::max(worst, best);
  }
  return worst;
}

}  // namespace traj2hash::traj
