#include "traj/grid.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace traj2hash::traj {

Result<Grid> Grid::Create(const BoundingBox& box, double cell_size) {
  if (cell_size <= 0.0) {
    return Status::InvalidArgument("cell_size must be positive");
  }
  if (box.Width() < 0.0 || box.Height() < 0.0) {
    return Status::InvalidArgument("bounding box is inverted");
  }
  // Pad by one cell on every side so CellOf never lands on the exclusive
  // upper border for points exactly on the box boundary.
  const double origin_x = box.min_x - cell_size;
  const double origin_y = box.min_y - cell_size;
  const int num_x =
      static_cast<int>(std::ceil(box.Width() / cell_size)) + 2;
  const int num_y =
      static_cast<int>(std::ceil(box.Height() / cell_size)) + 2;
  return Grid(origin_x, origin_y, cell_size, num_x, num_y);
}

Cell Grid::CellOf(const Point& p) const {
  int cx = static_cast<int>(std::floor((p.x - origin_x_) / cell_size_));
  int cy = static_cast<int>(std::floor((p.y - origin_y_) / cell_size_));
  cx = std::clamp(cx, 0, num_x_ - 1);
  cy = std::clamp(cy, 0, num_y_ - 1);
  return Cell{cx, cy};
}

Point Grid::CellCenter(const Cell& c) const {
  return Point{origin_x_ + (c.x + 0.5) * cell_size_,
               origin_y_ + (c.y + 0.5) * cell_size_};
}

GridTrajectory Grid::Map(const Trajectory& t, bool dedup_consecutive) const {
  GridTrajectory g;
  g.id = t.id;
  g.cells.reserve(t.points.size());
  for (const Point& p : t.points) {
    Cell c = CellOf(p);
    if (dedup_consecutive && !g.cells.empty() && g.cells.back() == c) {
      continue;
    }
    g.cells.push_back(c);
  }
  return g;
}

int64_t Grid::FlatId(const Cell& c) const {
  T2H_CHECK(c.x >= 0 && c.x < num_x_ && c.y >= 0 && c.y < num_y_);
  return static_cast<int64_t>(c.y) * num_x_ + c.x;
}

std::string Grid::SequenceKey(const GridTrajectory& g) const {
  std::string key;
  key.reserve(g.cells.size() * 8);
  for (const Cell& c : g.cells) {
    key += std::to_string(FlatId(c));
    key += ',';
  }
  return key;
}

}  // namespace traj2hash::traj
