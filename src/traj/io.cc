#include "traj/io.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace traj2hash::traj {

Status SaveCsv(const std::vector<Trajectory>& ts, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << "# traj2hash trajectories: id,x1,y1,x2,y2,...\n";
  char buf[64];
  for (const Trajectory& t : ts) {
    out << t.id;
    for (const Point& p : t.points) {
      std::snprintf(buf, sizeof(buf), ",%.2f,%.2f", p.x, p.y);
      out << buf;
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<std::vector<Trajectory>> LoadCsv(const std::string& path,
                                        int* skipped_lines) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::vector<Trajectory> out;
  if (skipped_lines != nullptr) *skipped_lines = 0;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      if (skipped_lines != nullptr) ++(*skipped_lines);
      continue;
    }
    std::stringstream ss(line);
    std::string field;
    Trajectory t;
    if (!std::getline(ss, field, ',')) continue;
    char* end = nullptr;
    t.id = std::strtoll(field.c_str(), &end, 10);
    // strtoll succeeding is not enough: "12abc" parses as 12 and leaves the
    // garbage behind, so the whole field must have been consumed.
    if (end == field.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad id '" + field + "' at line " +
                                     std::to_string(line_no));
    }
    std::vector<double> values;
    while (std::getline(ss, field, ',')) {
      end = nullptr;
      const double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad coordinate '" + field +
                                       "' at line " + std::to_string(line_no));
      }
      if (!std::isfinite(v)) {
        // NaN/Inf coordinates poison every downstream distance and grid
        // computation; reject them at the trust boundary.
        return Status::InvalidArgument("non-finite coordinate '" + field +
                                       "' at line " + std::to_string(line_no));
      }
      values.push_back(v);
    }
    if (values.size() % 2 != 0) {
      return Status::InvalidArgument("odd coordinate count at line " +
                                     std::to_string(line_no));
    }
    for (size_t i = 0; i + 1 < values.size(); i += 2) {
      t.points.push_back(Point{values[i], values[i + 1]});
    }
    out.push_back(std::move(t));
  }
  return out;
}

Point ProjectLatLon(double lat, double lon, double lat0, double lon0) {
  constexpr double kEarthRadiusM = 6371000.0;
  constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
  const double x =
      (lon - lon0) * kDegToRad * kEarthRadiusM * std::cos(lat0 * kDegToRad);
  const double y = (lat - lat0) * kDegToRad * kEarthRadiusM;
  return Point{x, y};
}

}  // namespace traj2hash::traj
