#ifndef TRAJ2HASH_TRAJ_SIMPLIFY_H_
#define TRAJ2HASH_TRAJ_SIMPLIFY_H_

#include "traj/trajectory.h"

namespace traj2hash::traj {

/// Perpendicular distance from `p` to the segment (a, b); degenerates to
/// point distance when a == b.
double SegmentDistance(const Point& p, const Point& a, const Point& b);

/// Douglas-Peucker polyline simplification: keeps the endpoints and every
/// point whose removal would move the polyline by more than `epsilon_m`
/// metres. Classic trajectory preprocessing for feeding long raw GPS traces
/// into the encoders without resampling artefacts; endpoints are always
/// preserved, so the Lemma 1 lower bound of the simplified trajectory
/// matches the original's.
Trajectory DouglasPeucker(const Trajectory& t, double epsilon_m);

/// Maximum perpendicular deviation of `original` from the polyline
/// `simplified` (the simplification error; <= epsilon_m for DouglasPeucker
/// output). Both trajectories must be non-empty.
double SimplificationError(const Trajectory& original,
                           const Trajectory& simplified);

}  // namespace traj2hash::traj

#endif  // TRAJ2HASH_TRAJ_SIMPLIFY_H_
