#ifndef TRAJ2HASH_TRAJ_IO_H_
#define TRAJ2HASH_TRAJ_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "traj/trajectory.h"

namespace traj2hash::traj {

/// Saves trajectories as CSV, one trajectory per line:
///   id,x1,y1,x2,y2,...
/// Coordinates are written in metres with centimetre precision.
Status SaveCsv(const std::vector<Trajectory>& ts, const std::string& path);

/// Loads trajectories from the CSV format written by SaveCsv. Lines that are
/// empty or start with '#' are skipped (counted into `skipped_lines` when
/// given, so callers can report how much of an untrusted file was ignored).
/// Returns IoError if the file cannot be opened and InvalidArgument — with
/// the 1-based line number — on malformed rows: non-numeric or
/// partially-numeric fields ("1.5x"), NaN/Inf coordinates, and odd
/// coordinate counts are all rejected rather than silently accepted.
Result<std::vector<Trajectory>> LoadCsv(const std::string& path,
                                        int* skipped_lines = nullptr);

/// Projects a (lat, lon) degree pair to local planar metres with an
/// equirectangular projection anchored at (lat0, lon0). Adequate at city
/// scale (worst-case distortion well under the 50 m grid resolution), which
/// is how external datasets such as Porto can be fed into this library.
Point ProjectLatLon(double lat, double lon, double lat0, double lon0);

}  // namespace traj2hash::traj

#endif  // TRAJ2HASH_TRAJ_IO_H_
