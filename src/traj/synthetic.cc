#include "traj/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace traj2hash::traj {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Snaps an angle to the nearest multiple of pi/2 (street-grid movement).
double SnapToAxis(double angle) {
  return std::round(angle / (kPi / 2.0)) * (kPi / 2.0);
}

Point ClampToBox(Point p, const CityConfig& cfg) {
  p.x = std::clamp(p.x, 0.0, cfg.width_m);
  p.y = std::clamp(p.y, 0.0, cfg.height_m);
  return p;
}

/// One trip between two endpoints; may come out shorter than min_points if
/// origin and destination are close, in which case the caller retries.
Trajectory GenerateOneTrip(const CityConfig& cfg,
                           const std::vector<Point>& hubs, Rng& rng) {
  const Point& origin_hub = hubs[rng.UniformInt(0, cfg.num_hubs - 1)];
  const Point& dest_hub = hubs[rng.UniformInt(0, cfg.num_hubs - 1)];
  Point pos = ClampToBox(Point{origin_hub.x + rng.Gaussian(cfg.hub_spread_m),
                               origin_hub.y + rng.Gaussian(cfg.hub_spread_m)},
                         cfg);
  const Point dest =
      ClampToBox(Point{dest_hub.x + rng.Gaussian(cfg.hub_spread_m),
                       dest_hub.y + rng.Gaussian(cfg.hub_spread_m)},
                 cfg);

  Trajectory t;
  double heading = std::atan2(dest.y - pos.y, dest.x - pos.x);
  for (int step = 0; step < cfg.max_points; ++step) {
    t.points.push_back(Point{pos.x + rng.Gaussian(cfg.gps_noise_m),
                             pos.y + rng.Gaussian(cfg.gps_noise_m)});
    if (Distance(pos, dest) < cfg.step_m) break;
    // Blend the current heading toward the destination bearing, add jitter,
    // and optionally snap to an axis to imitate a street grid.
    const double target = std::atan2(dest.y - pos.y, dest.x - pos.x);
    double delta = std::remainder(target - heading, 2.0 * kPi);
    heading += 0.45 * delta + rng.Gaussian(cfg.heading_noise);
    double move_heading = heading;
    if (rng.Bernoulli(cfg.grid_bias)) move_heading = SnapToAxis(heading);
    const double step_len = cfg.step_m * (0.6 + 0.8 * rng.Uniform(0.0, 1.0));
    pos = ClampToBox(Point{pos.x + step_len * std::cos(move_heading),
                           pos.y + step_len * std::sin(move_heading)},
                     cfg);
  }
  return t;
}

}  // namespace

CityConfig CityConfig::PortoLike() {
  CityConfig cfg;
  cfg.name = "Porto";
  cfg.width_m = 15000.0;
  cfg.height_m = 10000.0;
  cfg.num_hubs = 6;
  cfg.heading_noise = 0.40;
  cfg.grid_bias = 0.0;
  return cfg;
}

CityConfig CityConfig::ChengduLike() {
  CityConfig cfg;
  cfg.name = "ChengDu";
  cfg.width_m = 20000.0;
  cfg.height_m = 20000.0;
  cfg.num_hubs = 8;
  cfg.heading_noise = 0.20;
  cfg.grid_bias = 0.55;
  return cfg;
}

std::vector<Trajectory> GenerateTrips(const CityConfig& config, int n,
                                      Rng& rng) {
  T2H_CHECK_GT(config.num_hubs, 0);
  T2H_CHECK_GE(config.max_points, config.min_points);
  std::vector<Point> hubs;
  hubs.reserve(config.num_hubs);
  for (int i = 0; i < config.num_hubs; ++i) {
    hubs.push_back(Point{rng.Uniform(0.15, 0.85) * config.width_m,
                         rng.Uniform(0.15, 0.85) * config.height_m});
  }
  std::vector<Trajectory> out;
  out.reserve(n);
  while (static_cast<int>(out.size()) < n) {
    Trajectory t = GenerateOneTrip(config, hubs, rng);
    if (t.size() < config.min_points) continue;  // paper's length filter
    t.id = static_cast<int64_t>(out.size());
    out.push_back(std::move(t));
  }
  return out;
}

Trajectory Downsample(const Trajectory& t, int max_points) {
  T2H_CHECK_GE(max_points, 2);
  if (t.size() <= max_points) return t;
  Trajectory out;
  out.id = t.id;
  out.points.reserve(max_points);
  const int n = t.size();
  for (int i = 0; i < max_points; ++i) {
    // Evenly spaced indices with both endpoints included.
    const int idx = static_cast<int>(
        std::llround(static_cast<double>(i) * (n - 1) / (max_points - 1)));
    out.points.push_back(t.points[idx]);
  }
  return out;
}

}  // namespace traj2hash::traj
