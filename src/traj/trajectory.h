#ifndef TRAJ2HASH_TRAJ_TRAJECTORY_H_
#define TRAJ2HASH_TRAJ_TRAJECTORY_H_

#include <cstdint>
#include <vector>

namespace traj2hash::traj {

/// A 2-D location in local planar coordinates (metres). The paper works on
/// GPS (lat, lon); this library projects to a local tangent plane up front
/// (see io.h) so that grid cells and distances are metric, matching the
/// paper's "50m x 50m cells" preprocessing.
struct Point {
  double x = 0.0;  ///< metres east of the studied area's origin
  double y = 0.0;  ///< metres north of the studied area's origin

  friend bool operator==(const Point&, const Point&) = default;
};

/// Squared Euclidean distance between two points.
double SquaredDistance(const Point& a, const Point& b);

/// Euclidean distance between two points.
double Distance(const Point& a, const Point& b);

/// A GPS trajectory (Definition 1) with temporal information dropped, as in
/// the paper ("we only consider the spatial trajectory").
struct Trajectory {
  int64_t id = 0;
  std::vector<Point> points;

  int size() const { return static_cast<int>(points.size()); }
  bool empty() const { return points.empty(); }
};

/// Returns the reversed version `T_r` of a trajectory (Definition 4).
Trajectory Reversed(const Trajectory& t);

/// Total polyline length in metres.
double PathLength(const Trajectory& t);

/// Axis-aligned bounding box of a set of trajectories.
struct BoundingBox {
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;

  double Width() const { return max_x - min_x; }
  double Height() const { return max_y - min_y; }
  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
};

/// Computes the bounding box over all points of all trajectories.
/// Returns a zero box for empty input.
BoundingBox ComputeBoundingBox(const std::vector<Trajectory>& ts);

}  // namespace traj2hash::traj

#endif  // TRAJ2HASH_TRAJ_TRAJECTORY_H_
