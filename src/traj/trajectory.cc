#include "traj/trajectory.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace traj2hash::traj {

double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

Trajectory Reversed(const Trajectory& t) {
  Trajectory r;
  r.id = t.id;
  r.points.assign(t.points.rbegin(), t.points.rend());
  return r;
}

double PathLength(const Trajectory& t) {
  double total = 0.0;
  for (size_t i = 1; i < t.points.size(); ++i) {
    total += Distance(t.points[i - 1], t.points[i]);
  }
  return total;
}

BoundingBox ComputeBoundingBox(const std::vector<Trajectory>& ts) {
  BoundingBox box;
  bool first = true;
  for (const Trajectory& t : ts) {
    for (const Point& p : t.points) {
      if (first) {
        box = {p.x, p.y, p.x, p.y};
        first = false;
      } else {
        box.min_x = std::min(box.min_x, p.x);
        box.min_y = std::min(box.min_y, p.y);
        box.max_x = std::max(box.max_x, p.x);
        box.max_y = std::max(box.max_y, p.y);
      }
    }
  }
  return box;
}

}  // namespace traj2hash::traj
