#include "traj/normalizer.h"

#include <cmath>

namespace traj2hash::traj {

void Normalizer::Fit(const std::vector<Trajectory>& ts) {
  double sum_x = 0.0, sum_y = 0.0;
  int64_t n = 0;
  for (const Trajectory& t : ts) {
    for (const Point& p : t.points) {
      sum_x += p.x;
      sum_y += p.y;
      ++n;
    }
  }
  if (n == 0) return;
  mean_x_ = sum_x / static_cast<double>(n);
  mean_y_ = sum_y / static_cast<double>(n);

  double var_x = 0.0, var_y = 0.0;
  for (const Trajectory& t : ts) {
    for (const Point& p : t.points) {
      var_x += (p.x - mean_x_) * (p.x - mean_x_);
      var_y += (p.y - mean_y_) * (p.y - mean_y_);
    }
  }
  var_x /= static_cast<double>(n);
  var_y /= static_cast<double>(n);
  std_x_ = var_x > 0.0 ? std::sqrt(var_x) : 1.0;
  std_y_ = var_y > 0.0 ? std::sqrt(var_y) : 1.0;
}

Point Normalizer::Apply(const Point& p) const {
  return Point{(p.x - mean_x_) / std_x_, (p.y - mean_y_) / std_y_};
}

std::vector<Point> Normalizer::Apply(const Trajectory& t) const {
  std::vector<Point> out;
  out.reserve(t.points.size());
  for (const Point& p : t.points) out.push_back(Apply(p));
  return out;
}

}  // namespace traj2hash::traj
