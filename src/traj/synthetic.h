#ifndef TRAJ2HASH_TRAJ_SYNTHETIC_H_
#define TRAJ2HASH_TRAJ_SYNTHETIC_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "traj/trajectory.h"

namespace traj2hash::traj {

/// Configuration of the synthetic taxi-trip generator.
///
/// The paper evaluates on the Porto and ChengDu taxi datasets, which are not
/// redistributable here. This generator is the documented substitution
/// (DESIGN.md §2): it produces taxi-like trips — origin/destination pairs
/// drawn around a few urban hubs, smooth heading-momentum movement with
/// optional street-grid (axis-aligned) bias, and GPS jitter — inside a city-
/// sized bounding box. The quantities the experiments measure (hit ratios,
/// method orderings, timing curves) depend on these geometry statistics, not
/// on the identity of the city.
struct CityConfig {
  std::string name;
  double width_m = 15000.0;   ///< east-west extent of the studied space
  double height_m = 10000.0;  ///< north-south extent of the studied space
  int num_hubs = 6;           ///< attraction centres for trip endpoints
  double hub_spread_m = 900.0;  ///< Gaussian spread of endpoints around hubs
  int min_points = 10;        ///< paper filter: drop trajectories under 10
  int max_points = 48;        ///< cap for tractable DP distances
  double step_m = 120.0;      ///< mean distance between consecutive samples
  double heading_noise = 0.35;  ///< radians of per-step heading jitter
  double grid_bias = 0.0;     ///< probability of snapping a step to an axis
  double gps_noise_m = 6.0;   ///< measurement jitter added to every point

  /// Porto-like: irregular street network, mid-size European city.
  static CityConfig PortoLike();
  /// ChengDu-like: larger extent, strong street-grid bias.
  static CityConfig ChengduLike();
};

/// Generates `n` trajectories under `config`. All returned trajectories meet
/// the `min_points` filter (the generator retries short trips), so the output
/// is already "preprocessed" in the paper's sense. Ids are 0..n-1.
std::vector<Trajectory> GenerateTrips(const CityConfig& config, int n,
                                      Rng& rng);

/// Evenly downsamples a trajectory to at most `max_points` points, always
/// keeping the first and last point (they carry the Lemma 1 lower bound).
Trajectory Downsample(const Trajectory& t, int max_points);

}  // namespace traj2hash::traj

#endif  // TRAJ2HASH_TRAJ_SYNTHETIC_H_
