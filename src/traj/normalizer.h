#ifndef TRAJ2HASH_TRAJ_NORMALIZER_H_
#define TRAJ2HASH_TRAJ_NORMALIZER_H_

#include <vector>

#include "traj/trajectory.h"

namespace traj2hash::traj {

/// Gaussian (mean / standard deviation) normaliser for GPS coordinates, as
/// used by the attention-based trajectory encoder (Eq. 10: "Normalize is to
/// normalize the features via mean and standard variance").
class Normalizer {
 public:
  /// Identity transform until Fit() is called.
  Normalizer() = default;

  /// Estimates per-axis mean and standard deviation over all points of all
  /// trajectories. A degenerate axis (zero variance) keeps stddev = 1 so the
  /// transform stays finite.
  void Fit(const std::vector<Trajectory>& ts);

  /// Normalised coordinates of a point.
  Point Apply(const Point& p) const;

  /// Normalises every point of a trajectory.
  std::vector<Point> Apply(const Trajectory& t) const;

  double mean_x() const { return mean_x_; }
  double mean_y() const { return mean_y_; }
  double std_x() const { return std_x_; }
  double std_y() const { return std_y_; }

 private:
  double mean_x_ = 0.0, mean_y_ = 0.0;
  double std_x_ = 1.0, std_y_ = 1.0;
};

}  // namespace traj2hash::traj

#endif  // TRAJ2HASH_TRAJ_NORMALIZER_H_
