#include "traj/augment.h"

namespace traj2hash::traj {

Trajectory DropPoints(const Trajectory& t, double rate, Rng& rng) {
  Trajectory out;
  out.id = t.id;
  if (t.empty()) return out;
  out.points.push_back(t.points.front());
  for (size_t i = 1; i + 1 < t.points.size(); ++i) {
    if (!rng.Bernoulli(rate)) out.points.push_back(t.points[i]);
  }
  if (t.size() > 1) out.points.push_back(t.points.back());
  return out;
}

Trajectory Distort(const Trajectory& t, double stddev_m, Rng& rng) {
  Trajectory out;
  out.id = t.id;
  out.points.reserve(t.points.size());
  for (const Point& p : t.points) {
    out.points.push_back(
        Point{p.x + rng.Gaussian(stddev_m), p.y + rng.Gaussian(stddev_m)});
  }
  return out;
}

}  // namespace traj2hash::traj
