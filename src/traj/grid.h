#ifndef TRAJ2HASH_TRAJ_GRID_H_
#define TRAJ2HASH_TRAJ_GRID_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "traj/trajectory.h"

namespace traj2hash::traj {

/// Integer grid cell coordinate (column `x`, row `y`).
struct Cell {
  int x = 0;
  int y = 0;

  friend bool operator==(const Cell&, const Cell&) = default;
};

/// A grid trajectory (Definition 2): the sequence of cells visited by a GPS
/// trajectory under a uniform partition of the studied space.
struct GridTrajectory {
  int64_t id = 0;
  std::vector<Cell> cells;

  int size() const { return static_cast<int>(cells.size()); }
};

/// Uniform partition of the studied space into equal-size square cells.
///
/// The paper uses two grids: a fine 50 m grid feeding the light-weight grid
/// representation encoder, and a coarse 500 m grid for fast triplet
/// generation. Both are instances of this class.
class Grid {
 public:
  /// Builds a grid of `cell_size` metres covering `box` (which is padded by
  /// one cell on every side so boundary points fall strictly inside).
  /// Returns InvalidArgument for non-positive cell sizes or an empty box.
  static Result<Grid> Create(const BoundingBox& box, double cell_size);

  /// Cell containing `p`. Points outside the construction box are clamped to
  /// the border cells, so every point maps to a valid cell.
  Cell CellOf(const Point& p) const;

  /// Centre of a cell in metres.
  Point CellCenter(const Cell& c) const;

  /// Maps a GPS trajectory to its grid trajectory. When
  /// `dedup_consecutive` is true, runs of identical consecutive cells are
  /// collapsed to a single cell (used by the triplet generator and Fresh).
  GridTrajectory Map(const Trajectory& t, bool dedup_consecutive = false) const;

  /// Flat cell id `y * num_x + x`, unique within this grid.
  int64_t FlatId(const Cell& c) const;

  /// A hashable string key for a (deduped) grid trajectory; two GPS
  /// trajectories with equal keys share the same coarse cell sequence, which
  /// is the clustering criterion of the fast triplet generation (SIV-F).
  std::string SequenceKey(const GridTrajectory& g) const;

  int num_x() const { return num_x_; }
  int num_y() const { return num_y_; }
  double cell_size() const { return cell_size_; }

 private:
  Grid(double origin_x, double origin_y, double cell_size, int num_x,
       int num_y)
      : origin_x_(origin_x),
        origin_y_(origin_y),
        cell_size_(cell_size),
        num_x_(num_x),
        num_y_(num_y) {}

  double origin_x_;
  double origin_y_;
  double cell_size_;
  int num_x_;
  int num_y_;
};

}  // namespace traj2hash::traj

#endif  // TRAJ2HASH_TRAJ_GRID_H_
