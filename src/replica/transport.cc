#include "replica/transport.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/check.h"
#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/serialize.h"
#include "replica/replica.h"

namespace traj2hash::replica {
namespace {

using Clock = std::chrono::steady_clock;

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

double ElapsedMs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               since)
             .count() /
         1000.0;
}

/// kError frame payload: u8 status code | message bytes.
std::string EncodeErrorPayload(const Status& status) {
  std::string payload;
  AppendPod(payload, static_cast<uint8_t>(status.code()));
  payload.append(status.message());
  return payload;
}

Status DecodeErrorPayload(const std::string& payload) {
  if (payload.empty() ||
      static_cast<uint8_t>(payload[0]) >
          static_cast<uint8_t>(StatusCode::kDataLoss)) {
    return Status::Internal("malformed error frame from the ship server");
  }
  return Status(static_cast<StatusCode>(static_cast<uint8_t>(payload[0])),
                "ship server: " + payload.substr(1));
}

/// Collapses every transport-layer failure into kUnavailable so the retry
/// machinery treats it as "reconnect and try again" — a timed-out or
/// corrupted *wire* exchange never condemns the data the way an on-disk
/// kDataLoss does; the peer simply re-sends on the next connection.
Status Transient(const Status& status, const char* what) {
  return Status::Unavailable(std::string(what) + ": " + status.ToString());
}

}  // namespace

LocalTransport::LocalTransport(const Primary* primary) : primary_(primary) {
  T2H_CHECK(primary_ != nullptr);
}

Status LocalTransport::FetchBootstrapSnapshot(const std::string& local_path) {
  Status wrote = primary_->WriteBootstrapSnapshot(local_path);
  if (wrote.ok()) {
    counters_->snapshots_fetched.fetch_add(1, std::memory_order_acq_rel);
  }
  return wrote;
}

std::unique_ptr<WalSource> LocalTransport::MakeWalSource() {
  return std::make_unique<CursorSource>(primary_->wal_path());
}

// ---------------------------------------------------------------------------
// ShipServer
// ---------------------------------------------------------------------------

ShipServer::ShipServer(const Primary* primary, ShipServerOptions options)
    : primary_(primary), options_(options) {
  T2H_CHECK(primary_ != nullptr);
}

ShipServer::~ShipServer() { Stop(); }

Status ShipServer::Start() {
  Result<net::Listener> listener = net::Listener::Listen(0);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  port_ = listener_.port();
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void ShipServer::Stop() {
  stopping_.store(true, std::memory_order_release);
  listener_.Shutdown();
  Sever();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& thread : threads) thread.join();
  listener_.Close();
}

void ShipServer::Sever() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (net::Socket* socket : live_conns_) socket->Shutdown();
}

void ShipServer::AcceptLoop() {
  while (!Stopping()) {
    Result<net::Socket> accepted = listener_.Accept(100.0);
    // Timeouts, the injected accept fault and a shut-down listener all land
    // here; the loop just spins on to the next accept (or exits on Stop).
    if (!accepted.ok()) continue;
    if (refuse_.load(std::memory_order_acquire)) continue;  // partition drill
    accepted_.fetch_add(1, std::memory_order_acq_rel);
    auto socket = std::make_unique<net::Socket>(std::move(accepted).value());
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (Stopping()) break;
    const uint64_t conn_id = next_conn_id_++;
    live_conns_.push_back(socket.get());
    conn_threads_.emplace_back(
        [this, conn = std::move(socket), conn_id]() mutable {
          ServeConnection(std::move(conn), conn_id);
        });
  }
}

void ShipServer::ServeConnection(std::unique_ptr<net::Socket> socket,
                                 uint64_t conn_id) {
  net::FrameReader reader(socket.get());
  net::FrameType type;
  std::string payload;
  Status got = reader.ReadFrame(&type, &payload, options_.io_timeout_ms);
  if (got.ok() && type == net::FrameType::kHello) {
    PayloadReader hello(payload, 0);
    const uint64_t resume_after = hello.Read<uint64_t>();
    const uint8_t mode = hello.Read<uint8_t>();
    if (hello.at_end()) {
      if (mode == 1) {
        ServeSnapshot(*socket, conn_id);
      } else {
        ServeTail(*socket, reader, resume_after);
      }
    }
  }
  std::lock_guard<std::mutex> lock(conns_mu_);
  live_conns_.erase(
      std::find(live_conns_.begin(), live_conns_.end(), socket.get()));
}

void ShipServer::ServeSnapshot(net::Socket& socket, uint64_t conn_id) {
  // The snapshot is written server-side and streamed in chunks; overlap
  // with concurrent commits is harmless because the client replays the
  // whole log over it (idempotent apply).
  const std::string temp =
      primary_->wal_path() + ".shipsnap." + std::to_string(conn_id);
  Status wrote = primary_->WriteBootstrapSnapshot(temp);
  if (!wrote.ok()) {
    net::WriteFrame(socket, net::FrameType::kError, EncodeErrorPayload(wrote),
                    options_.io_timeout_ms);
    return;
  }
  Result<std::string> read = ReadFileToString(temp);
  std::remove(temp.c_str());
  if (!read.ok()) {
    net::WriteFrame(socket, net::FrameType::kError,
                    EncodeErrorPayload(read.status()), options_.io_timeout_ms);
    return;
  }
  const std::string& bytes = read.value();
  std::string begin;
  AppendPod(begin, static_cast<uint64_t>(bytes.size()));
  if (!net::WriteFrame(socket, net::FrameType::kSnapshotBegin, begin,
                       options_.io_timeout_ms)
           .ok()) {
    return;
  }
  for (size_t pos = 0; pos < bytes.size(); pos += net::kSnapshotChunkBytes) {
    const std::string chunk = bytes.substr(pos, net::kSnapshotChunkBytes);
    if (!net::WriteFrame(socket, net::FrameType::kSnapshotChunk, chunk,
                         options_.io_timeout_ms)
             .ok()) {
      return;
    }
  }
  std::string end;
  AppendPod(end, Crc32(bytes));
  if (net::WriteFrame(socket, net::FrameType::kSnapshotEnd, end,
                      options_.io_timeout_ms)
          .ok()) {
    snapshots_.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ShipServer::ServeTail(net::Socket& socket, net::FrameReader& reader,
                           uint64_t resume_after) {
  (void)reader;  // the tail stream is write-only after the handshake
  ingest::WalCursor cursor(primary_->wal_path());
  std::vector<ingest::WalRecord> batch;
  Status polled = cursor.Poll(&batch);
  if (polled.code() == StatusCode::kDataLoss) {
    // The primary's own log is corrupt: a permanent, data-condemning error
    // the client must not retry through.
    net::WriteFrame(socket, net::FrameType::kError, EncodeErrorPayload(polled),
                    options_.io_timeout_ms);
    return;
  }
  if (!polled.ok()) batch.clear();  // transient: start from an empty batch

  uint64_t sent_seq = resume_after;
  if (resume_after > 0) {
    // Does the log still cover resume_after + 1? With records in hand the
    // first one answers directly; an empty log covers the client only if
    // nothing was committed past its watermark (otherwise those records
    // were reset away with the last checkpoint).
    const bool covered = !batch.empty()
                             ? batch.front().seq <= resume_after + 1
                             : primary_->committed_seq() <= resume_after;
    if (!covered) {
      net::WriteFrame(socket, net::FrameType::kNeedBootstrap, std::string(),
                      options_.io_timeout_ms);
      return;
    }
  }
  if (!net::WriteFrame(socket, net::FrameType::kResume, std::string(),
                       options_.io_timeout_ms)
           .ok()) {
    return;
  }

  auto last_sent = Clock::now();
  while (!Stopping()) {
    for (const ingest::WalRecord& record : batch) {
      if (record.seq <= sent_seq) continue;  // below the client's watermark
      if (sent_seq == 0) {
        // A zero-watermark stream starts at the log head, wherever the last
        // checkpoint left it — the same semantics as a fresh file cursor.
        // The client's bootstrap snapshot covers the folded prefix; clients
        // with applied state detect any real hole themselves.
        sent_seq = record.seq - 1;
      }
      if (record.seq != sent_seq + 1) {
        // This connection's stream lost continuity (the primary reset its
        // log past what we already shipped). Tell the client to
        // re-handshake: the fresh connection decides resume vs re-bootstrap.
        net::WriteFrame(socket, net::FrameType::kLogReset, std::string(),
                        options_.io_timeout_ms);
        return;
      }
      const std::string payload = ingest::EncodeWalRecord(record);
      if (FaultInjector::Fire(faults::kNetDelayFrame)) {
        SleepMillis(options_.heartbeat_ms);
      }
      if (!net::WriteFrame(socket, net::FrameType::kRecord, payload,
                           options_.io_timeout_ms)
               .ok()) {
        return;
      }
      if (FaultInjector::Fire(faults::kNetDupFrame)) {
        if (!net::WriteFrame(socket, net::FrameType::kRecord, payload,
                             options_.io_timeout_ms)
                 .ok()) {
          return;
        }
      }
      sent_seq = record.seq;
      records_sent_.fetch_add(1, std::memory_order_acq_rel);
      last_sent = Clock::now();
    }
    batch.clear();
    polled = cursor.Poll(&batch);
    if (polled.code() == StatusCode::kFailedPrecondition) {
      // The primary reset its log; the cursor's own watermark keeps the
      // stream continuous when we were caught up, and the continuity check
      // above turns a real loss into kLogReset.
      cursor.Rewind();
      continue;
    }
    if (polled.code() == StatusCode::kDataLoss) {
      net::WriteFrame(socket, net::FrameType::kLogReset, std::string(),
                      options_.io_timeout_ms);
      return;
    }
    if (!polled.ok()) {
      SleepMillis(options_.idle_poll_ms);
      continue;
    }
    if (batch.empty()) {
      if (ElapsedMs(last_sent) >= options_.heartbeat_ms) {
        std::string heartbeat;
        AppendPod(heartbeat, primary_->committed_seq());
        if (!net::WriteFrame(socket, net::FrameType::kHeartbeat, heartbeat,
                             options_.io_timeout_ms)
                 .ok()) {
          return;
        }
        heartbeats_sent_.fetch_add(1, std::memory_order_acq_rel);
        last_sent = Clock::now();
      }
      SleepMillis(options_.idle_poll_ms);
    }
  }
}

// ---------------------------------------------------------------------------
// SocketTailer
// ---------------------------------------------------------------------------

SocketTailer::SocketTailer(std::string host, int port,
                           SocketTailerOptions options,
                           std::shared_ptr<TransportCounters> counters)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      counters_(counters != nullptr ? std::move(counters)
                                    : std::make_shared<TransportCounters>()),
      rng_(options.seed) {}

SocketTailer::~SocketTailer() { Disconnect(); }

void SocketTailer::Disconnect() {
  reader_.reset();
  socket_.Close();
  connected_ = false;
}

void SocketTailer::Rewind() {
  // The socket analogue of repositioning a file cursor: drop the stream and
  // re-handshake at the watermark; the server skips everything at-or-below
  // it, so nothing already returned is returned again.
  Disconnect();
}

Status SocketTailer::EnsureConnected() {
  if (connected_) return Status::Ok();
  return RetryWithBackoff(options_.reconnect, rng_, [&]() -> Status {
    Disconnect();
    Result<net::Socket> conn =
        net::Socket::Connect(host_, port_, options_.io_timeout_ms);
    if (!conn.ok()) return conn.status();
    socket_ = std::move(conn).value();
    reader_ = std::make_unique<net::FrameReader>(&socket_);
    std::string hello;
    AppendPod(hello, watermark_);
    AppendPod(hello, static_cast<uint8_t>(0));
    Status sent = net::WriteFrame(socket_, net::FrameType::kHello, hello,
                                  options_.io_timeout_ms);
    if (!sent.ok()) {
      Disconnect();
      return Transient(sent, "handshake send");
    }
    net::FrameType type;
    std::string payload;
    Status got = reader_->ReadFrame(&type, &payload, options_.io_timeout_ms);
    if (!got.ok()) {
      Disconnect();
      return Transient(got, "handshake reply");
    }
    if (type == net::FrameType::kResume) {
      connected_ = true;
      reset_reported_ = false;
      last_frame_ns_ = NowNs();
      if (ever_connected_) {
        counters_->reconnects.fetch_add(1, std::memory_order_acq_rel);
      }
      ever_connected_ = true;
      return Status::Ok();
    }
    Disconnect();
    if (type == net::FrameType::kNeedBootstrap) {
      // Not retryable: reconnecting cannot bring the reset records back.
      return Status::FailedPrecondition(
          "ship server's log no longer covers seq " +
          std::to_string(watermark_ + 1) +
          "; Rewind if caught up, re-bootstrap otherwise");
    }
    if (type == net::FrameType::kError) return DecodeErrorPayload(payload);
    return Status::Unavailable(std::string("unexpected handshake frame ") +
                               net::FrameTypeName(type));
  });
}

Status SocketTailer::Poll(std::vector<ingest::WalRecord>* out) {
  T2H_CHECK(out != nullptr);
  if (FaultInjector::Fire(faults::kReplicaShip)) {
    return Status::IoError("injected ship failure tailing " + host_ + ":" +
                           std::to_string(port_));
  }
  Status conn = EnsureConnected();
  if (!conn.ok()) {
    if (conn.code() == StatusCode::kFailedPrecondition) {
      if (reset_reported_) {
        // The Rewind the first report triggered did not help: records
        // between our watermark and the log's start are gone for good.
        return Status::DataLoss(
            "ship server's log was reset past seq " +
            std::to_string(watermark_) + "; re-bootstrap from a snapshot");
      }
      reset_reported_ = true;
    }
    return conn;
  }
  bool first = true;
  while (true) {
    net::FrameType type;
    std::string payload;
    // The first read waits for the stream to produce; later reads only
    // drain what is already in flight, so one Poll cannot hold the
    // replica's ship mutex hostage to a chatty server.
    const double wait = first ? options_.drain_ms : 0.2;
    first = false;
    Status got = reader_->ReadFrame(&type, &payload, wait);
    if (got.code() == StatusCode::kDeadlineExceeded) break;  // nothing more
    if (got.code() == StatusCode::kDataLoss) {
      // Wire corruption is not data loss: the log is intact server-side.
      // Drop the connection and resync from the watermark.
      counters_->corrupt_frames.fetch_add(1, std::memory_order_acq_rel);
      Disconnect();
      break;
    }
    if (!got.ok()) {
      Disconnect();  // EOF / reset mid-stream: reconnect next poll
      break;
    }
    last_frame_ns_ = NowNs();
    if (type == net::FrameType::kRecord) {
      ingest::WalRecord record;
      Status decoded = ingest::DecodeWalRecord(payload, &record);
      if (!decoded.ok()) {
        counters_->corrupt_frames.fetch_add(1, std::memory_order_acq_rel);
        Disconnect();
        break;
      }
      if (record.seq <= watermark_) {
        // Duplicate delivery (kNetDupFrame, or overlap after a resync).
        counters_->dup_records.fetch_add(1, std::memory_order_acq_rel);
        continue;
      }
      if (watermark_ != 0 && record.seq != watermark_ + 1) {
        Disconnect();
        return Status::DataLoss(
            "sequence gap on the ship stream (" + std::to_string(watermark_) +
            " -> " + std::to_string(record.seq) + ")");
      }
      watermark_ = record.seq;
      out->push_back(std::move(record));
    } else if (type == net::FrameType::kHeartbeat) {
      PayloadReader heartbeat(payload, 0);
      const uint64_t committed = heartbeat.Read<uint64_t>();
      if (heartbeat.at_end()) {
        committed_hint_.store(committed, std::memory_order_release);
      }
      counters_->heartbeats.fetch_add(1, std::memory_order_acq_rel);
    } else if (type == net::FrameType::kLogReset) {
      // The server-side stream lost continuity; re-handshake at the
      // watermark (the fresh connection decides resume vs re-bootstrap).
      Disconnect();
      break;
    } else if (type == net::FrameType::kError) {
      Status err = DecodeErrorPayload(payload);
      Disconnect();
      if (err.code() == StatusCode::kDataLoss) return err;
      break;
    }
    // Frames that make no sense mid-stream (handshake/snapshot types) are
    // ignored; the CRC proved them intact, they are just out of context.
  }
  if (connected_ &&
      NowNs() - last_frame_ns_ >
          static_cast<int64_t>(options_.peer_timeout_ms * 1e6)) {
    // Not even a heartbeat within the peer timeout: the server is wedged or
    // the path is black-holing. Tear down for a clean reconnect.
    counters_->peer_deaths.fetch_add(1, std::memory_order_acq_rel);
    Disconnect();
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// SocketTransport
// ---------------------------------------------------------------------------

SocketTransport::SocketTransport(std::string host, int port,
                                 SocketTailerOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      snapshot_rng_(options.seed + 1) {}

std::unique_ptr<WalSource> SocketTransport::MakeWalSource() {
  return std::make_unique<SocketTailer>(host_, port_, options_, counters_);
}

Status SocketTransport::FetchBootstrapSnapshot(const std::string& local_path) {
  Status fetched = RetryWithBackoff(
      options_.reconnect, snapshot_rng_, [&]() -> Status {
        Result<net::Socket> conn =
            net::Socket::Connect(host_, port_, options_.io_timeout_ms);
        if (!conn.ok()) return conn.status();
        net::Socket socket = std::move(conn).value();
        net::FrameReader reader(&socket);
        std::string hello;
        AppendPod(hello, static_cast<uint64_t>(0));
        AppendPod(hello, static_cast<uint8_t>(1));
        Status sent = net::WriteFrame(socket, net::FrameType::kHello, hello,
                                      options_.io_timeout_ms);
        if (!sent.ok()) return Transient(sent, "snapshot request");
        net::FrameType type;
        std::string payload;
        Status got = reader.ReadFrame(&type, &payload, options_.io_timeout_ms);
        if (!got.ok()) return Transient(got, "snapshot stream");
        if (type == net::FrameType::kError) return DecodeErrorPayload(payload);
        if (type != net::FrameType::kSnapshotBegin) {
          return Status::Unavailable(
              std::string("unexpected snapshot frame ") +
              net::FrameTypeName(type));
        }
        PayloadReader begin(payload, 0);
        const uint64_t total = begin.Read<uint64_t>();
        if (!begin.at_end()) {
          return Status::Unavailable("malformed snapshot-begin frame");
        }
        std::string bytes;
        bytes.reserve(total);
        while (true) {
          got = reader.ReadFrame(&type, &payload, options_.io_timeout_ms);
          if (!got.ok()) return Transient(got, "snapshot stream");
          if (type == net::FrameType::kSnapshotChunk) {
            bytes.append(payload);
            if (bytes.size() > total) {
              return Status::Unavailable("snapshot stream overran its "
                                         "declared size; refetching");
            }
            continue;
          }
          if (type == net::FrameType::kSnapshotEnd) break;
          if (type == net::FrameType::kError) {
            return DecodeErrorPayload(payload);
          }
          return Status::Unavailable(
              std::string("unexpected snapshot frame ") +
              net::FrameTypeName(type));
        }
        PayloadReader end(payload, 0);
        const uint32_t crc = end.Read<uint32_t>();
        if (!end.at_end() || bytes.size() != total || Crc32(bytes) != crc) {
          // A short or corrupted transfer; the file on the primary is fine,
          // so simply fetch again.
          return Status::Unavailable("snapshot failed end-to-end "
                                     "verification; refetching");
        }
        return AtomicWriteFile(local_path, bytes);
      });
  if (fetched.ok()) {
    counters_->snapshots_fetched.fetch_add(1, std::memory_order_acq_rel);
  }
  return fetched;
}

}  // namespace traj2hash::replica
