#include "replica/router.h"

#include <cstring>
#include <utility>

#include "common/retry.h"

namespace traj2hash::replica {

namespace {

/// Canonical cache key of one routed read: k + code width + code bytes.
std::string CodeKey(const search::Code& query, int k) {
  std::string key;
  key.reserve(query.words.size() * sizeof(uint64_t) + 8);
  serve::ResultCache::AppendCanonicalKey(static_cast<int32_t>(k), &key);
  serve::ResultCache::AppendCanonicalKey(static_cast<int32_t>(query.num_bits),
                                         &key);
  for (const uint64_t word : query.words) {
    char buf[sizeof(uint64_t)];
    std::memcpy(buf, &word, sizeof(word));
    key.append(buf, sizeof(buf));
  }
  return key;
}

}  // namespace

ReadRouter::ReadRouter(std::vector<Replica*> replicas,
                       const ReadRouterOptions& options)
    : replicas_(std::move(replicas)),
      options_(options),
      admission_(options.queue_depth, options.overload_policy) {
  routable_.reserve(replicas_.size());
  routed_.reserve(replicas_.size());
  fresh_.reserve(replicas_.size());
  for (size_t i = 0; i < replicas_.size(); ++i) {
    routable_.push_back(std::make_unique<std::atomic<bool>>(true));
    routed_.push_back(std::make_unique<std::atomic<int64_t>>(0));
    fresh_.push_back(std::make_unique<std::atomic<bool>>(true));
    if (options_.cache_entries > 0) {
      caches_.push_back(std::make_unique<serve::ResultCache>(
          options_.cache_entries, options_.cache_max_bytes));
    }
  }
}

bool ReadRouter::IsFresh(int i) const {
  if (options_.max_lag_records > 0 &&
      replicas_[i]->lag_records() > options_.max_lag_records) {
    return false;
  }
  if (options_.max_lag_ms > 0.0 &&
      replicas_[i]->lag_ms() > options_.max_lag_ms) {
    return false;
  }
  return true;
}

void ReadRouter::MarkDown(int i) {
  routable_[i]->store(false, std::memory_order_release);
}

void ReadRouter::MarkHealthy(int i) {
  routable_[i]->store(true, std::memory_order_release);
}

bool ReadRouter::IsRoutable(int i) const {
  return routable_[i]->load(std::memory_order_acquire);
}

int ReadRouter::PickReplica() {
  const int n = num_replicas();
  if (n == 0) return -1;
  // One round-robin ticket per call keeps concurrent queries spread even
  // when they all succeed on their first attempt.
  const uint64_t start = next_.fetch_add(1, std::memory_order_acq_rel);
  for (int step = 0; step < n; ++step) {
    const int i = static_cast<int>((start + step) % n);
    if (!routable_[i]->load(std::memory_order_acquire) ||
        replicas_[i]->state() != ReplicaState::kHealthy) {
      continue;
    }
    // Staleness bound: lag is re-read on every pick, so a replica demotes
    // itself the moment it falls behind and re-admits itself the moment it
    // catches up — no operator action, no separate health protocol. The
    // fresh_ flag only turns lag crossings into countable transitions.
    if (!IsFresh(i)) {
      if (fresh_[i]->exchange(false, std::memory_order_acq_rel)) {
        stale_demotions_.fetch_add(1, std::memory_order_acq_rel);
      }
      continue;
    }
    fresh_[i]->store(true, std::memory_order_release);
    return i;
  }
  return -1;
}

RoutedRead ReadRouter::Query(const search::Code& query, int k) {
  RoutedRead out;
  Status admitted = admission_.Admit();
  if (!admitted.ok()) {
    out.status = admitted;
    return out;
  }

  // Failover loop as a retry policy: each attempt picks the next healthy
  // replica. Backoff is zero — the alternative replica is ready *now*; the
  // retry machinery contributes only the attempt budget and the retryable /
  // permanent split (kUnavailable retries, kDataLoss etc. does not).
  RetryOptions retry;
  retry.max_attempts = options_.max_attempts;
  retry.initial_backoff_ms = 0.0;
  retry.max_backoff_ms = 0.0;
  retry.jitter = 0.0;  // consumes no Rng draws
  const auto no_sleep = [](double) {};

  // Zero jitter consumes no Rng draws, so a query-local Rng keeps Query
  // lock-free across threads without perturbing any shared stream.
  Rng rng(options_.seed);
  const std::string key =
      caches_.empty() ? std::string() : CodeKey(query, k);
  out.status = RetryWithBackoff(
      retry, rng,
      [&]() -> Status {
        ++out.attempts;
        const int i = PickReplica();
        if (i < 0) {
          return Status::Unavailable("no healthy replica in rotation");
        }
        // Cache hit at exactly the replica's applied seq: the seq names one
        // primary state, so the cached answer is what the replica would
        // return — served without touching it.
        serve::ResultCache* cache = caches_.empty() ? nullptr : caches_[i].get();
        const uint64_t seq_before =
            cache != nullptr ? replicas_[i]->applied_seq() : 0;
        if (cache != nullptr &&
            cache->Lookup(key, seq_before, &out.neighbors)) {
          out.replica = i;
          routed_[i]->fetch_add(1, std::memory_order_acq_rel);
          return Status::Ok();
        }
        Result<std::vector<search::Neighbor>> served =
            replicas_[i]->Query(query, k);
        if (!served.ok()) {
          // The replica lied about being healthy (it died between the
          // pick and the query, or an injected fault killed it): stop
          // routing to it and fail over.
          routable_[i]->store(false, std::memory_order_release);
          failovers_.fetch_add(1, std::memory_order_acq_rel);
          return served.status();
        }
        out.neighbors = std::move(served).value();
        out.replica = i;
        routed_[i]->fetch_add(1, std::memory_order_acq_rel);
        if (cache != nullptr) {
          // Stable-seq rule: cache only when no shipped record was applied
          // while the query ran, so the entry is a fact about seq_before.
          cache->Insert(key, seq_before, replicas_[i]->applied_seq(),
                        out.neighbors);
        }
        return Status::Ok();
      },
      no_sleep);
  admission_.Release();
  return out;
}

serve::ResultCache::Stats ReadRouter::cache_stats() const {
  serve::ResultCache::Stats sum;
  for (const auto& cache : caches_) {
    const serve::ResultCache::Stats s = cache->stats();
    sum.lookups += s.lookups;
    sum.hits += s.hits;
    sum.misses += s.misses;
    sum.stale += s.stale;
    sum.flight_waits += s.flight_waits;
    sum.flight_served += s.flight_served;
    sum.insertions += s.insertions;
    sum.evictions += s.evictions;
  }
  return sum;
}

size_t ReadRouter::cache_bytes() const {
  size_t sum = 0;
  for (const auto& cache : caches_) sum += cache->bytes();
  return sum;
}

Status ReadRouter::RollingRestart(int i, const std::string& snapshot_path) {
  MarkDown(i);  // from here on no new query is routed to `i`
  Replica* r = replicas_[i];
  Status checkpointed = r->Checkpoint(snapshot_path);
  if (!checkpointed.ok()) return checkpointed;
  Status restarted = r->Restart(snapshot_path);
  if (!restarted.ok()) return restarted;
  // Restart already caught up to the commit seq it observed; one more pass
  // closes the gap mutations opened while it was reloading.
  Status caught_up = r->CatchUp();
  if (!caught_up.ok()) return caught_up;
  MarkHealthy(i);
  return Status::Ok();
}

}  // namespace traj2hash::replica
