#ifndef TRAJ2HASH_REPLICA_REPLICA_H_
#define TRAJ2HASH_REPLICA_REPLICA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "ingest/wal.h"
#include "replica/transport.h"
#include "search/code.h"
#include "search/knn.h"
#include "search/strategy.h"
#include "serve/sharded_index.h"

namespace traj2hash::replica {

/// The primary role of a replicated shard group (DESIGN.md §13). A primary
/// is an ordinary WAL-attached serve::ShardedIndex — the same CRC-framed,
/// group-committed log that makes mutations durable (DESIGN.md §12) doubles
/// as the replication stream, so replication costs the write path nothing.
/// Replicas bootstrap from a snapshot the primary writes on demand and then
/// tail the log with an ingest::WalCursor.
///
/// The primary must not Checkpoint (which resets the WAL) while replicas
/// are lagging: a caught-up replica recovers by rewinding its cursor, but a
/// lagging one loses records and has to re-bootstrap. Rolling maintenance
/// therefore checkpoints replicas, not the primary.
class Primary {
 public:
  /// `index` must already have a WAL attached (Recover / AttachWal) at
  /// `wal_path`, and must outlive the primary and every replica.
  Primary(serve::ShardedIndex* index, std::string wal_path);

  /// Writes a bootstrap snapshot for a new replica. Safe while serving:
  /// replay idempotence makes the overlap between the snapshot contents and
  /// the log tail harmless — the replica replays the whole log over it and
  /// converges to the same state either way.
  Status WriteBootstrapSnapshot(const std::string& path) const {
    return index_->SaveSnapshot(path);
  }

  /// Highest sequence number committed (appended + fsynced + applied). A
  /// replica whose applied_seq reaches this value serves reads bit-identical
  /// to the primary's at that seq.
  uint64_t committed_seq() const { return index_->wal_last_seq(); }

  const std::string& wal_path() const { return wal_path_; }
  const serve::ShardedIndex& index() const { return *index_; }
  int num_bits() const { return index_->num_bits(); }

 private:
  serve::ShardedIndex* index_;
  std::string wal_path_;
};

/// Lifecycle of one replica.
enum class ReplicaState {
  kEmpty = 0,     ///< constructed, never bootstrapped
  kCatchingUp,    ///< has an index, applying the log tail; not serving
  kHealthy,       ///< caught up at least once; serving reads
  kDown,          ///< crashed / fault-killed / apply-diverged; not serving
};

/// Canonical lower-case name ("empty" / "catching-up" / "healthy" / "down").
const char* ReplicaStateName(ReplicaState state);

struct ReplicaOptions {
  /// Shard count of the replica's own index — independent of the primary's,
  /// because snapshots and WAL records carry global ids (id-routed placement
  /// keeps results bit-identical across any shard count).
  int num_shards = 4;
  search::SearchStrategy strategy = search::SearchStrategy::kMih;
  int mih_substrings = 0;
  /// Store the replica's embedding lattice as per-dim int8 rows
  /// (DESIGN.md §17; requires embedding_dim > 0). Independent of the
  /// primary's mode: WAL records and snapshots carry float embeddings (v3
  /// snapshots dequantize on load), and each Upsert re-quantizes under the
  /// replica's own per-shard params. Hamming reads keep the bit-identity
  /// contract above; re-rank reads are exact over the REPLICA's lattice,
  /// which is NOT claimed bit-identical to the primary's (different
  /// calibration histories may yield different per-shard params).
  bool quantize = false;
  int embedding_dim = 0;
};

/// The replica role: a read-only copy of the primary's database that
/// bootstraps from a snapshot, tails the primary's WAL through a WalSource
/// (a local file cursor or a socket tailer — replica/transport.h), applies
/// records idempotently via ShardedIndex::ApplyShipped, and serves top-k
/// reads with a tracked apply lag.
///
/// Correctness contract: once `applied_seq() >= S` for a committed seq S,
/// the replica's QueryTopK results are bit-identical to the primary's at S
/// — replay order equals commit order, apply is idempotent, and id-routed
/// placement makes results shard-count-independent.
///
/// Concurrency: `Query` may be called from any number of router threads
/// concurrently with one ship loop calling `PollApplyOnce` / `CatchUp`, and
/// with `Checkpoint` / `Restart` / `Bootstrap` from a maintenance thread.
/// The index pointer is swapped atomically on restart; in-flight queries
/// keep the old epoch alive through a shared_ptr.
class Replica {
 public:
  /// In-process transport (LocalTransport): snapshots via the primary
  /// object, records via a file-tailing cursor.
  Replica(const Primary* primary, const ReplicaOptions& options,
          std::string name);

  /// Explicit transport, e.g. a SocketTransport speaking the framed TCP
  /// protocol to a ShipServer (DESIGN.md §16). `primary` is still consulted
  /// for seq accounting (committed_seq) — the data path is the transport.
  Replica(const Primary* primary, std::unique_ptr<ShipTransport> transport,
          const ReplicaOptions& options, std::string name);

  /// Cold bootstrap: asks the primary for a fresh snapshot at
  /// `snapshot_path`, loads it into a new index, opens a cursor at the
  /// start of the log and catches up. Ends kHealthy on success. Also the
  /// recovery path after SimulateCrash or a kDown transition.
  Status Bootstrap(const std::string& snapshot_path);

  /// One ship round: polls the cursor and applies every newly durable
  /// record. Returns the number applied. kFailedPrecondition when the
  /// replica is down or was never bootstrapped; a cursor kFailedPrecondition
  /// (log reset) is absorbed by a Rewind when the replica was caught up.
  /// Honours faults::kReplicaApply (the replica marks itself kDown).
  Result<int> PollApplyOnce();

  /// Polls until caught up with the primary's commit seq observed at entry
  /// (a moving primary keeps the *continuous* ship loop busy; this just
  /// closes the gap that existed when it was called). kDeadlineExceeded if
  /// the log stops making progress toward that seq.
  Status CatchUp();

  /// Serves one top-k read over the replica's current state. kUnavailable
  /// unless kHealthy. Honours faults::kReplicaDown: an injected hit makes
  /// the replica report kUnavailable and go kDown, as a process death would.
  Result<std::vector<search::Neighbor>> Query(const search::Code& query,
                                              int k);

  /// Replica-side snapshot of the applied state (crash-safe write). The
  /// input to a rolling Checkpoint+restart: Restart(path) reloads it and
  /// replays the log tail over it instead of re-shipping the whole database
  /// from the primary.
  Status Checkpoint(const std::string& path) const;

  /// Rebuilds from a replica-side checkpoint (or from scratch when the file
  /// is missing), rewinds the cursor to the start of the log, and catches
  /// up. Ends kHealthy on success. In-flight queries against the old state
  /// finish safely on the old index epoch.
  Status Restart(const std::string& snapshot_path);

  /// Drops the in-memory state and goes kDown, as an abrupt process death
  /// would. Queries fail with kUnavailable until Bootstrap/Restart.
  void SimulateCrash();

  ReplicaState state() const {
    return static_cast<ReplicaState>(state_.load(std::memory_order_acquire));
  }
  /// Last WAL seq applied to the local index (0 before bootstrap).
  uint64_t applied_seq() const {
    return applied_seq_.load(std::memory_order_acquire);
  }
  /// Commit seq on the primary minus applied_seq — records not yet applied
  /// here. 0 when caught up.
  int64_t lag_records() const;
  /// Milliseconds since this replica last observed itself fully caught up;
  /// 0 while caught up (and before the first bootstrap).
  double lag_ms() const;
  /// Reads served (successful Query calls) since construction.
  int64_t queries_served() const {
    return queries_.load(std::memory_order_acquire);
  }
  const std::string& name() const { return name_; }
  const Primary* primary() const { return primary_; }
  /// The transport this replica ships over ("inproc" / "socket") and its
  /// monotone health counters (reconnects, heartbeats, duplicate frames…).
  const ShipTransport& transport() const { return *transport_; }

  /// The replica's current index epoch (tests; may be null before
  /// bootstrap). Holding the returned pointer keeps the epoch alive across
  /// a concurrent Restart.
  std::shared_ptr<const serve::ShardedIndex> index() const;

 private:
  std::shared_ptr<serve::ShardedIndex> MakeIndex() const;
  void SetState(ReplicaState state) {
    state_.store(static_cast<int>(state), std::memory_order_release);
  }
  /// Bodies of PollApplyOnce / CatchUp; caller holds ship_mu_.
  Result<int> PollApplyLocked();
  Status CatchUpLocked();
  /// Applies `records` in order; updates applied_seq_ and the caught-up
  /// clock. Caller holds ship_mu_.
  Status ApplyLocked(const std::vector<ingest::WalRecord>& records);
  void NoteCaughtUpIfCurrent();

  const Primary* primary_;
  const ReplicaOptions options_;
  const std::string name_;

  /// Guards the index_ pointer swap only — queries copy the shared_ptr
  /// under it and then run lock-free on their epoch.
  mutable std::mutex index_mu_;
  std::shared_ptr<serve::ShardedIndex> index_;

  /// How this replica reaches its primary: snapshot fetches + WalSource
  /// construction. Owned; outlives source_ (declared before it).
  std::unique_ptr<ShipTransport> transport_;

  /// Serialises the ship/maintenance side: Bootstrap, PollApplyOnce,
  /// CatchUp, Restart. Never held while executing a query.
  std::mutex ship_mu_;
  std::unique_ptr<WalSource> source_;

  std::atomic<int> state_{static_cast<int>(ReplicaState::kEmpty)};
  std::atomic<uint64_t> applied_seq_{0};
  /// steady_clock nanos of the last moment applied_seq_ covered the
  /// primary's committed seq; 0 = never.
  std::atomic<int64_t> caught_up_ns_{0};
  std::atomic<int64_t> queries_{0};
};

}  // namespace traj2hash::replica

#endif  // TRAJ2HASH_REPLICA_REPLICA_H_
