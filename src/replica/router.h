#ifndef TRAJ2HASH_REPLICA_ROUTER_H_
#define TRAJ2HASH_REPLICA_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "replica/replica.h"
#include "search/knn.h"
#include "serve/admission.h"
#include "serve/result_cache.h"

namespace traj2hash::replica {

struct ReadRouterOptions {
  /// Total routing attempts per query (first try + failovers). Each attempt
  /// picks the next healthy replica, so with R replicas and max_attempts >=
  /// R a query only fails when every replica is unhealthy.
  int max_attempts = 3;
  /// Router-level admission control, pooled across all replicas: at most
  /// this many queries in flight through the router at once. 0 = unbounded.
  int queue_depth = 0;
  serve::OverloadPolicy overload_policy = serve::OverloadPolicy::kReject;
  /// Seed for the retry-backoff jitter Rng (deterministic failover
  /// schedules in tests).
  uint64_t seed = 42;
  /// Per-replica result-cache capacity (entries); 0 disables caching.
  /// Each replica gets its own cache keyed by its applied seq — the seq
  /// names one exact primary state, so an entry at seq S is bit-identical
  /// to querying any replica applied to S (DESIGN.md §15).
  int cache_entries = 0;
  /// Per-replica result-cache byte budget (approximate, entry-size
  /// accounted); 0 = unbounded. Applies on top of cache_entries.
  size_t cache_max_bytes = 0;
  /// Staleness bound (DESIGN.md §16): a replica whose apply lag exceeds
  /// either limit is demoted from the routable set — reads never observe a
  /// state more than this far behind the primary — and re-admitted
  /// automatically once it catches back up. 0 = unbounded (lag never
  /// demotes). With every replica over the bound, queries fail
  /// kUnavailable: the bound is a promise, not a preference.
  int64_t max_lag_records = 0;
  double max_lag_ms = 0.0;
};

/// Outcome of one routed read.
struct RoutedRead {
  std::vector<search::Neighbor> neighbors;
  Status status;      ///< OK exactly when a replica served the query
  int replica = -1;   ///< index of the replica that answered (-1 = none)
  int attempts = 0;   ///< routing attempts consumed (1 = first try worked)
};

/// Health-aware read router over a group of replicas (DESIGN.md §13).
///
/// Queries spread round-robin across replicas that are router-routable,
/// kHealthy and inside the configured staleness bound (max_lag_records /
/// max_lag_ms — a lagging replica is demoted from the routable set and
/// re-admits itself by catching up). A replica that errors or reports
/// kUnavailable is marked unroutable on the spot and the query retries on
/// the survivors
/// (common/retry.h with zero backoff — the next replica is immediately
/// available, so waiting would only add latency). The router never invents
/// results: a query either returns some healthy replica's answer — which the
/// replication contract makes bit-identical to the primary's at the
/// replica's applied seq — or an explicit error after every attempt failed.
///
/// Zero-downtime maintenance: `RollingRestart` takes one replica out of
/// rotation, checkpoints + restarts + catches it up, and only then routes to
/// it again. Because unroutable replicas are never picked, concurrent
/// queries fail over instead of dropping; with >= 2 replicas a rolling
/// restart drops zero queries.
///
/// Thread-safe: Query may be called from any number of threads concurrently
/// with MarkDown/MarkHealthy/RollingRestart.
class ReadRouter {
 public:
  /// `replicas` must outlive the router. Replicas join routable; a replica
  /// that is not yet kHealthy is skipped by routing until it is.
  ReadRouter(std::vector<Replica*> replicas, const ReadRouterOptions& options);

  /// Routes one top-k read. kUnavailable when admission sheds it or no
  /// healthy replica remains within the attempt budget.
  RoutedRead Query(const search::Code& query, int k);

  /// Takes replica `i` out of / back into rotation. MarkHealthy only
  /// re-admits it to routing — the replica itself must also be kHealthy
  /// before it receives queries.
  void MarkDown(int i);
  void MarkHealthy(int i);
  bool IsRoutable(int i) const;

  /// Zero-downtime maintenance of replica `i`: unroute -> checkpoint its
  /// applied state to `snapshot_path` -> restart from that checkpoint ->
  /// catch up to the live log -> route again. Concurrent queries keep being
  /// served by the other replicas throughout. On failure the replica stays
  /// unroutable and the error is returned.
  Status RollingRestart(int i, const std::string& snapshot_path);

  int num_replicas() const { return static_cast<int>(replicas_.size()); }
  Replica* replica(int i) { return replicas_[i]; }
  /// Queries answered by replica `i` via this router.
  int64_t routed_to(int i) const {
    return routed_[i]->load(std::memory_order_acquire);
  }
  /// Mid-query failovers: attempts that hit a dead replica and moved on.
  int64_t failovers() const {
    return failovers_.load(std::memory_order_acquire);
  }
  /// Fresh-to-stale transitions: times a replica crossed the staleness
  /// bound and was demoted from routing (0 when no bound is set).
  int64_t stale_demotions() const {
    return stale_demotions_.load(std::memory_order_acquire);
  }
  /// True when replica `i` is within the staleness bound (always true with
  /// no bound configured).
  bool IsFresh(int i) const;
  /// Queries shed by router admission control.
  int64_t shed_count() const { return admission_.shed_count(); }

  /// Result-cache counters summed over the per-replica caches (all zero
  /// when `cache_entries` is 0).
  serve::ResultCache::Stats cache_stats() const;
  /// Approximate bytes currently held across the per-replica caches.
  size_t cache_bytes() const;

 private:
  /// Next routable + healthy replica at-or-after the round-robin cursor;
  /// -1 when none.
  int PickReplica();

  std::vector<Replica*> replicas_;
  const ReadRouterOptions options_;
  serve::AdmissionController admission_;

  /// Per-replica routable flag (router-side health view). Heap-allocated
  /// atomics so the vector never moves them.
  std::vector<std::unique_ptr<std::atomic<bool>>> routable_;
  std::vector<std::unique_ptr<std::atomic<int64_t>>> routed_;
  /// Per-replica freshness view (inside the staleness bound); flips as
  /// PickReplica observes lag crossing the bound, so demotions count
  /// transitions, not skipped picks.
  std::vector<std::unique_ptr<std::atomic<bool>>> fresh_;
  /// Per-replica result caches (empty when caching is disabled). Keyed by
  /// (k, num_bits, code words); epoch = the replica's applied seq.
  std::vector<std::unique_ptr<serve::ResultCache>> caches_;
  std::atomic<uint64_t> next_{0};
  std::atomic<int64_t> failovers_{0};
  std::atomic<int64_t> stale_demotions_{0};
};

}  // namespace traj2hash::replica

#endif  // TRAJ2HASH_REPLICA_ROUTER_H_
