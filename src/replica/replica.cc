#include "replica/replica.h"

#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"

namespace traj2hash::replica {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Primary::Primary(serve::ShardedIndex* index, std::string wal_path)
    : index_(index), wal_path_(std::move(wal_path)) {
  T2H_CHECK(index_ != nullptr);
  T2H_CHECK(index_->wal_attached());
}

const char* ReplicaStateName(ReplicaState state) {
  switch (state) {
    case ReplicaState::kEmpty:
      return "empty";
    case ReplicaState::kCatchingUp:
      return "catching-up";
    case ReplicaState::kHealthy:
      return "healthy";
    case ReplicaState::kDown:
      return "down";
  }
  return "unknown";
}

Replica::Replica(const Primary* primary, const ReplicaOptions& options,
                 std::string name)
    : Replica(primary, std::make_unique<LocalTransport>(primary), options,
              std::move(name)) {}

Replica::Replica(const Primary* primary,
                 std::unique_ptr<ShipTransport> transport,
                 const ReplicaOptions& options, std::string name)
    : primary_(primary),
      options_(options),
      name_(std::move(name)),
      transport_(std::move(transport)) {
  T2H_CHECK(primary_ != nullptr);
  T2H_CHECK(transport_ != nullptr);
}

std::shared_ptr<serve::ShardedIndex> Replica::MakeIndex() const {
  return std::make_shared<serve::ShardedIndex>(
      options_.num_shards, primary_->num_bits(), options_.strategy,
      options_.mih_substrings, /*compact_min_ops=*/64, /*compact_ratio=*/0.25,
      options_.quantize, options_.embedding_dim);
}

std::shared_ptr<const serve::ShardedIndex> Replica::index() const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return index_;
}

Status Replica::Bootstrap(const std::string& snapshot_path) {
  std::lock_guard<std::mutex> ship(ship_mu_);
  Status wrote = transport_->FetchBootstrapSnapshot(snapshot_path);
  if (!wrote.ok()) return wrote;

  auto fresh = MakeIndex();
  Status loaded = fresh->LoadSnapshot(snapshot_path);
  if (!loaded.ok()) return loaded;

  // The snapshot reflects some log prefix; replaying the whole log over it
  // converges because apply is idempotent and last-op-per-id wins. A fresh
  // source (seq watermark 0) therefore starts at the front of the log.
  source_ = transport_->MakeWalSource();
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    index_ = std::move(fresh);
  }
  applied_seq_.store(0, std::memory_order_release);
  SetState(ReplicaState::kCatchingUp);
  return CatchUpLocked();
}

Status Replica::Restart(const std::string& snapshot_path) {
  std::lock_guard<std::mutex> ship(ship_mu_);
  auto fresh = MakeIndex();
  if (FileExists(snapshot_path)) {
    Status loaded = fresh->LoadSnapshot(snapshot_path);
    if (!loaded.ok()) return loaded;
  }
  source_ = transport_->MakeWalSource();
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    index_ = std::move(fresh);
  }
  applied_seq_.store(0, std::memory_order_release);
  SetState(ReplicaState::kCatchingUp);
  return CatchUpLocked();
}

void Replica::SimulateCrash() {
  SetState(ReplicaState::kDown);
  std::lock_guard<std::mutex> ship(ship_mu_);
  source_.reset();
  std::lock_guard<std::mutex> lock(index_mu_);
  index_.reset();
  applied_seq_.store(0, std::memory_order_release);
}

Status Replica::Checkpoint(const std::string& path) const {
  auto epoch = index();
  if (epoch == nullptr) {
    return Status::FailedPrecondition("checkpoint of a replica with no state");
  }
  return epoch->SaveSnapshot(path);
}

Result<int> Replica::PollApplyOnce() {
  std::lock_guard<std::mutex> ship(ship_mu_);
  return PollApplyLocked();
}

Result<int> Replica::PollApplyLocked() {
  if (state() == ReplicaState::kDown || source_ == nullptr) {
    return Status::FailedPrecondition("replica " + name_ +
                                      " is down; bootstrap or restart first");
  }
  std::vector<ingest::WalRecord> records;
  Status polled = source_->Poll(&records);
  if (polled.code() == StatusCode::kFailedPrecondition) {
    // The primary reset its log (checkpoint). If we had applied everything
    // up to some committed seq, the reset log holds only records above our
    // watermark — rewinding and re-polling is lossless. If we were lagging,
    // records we never saw are gone: re-bootstrap.
    source_->Rewind();
    records.clear();
    polled = source_->Poll(&records);
    if (polled.ok() && !records.empty() &&
        records.front().seq > applied_seq_.load(std::memory_order_acquire) + 1) {
      SetState(ReplicaState::kDown);
      return Status::DataLoss(
          "replica " + name_ +
          ": primary log was reset past our apply point; re-bootstrap");
    }
  }
  if (!polled.ok()) {
    if (polled.code() == StatusCode::kDataLoss) SetState(ReplicaState::kDown);
    return polled;
  }
  Status applied = ApplyLocked(records);
  if (!applied.ok()) return applied;
  NoteCaughtUpIfCurrent();
  return static_cast<int>(records.size());
}

Status Replica::ApplyLocked(const std::vector<ingest::WalRecord>& records) {
  std::shared_ptr<serve::ShardedIndex> epoch;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    epoch = index_;
  }
  T2H_CHECK(epoch != nullptr);
  for (const ingest::WalRecord& record : records) {
    if (FaultInjector::Fire(faults::kReplicaApply)) {
      SetState(ReplicaState::kDown);
      return Status::Internal("replica " + name_ +
                              ": injected apply failure; replica is down");
    }
    Status applied = epoch->ApplyShipped(record);
    if (!applied.ok()) {
      // A record the primary committed but we cannot apply means our state
      // diverged from the log; serving reads would silently return stale or
      // wrong results, so go down instead.
      SetState(ReplicaState::kDown);
      return applied;
    }
    applied_seq_.store(record.seq, std::memory_order_release);
  }
  return Status::Ok();
}

void Replica::NoteCaughtUpIfCurrent() {
  if (applied_seq_.load(std::memory_order_acquire) >=
      primary_->committed_seq()) {
    caught_up_ns_.store(NowNs(), std::memory_order_release);
    if (state() == ReplicaState::kCatchingUp) {
      SetState(ReplicaState::kHealthy);
    }
  }
}

Status Replica::CatchUp() {
  std::lock_guard<std::mutex> ship(ship_mu_);
  return CatchUpLocked();
}

Status Replica::CatchUpLocked() {
  // Chase the commit seq observed *at entry*; the continuous ship loop is
  // responsible for a primary that keeps moving. The idle-round guard turns
  // "the log stopped producing our target" (poisoned WAL, truncated file)
  // into an error instead of a spin.
  const uint64_t target = primary_->committed_seq();
  int idle_rounds = 0;
  while (applied_seq_.load(std::memory_order_acquire) < target) {
    Result<int> round = PollApplyLocked();
    if (!round.ok()) return round.status();
    if (round.value() == 0) {
      if (++idle_rounds > 3) {
        return Status::DeadlineExceeded(
            "replica " + name_ + ": log stopped short of seq " +
            std::to_string(target) + " at " +
            std::to_string(applied_seq_.load(std::memory_order_acquire)));
      }
    } else {
      idle_rounds = 0;
    }
  }
  NoteCaughtUpIfCurrent();
  if (state() == ReplicaState::kCatchingUp) SetState(ReplicaState::kHealthy);
  return Status::Ok();
}

Result<std::vector<search::Neighbor>> Replica::Query(const search::Code& query,
                                                     int k) {
  if (FaultInjector::Fire(faults::kReplicaDown)) {
    SetState(ReplicaState::kDown);
    return Status::Unavailable("replica " + name_ + " died (injected)");
  }
  if (state() != ReplicaState::kHealthy) {
    return Status::Unavailable("replica " + name_ + " is " +
                               std::string(ReplicaStateName(state())));
  }
  auto epoch = index();
  if (epoch == nullptr) {
    return Status::Unavailable("replica " + name_ + " has no state");
  }
  std::vector<search::Neighbor> neighbors = epoch->QueryTopK(query, k);
  queries_.fetch_add(1, std::memory_order_acq_rel);
  return neighbors;
}

int64_t Replica::lag_records() const {
  const int64_t committed =
      static_cast<int64_t>(primary_->committed_seq());
  const int64_t applied =
      static_cast<int64_t>(applied_seq_.load(std::memory_order_acquire));
  return committed > applied ? committed - applied : 0;
}

double Replica::lag_ms() const {
  if (lag_records() == 0) return 0.0;
  const int64_t since = caught_up_ns_.load(std::memory_order_acquire);
  if (since == 0) return 0.0;  // never caught up yet: lag_records tells the story
  return static_cast<double>(NowNs() - since) / 1e6;
}

}  // namespace traj2hash::replica
