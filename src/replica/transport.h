#ifndef TRAJ2HASH_REPLICA_TRANSPORT_H_
#define TRAJ2HASH_REPLICA_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/retry.h"
#include "common/rng.h"
#include "common/status.h"
#include "ingest/wal.h"
#include "net/framing.h"
#include "net/socket.h"

namespace traj2hash::replica {

class Primary;

/// The WalCursor-shaped seam between a Replica and wherever its records
/// come from (DESIGN.md §16). Replica's poll/apply state machine is written
/// against exactly the ingest::WalCursor contract; this interface restates
/// it so the same code tails a local file (CursorSource) or a TCP stream
/// (SocketTailer) without changing:
///   - Poll appends newly durable records in sequence order; nothing new is
///     not an error.
///   - Records at-or-below the seq watermark are skipped (idempotent
///     re-delivery); a gap above it is kDataLoss.
///   - kFailedPrecondition means "the log was reset under you": Rewind and
///     re-poll if caught up, re-bootstrap otherwise.
class WalSource {
 public:
  virtual ~WalSource() = default;
  virtual Status Poll(std::vector<ingest::WalRecord>* out) = 0;
  /// Repositions at the start of the stream, keeping the seq watermark.
  virtual void Rewind() = 0;
  /// Last sequence number returned by Poll (0 before any).
  virtual uint64_t last_seq() const = 0;
};

/// In-process source: a thin adapter over ingest::WalCursor tailing the
/// primary's log file directly (the PR-6 transport).
class CursorSource final : public WalSource {
 public:
  explicit CursorSource(std::string wal_path) : cursor_(std::move(wal_path)) {}
  Status Poll(std::vector<ingest::WalRecord>* out) override {
    return cursor_.Poll(out);
  }
  void Rewind() override { cursor_.Rewind(); }
  uint64_t last_seq() const override { return cursor_.last_seq(); }

 private:
  ingest::WalCursor cursor_;
};

/// Monotone health counters a transport accumulates across source
/// re-creations (Bootstrap / Restart build a fresh WalSource each time, but
/// reconnect totals must survive that). Shared between a SocketTransport
/// and every tailer it makes.
struct TransportCounters {
  /// Successful re-handshakes after a lost connection (the first connect
  /// does not count).
  std::atomic<int64_t> reconnects{0};
  std::atomic<int64_t> heartbeats{0};
  /// Frames dropped for a CRC mismatch / malformed payload; each one also
  /// forces a disconnect + resync.
  std::atomic<int64_t> corrupt_frames{0};
  /// Records skipped by the seq watermark (duplicate delivery).
  std::atomic<int64_t> dup_records{0};
  /// Connections declared dead because no frame (not even a heartbeat)
  /// arrived within the peer timeout.
  std::atomic<int64_t> peer_deaths{0};
  /// Bootstrap snapshots fetched over this transport.
  std::atomic<int64_t> snapshots_fetched{0};
};

/// How a Replica reaches its primary: a bootstrap-snapshot fetch plus a
/// WalSource factory. LocalTransport is the in-process wiring; a
/// SocketTransport speaks the framed TCP protocol to a ShipServer.
class ShipTransport {
 public:
  ShipTransport() : counters_(std::make_shared<TransportCounters>()) {}
  virtual ~ShipTransport() = default;

  /// Materialises a bootstrap snapshot of the primary's state at
  /// `local_path` (crash-safe write).
  virtual Status FetchBootstrapSnapshot(const std::string& local_path) = 0;
  /// Fresh record source positioned at the start of the log with a zero seq
  /// watermark (the bootstrap/restart contract: replaying the whole log
  /// over a snapshot is idempotent).
  virtual std::unique_ptr<WalSource> MakeWalSource() = 0;
  /// Canonical transport name ("inproc" / "socket") for stats.
  virtual const char* name() const = 0;

  const TransportCounters& counters() const { return *counters_; }

 protected:
  std::shared_ptr<TransportCounters> counters_;
};

/// The PR-6 in-process transport: snapshots via the primary object, records
/// via a file-tailing cursor. Counters stay zero — there is no network to
/// fail.
class LocalTransport final : public ShipTransport {
 public:
  /// `primary` must outlive this transport.
  explicit LocalTransport(const Primary* primary);
  Status FetchBootstrapSnapshot(const std::string& local_path) override;
  std::unique_ptr<WalSource> MakeWalSource() override;
  const char* name() const override { return "inproc"; }

 private:
  const Primary* primary_;
};

struct ShipServerOptions {
  /// Keepalive cadence: a heartbeat frame (carrying the committed seq) goes
  /// out whenever the record stream has been idle this long.
  double heartbeat_ms = 20.0;
  /// Per-operation send/recv deadline.
  double io_timeout_ms = 2000.0;
  /// Sleep between idle log polls on a streaming connection.
  double idle_poll_ms = 1.0;
};

/// Primary-side shipping endpoint: accepts TCP connections on a loopback
/// port and serves the DESIGN.md §16 protocol — a handshake that resumes
/// the record stream at the client's applied seq (or tells it to
/// re-bootstrap when the log no longer covers that point), chunked snapshot
/// fetches, CRC-framed records, and heartbeats on idle.
///
/// Chaos controls for drills and tests: `Sever` shuts down every live
/// connection (clients see EOF mid-stream and must reconnect);
/// `set_refuse_connections(true)` drops new connections at accept, which
/// together simulate a network partition. Honours faults::kNetAccept /
/// kNetSend / kNetRecv via the socket layer and faults::kNetDupFrame /
/// kNetDelayFrame on the record stream.
class ShipServer {
 public:
  /// `primary` must outlive the server.
  explicit ShipServer(const Primary* primary, ShipServerOptions options = {});
  ~ShipServer();

  /// Binds an ephemeral loopback port and starts the accept loop.
  Status Start();
  void Stop();

  int port() const { return port_; }

  /// Severs every live connection (partition drill). New connections are
  /// still accepted unless refusal is also on.
  void Sever();
  void set_refuse_connections(bool refuse) {
    refuse_.store(refuse, std::memory_order_release);
  }

  int64_t connections_accepted() const {
    return accepted_.load(std::memory_order_acquire);
  }
  int64_t snapshots_served() const {
    return snapshots_.load(std::memory_order_acquire);
  }
  int64_t records_sent() const {
    return records_sent_.load(std::memory_order_acquire);
  }
  int64_t heartbeats_sent() const {
    return heartbeats_sent_.load(std::memory_order_acquire);
  }

 private:
  void AcceptLoop();
  void ServeConnection(std::unique_ptr<net::Socket> socket, uint64_t conn_id);
  void ServeSnapshot(net::Socket& socket, uint64_t conn_id);
  void ServeTail(net::Socket& socket, net::FrameReader& reader,
                 uint64_t resume_after);
  /// True once Stop was requested or the connection was severed.
  bool Stopping() const { return stopping_.load(std::memory_order_acquire); }

  const Primary* primary_;
  const ShipServerOptions options_;
  net::Listener listener_;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> refuse_{false};

  std::mutex conns_mu_;
  std::vector<net::Socket*> live_conns_;
  std::vector<std::thread> conn_threads_;
  uint64_t next_conn_id_ = 0;

  std::atomic<int64_t> accepted_{0};
  std::atomic<int64_t> snapshots_{0};
  std::atomic<int64_t> records_sent_{0};
  std::atomic<int64_t> heartbeats_sent_{0};
};

struct SocketTailerOptions {
  /// Reconnect schedule: jittered exponential backoff (common/retry.h),
  /// deterministic under `seed`. One Poll spends at most this attempt
  /// budget before reporting kUnavailable and letting the ship loop retry.
  RetryOptions reconnect{.max_attempts = 4,
                         .initial_backoff_ms = 2.0,
                         .multiplier = 2.0,
                         .max_backoff_ms = 50.0,
                         .jitter = 0.25};
  /// Per-operation send/recv deadline (handshake, snapshot chunks).
  double io_timeout_ms = 2000.0;
  /// How long one Poll waits for the first frame before returning "nothing
  /// new". Bounds the hold time of the replica's ship mutex.
  double drain_ms = 20.0;
  /// No frame (not even a heartbeat) for this long ⇒ the peer is presumed
  /// dead and the connection is torn down for a fresh reconnect.
  double peer_timeout_ms = 500.0;
  uint64_t seed = 42;
};

/// Replica-side record source over TCP — the WalCursor contract spoken to
/// a ShipServer (DESIGN.md §16):
///   - Poll connects on demand (jittered-exponential reconnect), handshakes
///     at the seq watermark, drains whatever record frames are ready and
///     verifies CRC + seq continuity on each.
///   - Duplicated frames fall below the watermark and are skipped; a gap
///     above it is kDataLoss exactly like a file-cursor gap.
///   - A kNeedBootstrap handshake reply surfaces once as
///     kFailedPrecondition (the Replica answers with Rewind + re-poll, the
///     same move a file-log reset triggers); if the server still cannot
///     resume, the next Poll reports kDataLoss and the replica must
///     re-bootstrap.
///   - Disconnects, torn frames and wire corruption never lose data: the
///     connection drops, the watermark stands, and the next Poll resyncs
///     from it.
class SocketTailer final : public WalSource {
 public:
  SocketTailer(std::string host, int port, SocketTailerOptions options = {},
               std::shared_ptr<TransportCounters> counters = nullptr);
  ~SocketTailer() override;

  Status Poll(std::vector<ingest::WalRecord>* out) override;
  /// Drops the connection (the watermark stands); the next Poll
  /// re-handshakes at it — the socket analogue of repositioning a file
  /// cursor at offset 0 and skipping below the watermark.
  void Rewind() override;
  uint64_t last_seq() const override { return watermark_; }

  /// Committed seq most recently advertised by a server heartbeat.
  uint64_t committed_hint() const {
    return committed_hint_.load(std::memory_order_acquire);
  }
  const TransportCounters& counters() const { return *counters_; }
  bool connected() const { return connected_; }

 private:
  Status EnsureConnected();
  void Disconnect();

  const std::string host_;
  const int port_;
  const SocketTailerOptions options_;
  std::shared_ptr<TransportCounters> counters_;
  Rng rng_;

  net::Socket socket_;
  std::unique_ptr<net::FrameReader> reader_;
  bool connected_ = false;
  bool ever_connected_ = false;
  /// One kNeedBootstrap was already surfaced as kFailedPrecondition; the
  /// next one is kDataLoss.
  bool reset_reported_ = false;
  uint64_t watermark_ = 0;
  int64_t last_frame_ns_ = 0;
  std::atomic<uint64_t> committed_hint_{0};
};

/// Socket-backed ShipTransport: bootstrap snapshots and WAL records both
/// travel over the framed TCP protocol to a ShipServer at host:port.
class SocketTransport final : public ShipTransport {
 public:
  SocketTransport(std::string host, int port, SocketTailerOptions options = {});
  Status FetchBootstrapSnapshot(const std::string& local_path) override;
  std::unique_ptr<WalSource> MakeWalSource() override;
  const char* name() const override { return "socket"; }

 private:
  const std::string host_;
  const int port_;
  const SocketTailerOptions options_;
  Rng snapshot_rng_;
};

}  // namespace traj2hash::replica

#endif  // TRAJ2HASH_REPLICA_TRANSPORT_H_
