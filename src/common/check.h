#ifndef TRAJ2HASH_COMMON_CHECK_H_
#define TRAJ2HASH_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// CHECK macros for programmer-error invariants. Unlike `Status`, a failed
/// CHECK indicates a bug in this library or in the caller's use of it, so the
/// process aborts with a source location. These stay enabled in release
/// builds: the guarded invariants (shape matches, index bounds) are cheap
/// relative to the numeric work they protect.
#define T2H_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define T2H_CHECK_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,  \
                   __LINE__, #cond, msg);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define T2H_CHECK_EQ(a, b) T2H_CHECK((a) == (b))
#define T2H_CHECK_NE(a, b) T2H_CHECK((a) != (b))
#define T2H_CHECK_LT(a, b) T2H_CHECK((a) < (b))
#define T2H_CHECK_LE(a, b) T2H_CHECK((a) <= (b))
#define T2H_CHECK_GT(a, b) T2H_CHECK((a) > (b))
#define T2H_CHECK_GE(a, b) T2H_CHECK((a) >= (b))

#endif  // TRAJ2HASH_COMMON_CHECK_H_
