#include "common/status.h"

namespace traj2hash {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  return std::string(CodeName(code_)) + ": " + message_;
}

}  // namespace traj2hash
