#ifndef TRAJ2HASH_COMMON_PARSE_H_
#define TRAJ2HASH_COMMON_PARSE_H_

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/status.h"

namespace traj2hash {

/// Strict decimal parse of an operator-facing unsigned integer (CLI flags
/// like wal-replay --from-seq): digits only, fully consumed, no overflow.
/// strtoull alone silently accepts "1O0" -> 1, leading "+"/"-"/whitespace
/// and wrapped negatives — all of which would quietly act on the wrong
/// value, so every one of them is an error here.
inline Result<uint64_t> ParseUint64(const std::string& text) {
  const auto fail = [&text]() {
    return Status::InvalidArgument("expected a non-negative integer, got '" +
                                   text + "'");
  };
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0]))) {
    return fail();
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return fail();
  return static_cast<uint64_t>(v);
}

}  // namespace traj2hash

#endif  // TRAJ2HASH_COMMON_PARSE_H_
