#include "common/crc32.h"

#include <array>

namespace traj2hash {
namespace {

/// The 256-entry lookup table for the reflected 0xEDB88320 polynomial,
/// generated once at startup (cheap and avoids a 1 KiB literal).
const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const std::array<uint32_t, 256>& table = Table();
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

uint32_t Crc32(const void* data, size_t size) {
  return Crc32Finish(Crc32Update(kCrc32Init, data, size));
}

}  // namespace traj2hash
