#ifndef TRAJ2HASH_COMMON_RNG_H_
#define TRAJ2HASH_COMMON_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace traj2hash {

/// Deterministic random source shared by data generation, model
/// initialisation and training. Every component takes an `Rng&` explicitly so
/// experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int UniformInt(int lo, int hi) {
    T2H_CHECK_LE(lo, hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal scaled by `stddev`.
  double Gaussian(double stddev = 1.0) {
    return std::normal_distribution<double>(0.0, stddev)(engine_);
  }

  /// True with probability `p`.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Samples `k` distinct indices from [0, n). Requires k <= n.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace traj2hash

#endif  // TRAJ2HASH_COMMON_RNG_H_
