#include "common/file_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/fault_injection.h"

namespace traj2hash {
namespace {

Status IoErrorWithErrno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

/// Writes the full payload to `fd`, honouring the kFileWrite fault point:
/// an injected fault writes only the first half of the payload (a torn
/// write, as if the process crashed mid-flush) and reports failure.
Status WriteAll(int fd, const std::string& payload, const std::string& path) {
  size_t to_write = payload.size();
  if (FaultInjector::Fire(faults::kFileWrite)) {
    const size_t torn = payload.size() / 2;
    if (torn > 0) {
      [[maybe_unused]] ssize_t ignored = ::write(fd, payload.data(), torn);
    }
    return Status::IoError("injected torn write: " + path);
  }
  const char* data = payload.data();
  while (to_write > 0) {
    const ssize_t n = ::write(fd, data, to_write);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoErrorWithErrno("write failed for", path);
    }
    data += n;
    to_write -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Status AtomicWriteFile(const std::string& path, const std::string& payload) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoErrorWithErrno("cannot open temp file", tmp);

  Status status = WriteAll(fd, payload, tmp);
  if (status.ok() && ::fsync(fd) != 0) {
    status = IoErrorWithErrno("fsync failed for", tmp);
  }
  if (::close(fd) != 0 && status.ok()) {
    status = IoErrorWithErrno("close failed for", tmp);
  }
  if (status.ok() && FaultInjector::Fire(faults::kFileRename)) {
    status = Status::IoError("injected rename failure: " + tmp);
  }
  if (status.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    status = IoErrorWithErrno("rename failed for", tmp);
  }
  if (!status.ok()) {
    ::unlink(tmp.c_str());  // never leave a torn temp file behind
    return status;
  }
  return Status::Ok();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  return buffer.str();
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

AppendableFile::AppendableFile(int fd, std::string path, uint64_t size)
    : fd_(fd), path_(std::move(path)), size_(size) {}

AppendableFile::~AppendableFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<AppendableFile>> AppendableFile::Open(
    const std::string& path, uint64_t size) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) return IoErrorWithErrno("cannot open for appending", path);
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    const Status status = IoErrorWithErrno("truncate failed for", path);
    ::close(fd);
    return status;
  }
  if (::lseek(fd, static_cast<off_t>(size), SEEK_SET) < 0) {
    const Status status = IoErrorWithErrno("seek failed for", path);
    ::close(fd);
    return status;
  }
  return std::unique_ptr<AppendableFile>(new AppendableFile(fd, path, size));
}

Status AppendableFile::Append(const std::string& data) {
  if (FaultInjector::Fire(faults::kWalAppend)) {
    const size_t torn = data.size() / 2;
    if (torn > 0) {
      [[maybe_unused]] ssize_t ignored = ::write(fd_, data.data(), torn);
      size_ += torn;
    }
    return Status::IoError("injected torn append: " + path_);
  }
  const char* p = data.data();
  size_t to_write = data.size();
  while (to_write > 0) {
    const ssize_t n = ::write(fd_, p, to_write);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoErrorWithErrno("append failed for", path_);
    }
    p += n;
    to_write -= static_cast<size_t>(n);
    size_ += static_cast<uint64_t>(n);
  }
  return Status::Ok();
}

Status AppendableFile::Sync() {
  if (::fsync(fd_) != 0) return IoErrorWithErrno("fsync failed for", path_);
  return Status::Ok();
}

Status AppendableFile::TruncateTo(uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return IoErrorWithErrno("truncate failed for", path_);
  }
  if (::lseek(fd_, static_cast<off_t>(size), SEEK_SET) < 0) {
    return IoErrorWithErrno("seek failed for", path_);
  }
  if (::fsync(fd_) != 0) return IoErrorWithErrno("fsync failed for", path_);
  size_ = size;
  return Status::Ok();
}

}  // namespace traj2hash
