#ifndef TRAJ2HASH_COMMON_RETRY_H_
#define TRAJ2HASH_COMMON_RETRY_H_

#include <functional>
#include <thread>

#include "common/rng.h"
#include "common/status.h"

namespace traj2hash {

/// Jittered exponential backoff policy for retrying transient failures
/// (kUnavailable from admission control, kIoError from flaky storage).
struct RetryOptions {
  int max_attempts = 3;           ///< total tries, including the first
  double initial_backoff_ms = 10.0;
  double multiplier = 2.0;
  double max_backoff_ms = 1000.0;
  /// Uniform jitter fraction: the sleep before retry i is drawn from
  /// [b*(1-jitter), b*(1+jitter)] where b is the capped exponential base.
  /// Deterministic under a seeded Rng, so tests assert exact schedules.
  double jitter = 0.25;
};

/// The backoff (milliseconds) to sleep before retry attempt `attempt`
/// (1 = the sleep after the first failure). Consumes exactly one draw from
/// `rng` when jitter > 0, so schedules are reproducible from the seed.
double BackoffMillis(const RetryOptions& options, int attempt, Rng& rng);

/// True for codes worth retrying: transient overload/IO, not corruption or
/// caller bugs.
bool IsRetryable(StatusCode code);

/// Default sleeper: blocks the calling thread.
void SleepMillis(double ms);

/// Runs `fn` until it returns OK, a non-retryable status, or the attempt
/// budget is exhausted; sleeps the jittered backoff between attempts via
/// `sleeper` (overridable so tests capture the schedule instead of actually
/// sleeping). Returns the last status.
Status RetryWithBackoff(
    const RetryOptions& options, Rng& rng, const std::function<Status()>& fn,
    const std::function<void(double ms)>& sleeper = SleepMillis);

}  // namespace traj2hash

#endif  // TRAJ2HASH_COMMON_RETRY_H_
