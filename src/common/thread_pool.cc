#include "common/thread_pool.h"

#include <latch>

#include "common/check.h"
#include "common/fault_injection.h"

namespace traj2hash {

ThreadPool::ThreadPool(int num_threads) {
  T2H_CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  T2H_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    T2H_CHECK_MSG(!stopping_, "Submit on a stopping ThreadPool");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  std::latch done(static_cast<std::ptrdiff_t>(tasks.size()));
  for (std::function<void()>& task : tasks) {
    Submit([&done, task = std::move(task)] {
      // Fault point: a dropped task never runs, but the barrier still
      // completes — batch callers observe a missing unit, not a hang.
      if (!FaultInjector::Fire(faults::kPoolTaskStart)) task();
      done.count_down();
    });
  }
  done.wait();
}

int ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue before honouring shutdown so ~ThreadPool keeps the
      // documented "finish what was submitted" contract.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace traj2hash
