#include "common/fault_injection.h"

#include <atomic>

#include "common/check.h"

namespace traj2hash {
namespace {

/// The process-wide active injector. Relaxed loads suffice on the fast path:
/// installation happens-before the faulted code runs in any sane test (the
/// Scope is created before the system under test is exercised).
std::atomic<FaultInjector*> g_active{nullptr};

}  // namespace

void FaultInjector::Arm(const std::string& point, int skip, int fire) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& p = points_[point];
  p.skip = skip;
  p.fire = fire;
}

void FaultInjector::ArmProbability(const std::string& point,
                                   double probability, uint64_t seed) {
  T2H_CHECK(probability >= 0.0 && probability <= 1.0);
  std::lock_guard<std::mutex> lock(mu_);
  Point& p = points_[point];
  p.probabilistic = true;
  p.probability = probability;
  p.engine.seed(seed);
}

void FaultInjector::ArmGate(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  points_[point].gate = true;
}

void FaultInjector::OpenGate(const std::string& point) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = points_.find(point);
    T2H_CHECK_MSG(it != points_.end() && it->second.gate,
                  "OpenGate on a point that was never gate-armed");
    it->second.gate_open = true;
  }
  gate_opened_.notify_all();
}

int FaultInjector::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

int FaultInjector::fired(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fired;
}

bool FaultInjector::FireImpl(const char* point) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  if (it == points_.end()) return false;
  Point& p = it->second;
  ++p.hits;
  if (p.gate) {
    gate_opened_.wait(lock, [&p] { return p.gate_open; });
    return false;
  }
  if (p.probabilistic) {
    if (std::bernoulli_distribution(p.probability)(p.engine)) {
      ++p.fired;
      return true;
    }
    return false;
  }
  if (p.hits > p.skip && p.fired < p.fire) {
    ++p.fired;
    return true;
  }
  return false;
}

bool FaultInjector::Fire(const char* point) {
  FaultInjector* active = g_active.load(std::memory_order_acquire);
  if (active == nullptr) return false;
  return active->FireImpl(point);
}

FaultInjector::Scope::Scope(FaultInjector* injector)
    : previous_(g_active.exchange(injector, std::memory_order_acq_rel)) {}

FaultInjector::Scope::~Scope() {
  g_active.store(previous_, std::memory_order_release);
}

}  // namespace traj2hash
