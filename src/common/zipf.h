#ifndef TRAJ2HASH_COMMON_ZIPF_H_
#define TRAJ2HASH_COMMON_ZIPF_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace traj2hash {

/// Deterministic Zipfian sampler over ranks {0, ..., n-1}:
/// P(rank r) ∝ 1 / (r + 1)^s. Skew `s = 0` degenerates to uniform; real
/// query streams sit around s ≈ 0.8–1.2. Used by serve-bench's
/// `--query-dist zipf:<s>` to produce the hot-key skew that uniform replay
/// cannot — without it, hot-replica routing and (future) result caching
/// measure as no-ops.
///
/// The CDF is precomputed once (O(n)); each Sample is one Rng draw plus a
/// binary search, so sequences are reproducible from the Rng seed alone.
class ZipfSampler {
 public:
  ZipfSampler(int n, double s) {
    T2H_CHECK_GE(n, 1);
    T2H_CHECK_GE(s, 0.0);
    cdf_.reserve(n);
    double total = 0.0;
    for (int r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
    cdf_.back() = 1.0;  // guard against rounding at the tail
  }

  /// One rank draw; consumes exactly one Uniform draw from `rng`.
  int Sample(Rng& rng) const {
    const double u = rng.Uniform(0.0, 1.0);
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<int>(it - cdf_.begin());
  }

  int size() const { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;  ///< cdf_[r] = P(rank <= r)
};

}  // namespace traj2hash

#endif  // TRAJ2HASH_COMMON_ZIPF_H_
