#ifndef TRAJ2HASH_COMMON_ALIGNED_H_
#define TRAJ2HASH_COMMON_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace traj2hash {

/// All SIMD kernel row storage is aligned to this boundary (one AVX2
/// vector), and row strides are padded to multiples of it, so the widest
/// backend can use aligned full-vector loads with no scalar tail per row
/// (DESIGN.md §14).
inline constexpr std::size_t kKernelRowAlignment = 32;

/// Minimal std::allocator drop-in that over-aligns every allocation.
/// std::vector growth re-allocates through it, so the buffer stays aligned
/// for the container's whole life.
template <typename T, std::size_t Alignment = kKernelRowAlignment>
class AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "alignment below the type's natural alignment");

 public:
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// Contiguous storage whose data() is kKernelRowAlignment-aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace traj2hash

#endif  // TRAJ2HASH_COMMON_ALIGNED_H_
