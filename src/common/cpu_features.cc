#include "common/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "common/check.h"

namespace traj2hash {
namespace {

/// Process-wide selection state. `selected` is the only field kernels read
/// on the hot path, so it is atomic; `source` changes only under `mu`.
struct IsaState {
  KernelIsa detected;
  std::atomic<int> selected;
  std::mutex mu;
  std::string source;
};

IsaState& State() {
  // Resolved once, on the first kernel call or CurrentKernelIsa() query.
  // The env override is part of resolution (not a later mutation) so that
  // `T2H_KERNEL_ISA=sse2 ctest` pins every kernel in the test process
  // before any dispatch table is consulted.
  static IsaState* state = [] {
    auto* s = new IsaState;
    s->detected = DetectBestKernelIsa();
    KernelIsa selected = s->detected;
    s->source = "detected";
    if (const char* env = std::getenv("T2H_KERNEL_ISA");
        env != nullptr && env[0] != '\0') {
      const Result<KernelIsa> parsed = ParseKernelIsa(env);
      // An override that cannot be honoured is fatal, not a fallback: a
      // forced-ISA CI lane must never quietly run a different backend.
      T2H_CHECK_MSG(parsed.ok(),
                    "T2H_KERNEL_ISA must be scalar, sse2 or avx2");
      T2H_CHECK_MSG(KernelIsaAvailable(parsed.value()),
                    "T2H_KERNEL_ISA names an ISA this CPU/build lacks; "
                    "refusing to silently fall back");
      selected = parsed.value();
      s->source = "env:T2H_KERNEL_ISA";
    }
    s->selected.store(static_cast<int>(selected), std::memory_order_relaxed);
    return s;
  }();
  return *state;
}

}  // namespace

const char* KernelIsaName(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return "scalar";
    case KernelIsa::kSse2:
      return "sse2";
    case KernelIsa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Result<KernelIsa> ParseKernelIsa(const std::string& name) {
  if (name == "scalar") return KernelIsa::kScalar;
  if (name == "sse2") return KernelIsa::kSse2;
  if (name == "avx2") return KernelIsa::kAvx2;
  return Status::InvalidArgument("unknown kernel ISA '" + name +
                                 "' (expected scalar, sse2 or avx2)");
}

bool KernelIsaAvailable(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return true;
    case KernelIsa::kSse2:
#if defined(T2H_HAVE_SSE2_BACKEND)
      return __builtin_cpu_supports("sse2") != 0;
#else
      return false;
#endif
    case KernelIsa::kAvx2:
#if defined(T2H_HAVE_AVX2_BACKEND)
      // The AVX2 backend TUs also use FMA and POPCNT; every AVX2-era core
      // (Haswell+/Zen+) has both, but check anyway — dispatch must never
      // select a path the CPU cannot execute.
      return __builtin_cpu_supports("avx2") != 0 &&
             __builtin_cpu_supports("fma") != 0 &&
             __builtin_cpu_supports("popcnt") != 0;
#else
      return false;
#endif
  }
  return false;
}

KernelIsa DetectBestKernelIsa() {
  if (KernelIsaAvailable(KernelIsa::kAvx2)) return KernelIsa::kAvx2;
  if (KernelIsaAvailable(KernelIsa::kSse2)) return KernelIsa::kSse2;
  return KernelIsa::kScalar;
}

KernelIsaSelection CurrentKernelIsa() {
  IsaState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return {state.detected,
          static_cast<KernelIsa>(state.selected.load(std::memory_order_relaxed)),
          state.source};
}

Status SetKernelIsa(KernelIsa isa, std::string source) {
  if (!KernelIsaAvailable(isa)) {
    return Status::FailedPrecondition(
        std::string("kernel ISA '") + KernelIsaName(isa) +
        "' is not available on this CPU/build; refusing to silently fall "
        "back (available: " + KernelIsaName(DetectBestKernelIsa()) +
        " and below)");
  }
  IsaState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.selected.store(static_cast<int>(isa), std::memory_order_relaxed);
  state.source = std::move(source);
  return Status::Ok();
}

int KernelIsaIndex() {
  return State().selected.load(std::memory_order_relaxed);
}

ScopedKernelIsa::ScopedKernelIsa(KernelIsa isa) {
  const KernelIsaSelection cur = CurrentKernelIsa();
  prev_ = cur.selected;
  prev_source_ = cur.source;
  const Status s = SetKernelIsa(isa, std::string("scoped:") +
                                         KernelIsaName(isa));
  T2H_CHECK_MSG(s.ok(), "ScopedKernelIsa: requested ISA unavailable");
}

ScopedKernelIsa::~ScopedKernelIsa() {
  (void)SetKernelIsa(prev_, std::move(prev_source_));
}

}  // namespace traj2hash
