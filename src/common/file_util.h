#ifndef TRAJ2HASH_COMMON_FILE_UTIL_H_
#define TRAJ2HASH_COMMON_FILE_UTIL_H_

#include <string>

#include "common/status.h"

namespace traj2hash {

/// Crash-safe whole-file write: the payload goes to `path + ".tmp"`, is
/// fsynced, and is atomically renamed over `path`. A crash (or injected
/// fault, see common/fault_injection.h) at any point leaves the previous
/// contents of `path` fully intact — readers see either the old file or the
/// complete new one, never a torn mix. On failure the temp file is removed
/// and kIoError is returned.
Status AtomicWriteFile(const std::string& path, const std::string& payload);

/// Reads a whole file (binary) into a string. kIoError when the file cannot
/// be opened or read.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace traj2hash

#endif  // TRAJ2HASH_COMMON_FILE_UTIL_H_
