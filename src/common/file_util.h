#ifndef TRAJ2HASH_COMMON_FILE_UTIL_H_
#define TRAJ2HASH_COMMON_FILE_UTIL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace traj2hash {

/// Crash-safe whole-file write: the payload goes to `path + ".tmp"`, is
/// fsynced, and is atomically renamed over `path`. A crash (or injected
/// fault, see common/fault_injection.h) at any point leaves the previous
/// contents of `path` fully intact — readers see either the old file or the
/// complete new one, never a torn mix. On failure the temp file is removed
/// and kIoError is returned.
Status AtomicWriteFile(const std::string& path, const std::string& payload);

/// Reads a whole file (binary) into a string. kIoError when the file cannot
/// be opened or read.
Result<std::string> ReadFileToString(const std::string& path);

/// True when `path` exists (any file type). Errors other than "not there"
/// also report false; callers that must distinguish should open the file.
bool FileExists(const std::string& path);

/// Append-oriented file handle for write-ahead logs: opens `path` (creating
/// it if absent), truncates it to `size` — how a log discards a torn tail
/// its replay found — and then appends with an explicit durability barrier.
/// Not thread-safe; the owning log serialises access.
class AppendableFile {
 public:
  /// kIoError when the file cannot be opened or truncated.
  static Result<std::unique_ptr<AppendableFile>> Open(const std::string& path,
                                                      uint64_t size);
  ~AppendableFile();
  AppendableFile(const AppendableFile&) = delete;
  AppendableFile& operator=(const AppendableFile&) = delete;

  /// Appends `data` at the end of the file. Honours faults::kWalAppend: an
  /// injected fault writes only the first half of `data` (a torn append, as
  /// if the process crashed mid-write) and reports kIoError. Bytes are not
  /// durable until Sync.
  Status Append(const std::string& data);

  /// fsync barrier: everything appended so far survives a crash.
  Status Sync();

  /// Drops the file back to `size` bytes (fsynced). Used by log resets
  /// after a checkpoint made the records redundant.
  Status TruncateTo(uint64_t size);

  /// Bytes written so far (including not-yet-synced appends).
  uint64_t size() const { return size_; }

 private:
  AppendableFile(int fd, std::string path, uint64_t size);

  int fd_;
  std::string path_;
  uint64_t size_;
};

}  // namespace traj2hash

#endif  // TRAJ2HASH_COMMON_FILE_UTIL_H_
