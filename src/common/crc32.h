#ifndef TRAJ2HASH_COMMON_CRC32_H_
#define TRAJ2HASH_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace traj2hash {

/// CRC-32 (IEEE 802.3, the zlib/gzip polynomial 0xEDB88320) over a byte
/// range. Used to checksum every on-disk artifact (model files, index
/// snapshots) so a truncated or bit-flipped file loads as `kDataLoss`
/// instead of garbage. Reference value: Crc32("123456789") == 0xCBF43926.
uint32_t Crc32(const void* data, size_t size);

/// Convenience overload for string payloads.
inline uint32_t Crc32(const std::string& payload) {
  return Crc32(payload.data(), payload.size());
}

/// Incremental form: feed `crc` the previous return value (or
/// `kCrc32Init` for the first chunk) and finish with `Crc32Finish`.
/// `Crc32(p, n) == Crc32Finish(Crc32Update(kCrc32Init, p, n))`.
inline constexpr uint32_t kCrc32Init = 0xFFFFFFFFu;
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);
inline uint32_t Crc32Finish(uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

}  // namespace traj2hash

#endif  // TRAJ2HASH_COMMON_CRC32_H_
