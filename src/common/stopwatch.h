#ifndef TRAJ2HASH_COMMON_STOPWATCH_H_
#define TRAJ2HASH_COMMON_STOPWATCH_H_

#include <chrono>

namespace traj2hash {

/// Wall-clock stopwatch for the efficiency experiments (Figs. 5-6).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Microseconds elapsed since construction or the last Restart().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace traj2hash

#endif  // TRAJ2HASH_COMMON_STOPWATCH_H_
