#ifndef TRAJ2HASH_COMMON_SERIALIZE_H_
#define TRAJ2HASH_COMMON_SERIALIZE_H_

#include <cstddef>
#include <cstring>
#include <string>

namespace traj2hash {

/// Appends the raw little-endian bytes of a POD value to `out`. Pair with
/// PayloadReader::Read on the way back in. Only trivially-copyable types
/// make sense here (integers, floats, packed structs of those).
template <typename T>
void AppendPod(std::string& out, const T& value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Bounds-checked sequential reader over a serialized payload. Every
/// failure sticks (reads past the end return zeroed values and latch
/// `ok() == false`), so callers can batch a run of reads and test `ok()`
/// once at the end instead of after every field.
class PayloadReader {
 public:
  PayloadReader(const std::string& buffer, size_t pos)
      : buffer_(buffer), pos_(pos) {}

  template <typename T>
  T Read() {
    T value{};
    ReadBytes(&value, sizeof(T));
    return value;
  }

  void ReadBytes(void* out, size_t n) {
    if (!ok_ || pos_ + n > buffer_.size()) {
      ok_ = false;
      return;
    }
    std::memcpy(out, buffer_.data() + pos_, n);
    pos_ += n;
  }

  bool ok() const { return ok_; }
  /// True when every read succeeded and the payload is fully consumed —
  /// trailing bytes are a structural mismatch, not success.
  bool at_end() const { return ok_ && pos_ == buffer_.size(); }

 private:
  const std::string& buffer_;
  size_t pos_;
  bool ok_ = true;
};

}  // namespace traj2hash

#endif  // TRAJ2HASH_COMMON_SERIALIZE_H_
