#ifndef TRAJ2HASH_COMMON_SERIALIZE_H_
#define TRAJ2HASH_COMMON_SERIALIZE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/crc32.h"

namespace traj2hash {

/// Appends the raw little-endian bytes of a POD value to `out`. Pair with
/// PayloadReader::Read on the way back in. Only trivially-copyable types
/// make sense here (integers, floats, packed structs of those).
template <typename T>
void AppendPod(std::string& out, const T& value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Bounds-checked sequential reader over a serialized payload. Every
/// failure sticks (reads past the end return zeroed values and latch
/// `ok() == false`), so callers can batch a run of reads and test `ok()`
/// once at the end instead of after every field.
class PayloadReader {
 public:
  PayloadReader(const std::string& buffer, size_t pos)
      : buffer_(buffer), pos_(pos) {}

  template <typename T>
  T Read() {
    T value{};
    ReadBytes(&value, sizeof(T));
    return value;
  }

  void ReadBytes(void* out, size_t n) {
    if (!ok_ || pos_ + n > buffer_.size()) {
      ok_ = false;
      return;
    }
    std::memcpy(out, buffer_.data() + pos_, n);
    pos_ += n;
  }

  bool ok() const { return ok_; }
  /// True when every read succeeded and the payload is fully consumed —
  /// trailing bytes are a structural mismatch, not success.
  bool at_end() const { return ok_ && pos_ == buffer_.size(); }

 private:
  const std::string& buffer_;
  size_t pos_;
  bool ok_ = true;
};

/// CRC32 framing for append-only logs. Each frame is
///   u32 payload_len | u32 crc32(payload) | payload_len bytes
/// so a reader can walk a log file frame by frame and tell a torn tail (a
/// crash mid-append: the remaining bytes cannot hold the declared frame)
/// apart from mid-file corruption (a full frame whose checksum fails).
inline void AppendCrcFrame(std::string& out, const std::string& payload) {
  AppendPod(out, static_cast<uint32_t>(payload.size()));
  AppendPod(out, Crc32(payload));
  out.append(payload);
}

/// Outcome of parsing one frame at an offset of a log buffer.
enum class FrameParse {
  kFrame,     ///< a complete, checksum-verified frame; `payload` is set
  kEnd,       ///< the offset is exactly the end of the buffer (clean tail)
  kTornTail,  ///< the remaining bytes cannot hold the declared frame
  kCorrupt,   ///< a complete frame whose checksum does not match
};

/// Parses the frame starting at `*pos`. On kFrame, `*payload` receives the
/// payload bytes and `*pos` advances past the frame; on every other outcome
/// `*pos` is left at the frame start (for kTornTail that is the length of
/// the durable prefix).
inline FrameParse ReadCrcFrame(const std::string& buffer, size_t* pos,
                               std::string* payload) {
  if (*pos == buffer.size()) return FrameParse::kEnd;
  constexpr size_t kFrameHeader = 2 * sizeof(uint32_t);
  if (buffer.size() - *pos < kFrameHeader) return FrameParse::kTornTail;
  uint32_t len = 0;
  uint32_t crc = 0;
  std::memcpy(&len, buffer.data() + *pos, sizeof(len));
  std::memcpy(&crc, buffer.data() + *pos + sizeof(len), sizeof(crc));
  if (buffer.size() - *pos - kFrameHeader < len) return FrameParse::kTornTail;
  const char* data = buffer.data() + *pos + kFrameHeader;
  if (Crc32(data, len) != crc) return FrameParse::kCorrupt;
  payload->assign(data, len);
  *pos += kFrameHeader + len;
  return FrameParse::kFrame;
}

}  // namespace traj2hash

#endif  // TRAJ2HASH_COMMON_SERIALIZE_H_
