#ifndef TRAJ2HASH_COMMON_STATUS_H_
#define TRAJ2HASH_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace traj2hash {

/// Error categories for fallible operations. Mirrors the usual
/// database-library convention (RocksDB-style Status) instead of exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  /// The service is overloaded (admission control shed the request) or a
  /// dependency is temporarily down. Retryable with backoff (common/retry.h).
  kUnavailable,
  /// The caller's deadline expired before the operation finished. A partial
  /// best-effort result may accompany this code (serve::QueryResult).
  kDeadlineExceeded,
  /// Stored data is unrecoverably corrupt or truncated (checksum mismatch,
  /// torn write). Not retryable: the file must be rebuilt from source.
  kDataLoss,
};

/// Result of a fallible operation that produces no value.
///
/// A `Status` is either OK or carries a code and a human-readable message.
/// Functions that can fail for reasons other than programmer error return
/// `Status` (or `Result<T>`); programmer errors are caught by CHECK macros.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Lightweight analogue of
/// absl::StatusOr for this project.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites terse (`return Status::InvalidArgument(...)` / `return value;`).
  Result(T value) : data_(std::move(value)) {}          // NOLINT
  Result(Status status) : data_(std::move(status)) {}   // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  /// Requires `ok()`.
  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace traj2hash

#endif  // TRAJ2HASH_COMMON_STATUS_H_
