#ifndef TRAJ2HASH_COMMON_THREAD_POOL_H_
#define TRAJ2HASH_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace traj2hash {

/// Fixed-size worker pool with a FIFO task queue, built on std::thread +
/// std::condition_variable only (no third-party dependencies). Shared by the
/// serving subsystem (`serve::QueryEngine` shard fan-out and query batching)
/// and the training path (`core::Trainer` data-parallel batches, bulk corpus
/// encoding), so one process runs one pool per concern instead of ad-hoc
/// thread spawning.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains every already-submitted task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task for execution on some worker. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Submits all `tasks` and blocks until every one of them has finished.
  /// Must not be called from inside a pool task: the caller would occupy a
  /// worker slot while waiting on workers, which deadlocks when the pool is
  /// fully occupied by such callers.
  void RunAll(std::vector<std::function<void()>> tasks);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Tasks submitted but not yet started (for observability; racy by nature).
  int queue_depth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace traj2hash

#endif  // TRAJ2HASH_COMMON_THREAD_POOL_H_
