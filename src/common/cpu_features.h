#ifndef TRAJ2HASH_COMMON_CPU_FEATURES_H_
#define TRAJ2HASH_COMMON_CPU_FEATURES_H_

#include <string>

#include "common/status.h"

namespace traj2hash {

/// Kernel instruction-set backends (DESIGN.md §14). Every micro-kernel TU in
/// `nn::kernels` and `search::kernels` exists in up to three variants; which
/// one runs is decided ONCE per process from (a) what this binary was
/// compiled with, (b) what the CPU reports at runtime, and (c) an explicit
/// override (`T2H_KERNEL_ISA` env var, `--kernel-isa` CLI flag, or
/// `SetKernelIsa` from tests). Overrides naming an ISA that is unavailable
/// fail loudly — the dispatcher never silently falls back, so a forced
/// `T2H_KERNEL_ISA=avx2` run either runs AVX2 kernels or dies telling you
/// it cannot.
enum class KernelIsa {
  kScalar = 0,  ///< strict-order portable loops (the pre-dispatch seed code)
  kSse2 = 1,    ///< 128-bit vectors, SSE2 instructions only
  kAvx2 = 2,    ///< 256-bit vectors (AVX2 + FMA + POPCNT)
};
inline constexpr int kNumKernelIsas = 3;

/// Lower-case stable name ("scalar" | "sse2" | "avx2").
const char* KernelIsaName(KernelIsa isa);

/// Inverse of KernelIsaName; kInvalidArgument on anything else.
Result<KernelIsa> ParseKernelIsa(const std::string& name);

/// True when `isa` was compiled into this binary AND the running CPU
/// supports it. kScalar is always available.
bool KernelIsaAvailable(KernelIsa isa);

/// The widest available ISA — what dispatch resolves to without an override.
KernelIsa DetectBestKernelIsa();

/// How the active ISA was chosen, for self-describing logs and bench JSON.
struct KernelIsaSelection {
  KernelIsa detected;   ///< DetectBestKernelIsa() at resolution time
  KernelIsa selected;   ///< what kernels actually dispatch to
  std::string source;   ///< "detected", "env:T2H_KERNEL_ISA", "cli:--kernel-isa", ...
};

/// Snapshot of the current selection (resolves the T2H_KERNEL_ISA override
/// on first use; a malformed or unavailable env value is a fatal CHECK).
KernelIsaSelection CurrentKernelIsa();

/// Forces the dispatch target. Fails with kFailedPrecondition when `isa` is
/// not available — callers must surface that, not downgrade. `source` is
/// recorded verbatim in CurrentKernelIsa().
Status SetKernelIsa(KernelIsa isa, std::string source);

/// Hot-path accessor used by the kernel dispatch tables: the selected ISA as
/// an index into a kNumKernelIsas-sized backend array. One relaxed atomic
/// load; safe to call concurrently with SetKernelIsa.
int KernelIsaIndex();

/// RAII pin of the dispatch target for a test/bench scope; restores the
/// previous selection on destruction. Fatal if `isa` is unavailable — check
/// KernelIsaAvailable first and skip instead when probing optional paths.
class ScopedKernelIsa {
 public:
  explicit ScopedKernelIsa(KernelIsa isa);
  ~ScopedKernelIsa();
  ScopedKernelIsa(const ScopedKernelIsa&) = delete;
  ScopedKernelIsa& operator=(const ScopedKernelIsa&) = delete;

 private:
  KernelIsa prev_;
  std::string prev_source_;
};

}  // namespace traj2hash

#endif  // TRAJ2HASH_COMMON_CPU_FEATURES_H_
