#include "common/retry.h"

#include <algorithm>
#include <chrono>

namespace traj2hash {

double BackoffMillis(const RetryOptions& options, int attempt, Rng& rng) {
  T2H_CHECK_GE(attempt, 1);
  double base = options.initial_backoff_ms;
  for (int i = 1; i < attempt; ++i) {
    base *= options.multiplier;
    if (base >= options.max_backoff_ms) break;  // saturated; stop multiplying
  }
  base = std::min(base, options.max_backoff_ms);
  if (options.jitter <= 0.0) return base;
  return rng.Uniform(base * (1.0 - options.jitter),
                     base * (1.0 + options.jitter));
}

bool IsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kIoError;
}

void SleepMillis(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

Status RetryWithBackoff(const RetryOptions& options, Rng& rng,
                        const std::function<Status()>& fn,
                        const std::function<void(double ms)>& sleeper) {
  T2H_CHECK_GE(options.max_attempts, 1);
  Status status;
  for (int attempt = 1; attempt <= options.max_attempts; ++attempt) {
    status = fn();
    if (status.ok() || !IsRetryable(status.code())) return status;
    if (attempt < options.max_attempts) {
      sleeper(BackoffMillis(options, attempt, rng));
    }
  }
  return status;
}

}  // namespace traj2hash
