#ifndef TRAJ2HASH_COMMON_DEADLINE_H_
#define TRAJ2HASH_COMMON_DEADLINE_H_

#include <chrono>
#include <cstdint>

#include "common/fault_injection.h"

namespace traj2hash {

/// A point in time after which an operation should stop and return whatever
/// it has (graceful degradation), threaded by value through the serving
/// stack. Default-constructed deadlines are infinite, so every happy path
/// stays a no-op.
///
/// `Expired(point)` optionally names a fault-injection site: an armed
/// FaultInjector can force that exact check to report expiry — even on an
/// infinite deadline — which is how tests exercise mid-probe expiry
/// deterministically, without real-clock races.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Infinite: never expires on its own.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  static Deadline At(Clock::time_point when) { return Deadline(when); }

  /// Expires `ms` milliseconds from now. Non-positive values yield an
  /// already-expired deadline (useful as "fail fast").
  static Deadline AfterMillis(int64_t ms) {
    return Deadline(Clock::now() + std::chrono::milliseconds(ms));
  }

  bool infinite() const { return !has_deadline_; }

  /// The absolute expiry instant, or `fallback` for infinite deadlines.
  /// Lets bounded waiters (`cv.wait_until`) cap a sleep by the deadline
  /// without special-casing the infinite default.
  Clock::time_point when_or(Clock::time_point fallback) const {
    return has_deadline_ ? when_ : fallback;
  }

  /// True once the deadline has passed, or when the named fault-injection
  /// point fires (tests only; inactive injector costs one atomic load).
  bool Expired(const char* fault_point = nullptr) const {
    if (fault_point != nullptr && FaultInjector::Fire(fault_point)) {
      return true;
    }
    return has_deadline_ && Clock::now() >= when_;
  }

 private:
  explicit Deadline(Clock::time_point when)
      : has_deadline_(true), when_(when) {}

  bool has_deadline_ = false;
  Clock::time_point when_{};
};

}  // namespace traj2hash

#endif  // TRAJ2HASH_COMMON_DEADLINE_H_
