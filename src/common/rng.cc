#include "common/rng.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace traj2hash {

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  T2H_CHECK_GE(n, k);
  T2H_CHECK_GE(k, 0);
  if (k == 0) return {};
  // For dense samples, shuffle a full index vector; for sparse samples,
  // rejection-sample into a set. The cutoff keeps both paths O(k log k)-ish.
  if (k * 3 >= n) {
    std::vector<int> idx(n);
    std::iota(idx.begin(), idx.end(), 0);
    Shuffle(idx);
    idx.resize(k);
    return idx;
  }
  std::unordered_set<int> seen;
  std::vector<int> out;
  out.reserve(k);
  while (static_cast<int>(out.size()) < k) {
    int candidate = UniformInt(0, n - 1);
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

}  // namespace traj2hash
