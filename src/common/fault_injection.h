#ifndef TRAJ2HASH_COMMON_FAULT_INJECTION_H_
#define TRAJ2HASH_COMMON_FAULT_INJECTION_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <string>

namespace traj2hash {

/// Named failure points that production code consults via
/// `FaultInjector::Fire`. Centralised so tests arm exactly the site they
/// mean and a grep finds every place a fault can be injected.
namespace faults {
/// file_util::AtomicWriteFile — payload write fails mid-way (torn write:
/// the temp file holds a prefix of the payload, the target is untouched).
inline constexpr char kFileWrite[] = "file.write";
/// file_util::AtomicWriteFile — the final atomic rename fails after a fully
/// written + fsynced temp file (the target keeps its previous contents).
inline constexpr char kFileRename[] = "file.rename";
/// serve::QueryEngine probe loop — the per-shard deadline check reports the
/// deadline as expired before this shard is probed.
inline constexpr char kShardProbe[] = "serve.shard_probe";
/// search::MihIndex::TopK — the between-radius-rounds deadline check reports
/// the deadline as expired (probe returns the candidates seen so far).
inline constexpr char kMihRadiusRound[] = "search.mih_radius_round";
/// ThreadPool::RunAll — the task is dropped at start (never runs; the batch
/// barrier still completes), simulating a lost unit of pool work.
inline constexpr char kPoolTaskStart[] = "pool.task_start";
/// AppendableFile::Append (the WAL write path) — only the first half of the
/// buffered bytes reach the file before the append fails, leaving a torn
/// frame at the tail exactly as a crash mid-write would.
inline constexpr char kWalAppend[] = "ingest.wal_append";
/// serve::ShardedIndex durable mutations — the process "crashes" after the
/// WAL record is durably synced but before it is applied to the in-memory
/// index (the mutation returns kInternal, un-acknowledged). Recovery must
/// replay the record; the caller may observe either outcome, like any write
/// that raced a real crash.
inline constexpr char kWalApply[] = "ingest.wal_apply";
/// ingest::LiveIndex compaction — the rebuilt base is abandoned just before
/// the install (view swap), as if the compacting thread died. The index
/// keeps serving from the old base + delta; nothing is lost.
inline constexpr char kCompactionInstall[] = "ingest.compaction_install";
/// ingest::WalCursor::Poll (replication shipping, DESIGN.md §13) — the poll
/// fails with kIoError before reading anything, as a dropped transport or an
/// unreadable primary log would. The cursor position is untouched, so a
/// later poll resumes exactly where this one would have.
inline constexpr char kReplicaShip[] = "replica.ship";
/// replica::Replica ship-apply loop — applying a shipped record fails after
/// it was read; the replica marks itself down (stale) rather than serve a
/// state that silently diverged from the primary's log.
inline constexpr char kReplicaApply[] = "replica.apply";
/// replica::Replica::Query — the replica "dies" at query entry: it reports
/// kUnavailable and transitions to kDown, which is how tests kill one member
/// of a group mid-burst and watch the router fail over.
inline constexpr char kReplicaDown[] = "replica.down";
/// net::Listener::Accept — the pending connection is accepted and then
/// immediately closed (the peer sees a successful connect followed by EOF),
/// as an overloaded or dying acceptor would behave.
inline constexpr char kNetAccept[] = "net.accept";
/// net::Socket::SendAll — only the first half of the buffer reaches the
/// peer before the connection is shut down (a torn frame on the wire: the
/// receiver finds a partial frame followed by EOF).
inline constexpr char kNetSend[] = "net.send";
/// net::Socket::RecvSome — the read fails and the connection is shut down
/// before any bytes are consumed, as an RST mid-stream would.
inline constexpr char kNetRecv[] = "net.recv";
/// replica::ShipServer record stream — the record frame is transmitted
/// twice (duplicate delivery; the tailer's seq watermark must absorb it).
inline constexpr char kNetDupFrame[] = "net.dup_frame";
/// replica::ShipServer record stream — the record frame is held back for
/// one heartbeat interval before being sent (delayed delivery; ordering is
/// still preserved, only latency is injected).
inline constexpr char kNetDelayFrame[] = "net.delay_frame";
}  // namespace faults

/// Deterministic fault-injection harness for robustness tests.
///
/// Production code calls `FaultInjector::Fire(point)` at its failure points;
/// with no injector installed this is one relaxed atomic load (safe on hot
/// paths). Tests construct a FaultInjector, arm points — counted ("skip the
/// first s hits, then fail the next f"), seeded-probabilistic, or gates
/// (hits block until released, for deterministic overload scenarios) — and
/// install it for a scope:
///
///   FaultInjector fi;
///   fi.Arm(faults::kFileWrite);              // fail every hit
///   FaultInjector::Scope scope(&fi);
///   EXPECT_EQ(SaveSnapshot(...).code(), StatusCode::kIoError);
///
/// All counters advance under one mutex, so a single-threaded test sees a
/// fully deterministic hit sequence; multi-threaded hits are serialised but
/// their interleaving follows the thread schedule (use gates to pin it).
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Counted arming: hits 1..skip pass, the next `fire` hits fail, later
  /// hits pass again. Defaults fail every hit forever.
  void Arm(const std::string& point, int skip = 0, int fire = kForever);

  /// Seed-deterministic random arming: each hit fails independently with
  /// `probability`, drawn from a per-point engine seeded with `seed`.
  void ArmProbability(const std::string& point, double probability,
                      uint64_t seed);

  /// Gate arming: every hit blocks inside Fire (which then reports "no
  /// fault") until OpenGate; hits after OpenGate pass straight through.
  /// Lets a test deterministically hold work in flight (e.g. pin a query
  /// inside the probe stage while a burst arrives behind it).
  void ArmGate(const std::string& point);
  void OpenGate(const std::string& point);

  /// Total hits / injected failures observed at `point` so far.
  int hits(const std::string& point) const;
  int fired(const std::string& point) const;

  /// Installs an injector process-wide for the enclosing scope (test-only;
  /// scopes must not be nested across threads).
  class Scope {
   public:
    explicit Scope(FaultInjector* injector);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    FaultInjector* previous_;
  };

  /// Call-site hook: true means "inject a failure here". Gate points block
  /// until opened and then return false. No-op (false) when no injector is
  /// installed or the point is not armed.
  static bool Fire(const char* point);

  static constexpr int kForever = 1 << 30;

 private:
  struct Point {
    int skip = 0;
    int fire = 0;
    int hits = 0;
    int fired = 0;
    bool probabilistic = false;
    double probability = 0.0;
    std::mt19937_64 engine;
    bool gate = false;
    bool gate_open = false;
  };

  bool FireImpl(const char* point);

  mutable std::mutex mu_;
  std::condition_variable gate_opened_;
  std::map<std::string, Point> points_;
};

}  // namespace traj2hash

#endif  // TRAJ2HASH_COMMON_FAULT_INJECTION_H_
