#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "eval/metrics.h"
#include "nn/adam.h"
#include "nn/ops.h"

namespace traj2hash::core {

using nn::Tensor;

std::vector<double> SimilarityFromDistances(
    const std::vector<double>& distances, int n, float theta) {
  double sum = 0.0;
  int64_t count = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      sum += distances[static_cast<size_t>(i) * n + j];
      ++count;
    }
  }
  const double mean = count > 0 ? sum / count : 1.0;
  const double scale = mean > 0.0 ? 1.0 / mean : 1.0;
  std::vector<double> sim(distances.size());
  for (size_t i = 0; i < distances.size(); ++i) {
    sim[i] = std::exp(-static_cast<double>(theta) * distances[i] * scale);
  }
  return sim;
}

namespace {

/// Cached pre-projection features of one trajectory (h, h_r or null).
using FusedFeatures = std::pair<Tensor, Tensor>;

/// Per-step cache so a seed encoded as a sample of several anchors is
/// embedded once per optimisation step.
class EmbeddingCache {
 public:
  EmbeddingCache(const Traj2Hash& model,
                 const std::vector<traj::Trajectory>& seeds)
      : model_(model), seeds_(seeds) {}

  const Tensor& Embedding(int idx) {
    auto it = embeddings_.find(idx);
    if (it == embeddings_.end()) {
      it = embeddings_.emplace(idx, model_.EncodeContinuous(seeds_[idx]))
               .first;
    }
    return it->second;
  }

  const Tensor& Code(int idx) {
    auto it = codes_.find(idx);
    if (it == codes_.end()) {
      it = codes_.emplace(idx, model_.RelaxedCode(Embedding(idx))).first;
    }
    return it->second;
  }

  void Clear() {
    embeddings_.clear();
    codes_.clear();
  }

 private:
  const Traj2Hash& model_;
  const std::vector<traj::Trajectory>& seeds_;
  std::unordered_map<int, Tensor> embeddings_;
  std::unordered_map<int, Tensor> codes_;
};

/// NeuTraj-style per-anchor sampling: the M/2 nearest seeds plus M/2 random
/// others, sorted by ground-truth similarity (most similar first).
std::vector<int> SelectSamples(const std::vector<std::vector<int>>& ranked,
                               const std::vector<double>& sim, int anchor,
                               int n, int m, Rng& rng) {
  std::vector<int> samples(ranked[anchor].begin(),
                           ranked[anchor].begin() + m / 2);
  const int tail = n - 1 - m / 2;
  for (const int e : rng.SampleWithoutReplacement(tail, m / 2)) {
    samples.push_back(ranked[anchor][m / 2 + e]);
  }
  std::sort(samples.begin(), samples.end(), [&](int x, int y) {
    return sim[static_cast<size_t>(anchor) * n + x] >
           sim[static_cast<size_t>(anchor) * n + y];
  });
  return samples;
}

/// Eq. 18 pair p of M/2: cross pairing matches the j-th most similar with
/// the j-th least similar; adjacent pairing follows the literal reading.
std::pair<int, int> PairAt(const std::vector<int>& samples, int p,
                           bool cross) {
  const int half = static_cast<int>(samples.size()) / 2;
  return cross ? std::make_pair(samples[p], samples[p + half])
               : std::make_pair(samples[2 * p], samples[2 * p + 1]);
}

/// Eq. 17 WMSE term between two [1, d] representations.
Tensor WmseTerm(const Tensor& h_a, const Tensor& h_s, float target,
                float weight) {
  const Tensor g = nn::Exp(nn::Scale(nn::EuclideanDistance(h_a, h_s), -1.0f));
  const Tensor err = nn::AddScalar(g, -target);
  return nn::Scale(nn::Mul(err, err), weight);
}

/// Eq. 19/20 hinge between relaxed codes.
Tensor RankingHinge(const Tensor& z_a, const Tensor& z_pos,
                    const Tensor& z_neg, float alpha) {
  return nn::Relu(nn::AddScalar(
      nn::Sub(nn::Dot(z_a, z_neg), nn::Dot(z_a, z_pos)), alpha));
}

}  // namespace

Trainer::Trainer(Traj2Hash* model, TrainerOptions options)
    : model_(model), options_(options) {
  T2H_CHECK(model != nullptr);
}

Result<TrainReport> Trainer::Fit(const TrainingData& data, Rng& rng) {
  const int n = static_cast<int>(data.seeds.size());
  if (n < 4) return Status::InvalidArgument("need at least 4 seeds");
  if (data.seed_distances.size() != static_cast<size_t>(n) * n) {
    return Status::InvalidArgument("seed_distances must be |seeds|^2");
  }
  if (data.val_truth.size() != data.val_queries.size()) {
    return Status::InvalidArgument("val_truth must match val_queries");
  }
  const Traj2HashConfig& cfg = model_->config();
  // M clamped so each anchor can draw M distinct other seeds.
  const int m = std::min(cfg.samples_per_anchor, ((n - 1) / 2) * 2);
  if (m < 2) return Status::InvalidArgument("too few seeds for sampling");

  const std::vector<double> sim =
      SimilarityFromDistances(data.seed_distances, n, cfg.theta);

  // Rank every seed's neighbours once (ascending exact distance).
  std::vector<std::vector<int>> ranked(n);
  for (int i = 0; i < n; ++i) {
    std::vector<int>& order = ranked[i];
    order.reserve(n - 1);
    for (int j = 0; j < n; ++j) {
      if (j != i) order.push_back(j);
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return data.seed_distances[static_cast<size_t>(i) * n + a] <
             data.seed_distances[static_cast<size_t>(i) * n + b];
    });
  }

  // Fast triplet generation over the unlabelled corpus (§IV-F).
  std::unique_ptr<FastTripletGenerator> triplet_gen;
  if (cfg.use_triplets && !data.triplet_corpus.empty()) {
    triplet_gen = std::make_unique<FastTripletGenerator>(
        model_->coarse_grid(), data.triplet_corpus);
    if (triplet_gen->num_multi_clusters() == 0) triplet_gen.reset();
  }

  nn::Adam optimizer(model_->TrainableParameters(),
                     nn::AdamOptions{.lr = cfg.lr});
  EmbeddingCache cache(*model_, data.seeds);

  TrainReport report;
  std::vector<std::vector<float>> best_snapshot;
  std::vector<int> anchor_order(n);
  std::iota(anchor_order.begin(), anchor_order.end(), 0);
  model_->set_beta(cfg.beta_init);

  // Validates in both spaces and snapshots the best combined epoch.
  auto validate_and_snapshot = [&](EpochStats& stats, int epoch,
                                   const auto& embed_queries,
                                   const auto& embed_db) {
    const std::vector<std::vector<float>> q_emb = embed_queries();
    const std::vector<std::vector<float>> db_emb = embed_db();
    stats.val_hr10 =
        eval::EvaluateEuclidean(q_emb, db_emb, data.val_truth).hr10;
    std::vector<search::Code> q_codes, db_codes;
    q_codes.reserve(q_emb.size());
    db_codes.reserve(db_emb.size());
    for (const auto& e : q_emb) q_codes.push_back(search::PackSigns(e));
    for (const auto& e : db_emb) db_codes.push_back(search::PackSigns(e));
    stats.val_hamming_hr10 =
        eval::EvaluateHamming(q_codes, db_codes, data.val_truth).hr10;
    const double combined = stats.val_hr10 + stats.val_hamming_hr10;
    if (combined > report.best_val_hr10) {
      report.best_val_hr10 = combined;
      report.best_epoch = epoch;
      best_snapshot = model_->SnapshotParameters();
    }
  };

  // ---------------------------------------------------------------------
  // Phase 1: joint training of the full model (encoder + hash layer).
  // ---------------------------------------------------------------------
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    EpochStats stats;
    int wmse_terms = 0, rank_terms = 0, triplet_terms = 0;
    rng.Shuffle(anchor_order);
    for (int start = 0; start < n; start += cfg.batch_size) {
      const int end = std::min(n, start + cfg.batch_size);
      cache.Clear();
      Tensor wmse_loss, rank_loss, trip_loss;
      int batch_pairs = 0, batch_rank_pairs = 0, batch_triplets = 0;
      for (int a = start; a < end; ++a) {
        const int anchor = anchor_order[a];
        const std::vector<int> samples =
            SelectSamples(ranked, sim, anchor, n, m, rng);
        const Tensor h_a = cache.Embedding(anchor);
        for (size_t j = 0; j < samples.size(); ++j) {
          const int s = samples[j];
          // Eq. 17: r_j = 1/(rank+1) emphasises the most similar samples.
          const Tensor term = WmseTerm(
              h_a, cache.Embedding(s),
              static_cast<float>(sim[static_cast<size_t>(anchor) * n + s]),
              1.0f / static_cast<float>(j + 1));
          wmse_loss = wmse_loss ? nn::Add(wmse_loss, term) : term;
          ++batch_pairs;
        }
        if (cfg.gamma > 0.0f) {
          // Eq. 18/19 on relaxed codes; pair the j-th most similar with the
          // j-th least similar sample (adjacent ranks are near-ties).
          const Tensor z_a = cache.Code(anchor);
          const int half = static_cast<int>(samples.size()) / 2;
          for (int p = 0; p < half; ++p) {
            auto [pos, neg] = PairAt(samples, p, cfg.cross_pairing);
            if (sim[static_cast<size_t>(anchor) * n + pos] <
                sim[static_cast<size_t>(anchor) * n + neg]) {
              std::swap(pos, neg);
            }
            const Tensor term = RankingHinge(z_a, cache.Code(pos),
                                             cache.Code(neg), cfg.alpha);
            rank_loss = rank_loss ? nn::Add(rank_loss, term) : term;
            ++batch_rank_pairs;
          }
        }
      }
      if (cfg.gamma > 0.0f && triplet_gen != nullptr) {
        // Eq. 20 on fast-generated triplets.
        const std::vector<Triplet> triplets =
            triplet_gen->Generate(options_.triplets_per_step, rng);
        for (const Triplet& t : triplets) {
          const Tensor z_a = model_->RelaxedCode(
              model_->EncodeContinuous(data.triplet_corpus[t.anchor]));
          const Tensor z_p = model_->RelaxedCode(
              model_->EncodeContinuous(data.triplet_corpus[t.positive]));
          const Tensor z_n = model_->RelaxedCode(
              model_->EncodeContinuous(data.triplet_corpus[t.negative]));
          const Tensor term = RankingHinge(z_a, z_p, z_n, cfg.alpha);
          trip_loss = trip_loss ? nn::Add(trip_loss, term) : term;
          ++batch_triplets;
        }
        report.num_triplets_used += batch_triplets;
      }

      // Eq. 21: L = L_s + gamma * (L_r + L_t); each component is averaged
      // over its own term count so the balance is batch-size independent.
      Tensor total;
      if (wmse_loss) {
        total = nn::Scale(wmse_loss, 1.0f / std::max(1, batch_pairs));
        stats.wmse += wmse_loss->value()[0];
        wmse_terms += batch_pairs;
      }
      if (rank_loss) {
        const Tensor scaled =
            nn::Scale(rank_loss, cfg.gamma / std::max(1, batch_rank_pairs));
        total = total ? nn::Add(total, scaled) : scaled;
        stats.rank_loss += rank_loss->value()[0];
        rank_terms += batch_rank_pairs;
      }
      if (trip_loss) {
        const Tensor scaled =
            nn::Scale(trip_loss, cfg.gamma / std::max(1, batch_triplets));
        total = total ? nn::Add(total, scaled) : scaled;
        stats.triplet_loss += trip_loss->value()[0];
        triplet_terms += batch_triplets;
      }
      if (total) {
        nn::Backward(total);
        optimizer.Step();
      }
      cache.Clear();
    }
    if (wmse_terms > 0) stats.wmse /= wmse_terms;
    if (rank_terms > 0) stats.rank_loss /= rank_terms;
    if (triplet_terms > 0) stats.triplet_loss /= triplet_terms;

    // HashNet continuation: sharpen tanh(beta*) every epoch.
    model_->set_beta(model_->beta() + cfg.beta_growth);

    const bool validate =
        !data.val_queries.empty() &&
        (epoch % options_.val_interval == 0 || epoch + 1 == cfg.epochs);
    if (validate) {
      validate_and_snapshot(
          stats, epoch, [&] { return EmbedAll(*model_, data.val_queries); },
          [&] { return EmbedAll(*model_, data.val_db); });
    }
    report.epochs.push_back(stats);
  }
  if (!best_snapshot.empty()) model_->RestoreParameters(best_snapshot);

  // ---------------------------------------------------------------------
  // Phase 2: projector refinement on cached features. The joint phase is a
  // truncated version of the paper's 100-epoch schedule; this continues the
  // Eq. 21 objective for the hash layer only (encoder frozen), which costs
  // a projector matmul per sample instead of a full encode (DESIGN.md §6).
  // ---------------------------------------------------------------------
  if (options_.refine_epochs > 0) {
    auto cache_features = [&](const traj::Trajectory& t) -> FusedFeatures {
      const auto [h, h_r] = model_->EncodeFused(t);
      return {nn::Detach(h), h_r ? nn::Detach(h_r) : nullptr};
    };
    std::vector<FusedFeatures> seed_feats;
    seed_feats.reserve(n);
    for (const auto& t : data.seeds) seed_feats.push_back(cache_features(t));

    // Subsample the triplet corpus, cache its features, re-cluster it.
    std::vector<FusedFeatures> corpus_feats;
    std::unique_ptr<FastTripletGenerator> refine_gen;
    if (cfg.use_triplets && cfg.gamma > 0.0f &&
        !data.triplet_corpus.empty() && options_.refine_triplets_per_epoch > 0) {
      const int take =
          std::min<int>(options_.refine_corpus_size,
                        static_cast<int>(data.triplet_corpus.size()));
      std::vector<traj::Trajectory> subset;
      subset.reserve(take);
      for (const int idx : rng.SampleWithoutReplacement(
               static_cast<int>(data.triplet_corpus.size()), take)) {
        subset.push_back(data.triplet_corpus[idx]);
      }
      refine_gen = std::make_unique<FastTripletGenerator>(
          model_->coarse_grid(), subset);
      if (refine_gen->num_multi_clusters() == 0) {
        refine_gen.reset();
      } else {
        corpus_feats.reserve(subset.size());
        for (const auto& t : subset) {
          corpus_feats.push_back(cache_features(t));
        }
      }
    }

    std::vector<FusedFeatures> val_query_feats, val_db_feats;
    val_query_feats.reserve(data.val_queries.size());
    val_db_feats.reserve(data.val_db.size());
    for (const auto& t : data.val_queries) {
      val_query_feats.push_back(cache_features(t));
    }
    for (const auto& t : data.val_db) val_db_feats.push_back(cache_features(t));
    auto project_all = [&](const std::vector<FusedFeatures>& feats) {
      std::vector<std::vector<float>> out;
      out.reserve(feats.size());
      for (const FusedFeatures& f : feats) {
        out.push_back(model_->ProjectFused(f.first, f.second)->value());
      }
      return out;
    };

    nn::Adam refine_opt(model_->ProjectorParameters(),
                        nn::AdamOptions{.lr = cfg.lr});
    auto relaxed = [&](const FusedFeatures& f) {
      return model_->RelaxedCode(model_->ProjectFused(f.first, f.second));
    };

    for (int epoch = 0; epoch < options_.refine_epochs; ++epoch) {
      EpochStats stats;
      int wmse_terms = 0, rank_terms = 0, triplet_terms = 0;
      rng.Shuffle(anchor_order);
      const int steps = (n + cfg.batch_size - 1) / cfg.batch_size;
      const int triplets_per_step =
          refine_gen ? std::max(1, options_.refine_triplets_per_epoch / steps)
                     : 0;
      for (int start = 0; start < n; start += cfg.batch_size) {
        const int end = std::min(n, start + cfg.batch_size);
        Tensor wmse_loss, rank_loss, trip_loss;
        int batch_pairs = 0, batch_rank_pairs = 0, batch_triplets = 0;
        for (int a = start; a < end; ++a) {
          const int anchor = anchor_order[a];
          const std::vector<int> samples =
              SelectSamples(ranked, sim, anchor, n, m, rng);
          const Tensor h_a = model_->ProjectFused(seed_feats[anchor].first,
                                                  seed_feats[anchor].second);
          for (size_t j = 0; j < samples.size(); ++j) {
            const int s = samples[j];
            const Tensor h_s = model_->ProjectFused(seed_feats[s].first,
                                                    seed_feats[s].second);
            const Tensor term = WmseTerm(
                h_a, h_s,
                static_cast<float>(sim[static_cast<size_t>(anchor) * n + s]),
                1.0f / static_cast<float>(j + 1));
            wmse_loss = wmse_loss ? nn::Add(wmse_loss, term) : term;
            ++batch_pairs;
          }
          if (cfg.gamma > 0.0f) {
            const Tensor z_a = relaxed(seed_feats[anchor]);
            const int half = static_cast<int>(samples.size()) / 2;
            for (int p = 0; p < half; ++p) {
              auto [pos, neg] = PairAt(samples, p, cfg.cross_pairing);
              if (sim[static_cast<size_t>(anchor) * n + pos] <
                  sim[static_cast<size_t>(anchor) * n + neg]) {
                std::swap(pos, neg);
              }
              const Tensor term =
                  RankingHinge(z_a, relaxed(seed_feats[pos]),
                               relaxed(seed_feats[neg]), cfg.alpha);
              rank_loss = rank_loss ? nn::Add(rank_loss, term) : term;
              ++batch_rank_pairs;
            }
          }
        }
        if (refine_gen && cfg.gamma > 0.0f) {
          for (const Triplet& t :
               refine_gen->Generate(triplets_per_step, rng)) {
            const Tensor term = RankingHinge(
                relaxed(corpus_feats[t.anchor]), relaxed(corpus_feats[t.positive]),
                relaxed(corpus_feats[t.negative]), cfg.alpha);
            trip_loss = trip_loss ? nn::Add(trip_loss, term) : term;
            ++batch_triplets;
          }
          report.num_triplets_used += batch_triplets;
        }
        Tensor total;
        if (wmse_loss) {
          total = nn::Scale(wmse_loss, 1.0f / std::max(1, batch_pairs));
          stats.wmse += wmse_loss->value()[0];
          wmse_terms += batch_pairs;
        }
        if (rank_loss) {
          const Tensor scaled =
              nn::Scale(rank_loss, cfg.gamma / std::max(1, batch_rank_pairs));
          total = total ? nn::Add(total, scaled) : scaled;
          stats.rank_loss += rank_loss->value()[0];
          rank_terms += batch_rank_pairs;
        }
        if (trip_loss) {
          const Tensor scaled =
              nn::Scale(trip_loss, cfg.gamma / std::max(1, batch_triplets));
          total = total ? nn::Add(total, scaled) : scaled;
          stats.triplet_loss += trip_loss->value()[0];
          triplet_terms += batch_triplets;
        }
        if (total) {
          nn::Backward(total);
          refine_opt.Step();
        }
      }
      if (wmse_terms > 0) stats.wmse /= wmse_terms;
      if (rank_terms > 0) stats.rank_loss /= rank_terms;
      if (triplet_terms > 0) stats.triplet_loss /= triplet_terms;
      model_->set_beta(model_->beta() + cfg.beta_growth);

      const bool validate = !data.val_queries.empty() &&
                            (epoch % options_.val_interval == 0 ||
                             epoch + 1 == options_.refine_epochs);
      if (validate) {
        validate_and_snapshot(
            stats, cfg.epochs + epoch,
            [&] { return project_all(val_query_feats); },
            [&] { return project_all(val_db_feats); });
      }
      report.epochs.push_back(stats);
    }
    if (!best_snapshot.empty()) model_->RestoreParameters(best_snapshot);
  }
  return report;
}

std::vector<std::vector<float>> EmbedAll(
    const Traj2Hash& model, const std::vector<traj::Trajectory>& ts) {
  std::vector<std::vector<float>> out;
  out.reserve(ts.size());
  for (const traj::Trajectory& t : ts) out.push_back(model.Embed(t));
  return out;
}

std::vector<search::Code> HashAll(const Traj2Hash& model,
                                  const std::vector<traj::Trajectory>& ts) {
  std::vector<search::Code> out;
  out.reserve(ts.size());
  for (const traj::Trajectory& t : ts) out.push_back(model.HashCode(t));
  return out;
}

}  // namespace traj2hash::core
