#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <numeric>
#include <unordered_map>

#include "eval/metrics.h"
#include "nn/adam.h"
#include "nn/ops.h"

namespace traj2hash::core {

using nn::Tensor;

std::vector<double> SimilarityFromDistances(
    const std::vector<double>& distances, int n, float theta) {
  double sum = 0.0;
  int64_t count = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      sum += distances[static_cast<size_t>(i) * n + j];
      ++count;
    }
  }
  const double mean = count > 0 ? sum / count : 1.0;
  const double scale = mean > 0.0 ? 1.0 / mean : 1.0;
  std::vector<double> sim(distances.size());
  for (size_t i = 0; i < distances.size(); ++i) {
    sim[i] = std::exp(-static_cast<double>(theta) * distances[i] * scale);
  }
  return sim;
}

namespace {

/// Cached pre-projection features of one trajectory (h, h_r or null).
using FusedFeatures = std::pair<Tensor, Tensor>;

/// NeuTraj-style per-anchor sampling: the M/2 nearest seeds plus M/2 random
/// others, sorted by ground-truth similarity (most similar first).
std::vector<int> SelectSamples(const std::vector<std::vector<int>>& ranked,
                               const std::vector<double>& sim, int anchor,
                               int n, int m, Rng& rng) {
  std::vector<int> samples(ranked[anchor].begin(),
                           ranked[anchor].begin() + m / 2);
  const int tail = n - 1 - m / 2;
  for (const int e : rng.SampleWithoutReplacement(tail, m / 2)) {
    samples.push_back(ranked[anchor][m / 2 + e]);
  }
  std::sort(samples.begin(), samples.end(), [&](int x, int y) {
    return sim[static_cast<size_t>(anchor) * n + x] >
           sim[static_cast<size_t>(anchor) * n + y];
  });
  return samples;
}

/// Eq. 18 pair p of M/2: cross pairing matches the j-th most similar with
/// the j-th least similar; adjacent pairing follows the literal reading.
std::pair<int, int> PairAt(const std::vector<int>& samples, int p,
                           bool cross) {
  const int half = static_cast<int>(samples.size()) / 2;
  return cross ? std::make_pair(samples[p], samples[p + half])
               : std::make_pair(samples[2 * p], samples[2 * p + 1]);
}

/// Eq. 17 WMSE term between two [1, d] representations.
Tensor WmseTerm(const Tensor& h_a, const Tensor& h_s, float target,
                float weight) {
  const Tensor g = nn::Exp(nn::Scale(nn::EuclideanDistance(h_a, h_s), -1.0f));
  const Tensor err = nn::AddScalar(g, -target);
  return nn::Scale(nn::Mul(err, err), weight);
}

/// Eq. 19/20 hinge between relaxed codes.
Tensor RankingHinge(const Tensor& z_a, const Tensor& z_pos,
                    const Tensor& z_neg, float alpha) {
  return nn::Relu(nn::AddScalar(
      nn::Sub(nn::Dot(z_a, z_neg), nn::Dot(z_a, z_pos)), alpha));
}

/// Un-scaled loss sums contributed by one work unit, read by the main thread
/// after the batch barrier and folded into EpochStats in unit order.
struct UnitResult {
  double wmse = 0.0;
  double rank = 0.0;
  double trip = 0.0;
};

/// True when every unit's partial losses are finite. A single NaN/Inf unit
/// poisons the whole batch's gradient, so the check is all-or-nothing.
bool BatchFinite(const std::vector<UnitResult>& results) {
  for (const UnitResult& r : results) {
    if (!std::isfinite(r.wmse) || !std::isfinite(r.rank) ||
        !std::isfinite(r.trip)) {
      return false;
    }
  }
  return true;
}

/// Runs every task, on the pool when one is given. The serial path executes
/// the identical closures in submission order, so a single-threaded run is
/// the reference the pooled run must (and does) match bit-for-bit.
void RunTasks(std::vector<std::function<void()>> tasks, ThreadPool* pool) {
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (auto& task : tasks) task();
    return;
  }
  pool->RunAll(std::move(tasks));
}

}  // namespace

Trainer::Trainer(Traj2Hash* model, TrainerOptions options)
    : model_(model), options_(options) {
  T2H_CHECK(model != nullptr);
}

Result<TrainReport> Trainer::Fit(const TrainingData& data, Rng& rng) {
  const int n = static_cast<int>(data.seeds.size());
  if (n < 4) return Status::InvalidArgument("need at least 4 seeds");
  if (data.seed_distances.size() != static_cast<size_t>(n) * n) {
    return Status::InvalidArgument("seed_distances must be |seeds|^2");
  }
  if (data.val_truth.size() != data.val_queries.size()) {
    return Status::InvalidArgument("val_truth must match val_queries");
  }
  const Traj2HashConfig& cfg = model_->config();
  // M clamped so each anchor can draw M distinct other seeds.
  const int m = std::min(cfg.samples_per_anchor, ((n - 1) / 2) * 2);
  if (m < 2) return Status::InvalidArgument("too few seeds for sampling");

  const std::vector<double> sim =
      SimilarityFromDistances(data.seed_distances, n, cfg.theta);

  // Rank every seed's neighbours once (ascending exact distance).
  std::vector<std::vector<int>> ranked(n);
  for (int i = 0; i < n; ++i) {
    std::vector<int>& order = ranked[i];
    order.reserve(n - 1);
    for (int j = 0; j < n; ++j) {
      if (j != i) order.push_back(j);
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return data.seed_distances[static_cast<size_t>(i) * n + a] <
             data.seed_distances[static_cast<size_t>(i) * n + b];
    });
  }

  // Fast triplet generation over the unlabelled corpus (§IV-F).
  std::unique_ptr<FastTripletGenerator> triplet_gen;
  if (cfg.use_triplets && !data.triplet_corpus.empty()) {
    triplet_gen = std::make_unique<FastTripletGenerator>(
        model_->coarse_grid(), data.triplet_corpus);
    if (triplet_gen->num_multi_clusters() == 0) triplet_gen.reset();
  }

  nn::Adam optimizer(model_->TrainableParameters(),
                     nn::AdamOptions{.lr = cfg.lr});

  // One pool for the whole fit: per-unit training fan-out, feature caching
  // and bulk validation encodes all share it.
  std::unique_ptr<ThreadPool> pool;
  if (options_.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(options_.num_threads);
  }
  ThreadPool* pool_ptr = pool.get();
  // Every tensor gradients can reach, registered in each unit's sink.
  const std::vector<Tensor> all_params = model_->AllParameters();

  TrainReport report;
  // Divergence guard state, shared by both phases: consecutive batches whose
  // loss came back non-finite (and were therefore skipped).
  int consecutive_bad = 0;
  auto diverged = [this, &consecutive_bad]() -> Status {
    return Status::Internal(
        "training diverged: " + std::to_string(consecutive_bad) +
        " consecutive batches produced non-finite loss (learning rate too "
        "high?)");
  };
  std::vector<std::vector<float>> best_snapshot;
  std::vector<int> anchor_order(n);
  std::iota(anchor_order.begin(), anchor_order.end(), 0);
  model_->set_beta(cfg.beta_init);

  // Validates in both spaces and snapshots the best combined epoch.
  auto validate_and_snapshot = [&](EpochStats& stats, int epoch,
                                   const auto& embed_queries,
                                   const auto& embed_db) {
    const std::vector<std::vector<float>> q_emb = embed_queries();
    const std::vector<std::vector<float>> db_emb = embed_db();
    stats.val_hr10 =
        eval::EvaluateEuclidean(q_emb, db_emb, data.val_truth).hr10;
    std::vector<search::Code> q_codes, db_codes;
    q_codes.reserve(q_emb.size());
    db_codes.reserve(db_emb.size());
    for (const auto& e : q_emb) q_codes.push_back(search::PackSigns(e));
    for (const auto& e : db_emb) db_codes.push_back(search::PackSigns(e));
    stats.val_hamming_hr10 =
        eval::EvaluateHamming(q_codes, db_codes, data.val_truth).hr10;
    const double combined = stats.val_hr10 + stats.val_hamming_hr10;
    if (combined > report.best_val_hr10) {
      report.best_val_hr10 = combined;
      report.best_epoch = epoch;
      best_snapshot = model_->SnapshotParameters();
    }
  };

  // ---------------------------------------------------------------------
  // Phase 1: joint training of the full model (encoder + hash layer).
  //
  // Each batch decomposes into independent work units — one per anchor
  // (its WMSE pairs + ranking pairs) and one per fast triplet — that build
  // their own forward subgraph and run Backward with parameter grads
  // redirected into a per-unit GradSink. Units never share graph nodes, so
  // they can run on any thread; the main thread draws all random numbers
  // up front and reduces sinks + stats in unit order, which makes the whole
  // optimisation trajectory independent of the thread count.
  // ---------------------------------------------------------------------
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    EpochStats stats;
    int wmse_terms = 0, rank_terms = 0, triplet_terms = 0;
    rng.Shuffle(anchor_order);
    for (int start = 0; start < n; start += cfg.batch_size) {
      const int end = std::min(n, start + cfg.batch_size);
      const int batch_anchors = end - start;

      // All RNG draws happen here, in the serial loop's order.
      std::vector<std::vector<int>> batch_samples;
      batch_samples.reserve(batch_anchors);
      for (int a = start; a < end; ++a) {
        batch_samples.push_back(
            SelectSamples(ranked, sim, anchor_order[a], n, m, rng));
      }
      std::vector<Triplet> triplets;
      if (cfg.gamma > 0.0f && triplet_gen != nullptr) {
        triplets = triplet_gen->Generate(options_.triplets_per_step, rng);
      }

      // Eq. 21 weights: every term count is known before dispatch
      // (SelectSamples always returns m samples), so units can scale their
      // own partial losses.
      const int batch_pairs = batch_anchors * m;
      const int batch_rank_pairs =
          cfg.gamma > 0.0f ? batch_anchors * (m / 2) : 0;
      const int batch_triplets = static_cast<int>(triplets.size());
      const float wmse_w = 1.0f / static_cast<float>(std::max(1, batch_pairs));
      const float rank_w =
          cfg.gamma / static_cast<float>(std::max(1, batch_rank_pairs));
      const float trip_w =
          cfg.gamma / static_cast<float>(std::max(1, batch_triplets));

      const int num_units = batch_anchors + batch_triplets;
      std::deque<nn::GradSink> sinks;
      for (int u = 0; u < num_units; ++u) sinks.emplace_back(all_params);
      std::vector<UnitResult> results(num_units);
      std::vector<std::function<void()>> tasks;
      tasks.reserve(num_units);
      for (int u = 0; u < batch_anchors; ++u) {
        tasks.push_back([&, u] {
          nn::GradSink::Scope scope(&sinks[u]);
          const int anchor = anchor_order[start + u];
          const std::vector<int>& samples = batch_samples[u];
          // Unit-local caches: a seed appearing as several samples of THIS
          // anchor is encoded once; units never share subgraphs.
          std::unordered_map<int, Tensor> emb, codes;
          auto embedding = [&](int idx) -> const Tensor& {
            auto it = emb.find(idx);
            if (it == emb.end()) {
              it = emb.emplace(idx, model_->EncodeContinuous(data.seeds[idx]))
                       .first;
            }
            return it->second;
          };
          auto relaxed_code = [&](int idx) -> const Tensor& {
            auto it = codes.find(idx);
            if (it == codes.end()) {
              it = codes.emplace(idx, model_->RelaxedCode(embedding(idx)))
                       .first;
            }
            return it->second;
          };
          const Tensor h_a = embedding(anchor);
          Tensor wmse_sum, rank_sum;
          for (size_t j = 0; j < samples.size(); ++j) {
            const int s = samples[j];
            // Eq. 17: r_j = 1/(rank+1) emphasises the most similar samples.
            const Tensor term = WmseTerm(
                h_a, embedding(s),
                static_cast<float>(sim[static_cast<size_t>(anchor) * n + s]),
                1.0f / static_cast<float>(j + 1));
            wmse_sum = wmse_sum ? nn::Add(wmse_sum, term) : term;
          }
          if (cfg.gamma > 0.0f) {
            // Eq. 18/19 on relaxed codes; pair the j-th most similar with
            // the j-th least similar sample (adjacent ranks are near-ties).
            const Tensor z_a = relaxed_code(anchor);
            const int half = static_cast<int>(samples.size()) / 2;
            for (int p = 0; p < half; ++p) {
              auto [pos, neg] = PairAt(samples, p, cfg.cross_pairing);
              if (sim[static_cast<size_t>(anchor) * n + pos] <
                  sim[static_cast<size_t>(anchor) * n + neg]) {
                std::swap(pos, neg);
              }
              const Tensor term = RankingHinge(z_a, relaxed_code(pos),
                                               relaxed_code(neg), cfg.alpha);
              rank_sum = rank_sum ? nn::Add(rank_sum, term) : term;
            }
          }
          results[u].wmse = wmse_sum->value()[0];
          Tensor loss = nn::Scale(wmse_sum, wmse_w);
          if (rank_sum) {
            results[u].rank = rank_sum->value()[0];
            loss = nn::Add(loss, nn::Scale(rank_sum, rank_w));
          }
          nn::Backward(loss);
        });
      }
      for (int v = 0; v < batch_triplets; ++v) {
        const int u = batch_anchors + v;
        tasks.push_back([&, u, v] {
          nn::GradSink::Scope scope(&sinks[u]);
          // Eq. 20 on one fast-generated triplet.
          const Triplet& t = triplets[v];
          auto z = [&](int idx) {
            return model_->RelaxedCode(
                model_->EncodeContinuous(data.triplet_corpus[idx]));
          };
          const Tensor term =
              RankingHinge(z(t.anchor), z(t.positive), z(t.negative),
                           cfg.alpha);
          results[u].trip = term->value()[0];
          nn::Backward(nn::Scale(term, trip_w));
        });
      }
      report.num_triplets_used += batch_triplets;

      RunTasks(std::move(tasks), pool_ptr);
      // Divergence guard: drop the batch (sinks never accumulated, so the
      // poisoned gradients die with them) rather than step into NaN-land.
      if (!BatchFinite(results)) {
        optimizer.ZeroGrad();
        if (++consecutive_bad > std::max(0, options_.max_bad_steps)) {
          return diverged();
        }
        continue;
      }
      consecutive_bad = 0;
      // Fixed-order reduction: sinks then stats, both in unit order.
      for (nn::GradSink& sink : sinks) sink.AccumulateInto();
      for (const UnitResult& r : results) {
        stats.wmse += r.wmse;
        stats.rank_loss += r.rank;
        stats.triplet_loss += r.trip;
      }
      wmse_terms += batch_pairs;
      rank_terms += batch_rank_pairs;
      triplet_terms += batch_triplets;
      optimizer.Step();
    }
    if (wmse_terms > 0) stats.wmse /= wmse_terms;
    if (rank_terms > 0) stats.rank_loss /= rank_terms;
    if (triplet_terms > 0) stats.triplet_loss /= triplet_terms;

    // HashNet continuation: sharpen tanh(beta*) every epoch.
    model_->set_beta(model_->beta() + cfg.beta_growth);

    const bool validate =
        !data.val_queries.empty() &&
        (epoch % options_.val_interval == 0 || epoch + 1 == cfg.epochs);
    if (validate) {
      validate_and_snapshot(
          stats, epoch,
          [&] { return EmbedAll(*model_, data.val_queries, pool_ptr); },
          [&] { return EmbedAll(*model_, data.val_db, pool_ptr); });
    }
    report.epochs.push_back(stats);
  }
  if (!best_snapshot.empty()) model_->RestoreParameters(best_snapshot);

  // ---------------------------------------------------------------------
  // Phase 2: projector refinement on cached features. The joint phase is a
  // truncated version of the paper's 100-epoch schedule; this continues the
  // Eq. 21 objective for the hash layer only (encoder frozen), which costs
  // a projector matmul per sample instead of a full encode (DESIGN.md §6).
  // Batches decompose into units exactly like phase 1.
  // ---------------------------------------------------------------------
  if (options_.refine_epochs > 0) {
    // Feature caching is inference (detached outputs): fan it across the
    // pool with the tape disabled.
    auto cache_all = [&](const std::vector<traj::Trajectory>& ts) {
      std::vector<FusedFeatures> feats(ts.size());
      std::vector<std::function<void()>> tasks;
      tasks.reserve(ts.size());
      for (size_t i = 0; i < ts.size(); ++i) {
        tasks.push_back([&, i] {
          nn::NoGradGuard no_grad;
          const auto [h, h_r] = model_->EncodeFused(ts[i]);
          feats[i] = {nn::Detach(h), h_r ? nn::Detach(h_r) : nullptr};
        });
      }
      RunTasks(std::move(tasks), pool_ptr);
      return feats;
    };
    const std::vector<FusedFeatures> seed_feats = cache_all(data.seeds);

    // Subsample the triplet corpus, cache its features, re-cluster it.
    std::vector<FusedFeatures> corpus_feats;
    std::unique_ptr<FastTripletGenerator> refine_gen;
    if (cfg.use_triplets && cfg.gamma > 0.0f &&
        !data.triplet_corpus.empty() && options_.refine_triplets_per_epoch > 0) {
      const int take =
          std::min<int>(options_.refine_corpus_size,
                        static_cast<int>(data.triplet_corpus.size()));
      std::vector<traj::Trajectory> subset;
      subset.reserve(take);
      for (const int idx : rng.SampleWithoutReplacement(
               static_cast<int>(data.triplet_corpus.size()), take)) {
        subset.push_back(data.triplet_corpus[idx]);
      }
      refine_gen = std::make_unique<FastTripletGenerator>(
          model_->coarse_grid(), subset);
      if (refine_gen->num_multi_clusters() == 0) {
        refine_gen.reset();
      } else {
        corpus_feats = cache_all(subset);
      }
    }

    const std::vector<FusedFeatures> val_query_feats =
        cache_all(data.val_queries);
    const std::vector<FusedFeatures> val_db_feats = cache_all(data.val_db);
    auto project_all = [&](const std::vector<FusedFeatures>& feats) {
      std::vector<std::vector<float>> out(feats.size());
      std::vector<std::function<void()>> tasks;
      tasks.reserve(feats.size());
      for (size_t i = 0; i < feats.size(); ++i) {
        tasks.push_back([&, i] {
          nn::NoGradGuard no_grad;
          out[i] = model_->ProjectFused(feats[i].first, feats[i].second)
                       ->value();
        });
      }
      RunTasks(std::move(tasks), pool_ptr);
      return out;
    };

    nn::Adam refine_opt(model_->ProjectorParameters(),
                        nn::AdamOptions{.lr = cfg.lr});
    auto relaxed = [&](const FusedFeatures& f) {
      return model_->RelaxedCode(model_->ProjectFused(f.first, f.second));
    };

    for (int epoch = 0; epoch < options_.refine_epochs; ++epoch) {
      EpochStats stats;
      int wmse_terms = 0, rank_terms = 0, triplet_terms = 0;
      rng.Shuffle(anchor_order);
      const int steps = (n + cfg.batch_size - 1) / cfg.batch_size;
      const int triplets_per_step =
          refine_gen ? std::max(1, options_.refine_triplets_per_epoch / steps)
                     : 0;
      for (int start = 0; start < n; start += cfg.batch_size) {
        const int end = std::min(n, start + cfg.batch_size);
        const int batch_anchors = end - start;

        std::vector<std::vector<int>> batch_samples;
        batch_samples.reserve(batch_anchors);
        for (int a = start; a < end; ++a) {
          batch_samples.push_back(
              SelectSamples(ranked, sim, anchor_order[a], n, m, rng));
        }
        std::vector<Triplet> triplets;
        if (refine_gen && cfg.gamma > 0.0f) {
          triplets = refine_gen->Generate(triplets_per_step, rng);
        }

        const int batch_pairs = batch_anchors * m;
        const int batch_rank_pairs =
            cfg.gamma > 0.0f ? batch_anchors * (m / 2) : 0;
        const int batch_triplets = static_cast<int>(triplets.size());
        const float wmse_w =
            1.0f / static_cast<float>(std::max(1, batch_pairs));
        const float rank_w =
            cfg.gamma / static_cast<float>(std::max(1, batch_rank_pairs));
        const float trip_w =
            cfg.gamma / static_cast<float>(std::max(1, batch_triplets));

        const int num_units = batch_anchors + batch_triplets;
        std::deque<nn::GradSink> sinks;
        for (int u = 0; u < num_units; ++u) sinks.emplace_back(all_params);
        std::vector<UnitResult> results(num_units);
        std::vector<std::function<void()>> tasks;
        tasks.reserve(num_units);
        for (int u = 0; u < batch_anchors; ++u) {
          tasks.push_back([&, u] {
            nn::GradSink::Scope scope(&sinks[u]);
            const int anchor = anchor_order[start + u];
            const std::vector<int>& samples = batch_samples[u];
            const Tensor h_a = model_->ProjectFused(
                seed_feats[anchor].first, seed_feats[anchor].second);
            Tensor wmse_sum, rank_sum;
            for (size_t j = 0; j < samples.size(); ++j) {
              const int s = samples[j];
              const Tensor h_s = model_->ProjectFused(seed_feats[s].first,
                                                      seed_feats[s].second);
              const Tensor term = WmseTerm(
                  h_a, h_s,
                  static_cast<float>(
                      sim[static_cast<size_t>(anchor) * n + s]),
                  1.0f / static_cast<float>(j + 1));
              wmse_sum = wmse_sum ? nn::Add(wmse_sum, term) : term;
            }
            if (cfg.gamma > 0.0f) {
              const Tensor z_a = relaxed(seed_feats[anchor]);
              const int half = static_cast<int>(samples.size()) / 2;
              for (int p = 0; p < half; ++p) {
                auto [pos, neg] = PairAt(samples, p, cfg.cross_pairing);
                if (sim[static_cast<size_t>(anchor) * n + pos] <
                    sim[static_cast<size_t>(anchor) * n + neg]) {
                  std::swap(pos, neg);
                }
                const Tensor term =
                    RankingHinge(z_a, relaxed(seed_feats[pos]),
                                 relaxed(seed_feats[neg]), cfg.alpha);
                rank_sum = rank_sum ? nn::Add(rank_sum, term) : term;
              }
            }
            results[u].wmse = wmse_sum->value()[0];
            Tensor loss = nn::Scale(wmse_sum, wmse_w);
            if (rank_sum) {
              results[u].rank = rank_sum->value()[0];
              loss = nn::Add(loss, nn::Scale(rank_sum, rank_w));
            }
            nn::Backward(loss);
          });
        }
        for (int v = 0; v < batch_triplets; ++v) {
          const int u = batch_anchors + v;
          tasks.push_back([&, u, v] {
            nn::GradSink::Scope scope(&sinks[u]);
            const Triplet& t = triplets[v];
            const Tensor term = RankingHinge(relaxed(corpus_feats[t.anchor]),
                                             relaxed(corpus_feats[t.positive]),
                                             relaxed(corpus_feats[t.negative]),
                                             cfg.alpha);
            results[u].trip = term->value()[0];
            nn::Backward(nn::Scale(term, trip_w));
          });
        }
        report.num_triplets_used += batch_triplets;

        RunTasks(std::move(tasks), pool_ptr);
        if (!BatchFinite(results)) {
          refine_opt.ZeroGrad();
          if (++consecutive_bad > std::max(0, options_.max_bad_steps)) {
            return diverged();
          }
          continue;
        }
        consecutive_bad = 0;
        for (nn::GradSink& sink : sinks) sink.AccumulateInto();
        for (const UnitResult& r : results) {
          stats.wmse += r.wmse;
          stats.rank_loss += r.rank;
          stats.triplet_loss += r.trip;
        }
        wmse_terms += batch_pairs;
        rank_terms += batch_rank_pairs;
        triplet_terms += batch_triplets;
        refine_opt.Step();
      }
      if (wmse_terms > 0) stats.wmse /= wmse_terms;
      if (rank_terms > 0) stats.rank_loss /= rank_terms;
      if (triplet_terms > 0) stats.triplet_loss /= triplet_terms;
      model_->set_beta(model_->beta() + cfg.beta_growth);

      const bool validate = !data.val_queries.empty() &&
                            (epoch % options_.val_interval == 0 ||
                             epoch + 1 == options_.refine_epochs);
      if (validate) {
        validate_and_snapshot(
            stats, cfg.epochs + epoch,
            [&] { return project_all(val_query_feats); },
            [&] { return project_all(val_db_feats); });
      }
      report.epochs.push_back(stats);
    }
    if (!best_snapshot.empty()) model_->RestoreParameters(best_snapshot);
  }
  return report;
}

std::vector<std::vector<float>> EmbedAll(const Traj2Hash& model,
                                         const std::vector<traj::Trajectory>& ts,
                                         ThreadPool* pool) {
  return model.EmbedBatch(ts, pool);
}

std::vector<search::Code> HashAll(const Traj2Hash& model,
                                  const std::vector<traj::Trajectory>& ts,
                                  ThreadPool* pool) {
  const std::vector<std::vector<float>> emb = model.EmbedBatch(ts, pool);
  std::vector<search::Code> out;
  out.reserve(emb.size());
  for (const auto& e : emb) out.push_back(search::PackSigns(e));
  return out;
}

}  // namespace traj2hash::core
