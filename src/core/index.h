#ifndef TRAJ2HASH_CORE_INDEX_H_
#define TRAJ2HASH_CORE_INDEX_H_

#include <memory>
#include <vector>

#include "core/model.h"
#include "search/hamming_index.h"
#include "search/knn.h"

namespace traj2hash::core {

/// Convenience façade for serving a live trajectory database with a trained
/// Traj2Hash model: trajectories are embedded and hashed once on insertion,
/// and queries run against either space without touching the raw
/// trajectories again.
///
///   TrajectoryIndex index(model.get());
///   index.AddAll(database);
///   auto hits = index.QueryHamming(query, 10);   // Hamming-Hybrid
///   auto exact = index.QueryEuclidean(query, 10);  // latent-space BF
class TrajectoryIndex {
 public:
  /// `model` must be trained and outlive the index.
  explicit TrajectoryIndex(const Traj2Hash* model);

  /// Embeds, hashes and stores one trajectory; returns its id (insertion
  /// order, the index used in query results).
  int Add(const traj::Trajectory& t);

  /// Bulk insertion.
  void AddAll(const std::vector<traj::Trajectory>& ts);

  /// Top-k by Euclidean distance between embeddings (brute force over the
  /// stored vectors).
  std::vector<search::Neighbor> QueryEuclidean(const traj::Trajectory& query,
                                               int k) const;

  /// Top-k by Hamming distance using the Hamming-Hybrid strategy (§V-E).
  std::vector<search::Neighbor> QueryHamming(const traj::Trajectory& query,
                                             int k) const;

  int size() const { return static_cast<int>(embeddings_.size()); }

  const std::vector<std::vector<float>>& embeddings() const {
    return embeddings_;
  }

 private:
  const Traj2Hash* model_;
  std::vector<std::vector<float>> embeddings_;
  // Created cold (empty) on the first insertion, when the code width is
  // known; extended incrementally afterwards.
  std::unique_ptr<search::HammingIndex> hamming_;
};

}  // namespace traj2hash::core

#endif  // TRAJ2HASH_CORE_INDEX_H_
