#ifndef TRAJ2HASH_CORE_INDEX_H_
#define TRAJ2HASH_CORE_INDEX_H_

#include <memory>
#include <vector>

#include "common/check.h"
#include "core/model.h"
#include "search/flat_storage.h"
#include "search/hamming_index.h"
#include "search/knn.h"
#include "search/mih.h"
#include "search/strategy.h"

namespace traj2hash::core {

/// Convenience façade for serving a live trajectory database with a trained
/// Traj2Hash model: trajectories are embedded and hashed once on insertion,
/// and queries run against either space without touching the raw
/// trajectories again. Embeddings live in a flat row-major matrix and codes
/// in the selected Hamming engine (`search::SearchStrategy`); all strategies
/// return bit-identical results, so the choice is purely a speed knob.
///
///   TrajectoryIndex index(model.get());            // MIH engine (default)
///   index.AddAll(database);
///   auto hits = index.QueryHamming(query, 10);
///   auto exact = index.QueryEuclidean(query, 10);  // latent-space BF
class TrajectoryIndex {
 public:
  /// `model` must be trained and outlive the index. `mih_substrings` tunes
  /// the MIH substring count (0 = ceil(B/16)); ignored by other strategies.
  explicit TrajectoryIndex(
      const Traj2Hash* model,
      search::SearchStrategy strategy = search::SearchStrategy::kMih,
      int mih_substrings = 0);

  /// Embeds, hashes and stores one trajectory; returns its id (insertion
  /// order, the index used in query results).
  int Add(const traj::Trajectory& t);

  /// Bulk insertion.
  void AddAll(const std::vector<traj::Trajectory>& ts);

  /// Top-k by Euclidean distance between embeddings (blocked brute-force
  /// scan over the flat matrix).
  std::vector<search::Neighbor> QueryEuclidean(const traj::Trajectory& query,
                                               int k) const;

  /// Top-k by Hamming distance through the configured strategy; results are
  /// identical across strategies (§V-E exactness, DESIGN.md §9).
  std::vector<search::Neighbor> QueryHamming(const traj::Trajectory& query,
                                             int k) const;

  search::SearchStrategy strategy() const { return strategy_; }

  int size() const { return size_; }

  /// Flat row-major view of the stored embeddings.
  const search::FlatMatrix& embeddings() const {
    T2H_CHECK_MSG(embeddings_ != nullptr, "index is empty");
    return *embeddings_;
  }

 private:
  const Traj2Hash* model_;
  const search::SearchStrategy strategy_;
  const int mih_substrings_;
  int size_ = 0;
  // Created cold (empty) on the first insertion, when the embedding width /
  // code width is known; extended incrementally afterwards. Exactly one of
  // hamming_/mih_ is live, matching `strategy_`.
  std::unique_ptr<search::FlatMatrix> embeddings_;
  std::unique_ptr<search::HammingIndex> hamming_;
  std::unique_ptr<search::MihIndex> mih_;
};

}  // namespace traj2hash::core

#endif  // TRAJ2HASH_CORE_INDEX_H_
