#ifndef TRAJ2HASH_CORE_INDEX_H_
#define TRAJ2HASH_CORE_INDEX_H_

#include <memory>
#include <vector>

#include "common/check.h"
#include "core/model.h"
#include "quant/quantized_matrix.h"
#include "quant/rerank.h"
#include "search/flat_storage.h"
#include "search/hamming_index.h"
#include "search/knn.h"
#include "search/mih.h"
#include "search/strategy.h"

namespace traj2hash::core {

/// Convenience façade for serving a live trajectory database with a trained
/// Traj2Hash model: trajectories are embedded and hashed once on insertion,
/// and queries run against either space without touching the raw
/// trajectories again. Embeddings live in a flat row-major matrix and codes
/// in the selected Hamming engine (`search::SearchStrategy`); all strategies
/// return bit-identical results, so the choice is purely a speed knob.
///
///   TrajectoryIndex index(model.get());            // MIH engine (default)
///   index.AddAll(database);
///   auto hits = index.QueryHamming(query, 10);
///   auto exact = index.QueryEuclidean(query, 10);  // latent-space BF
///
/// With `quantize` the embedding store is the per-dimension int8
/// QuantizedMatrix (~4× fewer resident bytes, DESIGN.md §17):
/// QueryEuclidean then runs the two-stage re-ranker — quantized-L2 scan
/// plus exact float re-check of the boundary band — and is bit-identical to
/// a float scan over the dequantized lattice. A row outside the running
/// calibration range triggers a transparent requantization of the store
/// (this façade has no compaction cycle to rebuild scales on).
class TrajectoryIndex {
 public:
  /// `model` must be trained and outlive the index. `mih_substrings` tunes
  /// the MIH substring count (0 = ceil(B/16)); ignored by other strategies.
  explicit TrajectoryIndex(
      const Traj2Hash* model,
      search::SearchStrategy strategy = search::SearchStrategy::kMih,
      int mih_substrings = 0, bool quantize = false);

  /// Embeds, hashes and stores one trajectory; returns its id (insertion
  /// order, the index used in query results).
  int Add(const traj::Trajectory& t);

  /// Bulk insertion.
  void AddAll(const std::vector<traj::Trajectory>& ts);

  /// Top-k by Euclidean distance between embeddings (blocked brute-force
  /// scan over the flat matrix; in quantize mode the two-stage re-ranker
  /// over the whole quantized store).
  std::vector<search::Neighbor> QueryEuclidean(const traj::Trajectory& query,
                                               int k) const;

  /// Top-k by Hamming distance through the configured strategy; results are
  /// identical across strategies (§V-E exactness, DESIGN.md §9) and
  /// unaffected by quantization (codes are never quantized).
  std::vector<search::Neighbor> QueryHamming(const traj::Trajectory& query,
                                             int k) const;

  search::SearchStrategy strategy() const { return strategy_; }
  bool quantize() const { return quantize_; }

  int size() const { return size_; }

  /// Bytes the embedding store keeps resident (float rows or int8 rows +
  /// params) — the gauge behind the quantized store's ~4× cut.
  size_t embedding_resident_bytes() const;

  /// Full-store requantizations triggered by out-of-range insertions
  /// (quantize mode only).
  int requantizations() const { return requantizations_; }

  /// Two-stage re-ranker counters (quantize mode; zeros otherwise).
  quant::RerankSnapshot rerank_stats() const {
    return quant::SnapshotCounters(rerank_counters_);
  }

  /// Flat row-major view of the stored embeddings (float mode only — the
  /// quantized store has no float rows to view).
  const search::FlatMatrix& embeddings() const {
    T2H_CHECK_MSG(embeddings_ != nullptr, "index is empty or quantized");
    return *embeddings_;
  }

  /// Dequantized lattice values of row `id` (quantize mode) or the stored
  /// floats (float mode) — what QueryEuclidean distances are measured
  /// against.
  std::vector<float> EmbeddingAt(int id) const;

 private:
  /// Expands the calibration range to cover `embedding` (quantize mode),
  /// requantizing every stored row when it falls outside the current range.
  void CoverRange(const std::vector<float>& embedding);

  const Traj2Hash* model_;
  const search::SearchStrategy strategy_;
  const int mih_substrings_;
  const bool quantize_;
  int size_ = 0;
  int requantizations_ = 0;
  // Created cold (empty) on the first insertion, when the embedding width /
  // code width is known; extended incrementally afterwards. Exactly one of
  // hamming_/mih_ is live, matching `strategy_`, and exactly one of
  // embeddings_/quantized_ is live, matching `quantize_`.
  std::unique_ptr<search::FlatMatrix> embeddings_;
  std::unique_ptr<quant::QuantizedMatrix> quantized_;
  quant::QuantizationParams qparams_;
  std::vector<float> range_min_;  ///< running calibration range (quantize)
  std::vector<float> range_max_;
  mutable quant::RerankCounters rerank_counters_;
  std::unique_ptr<search::HammingIndex> hamming_;
  std::unique_ptr<search::MihIndex> mih_;
};

}  // namespace traj2hash::core

#endif  // TRAJ2HASH_CORE_INDEX_H_
