#include "core/triplets.h"

#include <algorithm>
#include <string>

#include "common/check.h"

namespace traj2hash::core {

FastTripletGenerator::FastTripletGenerator(
    const traj::Grid& coarse_grid,
    const std::vector<traj::Trajectory>& corpus)
    : corpus_size_(static_cast<int>(corpus.size())) {
  std::unordered_map<std::string, int> key_to_cluster;
  for (int i = 0; i < corpus_size_; ++i) {
    // Consecutive duplicates are collapsed so that two trajectories sampled
    // at different rates but tracing the same coarse cells still cluster.
    const traj::GridTrajectory g =
        coarse_grid.Map(corpus[i], /*dedup_consecutive=*/true);
    const std::string key = coarse_grid.SequenceKey(g);
    auto [it, inserted] =
        key_to_cluster.emplace(key, static_cast<int>(clusters_.size()));
    if (inserted) clusters_.emplace_back();
    clusters_[it->second].push_back(i);
  }
  double cumulative = 0.0;
  for (size_t c = 0; c < clusters_.size(); ++c) {
    const size_t size = clusters_[c].size();
    // `size < corpus` guarantees a negative outside the cluster exists.
    if (size >= 2 && static_cast<int>(size) < corpus_size_) {
      ++num_multi_clusters_;
      multi_cluster_ids_.push_back(static_cast<int>(c));
      // Weight by the number of ordered (anchor, positive) pairs.
      cumulative += static_cast<double>(size * (size - 1));
      multi_cluster_weight_.push_back(cumulative);
    }
  }
}

std::vector<Triplet> FastTripletGenerator::Generate(int count,
                                                    Rng& rng) const {
  std::vector<Triplet> out;
  if (multi_cluster_ids_.empty() || corpus_size_ < 3) return out;
  out.reserve(count);
  const double total = multi_cluster_weight_.back();
  while (static_cast<int>(out.size()) < count) {
    // Pick a cluster proportionally to its pair count.
    const double pick = rng.Uniform(0.0, total);
    const auto it = std::lower_bound(multi_cluster_weight_.begin(),
                                     multi_cluster_weight_.end(), pick);
    const size_t slot = static_cast<size_t>(
        std::min<std::ptrdiff_t>(it - multi_cluster_weight_.begin(),
                                 static_cast<std::ptrdiff_t>(
                                     multi_cluster_weight_.size()) - 1));
    const std::vector<int>& cluster = clusters_[multi_cluster_ids_[slot]];
    const int ai = rng.UniformInt(0, static_cast<int>(cluster.size()) - 1);
    int pi = rng.UniformInt(0, static_cast<int>(cluster.size()) - 2);
    if (pi >= ai) ++pi;
    // Negative: any corpus member outside the anchor's cluster.
    int neg = -1;
    do {
      neg = rng.UniformInt(0, corpus_size_ - 1);
    } while (std::find(cluster.begin(), cluster.end(), neg) != cluster.end());
    out.push_back(Triplet{cluster[ai], cluster[pi], neg});
  }
  return out;
}

}  // namespace traj2hash::core
