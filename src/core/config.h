#ifndef TRAJ2HASH_CORE_CONFIG_H_
#define TRAJ2HASH_CORE_CONFIG_H_

#include <string>

#include "common/status.h"

namespace traj2hash::core {

/// Read-out layer of the attention-based trajectory encoder (§IV-D and the
/// Fig. 4 study).
enum class ReadOut {
  kLowerBound,  ///< first-token embedding (Lemma 1 induced; paper default)
  kMean,        ///< mean pooling over all tokens (TrajGAT-style)
  kCls,         ///< learnable CLS token (BERT-style)
};

/// Hyper-parameters of the Traj2Hash model and its training objective.
/// Defaults follow §V-A5 (Parameter Settings).
struct Traj2HashConfig {
  // Model.
  int dim = 64;             ///< latent dimension d (= hash length d_h)
  int num_blocks = 2;       ///< m attention blocks
  int num_heads = 4;        ///< attention heads
  ReadOut read_out = ReadOut::kLowerBound;
  /// Extension beyond the paper (Eq. 12 uses bare residuals): pre-LN
  /// attention blocks. Off by default; bench_ext_layernorm ablates it.
  bool use_layer_norm = false;

  // Grid channels.
  double fine_cell_m = 50.0;     ///< grid trajectory cell size (§V-A1)
  double coarse_cell_m = 500.0;  ///< fast-triplet clustering cell size (§IV-F)

  // Objective.
  float theta = 8.0f;   ///< similarity smoothing in S = exp(-theta*D)/max
  float alpha = 5.0f;   ///< ranking margin (Eq. 18, default per §V-A5)
  /// Eq. 18 sample pairing: true pairs the j-th most similar with the j-th
  /// least similar (every pair informative; this repo's default, DESIGN.md
  /// §6); false pairs adjacent ranks (the literal reading of "group the M
  /// samples into M/2 pairs"). bench_ext_pairing ablates the choice.
  bool cross_pairing = true;
  float gamma = 6.0f;   ///< balance weight (Eq. 21, default per §V-A5)
  int samples_per_anchor = 10;  ///< M
  int batch_size = 20;          ///< WMSE batch size
  int triplet_batch_size = 500;
  int epochs = 100;
  float lr = 1e-3f;
  float beta_init = 1.0f;    ///< initial tanh(beta*) continuation sharpness
  float beta_growth = 1.0f;  ///< per-epoch additive growth of tanh(beta*)

  // Ablation switches (Table III): each "-X" variant of the paper also
  // removes the previous component; these are independent toggles, so the
  // cumulative variants are expressed by clearing several flags.
  bool use_grid_channel = true;  ///< -Grids clears this
  bool use_rev_aug = true;       ///< -RevAug clears this
  bool use_triplets = true;      ///< -Triplets clears this

  /// Validates ranges; returns InvalidArgument describing the first problem.
  Status Validate() const;
};

}  // namespace traj2hash::core

#endif  // TRAJ2HASH_CORE_CONFIG_H_
