#ifndef TRAJ2HASH_CORE_MODEL_H_
#define TRAJ2HASH_CORE_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/config.h"
#include "core/encoders.h"
#include "embedding/grid_embedding.h"
#include "search/code.h"
#include "traj/grid.h"
#include "traj/normalizer.h"

namespace traj2hash::core {

/// The Traj2Hash model (§IV): two-channel trajectory encoder + hash layer.
///
/// Construction fits the data-dependent pieces (Gaussian normaliser, fine and
/// coarse grids) on a corpus; `PretrainGrids` runs the NCE pre-training of
/// the decomposed grid representation (frozen afterwards); `Trainer` (see
/// trainer.h) optimises everything else end-to-end.
class Traj2Hash {
 public:
  /// Builds a model whose normaliser/grids are fitted on `corpus`.
  /// `corpus` is only used for statistics, not trained on. Returns
  /// InvalidArgument for bad configs or an empty corpus.
  static Result<std::unique_ptr<Traj2Hash>> Create(
      const Traj2HashConfig& config,
      const std::vector<traj::Trajectory>& corpus, Rng& rng);

  /// NCE pre-training of the decomposed grid embedding (§IV-C); the tables
  /// are frozen afterwards. Returns the final mean NCE loss. No-op returning
  /// 0 when the grid channel is ablated.
  double PretrainGrids(const embedding::GridPretrainOptions& options,
                       Rng& rng);

  /// Replaces the grid representation (Fig. 7 swaps in node2vec). Must be
  /// called before training; rebuilds the grid-channel MLP.
  void UseGridRepresentation(
      std::unique_ptr<embedding::GridRepresentation> representation,
      Rng& rng);

  /// Encodes a trajectory to its final representation h_f (Eq. 15) as a
  /// [1, dim] tensor attached to the autograd graph (for training).
  nn::Tensor EncodeContinuous(const traj::Trajectory& t) const;

  /// Fused pre-projection features of Eq. 14: `first` is h(T); `second` is
  /// h(T^r), or null when reverse augmentation is ablated. Exposed so the
  /// trainer can cache encoder outputs and cheaply refine the projector
  /// (see TrainerOptions::refine_epochs).
  std::pair<nn::Tensor, nn::Tensor> EncodeFused(
      const traj::Trajectory& t) const;

  /// Applies the hash-layer projection (Eq. 15) to fused features from
  /// EncodeFused: h_f = [W_p h, W_p h_r] (or the full-width projection when
  /// reverse augmentation is off; `h_r` must then be null).
  nn::Tensor ProjectFused(const nn::Tensor& h, const nn::Tensor& h_r) const;

  /// Parameters of the hash-layer projection only (W_p or its full-width
  /// ablation variant).
  std::vector<nn::Tensor> ProjectorParameters() const;

  /// Convenience: h_f values only (for retrieval). Runs in inference mode
  /// (NoGradGuard): no autograd tape is built, and the encode is read-only
  /// over parameters, so concurrent calls from pool workers are safe.
  std::vector<float> Embed(const traj::Trajectory& t) const;

  /// Embeds a whole corpus, fanning trajectories across `pool` (nullptr or a
  /// single-thread pool falls back to a serial loop). Output order matches
  /// input order regardless of scheduling.
  std::vector<std::vector<float>> EmbedBatch(
      const std::vector<traj::Trajectory>& ts, ThreadPool* pool) const;

  /// Training-time relaxed hash code tanh(beta * h_f) (HashNet
  /// continuation of Eq. 16).
  nn::Tensor RelaxedCode(const nn::Tensor& h_f) const;

  /// Inference-time binary code z = sign(h_f) (Eq. 16).
  search::Code HashCode(const traj::Trajectory& t) const;

  /// Continuation parameter beta; the trainer increases it every epoch.
  void set_beta(float beta) { beta_ = beta; }
  float beta() const { return beta_; }

  const Traj2HashConfig& config() const { return config_; }
  const traj::Grid& fine_grid() const { return fine_grid_; }
  const traj::Grid& coarse_grid() const { return coarse_grid_; }
  const traj::Normalizer& normalizer() const { return normalizer_; }

  /// All trainable parameters (grid tables excluded: they are frozen after
  /// pre-training, as the paper prescribes). Recomputed on every call so a
  /// grid-representation swap is reflected.
  std::vector<nn::Tensor> TrainableParameters() const;

  /// Every parameter tensor that can receive gradients during training —
  /// trainables plus the grid tables, which keep requires_grad even once
  /// frozen (an unfrozen table takes NCE-style grads through the encoder).
  /// This is the set the trainer registers in per-unit nn::GradSinks so that
  /// concurrent backward passes never touch a shared grad buffer directly.
  std::vector<nn::Tensor> AllParameters() const { return PersistentTensors(); }

  /// Deep copies of all parameter values (including frozen grid tables),
  /// used for best-on-validation model selection and Save().
  std::vector<std::vector<float>> SnapshotParameters() const;

  /// Restores values captured by SnapshotParameters(). Shapes must match.
  void RestoreParameters(const std::vector<std::vector<float>>& snapshot);

  /// Serialises parameter values (binary). The loading model must be built
  /// with the same config and corpus statistics.
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

 private:
  Traj2Hash(const Traj2HashConfig& config, traj::Normalizer normalizer,
            traj::Grid fine_grid, traj::Grid coarse_grid, Rng& rng);

  /// Fused single-direction embedding h (Eq. 14) of a trajectory.
  nn::Tensor EncodeOneDirection(const traj::Trajectory& t) const;

  /// Parameter tensors covered by snapshots/saves: trainables + grid tables.
  std::vector<nn::Tensor> PersistentTensors() const;

  Traj2HashConfig config_;
  traj::Normalizer normalizer_;
  traj::Grid fine_grid_;
  traj::Grid coarse_grid_;
  float beta_ = 1.0f;

  // Grid representation is intentionally NOT a registered child: its tables
  // are excluded from Parameters() because they are frozen after NCE.
  std::unique_ptr<embedding::DecomposedGridEmbedding> decomposed_grids_;
  std::unique_ptr<embedding::GridRepresentation> external_grids_;

  std::unique_ptr<GpsEncoder> gps_encoder_;
  std::unique_ptr<GridChannelEncoder> grid_encoder_;
  std::unique_ptr<nn::Linear> fuse_;       // MLP_f (Eq. 14)
  std::unique_ptr<nn::Linear> projector_;  // W_p (Eq. 15), dim -> dim/2
  std::unique_ptr<nn::Linear> projector_full_;  // used when rev-aug is off
};

}  // namespace traj2hash::core

#endif  // TRAJ2HASH_CORE_MODEL_H_
