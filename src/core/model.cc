#include "core/model.h"

#include <cstdio>
#include <cstring>

#include "common/crc32.h"
#include "common/file_util.h"
#include "common/serialize.h"
#include "nn/ops.h"

namespace traj2hash::core {

using nn::Tensor;

Result<std::unique_ptr<Traj2Hash>> Traj2Hash::Create(
    const Traj2HashConfig& config,
    const std::vector<traj::Trajectory>& corpus, Rng& rng) {
  if (Status s = config.Validate(); !s.ok()) return s;
  if (corpus.empty()) {
    return Status::InvalidArgument("corpus must be non-empty");
  }
  traj::Normalizer normalizer;
  normalizer.Fit(corpus);
  const traj::BoundingBox box = traj::ComputeBoundingBox(corpus);
  Result<traj::Grid> fine = traj::Grid::Create(box, config.fine_cell_m);
  if (!fine.ok()) return fine.status();
  Result<traj::Grid> coarse = traj::Grid::Create(box, config.coarse_cell_m);
  if (!coarse.ok()) return coarse.status();
  return std::unique_ptr<Traj2Hash>(new Traj2Hash(
      config, std::move(normalizer), fine.value(), coarse.value(), rng));
}

Traj2Hash::Traj2Hash(const Traj2HashConfig& config,
                     traj::Normalizer normalizer, traj::Grid fine_grid,
                     traj::Grid coarse_grid, Rng& rng)
    : config_(config),
      normalizer_(std::move(normalizer)),
      fine_grid_(fine_grid),
      coarse_grid_(coarse_grid) {
  gps_encoder_ = std::make_unique<GpsEncoder>(
      config.dim, config.num_blocks, config.num_heads, config.read_out, rng,
      config.use_layer_norm);
  if (config.use_grid_channel) {
    decomposed_grids_ = std::make_unique<embedding::DecomposedGridEmbedding>(
        fine_grid_.num_x(), fine_grid_.num_y(), config.dim, rng);
    grid_encoder_ = std::make_unique<GridChannelEncoder>(
        decomposed_grids_.get(), config.dim, rng);
    fuse_ = std::make_unique<nn::Linear>(2 * config.dim, config.dim, rng);
  }
  projector_ = std::make_unique<nn::Linear>(config.dim, config.dim / 2, rng,
                                            /*use_bias=*/false);
  projector_full_ = std::make_unique<nn::Linear>(config.dim, config.dim, rng,
                                                 /*use_bias=*/false);
}

double Traj2Hash::PretrainGrids(const embedding::GridPretrainOptions& options,
                                Rng& rng) {
  if (!config_.use_grid_channel || decomposed_grids_ == nullptr) return 0.0;
  return decomposed_grids_->Pretrain(options, rng);
}

void Traj2Hash::UseGridRepresentation(
    std::unique_ptr<embedding::GridRepresentation> representation, Rng& rng) {
  T2H_CHECK_MSG(config_.use_grid_channel,
                "grid channel is ablated; nothing to replace");
  external_grids_ = std::move(representation);
  decomposed_grids_.reset();
  grid_encoder_ = std::make_unique<GridChannelEncoder>(external_grids_.get(),
                                                       config_.dim, rng);
}

std::vector<Tensor> Traj2Hash::TrainableParameters() const {
  std::vector<Tensor> params = gps_encoder_->Parameters();
  auto append = [&params](const std::vector<Tensor>& more) {
    params.insert(params.end(), more.begin(), more.end());
  };
  if (grid_encoder_) append(grid_encoder_->Parameters());
  if (fuse_) append(fuse_->Parameters());
  if (config_.use_rev_aug) {
    append(projector_->Parameters());
  } else {
    append(projector_full_->Parameters());
  }
  return params;
}

Tensor Traj2Hash::EncodeOneDirection(const traj::Trajectory& t) const {
  T2H_CHECK(!t.empty());
  const Tensor h_l = gps_encoder_->Forward(normalizer_.Apply(t));
  if (!config_.use_grid_channel) return h_l;
  const traj::GridTrajectory g = fine_grid_.Map(t);
  const Tensor h_g = grid_encoder_->Forward(g.cells);
  // Eq. 14: h = MLP_f([h_l, h_g]).
  return fuse_->Forward(nn::ConcatCols(h_l, h_g));
}

Tensor Traj2Hash::EncodeContinuous(const traj::Trajectory& t) const {
  const auto [h, h_r] = EncodeFused(t);
  return ProjectFused(h, h_r);
}

std::pair<Tensor, Tensor> Traj2Hash::EncodeFused(
    const traj::Trajectory& t) const {
  const Tensor h = EncodeOneDirection(t);
  if (!config_.use_rev_aug) return {h, nullptr};
  return {h, EncodeOneDirection(traj::Reversed(t))};
}

Tensor Traj2Hash::ProjectFused(const Tensor& h, const Tensor& h_r) const {
  if (!config_.use_rev_aug) {
    T2H_CHECK(h_r == nullptr);
    return projector_full_->Forward(h);
  }
  T2H_CHECK(h_r != nullptr);
  // Eq. 15: h_f = [W_p h, W_p h_r] — Lemma 3 gives the reverse symmetric
  // property to the concatenated representation.
  return nn::ConcatCols(projector_->Forward(h), projector_->Forward(h_r));
}

std::vector<Tensor> Traj2Hash::ProjectorParameters() const {
  return config_.use_rev_aug ? projector_->Parameters()
                             : projector_full_->Parameters();
}

std::vector<float> Traj2Hash::Embed(const traj::Trajectory& t) const {
  nn::NoGradGuard no_grad;
  return EncodeContinuous(t)->value();
}

std::vector<std::vector<float>> Traj2Hash::EmbedBatch(
    const std::vector<traj::Trajectory>& ts, ThreadPool* pool) const {
  std::vector<std::vector<float>> out(ts.size());
  if (pool == nullptr || pool->num_threads() <= 1 || ts.size() <= 1) {
    for (size_t i = 0; i < ts.size(); ++i) out[i] = Embed(ts[i]);
    return out;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(ts.size());
  for (size_t i = 0; i < ts.size(); ++i) {
    tasks.push_back([this, &ts, &out, i] { out[i] = Embed(ts[i]); });
  }
  pool->RunAll(std::move(tasks));
  return out;
}

Tensor Traj2Hash::RelaxedCode(const Tensor& h_f) const {
  return nn::Tanh(nn::Scale(h_f, beta_));
}

search::Code Traj2Hash::HashCode(const traj::Trajectory& t) const {
  return search::PackSigns(Embed(t));
}

std::vector<Tensor> Traj2Hash::PersistentTensors() const {
  std::vector<Tensor> all = gps_encoder_->Parameters();
  auto append = [&all](const std::vector<Tensor>& more) {
    all.insert(all.end(), more.begin(), more.end());
  };
  if (grid_encoder_) append(grid_encoder_->Parameters());
  if (fuse_) append(fuse_->Parameters());
  append(projector_->Parameters());
  append(projector_full_->Parameters());
  if (decomposed_grids_) append(decomposed_grids_->Parameters());
  return all;
}

std::vector<std::vector<float>> Traj2Hash::SnapshotParameters() const {
  std::vector<std::vector<float>> snapshot;
  for (const Tensor& p : PersistentTensors()) snapshot.push_back(p->value());
  return snapshot;
}

void Traj2Hash::RestoreParameters(
    const std::vector<std::vector<float>>& snapshot) {
  const std::vector<Tensor> tensors = PersistentTensors();
  T2H_CHECK_EQ(tensors.size(), snapshot.size());
  for (size_t i = 0; i < tensors.size(); ++i) {
    T2H_CHECK_EQ(tensors[i]->value().size(), snapshot[i].size());
    tensors[i]->value() = snapshot[i];
  }
}

namespace {

/// Structural fingerprint of the architecture-affecting config fields, so a
/// Load against a differently-shaped model fails with a clear message
/// instead of a tensor-size mismatch.
uint64_t ConfigFingerprint(const Traj2HashConfig& cfg) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull;
    h *= 1099511628211ull;
  };
  mix(static_cast<uint64_t>(cfg.dim));
  mix(static_cast<uint64_t>(cfg.num_blocks));
  mix(static_cast<uint64_t>(cfg.num_heads));
  mix(static_cast<uint64_t>(cfg.read_out));
  mix(cfg.use_layer_norm ? 1 : 0);
  mix(cfg.use_grid_channel ? 1 : 0);
  mix(cfg.use_rev_aug ? 1 : 0);
  return h;
}

// Model file layout, version 3 ("T2HASH3", DESIGN.md §11):
//   u64 magic | u32 version | u32 crc32 of everything after it |
//   u64 config fingerprint | u64 tensor count | count tensors of
//   { u64 n, n floats }.
// Version 2 ("T2HASH2") is the same minus version/crc; Load still reads it
// so checkpoints written before checksumming was added keep working, but
// they get no corruption detection.
constexpr uint64_t kModelMagicV2 = 0x54324841534832ull;  // "T2HASH2"
constexpr uint64_t kModelMagicV3 = 0x54324841534833ull;  // "T2HASH3"
constexpr uint32_t kModelVersion = 3;

}  // namespace

Status Traj2Hash::Save(const std::string& path) const {
  const std::vector<Tensor> tensors = PersistentTensors();
  std::string buffer;
  AppendPod(buffer, kModelMagicV3);
  AppendPod(buffer, kModelVersion);
  const size_t crc_pos = buffer.size();
  AppendPod(buffer, uint32_t{0});  // CRC placeholder, patched below
  AppendPod(buffer, ConfigFingerprint(config_));
  AppendPod(buffer, static_cast<uint64_t>(tensors.size()));
  for (const Tensor& t : tensors) {
    AppendPod(buffer, static_cast<uint64_t>(t->value().size()));
    buffer.append(reinterpret_cast<const char*>(t->value().data()),
                  t->value().size() * sizeof(float));
  }
  const uint32_t crc = Crc32(buffer.data() + crc_pos + sizeof(uint32_t),
                             buffer.size() - crc_pos - sizeof(uint32_t));
  std::memcpy(buffer.data() + crc_pos, &crc, sizeof(crc));
  return AtomicWriteFile(path, buffer);
}

Status Traj2Hash::Load(const std::string& path) {
  Result<std::string> read = ReadFileToString(path);
  if (!read.ok()) return read.status();
  const std::string& buffer = read.value();

  PayloadReader header(buffer, 0);
  const auto magic = header.Read<uint64_t>();
  bool checksummed = false;
  if (header.ok() && magic == kModelMagicV3) {
    checksummed = true;
    const auto version = header.Read<uint32_t>();
    const auto stored_crc = header.Read<uint32_t>();
    if (!header.ok()) {
      return Status::DataLoss("truncated model file header: " + path);
    }
    if (version != kModelVersion) {
      return Status::FailedPrecondition(
          "model file " + path + " has format version " +
          std::to_string(version) + ", this build reads version " +
          std::to_string(kModelVersion));
    }
    constexpr size_t kHeaderEnd =
        sizeof(uint64_t) + sizeof(uint32_t) + sizeof(uint32_t);
    const uint32_t actual_crc =
        Crc32(buffer.data() + kHeaderEnd, buffer.size() - kHeaderEnd);
    if (actual_crc != stored_crc) {
      return Status::DataLoss("model file checksum mismatch (torn write or "
                              "bit-flip corruption): " + path);
    }
  } else if (!header.ok() || magic != kModelMagicV2) {
    return Status::InvalidArgument("not a Traj2Hash model file: " + path);
  }

  PayloadReader reader = header;
  const auto fingerprint = reader.Read<uint64_t>();
  const auto count = reader.Read<uint64_t>();
  if (reader.ok() && fingerprint != ConfigFingerprint(config_)) {
    return Status::FailedPrecondition(
        "model file was saved with a different architecture config (dim/"
        "blocks/heads/read-out/ablation flags): " + path);
  }
  const std::vector<Tensor> tensors = PersistentTensors();
  if (reader.ok() && count != tensors.size()) {
    return Status::InvalidArgument(
        "model file has " + std::to_string(count) + " tensors, expected " +
        std::to_string(tensors.size()) + " (config mismatch?)");
  }
  // Parse into staging buffers and install only on full success, so a
  // corrupt file never leaves the model half-overwritten.
  std::vector<std::vector<float>> staged(tensors.size());
  for (size_t i = 0; reader.ok() && i < tensors.size(); ++i) {
    const auto n = reader.Read<uint64_t>();
    if (reader.ok() && n != tensors[i]->value().size()) {
      return Status::InvalidArgument("tensor size mismatch in " + path);
    }
    staged[i].resize(n);
    reader.ReadBytes(staged[i].data(), n * sizeof(float));
  }
  if (!reader.at_end()) {
    // With a valid checksum the bytes are authentic, so an overrun or
    // trailing garbage means the writer and reader disagree structurally;
    // without one it is most likely plain truncation. Either way: data loss.
    return checksummed
               ? Status::DataLoss("model file payload is malformed: " + path)
               : Status::DataLoss("truncated model file: " + path);
  }
  for (size_t i = 0; i < tensors.size(); ++i) {
    tensors[i]->value() = std::move(staged[i]);
  }
  return Status::Ok();
}

}  // namespace traj2hash::core
