#ifndef TRAJ2HASH_CORE_TRIPLETS_H_
#define TRAJ2HASH_CORE_TRIPLETS_H_

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "traj/grid.h"
#include "traj/trajectory.h"

namespace traj2hash::core {

/// Indices into the triplet corpus: anchor/positive share a coarse-grid
/// cluster, the negative comes from outside it.
struct Triplet {
  int anchor = -1;
  int positive = -1;
  int negative = -1;
};

/// Fast triplet generation (§IV-F): GPS trajectories are clustered by their
/// deduplicated coarse (500 m) grid sequence; trajectories in one cluster are
/// geometrically close (their Fréchet distance is bounded by the cell
/// diameter), so (anchor, positive) pairs can be labelled without computing
/// any DP distance.
class FastTripletGenerator {
 public:
  /// Clusters `corpus` under `coarse_grid`. The corpus reference is not
  /// retained; only indices are.
  FastTripletGenerator(const traj::Grid& coarse_grid,
                       const std::vector<traj::Trajectory>& corpus);

  /// Samples `count` triplets. Anchor clusters are drawn proportionally to
  /// the number of (anchor, positive) pairs they contain. Returns an empty
  /// vector when no cluster has >= 2 members (no positives exist).
  std::vector<Triplet> Generate(int count, Rng& rng) const;

  /// Number of distinct coarse-grid clusters.
  int num_clusters() const { return static_cast<int>(clusters_.size()); }

  /// Number of clusters that can produce positives (size >= 2).
  int num_multi_clusters() const { return num_multi_clusters_; }

  int corpus_size() const { return corpus_size_; }

 private:
  std::vector<std::vector<int>> clusters_;
  std::vector<int> multi_cluster_ids_;       // clusters with >= 2 members
  std::vector<double> multi_cluster_weight_;  // cumulative sampling weights
  int num_multi_clusters_ = 0;
  int corpus_size_ = 0;
};

}  // namespace traj2hash::core

#endif  // TRAJ2HASH_CORE_TRIPLETS_H_
