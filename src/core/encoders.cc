#include "core/encoders.h"

#include "nn/ops.h"

namespace traj2hash::core {

using nn::Tensor;

GpsEncoder::GpsEncoder(int dim, int num_blocks, int num_heads,
                       ReadOut read_out, Rng& rng, bool use_layer_norm)
    : read_out_(read_out) {
  input_proj_ = std::make_unique<nn::Linear>(2, dim, rng);
  RegisterChild(*input_proj_);
  for (int i = 0; i < num_blocks; ++i) {
    blocks_.push_back(std::make_unique<nn::EncoderBlock>(
        dim, num_heads, 2 * dim, rng, use_layer_norm));
    RegisterChild(*blocks_.back());
  }
  if (read_out_ == ReadOut::kCls) {
    cls_ = RegisterParameter(nn::MakeTensor(1, dim, true));
    nn::GaussianInit(cls_, 0.1f, rng);
  }
}

Tensor GpsEncoder::Forward(
    const std::vector<traj::Point>& normalized) const {
  T2H_CHECK(!normalized.empty());
  const int n = static_cast<int>(normalized.size());
  Tensor coords = nn::MakeTensor(n, 2, false);
  for (int i = 0; i < n; ++i) {
    coords->at(i, 0) = static_cast<float>(normalized[i].x);
    coords->at(i, 1) = static_cast<float>(normalized[i].y);
  }
  // Eq. 10: e_l = MLP_e(Normalize(lat, lon)); normalisation happened
  // upstream (the encoder sees already-normalised coordinates).
  Tensor x = input_proj_->Forward(coords);
  if (read_out_ == ReadOut::kCls) {
    x = nn::ConcatRows(cls_, x);
  }
  x = nn::Add(x, nn::PositionalEncoding(x->rows(), x->cols()));
  for (const auto& block : blocks_) {
    x = block->Forward(x);
  }
  switch (read_out_) {
    case ReadOut::kLowerBound:
      // Eq. 13: the first point's embedding is the trajectory embedding,
      // anchoring the representation on the Lemma 1 lower bound.
      return nn::SliceRows(x, 0, 1);
    case ReadOut::kCls:
      return nn::SliceRows(x, 0, 1);
    case ReadOut::kMean:
      return nn::MeanRows(x);
  }
  T2H_CHECK_MSG(false, "unknown read-out");
  return {};
}

GridChannelEncoder::GridChannelEncoder(
    const embedding::GridRepresentation* representation, int dim, Rng& rng)
    : representation_(representation) {
  T2H_CHECK(representation != nullptr);
  // Eq. 9: MLP_g is a two-layer fully connected network with ReLU.
  mlp_ = std::make_unique<nn::Mlp>(
      std::vector<int>{representation->dim(), dim, dim}, rng);
  RegisterChild(*mlp_);
}

Tensor GridChannelEncoder::Forward(
    const std::vector<traj::Cell>& cells) const {
  T2H_CHECK(!cells.empty());
  Tensor e = representation_->SequenceEmbedding(cells);
  // Eq. 8: add sinusoidal positions, then MLP + mean pooling (Eq. 9).
  e = nn::Add(e, nn::PositionalEncoding(e->rows(), e->cols()));
  return nn::MeanRows(mlp_->Forward(e));
}

}  // namespace traj2hash::core
