#ifndef TRAJ2HASH_CORE_ENCODERS_H_
#define TRAJ2HASH_CORE_ENCODERS_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "embedding/grid_embedding.h"
#include "nn/layers.h"
#include "traj/grid.h"
#include "traj/trajectory.h"

namespace traj2hash::core {

/// Attention-based trajectory encoder (§IV-D): a 1-layer MLP lifts each
/// normalised GPS point to `dim`, sinusoidal positions are added, `m`
/// residual attention+MLP blocks mix the sequence, and a read-out summarises
/// it. The paper's lower-bound read-out takes the first token (Eq. 13);
/// Mean/CLS variants exist for the Fig. 4 study.
class GpsEncoder : public nn::Module {
 public:
  GpsEncoder(int dim, int num_blocks, int num_heads, ReadOut read_out,
             Rng& rng, bool use_layer_norm = false);

  /// normalized: Gaussian-normalised coordinates of the trajectory points.
  /// Returns the [1, dim] trajectory embedding h_l.
  nn::Tensor Forward(const std::vector<traj::Point>& normalized) const;

 private:
  ReadOut read_out_;
  std::unique_ptr<nn::Linear> input_proj_;
  std::vector<std::unique_ptr<nn::EncoderBlock>> blocks_;
  nn::Tensor cls_;  // learnable CLS token; null unless read_out == kCls
};

/// Light-weight grid trajectory read-out (§IV-C, Eq. 8-9): provider
/// embeddings + positional encoding -> two-layer MLP -> mean pooling.
class GridChannelEncoder : public nn::Module {
 public:
  /// `representation` must outlive this encoder (typically owned by the
  /// Traj2Hash model). Its dim may differ from `dim`; the MLP adapts.
  GridChannelEncoder(const embedding::GridRepresentation* representation,
                     int dim, Rng& rng);

  /// Returns the [1, dim] grid-channel embedding h_g of a cell sequence.
  nn::Tensor Forward(const std::vector<traj::Cell>& cells) const;

 private:
  const embedding::GridRepresentation* representation_;
  std::unique_ptr<nn::Mlp> mlp_;
};

}  // namespace traj2hash::core

#endif  // TRAJ2HASH_CORE_ENCODERS_H_
