#ifndef TRAJ2HASH_CORE_TRAINER_H_
#define TRAJ2HASH_CORE_TRAINER_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/model.h"
#include "core/triplets.h"
#include "distance/distance.h"

namespace traj2hash::core {

/// Everything the optimisation stage consumes (§IV-F).
struct TrainingData {
  /// Seed set tau with exact pairwise distances (the expensive supervision).
  std::vector<traj::Trajectory> seeds;
  /// Row-major |seeds| x |seeds| exact distance matrix.
  std::vector<double> seed_distances;

  /// Unlabelled corpus tau_u feeding the fast triplet generation. May be
  /// empty (triplet objective then silently disabled, as in -Triplets).
  std::vector<traj::Trajectory> triplet_corpus;

  /// Optional validation split: HR@10 of Euclidean retrieval of val_queries
  /// against val_db selects the best epoch (paper keeps "the model
  /// parameters with the highest HR@10 on validation set").
  std::vector<traj::Trajectory> val_queries;
  std::vector<traj::Trajectory> val_db;
  /// Exact top-k ids (k >= 10) of each val query within val_db.
  std::vector<std::vector<int>> val_truth;
};

/// Per-epoch training diagnostics.
struct EpochStats {
  double wmse = 0.0;
  double rank_loss = 0.0;
  double triplet_loss = 0.0;
  double val_hr10 = -1.0;          ///< Euclidean-space validation HR@10
  double val_hamming_hr10 = -1.0;  ///< Hamming-space validation HR@10
};

struct TrainReport {
  std::vector<EpochStats> epochs;
  int best_epoch = -1;
  /// Best combined (Euclidean + Hamming) validation HR@10. The model serves
  /// retrieval in both spaces, so epoch selection scores both.
  double best_val_hr10 = -1.0;
  int num_triplets_used = 0;
};

/// Extra knobs that belong to the optimisation procedure rather than the
/// model architecture.
struct TrainerOptions {
  /// Triplets per optimisation step. The paper uses a 500-triplet batch per
  /// step at server scale; benches shrink this.
  int triplets_per_step = 16;
  /// Validate every this many epochs (1 = every epoch).
  int val_interval = 1;

  /// Projector refinement: after the joint epochs, the encoder is frozen
  /// and the Eq. 21 objective keeps training the hash-layer projector W_p
  /// on cached encoder features. This restores the paper's 100-epoch
  /// optimisation budget for the hash layer at a small fraction of the
  /// encode cost (see DESIGN.md §6). 0 disables refinement.
  int refine_epochs = 40;
  /// Triplet-corpus subsample whose features are cached for refinement.
  int refine_corpus_size = 400;
  /// Fast triplets drawn per refinement epoch.
  int refine_triplets_per_epoch = 256;

  /// Divergence guard (DESIGN.md §11): a batch whose loss comes back
  /// non-finite (NaN/Inf — e.g. an exploding learning rate) is skipped
  /// without applying its poisoned gradients, and after this many
  /// *consecutive* bad batches Fit aborts with kInternal instead of
  /// silently wrecking the parameters. <= 0 aborts on the first bad batch.
  int max_bad_steps = 5;

  /// Worker threads for data-parallel training and bulk encoding (1 =
  /// serial, no pool). Each optimisation step decomposes into independent
  /// per-anchor and per-triplet loss subgraphs; workers run forward+backward
  /// with parameter gradients redirected into per-unit nn::GradSinks, and
  /// the main thread reduces the sinks in fixed unit order. All RNG draws
  /// stay on the main thread in the serial loop's order, so the loss
  /// trajectory is bit-identical for any thread count at a fixed seed.
  int num_threads = 1;
};

/// End-to-end optimiser of Traj2Hash: WMSE (Eq. 17) + ranking hash loss
/// (Eq. 19) + fast-triplet hinge (Eq. 20), combined by Eq. 21, with the
/// HashNet tanh(beta*) continuation schedule.
class Trainer {
 public:
  explicit Trainer(Traj2Hash* model, TrainerOptions options = TrainerOptions());

  /// Trains in place. Returns InvalidArgument when the data shapes are
  /// inconsistent. After training, the model carries the parameters of the
  /// best validation epoch (or of the last epoch without validation data).
  Result<TrainReport> Fit(const TrainingData& data, Rng& rng);

 private:
  Traj2Hash* model_;
  TrainerOptions options_;
};

/// Eq. 17's supervision transform: S_ij = exp(-theta * D_ij) after rescaling
/// D by its off-diagonal mean, so theta is dataset-independent (raw
/// distances are metres and would saturate exp for any fixed theta).
/// `distances` is row-major n x n. Shared with the baseline metric trainer.
std::vector<double> SimilarityFromDistances(
    const std::vector<double>& distances, int n, float theta);

/// Convenience: embeds every trajectory (h_f values), fanning across `pool`
/// when one is given (output order always matches input order).
std::vector<std::vector<float>> EmbedAll(const Traj2Hash& model,
                                         const std::vector<traj::Trajectory>& ts,
                                         ThreadPool* pool = nullptr);

/// Convenience: hashes every trajectory (sign codes); same pool semantics.
std::vector<search::Code> HashAll(const Traj2Hash& model,
                                  const std::vector<traj::Trajectory>& ts,
                                  ThreadPool* pool = nullptr);

}  // namespace traj2hash::core

#endif  // TRAJ2HASH_CORE_TRAINER_H_
