#include "core/config.h"

namespace traj2hash::core {

Status Traj2HashConfig::Validate() const {
  if (dim <= 0 || dim % 2 != 0) {
    return Status::InvalidArgument(
        "dim must be positive and even (the projector halves it)");
  }
  if (num_heads <= 0 || dim % num_heads != 0) {
    return Status::InvalidArgument("dim must be divisible by num_heads");
  }
  if (num_blocks <= 0) {
    return Status::InvalidArgument("num_blocks must be positive");
  }
  if (fine_cell_m <= 0.0 || coarse_cell_m <= 0.0) {
    return Status::InvalidArgument("cell sizes must be positive");
  }
  if (samples_per_anchor < 2 || samples_per_anchor % 2 != 0) {
    return Status::InvalidArgument(
        "samples_per_anchor (M) must be even and >= 2 (Eq. 18 pairs them)");
  }
  if (batch_size <= 0 || triplet_batch_size <= 0 || epochs <= 0) {
    return Status::InvalidArgument("batch sizes and epochs must be positive");
  }
  if (theta <= 0.0f) {
    return Status::InvalidArgument("theta must be positive");
  }
  if (alpha < 0.0f || gamma < 0.0f) {
    return Status::InvalidArgument("alpha and gamma must be non-negative");
  }
  if (lr <= 0.0f) {
    return Status::InvalidArgument("lr must be positive");
  }
  if (beta_init <= 0.0f || beta_growth < 0.0f) {
    return Status::InvalidArgument(
        "beta_init must be positive and beta_growth non-negative");
  }
  return Status::Ok();
}

}  // namespace traj2hash::core
