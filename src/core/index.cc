#include "core/index.h"

#include <algorithm>

#include "common/check.h"

namespace traj2hash::core {

TrajectoryIndex::TrajectoryIndex(const Traj2Hash* model,
                                 search::SearchStrategy strategy,
                                 int mih_substrings, bool quantize)
    : model_(model),
      strategy_(strategy),
      mih_substrings_(mih_substrings),
      quantize_(quantize) {
  T2H_CHECK(model != nullptr);
}

void TrajectoryIndex::CoverRange(const std::vector<float>& embedding) {
  const int dim = static_cast<int>(embedding.size());
  if (range_min_.empty()) {
    range_min_ = embedding;
    range_max_ = embedding;
  } else {
    bool expanded = false;
    for (int j = 0; j < dim; ++j) {
      if (embedding[j] < range_min_[j]) {
        range_min_[j] = embedding[j];
        expanded = true;
      }
      if (embedding[j] > range_max_[j]) {
        range_max_[j] = embedding[j];
        expanded = true;
      }
    }
    if (!expanded) return;
  }
  // Rebuild params over the widened range. Feeding the two range corners to
  // the streaming builder reuses its zero-range widening and finiteness
  // checks.
  quant::ParamsBuilder builder(dim);
  T2H_CHECK_MSG(builder.Add(range_min_.data()).ok(),
                "non-finite embedding cannot be quantized");
  T2H_CHECK_MSG(builder.Add(range_max_.data()).ok(),
                "non-finite embedding cannot be quantized");
  auto built = builder.Build();
  T2H_CHECK(built.ok());
  // Requantize existing rows through the old lattice: dequantize with the
  // outgoing params, re-quantize with the new. Each pass adds at most half
  // a (new) step of error per dimension — bounded, and rare because the
  // range only ever grows.
  if (quantized_->rows() > 0) {
    std::vector<float> deq(dim);
    std::vector<int8_t> req(dim);
    for (int i = 0; i < quantized_->rows(); ++i) {
      qparams_.DequantizeRow(quantized_->row(i), deq.data());
      T2H_CHECK(built.value().QuantizeRow(deq.data(), req.data()).ok());
      quantized_->OverwriteRow(i, req.data());
    }
    ++requantizations_;
  }
  qparams_ = std::move(built.value());
}

int TrajectoryIndex::Add(const traj::Trajectory& t) {
  std::vector<float> embedding = model_->Embed(t);
  search::Code code = search::PackSigns(embedding);
  if (embeddings_ == nullptr && quantized_ == nullptr) {
    // Cold start: the embedding / code width (= config dim) is only certain
    // once the first embedding exists.
    const int dim = static_cast<int>(embedding.size());
    if (quantize_) {
      quantized_ = std::make_unique<quant::QuantizedMatrix>(dim);
    } else {
      embeddings_ = std::make_unique<search::FlatMatrix>(dim);
    }
    if (strategy_ == search::SearchStrategy::kMih) {
      mih_ = std::make_unique<search::MihIndex>(code.num_bits,
                                                mih_substrings_);
    } else {
      hamming_ = std::make_unique<search::HammingIndex>(code.num_bits);
    }
  }
  int id;
  if (quantize_) {
    CoverRange(embedding);
    std::vector<int8_t> qrow(embedding.size());
    T2H_CHECK_MSG(qparams_.QuantizeRow(embedding.data(), qrow.data()).ok(),
                  "non-finite embedding cannot be quantized");
    id = quantized_->Append(qrow.data());
  } else {
    id = embeddings_->Append(embedding);
  }
  if (mih_ != nullptr) {
    mih_->Insert(code);
  } else {
    hamming_->Insert(std::move(code));
  }
  ++size_;
  return id;
}

void TrajectoryIndex::AddAll(const std::vector<traj::Trajectory>& ts) {
  for (const traj::Trajectory& t : ts) Add(t);
}

std::vector<search::Neighbor> TrajectoryIndex::QueryEuclidean(
    const traj::Trajectory& query, int k) const {
  T2H_CHECK_MSG(size_ > 0, "index is empty");
  if (quantize_) {
    return quant::RerankTopK(*quantized_, qparams_, model_->Embed(query), k,
                             /*candidates=*/nullptr, /*num_candidates=*/0,
                             &rerank_counters_);
  }
  return search::TopKEuclidean(*embeddings_, model_->Embed(query), k);
}

std::vector<search::Neighbor> TrajectoryIndex::QueryHamming(
    const traj::Trajectory& query, int k) const {
  T2H_CHECK_MSG(size_ > 0, "index is empty");
  const search::Code code = model_->HashCode(query);
  switch (strategy_) {
    case search::SearchStrategy::kBrute:
      return hamming_->BruteForceTopK(code, k);
    case search::SearchStrategy::kRadius2:
      return hamming_->HybridTopK(code, k);
    case search::SearchStrategy::kMih:
      return mih_->TopK(code, k);
  }
  T2H_CHECK_MSG(false, "unreachable strategy");
  return {};
}

size_t TrajectoryIndex::embedding_resident_bytes() const {
  if (quantize_) {
    if (quantized_ == nullptr) return 0;
    return quantized_->resident_bytes() +
           3 * static_cast<size_t>(qparams_.dim()) * sizeof(float);
  }
  if (embeddings_ == nullptr) return 0;
  return static_cast<size_t>(embeddings_->rows()) * embeddings_->stride() *
         sizeof(float);
}

std::vector<float> TrajectoryIndex::EmbeddingAt(int id) const {
  if (quantize_) {
    T2H_CHECK(quantized_ != nullptr && id >= 0 && id < quantized_->rows());
    std::vector<float> out(quantized_->cols());
    qparams_.DequantizeRow(quantized_->row(id), out.data());
    return out;
  }
  T2H_CHECK(embeddings_ != nullptr && id >= 0 && id < embeddings_->rows());
  return embeddings_->RowAt(id);
}

}  // namespace traj2hash::core
