#include "core/index.h"

#include "common/check.h"

namespace traj2hash::core {

TrajectoryIndex::TrajectoryIndex(const Traj2Hash* model) : model_(model) {
  T2H_CHECK(model != nullptr);
}

int TrajectoryIndex::Add(const traj::Trajectory& t) {
  const int id = static_cast<int>(embeddings_.size());
  std::vector<float> embedding = model_->Embed(t);
  search::Code code = search::PackSigns(embedding);
  if (hamming_ == nullptr) {
    // Cold start: the code width (= config dim) is only certain once the
    // first embedding exists.
    hamming_ = std::make_unique<search::HammingIndex>(code.num_bits);
  }
  embeddings_.push_back(std::move(embedding));
  hamming_->Insert(std::move(code));
  return id;
}

void TrajectoryIndex::AddAll(const std::vector<traj::Trajectory>& ts) {
  for (const traj::Trajectory& t : ts) Add(t);
}

std::vector<search::Neighbor> TrajectoryIndex::QueryEuclidean(
    const traj::Trajectory& query, int k) const {
  T2H_CHECK_MSG(!embeddings_.empty(), "index is empty");
  return search::TopKEuclidean(embeddings_, model_->Embed(query), k);
}

std::vector<search::Neighbor> TrajectoryIndex::QueryHamming(
    const traj::Trajectory& query, int k) const {
  T2H_CHECK_MSG(hamming_ != nullptr, "index is empty");
  return hamming_->HybridTopK(model_->HashCode(query), k);
}

}  // namespace traj2hash::core
