#include "core/index.h"

#include "common/check.h"

namespace traj2hash::core {

TrajectoryIndex::TrajectoryIndex(const Traj2Hash* model,
                                 search::SearchStrategy strategy,
                                 int mih_substrings)
    : model_(model), strategy_(strategy), mih_substrings_(mih_substrings) {
  T2H_CHECK(model != nullptr);
}

int TrajectoryIndex::Add(const traj::Trajectory& t) {
  std::vector<float> embedding = model_->Embed(t);
  search::Code code = search::PackSigns(embedding);
  if (embeddings_ == nullptr) {
    // Cold start: the embedding / code width (= config dim) is only certain
    // once the first embedding exists.
    embeddings_ = std::make_unique<search::FlatMatrix>(
        static_cast<int>(embedding.size()));
    if (strategy_ == search::SearchStrategy::kMih) {
      mih_ = std::make_unique<search::MihIndex>(code.num_bits,
                                                mih_substrings_);
    } else {
      hamming_ = std::make_unique<search::HammingIndex>(code.num_bits);
    }
  }
  const int id = embeddings_->Append(embedding);
  if (mih_ != nullptr) {
    mih_->Insert(code);
  } else {
    hamming_->Insert(std::move(code));
  }
  ++size_;
  return id;
}

void TrajectoryIndex::AddAll(const std::vector<traj::Trajectory>& ts) {
  for (const traj::Trajectory& t : ts) Add(t);
}

std::vector<search::Neighbor> TrajectoryIndex::QueryEuclidean(
    const traj::Trajectory& query, int k) const {
  T2H_CHECK_MSG(embeddings_ != nullptr, "index is empty");
  return search::TopKEuclidean(*embeddings_, model_->Embed(query), k);
}

std::vector<search::Neighbor> TrajectoryIndex::QueryHamming(
    const traj::Trajectory& query, int k) const {
  T2H_CHECK_MSG(embeddings_ != nullptr, "index is empty");
  const search::Code code = model_->HashCode(query);
  switch (strategy_) {
    case search::SearchStrategy::kBrute:
      return hamming_->BruteForceTopK(code, k);
    case search::SearchStrategy::kRadius2:
      return hamming_->HybridTopK(code, k);
    case search::SearchStrategy::kMih:
      return mih_->TopK(code, k);
  }
  T2H_CHECK_MSG(false, "unreachable strategy");
  return {};
}

}  // namespace traj2hash::core
