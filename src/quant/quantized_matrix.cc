#include "quant/quantized_matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "common/check.h"

namespace traj2hash::quant {

namespace {

/// int8 rows share the code/embedding stores' 32-byte row alignment.
constexpr int kRowPadBytes = static_cast<int>(kKernelRowAlignment);

int PaddedStride(int cols) {
  return (cols + kRowPadBytes - 1) / kRowPadBytes * kRowPadBytes;
}

}  // namespace

Status QuantizationParams::QuantizeRow(const float* row, int8_t* out) const {
  const int d = dim();
  for (int j = 0; j < d; ++j) {
    if (!std::isfinite(row[j])) {
      return Status::InvalidArgument(
          "non-finite embedding value at dim " + std::to_string(j) +
          " cannot be quantized");
    }
  }
  for (int j = 0; j < d; ++j) {
    // Double intermediate: one rounding at the lround, so the in-range
    // round-trip error stays ≤ s_j / 2 (plus float dequant rounding).
    const double q = std::lround(static_cast<double>(row[j]) / scale[j] -
                                 static_cast<double>(zero_point[j]));
    out[j] = static_cast<int8_t>(q < -128.0 ? -128 : (q > 127.0 ? 127 : q));
  }
  return Status::Ok();
}

void QuantizationParams::DequantizeRow(const int8_t* row, float* out) const {
  const int d = dim();
  for (int j = 0; j < d; ++j) {
    out[j] = scale[j] * (static_cast<float>(row[j]) + zero_point[j]);
  }
}

Result<QuantizationParams> QuantizationParams::Compute(
    const std::vector<std::vector<float>>& rows, int dim) {
  ParamsBuilder builder(dim);
  for (const std::vector<float>& row : rows) {
    T2H_CHECK_EQ(static_cast<int>(row.size()), dim);
    if (const Status s = builder.Add(row.data()); !s.ok()) return s;
  }
  return builder.Build();
}

Result<QuantizationParams> QuantizationParams::Compute(const float* rows,
                                                       int n, int dim,
                                                       int stride) {
  ParamsBuilder builder(dim);
  for (int i = 0; i < n; ++i) {
    if (const Status s = builder.Add(rows + static_cast<size_t>(i) * stride);
        !s.ok()) {
      return s;
    }
  }
  return builder.Build();
}

ParamsBuilder::ParamsBuilder(int dim)
    : dim_(dim),
      min_(dim, std::numeric_limits<float>::infinity()),
      max_(dim, -std::numeric_limits<float>::infinity()) {
  T2H_CHECK_GE(dim, 1);
}

Status ParamsBuilder::Add(const float* row) {
  for (int j = 0; j < dim_; ++j) {
    if (!std::isfinite(row[j])) {
      return Status::InvalidArgument(
          "non-finite embedding value at dim " + std::to_string(j) +
          " cannot calibrate quantization");
    }
  }
  for (int j = 0; j < dim_; ++j) {
    min_[j] = std::min(min_[j], row[j]);
    max_[j] = std::max(max_[j], row[j]);
  }
  ++rows_seen_;
  return Status::Ok();
}

Result<QuantizationParams> ParamsBuilder::Build() const {
  if (rows_seen_ == 0) {
    return Status::FailedPrecondition(
        "quantization params need at least one calibration row");
  }
  QuantizationParams p;
  p.scale.resize(dim_);
  p.zero_point.resize(dim_);
  p.scale_sq.resize(dim_);
  for (int j = 0; j < dim_; ++j) {
    float lo = min_[j];
    float hi = max_[j];
    if (lo == hi) {
      // Constant dimension: widen to [c − ½, c + ½] so the step stays
      // positive (1/255) and the constant lands mid-lattice.
      lo -= 0.5f;
      hi += 0.5f;
    }
    const float s = (hi - lo) / 255.0f;
    p.scale[j] = s;
    p.zero_point[j] = lo / s + 128.0f;
    p.scale_sq[j] = s * s;
  }
  return p;
}

QuantizedMatrix::QuantizedMatrix(int cols)
    : cols_(cols), stride_(PaddedStride(cols)) {
  T2H_CHECK_GE(cols, 1);
}

int QuantizedMatrix::Append(const int8_t* row) {
  const int id = num_rows_;
  data_.resize(data_.size() + stride_, 0);
  std::memcpy(data_.data() + static_cast<size_t>(id) * stride_, row,
              static_cast<size_t>(cols_));
  ++num_rows_;
  return id;
}

void QuantizedMatrix::OverwriteRow(int i, const int8_t* row) {
  T2H_CHECK_GE(i, 0);
  T2H_CHECK_LT(i, num_rows_);
  std::memcpy(data_.data() + static_cast<size_t>(i) * stride_, row,
              static_cast<size_t>(cols_));
}

std::vector<int8_t> QuantizedMatrix::RowAt(int i) const {
  const int8_t* r = row(i);
  return std::vector<int8_t>(r, r + cols_);
}

}  // namespace traj2hash::quant
