#ifndef TRAJ2HASH_QUANT_RERANK_H_
#define TRAJ2HASH_QUANT_RERANK_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "quant/quantized_matrix.h"
#include "search/knn.h"

namespace traj2hash::quant {

/// Aggregate two-stage re-ranker counters, shared across serving threads
/// (relaxed atomics: monitoring only). serve surfaces them as the `quant`
/// stats block.
struct RerankCounters {
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> candidates{0};  ///< stage-1 rows scanned quantized
  std::atomic<uint64_t> rechecked{0};   ///< rows float re-checked (stage 2)
  /// Banded queries whose runtime band-honored check failed and fell back
  /// to re-checking every candidate. Zero in practice; correctness never
  /// depends on it staying zero.
  std::atomic<uint64_t> band_violations{0};
  std::atomic<uint64_t> banded_queries{0};  ///< queries that skipped rows
  /// Σ of the band half-width (band_limit − T, distance units) over banded
  /// queries — mean band width = band_width_sum / banded_queries.
  std::atomic<double> band_width_sum{0.0};
};

/// One consistent read of RerankCounters.
struct RerankSnapshot {
  uint64_t queries = 0;
  uint64_t candidates = 0;
  uint64_t rechecked = 0;
  uint64_t band_violations = 0;
  uint64_t banded_queries = 0;
  double band_width_sum = 0.0;

  /// Fraction of stage-1 candidates that needed the exact float re-check.
  double recheck_rate() const {
    return candidates > 0
               ? static_cast<double>(rechecked) / static_cast<double>(candidates)
               : 0.0;
  }
  double mean_band_width() const {
    return banded_queries > 0 ? band_width_sum / static_cast<double>(banded_queries)
                              : 0.0;
  }
};

RerankSnapshot SnapshotCounters(const RerankCounters& c);

/// Exact top-k by Euclidean distance over the DEQUANTIZED lattice rows of
/// `m`, restricted to `candidates` (nullptr = all rows of `m`), bit-identical
/// to search::TopKEuclidean over a FlatMatrix holding DequantizeRow of every
/// candidate (DESIGN.md §17).
///
/// Two stages: (1) the quantized-L2 kernel ranks every candidate without
/// touching floats; (2) the boundary band — everything within the k-th
/// quantized distance plus twice the query's own quantization error (an
/// exact per-query bound: eps = ‖ŷ − y‖₂, known because ŷ is computed) —
/// is dequantized and re-checked with the exact float kernel. Rows outside
/// the band provably lose by the triangle inequality. The band invariant is
/// ASSERTED at run time (k-th exact distance strictly clears the cheapest
/// excluded quantized distance minus eps); a violation — only reachable
/// through float-rounding pathologies the slack margins should already
/// cover — falls back to re-checking every candidate, so the result is
/// exact either way, and is counted in `counters->band_violations`.
///
/// Returned Neighbor::index values are ROW indices into `m` (positions in
/// `candidates` mapped back), distances are sqrt of the exact squared L2 —
/// the same value the float path would produce. Ties break by ascending row
/// index. `query` values must be finite; a non-finite query falls back to
/// the exact all-candidates path.
std::vector<search::Neighbor> RerankTopK(const QuantizedMatrix& m,
                                         const QuantizationParams& params,
                                         const std::vector<float>& query,
                                         int k, const int* candidates,
                                         int num_candidates,
                                         RerankCounters* counters = nullptr);

}  // namespace traj2hash::quant

#endif  // TRAJ2HASH_QUANT_RERANK_H_
