#ifndef TRAJ2HASH_QUANT_QUANTIZED_MATRIX_H_
#define TRAJ2HASH_QUANT_QUANTIZED_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "common/status.h"

namespace traj2hash::quant {

/// Per-dimension affine int8 quantization parameters (DESIGN.md §17).
///
/// Dimension j maps float x to q = clamp(round(x / s_j − zp_j), −128, 127)
/// and back to x̂ = s_j · (q + zp_j), with step s_j = (max_j − min_j) / 255
/// from the calibration rows and a FLOAT zero-point zp_j = min_j / s_j + 128
/// (kept unrounded so the calibration range maps exactly onto [−128, 127]).
/// For any x inside the calibration range the round-trip error is ≤ s_j / 2;
/// values outside saturate at the range edge. A constant (zero-range)
/// dimension is widened to [c − ½, c + ½] so s_j stays positive (step
/// 1/255, error ≤ 1/510).
///
/// Because every row of one store shares these params, the zero-points
/// cancel in distances: x̂ − ŷ = s_j · (q_x − q_y), which is why
/// search::kernels::QuantizedL2Scan needs only the squared steps
/// (`scale_sq`) and the raw int8 rows.
///
/// Non-finite calibration or row values (NaN / ±inf) are rejected with
/// kInvalidArgument at quantize time — a NaN row would silently corrupt
/// every later distance, so it must never enter the store.
struct QuantizationParams {
  std::vector<float> scale;       ///< per-dim step s_j > 0
  std::vector<float> zero_point;  ///< per-dim float zero-point zp_j
  /// s_j² contiguous for the scan kernel (32B-aligned like every kernel
  /// operand; the kernel indexes only [0, dim)).
  AlignedVector<float> scale_sq;

  int dim() const { return static_cast<int>(scale.size()); }
  bool empty() const { return scale.empty(); }

  /// Quantizes one row of dim() floats into `out` (clamped / saturating).
  /// kInvalidArgument when the row contains a non-finite value; `out` is
  /// unspecified then.
  Status QuantizeRow(const float* row, int8_t* out) const;

  /// Dequantizes one int8 row back to its float lattice values
  /// (x̂_j = s_j · (q_j + zp_j), computed in float — the deterministic
  /// ground truth every exact re-check ranks against).
  void DequantizeRow(const int8_t* row, float* out) const;

  /// One-shot calibration over a nested row store (every row dim floats).
  static Result<QuantizationParams> Compute(
      const std::vector<std::vector<float>>& rows, int dim);

  /// One-shot calibration over a flat row-major store (`stride` floats
  /// between row starts).
  static Result<QuantizationParams> Compute(const float* rows, int n, int dim,
                                            int stride);
};

/// Streaming calibration: feed rows one at a time, then Build(). Used by
/// compaction (rows arrive from the captured base) and by benches that
/// cannot hold a second float copy of the corpus.
class ParamsBuilder {
 public:
  explicit ParamsBuilder(int dim);

  /// Accumulates one row's per-dim min/max. kInvalidArgument on a
  /// non-finite value (the row is not partially applied).
  Status Add(const float* row);

  /// Finalizes the params (zero-range dims widened). kFailedPrecondition
  /// when no row was added — an empty store has no calibration range.
  Result<QuantizationParams> Build() const;

  int rows_seen() const { return rows_seen_; }

 private:
  int dim_;
  int rows_seen_ = 0;
  std::vector<float> min_;
  std::vector<float> max_;
};

/// Contiguous row-major int8 storage for quantized embedding rows: the
/// quarter-width counterpart of search::FlatMatrix, and the resident form
/// of every embedding in quantize mode.
///
/// Same SIMD layout contract as FlatMatrix/PackedCodes (DESIGN.md §14):
/// 32-byte-aligned buffer, row stride padded to a multiple of 32 bytes,
/// padding zero-filled.
class QuantizedMatrix {
 public:
  /// Empty matrix with `cols` columns (grows via Append).
  explicit QuantizedMatrix(int cols);

  /// Appends one row of cols() int8s (padding zero-filled); returns its row
  /// id.
  int Append(const int8_t* row);

  /// Overwrites row `i` in place (same width contract as Append).
  void OverwriteRow(int i, const int8_t* row);

  const int8_t* row(int i) const {
    const int8_t* r = data_.data() + static_cast<size_t>(i) * stride_;
    assert((reinterpret_cast<uintptr_t>(r) & (kKernelRowAlignment - 1)) == 0);
    return r;
  }

  /// Copies row `i` back out (accessors / tests, not the scan path).
  std::vector<int8_t> RowAt(int i) const;

  const int8_t* data() const { return data_.data(); }
  int rows() const { return num_rows_; }
  int cols() const { return cols_; }
  /// Bytes between consecutive row starts (cols padded to 32).
  int stride() const { return stride_; }

  /// Bytes this store keeps resident for its rows — the gauge behind the
  /// ~4× memory cut (serve reports it per shard).
  size_t resident_bytes() const { return data_.size() * sizeof(int8_t); }

 private:
  int cols_ = 0;
  int stride_ = 0;
  int num_rows_ = 0;
  AlignedVector<int8_t> data_;
};

}  // namespace traj2hash::quant

#endif  // TRAJ2HASH_QUANT_QUANTIZED_MATRIX_H_
