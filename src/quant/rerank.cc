#include "quant/rerank.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "search/flat_storage.h"
#include "search/kernels.h"

namespace traj2hash::quant {
namespace {

/// Float-arithmetic guard margins on top of the mathematically derived
/// band. The derivation is exact in real arithmetic; these absorb the
/// float rounding of the dequantized lattice, the kernels' per-path
/// accumulation orders and the sqrt — small enough to keep the band tight,
/// large enough that the runtime band-honored check only fires on genuine
/// pathologies (and even then the fallback keeps the result exact).
constexpr double kRelSlack = 1e-6;
constexpr double kAbsSlack = 1e-12;

/// Upper bound on ‖x̂_fl − x̂‖₂ over any lattice point: each stored float
/// lattice value fl(s·(q + zp)) is within 2⁻²⁴ relative of the real lattice
/// value, whose magnitude is ≤ s·(|zp| + 128.5). Stage 1 measures distances
/// between real lattice points, stage 2 between their float forms; this
/// slack (doubled by the caller for the two endpoints) bridges the two.
double LatticeSlack(const QuantizationParams& params) {
  double sum = 0.0;
  for (int j = 0; j < params.dim(); ++j) {
    const double per =
        std::ldexp(static_cast<double>(params.scale[j]) *
                       (std::abs(static_cast<double>(params.zero_point[j])) +
                        128.5),
                   -23);
    sum += per * per;
  }
  return std::sqrt(sum);
}

/// Exact float top-k over the dequantized lattice rows listed in `rows`
/// (ascending row indices): the reference the banded path must equal, and
/// the fallback when the band check fails. Distances are computed by the
/// same kernels::SquaredL2Scan the plain float path uses, so per-row values
/// are bit-identical to it.
std::vector<search::Neighbor> ExactTopK(const QuantizedMatrix& m,
                                        const QuantizationParams& params,
                                        const std::vector<float>& query,
                                        int k, const std::vector<int>& rows) {
  const int n = static_cast<int>(rows.size());
  const int dim = m.cols();
  search::FlatMatrix scratch(dim);
  std::vector<float> deq(dim);
  for (const int r : rows) {
    params.DequantizeRow(m.row(r), deq.data());
    scratch.Append(deq);
  }
  std::vector<double> sq(n);
  search::kernels::SquaredL2Scan(scratch.data(), query.data(), n, dim,
                                 scratch.stride(), sq.data());
  std::vector<search::Neighbor> all;
  all.reserve(n);
  for (int p = 0; p < n; ++p) all.push_back({rows[p], std::sqrt(sq[p])});
  k = std::min(k, n);
  if (k < n) {
    std::nth_element(all.begin(), all.begin() + (k - 1), all.end(),
                     search::NeighborLess);
    all.resize(k);
  }
  std::sort(all.begin(), all.end(), search::NeighborLess);
  return all;
}

}  // namespace

RerankSnapshot SnapshotCounters(const RerankCounters& c) {
  RerankSnapshot s;
  s.queries = c.queries.load(std::memory_order_relaxed);
  s.candidates = c.candidates.load(std::memory_order_relaxed);
  s.rechecked = c.rechecked.load(std::memory_order_relaxed);
  s.band_violations = c.band_violations.load(std::memory_order_relaxed);
  s.banded_queries = c.banded_queries.load(std::memory_order_relaxed);
  s.band_width_sum = c.band_width_sum.load(std::memory_order_relaxed);
  return s;
}

std::vector<search::Neighbor> RerankTopK(const QuantizedMatrix& m,
                                         const QuantizationParams& params,
                                         const std::vector<float>& query,
                                         int k, const int* candidates,
                                         int num_candidates,
                                         RerankCounters* counters) {
  T2H_CHECK_EQ(static_cast<int>(query.size()), m.cols());
  T2H_CHECK_EQ(params.dim(), m.cols());
  const int dim = m.cols();
  std::vector<int> rows;
  if (candidates == nullptr) {
    rows.resize(m.rows());
    for (int i = 0; i < m.rows(); ++i) rows[i] = i;
  } else {
    rows.assign(candidates, candidates + num_candidates);
    // Ascending rows fix the tie order (NeighborLess breaks on row index)
    // independent of how the caller ordered its candidate set.
    std::sort(rows.begin(), rows.end());
  }
  const int n = static_cast<int>(rows.size());
  if (n == 0 || k <= 0) return {};
  if (counters != nullptr) {
    counters->queries.fetch_add(1, std::memory_order_relaxed);
    counters->candidates.fetch_add(static_cast<uint64_t>(n),
                                   std::memory_order_relaxed);
  }

  // Quantize the query onto the shared lattice; ŷ and the EXACT per-query
  // error eps = ‖ŷ − y‖₂ are what make the band provable rather than
  // heuristic. A non-finite query cannot be quantized — serve that exactly.
  std::vector<int8_t> qbuf(dim);
  if (!params.QuantizeRow(query.data(), qbuf.data()).ok()) {
    if (counters != nullptr) {
      counters->rechecked.fetch_add(static_cast<uint64_t>(n),
                                    std::memory_order_relaxed);
    }
    return ExactTopK(m, params, query, k, rows);
  }
  std::vector<float> yhat(dim);
  params.DequantizeRow(qbuf.data(), yhat.data());
  double eps_sq = 0.0;
  for (int j = 0; j < dim; ++j) {
    const double d = static_cast<double>(yhat[j]) - query[j];
    eps_sq += d * d;
  }
  const double eps = std::sqrt(eps_sq);
  const double lattice_slack = LatticeSlack(params);

  // Stage 1: quantized L2 over every candidate — int8 rows and the squared
  // per-dim steps only, no float row is touched.
  std::vector<double> dtilde(n);
  if (candidates == nullptr) {
    search::kernels::QuantizedL2Scan(m.data(), qbuf.data(),
                                     params.scale_sq.data(), n, dim,
                                     m.stride(), dtilde.data());
  } else {
    AlignedVector<int8_t> gathered(static_cast<size_t>(n) * m.stride(), 0);
    for (int p = 0; p < n; ++p) {
      std::copy_n(m.row(rows[p]), dim,
                  gathered.data() + static_cast<size_t>(p) * m.stride());
    }
    search::kernels::QuantizedL2Scan(gathered.data(), qbuf.data(),
                                     params.scale_sq.data(), n, dim,
                                     m.stride(), dtilde.data());
  }
  std::vector<double> rt(n);
  for (int p = 0; p < n; ++p) rt[p] = std::sqrt(dtilde[p]);

  if (n <= k) {
    if (counters != nullptr) {
      counters->rechecked.fetch_add(static_cast<uint64_t>(n),
                                    std::memory_order_relaxed);
    }
    return ExactTopK(m, params, query, k, rows);
  }

  // The band: T = k-th smallest quantized distance; any row whose true
  // distance could still reach the top-k satisfies r ≤ T + 2·eps
  // (|r − r̃| ≤ eps both ways), widened by the float slack margins.
  std::vector<double> sel(rt);
  std::nth_element(sel.begin(), sel.begin() + (k - 1), sel.end());
  const double t_k = sel[k - 1];
  const double band_core = t_k + 2.0 * eps + 2.0 * lattice_slack;
  const double band_limit = band_core + kRelSlack * band_core + kAbsSlack;

  std::vector<int> band;
  band.reserve(static_cast<size_t>(k) * 2);
  double min_excluded = std::numeric_limits<double>::infinity();
  for (int p = 0; p < n; ++p) {
    if (rt[p] <= band_limit) {
      band.push_back(rows[p]);
    } else {
      min_excluded = std::min(min_excluded, rt[p]);
    }
  }
  if (counters != nullptr) {
    counters->rechecked.fetch_add(band.size(), std::memory_order_relaxed);
    counters->banded_queries.fetch_add(1, std::memory_order_relaxed);
    counters->band_width_sum.fetch_add(band_limit - t_k,
                                       std::memory_order_relaxed);
  }

  // Stage 2: exact float re-check of the band only.
  std::vector<search::Neighbor> result = ExactTopK(m, params, query, k, band);

  // Band-honored assertion (not assumed): every excluded row's true
  // distance is ≥ its quantized distance minus the error terms; the k-th
  // exact distance must strictly clear that floor or the band was too
  // narrow — re-check everything and count the violation.
  if (static_cast<int>(band.size()) < n) {
    const double floor = min_excluded - eps - lattice_slack -
                         (kRelSlack * (min_excluded + eps) + kAbsSlack);
    const bool honored =
        static_cast<int>(result.size()) == std::min(k, static_cast<int>(band.size())) &&
        !result.empty() && result.back().distance < floor;
    if (!honored) {
      if (counters != nullptr) {
        counters->band_violations.fetch_add(1, std::memory_order_relaxed);
        counters->rechecked.fetch_add(static_cast<uint64_t>(n),
                                      std::memory_order_relaxed);
      }
      return ExactTopK(m, params, query, k, rows);
    }
  }
  return result;
}

}  // namespace traj2hash::quant
